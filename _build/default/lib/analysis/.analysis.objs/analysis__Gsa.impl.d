lib/analysis/gsa.ml: Ast Expr Fir Fmt Hashtbl List Punit Stmt String Symtab
