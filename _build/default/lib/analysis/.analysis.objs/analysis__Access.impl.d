lib/analysis/access.ml: Ast Expr Fir Fmt Hashtbl List Option Stmt String Symbolic
