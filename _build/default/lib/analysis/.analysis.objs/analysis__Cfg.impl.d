lib/analysis/cfg.ml: Ast Fir Hashtbl List Option Punit Stmt
