lib/analysis/loops.ml: Ast Expr Fir List Punit Stmt Symbolic Util
