lib/analysis/defuse.ml: Ast Expr Fir Hashtbl List Option Set Stmt String Symtab
