(** Cost model of the PD test (paper §3.5.2–§3.5.3).

    The test itself is fully parallel and takes [O(a/p + log p)] time,
    where [a] is the number of accesses to the tested array and [p] the
    number of processors: marking piggybacks on the speculative parallel
    execution ([c_mark] per access on the executing processor) and the
    post-execution analysis reduces the shadow arrays in
    [size/p + log p] steps. *)

type cost_model = {
  mark_cost : int;        (** per access, during speculative execution *)
  analysis_per_elem : int;(** per shadow element, divided over p *)
  merge_log_cost : int;   (** per log2(p) combining step *)
  checkpoint_per_elem : int; (** saving state before speculation *)
  restore_per_elem : int; (** restoring state on failure *)
}

let default_cost =
  { mark_cost = 2; analysis_per_elem = 2; merge_log_cost = 24;
    checkpoint_per_elem = 1; restore_per_elem = 1 }

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

(** Extra time added to the parallel execution by marking [accesses]
    accesses on [p] processors. *)
let marking_time cm ~accesses ~p = cm.mark_cost * accesses / max 1 p

(** Time of the post-execution analysis over a shadow of [size]
    elements on [p] processors: a/p + log p shape. *)
let analysis_time cm ~size ~p =
  (cm.analysis_per_elem * size / max 1 p) + (cm.merge_log_cost * log2i (max 1 p))

(** Total PD-test overhead (marking + analysis), the paper's T_pdt. *)
let total_overhead cm ~accesses ~size ~p =
  marking_time cm ~accesses ~p + analysis_time cm ~size ~p

let checkpoint_time cm ~size ~p = cm.checkpoint_per_elem * size / max 1 p
let restore_time cm ~size ~p = cm.restore_per_elem * size / max 1 p
