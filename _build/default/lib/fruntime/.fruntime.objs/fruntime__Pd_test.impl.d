lib/fruntime/pd_test.ml:
