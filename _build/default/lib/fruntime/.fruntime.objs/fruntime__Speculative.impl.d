lib/fruntime/speculative.ml: Array Fir Hashtbl List Machine Pd_test Program Shadow String Symtab
