lib/fruntime/shadow.ml: Bytes List
