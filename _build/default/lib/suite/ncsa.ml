(** The two NCSA production codes of the evaluation (paper §4.1). *)

open Code

(* CMHOG: 3-D ideal gas dynamics — deep rectangular nests sweeping
   pencil work arrays; privatizing the pencil lets Polaris run the
   outermost plane loop, while the baseline is confined to the inner
   pencil loops. *)
let cmhog =
  { name = "CMHOG";
    origin = Ncsa;
    paper_lines = 11826;
    paper_serial_s = 2333;
    paper_polaris_speedup = 6.2;
    paper_pfa_speedup = 1.5;
    enabling = [ "array privatization"; "range test" ];
    description = "3-D ideal gas hydrodynamics, pencil sweeps";
    source = {|
      PROGRAM CMHOG
      INTEGER NI, NJ, NK, NIT, I, J, K, T
      PARAMETER (NI = 24, NJ = 16, NK = 16, NIT = 4)
      REAL RHO(24, 16, 16), Q(24, 16, 16), FLX(24), CHECK
      DO K = 1, NK
        DO J = 1, NJ
          DO I = 1, NI
            RHO(I, J, K) = 1.0 + 0.01 * I + 0.02 * J + 0.03 * K
            Q(I, J, K) = 0.5 + 0.005 * I
          END DO
        END DO
      END DO
      DO T = 1, NIT
        DO K = 2, NK - 1
          DO J = 2, NJ - 1
            DO I = 1, NI
              FLX(I) = RHO(I, J, K) * 0.4 + Q(I, J, K) * 0.3
     &               + Q(I, J, MOD(K, 2) + 1) * 0.3
            END DO
            DO I = 2, NI - 1
              RHO(I, J, K) = RHO(I, J, K)
     &                     + 0.05 * (FLX(I + 1) - 2.0 * FLX(I) + FLX(I - 1))
            END DO
          END DO
        END DO
      END DO
      CHECK = 0.0
      DO K = 1, NK
        CHECK = CHECK + RHO(12, 8, K)
      END DO
      PRINT *, CHECK
      END
|} }

(* CLOUD3D: atmospheric convection — the adjustment iteration uses
   GOTO-driven control flow that disqualifies its loops for both
   pipelines; only the diffusion stencil and one Polaris-privatized
   column loop parallelize, leaving modest speedups. *)
let cloud3d =
  { name = "CLOUD3D";
    origin = Ncsa;
    paper_lines = 9813;
    paper_serial_s = 20404;
    paper_polaris_speedup = 1.5;
    paper_pfa_speedup = 1.15;
    enabling = [ "array privatization (partial)" ];
    description = "3-D atmospheric convection with adjustment iteration";
    source = {|
      PROGRAM CLOUD3D
      INTEGER NI, NK, NIT, I, K, T, IT
      PARAMETER (NI = 48, NK = 40, NIT = 4)
      REAL TH(48, 40), QV(48, 40), COL(40), RES, CHECK
      DO K = 1, NK
        DO I = 1, NI
          TH(I, K) = 290.0 + 0.1 * K + 0.01 * I
          QV(I, K) = 0.01 + 0.0001 * I
        END DO
      END DO
      DO T = 1, NIT
        DO K = 2, NK - 1
          DO I = 2, NI - 1
            TH(I, K) = TH(I, K) + 0.02 * (TH(I + 1, K) + TH(I - 1, K)
     &               + TH(I, K + 1) + TH(I, K - 1) - 4.0 * TH(I, K))
          END DO
        END DO
        DO I = 2, NI - 1
          DO K = 1, NK
            COL(K) = TH(I, K) * (1.0 + QV(I, K))
          END DO
          DO K = 2, NK - 1
            QV(I, K) = QV(I, K) + 0.0001 * (COL(K + 1) - COL(K - 1))
          END DO
        END DO
        IT = 0
        RES = 1.0
 10     CONTINUE
        IT = IT + 1
        RES = RES * 0.5
        DO K = 2, NK - 1
          TH(24, K) = TH(24, K) + RES * 0.001
        END DO
        IF (IT .LT. 5 .AND. RES .GT. 0.01) GOTO 10
      END DO
      CHECK = 0.0
      DO K = 1, NK
        CHECK = CHECK + TH(24, K) + QV(24, K) * 100.0
      END DO
      PRINT *, CHECK
      END
|} }

let all = [ cmhog; cloud3d ]
