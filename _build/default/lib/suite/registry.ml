(** The full evaluation suite, in the paper's Table 1 order. *)

let all : Code.t list =
  let named n = n in
  ignore named;
  [ Spec.applu; Spec.appsp; Perfect.arc2d; Perfect.bdna; Ncsa.cmhog;
    Ncsa.cloud3d; Perfect.flo52; Spec.hydro2d; Perfect.mdg; Perfect.ocean;
    Spec.su2cor; Spec.swim; Spec.tfft2; Spec.tomcatv; Perfect.trfd;
    Spec.wave5 ]

(** Find a code by (case-insensitive) name.
    @raise Not_found if unknown. *)
let find name =
  let name = String.uppercase_ascii name in
  match List.find_opt (fun (c : Code.t) -> String.equal c.name name) all with
  | Some c -> c
  | None -> raise Not_found

let names = List.map (fun (c : Code.t) -> c.name) all

(** Lines of our synthetic source (for the Table-1 style report). *)
let synthetic_lines (c : Code.t) =
  List.length
    (List.filter
       (fun l -> String.trim l <> "")
       (String.split_on_char '\n' c.source))
