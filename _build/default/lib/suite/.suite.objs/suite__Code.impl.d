lib/suite/code.ml:
