lib/suite/ncsa.ml: Code
