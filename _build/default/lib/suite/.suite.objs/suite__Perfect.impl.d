lib/suite/perfect.ml: Code
