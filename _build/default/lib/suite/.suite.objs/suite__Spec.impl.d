lib/suite/spec.ml: Code
