lib/suite/registry.ml: Code List Ncsa Perfect Spec String
