(** One benchmark code of the evaluation suite (paper Table 1 / Fig. 7).

    The Perfect, SPEC and NCSA sources are proprietary; each entry here
    is a synthetic Fortran program reproducing the loop and dependence
    structure that the paper (and the companion Polaris papers)
    attribute to that code — in particular which analysis technique is
    the enabler for its dominant loops (see DESIGN.md §2).

    [paper_*] fields record what the paper reports (Table 1 exactly;
    Fig. 7 bar heights read off the figure, so approximate). *)

type origin = Perfect | Spec | Ncsa

let origin_to_string = function
  | Perfect -> "PERFECT"
  | Spec -> "SPEC"
  | Ncsa -> "NCSA"

type t = {
  name : string;
  origin : origin;
  paper_lines : int;           (** Table 1: lines of code *)
  paper_serial_s : int;        (** Table 1: serial seconds *)
  paper_polaris_speedup : float; (** Fig. 7 (approximate) *)
  paper_pfa_speedup : float;     (** Fig. 7 (approximate) *)
  enabling : string list;      (** techniques that unlock its loops *)
  description : string;
  source : string;             (** the synthetic Fortran program *)
}
