(** The six Perfect Benchmarks codes of the evaluation (paper §4.1).

    Each synthetic program reproduces the loop/dependence structure the
    Polaris papers attribute to the real code; the comment on each entry
    states the enabling technique and the expected behaviour of the two
    pipelines. *)

open Code

(* TRFD: the OLDA/100 kernel of paper Fig. 2 — a cascaded induction
   (X, X0) in a triangular nest producing a non-linear subscript that
   only the range test can disambiguate.  Baseline: X stays a
   loop-varying scalar (triangular nests are beyond classic induction
   handling), so the hot I loop stays serial. *)
let trfd =
  { name = "TRFD";
    origin = Perfect;
    paper_lines = 580;
    paper_serial_s = 20;
    paper_polaris_speedup = 5.3;
    paper_pfa_speedup = 1.0;
    enabling = [ "generalized induction"; "range test" ];
    description = "quantum mechanics integral transformation kernel";
    source = {|
      PROGRAM TRFD
      INTEGER M, N, NIT, I, J, K, X, X0, T
      PARAMETER (M = 16, N = 14, NIT = 6)
      REAL A(1700), CHECK
      DO T = 1, NIT
        X0 = 0
        DO I = 0, M - 1
          X = X0
          DO J = 0, N - 1
            DO K = 0, J - 1
              X = X + 1
              A(X) = (X - 0.5) * 0.01 + T * 0.1
            END DO
          END DO
          X0 = X0 + (N**2 + N) / 2
        END DO
      END DO
      CHECK = 0.0
      DO I = 1, M * (N**2 + N) / 2
        CHECK = CHECK + A(I)
      END DO
      PRINT *, CHECK
      END
|} }

(* OCEAN: the FTRVMT/109 nest of paper Fig. 3.  The stride expression
   258*X*J is non-linear until interprocedural constant propagation
   (after inlining) pins X; even then, proving the K loop parallel
   requires the range test's loop permutation (promote J).  Baseline:
   no inlining, so the hot nest sits behind a CALL and X stays
   symbolic. *)
let ocean =
  { name = "OCEAN";
    origin = Perfect;
    paper_lines = 3288;
    paper_serial_s = 118;
    paper_polaris_speedup = 2.6;
    paper_pfa_speedup = 1.0;
    enabling = [ "inlining"; "interprocedural constants"; "range test (permutation)" ];
    description = "Boussinesq fluid layer solver, FFT-like strided nest";
    source = {|
      PROGRAM OCEAN
      INTEGER X, K, T, I, NIT
      PARAMETER (NIT = 5)
      INTEGER Z(0:15)
      REAL A(12000), CHECK
      COMMON /GRID/ X
      X = 4
      DO K = 0, X - 1
        Z(K) = 5 + K
      END DO
      DO I = 1, 12000
        A(I) = 0.001 * I
      END DO
      DO T = 1, NIT
        CALL FTRVMT(A, Z)
      END DO
      CHECK = 0.0
      DO I = 1, 12000
        CHECK = CHECK + A(I)
      END DO
      PRINT *, CHECK
      END

      SUBROUTINE FTRVMT(A, Z)
      INTEGER X, K, J, I
      INTEGER Z(0:15)
      REAL A(12000)
      COMMON /GRID/ X
      DO K = 0, X - 1
        DO J = 0, Z(K)
          DO I = 0, 128
            A(258*X*J + 129*K + I + 1) = A(258*X*J + 129*K + I + 1) * 0.99 + 0.5
            A(258*X*J + 129*K + I + 1 + 129*X) = A(258*X*J + 129*K + I + 1) + 1.0
          END DO
        END DO
      END DO
      RETURN
      END
|} }

(* BDNA: the paper's Fig. 5 — array privatization of A and of the
   monotonically filled index array IND; the K loop is an inherently
   sequential compaction scan, the outer I loop parallelizes once A and
   IND are private.  Baseline: gets the small inner J and L loops only. *)
let bdna =
  { name = "BDNA";
    origin = Perfect;
    paper_lines = 4887;
    paper_serial_s = 56;
    paper_polaris_speedup = 3.5;
    paper_pfa_speedup = 1.1;
    enabling = [ "array privatization"; "monotonic index arrays"; "GSA demand proofs" ];
    description = "molecular dynamics of biomolecules, neighbor compaction";
    source = {|
      PROGRAM BDNA
      INTEGER N, NIT, I, J, K, L, P, M, T, IND(100)
      PARAMETER (N = 48, NIT = 4)
      REAL A(100), X(50, 50), Y(50, 50), Z, W, R, RCUTS, CHECK
      W = 0.5
      Z = 1.5
      RCUTS = 20.0
      DO I = 1, N
        DO J = 1, N
          X(I, J) = I * 0.4 + J * 0.2
          Y(I, J) = I * 0.1 + J * 0.3
        END DO
      END DO
      DO T = 1, NIT
        DO I = 2, N
          DO J = 1, I - 1
            IND(J) = 0
            A(J) = X(I, J) - Y(I, J)
            R = A(J) + W
            IF (R .LT. RCUTS) IND(J) = 1
          END DO
          P = 0
          DO K = 1, I - 1
            IF (IND(K) .NE. 0) THEN
              P = P + 1
              IND(P) = K
            END IF
          END DO
          DO L = 1, P
            M = IND(L)
            X(I, L) = A(M) + Z
          END DO
        END DO
      END DO
      CHECK = 0.0
      DO I = 1, N
        CHECK = CHECK + X(I, I)
      END DO
      PRINT *, CHECK
      END
|} }

(* MDG: histogram reductions through the neighbor list NB — the force
   array F is accumulated at subscripted subscripts.  Polaris recognizes
   the idiom and parallelizes the pair loop with a reduction merge;
   the baseline only handles scalar reductions and stays serial there,
   picking up the element-wise position update instead. *)
let mdg =
  { name = "MDG";
    origin = Perfect;
    paper_lines = 1430;
    paper_serial_s = 178;
    paper_polaris_speedup = 5.5;
    paper_pfa_speedup = 1.2;
    enabling = [ "histogram reductions" ];
    description = "molecular dynamics of water, neighbor-list forces";
    source = {|
      PROGRAM MDG
      INTEGER NATOM, NNB, NIT, I, J, T, K
      PARAMETER (NATOM = 200, NNB = 6, NIT = 5)
      INTEGER NB(200, 6)
      REAL F(200), XP(200), RIJ, D, CHECK, DT
      DT = 0.001
      DO I = 1, NATOM
        XP(I) = I * 0.3
        F(I) = 0.0
        DO J = 1, NNB
          NB(I, J) = MOD(I * 7 + J * 13, NATOM) + 1
        END DO
      END DO
      DO T = 1, NIT
        DO I = 1, NATOM
          DO J = 1, NNB
            K = NB(I, J)
            D = XP(I) - XP(K)
            RIJ = D * D + 0.01
            F(I) = F(I) + D / RIJ
            F(K) = F(K) - D / RIJ
          END DO
        END DO
        DO I = 1, NATOM
          XP(I) = XP(I) + F(I) * DT
        END DO
      END DO
      CHECK = 0.0
      DO I = 1, NATOM
        CHECK = CHECK + XP(I)
      END DO
      PRINT *, CHECK
      END
|} }

(* ARC2D: implicit finite-difference sweeps; the per-column work array
   W inside the (inlined) column-sweep subroutine must be privatized to
   run the K loop in parallel.  Baseline: no inlining, so the K loop
   keeps its CALL and only the explicit stencil loop parallelizes. *)
let arc2d =
  { name = "ARC2D";
    origin = Perfect;
    paper_lines = 4694;
    paper_serial_s = 215;
    paper_polaris_speedup = 4.6;
    paper_pfa_speedup = 2.0;
    enabling = [ "inlining"; "array privatization (sweep regions)" ];
    description = "implicit finite-difference fluid flow";
    source = {|
      PROGRAM ARC2D
      INTEGER JMAX, KMAX, NIT, J, K, T
      PARAMETER (JMAX = 48, KMAX = 32, NIT = 4)
      REAL Q(48, 32), S(48, 32), CHECK
      DO K = 1, KMAX
        DO J = 1, JMAX
          Q(J, K) = J * 0.05 + K * 0.02
        END DO
      END DO
      DO T = 1, NIT
        DO K = 2, KMAX - 1
          DO J = 2, JMAX - 1
            S(J, K) = Q(J + 1, K) - 2.0 * Q(J, K) + Q(J - 1, K)
     &             + Q(J, K + 1) - 2.0 * Q(J, K) + Q(J, K - 1)
          END DO
        END DO
        DO K = 2, KMAX - 1
          CALL COLSWP(Q, S, K)
        END DO
      END DO
      CHECK = 0.0
      DO K = 1, KMAX
        CHECK = CHECK + Q(24, K)
      END DO
      PRINT *, CHECK
      END

      SUBROUTINE COLSWP(Q, S, K)
      INTEGER JMAX, KMAX, J, K
      PARAMETER (JMAX = 48, KMAX = 32)
      REAL Q(48, 32), S(48, 32), W(48)
      W(1) = S(2, K)
      DO J = 2, JMAX
        W(J) = S(MIN(J, JMAX - 1), K) + 0.4 * W(J - 1)
      END DO
      DO J = 2, JMAX - 1
        Q(J, K) = Q(J, K) + 0.1 * W(J)
      END DO
      RETURN
      END
|} }

(* FLO52: transonic flow — predominantly clean rectangular stencils
   that both pipelines parallelize (strong SIV suffices); Polaris adds
   one privatization-enabled loop, so it ends slightly ahead. *)
let flo52 =
  { name = "FLO52";
    origin = Perfect;
    paper_lines = 2370;
    paper_serial_s = 38;
    paper_polaris_speedup = 4.4;
    paper_pfa_speedup = 3.9;
    enabling = [ "classic dependence tests"; "array privatization (one loop)" ];
    description = "transonic flow past an airfoil, multigrid-like stencils";
    source = {|
      PROGRAM FLO52
      INTEGER NI, NJ, NIT, I, J, T
      PARAMETER (NI = 52, NJ = 36, NIT = 4)
      REAL U(52, 36), V(52, 36), RES(52, 36), FLUX(52), CHECK
      DO J = 1, NJ
        DO I = 1, NI
          U(I, J) = 0.3 * I + 0.1 * J
          V(I, J) = 0.0
        END DO
      END DO
      DO T = 1, NIT
        DO J = 2, NJ - 1
          DO I = 2, NI - 1
            RES(I, J) = U(I + 1, J) + U(I - 1, J) + U(I, J + 1)
     &               + U(I, J - 1) - 4.0 * U(I, J)
          END DO
        END DO
        DO J = 2, NJ - 1
          DO I = 1, NI
            FLUX(I) = 0.5 * (U(I, J) + U(I, J - 1))
          END DO
          DO I = 2, NI - 1
            V(I, J) = FLUX(I + 1) - FLUX(I)
          END DO
        END DO
        DO J = 2, NJ - 1
          DO I = 2, NI - 1
            U(I, J) = U(I, J) + 0.05 * RES(I, J) + 0.01 * V(I, J)
          END DO
        END DO
      END DO
      CHECK = 0.0
      DO J = 1, NJ
        CHECK = CHECK + U(26, J)
      END DO
      PRINT *, CHECK
      END
|} }

let all = [ trfd; ocean; bdna; mdg; arc2d; flo52 ]
