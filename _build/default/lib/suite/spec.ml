(** The eight SPEC CFP92/CFP95 codes of the evaluation (paper §4.1). *)

open Code

(* APPLU: SSOR — the wavefront sweeps carry true recurrences in both
   grid dimensions, so neither pipeline parallelizes the solver; both
   get the right-hand-side stencil, leaving speedups near 1. *)
let applu =
  { name = "APPLU";
    origin = Spec;
    paper_lines = 3870;
    paper_serial_s = 1203;
    paper_polaris_speedup = 1.1;
    paper_pfa_speedup = 1.05;
    enabling = [ "(none: true recurrences dominate)" ];
    description = "parabolic/elliptic PDE solver, SSOR wavefronts";
    source = {|
      PROGRAM APPLU
      INTEGER NI, NJ, NIT, I, J, T
      PARAMETER (NI = 64, NJ = 48, NIT = 4)
      REAL U(64, 48), F(64, 48), B(64, 48), CHECK
      DO J = 1, NJ
        DO I = 1, NI
          U(I, J) = 0.1 * I + 0.05 * J
          B(I, J) = 1.0
        END DO
      END DO
      DO T = 1, NIT
        DO J = 2, NJ - 1
          DO I = 2, NI - 1
            F(I, J) = B(I, J) + 0.2 * (U(I + 1, J) + U(I, J + 1))
          END DO
        END DO
        DO J = 2, NJ - 1
          DO I = 2, NI - 1
            U(I, J) = 0.25 * (U(I - 1, J) + U(I, J - 1) + F(I, J))
          END DO
        END DO
        DO J = NJ - 1, 2, -1
          DO I = NI - 1, 2, -1
            U(I, J) = 0.25 * (U(I + 1, J) + U(I, J + 1) + F(I, J))
          END DO
        END DO
      END DO
      CHECK = 0.0
      DO J = 1, NJ
        CHECK = CHECK + U(32, J)
      END DO
      PRINT *, CHECK
      END
|} }

(* APPSP: per-plane tridiagonal solves; the work row TMP must be
   privatized (with written-so-far regions for the elimination sweep)
   to run the K loop in parallel.  The baseline sees the same
   parallelism only at the inner loops — the paper's "detects as much
   parallelism, but the generated code does not take advantage". *)
let appsp =
  { name = "APPSP";
    origin = Spec;
    paper_lines = 4439;
    paper_serial_s = 1241;
    paper_polaris_speedup = 3.3;
    paper_pfa_speedup = 1.4;
    enabling = [ "array privatization (sweep regions)" ];
    description = "pseudo-spectral solver, batched tridiagonal systems";
    source = {|
      PROGRAM APPSP
      INTEGER NI, NK, NIT, I, K, T
      PARAMETER (NI = 64, NK = 48, NIT = 4)
      REAL RHS(64, 48), SOL(64, 48), TMP(64), CHECK
      DO K = 1, NK
        DO I = 1, NI
          RHS(I, K) = 0.01 * I + 0.02 * K
        END DO
      END DO
      DO T = 1, NIT
        DO K = 1, NK
          TMP(1) = RHS(1, K)
          DO I = 2, NI
            TMP(I) = RHS(I, K) - 0.3 * TMP(I - 1)
          END DO
          DO I = 1, NI
            SOL(I, K) = TMP(I) * 1.1
          END DO
        END DO
        DO K = 1, NK
          DO I = 1, NI
            RHS(I, K) = SOL(I, K) * 0.9 + 0.01
          END DO
        END DO
      END DO
      CHECK = 0.0
      DO K = 1, NK
        CHECK = CHECK + SOL(32, K)
      END DO
      PRINT *, CHECK
      END
|} }

(* HYDRO2D: Navier-Stokes stencils plus global scalar reductions; both
   pipelines parallelize the stencils and the scalar sum, Polaris also
   privatizes the flux row. *)
let hydro2d =
  { name = "HYDRO2D";
    origin = Spec;
    paper_lines = 4292;
    paper_serial_s = 1474;
    paper_polaris_speedup = 4.3;
    paper_pfa_speedup = 3.4;
    enabling = [ "classic tests"; "scalar reductions"; "array privatization" ];
    description = "galactical jet simulation, Navier-Stokes stencils";
    source = {|
      PROGRAM HYDRO2D
      INTEGER NI, NJ, NIT, I, J, T
      PARAMETER (NI = 56, NJ = 44, NIT = 4)
      REAL RO(56, 44), RN(56, 44), VX(56, 44), FL(56), EK, CHECK
      DO J = 1, NJ
        DO I = 1, NI
          RO(I, J) = 1.0 + 0.01 * I
          RN(I, J) = RO(I, J)
          VX(I, J) = 0.1 * J
        END DO
      END DO
      DO T = 1, NIT
        DO J = 2, NJ - 1
          DO I = 1, NI
            FL(I) = 0.5 * (RO(I, J) * VX(I, J) + RO(I, J - 1) * VX(I, J - 1))
          END DO
          DO I = 2, NI - 1
            RN(I, J) = RO(I, J) - 0.02 * (FL(I + 1) - FL(I))
          END DO
        END DO
        DO J = 2, NJ - 1
          DO I = 2, NI - 1
            RO(I, J) = RN(I, J)
          END DO
        END DO
        EK = 0.0
        DO J = 1, NJ
          DO I = 1, NI
            EK = EK + VX(I, J) * VX(I, J) * RO(I, J)
          END DO
        END DO
        DO J = 2, NJ - 1
          DO I = 2, NI - 1
            VX(I, J) = VX(I, J) + 0.001 * EK / (1.0 + RO(I, J))
          END DO
        END DO
      END DO
      PRINT *, EK
      END
|} }

(* SU2COR: one of the two codes where the baseline ends up ahead: the
   gauge-update loop is a histogram reduction over a large table whose
   merge cost exceeds the loop's work, so Polaris' parallelization of
   it loses time, while the baseline leaves it serial and speeds up the
   element-wise weight update instead. *)
let su2cor =
  { name = "SU2COR";
    origin = Spec;
    paper_lines = 2332;
    paper_serial_s = 779;
    paper_polaris_speedup = 0.8;
    paper_pfa_speedup = 1.3;
    enabling = [ "(histogram reduction parallelized at a loss)" ];
    description = "Monte Carlo quantum field theory, gauge links";
    source = {|
      PROGRAM SU2COR
      INTEGER NSITE, NG, NIT, I, T, S, NS
      PARAMETER (NSITE = 256, NG = 8192, NIT = 4, NS = 8)
      INTEGER LNK(256)
      REAL G(8192), W(256), CHECK
      DO I = 1, NSITE
        LNK(I) = MOD(I * 37, NG) + 1
        W(I) = 0.5 + 0.001 * I
      END DO
      DO I = 1, NG
        G(I) = 0.0
      END DO
      DO T = 1, NIT
        DO S = 1, NS
          DO I = 1, NSITE
            G(LNK(I)) = G(LNK(I)) + W(I) * 0.5
          END DO
          DO I = 1, NSITE
            W(I) = W(I) * 0.9 + 0.01
          END DO
        END DO
      END DO
      CHECK = 0.0
      DO I = 1, NSITE
        CHECK = CHECK + G(I) + W(I)
      END DO
      PRINT *, CHECK
      END
|} }

(* SWIM: shallow-water stencils — rectangular, stride-1, read/write
   disjoint arrays; essentially everything parallelizes under both
   pipelines (strong SIV is enough), as the paper's near-parity
   suggests for simple codes. *)
let swim =
  { name = "SWIM";
    origin = Spec;
    paper_lines = 429;
    paper_serial_s = 1106;
    paper_polaris_speedup = 6.0;
    paper_pfa_speedup = 5.7;
    enabling = [ "classic dependence tests" ];
    description = "shallow water equations, finite differences";
    source = {|
      PROGRAM SWIM
      INTEGER NI, NJ, NIT, I, J, T
      PARAMETER (NI = 64, NJ = 64, NIT = 4)
      REAL U(64, 64), V(64, 64), P(64, 64), UN(64, 64), VN(64, 64), CHECK
      DO J = 1, NJ
        DO I = 1, NI
          U(I, J) = 0.1 * I
          V(I, J) = 0.1 * J
          P(I, J) = 10.0
        END DO
      END DO
      DO T = 1, NIT
        DO J = 2, NJ - 1
          DO I = 2, NI - 1
            UN(I, J) = U(I, J) - 0.05 * (P(I + 1, J) - P(I - 1, J))
            VN(I, J) = V(I, J) - 0.05 * (P(I, J + 1) - P(I, J - 1))
          END DO
        END DO
        DO J = 2, NJ - 1
          DO I = 2, NI - 1
            P(I, J) = P(I, J) - 0.1 * (UN(I + 1, J) - UN(I - 1, J)
     &              + VN(I, J + 1) - VN(I, J - 1))
          END DO
        END DO
        DO J = 2, NJ - 1
          DO I = 2, NI - 1
            U(I, J) = UN(I, J)
            V(I, J) = VN(I, J)
          END DO
        END DO
      END DO
      CHECK = 0.0
      DO J = 1, NJ
        CHECK = CHECK + P(32, J)
      END DO
      PRINT *, CHECK
      END
|} }

(* TFFT2: FFT-style halves with symbolic sizes behind a call: Polaris
   inlines and propagates the size, then the range test proves the
   butterfly halves disjoint; the baseline faces a symbolic term [N2+I]
   it cannot make affine. *)
let tfft2 =
  { name = "TFFT2";
    origin = Spec;
    paper_lines = 642;
    paper_serial_s = 946;
    paper_polaris_speedup = 2.6;
    paper_pfa_speedup = 1.1;
    enabling = [ "inlining"; "symbolic range test" ];
    description = "FFT kernels, disjoint butterfly halves";
    source = {|
      PROGRAM TFFT2
      INTEGER N2, NIT, I, T
      PARAMETER (NIT = 5)
      REAL A(512), B(512), CHECK
      N2 = 256
      DO I = 1, 2 * N2
        A(I) = 0.01 * I
      END DO
      DO T = 1, NIT
        CALL STEP(A, B, N2)
      END DO
      CHECK = 0.0
      DO I = 1, 2 * N2
        CHECK = CHECK + A(I)
      END DO
      PRINT *, CHECK
      END

      SUBROUTINE STEP(A, B, N2)
      INTEGER N2, I, BR
      REAL A(512), B(512)
      DO I = 1, N2
        B(I) = A(2 * I - 1) + A(2 * I)
        B(N2 + I) = A(2 * I - 1) - A(2 * I)
      END DO
      DO I = 1, 2 * N2, 2
        BR = MOD(I * 317, 2 * N2 - 1) + 1
        A(BR) = B(I) * 0.7 + 0.01
        A(BR + 1) = B(I) * 0.3
      END DO
      RETURN
      END
|} }

(* TOMCATV: mesh generation with per-row temporaries RX/RY; the outer
   row loop needs them privatized (Polaris), the baseline parallelizes
   only the inner column loops. *)
let tomcatv =
  { name = "TOMCATV";
    origin = Spec;
    paper_lines = 190;
    paper_serial_s = 1327;
    paper_polaris_speedup = 3.9;
    paper_pfa_speedup = 1.4;
    enabling = [ "array privatization" ];
    description = "2-D mesh generation with row workspaces";
    source = {|
      PROGRAM TOMCATV
      INTEGER NI, NJ, NIT, I, J, T
      PARAMETER (NI = 12, NJ = 240, NIT = 4)
      REAL X(12, 240), Y(12, 240), XO(12, 240), YO(12, 240)
      REAL RX(12), RY(12), CHECK
      DO J = 1, NJ
        DO I = 1, NI
          X(I, J) = I + 0.1 * J
          Y(I, J) = J - 0.05 * I
          XO(I, J) = X(I, J)
          YO(I, J) = Y(I, J)
        END DO
      END DO
      DO T = 1, NIT
        DO J = 2, NJ - 1
          DO I = 2, NI - 1
            RX(I) = XO(I + 1, J) + XO(I - 1, J) + XO(I, J + 1) + XO(I, J - 1)
     &            - 4.0 * XO(I, J) + 0.01 * SQRT(XO(I, J) * XO(I, J) + 1.0)
            RY(I) = YO(I + 1, J) + YO(I - 1, J) + YO(I, J + 1) + YO(I, J - 1)
     &            - 4.0 * YO(I, J) + 0.01 * SQRT(YO(I, J) * YO(I, J) + 1.0)
          END DO
          DO I = 2, NI - 1
            X(I, J) = XO(I, J) + 0.07 * RX(I)
            Y(I, J) = YO(I, J) + 0.07 * RY(I)
          END DO
        END DO
        DO J = 2, NJ - 1
          DO I = 2, NI - 1
            XO(I, J) = X(I, J)
            YO(I, J) = Y(I, J)
          END DO
        END DO
      END DO
      CHECK = 0.0
      DO J = 1, NJ
        CHECK = CHECK + X(6, J) + Y(6, J)
      END DO
      PRINT *, CHECK
      END
|} }

(* WAVE5: particle-in-cell — charge deposition through the particle
   index array is a large histogram (Polaris parallelizes it at a loss,
   the second baseline win), and the position scatter is not a
   reduction at all: the paper's run-time (LRPD) candidate. *)
let wave5 =
  { name = "WAVE5";
    origin = Spec;
    paper_lines = 7764;
    paper_serial_s = 788;
    paper_polaris_speedup = 0.9;
    paper_pfa_speedup = 1.2;
    enabling = [ "(speculative candidate: LRPD)"; "histogram reductions" ];
    description = "plasma particle-in-cell, scatter/gather";
    source = {|
      PROGRAM WAVE5
      INTEGER NP, NGRID, NIT, K, T, I
      PARAMETER (NP = 320, NGRID = 8192, NIT = 6)
      INTEGER IP(320)
      REAL RHO(8192), XV(320), VEL(320), CHECK
      DO K = 1, NP
        IP(K) = MOD(K * 29, NP) + 1
        XV(K) = 0.5 * K
        VEL(K) = 0.01 * K
      END DO
      DO I = 1, NGRID
        RHO(I) = 0.0
      END DO
      DO T = 1, NIT
        DO K = 1, NP
          RHO(IP(K)) = RHO(IP(K)) + 0.3
        END DO
        DO K = 1, NP
          XV(IP(K)) = XV(IP(K)) * 0.5 + VEL(K)
        END DO
        DO K = 1, NP
          VEL(K) = VEL(K) * 0.99
        END DO
      END DO
      CHECK = 0.0
      DO K = 1, NP
        CHECK = CHECK + XV(K)
      END DO
      PRINT *, CHECK
      END
|} }

let all = [ applu; appsp; hydro2d; su2cor; swim; tfft2; tomcatv; wave5 ]
