(** Scalar runtime values of the Fortran interpreter. *)

type t =
  | Int of int
  | Real of float
  | Bool of bool
  | Str of string

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

let to_int = function
  | Int n -> n
  | Real x -> int_of_float x   (* Fortran INT(): truncation toward zero *)
  | v -> type_error "integer expected, got %s" (match v with Bool _ -> "logical" | Str _ -> "character" | _ -> "?")

let to_float = function
  | Int n -> float_of_int n
  | Real x -> x
  | _ -> type_error "numeric value expected"

let to_bool = function
  | Bool b -> b
  | _ -> type_error "logical value expected"

let is_real = function Real _ -> true | _ -> false

(* Fortran numeric promotion: Int op Int stays Int, anything Real is Real *)
let arith fint freal a b =
  match (a, b) with
  | Int x, Int y -> Int (fint x y)
  | _ -> Real (freal (to_float a) (to_float b))

let add = arith ( + ) ( +. )
let sub = arith ( - ) ( -. )
let mul = arith ( * ) ( *. )

let div a b =
  match (a, b) with
  | Int _, Int 0 -> raise Division_by_zero
  | Int x, Int y ->
    (* Fortran integer division truncates toward zero, as does OCaml's / *)
    Int (x / y)
  | _ -> Real (to_float a /. to_float b)

let rec ipow b e = if e <= 0 then 1 else b * ipow b (e - 1)

let pow a b =
  match (a, b) with
  | Int x, Int y ->
    if y >= 0 then Int (ipow x y)
    else if x = 1 then Int 1
    else if x = -1 then Int (if y mod 2 = 0 then 1 else -1)
    else Int 0
  | _, Int y when y >= 0 ->
    (* iterated multiplication: matches unrolled recurrences exactly *)
    let b = to_float a in
    let rec go acc n = if n = 0 then acc else go (acc *. b) (n - 1) in
    Real (go 1.0 y)
  | _, Int y -> Real (Float.pow (to_float a) (float_of_int y))
  | _ -> Real (Float.pow (to_float a) (to_float b))

let neg = function Int n -> Int (-n) | Real x -> Real (-.x) | _ -> type_error "negation of non-number"

let compare_num a b =
  match (a, b) with
  | Int x, Int y -> compare x y
  | _ -> compare (to_float a) (to_float b)

let equal a b =
  match (a, b) with
  | Bool x, Bool y -> x = y
  | Str x, Str y -> String.equal x y
  | _ -> compare_num a b = 0

let pp ppf = function
  | Int n -> Fmt.int ppf n
  | Real x -> Fmt.pf ppf "%g" x
  | Bool b -> Fmt.string ppf (if b then "T" else "F")
  | Str s -> Fmt.string ppf s

let to_string v = Fmt.str "%a" pp v
