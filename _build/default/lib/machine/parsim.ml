(** Shared-memory multiprocessor timing model.

    Stands in for the paper's 8-processor SGI Challenge (Fig. 7) and
    Alliant FX/80 (Fig. 6).  Given the per-iteration work of a DOALL
    loop it computes the parallel execution time under static block
    scheduling plus the overheads the paper's transformations imply
    (fork/join, private-copy setup, reduction merging). *)

type config = {
  procs : int;              (** number of processors *)
  fork_cost : int;          (** fixed cost of starting a parallel region *)
  fork_per_proc : int;      (** per-processor dispatch cost *)
  private_setup : int;      (** per privatized name, per processor *)
  reduction_per_elem : int; (** merge cost per reduced element, per processor *)
  barrier_cost : int;       (** join barrier *)
}

let default ?(procs = 8) () =
  { procs; fork_cost = 120; fork_per_proc = 12; private_setup = 6;
    reduction_per_elem = 2; barrier_cost = 40 }

(** Static block scheduling: iteration [k] of [n] goes to processor
    [k * p / n]; the region time is the maximum per-processor sum. *)
let block_schedule_time (cfg : config) (iter_costs : int array) =
  let n = Array.length iter_costs in
  if n = 0 then 0
  else begin
    let p = max 1 cfg.procs in
    let sums = Array.make p 0 in
    Array.iteri
      (fun k c ->
        let proc = min (p - 1) (k * p / n) in
        sums.(proc) <- sums.(proc) + c)
      iter_costs;
    Array.fold_left max 0 sums
  end

(** Total simulated time of one DOALL instantiation.

    [n_private] privatized names, [reduction_elems] total elements that
    must be merged across processors after the loop. *)
let doall_time (cfg : config) ~iter_costs ~n_private ~reduction_elems =
  let p = max 1 cfg.procs in
  let fork = cfg.fork_cost + (cfg.fork_per_proc * p) in
  let setup = cfg.private_setup * n_private * p in
  let body = block_schedule_time cfg iter_costs in
  let merge = cfg.reduction_per_elem * reduction_elems in
  fork + setup + body + merge + cfg.barrier_cost

(** Speedup of [par] over [seq] as a float. *)
let speedup ~seq ~par =
  if par <= 0 then 0.0 else float_of_int seq /. float_of_int par
