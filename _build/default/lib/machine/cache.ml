(** Direct-mapped data cache model.

    A deliberately small model: it exists to give the cost model a
    locality signal (stride-1 loops cheap, large-stride or scattered
    access expensive) so that code-generation differences between the
    Polaris and baseline pipelines show up in simulated time, as they
    did between Polaris and PFA on the SGI Challenge (paper §4.2). *)

type t = {
  lines : int array;        (** tag per set; -1 = empty *)
  sets : int;               (** number of sets, power of two *)
  line_words : int;         (** 8-byte words per line *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(sets = 1024) ?(line_words = 8) () =
  { lines = Array.make sets (-1); sets; line_words; hits = 0; misses = 0 }

let reset t =
  Array.fill t.lines 0 t.sets (-1);
  t.hits <- 0;
  t.misses <- 0

(** [access t addr] records a word access; returns [true] on hit. *)
let access t addr =
  let line = addr / t.line_words in
  let set = line land (t.sets - 1) in
  if t.lines.(set) = line then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.lines.(set) <- line;
    t.misses <- t.misses + 1;
    false
  end

let stats t = (t.hits, t.misses)
