lib/machine/value.ml: Float Fmt String
