lib/machine/parsim.ml: Array
