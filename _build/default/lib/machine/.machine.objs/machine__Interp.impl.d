lib/machine/interp.ml: Array Ast Cache Expr Fir Float Fmt Hashtbl List Parsim Program Punit Storage String Symtab Util Value
