lib/machine/storage.ml: Array Ast Fir Fmt List Value
