lib/core/config.ml: Passes
