lib/core/pipeline.ml: Config Fir Fmt Frontend List Passes
