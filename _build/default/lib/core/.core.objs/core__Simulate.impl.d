lib/core/simulate.ml: Config Fir Frontend Machine Pipeline
