lib/core/pipeline.mli: Config Fir Format Passes
