lib/core/simulate.mli: Config Fir Pipeline
