lib/core/config.mli: Passes
