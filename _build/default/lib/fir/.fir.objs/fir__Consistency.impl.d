lib/fir/consistency.ml: Ast Expr Fmt Hashtbl List Option Program Punit Stmt Symtab
