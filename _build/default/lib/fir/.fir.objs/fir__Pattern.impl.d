lib/fir/pattern.ml: Ast Expr List String
