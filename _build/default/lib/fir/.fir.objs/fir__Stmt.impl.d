lib/fir/stmt.ml: Ast Expr Fmt List Option String
