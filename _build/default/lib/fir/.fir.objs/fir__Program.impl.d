lib/fir/program.ml: Ast Fmt List Punit String Symtab
