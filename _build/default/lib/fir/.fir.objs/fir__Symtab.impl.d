lib/fir/symtab.ml: Ast Expr Hashtbl List Option String
