lib/fir/ast.ml:
