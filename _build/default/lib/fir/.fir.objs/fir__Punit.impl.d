lib/fir/punit.ml: Ast Expr Fmt List Stmt String Symtab
