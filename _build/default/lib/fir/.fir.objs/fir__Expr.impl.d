lib/fir/expr.ml: Ast Float Fmt List Option Stdlib String
