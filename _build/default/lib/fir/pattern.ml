(** Wildcard pattern matching over expressions — the "Forbol" layer.

    Polaris derived a [Wildcard] class from [Expression]; a pattern is an
    ordinary expression containing wildcards, matched with the structural
    equality routine (paper §2).  The same wildcard number occurring
    twice must bind to structurally equal sub-expressions, which is what
    makes the reduction idiom [A(s) = A(s) + b] recognizable in one
    pattern. *)

open Ast

type binding = (int * expr) list

(** [matches pattern e] returns the wildcard bindings if [e] matches.
    Wildcards in argument-list positions match single expressions (no
    sequence wildcards). *)
let matches (pattern : expr) (e : expr) : binding option =
  let exception No_match in
  let bindings = ref [] in
  let bind n e =
    match List.assoc_opt n !bindings with
    | Some prev -> if not (Expr.equal prev e) then raise No_match
    | None -> bindings := (n, e) :: !bindings
  in
  let rec go p e =
    match (p, e) with
    | Wildcard n, _ -> bind n e
    | Int_lit a, Int_lit b -> if a <> b then raise No_match
    | Real_lit a, Real_lit b -> if a <> b then raise No_match
    | Logical_lit a, Logical_lit b -> if a <> b then raise No_match
    | Char_lit a, Char_lit b -> if not (String.equal a b) then raise No_match
    | Var a, Var b -> if not (String.equal a b) then raise No_match
    | Ref (a, xs), Ref (b, ys) | Fun_call (a, xs), Fun_call (b, ys) ->
      if not (String.equal a b) || List.length xs <> List.length ys then
        raise No_match;
      List.iter2 go xs ys
    | Unary (opa, a), Unary (opb, b) ->
      if opa <> opb then raise No_match;
      go a b
    | Binary (opa, a1, a2), Binary (opb, b1, b2) ->
      if opa <> opb then raise No_match;
      go a1 b1;
      go a2 b2
    | ( ( Int_lit _ | Real_lit _ | Logical_lit _ | Char_lit _ | Var _ | Ref _
        | Fun_call _ | Unary _ | Binary _ ),
        _ ) ->
      raise No_match
  in
  match go pattern e with
  | () -> Some (List.rev !bindings)
  | exception No_match -> None

(** Instantiate a pattern: replace each wildcard by its binding.
    @raise Not_found if a wildcard has no binding. *)
let instantiate (bindings : binding) (pattern : expr) =
  Expr.map
    (function Wildcard n -> List.assoc n bindings | e -> e)
    pattern

(** [rewrite ~lhs ~rhs e] rewrites every subexpression of [e] matching
    [lhs] into the corresponding instantiation of [rhs] (bottom-up, one
    pass). *)
let rewrite ~lhs ~rhs e =
  Expr.map
    (fun node ->
      match matches lhs node with
      | Some b -> instantiate b rhs
      | None -> node)
    e

(** Find all subexpressions of [e] matching [pattern], in pre-order. *)
let find_all pattern e =
  List.rev
    (Expr.fold
       (fun acc node ->
         match matches pattern node with
         | Some b -> (node, b) :: acc
         | None -> acc)
       [] e)
