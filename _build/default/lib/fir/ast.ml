(** Abstract syntax for the Fortran 77 subset manipulated by the compiler.

    This module only declares the shared types; operations live in
    {!Expr}, {!Stmt}, {!Symtab}, {!Punit}, {!Program} and {!Pattern}.
    Mirrors the Polaris internal representation (Faigin et al. 1994): a
    straightforward abstract syntax tree with high-level functionality
    layered on top.

    Identifiers are stored upper-case (Fortran is case-insensitive); the
    frontend normalizes on the way in. *)

type base_type =
  | Integer
  | Real
  | Double_precision
  | Complex
  | Logical
  | Character

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Pow
  | And | Or
  | Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Int_lit of int
  | Real_lit of float
  | Logical_lit of bool
  | Char_lit of string
  | Var of string                  (** scalar variable reference *)
  | Ref of string * expr list      (** array element reference *)
  | Fun_call of string * expr list (** intrinsic or user function call *)
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Wildcard of int                (** pattern metavariable, see {!Pattern} *)

(** Reduction operators recognized by the idiom pass (paper §3.2). *)
type reduction_op = Rsum | Rprod | Rmax | Rmin

(** [Single_address] reductions accumulate into a scalar or one fixed
    array element; [Histogram] reductions accumulate into elements that
    vary with the iteration (paper §3.2). *)
type reduction_kind = Single_address | Histogram

(** How a recognized reduction is implemented (paper §3.2, citing the
    idiom-recognition paper): [Blocked] guards each update with a
    synchronized region, [Private_copies] gives each processor a private
    scalar merged at the end, [Expanded] expands an array reduction into
    per-processor copies merged element-wise. *)
type reduction_form = Blocked | Private_copies | Expanded

type reduction = {
  red_var : string;
  red_op : reduction_op;
  red_kind : reduction_kind;
  red_form : reduction_form;
}

(** Parallelization facts attached to a [Do] loop by the analysis passes.
    Mutable by design: passes refine the annotation in place, in the same
    way Polaris attached assertions to its IR statements. *)
type loop_info = {
  mutable par : bool;                 (** proven DOALL *)
  mutable privates : string list;     (** privatized scalars and arrays *)
  mutable lastprivates : string list; (** privates needing last-value copy-out *)
  mutable reductions : reduction list;
  mutable par_reason : string;        (** test that proved/disproved parallelism *)
  mutable speculative : bool;         (** parallel only under a run-time PD test *)
}

type stmt = {
  sid : int;               (** unique statement id, see {!Stmt.fresh_id} *)
  label : int option;      (** numeric Fortran label, target of GOTO/DO *)
  kind : stmt_kind;
}

and stmt_kind =
  | Assign of expr * expr           (** lhs ([Var] or [Ref]) = rhs *)
  | If of expr * block * block
  | Do of do_loop
  | While of expr * block
  | Call of string * expr list
  | Goto of int
  | Continue
  | Return
  | Stop
  | Print of expr list

and do_loop = {
  index : string;
  init : expr;
  limit : expr;
  step : expr option;               (** [None] means step 1 *)
  body : block;
  info : loop_info;
}

and block = stmt list

type unit_kind = Main | Subroutine | Function of base_type

type symbol = {
  sym_name : string;
  sym_type : base_type;
  sym_dims : (expr * expr) list;  (** per-dimension (lower, upper); [[]] = scalar *)
  sym_param : expr option;        (** PARAMETER compile-time constant *)
  sym_common : string option;     (** name of the COMMON block, if any *)
  sym_arg_pos : int option;       (** position among the dummy arguments *)
}

let fresh_loop_info () =
  { par = false; privates = []; lastprivates = []; reductions = [];
    par_reason = ""; speculative = false }

let base_type_to_string = function
  | Integer -> "INTEGER"
  | Real -> "REAL"
  | Double_precision -> "DOUBLE PRECISION"
  | Complex -> "COMPLEX"
  | Logical -> "LOGICAL"
  | Character -> "CHARACTER"
