(** IR consistency checking — the [p_assert] discipline of Polaris §2.

    Polaris guarded every assumed condition with an assertion and aborted
    on violations; passes here call {!check_unit} after transforming a
    unit (tests do so systematically) so that a malformed rewrite is
    caught at its source rather than corrupting later passes. *)

open Ast

exception Violation of string

let fail fmt = Fmt.kstr (fun s -> raise (Violation s)) fmt

(** Check a single program unit.  Verifies that:
    - statement ids are unique across the unit;
    - every GOTO targets an existing label;
    - DO indices are scalar (not declared as arrays);
    - assignment left-hand sides are variables or array element refs;
    - array references have as many subscripts as declared dimensions;
    - no [Wildcard] leaks into program text. *)
let check_unit (u : Punit.t) =
  let seen = Hashtbl.create 64 in
  let labels = Hashtbl.create 16 in
  Stmt.iter
    (fun s ->
      if Hashtbl.mem seen s.sid then
        fail "unit %s: duplicate statement id %d" u.pu_name s.sid;
      Hashtbl.replace seen s.sid ();
      Option.iter (fun l -> Hashtbl.replace labels l ()) s.label)
    u.pu_body;
  let check_expr e =
    Expr.iter
      (function
        | Wildcard n -> fail "unit %s: wildcard ?%d in program text" u.pu_name n
        | Ref (v, args) -> (
          match Symtab.find_opt u.pu_symtab v with
          | Some { sym_dims = []; _ } when not (List.mem v u.pu_args) ->
            fail "unit %s: %s subscripted but declared scalar" u.pu_name v
          | Some { sym_dims; _ }
            when sym_dims <> [] && List.length sym_dims <> List.length args ->
            fail "unit %s: %s has %d dims, referenced with %d subscripts"
              u.pu_name v (List.length sym_dims) (List.length args)
          | _ -> ())
        | _ -> ())
      e
  in
  Stmt.iter
    (fun s ->
      List.iter (fun (_, e) -> check_expr e) (Stmt.exprs_of s);
      match s.kind with
      | Assign ((Var _ | Ref _), _) -> ()
      | Assign (lhs, _) ->
        fail "unit %s: invalid assignment target %s" u.pu_name (Expr.to_string lhs)
      | Do d ->
        if Symtab.is_array u.pu_symtab d.index then
          fail "unit %s: DO index %s is an array" u.pu_name d.index
      | Goto l ->
        if not (Hashtbl.mem labels l) then
          fail "unit %s: GOTO %d targets no label" u.pu_name l
      | _ -> ())
    u.pu_body

(** Check every unit of a program.  Returns the program for chaining. *)
let check (p : Program.t) =
  List.iter check_unit (Program.units p);
  p
