(** Reduction recognition (paper §3.2).

    Flags statements of the form

      [A(a1,...,an) = A(a1,...,an) op b]

    where [op] is [+] (also [-] via negation), [*], [MAX] or [MIN], the
    [ai] and [b] do not reference [A], [A] is not referenced elsewhere
    in the loop outside other reduction statements on [A], and [n] may
    be zero (scalar reduction).  Reductions into one fixed address are
    [Single_address]; those whose target element varies with the
    iteration are [Histogram].

    Candidate recognition uses the {!Fir.Pattern} wildcard machinery,
    mirroring Polaris' idiom-recognition pass; the dependence pass later
    relies on the returned statement ids to exclude flagged statements
    from dependence testing. *)

open Fir
open Ast

type found = {
  red : reduction;          (** variable, operator, kind *)
  stmt_ids : int list;      (** the flagged reduction statements *)
}

(* recognize [lhs op= beta]; returns the operator and beta *)
let reduction_rhs (lhs : expr) (rhs : expr) : (reduction_op * expr) option =
  let w = Wildcard 1 in
  let try_pat op pat =
    match Pattern.matches pat rhs with
    | Some b -> Some (op, Pattern.instantiate b (Wildcard 1))
    | None -> None
  in
  let candidates =
    [ (Rsum, Binary (Add, lhs, w));
      (Rsum, Binary (Add, w, lhs));
      (Rsum, Binary (Sub, lhs, w));
      (Rprod, Binary (Mul, lhs, w));
      (Rprod, Binary (Mul, w, lhs));
      (Rmax, Fun_call ("MAX", [ lhs; w ]));
      (Rmax, Fun_call ("MAX", [ w; lhs ]));
      (Rmax, Fun_call ("AMAX1", [ lhs; w ]));
      (Rmin, Fun_call ("MIN", [ lhs; w ]));
      (Rmin, Fun_call ("MIN", [ w; lhs ]));
      (Rmin, Fun_call ("AMIN1", [ lhs; w ])) ]
  in
  match
    List.fold_left
      (fun acc (op, pat) -> match acc with Some _ -> acc | None -> try_pat op pat)
      None candidates
  with
  | Some r -> Some r
  | None ->
    (* reassociated sums (e.g. [s = s + a + b]): recognize via the
       canonical polynomial: rhs = lhs + rest with coefficient 1 *)
    let module P = Symbolic.Poly in
    let module A = Symbolic.Atom in
    let atom =
      match lhs with
      | Var v -> Some (A.var v)
      | Ref _ -> Some (A.opaque lhs)
      | _ -> None
    in
    (match atom with
    | None -> None
    | Some a ->
      let p = P.of_expr rhs in
      if P.degree a p <> 1 then None
      else
        let coeffs = P.coeffs_in a p in
        let lin = List.assoc_opt 1 coeffs in
        let rest = Option.value ~default:P.zero (List.assoc_opt 0 coeffs) in
        (match lin with
        | Some c when P.equal c P.one -> Some (Rsum, P.to_expr rest)
        | _ -> None))

(* name of the reduction target *)
let target_name = function
  | Var v -> Some v
  | Ref (v, _) -> Some v
  | _ -> None

let is_reduction_stmt (s : stmt) : (string * reduction_op * expr list * expr) option =
  match s.kind with
  | Assign (lhs, rhs) -> (
    match (target_name lhs, reduction_rhs lhs rhs) with
    | Some v, Some (op, beta) ->
      let subs = match lhs with Ref (_, subs) -> subs | _ -> [] in
      (* neither subscripts nor beta may reference the target *)
      if Expr.mentions v beta || List.exists (Expr.mentions v) subs then None
      else Some (v, op, subs, beta)
    | _ -> None)
  | _ -> None

(* every reference to [v] in the body must be inside the flagged
   statements *)
let referenced_elsewhere (body : block) v (flagged : int list) =
  Stmt.fold
    (fun acc (s : stmt) ->
      acc
      || (not (List.mem s.sid flagged))
         && List.exists (fun (_, e) -> Expr.mentions v e) (Stmt.exprs_of s))
    false body

(* is the target address loop-varying (histogram) for this loop? *)
let is_histogram (body : block) (subs : expr list) =
  if subs = [] then false
  else
    let assigned = Stmt.assigned_names body in
    List.exists
      (fun sub -> List.exists (fun n -> Expr.mentions n sub) assigned)
      subs

(** Find the reductions of loop body [body].  All reduction statements
    on the same variable must use the same operator. *)
let find (symtab : Symtab.t) (body : block) : found list =
  ignore symtab;
  let stmts = Stmt.all_stmts body in
  let candidates =
    List.filter_map
      (fun s ->
        match is_reduction_stmt s with
        | Some (v, op, subs, _) -> Some (v, (op, subs, s.sid))
        | None -> None)
      stmts
  in
  let by_var = Hashtbl.create 8 in
  List.iter
    (fun (v, info) ->
      Hashtbl.replace by_var v
        (info :: Option.value ~default:[] (Hashtbl.find_opt by_var v)))
    candidates;
  Hashtbl.fold
    (fun v infos acc ->
      let ops = List.sort_uniq compare (List.map (fun (op, _, _) -> op) infos) in
      let sids = List.map (fun (_, _, sid) -> sid) infos in
      match ops with
      | [ op ] when not (referenced_elsewhere body v sids) ->
        let histogram =
          List.exists (fun (_, subs, _) -> is_histogram body subs) infos
        in
        let is_array = List.exists (fun (_, subs, _) -> subs <> []) infos in
        (* form selection (paper §3.2 / idiom-recognition paper): private
           copies for scalars, expansion for arrays; the blocked form is
           kept for completeness but loses to both on the simulated
           machine, matching the cited evaluation *)
        let form = if is_array then Expanded else Private_copies in
        { red =
            { red_var = v; red_op = op;
              red_kind = (if histogram then Histogram else Single_address);
              red_form = form };
          stmt_ids = sids }
        :: acc
      | _ -> acc)
    by_var []
  |> List.sort (fun a b -> String.compare a.red.red_var b.red.red_var)
