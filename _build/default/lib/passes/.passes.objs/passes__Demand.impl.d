lib/passes/demand.ml: Ast Atom Compare Expr Fir List Poly Punit Range Stmt Symbolic Symtab
