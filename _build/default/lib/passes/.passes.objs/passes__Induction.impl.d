lib/passes/induction.ml: Ast Atom Consistency Expr Fir Float List Option Poly Program Punit Stmt String Summation Symbolic Symtab Util
