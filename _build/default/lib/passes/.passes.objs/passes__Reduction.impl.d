lib/passes/reduction.ml: Ast Expr Fir Hashtbl List Option Pattern Stmt String Symbolic Symtab
