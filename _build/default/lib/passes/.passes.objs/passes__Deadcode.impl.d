lib/passes/deadcode.ml: Ast Consistency Expr Fir List Program Punit Stmt String Symtab Util
