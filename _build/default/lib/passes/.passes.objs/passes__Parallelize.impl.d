lib/passes/parallelize.ml: Analysis Ast Dep Expr Fir Fmt List Privatize Program Punit Range Range_prop Reduction Stmt String Symbolic Symtab
