lib/passes/constprop.ml: Ast Consistency Expr Fir List Option Program Punit Stmt Symtab Util
