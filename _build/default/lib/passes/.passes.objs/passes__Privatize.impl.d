lib/passes/privatize.ml: Ast Atom Compare Demand Expr Fir Fmt List Option Poly Punit Range Range_prop Stmt String Symbolic Symtab Util
