lib/passes/inline.ml: Ast Consistency Expr Fir Fmt Hashtbl List Option Program Punit Stmt String Symtab
