(** Tokens of the Fortran 77 subset lexer. *)

type t =
  | ID of string      (** identifier, upper-cased *)
  | INT of int
  | FLOAT of float
  | STR of string
  | PLUS | MINUS | STAR | SLASH | POW
  | LPAR | RPAR | COMMA | EQUALS | COLON
  | LT | LE | GT | GE | EQ | NE
  | AND | OR | NOT
  | TRUE | FALSE

let to_string = function
  | ID s -> s
  | INT n -> string_of_int n
  | FLOAT x -> string_of_float x
  | STR s -> "'" ^ s ^ "'"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | POW -> "**"
  | LPAR -> "(" | RPAR -> ")" | COMMA -> "," | EQUALS -> "=" | COLON -> ":"
  | LT -> ".LT." | LE -> ".LE." | GT -> ".GT." | GE -> ".GE."
  | EQ -> ".EQ." | NE -> ".NE."
  | AND -> ".AND." | OR -> ".OR." | NOT -> ".NOT."
  | TRUE -> ".TRUE." | FALSE -> ".FALSE."

(** A logical source line after continuation merging. *)
type line = {
  lineno : int;          (** first physical line number, for diagnostics *)
  label : int option;    (** leading numeric statement label *)
  toks : t list;
}
