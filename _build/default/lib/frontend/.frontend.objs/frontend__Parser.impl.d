lib/frontend/parser.ml: Array Ast Consistency Expr Fir Fmt Lexer List Option Program Punit Stmt String Symtab Token Util
