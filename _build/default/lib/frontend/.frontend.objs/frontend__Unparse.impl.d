lib/frontend/unparse.ml: Ast Buffer Expr Fir Fmt Hashtbl List Option Program Punit String Symtab
