lib/frontend/lexer.ml: Fmt List String Token
