lib/frontend/token.ml:
