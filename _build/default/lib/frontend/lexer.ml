(** Lexer for the Fortran 77 subset.

    Accepts a pragmatic mix of fixed and free form:
    - a line whose first column is [C], [c] or [*] is a comment;
    - [!] starts a comment anywhere;
    - continuation is a trailing [&] or a leading [&] on the next line;
    - a leading integer is the statement label.

    Dotted operators ([.LT.], [.AND.], …) and modern relational symbols
    ([<], [<=], …) are both recognized.  [D] exponents are read as
    doubles ([1.5D0]). *)

open Token

exception Error of string

let fail lineno fmt = Fmt.kstr (fun s -> raise (Error (Fmt.str "line %d: %s" lineno s))) fmt

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident c = is_alpha c || is_digit c || c = '_'

(* Tokenize one physical-line payload (label and comments stripped). *)
let tokenize_payload lineno (s : string) : t list =
  let n = String.length s in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  let dotted_op word =
    match String.uppercase_ascii word with
    | "LT" -> Some LT | "LE" -> Some LE | "GT" -> Some GT | "GE" -> Some GE
    | "EQ" -> Some EQ | "NE" -> Some NE
    | "AND" -> Some AND | "OR" -> Some OR | "NOT" -> Some NOT
    | "TRUE" -> Some TRUE | "FALSE" -> Some FALSE
    | _ -> None
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit s.[!i + 1]) then begin
      (* number: integer, or real with optional fraction/exponent *)
      let start = !i in
      while !i < n && is_digit s.[!i] do incr i done;
      let is_real = ref false in
      (* A '.' begins a fraction only if not a dotted operator like 1.EQ.2 *)
      if !i < n && s.[!i] = '.' then begin
        let j = ref (!i + 1) in
        let word_start = !j in
        while !j < n && is_alpha s.[!j] do incr j done;
        let looks_op =
          !j > word_start && !j < n && s.[!j] = '.'
          && dotted_op (String.sub s word_start (!j - word_start)) <> None
        in
        if not looks_op then begin
          is_real := true;
          incr i;
          while !i < n && is_digit s.[!i] do incr i done
        end
      end;
      if !i < n && (s.[!i] = 'E' || s.[!i] = 'e' || s.[!i] = 'D' || s.[!i] = 'd')
      then begin
        let save = !i in
        let j = ref (!i + 1) in
        if !j < n && (s.[!j] = '+' || s.[!j] = '-') then incr j;
        if !j < n && is_digit s.[!j] then begin
          is_real := true;
          while !j < n && is_digit s.[!j] do incr j done;
          i := !j
        end
        else i := save
      end;
      let text = String.sub s start (!i - start) in
      if !is_real then
        let text = String.map (function 'D' | 'd' -> 'E' | c -> c) text in
        push (FLOAT (float_of_string text))
      else push (INT (int_of_string text))
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && is_ident s.[!i] do incr i done;
      push (ID (String.uppercase_ascii (String.sub s start (!i - start))))
    end
    else if c = '\'' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && s.[!j] <> '\'' do incr j done;
      if !j >= n then fail lineno "unterminated string literal";
      push (STR (String.sub s start (!j - start)));
      i := !j + 1
    end
    else if c = '.' then begin
      (* dotted operator *)
      let j = ref (!i + 1) in
      let start = !j in
      while !j < n && is_alpha s.[!j] do incr j done;
      if !j >= n || s.[!j] <> '.' then fail lineno "bad dotted operator";
      (match dotted_op (String.sub s start (!j - start)) with
      | Some t -> push t
      | None -> fail lineno "unknown operator .%s." (String.sub s start (!j - start)));
      i := !j + 1
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "**" -> push POW; i := !i + 2
      | "<=" -> push LE; i := !i + 2
      | ">=" -> push GE; i := !i + 2
      | "==" -> push EQ; i := !i + 2
      | "/=" -> push NE; i := !i + 2
      | _ ->
        (match c with
        | '+' -> push PLUS | '-' -> push MINUS | '*' -> push STAR
        | '/' -> push SLASH | '(' -> push LPAR | ')' -> push RPAR
        | ',' -> push COMMA | '=' -> push EQUALS | ':' -> push COLON
        | '<' -> push LT | '>' -> push GT
        | _ -> fail lineno "unexpected character %C" c);
        incr i
    end
  done;
  List.rev !toks

let strip_comment s =
  (* cut at '!' outside string literals *)
  let n = String.length s in
  let rec go i in_str =
    if i >= n then s
    else if s.[i] = '\'' then go (i + 1) (not in_str)
    else if s.[i] = '!' && not in_str then String.sub s 0 i
    else go (i + 1) in_str
  in
  go 0 false

let is_comment_line s =
  String.length s > 0
  && (s.[0] = 'C' || s.[0] = 'c' || s.[0] = '*')
  && (String.length s < 2 || s.[1] <> '(')  (* allow identifiers? no: col-1 C is comment *)

(** Split source text into logical lines of tokens. *)
let lines_of_string (src : string) : line list =
  let raw = String.split_on_char '\n' src in
  (* merge continuations *)
  let merged = ref [] in
  let pending = ref None in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      if is_comment_line line then ()
      else
        let line = strip_comment line in
        let trimmed = String.trim line in
        if trimmed = "" then ()
        else
          let starts_amp = trimmed.[0] = '&' in
          let body =
            if starts_amp then String.sub trimmed 1 (String.length trimmed - 1)
            else trimmed
          in
          let ends_amp = String.length body > 0 && body.[String.length body - 1] = '&' in
          let body =
            if ends_amp then String.sub body 0 (String.length body - 1) else body
          in
          match (!pending, starts_amp) with
          | Some (ln, acc), true ->
            if ends_amp then pending := Some (ln, acc ^ " " ^ body)
            else begin
              merged := (ln, acc ^ " " ^ body) :: !merged;
              pending := None
            end
          | Some (ln, acc), false ->
            merged := (ln, acc) :: !merged;
            if ends_amp then pending := Some (lineno, body)
            else merged := (lineno, body) :: !merged
          | None, true ->
            (* continuation of previous merged line (fixed-form style) *)
            (match !merged with
            | (ln, acc) :: rest ->
              if ends_amp then begin
                merged := rest;
                pending := Some (ln, acc ^ " " ^ body)
              end
              else merged := (ln, acc ^ " " ^ body) :: rest
            | [] -> fail lineno "continuation with no preceding line")
          | None, false ->
            if ends_amp then pending := Some (lineno, body)
            else merged := (lineno, body) :: !merged)
    raw;
  (match !pending with
  | Some (ln, acc) -> merged := (ln, acc) :: !merged
  | None -> ());
  let merged = List.rev !merged in
  List.filter_map
    (fun (lineno, text) ->
      match tokenize_payload lineno text with
      | [] -> None
      | INT label :: rest -> Some { lineno; label = Some label; toks = rest }
      | toks -> Some { lineno; label = None; toks })
    merged
