lib/symbolic/range.ml: Atom Fir Fmt List Poly
