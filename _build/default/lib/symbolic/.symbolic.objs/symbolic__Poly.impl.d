lib/symbolic/poly.ml: Ast Atom Expr Fir Float Fmt Hashtbl List Option Rat Stdlib String Util
