lib/symbolic/atom.ml: Ast Expr Fir Fmt Stdlib String
