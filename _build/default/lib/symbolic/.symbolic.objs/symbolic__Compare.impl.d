lib/symbolic/compare.ml: Atom Hashtbl List Poly Range Rat Util
