lib/symbolic/summation.ml: Atom Fir Hashtbl List Poly Rat Util
