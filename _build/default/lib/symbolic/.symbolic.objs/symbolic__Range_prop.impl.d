lib/symbolic/range_prop.ml: Ast Atom Expr Fir List Poly Punit Range Stmt Symtab Util
