(** Atoms: the indivisible symbols of the polynomial layer.

    An atom is either a scalar integer variable (loop index or symbolic
    parameter) or an opaque expression the polynomial algebra cannot see
    into — an array element like [Z(K)], a function call, a symbolic
    power [2**I].  Opaque atoms compare structurally, so two occurrences
    of [Z(K)] are the same atom (value-numbering by structure, as in
    Polaris' symbolic expression layer). *)

open Fir

type t =
  | Avar of string         (** scalar variable, upper-case name *)
  | Aopaque of Ast.expr    (** canonical opaque sub-expression *)

let var name = Avar (String.uppercase_ascii name)
let opaque e = Aopaque e

let compare (a : t) (b : t) = Stdlib.compare a b
let equal a b = compare a b = 0

(** Scalar variables mentioned by the atom, including inside opaque
    expressions (needed to invalidate ranges when a variable is killed). *)
let mentions name = function
  | Avar v -> String.equal v name
  | Aopaque e -> Expr.mentions name e

let to_expr = function
  | Avar v -> Ast.Var v
  | Aopaque e -> e

let pp ppf = function
  | Avar v -> Fmt.string ppf v
  | Aopaque e -> Fmt.pf ppf "[%a]" Expr.pp e

let to_string a = Fmt.str "%a" pp a
