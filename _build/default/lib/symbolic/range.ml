(** Symbolic intervals and range environments (paper §3.3.1).

    Range propagation determines a symbolic lower and upper bound for
    each variable at each program point; an environment maps atoms to
    such intervals.  Bounds are polynomials or infinities. *)

type bound = Finite of Poly.t | Neg_inf | Pos_inf

type interval = { lo : bound; hi : bound }

let top = { lo = Neg_inf; hi = Pos_inf }
let exact p = { lo = Finite p; hi = Finite p }
let between lo hi = { lo = Finite lo; hi = Finite hi }
let at_least p = { lo = Finite p; hi = Pos_inf }
let at_most p = { lo = Neg_inf; hi = Finite p }

let bound_mentions_var name = function
  | Finite p -> Poly.mentions_var name p
  | Neg_inf | Pos_inf -> false

let bound_contains_atom a = function
  | Finite p -> Poly.contains_atom a p
  | Neg_inf | Pos_inf -> false

(** An environment: ordered association of atoms to intervals.  Later
    entries shadow earlier ones (insertion = refinement push). *)
type env = (Atom.t * interval) list

let empty : env = []

let find (env : env) (a : Atom.t) : interval option =
  List.assoc_opt a env
  |> function Some i -> Some i | None -> None

(** Push a (possibly refining) interval for [a]. *)
let push (env : env) a iv : env = (a, iv) :: env

(** Refine an existing interval by intersection. *)
let meet (a : interval) (b : interval) : interval =
  (* without comparing bounds we cannot pick the tighter of two finite
     bounds; prefer [b] (the newer fact) when both are finite *)
  let lo =
    match (a.lo, b.lo) with
    | Neg_inf, x | x, Neg_inf -> x
    | _, x -> x
  in
  let hi =
    match (a.hi, b.hi) with
    | Pos_inf, x | x, Pos_inf -> x
    | _, x -> x
  in
  { lo; hi }

let refine (env : env) a iv : env =
  match find env a with
  | Some old -> push env a (meet old iv)
  | None -> push env a iv

(** Remove all knowledge about scalar variable [name]: its own entry
    and every interval whose bounds mention it.  Called when [name] is
    assigned. *)
let kill_var (env : env) name : env =
  let name = Fir.Symtab.norm name in
  List.filter
    (fun (a, iv) ->
      (not (Atom.mentions name a))
      && (not (bound_mentions_var name iv.lo))
      && not (bound_mentions_var name iv.hi))
    env

let pp_bound ppf = function
  | Finite p -> Poly.pp ppf p
  | Neg_inf -> Fmt.string ppf "-inf"
  | Pos_inf -> Fmt.string ppf "+inf"

let pp_interval ppf iv = Fmt.pf ppf "[%a, %a]" pp_bound iv.lo pp_bound iv.hi

let pp ppf (env : env) =
  List.iter
    (fun (a, iv) -> Fmt.pf ppf "%s in %a@." (Atom.to_string a) pp_interval iv)
    env
