lib/dep/banerjee.ml: Analysis Fmt Linear List Symbolic
