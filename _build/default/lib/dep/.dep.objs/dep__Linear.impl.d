lib/dep/linear.ml: Analysis List Option Rat Symbolic Util
