lib/dep/driver.ml: Analysis Array Atom Banerjee Fir Fmt Gcd_test List Poly Range Range_test Siv String Symbolic
