lib/dep/range_test.ml: Atom Compare List Poly Range Symbolic
