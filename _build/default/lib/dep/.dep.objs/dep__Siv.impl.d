lib/dep/siv.ml: Linear List Symbolic
