lib/dep/gcd_test.ml: Linear List Symbolic
