(** Strong single-index-variable (SIV) test.

    Complements GCD/Banerjee in the baseline capability set: classic
    vectorizing compilers could handle subscripts like [A(I)] or
    [A(I+1)] without constant loop bounds, as long as the subscript
    pairs use one index with equal coefficients.  For such pairs the
    dependence distance is [d = (c_g - c_f) / a]; the tested loop
    carries no dependence when [d] is zero or non-integral.

    Enclosing loops are at the same iteration (direction [=]), so their
    terms must cancel (equal coefficients); inner loops run free
    (direction [*]), so the pair must not involve them at all. *)

type verdict = Independent | Maybe_dependent

let test ~(enclosing : string list) ~(index : string) ~(inner : string list)
    (f : Symbolic.Poly.t list) (g : Symbolic.Poly.t list) : verdict =
  let all = (index :: enclosing) @ inner in
  if List.length f <> List.length g then Maybe_dependent
  else
    let dim_independent (pf, pg) =
      match (Linear.of_poly all pf, Linear.of_poly all pg) with
      | Some af, Some ag ->
        let ok_enclosing =
          List.for_all (fun j -> Linear.coeff af j = Linear.coeff ag j) enclosing
        in
        let ok_inner =
          List.for_all
            (fun j -> Linear.coeff af j = 0 && Linear.coeff ag j = 0)
            inner
        in
        if not (ok_enclosing && ok_inner) then false
        else begin
          let a = Linear.coeff af index and b = Linear.coeff ag index in
          let c = ag.const - af.const in
          if a <> b then false
          else if a = 0 then
            (* no index: same element iff constants agree *)
            c <> 0
          else
            (* a*(i - i') = c: carried iff c/a is a non-zero integer *)
            c = 0 || c mod a <> 0
        end
      | _ -> false
    in
    if List.exists dim_independent (List.combine f g) then Independent
    else Maybe_dependent
