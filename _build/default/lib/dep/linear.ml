(** Extraction of affine subscript form for the classical tests.

    GCD and Banerjee (the baseline capability set) require subscripts
    affine in the loop indices with *integer constant* coefficients and
    constant loop bounds; anything else makes them answer "maybe
    dependent".  This module extracts that form or fails. *)

open Util

type affine = {
  const : int;                       (** constant term *)
  coeffs : (string * int) list;      (** loop index -> coefficient *)
}

(** [of_poly indices p] = affine view of [p] over the given loop-index
    names; [None] if [p] has non-index atoms, non-integer or non-constant
    coefficients, or degree > 1. *)
let of_poly (indices : string list) (p : Symbolic.Poly.t) : affine option =
  let exception Not_affine in
  try
    let const = ref 0 in
    let coeffs = ref [] in
    List.iter
      (fun (mono, c) ->
        if not (Rat.is_integer c) then raise Not_affine;
        let c = Rat.to_int c in
        match mono with
        | [] -> const := !const + c
        | [ (Symbolic.Atom.Avar v, 1) ] when List.mem v indices ->
          let prev = Option.value ~default:0 (List.assoc_opt v !coeffs) in
          coeffs := (v, prev + c) :: List.remove_assoc v !coeffs
        | _ -> raise Not_affine)
      p;
    Some { const = !const; coeffs = !coeffs }
  with Not_affine -> None

let coeff (a : affine) v = Option.value ~default:0 (List.assoc_opt v a.coeffs)

(** Constant loop bounds [lo, hi] of a loop, if both are constants and
    the step is 1. *)
let const_bounds (l : Analysis.Loops.loop) : (int * int) option =
  match
    (Symbolic.Poly.const_val l.lo, Symbolic.Poly.const_val l.hi, l.step)
  with
  | Some lo, Some hi, Some 1 when Rat.is_integer lo && Rat.is_integer hi ->
    Some (Rat.to_int lo, Rat.to_int hi)
  | _ -> None
