(** The classical GCD dependence test.

    Tests whether the linear diophantine equation [f(i) = g(i')] can
    have any integer solution: gcd of all index coefficients must divide
    the constant-term difference.  Ignores loop bounds entirely, so it
    only ever disproves dependence.  Part of the baseline ("PFA")
    capability set. *)

type verdict = Independent | Maybe_dependent

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(** [test ~indices f g]: [f] and [g] are same-dimension subscript
    polynomials of two accesses; [indices] are the loop index names in
    scope.  [Independent] only when the GCD criterion rules a common
    solution out in some dimension. *)
let test ~(indices : string list) (f : Symbolic.Poly.t list)
    (g : Symbolic.Poly.t list) : verdict =
  if List.length f <> List.length g then Maybe_dependent
  else
    let dim_independent (pf, pg) =
      match (Linear.of_poly indices pf, Linear.of_poly indices pg) with
      | Some af, Some ag ->
        (* f uses unprimed indices, g primed: all coefficients join *)
        let g_all =
          List.fold_left
            (fun acc (_, c) -> gcd acc c)
            0
            (af.coeffs @ ag.coeffs)
        in
        let c0 = ag.const - af.const in
        if g_all = 0 then c0 <> 0 else c0 mod g_all <> 0
      | _ -> false
    in
    if List.exists dim_independent (List.combine f g) then Independent
    else Maybe_dependent
