(** Small list utilities shared across the compiler. *)

(** [take n xs] is the first [n] elements of [xs] (all of [xs] if shorter). *)
let rec take n xs =
  if n <= 0 then [] else match xs with [] -> [] | x :: tl -> x :: take (n - 1) tl

(** [drop n xs] is [xs] without its first [n] elements. *)
let rec drop n xs = if n <= 0 then xs else match xs with [] -> [] | _ :: tl -> drop (n - 1) tl

(** [index_of p xs] is the position of the first element satisfying [p]. *)
let index_of p xs =
  let rec go i = function
    | [] -> None
    | x :: tl -> if p x then Some i else go (i + 1) tl
  in
  go 0 xs

(** All permutations of [xs]; exponential, callers bound the input size. *)
let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y != x) xs in
        List.map (fun p -> x :: p) (permutations rest))
      xs

(** [uniq cmp xs] sorts and deduplicates. *)
let uniq cmp xs = List.sort_uniq cmp xs

(** Cartesian pairing of a list with itself, including the diagonal. *)
let pairs xs = List.concat_map (fun a -> List.map (fun b -> (a, b)) xs) xs

(** [fold_left_map] compatible helper: sum of an [int] projection. *)
let sum_by f xs = List.fold_left (fun acc x -> acc + f x) 0 xs

let rec last = function
  | [] -> invalid_arg "Listx.last: empty list"
  | [ x ] -> x
  | _ :: tl -> last tl
