(** Exact rational arithmetic on native integers.

    Coefficients of the symbolic polynomials (see {!Symbolic.Poly}) are
    rationals so that closed forms such as [(n*n + n) / 2] stay exact.
    Native 63-bit integers are ample for the magnitudes appearing in
    compiler analyses; overflow is not checked. *)

type t = { num : int; den : int }
(** Invariant: [den > 0] and [gcd (abs num) den = 1]; zero is [0/1]. *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(** [make num den] builds the normalized rational [num/den].
    @raise Invalid_argument if [den = 0]. *)
let make num den =
  if den = 0 then invalid_arg "Rat.make: zero denominator";
  let sign = if den < 0 then -1 else 1 in
  let num = sign * num and den = sign * den in
  if num = 0 then { num = 0; den = 1 }
  else
    let g = gcd (abs num) den in
    { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num t = t.num
let den t = t.den

let is_zero t = t.num = 0
let is_integer t = t.den = 1

(** [to_int t] is the integer value of [t].
    @raise Invalid_argument if [t] is not an integer. *)
let to_int t =
  if t.den <> 1 then invalid_arg "Rat.to_int: not an integer";
  t.num

let to_float t = float_of_int t.num /. float_of_int t.den

let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let neg a = { a with num = -a.num }
let sub a b = add a (neg b)
let mul a b = make (a.num * b.num) (a.den * b.den)

(** @raise Division_by_zero if [b] is zero. *)
let div a b = if is_zero b then raise Division_by_zero else make (a.num * b.den) (a.den * b.num)

let compare a b = compare (a.num * b.den) (b.num * a.den)
let equal a b = a.num = b.num && a.den = b.den
let sign a = compare a zero
let abs a = { a with num = abs a.num }
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(** Floor of the rational as an integer. *)
let floor a = if a.num >= 0 then a.num / a.den else -(((-a.num) + a.den - 1) / a.den)

(** Ceiling of the rational as an integer. *)
let ceil a = -floor (neg a)

let pp ppf a =
  if a.den = 1 then Fmt.int ppf a.num else Fmt.pf ppf "%d/%d" a.num a.den

let to_string a = Fmt.str "%a" pp a
