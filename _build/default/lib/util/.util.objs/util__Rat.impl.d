lib/util/rat.ml: Fmt
