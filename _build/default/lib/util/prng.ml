(** Deterministic splitmix64 pseudo-random generator.

    All stochastic pieces of the reproduction (synthetic workload inputs,
    qcheck-independent fuzzing in the benches) draw from this generator so
    that every experiment is reproducible bit-for-bit from its seed. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [int t bound] is a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(** Uniform float in [\[0, 1)]. *)
let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0

(** [range t lo hi] is a uniform integer in [\[lo, hi\]] inclusive. *)
let range t lo hi =
  if hi < lo then invalid_arg "Prng.range: empty range";
  lo + int t (hi - lo + 1)

(** [pick t xs] chooses a uniform element of the non-empty list [xs]. *)
let pick t xs =
  match xs with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))
