(** The paper's Fig. 5: BDNA's most time-consuming loop, parallelized by
    privatizing the work array A and the monotonically-filled index
    array IND (paper §3.4).

    Run with [dune exec examples/bdna_privatization.exe]. *)

let source =
  "      PROGRAM BDNA\n\
   \      INTEGER N, I, J, K, L, P, M, IND(200)\n\
   \      PARAMETER (N = 64)\n\
   \      REAL A(200), X(70, 70), Y(70, 70), Z, W, R, RCUTS\n\
   \      W = 0.5\n\
   \      Z = 1.5\n\
   \      RCUTS = 30.0\n\
   \      DO I = 1, N\n\
   \        DO J = 1, N\n\
   \          X(I, J) = I * 0.4 + J * 0.2\n\
   \          Y(I, J) = I * 0.1 + J * 0.3\n\
   \        END DO\n\
   \      END DO\n\
   \      DO I = 2, N\n\
   \        DO J = 1, I - 1\n\
   \          IND(J) = 0\n\
   \          A(J) = X(I, J) - Y(I, J)\n\
   \          R = A(J) + W\n\
   \          IF (R .LT. RCUTS) IND(J) = 1\n\
   \        END DO\n\
   \        P = 0\n\
   \        DO K = 1, I - 1\n\
   \          IF (IND(K) .NE. 0) THEN\n\
   \            P = P + 1\n\
   \            IND(P) = K\n\
   \          END IF\n\
   \        END DO\n\
   \        DO L = 1, P\n\
   \          M = IND(L)\n\
   \          X(I, L) = A(M) + Z\n\
   \        END DO\n\
   \      END DO\n\
   \      PRINT *, X(64, 1), X(64, 30)\n\
   \      END\n"

let () =
  print_string source;
  let p = Frontend.Parser.parse_string source in
  ignore (Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p);
  Fmt.pr "@.=== Polaris verdicts ===@.";
  List.iter
    (fun (u : Fir.Punit.t) ->
      Fir.Stmt.iter
        (fun (s : Fir.Ast.stmt) ->
          match s.kind with
          | Fir.Ast.Do d ->
            Fmt.pr "  DO %-3s %s -- %s@." d.index
              (if d.info.par then "PARALLEL" else "serial  ")
              d.info.par_reason;
            if d.info.par && d.info.privates <> [] then
              Fmt.pr "         privatized: %s@."
                (String.concat ", " d.info.privates)
          | _ -> ())
        u.pu_body)
    (Fir.Program.units p);

  (* the key steps of the proof, driven manually: *)
  Fmt.pr
    "@.why this works (paper section 3.4):@.\
     \ - the J loop writes IND(1:I-1) and A(1:I-1) densely, so both are@.\
     \   covered regions when the I iteration reaches its uses;@.\
     \ - the K loop is a compaction: P increases monotonically from 0 and@.\
     \   IND(1..P) receives values of K, all within [1, I-1];@.\
     \ - therefore A(IND(L)) for L in [1, P] reads inside A(1:I-1), which@.\
     \   the same iteration wrote: A is privatizable, and so are IND, R,@.\
     \   P, M.  The K loop itself stays serial (a true scan), exactly as@.\
     \   in the paper.@.";

  let _, rp = Core.Simulate.compile_and_run (Core.Config.polaris ()) source in
  let _, rb = Core.Simulate.compile_and_run (Core.Config.baseline ()) source in
  Fmt.pr "@.speedup on 8 processors: polaris %.2fx, baseline %.2fx@." rp.speedup
    rb.speedup
