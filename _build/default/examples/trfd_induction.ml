(** The paper's Fig. 2 walked end to end: TRFD's OLDA loop before and
    after generalized induction-variable substitution, and what each
    dependence-test capability set makes of it.

    Run with [dune exec examples/trfd_induction.exe]. *)

let source =
  "      PROGRAM OLDA\n\
   \      INTEGER M, N, I, J, K, X, X0\n\
   \      PARAMETER (M = 10, N = 12)\n\
   \      REAL A(1000)\n\
   \      X0 = 0\n\
   \      DO I = 0, M - 1\n\
   \        X = X0\n\
   \        DO J = 0, N - 1\n\
   \          DO K = 0, J - 1\n\
   \            X = X + 1\n\
   \            A(X) = I + J * 0.1 + K * 0.01\n\
   \          END DO\n\
   \        END DO\n\
   \        X0 = X0 + (N**2 + N) / 2\n\
   \      END DO\n\
   \      PRINT *, A(1), A(780)\n\
   \      END\n"

let show_loops p =
  List.iter
    (fun (u : Fir.Punit.t) ->
      Fir.Stmt.iter
        (fun (s : Fir.Ast.stmt) ->
          match s.kind with
          | Fir.Ast.Do d ->
            Fmt.pr "  DO %-3s %s -- %s@." d.index
              (if d.info.par then "PARALLEL" else "serial  ")
              d.info.par_reason
          | _ -> ())
        u.pu_body)
    (Fir.Program.units p)

let () =
  Fmt.pr "=== original program ===@.";
  print_string source;

  (* X and X0 form a cascaded induction through a triangular nest: the
     compiler solves them to closed forms (Faulhaber summation) *)
  let p = Frontend.Parser.parse_string source in
  let substituted = Passes.Induction.run p in
  Passes.Constprop.run p;
  Fmt.pr "@.=== after induction substitution (%s) ===@."
    (String.concat ", "
       (List.map (fun (v, l) -> v ^ " at loop " ^ l) substituted));
  print_string (Frontend.Unparse.program_to_string p);

  (* the subscript is now non-linear: only the range test can prove the
     loops independent *)
  Fmt.pr "@.=== Polaris (range test) ===@.";
  ignore (Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p);
  show_loops p;

  Fmt.pr "@.=== baseline (GCD/Banerjee/SIV), own pipeline ===@.";
  let t = Core.Pipeline.compile (Core.Config.baseline ()) source in
  show_loops t.program;

  (* and the punchline in simulated time *)
  let _, rp = Core.Simulate.compile_and_run (Core.Config.polaris ()) source in
  let _, rb = Core.Simulate.compile_and_run (Core.Config.baseline ()) source in
  Fmt.pr "@.speedup on 8 processors: polaris %.2fx, baseline %.2fx@." rp.speedup
    rb.speedup
