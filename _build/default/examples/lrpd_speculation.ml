(** Run-time parallelization (paper §3.5): a loop whose access pattern
    depends on input data is speculatively executed as a DOALL under the
    PD test; a conflicting input makes the test fail and the loop
    re-execute serially.

    Run with [dune exec examples/lrpd_speculation.exe]. *)

let source ~collide = Printf.sprintf
  "      PROGRAM NLFILT\n\
   \      INTEGER N, K, COLL\n\
   \      PARAMETER (N = 512)\n\
   \      INTEGER IX(512), JX(512)\n\
   \      REAL D(1024), S(1024), T\n\
   \      COLL = %d\n\
   \      DO K = 1, N\n\
   \        IX(K) = 2 * K - MOD(K, 2)\n\
   \        JX(K) = IX(K)\n\
   \        S(K) = 0.5 * K\n\
   \      END DO\n\
   \      IF (COLL .EQ. 1) THEN\n\
   \        JX(37) = IX(36)\n\
   \      END IF\n\
   \      DO K = 1, N\n\
   \        T = D(JX(K)) + S(K)\n\
   \        D(IX(K)) = T * 0.5 + 1.0\n\
   \      END DO\n\
   \      PRINT *, D(1)\n\
   \      END\n"
  (if collide then 1 else 0)

let speculate ~collide ~procs =
  let p = Frontend.Parser.parse_string (source ~collide) in
  ignore (Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p);
  (* the compiler cannot analyze D(JX(K)) at compile time and flags the
     loop as a speculative candidate *)
  let sid = ref (-1) in
  Fir.Stmt.iter
    (fun (s : Fir.Ast.stmt) ->
      match s.kind with
      | Fir.Ast.Do d when d.info.speculative -> sid := s.sid
      | _ -> ())
    (Fir.Program.main p).pu_body;
  assert (!sid >= 0);
  Fruntime.Speculative.run ~procs ~loop_sid:!sid ~array:"D" p

let () =
  Fmt.pr "the compiler flags the D loop as a speculative DOALL candidate@.";
  Fmt.pr "(subscripted subscripts through JX/IX, values unknown at compile time)@.@.";
  Fmt.pr "%6s | %18s | %18s@." "procs" "clean input" "conflicting input";
  Fmt.pr "%6s | %9s %8s | %9s %8s@." "" "verdict" "speedup" "verdict" "speedup";
  List.iter
    (fun procs ->
      let ok = speculate ~collide:false ~procs in
      let bad = speculate ~collide:true ~procs in
      let v o =
        match o.Fruntime.Speculative.verdict with
        | Fruntime.Shadow.Parallel -> "parallel"
        | Fruntime.Shadow.Parallel_privatized -> "par+priv"
        | Fruntime.Shadow.Not_parallel -> "FAILED"
      in
      Fmt.pr "%6d | %9s %7.2fx | %9s %7.2fx@." procs (v ok)
        (Fruntime.Speculative.speedup ok)
        (v bad)
        (Fruntime.Speculative.speedup bad))
    [ 2; 4; 8 ];
  let ok8 = speculate ~collide:false ~procs:8 in
  Fmt.pr
    "@.potential slowdown had the test failed (paper Fig. 6, bottom): %.3f@."
    (Fruntime.Speculative.potential_slowdown ok8);
  Fmt.pr "PD-test overhead is O(a/p + log p): %d accesses, analysis time %d@."
    ok8.accesses ok8.t_pd_analysis
