(** Quickstart: compile a small Fortran program with the full Polaris
    pipeline, print the annotated parallel source, and simulate it.

    Run with [dune exec examples/quickstart.exe]. *)

let source =
  "      PROGRAM DEMO\n\
   \      INTEGER N, I, J\n\
   \      PARAMETER (N = 64)\n\
   \      REAL A(64, 64), ROW(64), TOTAL\n\
   \      DO J = 1, N\n\
   \        DO I = 1, N\n\
   \          A(I, J) = I * 0.5 + J\n\
   \        END DO\n\
   \      END DO\n\
   \      DO J = 2, N - 1\n\
   \        DO I = 1, N\n\
   \          ROW(I) = A(I, J - 1) + A(I, J + 1)\n\
   \        END DO\n\
   \        DO I = 2, N - 1\n\
   \          A(I, J) = A(I, J) + 0.25 * (ROW(I - 1) + ROW(I + 1))\n\
   \        END DO\n\
   \      END DO\n\
   \      TOTAL = 0.0\n\
   \      DO J = 1, N\n\
   \        TOTAL = TOTAL + A(J, J)\n\
   \      END DO\n\
   \      PRINT *, TOTAL\n\
   \      END\n"

let () =
  (* one call: parse -> inline -> propagate -> induction -> analyze *)
  let result = Core.Pipeline.compile (Core.Config.polaris ()) source in

  (* what did the compiler decide? *)
  Fmt.pr "%a@." Core.Pipeline.pp_summary result;

  (* the restructured source, with CPOLARIS$ DOALL directives *)
  print_string (Core.Pipeline.output_source result);

  (* execute on the simulated 8-processor machine; the run validates
     that the parallel timing and the serial run agree on all output *)
  let run = Core.Simulate.run ~procs:8 result.program in
  Fmt.pr "@.simulated serial time   = %d@." run.serial_time;
  Fmt.pr "simulated parallel time = %d@." run.parallel_time;
  Fmt.pr "speedup on 8 processors = %.2fx@." run.speedup;
  List.iter (Fmt.pr "program output: %s@.") run.output
