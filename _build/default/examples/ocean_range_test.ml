(** The paper's Fig. 3: OCEAN's FTRVMT loop nest, where proving the
    outermost loop parallel requires the range test to permute the
    visitation order of the loops (promote J over K).

    Run with [dune exec examples/ocean_range_test.exe]. *)

open Symbolic

let source =
  "      PROGRAM FTRVMT\n\
   \      INTEGER X, K, J, I\n\
   \      INTEGER Z(0:15)\n\
   \      REAL A(100000)\n\
   \      X = 4\n\
   \      DO K = 0, X - 1\n\
   \        Z(K) = 6 + K\n\
   \      END DO\n\
   \      DO K = 0, X - 1\n\
   \        DO J = 0, Z(K)\n\
   \          DO I = 0, 128\n\
   \            A(258*X*J + 129*K + I + 1) = A(258*X*J + 129*K + I + 1) * 0.5\n\
   \            A(258*X*J + 129*K + I + 1 + 129*X) = A(258*X*J + 129*K + I + 1) + 1.0\n\
   \          END DO\n\
   \        END DO\n\
   \      END DO\n\
   \      PRINT *, A(1), A(129)\n\
   \      END\n"

let () =
  Fmt.pr "=== the FTRVMT/109 nest (44%% of OCEAN's serial time) ===@.";
  print_string source;

  (* the subscript has the non-linear term 258*X*J: hand it to the
     symbolic layer and look at the per-iteration ranges the test uses *)
  let sub =
    Poly.of_expr
      (Fir.Expr.add
         (Fir.Expr.add
            (Fir.Expr.mul (Fir.Expr.int 258)
               (Fir.Expr.mul (Fir.Ast.Var "X") (Fir.Ast.Var "J")))
            (Fir.Expr.mul (Fir.Expr.int 129) (Fir.Ast.Var "K")))
         (Fir.Expr.add (Fir.Ast.Var "I") (Fir.Expr.int 1)))
  in
  let env =
    let open Range in
    let e = empty in
    let e = refine e (Atom.var "X") (at_least Poly.one) in
    let e =
      refine e (Atom.var "K") (between Poly.zero (Poly.sub (Poly.var "X") Poly.one))
    in
    let e = refine e (Atom.var "J") (between Poly.zero (Poly.var "ZK")) in
    refine e (Atom.var "I") (between Poly.zero (Poly.of_int 128))
  in
  Fmt.pr "@.subscript polynomial: %a@." Poly.pp sub;
  (match
     ( Compare.eliminate env `Min ~over:[ Atom.var "I" ] sub,
       Compare.eliminate env `Max ~over:[ Atom.var "I" ] sub )
   with
  | Ok lo, Ok hi ->
    Fmt.pr "per-(K,J) iteration range: [%a, %a]@." Poly.pp lo Poly.pp hi
  | _ -> Fmt.pr "range collapse failed@.");

  (* the full analysis: K needs the promoted order (J fixed first) *)
  let p = Frontend.Parser.parse_string source in
  ignore (Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p);
  Fmt.pr "@.=== Polaris verdicts (note the promotion on K) ===@.";
  List.iter
    (fun (u : Fir.Punit.t) ->
      Fir.Stmt.iter
        (fun (s : Fir.Ast.stmt) ->
          match s.kind with
          | Fir.Ast.Do d ->
            Fmt.pr "  DO %-3s %s -- %s@." d.index
              (if d.info.par then "PARALLEL" else "serial  ")
              d.info.par_reason
          | _ -> ())
        u.pu_body)
    (Fir.Program.units p);

  let t = Core.Pipeline.compile (Core.Config.baseline ()) source in
  Fmt.pr "@.=== baseline: the non-linear stride defeats Banerjee/SIV ===@.";
  List.iter
    (fun (l : Core.Pipeline.loop_result) ->
      Fmt.pr "  DO %-3s %s@." l.report.loop_index
        (if l.report.parallel then "PARALLEL" else "serial"))
    t.loops
