(** Inline expansion as the interprocedural-analysis vehicle (paper
    §3.1): the hot loop sits in a subroutine with symbolic sizes; after
    inlining and interprocedural constant propagation the caller's
    constants reach the loop bounds and subscripts, and a 2-D formal
    over a 1-D actual is linearized.

    Run with [dune exec examples/inlining_tour.exe]. *)

let source =
  "      PROGRAM MAIN\n\
   \      INTEGER NX, NY\n\
   \      REAL GRID(600), EDGE(40)\n\
   \      COMMON /SHAPE/ NX, NY\n\
   \      NX = 30\n\
   \      NY = 20\n\
   \      DO I = 1, 600\n\
   \        GRID(I) = 0.1\n\
   \      END DO\n\
   \      DO I = 1, 40\n\
   \        EDGE(I) = 1.0\n\
   \      END DO\n\
   \      CALL RELAX(GRID, EDGE)\n\
   \      CALL RELAX(GRID, EDGE)\n\
   \      S = 0.0\n\
   \      DO I = 1, 600\n\
   \        S = S + GRID(I)\n\
   \      END DO\n\
   \      PRINT *, S\n\
   \      END\n\
   \      SUBROUTINE RELAX(G, E)\n\
   \      INTEGER NX, NY, I, J\n\
   \      REAL G(NX, NY), E(40)\n\
   \      COMMON /SHAPE/ NX, NY\n\
   \      DO J = 2, NY - 1\n\
   \        DO I = 2, NX - 1\n\
   \          G(I, J) = G(I, J) + 0.2 * E(J) \n\
   \        END DO\n\
   \      END DO\n\
   \      RETURN\n\
   \      END\n"

let () =
  let p = Frontend.Parser.parse_string source in
  let before = Machine.Interp.run p in

  let p = Frontend.Parser.parse_string source in
  let stats = Passes.Inline.run p in
  Passes.Constprop.run p;
  Fmt.pr "expanded %d call sites (%d skipped)@.@." stats.sites_expanded
    stats.sites_skipped;
  Fmt.pr "=== main unit after inlining + interprocedural constants ===@.";
  Fmt.pr "(note G(I,J) linearized onto the 1-D GRID, with NX/NY resolved)@.@.";
  print_string (Frontend.Unparse.unit_to_string (Fir.Program.main p));

  let after = Machine.Interp.run p in
  Fmt.pr "@.semantics preserved: %b (output %s)@."
    (before.output = after.output)
    (String.concat " " after.output);

  ignore (Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p);
  Fmt.pr "@.=== loop verdicts in the inlined main ===@.";
  Fir.Stmt.iter
    (fun (s : Fir.Ast.stmt) ->
      match s.kind with
      | Fir.Ast.Do d ->
        Fmt.pr "  DO %-8s %s@." d.index
          (if d.info.par then "PARALLEL" else "serial")
      | _ -> ())
    (Fir.Program.main p).pu_body
