examples/lrpd_speculation.ml: Fir Fmt Frontend Fruntime List Passes Printf
