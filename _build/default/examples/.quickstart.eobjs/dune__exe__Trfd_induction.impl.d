examples/trfd_induction.ml: Core Fir Fmt Frontend List Passes String
