examples/lrpd_speculation.mli:
