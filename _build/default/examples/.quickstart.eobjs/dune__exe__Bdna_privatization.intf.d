examples/bdna_privatization.mli:
