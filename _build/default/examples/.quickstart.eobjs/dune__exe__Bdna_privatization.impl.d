examples/bdna_privatization.ml: Core Fir Fmt Frontend List Passes String
