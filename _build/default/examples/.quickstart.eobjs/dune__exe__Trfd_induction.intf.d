examples/trfd_induction.mli:
