examples/quickstart.mli:
