examples/inlining_tour.mli:
