examples/ocean_range_test.mli:
