examples/inlining_tour.ml: Fir Fmt Frontend Machine Passes String
