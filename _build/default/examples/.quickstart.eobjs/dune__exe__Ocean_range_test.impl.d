examples/ocean_range_test.ml: Atom Compare Core Fir Fmt Frontend List Passes Poly Range Symbolic
