examples/quickstart.ml: Core Fmt List
