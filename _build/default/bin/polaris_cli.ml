(** The polaris command-line driver.

    - [polaris compile FILE]: parse, restructure, print the annotated
      parallel Fortran source (CPOLARIS$ directives) and the per-loop
      report.
    - [polaris run FILE]: compile and simulate on a p-processor machine,
      reporting serial/parallel simulated time and speedup.
    - [polaris suite [NAME]]: list the evaluation suite, or compile+run
      one of its codes under both pipelines. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let config_of ~baseline ~procs =
  if baseline then Core.Config.baseline ~procs ()
  else Core.Config.polaris ~procs ()

(* ----- compile ----- *)

let compile_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Fortran source file")
  in
  let baseline =
    Arg.(value & flag & info [ "baseline" ] ~doc:"Use the baseline (PFA-like) pipeline")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print the transformed source")
  in
  let run file baseline quiet =
    let t = Core.Pipeline.compile (config_of ~baseline ~procs:8) (read_file file) in
    if not quiet then Fmt.pr "%a@." Core.Pipeline.pp_summary t;
    print_string (Core.Pipeline.output_source t)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Restructure a Fortran program and print it")
    Term.(const run $ file $ baseline $ quiet)

(* ----- run ----- *)

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Fortran source file")
  in
  let baseline =
    Arg.(value & flag & info [ "baseline" ] ~doc:"Use the baseline (PFA-like) pipeline")
  in
  let procs =
    Arg.(value & opt int 8 & info [ "p"; "procs" ] ~doc:"Simulated processor count")
  in
  let go file baseline procs =
    let cfg = config_of ~baseline ~procs in
    let t, r = Core.Simulate.compile_and_run cfg (read_file file) in
    Fmt.pr "%a@." Core.Pipeline.pp_summary t;
    Fmt.pr "serial time   : %d@." r.serial_time;
    Fmt.pr "parallel time : %d (%d processors)@." r.parallel_time procs;
    Fmt.pr "speedup       : %.2fx@." r.speedup;
    List.iter (fun l -> Fmt.pr "output: %s@." l) r.output
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute on the simulated multiprocessor")
    Term.(const go $ file $ baseline $ procs)

(* ----- suite ----- *)

let suite_cmd =
  let code_name =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Suite code name")
  in
  let procs =
    Arg.(value & opt int 8 & info [ "p"; "procs" ] ~doc:"Simulated processor count")
  in
  let go code_name procs =
    match code_name with
    | None ->
      Fmt.pr "%-8s %-8s %s@." "name" "origin" "description";
      List.iter
        (fun (c : Suite.Code.t) ->
          Fmt.pr "%-8s %-8s %s@." c.name
            (Suite.Code.origin_to_string c.origin)
            c.description)
        Suite.Registry.all
    | Some name -> (
      match Suite.Registry.find name with
      | c ->
        let _, rp =
          Core.Simulate.compile_and_run (Core.Config.polaris ~procs ()) c.source
        in
        let _, rb =
          Core.Simulate.compile_and_run (Core.Config.baseline ~procs ()) c.source
        in
        Fmt.pr "%s (%s): %s@." c.name
          (Suite.Code.origin_to_string c.origin)
          c.description;
        Fmt.pr "enabling techniques: %s@." (String.concat "; " c.enabling);
        Fmt.pr "polaris : %.2fx   (paper ~%.1fx)@." rp.speedup c.paper_polaris_speedup;
        Fmt.pr "baseline: %.2fx   (paper PFA ~%.1fx)@." rb.speedup c.paper_pfa_speedup
      | exception Not_found ->
        Fmt.epr "unknown code %s; try `polaris suite' for the list@." name;
        exit 1)
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"List or run the evaluation-suite codes")
    Term.(const go $ code_name $ procs)

let () =
  let doc = "Polaris-style automatic parallelizer (ICPP'96 reproduction)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "polaris" ~doc) [ compile_cmd; run_cmd; suite_cmd ]))
