(* Tests for the analysis library: loop nests, access extraction, scalar
   def/use classification. *)

open Fir

let parse = Frontend.Parser.parse_string

let body_of src = (Program.main (parse src)).pu_body

let test_nests () =
  let src =
    "      PROGRAM T\n\
     \      DO I = 1, 4\n\
     \        DO J = 1, 4\n\
     \          X = X + 1.0\n\
     \        END DO\n\
     \        DO K = 1, 4\n\
     \          X = X + 1.0\n\
     \        END DO\n\
     \      END DO\n\
     \      END\n"
  in
  let u = Program.main (parse src) in
  let nests = Analysis.Loops.nests_of_unit u in
  Alcotest.(check int) "three nests" 3 (List.length nests);
  let idx n = List.map (fun (l : Analysis.Loops.loop) -> (match l.index with Symbolic.Atom.Avar v -> v | _ -> "?")) n.Analysis.Loops.loops in
  Alcotest.(check (list string)) "first" [ "I" ] (idx (List.nth nests 0));
  Alcotest.(check (list string)) "second" [ "I"; "J" ] (idx (List.nth nests 1));
  Alcotest.(check (list string)) "third" [ "I"; "K" ] (idx (List.nth nests 2))

let test_disqualifying_control () =
  let b1 = body_of "      PROGRAM T\n      DO I = 1, 3\n        GOTO 10\n 10     CONTINUE\n      END DO\n      END\n" in
  (match (List.hd b1).kind with
  | Ast.Do d ->
    Alcotest.(check bool) "goto disqualifies" true
      (Analysis.Loops.has_disqualifying_control d.body)
  | _ -> Alcotest.fail "expected do");
  let b2 = body_of "      PROGRAM T\n      DO I = 1, 3\n        X = 1.0\n      END DO\n      END\n" in
  match (List.hd b2).kind with
  | Ast.Do d ->
    Alcotest.(check bool) "clean body ok" false
      (Analysis.Loops.has_disqualifying_control d.body)
  | _ -> Alcotest.fail "expected do"

let test_access_extraction () =
  let src =
    "      PROGRAM T\n\
     \      REAL A(10), B(10)\n\
     \      DO I = 1, 9\n\
     \        A(I) = B(I + 1) + A(I)\n\
     \        IF (I .GT. 2) B(I) = 0.0\n\
     \      END DO\n\
     \      END\n"
  in
  let u = Program.main (parse src) in
  match (List.hd u.pu_body).kind with
  | Ast.Do d ->
    let accs = Analysis.Access.of_block d.body in
    let writes = List.filter (fun (a : Analysis.Access.t) -> a.kind = Analysis.Access.Write) accs in
    let reads = List.filter (fun (a : Analysis.Access.t) -> a.kind = Analysis.Access.Read) accs in
    Alcotest.(check int) "two writes" 2 (List.length writes);
    Alcotest.(check int) "two reads" 2 (List.length reads);
    let bw = List.find (fun (a : Analysis.Access.t) -> a.array = "B") writes in
    Alcotest.(check bool) "B write conditional" true bw.conditional;
    let aw = List.find (fun (a : Analysis.Access.t) -> a.array = "A") writes in
    Alcotest.(check bool) "A write unconditional" false aw.conditional
  | _ -> Alcotest.fail "expected do"

let test_access_by_array () =
  let src =
    "      PROGRAM T\n\
     \      REAL A(10), B(10)\n\
     \      A(1) = B(1) + B(2) + A(2)\n\
     \      END\n"
  in
  let u = Program.main (parse src) in
  let groups = Analysis.Access.by_array (Analysis.Access.of_block u.pu_body) in
  Alcotest.(check int) "two arrays" 2 (List.length groups);
  Alcotest.(check int) "A has 2 accesses" 2 (List.length (List.assoc "A" groups));
  Alcotest.(check int) "B has 2 accesses" 2 (List.length (List.assoc "B" groups))

let classify_src src =
  let u = Program.main (parse src) in
  match (List.hd u.pu_body).kind with
  | Ast.Do d -> Analysis.Defuse.classify d.body
  | _ -> Alcotest.fail "expected do"

let cls = function
  | Analysis.Defuse.Read_only -> "ro"
  | Analysis.Defuse.Private -> "priv"
  | Analysis.Defuse.Exposed -> "exp"

let test_defuse_private () =
  let c =
    classify_src
      "      PROGRAM T\n\
       \      DO I = 1, 5\n\
       \        T = I * 2\n\
       \        X = X + T\n\
       \      END DO\n\
       \      END\n"
  in
  Alcotest.(check string) "T private" "priv" (cls (List.assoc "T" c));
  Alcotest.(check string) "X exposed" "exp" (cls (List.assoc "X" c));
  Alcotest.(check string) "I read only (loop index)" "ro" (cls (List.assoc "I" c))

let test_defuse_conditional_write () =
  let c =
    classify_src
      "      PROGRAM T\n\
       \      DO I = 1, 5\n\
       \        IF (I .GT. 2) T = 1.0\n\
       \        Y = T + Y\n\
       \      END DO\n\
       \      END\n"
  in
  (* a conditional write does not dominate the read: T is exposed *)
  Alcotest.(check string) "T exposed" "exp" (cls (List.assoc "T" c))

let test_defuse_both_branches () =
  let c =
    classify_src
      "      PROGRAM T\n\
       \      DO I = 1, 5\n\
       \        IF (I .GT. 2) THEN\n\
       \          T = 1.0\n\
       \        ELSE\n\
       \          T = 2.0\n\
       \        END IF\n\
       \        Y = T + Y\n\
       \      END DO\n\
       \      END\n"
  in
  (* written in both branches: dominates the later read *)
  Alcotest.(check string) "T private" "priv" (cls (List.assoc "T" c))

let test_defuse_inner_loop_no_dominate () =
  let c =
    classify_src
      "      PROGRAM T\n\
       \      DO I = 1, 5\n\
       \        DO J = 1, K\n\
       \          T = J * 1.0\n\
       \        END DO\n\
       \        Y = T + Y\n\
       \      END DO\n\
       \      END\n"
  in
  (* the inner loop may run zero times: T does not dominate *)
  Alcotest.(check string) "T exposed" "exp" (cls (List.assoc "T" c));
  Alcotest.(check string) "J private (header write)" "priv" (cls (List.assoc "J" c))

let test_defuse_read_within_inner () =
  let c =
    classify_src
      "      PROGRAM T\n\
       \      DO I = 1, 5\n\
       \        T = 0.0\n\
       \        DO J = 1, 4\n\
       \          T = T + J\n\
       \        END DO\n\
       \        Y = T + Y\n\
       \      END DO\n\
       \      END\n"
  in
  (* T = 0 dominates: reads inside the inner loop are covered *)
  Alcotest.(check string) "T private" "priv" (cls (List.assoc "T" c))

(* ----- control-flow graph ----- *)

let test_cfg_straightline () =
  let u = Program.main (parse "      PROGRAM T\n      X = 1\n      Y = 2\n      END\n") in
  let t = Analysis.Cfg.build u in
  let s1 = (List.nth u.pu_body 0).sid and s2 = (List.nth u.pu_body 1).sid in
  Alcotest.(check (list int)) "seq edge" [ s2 ] (Analysis.Cfg.successors t s1);
  Alcotest.(check (list int)) "to exit" [ Analysis.Cfg.exit_node ]
    (Analysis.Cfg.successors t s2);
  Alcotest.(check bool) "consistent" true (Analysis.Cfg.consistent u)

let test_cfg_loop_edges () =
  let src =
    "      PROGRAM T\n\
     \      DO I = 1, 3\n\
     \        X = X + 1.0\n\
     \      END DO\n\
     \      Y = X\n\
     \      END\n"
  in
  let u = Program.main (parse src) in
  let t = Analysis.Cfg.build u in
  let do_sid = (List.nth u.pu_body 0).sid in
  let body_sid =
    match (List.nth u.pu_body 0).kind with
    | Ast.Do d -> (List.hd d.body).sid
    | _ -> Alcotest.fail "expected do"
  in
  let after_sid = (List.nth u.pu_body 1).sid in
  let succ = Analysis.Cfg.successors t do_sid in
  Alcotest.(check bool) "header -> body" true (List.mem body_sid succ);
  Alcotest.(check bool) "header -> past (zero trip)" true (List.mem after_sid succ);
  Alcotest.(check (list int)) "back edge" [ do_sid ]
    (Analysis.Cfg.successors t body_sid);
  Alcotest.(check bool) "consistent" true (Analysis.Cfg.consistent u)

let test_cfg_goto_and_unreachable () =
  let src =
    "      PROGRAM T\n\
     \      GOTO 10\n\
     \      X = 1\n\
     \ 10   CONTINUE\n\
     \      END\n"
  in
  let u = Program.main (parse src) in
  let dead = Analysis.Cfg.unreachable_stmts u in
  (* X = 1 sits behind the GOTO *)
  Alcotest.(check int) "one unreachable statement" 1 (List.length dead);
  let x_sid = (List.nth u.pu_body 1).sid in
  Alcotest.(check (list int)) "it is the skipped assignment" [ x_sid ] dead

let test_cfg_if_edges () =
  let src =
    "      PROGRAM T\n\
     \      IF (X .GT. 0.0) THEN\n\
     \        Y = 1\n\
     \      ELSE\n\
     \        Y = 2\n\
     \      END IF\n\
     \      Z = Y\n\
     \      END\n"
  in
  let u = Program.main (parse src) in
  let t = Analysis.Cfg.build u in
  let if_sid = (List.nth u.pu_body 0).sid in
  Alcotest.(check int) "two branch targets" 2
    (List.length (Analysis.Cfg.successors t if_sid));
  let join = (List.nth u.pu_body 1).sid in
  Alcotest.(check int) "join has two preds" 2
    (List.length (Analysis.Cfg.predecessors t join))

(* every suite code's flow graph is consistent *)
let test_cfg_suite_consistent () =
  List.iter
    (fun (c : Suite.Code.t) ->
      let p = parse c.source in
      List.iter
        (fun u ->
          Alcotest.(check bool) (c.name ^ " cfg consistent") true
            (Analysis.Cfg.consistent u))
        (Program.units p))
    Suite.Registry.all

(* ----- gated SSA ----- *)

let test_gsa_straightline () =
  let src =
    "      PROGRAM T\n\
     \      INTEGER M, P, MP\n\
     \      M = 10\n\
     \      P = 25\n\
     \      MP = M * P\n\
     \      L = MP\n\
     \      END\n"
  in
  let u = Program.main (parse src) in
  let points = Analysis.Gsa.build u in
  let target =
    Fir.Stmt.fold
      (fun acc (s : Ast.stmt) ->
        match s.kind with Ast.Assign (Ast.Var "L", _) -> s.sid | _ -> acc)
      (-1) u.pu_body
  in
  (* the paper's Fig. 4 walk: MP resolves to M * P, then to 10 * 25 *)
  let t = Analysis.Gsa.value_at points ~sid:target ~var:"MP" in
  (match Analysis.Gsa.resolve t with
  | Some e ->
    Alcotest.(check string) "MP resolves through the chain" "250"
      (Fir.Expr.to_string (Fir.Expr.simplify e))
  | None -> Alcotest.fail "MP should resolve");
  Alcotest.(check bool) "no gating on straight line" false (Analysis.Gsa.is_gated t)

let test_gsa_gamma () =
  let src =
    "      PROGRAM T\n\
     \      IF (C .GT. 0.0) THEN\n\
     \        K = 1\n\
     \      ELSE\n\
     \        K = 2\n\
     \      END IF\n\
     \      L = K\n\
     \      END\n"
  in
  let u = Program.main (parse src) in
  let points = Analysis.Gsa.build u in
  let target =
    Fir.Stmt.fold
      (fun acc (s : Ast.stmt) ->
        match s.kind with Ast.Assign (Ast.Var "L", _) -> s.sid | _ -> acc)
      (-1) u.pu_body
  in
  match Analysis.Gsa.value_at points ~sid:target ~var:"K" with
  | Analysis.Gsa.Gamma (_, Analysis.Gsa.Rhs (Ast.Int_lit 1, _), Analysis.Gsa.Rhs (Ast.Int_lit 2, _)) -> ()
  | t -> Alcotest.failf "expected gamma, got %s" (Fmt.str "%a" Analysis.Gsa.pp t)

let test_gsa_mu_eta () =
  let src =
    "      PROGRAM T\n\
     \      K = 0\n\
     \      DO I = 1, 5\n\
     \        K = K + I\n\
     \        L = K\n\
     \      END DO\n\
     \      M = K\n\
     \      END\n"
  in
  let u = Program.main (parse src) in
  let points = Analysis.Gsa.build u in
  let at v =
    Fir.Stmt.fold
      (fun acc (s : Ast.stmt) ->
        match s.kind with Ast.Assign (Ast.Var w, _) when w = v -> s.sid | _ -> acc)
      (-1) u.pu_body
  in
  (* inside the loop K is a mu-term with a tied iteration side *)
  (match Analysis.Gsa.value_at points ~sid:(at "L") ~var:"K" with
  | Analysis.Gsa.Rhs (_, captured) -> (
    match List.assoc "K" captured with
    | Analysis.Gsa.Mu { init = Analysis.Gsa.Rhs (Ast.Int_lit 0, _); iter } ->
      Alcotest.(check bool) "iteration side tied" true (!iter <> None)
    | t -> Alcotest.failf "expected mu, got %s" (Fmt.str "%a" Analysis.Gsa.pp t))
  | t -> Alcotest.failf "expected rhs, got %s" (Fmt.str "%a" Analysis.Gsa.pp t));
  (* after the loop K is an eta of the loop value *)
  match Analysis.Gsa.value_at points ~sid:(at "M") ~var:"K" with
  | Analysis.Gsa.Eta _ -> ()
  | t -> Alcotest.failf "expected eta, got %s" (Fmt.str "%a" Analysis.Gsa.pp t)

let tests =
  [ ("loop nests", `Quick, test_nests);
    ("cfg: straight line", `Quick, test_cfg_straightline);
    ("cfg: loop edges", `Quick, test_cfg_loop_edges);
    ("cfg: goto + unreachable", `Quick, test_cfg_goto_and_unreachable);
    ("cfg: if edges", `Quick, test_cfg_if_edges);
    ("cfg: suite consistent", `Quick, test_cfg_suite_consistent);
    ("gsa: straight-line resolution", `Quick, test_gsa_straightline);
    ("gsa: gamma at if-join", `Quick, test_gsa_gamma);
    ("gsa: mu/eta around loops", `Quick, test_gsa_mu_eta);
    ("disqualifying control", `Quick, test_disqualifying_control);
    ("access extraction", `Quick, test_access_extraction);
    ("access grouping", `Quick, test_access_by_array);
    ("defuse private/exposed", `Quick, test_defuse_private);
    ("defuse conditional write", `Quick, test_defuse_conditional_write);
    ("defuse both branches dominate", `Quick, test_defuse_both_branches);
    ("defuse inner loop no dominate", `Quick, test_defuse_inner_loop_no_dominate);
    ("defuse read within inner loop", `Quick, test_defuse_read_within_inner) ]
