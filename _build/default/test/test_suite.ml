(* Suite-wide checks: every code parses, runs, and both pipelines
   preserve its semantics. *)

let test_all_parse_and_run () =
  List.iter
    (fun (c : Suite.Code.t) ->
      let p = Frontend.Parser.parse_string c.source in
      let r = Machine.Interp.run p in
      Alcotest.(check bool) (c.name ^ " produces output") true (r.output <> []);
      Alcotest.(check bool) (c.name ^ " takes time") true (r.time > 1000))
    Suite.Registry.all

let test_registry () =
  Alcotest.(check int) "sixteen codes" 16 (List.length Suite.Registry.all);
  Alcotest.(check bool) "find works" true
    ((Suite.Registry.find "trfd").name = "TRFD");
  Alcotest.(check bool) "unknown raises" true
    (match Suite.Registry.find "NOPE" with _ -> false | exception Not_found -> true);
  List.iter
    (fun (c : Suite.Code.t) ->
      Alcotest.(check bool) (c.name ^ " has paper data") true
        (c.paper_lines > 0 && c.paper_serial_s > 0
        && c.paper_polaris_speedup > 0.0 && c.paper_pfa_speedup > 0.0))
    Suite.Registry.all

let test_semantics_preserved_by_both_pipelines () =
  List.iter
    (fun (c : Suite.Code.t) ->
      let reference = Machine.Interp.run (Frontend.Parser.parse_string c.source) in
      List.iter
        (fun cfg ->
          let t = Core.Pipeline.compile cfg c.source in
          let serial =
            Machine.Interp.run
              ~cfg:(Machine.Interp.default_config ~parallel:false ())
              t.program
          in
          let parallel =
            Machine.Interp.run
              ~cfg:(Machine.Interp.default_config ~parallel:true ())
              t.program
          in
          Alcotest.(check (list string))
            (Printf.sprintf "%s/%s serial output" c.name cfg.Core.Config.name)
            reference.output serial.output;
          Alcotest.(check (list string))
            (Printf.sprintf "%s/%s parallel output" c.name cfg.Core.Config.name)
            reference.output parallel.output)
        [ Core.Config.polaris (); Core.Config.baseline ();
          Core.Config.without_inline ();
          Core.Config.without_generalized_induction () ])
    Suite.Registry.all

let test_fig7_shape () =
  (* the headline result: Polaris >= baseline on 14 codes, strictly
     behind on exactly SU2COR and WAVE5 *)
  let losses = ref [] in
  List.iter
    (fun (c : Suite.Code.t) ->
      let _, rp = Core.Simulate.compile_and_run (Core.Config.polaris ()) c.source in
      let _, rb = Core.Simulate.compile_and_run (Core.Config.baseline ()) c.source in
      if rb.speedup > rp.speedup *. 1.02 then losses := c.name :: !losses)
    Suite.Registry.all;
  Alcotest.(check (slist string String.compare)) "PFA ahead on exactly two"
    [ "SU2COR"; "WAVE5" ] !losses

let tests =
  [ ("all codes parse and run", `Quick, test_all_parse_and_run);
    ("registry integrity", `Quick, test_registry);
    ("semantics preserved by all configs", `Slow, test_semantics_preserved_by_both_pipelines);
    ("Fig 7 shape: PFA ahead on exactly two", `Slow, test_fig7_shape) ]
