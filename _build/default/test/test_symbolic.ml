(* Tests for the symbolic layer: polynomials, summation, ranges,
   comparison, range propagation. *)

open Symbolic
open Util

let poly = Alcotest.testable (fun ppf p -> Poly.pp ppf p) Poly.equal

let x = Poly.var "X"
let y = Poly.var "Y"
let n = Poly.var "N"

(* ----- polynomial algebra ----- *)

let test_poly_basics () =
  Alcotest.check poly "x+x = 2x" (Poly.scale (Rat.of_int 2) x) (Poly.add x x);
  Alcotest.check poly "x-x = 0" Poly.zero (Poly.sub x x);
  Alcotest.check poly "x*x = x^2" (Poly.pow x 2) (Poly.mul x x);
  Alcotest.check poly "(x+y)^2"
    (Poly.add (Poly.pow x 2) (Poly.add (Poly.scale (Rat.of_int 2) (Poly.mul x y)) (Poly.pow y 2)))
    (Poly.pow (Poly.add x y) 2)

let test_poly_queries () =
  let p = Poly.add (Poly.mul x (Poly.pow y 2)) Poly.one in
  Alcotest.(check int) "degree y" 2 (Poly.degree (Atom.var "Y") p);
  Alcotest.(check int) "degree x" 1 (Poly.degree (Atom.var "X") p);
  Alcotest.(check bool) "mentions X" true (Poly.mentions_var "X" p);
  Alcotest.(check bool) "const_val none" true (Poly.const_val p = None);
  Alcotest.(check bool) "const_val some" true
    (Poly.const_val (Poly.of_int 3) = Some (Rat.of_int 3))

let test_poly_subst () =
  (* (x+1)^2 at x := y - 1 gives y^2 *)
  let p = Poly.pow (Poly.add x Poly.one) 2 in
  let q = Poly.subst (Atom.var "X") (Poly.sub y Poly.one) p in
  Alcotest.check poly "subst" (Poly.pow y 2) q

let test_coeffs_in () =
  (* 3x^2 + yx + 5 in x *)
  let p =
    Poly.add
      (Poly.scale (Rat.of_int 3) (Poly.pow x 2))
      (Poly.add (Poly.mul y x) (Poly.of_int 5))
  in
  match Poly.coeffs_in (Atom.var "X") p with
  | [ (0, c0); (1, c1); (2, c2) ] ->
    Alcotest.check poly "c0" (Poly.of_int 5) c0;
    Alcotest.check poly "c1" y c1;
    Alcotest.check poly "c2" (Poly.of_int 3) c2
  | _ -> Alcotest.fail "unexpected coefficient structure"

(* random polynomial evaluation oracle *)
let assignment = function
  | Atom.Avar "X" -> Some (Rat.of_int 3)
  | Atom.Avar "Y" -> Some (Rat.of_int (-2))
  | Atom.Avar "N" -> Some (Rat.of_int 5)
  | _ -> None

let poly_gen =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [ map Poly.of_int (int_range (-5) 5); return x; return y; return n ]
  in
  let rec go d =
    if d = 0 then leaf
    else
      oneof
        [ leaf;
          map2 Poly.add (go (d - 1)) (go (d - 1));
          map2 Poly.sub (go (d - 1)) (go (d - 1));
          map2 Poly.mul (go (d - 1)) (go (d - 1)) ]
  in
  go 3

let ev p = Poly.eval assignment p

let prop_poly_add_homomorphic =
  QCheck2.Test.make ~name:"poly eval: add homomorphic" ~count:300
    QCheck2.Gen.(pair poly_gen poly_gen)
    (fun (p, q) ->
      match (ev p, ev q, ev (Poly.add p q)) with
      | Some a, Some b, Some c -> Rat.equal c (Rat.add a b)
      | _ -> false)

let prop_poly_mul_homomorphic =
  QCheck2.Test.make ~name:"poly eval: mul homomorphic" ~count:300
    QCheck2.Gen.(pair poly_gen poly_gen)
    (fun (p, q) ->
      match (ev p, ev q, ev (Poly.mul p q)) with
      | Some a, Some b, Some c -> Rat.equal c (Rat.mul a b)
      | _ -> false)

let prop_poly_canonical =
  QCheck2.Test.make ~name:"poly add commutes (canonical form)" ~count:300
    QCheck2.Gen.(pair poly_gen poly_gen)
    (fun (p, q) -> Poly.equal (Poly.add p q) (Poly.add q p))

(* of_expr / to_expr round-trip through evaluation *)
let prop_expr_roundtrip =
  QCheck2.Test.make ~name:"of_expr/to_expr preserve value" ~count:300 poly_gen
    (fun p ->
      let e = Poly.to_expr p in
      let p' = Poly.of_expr e in
      (* to_expr uses exact division so the round trip is exact *)
      match (ev p, ev p') with Some a, Some b -> Rat.equal a b | _ -> false)

let test_of_expr_division () =
  (* (N*N + N) / 2 becomes an exact rational polynomial *)
  let e =
    Fir.Expr.div
      (Fir.Expr.add (Fir.Expr.mul (Fir.Ast.Var "N") (Fir.Ast.Var "N")) (Fir.Ast.Var "N"))
      (Fir.Expr.int 2)
  in
  let p = Poly.of_expr e in
  let expected = Poly.scale (Rat.make 1 2) (Poly.add (Poly.pow n 2) n) in
  Alcotest.check poly "triangular closed form" expected p

let test_of_expr_opaque () =
  let e = Fir.Expr.ref_ "Z" [ Fir.Ast.Var "K" ] in
  let p = Poly.of_expr e in
  Alcotest.(check int) "one opaque atom" 1 (List.length (Poly.atoms p));
  Alcotest.(check bool) "mentions Z" true (Poly.mentions_var "Z" p);
  Alcotest.(check bool) "mentions K" true (Poly.mentions_var "K" p)

(* ----- summation ----- *)

let brute_sum lo hi f =
  let acc = ref 0 in
  for i = lo to hi do
    acc := !acc + f i
  done;
  !acc

let eval_at_i value p =
  Poly.eval
    (function Atom.Avar "I" -> Some (Rat.of_int value) | _ -> None)
    p

let test_summation_constant () =
  let s = Summation.sum ~index:"I" ~lo:Poly.one ~hi:n Poly.one in
  Alcotest.check poly "sum 1 = n" n s

let test_summation_linear () =
  let i = Poly.var "I" in
  let s = Summation.sum ~index:"I" ~lo:Poly.one ~hi:n i in
  let expected = Poly.scale (Rat.make 1 2) (Poly.add (Poly.pow n 2) n) in
  Alcotest.check poly "sum i = (n^2+n)/2" expected s

let prop_summation_matches_brute =
  (* random polynomial in I up to degree 4, random constant bounds *)
  let gen =
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 4) (pair (int_range 0 4) (int_range (-4) 4)))
        (pair (int_range (-3) 3) (int_range (-3) 8)))
  in
  QCheck2.Test.make ~name:"Faulhaber sum = brute force" ~count:300 gen
    (fun (terms, (lo, hi)) ->
      let p =
        List.fold_left
          (fun acc (d, c) ->
            Poly.add acc (Poly.scale (Rat.of_int c) (Poly.pow (Poly.var "I") d)))
          Poly.zero terms
      in
      let closed =
        Summation.sum ~index:"I" ~lo:(Poly.of_int lo) ~hi:(Poly.of_int hi) p
      in
      match Poly.const_val closed with
      | Some v when hi >= lo - 1 ->
        let brute =
          brute_sum lo hi (fun i ->
              match eval_at_i i p with
              | Some r -> Rat.to_int r
              | None -> 0)
        in
        Rat.equal v (Rat.of_int brute)
      | _ -> hi < lo - 1 (* closed form only claimed for hi >= lo-1 *))

let test_summation_triangular () =
  (* sum_{k=0}^{j-1} 1, then sum over j = 0..n-1: (n^2-n)/2 *)
  let j = Poly.var "J" in
  let inner = Summation.sum ~index:"K" ~lo:Poly.zero ~hi:(Poly.sub j Poly.one) Poly.one in
  let outer = Summation.sum ~index:"J" ~lo:Poly.zero ~hi:(Poly.sub n Poly.one) inner in
  let expected = Poly.scale (Rat.make 1 2) (Poly.sub (Poly.pow n 2) n) in
  Alcotest.check poly "triangular trips" expected outer

let test_summation_capture_rejected () =
  let i = Poly.var "I" in
  Alcotest.(check bool) "bound mentions index" true
    (match Summation.sum ~index:"I" ~lo:Poly.zero ~hi:i Poly.one with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ----- comparison / ranges ----- *)

let env_basic =
  let open Range in
  let e = empty in
  let e = refine e (Atom.var "N") (at_least Poly.one) in
  let e = refine e (Atom.var "I") (between Poly.zero (Poly.sub n Poly.one)) in
  e

let test_compare_simple () =
  Alcotest.(check bool) "i >= 0" true (Compare.prove_ge env_basic x Poly.zero = false);
  Alcotest.(check bool) "I >= 0" true (Compare.prove_ge env_basic (Poly.var "I") Poly.zero);
  Alcotest.(check bool) "I <= N-1" true
    (Compare.prove_le env_basic (Poly.var "I") (Poly.sub n Poly.one));
  Alcotest.(check bool) "I < N" true (Compare.prove_lt env_basic (Poly.var "I") n);
  Alcotest.(check bool) "not I < N-1" false
    (Compare.prove_lt env_basic (Poly.var "I") (Poly.sub n Poly.one))

let test_compare_correlated () =
  (* K in [1, I-1], I in [2, N]: prove K <= N - 1 *)
  let open Range in
  let e = empty in
  let e = refine e (Atom.var "N") (at_least (Poly.of_int 2)) in
  let e = refine e (Atom.var "I") (between (Poly.of_int 2) n) in
  let e = refine e (Atom.var "K") (between Poly.one (Poly.sub (Poly.var "I") Poly.one)) in
  Alcotest.(check bool) "K <= I-1" true
    (Compare.prove_le e (Poly.var "K") (Poly.sub (Poly.var "I") Poly.one));
  Alcotest.(check bool) "K <= N-1" true
    (Compare.prove_le e (Poly.var "K") (Poly.sub n Poly.one));
  Alcotest.(check bool) "K >= 1" true (Compare.prove_ge e (Poly.var "K") Poly.one)

let test_monotonicity () =
  (* f = i^2 is nondecreasing for i >= 0 *)
  let i = Poly.var "I" in
  Alcotest.(check bool) "i^2 nondecreasing on [0,n-1]" true
    (Compare.monotonicity env_basic (Atom.var "I") (Poly.pow i 2) = Compare.Nondecreasing);
  Alcotest.(check bool) "-i nonincreasing" true
    (Compare.monotonicity env_basic (Atom.var "I") (Poly.neg i) = Compare.Nonincreasing);
  (* i^2 on [-n, n] is not monotone *)
  let e = Range.refine Range.empty (Atom.var "I") (Range.between (Poly.neg n) n) in
  let e = Range.refine e (Atom.var "N") (Range.at_least Poly.one) in
  Alcotest.(check bool) "i^2 not monotone on [-n,n]" true
    (Compare.monotonicity e (Atom.var "I") (Poly.pow i 2) = Compare.Unknown_mono)

let test_trfd_range_math () =
  (* the paper's worked example: f = (i(n^2+n) + j^2 - j)/2 + k + 1 *)
  let i = Poly.var "I" and j = Poly.var "J" and k = Poly.var "K" in
  let half = Rat.make 1 2 in
  let f =
    Poly.add
      (Poly.scale half
         (Poly.add (Poly.mul i (Poly.add (Poly.pow n 2) n)) (Poly.sub (Poly.pow j 2) j)))
      (Poly.add k Poly.one)
  in
  let open Range in
  let m = Poly.var "M" in
  let env = empty in
  let env = refine env (Atom.var "N") (at_least Poly.one) in
  let env = refine env (Atom.var "M") (at_least Poly.one) in
  let env = refine env (Atom.var "I") (between Poly.zero (Poly.sub m Poly.one)) in
  let env = refine env (Atom.var "J") (between Poly.zero (Poly.sub n Poly.one)) in
  let env = refine env (Atom.var "K") (between Poly.zero (Poly.sub j Poly.one)) in
  let over = [ Atom.var "K"; Atom.var "J" ] in
  let a2 =
    match Compare.eliminate env `Max ~over f with Ok p -> p | Error _ -> Alcotest.fail "max"
  in
  let b2 =
    match Compare.eliminate env `Min ~over f with Ok p -> p | Error _ -> Alcotest.fail "min"
  in
  (* paper: a2(i) = (i(n^2+n) + n^2 - n)/2 ; b2(i) = (i(n^2+n))/2 + 1 *)
  let expected_a2 =
    Poly.scale half (Poly.add (Poly.mul i (Poly.add (Poly.pow n 2) n)) (Poly.sub (Poly.pow n 2) n))
  in
  let expected_b2 =
    Poly.add (Poly.scale half (Poly.mul i (Poly.add (Poly.pow n 2) n))) Poly.one
  in
  Alcotest.check poly "a2" expected_a2 a2;
  Alcotest.check poly "b2" expected_b2 b2;
  (* b2(i+1) - a2(i) = n + 1 > 0, and b2 monotone nondecreasing *)
  let b2_next = Poly.subst (Atom.var "I") (Poly.add i Poly.one) b2 in
  Alcotest.(check bool) "a2(i) < b2(i+1)" true (Compare.prove_lt env a2 b2_next);
  Alcotest.(check bool) "b2 monotone" true
    (Compare.monotonicity env (Atom.var "I") b2 = Compare.Nondecreasing)

(* ----- range propagation ----- *)

let test_range_prop_loop_facts () =
  let src =
    "      PROGRAM T\n\
     \      INTEGER N, I, J\n\
     \      N = 50\n\
     \      DO I = 2, N\n\
     \        DO J = 1, I - 1\n\
     \          X = X + 1.0\n\
     \        END DO\n\
     \      END DO\n\
     \      END\n"
  in
  let p = Frontend.Parser.parse_string src in
  let u = Fir.Program.main p in
  let nests = Analysis.Loops.nests_of_unit u in
  let inner = Analysis.Loops.innermost (List.nth nests 1) in
  let env = Range_prop.env_at u ~target:inner.Analysis.Loops.stmt.sid in
  Alcotest.(check bool) "J >= 1" true (Compare.prove_ge env (Poly.var "J") Poly.one);
  Alcotest.(check bool) "J <= I-1" true
    (Compare.prove_le env (Poly.var "J") (Poly.sub (Poly.var "I") Poly.one));
  Alcotest.(check bool) "I <= N" true (Compare.prove_le env (Poly.var "I") n);
  Alcotest.(check bool) "N = 50 via assignment fact" true
    (Compare.prove_le env n (Poly.of_int 50))

let test_range_prop_if_facts () =
  let src =
    "      PROGRAM T\n\
     \      INTEGER K, M\n\
     \      IF (K .GE. 3 .AND. K .LT. M) THEN\n\
     \        L = K\n\
     \      END IF\n\
     \      END\n"
  in
  let p = Frontend.Parser.parse_string src in
  let u = Fir.Program.main p in
  let target =
    Fir.Stmt.fold
      (fun acc (s : Fir.Ast.stmt) ->
        match s.kind with Fir.Ast.Assign (Fir.Ast.Var "L", _) -> s.sid | _ -> acc)
      (-1) u.pu_body
  in
  let env = Range_prop.env_at u ~target in
  Alcotest.(check bool) "K >= 3" true (Compare.prove_ge env (Poly.var "K") (Poly.of_int 3));
  (* K .LT. M with integer vars gives K <= M - 1 *)
  Alcotest.(check bool) "K <= M-1" true
    (Compare.prove_le env (Poly.var "K") (Poly.sub (Poly.var "M") Poly.one))

let test_range_prop_kill () =
  let src =
    "      PROGRAM T\n\
     \      INTEGER K\n\
     \      K = 5\n\
     \      K = K + 1\n\
     \      L = K\n\
     \      END\n"
  in
  let p = Frontend.Parser.parse_string src in
  let u = Fir.Program.main p in
  let target =
    Fir.Stmt.fold
      (fun acc (s : Fir.Ast.stmt) ->
        match s.kind with Fir.Ast.Assign (Fir.Ast.Var "L", _) -> s.sid | _ -> acc)
      (-1) u.pu_body
  in
  let env = Range_prop.env_at u ~target in
  (* K = K+1 kills the K = 5 fact and is self-referential, so no fact *)
  Alcotest.(check bool) "K = 5 fact killed" false
    (Compare.prove_le env (Poly.var "K") (Poly.of_int 5))

let tests =
  [ ("poly basics", `Quick, test_poly_basics);
    ("poly queries", `Quick, test_poly_queries);
    ("poly substitution", `Quick, test_poly_subst);
    ("poly coeffs_in", `Quick, test_coeffs_in);
    ("of_expr exact division", `Quick, test_of_expr_division);
    ("of_expr opaque atoms", `Quick, test_of_expr_opaque);
    ("summation constant", `Quick, test_summation_constant);
    ("summation linear (Faulhaber)", `Quick, test_summation_linear);
    ("summation triangular", `Quick, test_summation_triangular);
    ("summation capture rejected", `Quick, test_summation_capture_rejected);
    ("compare simple bounds", `Quick, test_compare_simple);
    ("compare correlated bounds", `Quick, test_compare_correlated);
    ("monotonicity", `Quick, test_monotonicity);
    ("TRFD worked example (paper 3.3.1)", `Quick, test_trfd_range_math);
    ("range prop: loop facts", `Quick, test_range_prop_loop_facts);
    ("range prop: IF facts", `Quick, test_range_prop_if_facts);
    ("range prop: kill on assignment", `Quick, test_range_prop_kill) ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_poly_add_homomorphic; prop_poly_mul_homomorphic;
        prop_poly_canonical; prop_expr_roundtrip; prop_summation_matches_brute ]
