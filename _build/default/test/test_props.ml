(* Additional soundness properties, each checking a symbolic engine
   against brute force:

   - the Banerjee per-loop contributions (computed by vertex evaluation)
     must bound the true min/max over the constrained integer box;
   - Banerjee/SIV "Independent" verdicts must agree with exhaustive
     enumeration of the dependence equation;
   - the Compare prover's [prove_ge]/[prove_lt] answers must hold on
     sampled integer assignments satisfying the range environment;
   - Faulhaber power-sum polynomials have exact rational closed forms. *)

open Symbolic
open Util

(* ------------------------------------------------------------------ *)
(* Banerjee vertex formulas vs. exhaustive min/max                     *)

let prop_banerjee_contrib =
  let gen =
    QCheck2.Gen.(
      tup4 (int_range (-4) 4) (int_range (-4) 4) (int_range (-3) 3)
        (pair (int_range 0 5) (oneofl [ `Lt; `Eq; `Gt; `Star ])))
  in
  QCheck2.Test.make ~name:"banerjee loop contribution is exact" ~count:500 gen
    (fun (a, b, lo, (extent, dirv)) ->
      let hi = lo + extent in
      let dir =
        match dirv with
        | `Lt -> Dep.Banerjee.Lt
        | `Eq -> Dep.Banerjee.Eq
        | `Gt -> Dep.Banerjee.Gt
        | `Star -> Dep.Banerjee.Star
      in
      (* brute force h = a*i - b*i' over the constrained box *)
      let feasible = ref [] in
      for i = lo to hi do
        for i' = lo to hi do
          let ok =
            match dirv with
            | `Lt -> i < i'
            | `Eq -> i = i'
            | `Gt -> i > i'
            | `Star -> true
          in
          if ok then feasible := ((a * i) - (b * i')) :: !feasible
        done
      done;
      match (Dep.Banerjee.loop_contrib ~a ~b ~lo ~hi dir, !feasible) with
      | None, [] -> true
      | None, _ -> false (* claimed infeasible but solutions exist *)
      | Some _, [] -> false
      | Some (mn, mx), vs ->
        mn = List.fold_left min max_int vs && mx = List.fold_left max min_int vs)

(* ------------------------------------------------------------------ *)
(* Full Banerjee / SIV verdicts vs. exhaustive dependence check        *)

let affine_gen indices =
  QCheck2.Gen.(
    map2
      (fun coeffs const ->
        List.fold_left2
          (fun acc v c ->
            Poly.add acc (Poly.scale (Rat.of_int c) (Poly.var v)))
          (Poly.of_int const) indices coeffs)
      (list_repeat (List.length indices) (int_range (-3) 3))
      (int_range (-6) 6))

let eval_affine (assign : (string * int) list) (p : Poly.t) =
  match
    Poly.eval
      (function
        | Atom.Avar v -> Option.map Rat.of_int (List.assoc_opt v assign)
        | _ -> None)
      p
  with
  | Some r -> Rat.to_int r
  | None -> 0

let mk_loop name lo hi : Analysis.Loops.loop =
  let d : Fir.Ast.do_loop =
    { index = name; init = Fir.Ast.Int_lit lo; limit = Fir.Ast.Int_lit hi;
      step = None; body = []; info = Fir.Ast.fresh_loop_info () }
  in
  Analysis.Loops.describe (Fir.Stmt.mk (Fir.Ast.Do d)) d

let prop_banerjee_carries_sound =
  let gen =
    QCheck2.Gen.(
      tup4 (affine_gen [ "I"; "J" ]) (affine_gen [ "I"; "J" ])
        (pair (int_range 1 4) (int_range 1 4))
        unit)
  in
  QCheck2.Test.make ~name:"banerjee carries: Independent is sound" ~count:400
    gen
    (fun (f, g, (bi, bj), ()) ->
      let loops = [ mk_loop "I" 1 bi; mk_loop "J" 1 bj ] in
      (* does loop I really carry a dependence between f and g? *)
      let really_carries =
        let hit = ref false in
        for i1 = 1 to bi do
          for j1 = 1 to bj do
            for i2 = 1 to bi do
              for j2 = 1 to bj do
                if i1 <> i2 then
                  let v1 = eval_affine [ ("I", i1); ("J", j1) ] f in
                  let v2 = eval_affine [ ("I", i2); ("J", j2) ] g in
                  if v1 = v2 then hit := true
              done
            done
          done
        done;
        !hit
      in
      match Dep.Banerjee.carries ~loops ~k:0 [ f ] [ g ] with
      | Dep.Banerjee.Independent -> not really_carries
      | Dep.Banerjee.Maybe_dependent -> true)

let prop_siv_sound =
  let gen =
    QCheck2.Gen.(
      triple (affine_gen [ "I" ]) (affine_gen [ "I" ]) (int_range 1 8))
  in
  QCheck2.Test.make ~name:"strong SIV: Independent is sound" ~count:400 gen
    (fun (f, g, bound) ->
      let really_carries =
        let hit = ref false in
        for i1 = 1 to bound do
          for i2 = 1 to bound do
            if i1 <> i2 then
              if eval_affine [ ("I", i1) ] f = eval_affine [ ("I", i2) ] g then
                hit := true
          done
        done;
        !hit
      in
      match Dep.Siv.test ~enclosing:[] ~index:"I" ~inner:[] [ f ] [ g ] with
      | Dep.Siv.Independent -> not really_carries
      | Dep.Siv.Maybe_dependent -> true)

(* ------------------------------------------------------------------ *)
(* Compare prover vs. sampled assignments                              *)

(* environment: X in [xlo, xhi], Y in [X+1, 10] (a correlated bound) *)
let compare_env xlo xhi =
  let open Range in
  let env = empty in
  let env = refine env (Atom.var "X") (between (Poly.of_int xlo) (Poly.of_int xhi)) in
  refine env (Atom.var "Y")
    (between (Poly.add (Poly.var "X") Poly.one) (Poly.of_int 10))

let small_poly_gen =
  let open QCheck2.Gen in
  let x = Poly.var "X" and y = Poly.var "Y" in
  let leaf = oneof [ map Poly.of_int (int_range (-6) 6); return x; return y ] in
  let rec go d =
    if d = 0 then leaf
    else
      oneof
        [ leaf;
          map2 Poly.add (go (d - 1)) (go (d - 1));
          map2 Poly.sub (go (d - 1)) (go (d - 1));
          map2 Poly.mul (go (d - 1)) leaf ]
  in
  go 2

let prop_prover_sound =
  let gen = QCheck2.Gen.(triple small_poly_gen small_poly_gen (int_range 0 4)) in
  QCheck2.Test.make ~name:"compare prover: prove_ge is sound" ~count:600 gen
    (fun (p, q, xlo) ->
      let xhi = xlo + 3 in
      let env = compare_env xlo xhi in
      if not (Compare.prove_ge env p q) then true
      else begin
        (* every assignment satisfying the env must satisfy p >= q *)
        let ok = ref true in
        for x = xlo to xhi do
          for y = x + 1 to 10 do
            let assign = [ ("X", x); ("Y", y) ] in
            if eval_affine assign p < eval_affine assign q then ok := false
          done
        done;
        !ok
      end)

let prop_prover_lt_sound =
  let gen = QCheck2.Gen.(triple small_poly_gen small_poly_gen (int_range 0 4)) in
  QCheck2.Test.make ~name:"compare prover: prove_lt is sound" ~count:600 gen
    (fun (p, q, xlo) ->
      let xhi = xlo + 3 in
      let env = compare_env xlo xhi in
      if not (Compare.prove_lt env p q) then true
      else begin
        let ok = ref true in
        for x = xlo to xhi do
          for y = x + 1 to 10 do
            let assign = [ ("X", x); ("Y", y) ] in
            if eval_affine assign p >= eval_affine assign q then ok := false
          done
        done;
        !ok
      end)

let prop_monotonicity_sound =
  QCheck2.Test.make ~name:"monotonicity verdicts are sound" ~count:400
    QCheck2.Gen.(pair small_poly_gen (int_range 0 3))
    (fun (p, xlo) ->
      let env = compare_env xlo (xlo + 3) in
      let check_pairs cmp =
        let ok = ref true in
        for x = xlo to xlo + 3 do
          for y = x + 1 to 10 do
            let v = eval_affine [ ("X", x); ("Y", y) ] p in
            let v' = eval_affine [ ("X", x + 1); ("Y", y) ] p in
            if not (cmp v v') then ok := false
          done
        done;
        !ok
      in
      match Compare.monotonicity env (Atom.var "X") p with
      | Compare.Nondecreasing ->
        (* sampled only within X's env range minus one step *)
        check_pairs ( <= )
      | Compare.Nonincreasing -> check_pairs ( >= )
      | Compare.Constant | Compare.Unknown_mono -> true)

(* ------------------------------------------------------------------ *)
(* Faulhaber power sums                                                *)

let prop_power_sums =
  QCheck2.Test.make ~name:"power sums S_k(n) exact for k <= 6" ~count:200
    QCheck2.Gen.(pair (int_range 0 6) (int_range 0 12))
    (fun (k, n) ->
      let s = Summation.sum_powers k (Poly.of_int n) in
      match Poly.const_val s with
      | Some v ->
        let brute = ref 0 in
        for x = 0 to n do
          let rec pw b e = if e = 0 then 1 else b * pw b (e - 1) in
          brute := !brute + pw x k
        done;
        Rat.equal v (Rat.of_int !brute)
      | None -> false)

let tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_banerjee_contrib; prop_banerjee_carries_sound; prop_siv_sound;
      prop_prover_sound; prop_prover_lt_sound; prop_monotonicity_sound;
      prop_power_sums ]
