(* Tests for the transformation passes: induction substitution,
   reduction recognition, privatization, constant propagation, inlining,
   and the parallelization driver. *)

open Fir

let parse = Frontend.Parser.parse_string

(* semantic oracle: a pass must not change observable behaviour *)
let preserves_semantics name transform src =
  let p0 = parse src in
  let r0, m0 = Machine.Interp.run_capture p0 in
  let p1 = parse src in
  transform p1;
  let r1, m1 = Machine.Interp.run_capture p1 in
  Alcotest.(check (list string)) (name ^ ": output") r0.output r1.output;
  Alcotest.(check bool) (name ^ ": memory") true (m0 = m1)

(* ----- induction ----- *)

let trfd_src =
  "      PROGRAM T\n\
   \      INTEGER M, N, I, J, K, X, X0\n\
   \      PARAMETER (M = 7, N = 9)\n\
   \      REAL A(400)\n\
   \      X0 = 0\n\
   \      DO I = 0, M - 1\n\
   \        X = X0\n\
   \        DO J = 0, N - 1\n\
   \          DO K = 0, J - 1\n\
   \            X = X + 1\n\
   \            A(X) = X * 0.5\n\
   \          END DO\n\
   \        END DO\n\
   \        X0 = X0 + (N**2 + N) / 2\n\
   \      END DO\n\
   \      PRINT *, X, X0\n\
   \      END\n"

let test_induction_trfd () =
  preserves_semantics "trfd" (fun p -> ignore (Passes.Induction.run p)) trfd_src;
  let p = parse trfd_src in
  let subs = Passes.Induction.run p in
  Alcotest.(check bool) "X0 substituted" true (List.mem_assoc "X0" subs);
  Alcotest.(check bool) "X substituted" true (List.mem_assoc "X" subs);
  (* the recurrences inside the nest are gone (the last-value
     assignments after each loop are allowed to remain) *)
  let u = Program.main p in
  let in_k_loop =
    Stmt.fold
      (fun acc (s : Ast.stmt) ->
        match s.kind with
        | Ast.Do d when d.index = "K" ->
          acc
          || Stmt.exists
               (fun (s : Ast.stmt) ->
                 match s.kind with
                 | Ast.Assign (Ast.Var ("X" | "X0"), _) -> true
                 | _ -> false)
               d.body
        | _ -> acc)
      false u.pu_body
  in
  Alcotest.(check bool) "increments removed from the nest" false in_k_loop

let test_induction_cascaded () =
  let src =
    "      PROGRAM T\n\
     \      INTEGER N, I, J, K1, K2\n\
     \      PARAMETER (N = 7)\n\
     \      REAL B(2000)\n\
     \      K1 = 0\n\
     \      K2 = 0\n\
     \      DO I = 1, N\n\
     \        DO J = 1, I\n\
     \          K1 = K1 + 1\n\
     \          B(K1) = B(K1) + 1.0\n\
     \          K2 = K2 + K1\n\
     \        END DO\n\
     \        B(K2) = B(K2) - 1.0\n\
     \      END DO\n\
     \      PRINT *, K1, K2\n\
     \      END\n"
  in
  preserves_semantics "cascaded" (fun p -> ignore (Passes.Induction.run p)) src

let test_induction_step () =
  (* increment by the loop index (a first-order polynomial sum) *)
  let src =
    "      PROGRAM T\n\
     \      INTEGER I, K\n\
     \      REAL A(500)\n\
     \      K = 0\n\
     \      DO I = 1, 20\n\
     \        K = K + I\n\
     \        A(K) = I * 1.0\n\
     \      END DO\n\
     \      PRINT *, K\n\
     \      END\n"
  in
  preserves_semantics "index increment" (fun p -> ignore (Passes.Induction.run p)) src;
  let p = parse src in
  let subs = Passes.Induction.run p in
  Alcotest.(check bool) "K substituted" true (List.mem_assoc "K" subs)

let test_induction_conditional_rejected () =
  let src =
    "      PROGRAM T\n\
     \      INTEGER I, K\n\
     \      K = 0\n\
     \      DO I = 1, 10\n\
     \        IF (I .GT. 5) K = K + 1\n\
     \      END DO\n\
     \      PRINT *, K\n\
     \      END\n"
  in
  let p = parse src in
  let subs = Passes.Induction.run p in
  Alcotest.(check bool) "conditional induction rejected" false (List.mem_assoc "K" subs);
  preserves_semantics "conditional untouched" (fun p -> ignore (Passes.Induction.run p)) src

let test_induction_baseline_triangular_rejected () =
  let p = parse trfd_src in
  let subs = Passes.Induction.run ~generalized:false p in
  (* classic mode may still solve X within the rectangular innermost K
     loop, but not across the triangular J level *)
  Alcotest.(check bool) "no triangular X substitution" false
    (List.mem ("X", "J") subs || List.mem ("X", "I") subs);
  Alcotest.(check bool) "classic mode takes rectangular X0" true
    (List.mem_assoc "X0" subs);
  preserves_semantics "baseline induction" (fun p ->
      ignore (Passes.Induction.run ~generalized:false p))
    trfd_src

let test_induction_geometric () =
  let src =
    "      PROGRAM T\n\
     \      INTEGER I, K\n\
     \      REAL A(40), W\n\
     \      K = 1\n\
     \      W = 1.0\n\
     \      DO I = 1, 12\n\
     \        K = K * 2\n\
     \        W = W * 0.5\n\
     \        A(I) = K * W\n\
     \      END DO\n\
     \      PRINT *, K, W, A(12)\n\
     \      END\n"
  in
  preserves_semantics "geometric" (fun p -> ignore (Passes.Induction.run p)) src;
  let p = parse src in
  let subs = Passes.Induction.run p in
  Alcotest.(check bool) "K substituted (multiplicative)" true (List.mem_assoc "K" subs);
  Alcotest.(check bool) "W substituted (multiplicative)" true (List.mem_assoc "W" subs);
  (* the recurrences are really gone from the loop body *)
  let u = Program.main p in
  let updates_left =
    Stmt.fold
      (fun acc (s : Ast.stmt) ->
        match s.kind with
        | Ast.Do d ->
          acc
          || Stmt.exists
               (fun (s : Ast.stmt) ->
                 match Passes.Induction.is_induction_stmt s with
                 | Some (("K" | "W"), _) -> true
                 | _ -> false)
               d.body
        | _ -> acc)
      false u.pu_body
  in
  Alcotest.(check bool) "updates removed" false updates_left

let test_induction_geometric_unsafe_factor_rejected () =
  (* 0.9 is not an exact power of two: the closed form would drift from
     the iterated products in floating point, so it must be left alone *)
  let src =
    "      PROGRAM T\n\
     \      REAL W\n\
     \      W = 1.0\n\
     \      DO I = 1, 10\n\
     \        W = W * 0.9\n\
     \      END DO\n\
     \      PRINT *, W\n\
     \      END\n"
  in
  let p = parse src in
  let subs = Passes.Induction.run p in
  Alcotest.(check bool) "0.9 factor rejected" false (List.mem_assoc "W" subs);
  preserves_semantics "unsafe factor untouched" (fun p -> ignore (Passes.Induction.run p)) src

(* ----- reduction ----- *)

let find_reductions src =
  let p = parse src in
  let u = Program.main p in
  match (List.hd u.pu_body).kind with
  | Ast.Do d -> Passes.Reduction.find u.pu_symtab d.body
  | _ -> Alcotest.fail "expected do"

let test_reduction_scalar () =
  let rs =
    find_reductions
      "      PROGRAM T\n\
       \      DO I = 1, 10\n\
       \        S = S + I * 2.0\n\
       \      END DO\n\
       \      END\n"
  in
  match rs with
  | [ { red = { red_var = "S"; red_op = Ast.Rsum; red_kind = Ast.Single_address; red_form = Ast.Private_copies }; _ } ] -> ()
  | _ -> Alcotest.fail "expected scalar sum reduction"

let test_reduction_reassociated () =
  let rs =
    find_reductions
      "      PROGRAM T\n\
       \      DO I = 1, 10\n\
       \        S = S + A + B\n\
       \      END DO\n\
       \      END\n"
  in
  Alcotest.(check int) "reassociated sum found" 1 (List.length rs)

let test_reduction_histogram () =
  let rs =
    find_reductions
      "      PROGRAM T\n\
       \      INTEGER NB(10)\n\
       \      REAL F(100)\n\
       \      DO I = 1, 10\n\
       \        K = NB(I)\n\
       \        F(K) = F(K) + 1.0\n\
       \      END DO\n\
       \      END\n"
  in
  match rs with
  | [ { red = { red_var = "F"; red_kind = Ast.Histogram; _ }; _ } ] -> ()
  | _ -> Alcotest.fail "expected histogram reduction"

let test_reduction_rejected_other_use () =
  let rs =
    find_reductions
      "      PROGRAM T\n\
       \      REAL F(100)\n\
       \      DO I = 1, 10\n\
       \        F(I) = F(I) + 1.0\n\
       \        X = F(3)\n\
       \      END DO\n\
       \      END\n"
  in
  Alcotest.(check int) "other use blocks reduction" 0 (List.length rs)

let test_reduction_max () =
  let rs =
    find_reductions
      "      PROGRAM T\n\
       \      DO I = 1, 10\n\
       \        S = MAX(S, I * 1.0)\n\
       \      END DO\n\
       \      END\n"
  in
  match rs with
  | [ { red = { red_op = Ast.Rmax; _ }; _ } ] -> ()
  | _ -> Alcotest.fail "expected MAX reduction"

(* ----- constprop ----- *)

let test_constprop_basic () =
  let src =
    "      PROGRAM T\n\
     \      INTEGER N\n\
     \      PARAMETER (N = 4)\n\
     \      K = N * 2\n\
     \      L = K + 1\n\
     \      PRINT *, L\n\
     \      END\n"
  in
  preserves_semantics "constprop" Passes.Constprop.run src;
  let p = parse src in
  Passes.Constprop.run p;
  let u = Program.main p in
  let has_const_9 =
    Stmt.exists
      (fun (s : Ast.stmt) ->
        match s.kind with
        | Ast.Assign (Ast.Var "L", Ast.Int_lit 9) -> true
        | _ -> false)
      u.pu_body
  in
  Alcotest.(check bool) "L = 9 folded" true has_const_9

let test_constprop_goto_safe () =
  (* the CLOUD3D regression: facts must die at backward-goto targets *)
  let src =
    "      PROGRAM T\n\
     \      K = 0\n\
     \      R = 1.0\n\
     \ 10   CONTINUE\n\
     \      K = K + 1\n\
     \      R = R * 0.5\n\
     \      IF (K .LT. 5 .AND. R .GT. 0.01) GOTO 10\n\
     \      PRINT *, K\n\
     \      END\n"
  in
  preserves_semantics "goto loop" Passes.Constprop.run src

let test_constprop_kill_through_loop () =
  let src =
    "      PROGRAM T\n\
     \      K = 1\n\
     \      DO I = 1, 3\n\
     \        K = K * 2\n\
     \      END DO\n\
     \      PRINT *, K\n\
     \      END\n"
  in
  preserves_semantics "kill through loop" Passes.Constprop.run src

(* ----- inlining ----- *)

let test_inline_semantics () =
  let src =
    "      PROGRAM T\n\
     \      REAL A(20), B(20)\n\
     \      DO I = 1, 20\n\
     \        A(I) = I * 1.0\n\
     \        B(I) = 0.0\n\
     \      END DO\n\
     \      CALL SAXPY(20, 2.0, A, B)\n\
     \      CALL SAXPY(10, 1.0, A(11), B)\n\
     \      S = 0.0\n\
     \      DO I = 1, 20\n\
     \        S = S + B(I)\n\
     \      END DO\n\
     \      PRINT *, S\n\
     \      END\n\
     \      SUBROUTINE SAXPY(N, ALPHA, X, Y)\n\
     \      INTEGER N, I\n\
     \      REAL ALPHA, X(N), Y(N)\n\
     \      DO I = 1, N\n\
     \        Y(I) = Y(I) + ALPHA * X(I)\n\
     \      END DO\n\
     \      RETURN\n\
     \      END\n"
  in
  preserves_semantics "inline saxpy" (fun p -> ignore (Passes.Inline.run p)) src;
  let p = parse src in
  let stats = Passes.Inline.run p in
  Alcotest.(check int) "two sites expanded" 2 stats.sites_expanded;
  let u = Program.main p in
  let calls_left =
    Stmt.exists
      (fun (s : Ast.stmt) -> match s.kind with Ast.Call _ -> true | _ -> false)
      u.pu_body
  in
  Alcotest.(check bool) "no calls left in main" false calls_left

let test_inline_linearization () =
  (* 2-D formal over a 1-D actual: subscripts are linearized *)
  let src =
    "      PROGRAM T\n\
     \      REAL C(60)\n\
     \      DO I = 1, 60\n\
     \        C(I) = 0.0\n\
     \      END DO\n\
     \      CALL FILL(C, 12, 5)\n\
     \      S = 0.0\n\
     \      DO I = 1, 60\n\
     \        S = S + C(I)\n\
     \      END DO\n\
     \      PRINT *, S\n\
     \      END\n\
     \      SUBROUTINE FILL(D, M, K)\n\
     \      INTEGER M, K, I, J\n\
     \      REAL D(M, K)\n\
     \      DO J = 1, K\n\
     \        DO I = 1, M\n\
     \          D(I, J) = 1.0\n\
     \        END DO\n\
     \      END DO\n\
     \      END\n"
  in
  preserves_semantics "inline linearized" (fun p -> ignore (Passes.Inline.run p)) src

let test_inline_common () =
  let src =
    "      PROGRAM T\n\
     \      INTEGER N\n\
     \      COMMON /CFG/ N\n\
     \      N = 5\n\
     \      CALL BUMP\n\
     \      PRINT *, N\n\
     \      END\n\
     \      SUBROUTINE BUMP\n\
     \      INTEGER N\n\
     \      COMMON /CFG/ N\n\
     \      N = N + 10\n\
     \      END\n"
  in
  preserves_semantics "inline common" (fun p -> ignore (Passes.Inline.run p)) src

let test_inline_interior_return () =
  let src =
    "      PROGRAM T\n\
     \      K = 3\n\
     \      CALL CLAMP(K)\n\
     \      PRINT *, K\n\
     \      K = 30\n\
     \      CALL CLAMP(K)\n\
     \      PRINT *, K\n\
     \      END\n\
     \      SUBROUTINE CLAMP(N)\n\
     \      INTEGER N\n\
     \      IF (N .LT. 10) RETURN\n\
     \      N = 10\n\
     \      RETURN\n\
     \      END\n"
  in
  preserves_semantics "interior return" (fun p -> ignore (Passes.Inline.run p)) src

(* ----- privatization ----- *)

let privatizable src array =
  let p = parse src in
  let u = Program.main p in
  let nest = List.hd (Analysis.Loops.nests_of_unit u) in
  let target = Analysis.Loops.innermost nest in
  let outer_env = Symbolic.Range_prop.env_at u ~target:target.Analysis.Loops.stmt.sid in
  Passes.Privatize.analyze ~unit_:u ~outer_env ~loop_sid:target.Analysis.Loops.stmt.sid
    ~d:target.Analysis.Loops.dloop ~array

let test_privatize_simple () =
  let src =
    "      PROGRAM T\n\
     \      REAL W(50), Q(50, 50)\n\
     \      DO K = 1, 50\n\
     \        DO J = 1, 50\n\
     \          W(J) = Q(J, K) * 2.0\n\
     \        END DO\n\
     \        DO J = 1, 50\n\
     \          Q(J, K) = W(J) + 1.0\n\
     \        END DO\n\
     \      END DO\n\
     \      END\n"
  in
  Alcotest.(check bool) "W privatizable" true (privatizable src "W" = Ok ())

let test_privatize_uncovered () =
  let src =
    "      PROGRAM T\n\
     \      REAL W(50), Q(50, 50)\n\
     \      DO K = 1, 50\n\
     \        DO J = 2, 50\n\
     \          W(J) = Q(J, K)\n\
     \        END DO\n\
     \        DO J = 1, 50\n\
     \          Q(J, K) = W(J)\n\
     \        END DO\n\
     \      END DO\n\
     \      END\n"
  in
  (* W(1) is read but never written in the iteration *)
  Alcotest.(check bool) "W not privatizable" true
    (match privatizable src "W" with Error _ -> true | Ok () -> false)

let test_privatize_sweep () =
  let src =
    "      PROGRAM T\n\
     \      REAL W(50), Q(50, 50)\n\
     \      DO K = 1, 50\n\
     \        W(1) = Q(1, K)\n\
     \        DO J = 2, 50\n\
     \          W(J) = Q(J, K) + 0.5 * W(J - 1)\n\
     \        END DO\n\
     \        DO J = 1, 50\n\
     \          Q(J, K) = W(J)\n\
     \        END DO\n\
     \      END DO\n\
     \      END\n"
  in
  Alcotest.(check bool) "forward sweep privatizable" true (privatizable src "W" = Ok ())

let test_privatize_conditional_def () =
  let src =
    "      PROGRAM T\n\
     \      REAL W(50), Q(50, 50)\n\
     \      DO K = 1, 50\n\
     \        DO J = 1, 50\n\
     \          IF (Q(J, K) .GT. 0.0) W(J) = Q(J, K)\n\
     \        END DO\n\
     \        DO J = 1, 50\n\
     \          Q(J, K) = W(J)\n\
     \        END DO\n\
     \      END DO\n\
     \      END\n"
  in
  Alcotest.(check bool) "conditional defs do not cover" true
    (match privatizable src "W" with Error _ -> true | Ok () -> false)

let test_privatize_write_only () =
  let src =
    "      PROGRAM T\n\
     \      INTEGER IX(50)\n\
     \      REAL W(50)\n\
     \      DO K = 1, 50\n\
     \        W(IX(K)) = K * 1.0\n\
     \      END DO\n\
     \      END\n"
  in
  Alcotest.(check bool) "write-only array rejected" true
    (match privatizable src "W" with Error _ -> true | Ok () -> false)

(* ----- dead code ----- *)

let test_deadcode_removes_unused () =
  let src =
    "      PROGRAM T\n\
     \      K = 5\n\
     \      L = K + 1\n\
     \      M = 7\n\
     \      PRINT *, L\n\
     \      END\n"
  in
  preserves_semantics "deadcode" (fun p -> ignore (Passes.Deadcode.run p)) src;
  let p = parse src in
  ignore (Passes.Deadcode.run p);
  let u = Program.main p in
  (* M is write-only and goes; the K -> L chain stays (L printed) *)
  Alcotest.(check bool) "M removed" false (Stmt.mentions "M" u.pu_body);
  Alcotest.(check bool) "K kept" true (Stmt.mentions "K" u.pu_body)

let test_deadcode_fixpoint_chain () =
  let src =
    "      PROGRAM T\n\
     \      A1 = 1\n\
     \      A2 = A1 + 1\n\
     \      A3 = A2 + 1\n\
     \      PRINT *, 0\n\
     \      END\n"
  in
  let p = parse src in
  ignore (Passes.Deadcode.run p);
  let u = Program.main p in
  (* the whole dead chain unravels across sweeps *)
  Alcotest.(check bool) "chain removed" false
    (Stmt.mentions "A1" u.pu_body || Stmt.mentions "A2" u.pu_body
    || Stmt.mentions "A3" u.pu_body)

let test_deadcode_keeps_escaping () =
  let src =
    "      PROGRAM T\n\
     \      INTEGER N\n\
     \      COMMON /CFG/ N\n\
     \      N = 3\n\
     \      CALL SHOW\n\
     \      END\n\
     \      SUBROUTINE SHOW\n\
     \      INTEGER N\n\
     \      COMMON /CFG/ N\n\
     \      PRINT *, N\n\
     \      END\n"
  in
  preserves_semantics "escaping common kept" (fun p -> ignore (Passes.Deadcode.run p)) src;
  let p = parse src in
  ignore (Passes.Deadcode.run p);
  Alcotest.(check bool) "common write kept" true
    (Stmt.mentions "N" (Program.main p).pu_body)

(* ----- end-to-end parallelization fixtures ----- *)

let loop_infos src mode =
  let p = parse src in
  ignore (Passes.Parallelize.run ~mode p);
  let u = Program.main p in
  Stmt.fold
    (fun acc (s : Ast.stmt) ->
      match s.kind with Ast.Do d -> (d.index, d.info) :: acc | _ -> acc)
    [] u.pu_body

let test_parallelize_bdna_privates () =
  let src =
    "      PROGRAM T\n\
     \      INTEGER N, I, J, K, L, P, M, IND(100)\n\
     \      PARAMETER (N = 40)\n\
     \      REAL A(100), X(50, 50), Y(50, 50)\n\
     \      DO I = 2, N\n\
     \        DO J = 1, I - 1\n\
     \          IND(J) = 0\n\
     \          A(J) = X(I, J) - Y(I, J)\n\
     \          IF (A(J) .LT. 20.0) IND(J) = 1\n\
     \        END DO\n\
     \        P = 0\n\
     \        DO K = 1, I - 1\n\
     \          IF (IND(K) .NE. 0) THEN\n\
     \            P = P + 1\n\
     \            IND(P) = K\n\
     \          END IF\n\
     \        END DO\n\
     \        DO L = 1, P\n\
     \          M = IND(L)\n\
     \          X(I, L) = A(M) + 1.0\n\
     \        END DO\n\
     \      END DO\n\
     \      END\n"
  in
  let infos = loop_infos src Passes.Parallelize.Polaris in
  let i_info = List.assoc "I" infos in
  Alcotest.(check bool) "I parallel" true i_info.Ast.par;
  Alcotest.(check bool) "A private" true (List.mem "A" i_info.Ast.privates);
  Alcotest.(check bool) "IND private" true (List.mem "IND" i_info.Ast.privates);
  Alcotest.(check bool) "P private" true (List.mem "P" i_info.Ast.privates);
  let k_info = List.assoc "K" infos in
  Alcotest.(check bool) "K serial" false k_info.Ast.par

let test_parallelize_reduction_annotation () =
  let src =
    "      PROGRAM T\n\
     \      INTEGER NB(64)\n\
     \      REAL F(256)\n\
     \      DO I = 1, 64\n\
     \        NB(I) = I * 3 - 2\n\
     \      END DO\n\
     \      DO I = 1, 64\n\
     \        K = NB(I)\n\
     \        F(K) = F(K) + 0.5\n\
     \      END DO\n\
     \      END\n"
  in
  let infos = loop_infos src Passes.Parallelize.Polaris in
  (* second I loop: histogram reduction on F *)
  let hist =
    List.exists
      (fun (_, (info : Ast.loop_info)) ->
        info.par
        && List.exists
             (fun (r : Ast.reduction) ->
               r.red_var = "F" && r.red_kind = Ast.Histogram)
             info.reductions)
      infos
  in
  Alcotest.(check bool) "histogram annotated" true hist

let test_parallelize_calls_block () =
  let src =
    "      PROGRAM T\n\
     \      REAL A(10)\n\
     \      DO I = 1, 10\n\
     \        CALL F(A, I)\n\
     \      END DO\n\
     \      END\n\
     \      SUBROUTINE F(A, I)\n\
     \      REAL A(10)\n\
     \      INTEGER I\n\
     \      A(I) = 1.0\n\
     \      END\n"
  in
  let infos = loop_infos src Passes.Parallelize.Polaris in
  Alcotest.(check bool) "loop with call serial" false (List.assoc "I" infos).Ast.par

let tests =
  [ ("induction: TRFD", `Quick, test_induction_trfd);
    ("induction: cascaded (Fig 1)", `Quick, test_induction_cascaded);
    ("induction: index increment", `Quick, test_induction_step);
    ("induction: conditional rejected", `Quick, test_induction_conditional_rejected);
    ("induction: baseline triangular rejected", `Quick, test_induction_baseline_triangular_rejected);
    ("induction: geometric (multiplicative)", `Quick, test_induction_geometric);
    ("induction: unsafe geometric factor", `Quick, test_induction_geometric_unsafe_factor_rejected);
    ("reduction: scalar sum", `Quick, test_reduction_scalar);
    ("reduction: reassociated", `Quick, test_reduction_reassociated);
    ("reduction: histogram", `Quick, test_reduction_histogram);
    ("reduction: other use blocks", `Quick, test_reduction_rejected_other_use);
    ("reduction: MAX", `Quick, test_reduction_max);
    ("constprop: folding", `Quick, test_constprop_basic);
    ("constprop: goto safety", `Quick, test_constprop_goto_safe);
    ("constprop: loop kill", `Quick, test_constprop_kill_through_loop);
    ("inline: semantics + full expansion", `Quick, test_inline_semantics);
    ("inline: linearization", `Quick, test_inline_linearization);
    ("inline: common blocks", `Quick, test_inline_common);
    ("inline: interior RETURN", `Quick, test_inline_interior_return);
    ("privatize: simple work array", `Quick, test_privatize_simple);
    ("privatize: uncovered read", `Quick, test_privatize_uncovered);
    ("privatize: forward sweep", `Quick, test_privatize_sweep);
    ("privatize: conditional defs", `Quick, test_privatize_conditional_def);
    ("privatize: write-only rejected", `Quick, test_privatize_write_only);
    ("deadcode: removes unused", `Quick, test_deadcode_removes_unused);
    ("deadcode: fixpoint chain", `Quick, test_deadcode_fixpoint_chain);
    ("deadcode: keeps escaping", `Quick, test_deadcode_keeps_escaping);
    ("parallelize: BDNA privates", `Quick, test_parallelize_bdna_privates);
    ("parallelize: reduction annotation", `Quick, test_parallelize_reduction_annotation);
    ("parallelize: calls block", `Quick, test_parallelize_calls_block) ]
