(* Tests for the run-time parallelization framework: shadow marking, PD
   verdicts, speculative execution, cost model. *)

open Fruntime

(* feed a trace: iterations are lists of (kind, index) *)
let run_trace size iters =
  let sh = Shadow.create size in
  List.iter
    (fun accesses ->
      Shadow.begin_iteration sh;
      List.iter
        (fun (k, i) -> match k with `R -> Shadow.read sh i | `W -> Shadow.write sh i)
        accesses)
    iters;
  sh

let test_pd_fully_parallel () =
  (* each iteration writes its own element *)
  let sh = run_trace 8 [ [ (`W, 0) ]; [ (`W, 1) ]; [ (`W, 2) ] ] in
  Alcotest.(check bool) "parallel" true (Shadow.verdict sh = Shadow.Parallel)

let test_pd_flow_dependence () =
  (* iteration 1 writes 3; iteration 2 reads 3 without writing it *)
  let sh = run_trace 8 [ [ (`W, 3) ]; [ (`R, 3) ] ] in
  Alcotest.(check bool) "flow detected" true (Shadow.verdict sh = Shadow.Not_parallel)

let test_pd_output_dependence_privatizable () =
  (* two iterations write the same element, each writes before any read *)
  let sh = run_trace 8 [ [ (`W, 3) ]; [ (`W, 3); (`R, 3) ] ] in
  Alcotest.(check bool) "privatizable" true
    (Shadow.verdict sh = Shadow.Parallel_privatized)

let test_pd_read_before_write_not_privatizable () =
  (* both iterations read 3 before writing it: privatization invalid,
     and there are output dependences *)
  let sh = run_trace 8 [ [ (`R, 3); (`W, 3) ]; [ (`R, 3); (`W, 3) ] ] in
  Alcotest.(check bool) "not parallel" true (Shadow.verdict sh = Shadow.Not_parallel)

let test_pd_read_then_write_same_iter_ok () =
  (* a single iteration reading its own element before writing it is
     harmless when no other iteration touches it *)
  let sh = run_trace 8 [ [ (`R, 1); (`W, 1) ]; [ (`W, 2) ] ] in
  Alcotest.(check bool) "parallel as-is" true (Shadow.verdict sh = Shadow.Parallel)

let test_pd_read_only () =
  let sh = run_trace 8 [ [ (`R, 0) ]; [ (`R, 0) ] ] in
  Alcotest.(check bool) "reads only" true (Shadow.verdict sh = Shadow.Parallel)

let test_pd_analysis_counts () =
  let sh = run_trace 8 [ [ (`W, 0); (`W, 0) ]; [ (`W, 1) ]; [ (`W, 0) ] ] in
  let a = Shadow.analyze sh in
  (* wa counts first-per-iteration writes: 0,1,0 -> 3; marks: {0,1} -> 2 *)
  Alcotest.(check int) "total writes" 3 a.total_writes;
  Alcotest.(check int) "marks" 2 a.marks;
  Alcotest.(check bool) "output deps" true a.output_deps

(* ----- cost model ----- *)

let test_cost_model_shape () =
  let cm = Pd_test.default_cost in
  (* analysis time is O(size/p + log p): more procs helps up to log term *)
  let t1 = Pd_test.analysis_time cm ~size:4096 ~p:1 in
  let t8 = Pd_test.analysis_time cm ~size:4096 ~p:8 in
  Alcotest.(check bool) "p=8 faster" true (t8 < t1);
  Alcotest.(check bool) "log term present" true
    (Pd_test.analysis_time cm ~size:0 ~p:8 > Pd_test.analysis_time cm ~size:0 ~p:1);
  Alcotest.(check bool) "marking scales" true
    (Pd_test.marking_time cm ~accesses:1000 ~p:8 < Pd_test.marking_time cm ~accesses:1000 ~p:1)

(* ----- speculative execution on the interpreter ----- *)

let spec_src ~collide = Printf.sprintf
  "      PROGRAM S\n\
   \      INTEGER N, K, COLL\n\
   \      PARAMETER (N = 64)\n\
   \      INTEGER IX(64), JX(64)\n\
   \      REAL D(128), SRC(128), T\n\
   \      COLL = %d\n\
   \      DO K = 1, N\n\
   \        IX(K) = 2 * K - MOD(K, 2)\n\
   \        JX(K) = IX(K)\n\
   \        SRC(K) = 0.5 * K\n\
   \      END DO\n\
   \      IF (COLL .EQ. 1) THEN\n\
   \        JX(7) = IX(6)\n\
   \      END IF\n\
   \      DO K = 1, N\n\
   \        T = D(JX(K)) + SRC(K)\n\
   \        D(IX(K)) = T * 0.5 + 1.0\n\
   \      END DO\n\
   \      PRINT *, D(1)\n\
   \      END\n"
  (if collide then 1 else 0)

let spec_run ~collide ~procs =
  let p = Frontend.Parser.parse_string (spec_src ~collide) in
  ignore (Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p);
  let u = Fir.Program.main p in
  let sid = ref (-1) in
  Fir.Stmt.iter
    (fun (s : Fir.Ast.stmt) ->
      match s.kind with
      | Fir.Ast.Do d when d.info.speculative -> sid := s.sid
      | _ -> ())
    u.pu_body;
  Alcotest.(check bool) "speculative candidate flagged" true (!sid >= 0);
  Speculative.run ~procs ~loop_sid:!sid ~array:"D" p

let test_speculative_pass () =
  let o = spec_run ~collide:false ~procs:8 in
  Alcotest.(check bool) "verdict parallel-ish" true (o.verdict <> Shadow.Not_parallel);
  Alcotest.(check int) "64 iterations seen" 64 o.iterations;
  Alcotest.(check bool) "speedup over serial" true (Speculative.speedup o > 1.0)

let test_speculative_fail () =
  let o = spec_run ~collide:true ~procs:8 in
  Alcotest.(check bool) "collision detected" true (o.verdict = Shadow.Not_parallel);
  (* failed speculation costs more than sequential execution *)
  Alcotest.(check bool) "t_total > t_seq" true (o.t_total > o.t_seq);
  Alcotest.(check bool) "speedup < 1" true (Speculative.speedup o < 1.0)

let test_speculative_slowdown_bounded () =
  (* potential slowdown shrinks with more processors (paper Fig. 6) *)
  let s2 = Speculative.potential_slowdown (spec_run ~collide:false ~procs:2) in
  let s8 = Speculative.potential_slowdown (spec_run ~collide:false ~procs:8) in
  Alcotest.(check bool) "slowdown decreases with p" true (s8 < s2);
  Alcotest.(check bool) "slowdown bounded" true (s8 < 2.5)

let test_speculative_detects_exact_dependence () =
  (* brute-force cross-check: with the collision, iterations 6 and 7
     touch the same element; the verdict must agree with a manual scan *)
  let o_ok = spec_run ~collide:false ~procs:4 in
  let o_bad = spec_run ~collide:true ~procs:4 in
  Alcotest.(check bool) "accesses counted" true (o_ok.accesses = o_bad.accesses);
  Alcotest.(check bool) "verdicts differ" true (o_ok.verdict <> o_bad.verdict)

let tests =
  [ ("PD: fully parallel", `Quick, test_pd_fully_parallel);
    ("PD: flow dependence", `Quick, test_pd_flow_dependence);
    ("PD: output deps privatizable", `Quick, test_pd_output_dependence_privatizable);
    ("PD: read-before-write fails privatization", `Quick, test_pd_read_before_write_not_privatizable);
    ("PD: same-iteration read/write ok", `Quick, test_pd_read_then_write_same_iter_ok);
    ("PD: read only", `Quick, test_pd_read_only);
    ("PD: analysis counters", `Quick, test_pd_analysis_counts);
    ("PD cost model shape", `Quick, test_cost_model_shape);
    ("speculative: passing run", `Quick, test_speculative_pass);
    ("speculative: failing run", `Quick, test_speculative_fail);
    ("speculative: slowdown bounded", `Quick, test_speculative_slowdown_bounded);
    ("speculative: verdict matches data", `Quick, test_speculative_detects_exact_dependence) ]
