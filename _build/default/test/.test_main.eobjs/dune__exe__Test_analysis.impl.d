test/test_analysis.ml: Alcotest Analysis Ast Fir Fmt Frontend List Program Suite Symbolic
