test/test_suite.ml: Alcotest Core Frontend List Machine Printf String Suite
