test/test_main.ml: Alcotest Test_analysis Test_core Test_dep Test_fir Test_frontend Test_fuzz Test_machine Test_passes Test_props Test_runtime Test_suite Test_symbolic Test_util
