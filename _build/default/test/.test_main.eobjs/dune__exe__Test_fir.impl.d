test/test_fir.ml: Alcotest Ast Consistency Expr Fir List Option Pattern Program Punit QCheck2 QCheck_alcotest Stmt Symtab
