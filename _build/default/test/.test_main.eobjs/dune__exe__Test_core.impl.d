test/test_core.ml: Alcotest Core Fir Frontend List Suite
