test/test_symbolic.ml: Alcotest Analysis Atom Compare Fir Frontend List Poly QCheck2 QCheck_alcotest Range Range_prop Rat Summation Symbolic Util
