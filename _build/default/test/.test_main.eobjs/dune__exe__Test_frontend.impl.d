test/test_frontend.ml: Alcotest Ast Expr Fir Frontend List Machine Option Passes Program String Suite Symtab
