test/test_dep.ml: Alcotest Analysis Ast Atom Dep Fir Frontend Hashtbl List Passes Poly Printf Program Punit QCheck2 QCheck_alcotest Range Stmt String Symbolic Symtab Util
