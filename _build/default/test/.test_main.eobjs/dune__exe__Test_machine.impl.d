test/test_machine.ml: Alcotest Array Fir Frontend Machine Passes String Suite
