test/test_fuzz.ml: Alcotest Buffer Core Fir Fmt Frontend List Machine Printf Program QCheck2 QCheck_alcotest String Util
