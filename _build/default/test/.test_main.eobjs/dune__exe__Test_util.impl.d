test/test_util.ml: Alcotest List Listx Prng QCheck2 QCheck_alcotest Rat Util
