test/test_passes.ml: Alcotest Analysis Ast Fir Frontend List Machine Passes Program Stmt Symbolic
