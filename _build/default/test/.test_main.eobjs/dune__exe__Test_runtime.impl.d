test/test_runtime.ml: Alcotest Fir Frontend Fruntime List Passes Pd_test Printf Shadow Speculative
