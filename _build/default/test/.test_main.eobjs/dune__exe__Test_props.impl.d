test/test_props.ml: Analysis Atom Compare Dep Fir List Option Poly QCheck2 QCheck_alcotest Range Rat Summation Symbolic Util
