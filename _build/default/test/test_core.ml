(* End-to-end pipeline tests: compile + simulate, configuration
   differences, ablations. *)

let test_pipeline_counts () =
  let c = Suite.Registry.find "BDNA" in
  let t = Core.Pipeline.compile (Core.Config.polaris ()) c.source in
  Alcotest.(check bool) "some loops parallel" true
    (List.length (Core.Pipeline.parallel_loops t) > 0);
  Alcotest.(check bool) "some loops serial" true
    (List.length (Core.Pipeline.serial_loops t) > 0)

let test_pipeline_output_source_parses () =
  let c = Suite.Registry.find "OCEAN" in
  let t = Core.Pipeline.compile (Core.Config.polaris ()) c.source in
  let out = Core.Pipeline.output_source t in
  (* the annotated output must re-parse (directives are comments) *)
  let p = Frontend.Parser.parse_string out in
  Alcotest.(check bool) "units preserved" true
    (List.length (Fir.Program.units p) >= 1)

let test_simulate_consistency () =
  let c = Suite.Registry.find "MDG" in
  let _, r = Core.Simulate.compile_and_run (Core.Config.polaris ()) c.source in
  Alcotest.(check bool) "parallel <= serial" true (r.parallel_time <= r.serial_time);
  Alcotest.(check bool) "speedup > 1" true (r.speedup > 1.0)

let test_polaris_beats_baseline_where_expected () =
  List.iter
    (fun name ->
      let c = Suite.Registry.find name in
      let _, rp = Core.Simulate.compile_and_run (Core.Config.polaris ()) c.source in
      let _, rb = Core.Simulate.compile_and_run (Core.Config.baseline ()) c.source in
      Alcotest.(check bool) (name ^ ": polaris ahead") true (rp.speedup > rb.speedup))
    [ "TRFD"; "OCEAN"; "BDNA"; "MDG"; "TOMCATV"; "APPSP" ]

let test_baseline_wins_su2cor_wave5 () =
  (* the paper's "two of sixteen" *)
  List.iter
    (fun name ->
      let c = Suite.Registry.find name in
      let _, rp = Core.Simulate.compile_and_run (Core.Config.polaris ()) c.source in
      let _, rb = Core.Simulate.compile_and_run (Core.Config.baseline ()) c.source in
      Alcotest.(check bool) (name ^ ": baseline ahead") true (rb.speedup > rp.speedup))
    [ "SU2COR"; "WAVE5" ]

let test_ablation_ordering () =
  (* removing a technique never helps on the codes that need it *)
  let speedup cfg src =
    let _, r = Core.Simulate.compile_and_run cfg src in
    r.speedup
  in
  let trfd = (Suite.Registry.find "TRFD").source in
  let full = speedup (Core.Config.polaris ()) trfd in
  let no_gen = speedup (Core.Config.without_generalized_induction ()) trfd in
  Alcotest.(check bool) "TRFD needs generalized induction" true (full > no_gen);
  let ocean = (Suite.Registry.find "OCEAN").source in
  let fullo = speedup (Core.Config.polaris ()) ocean in
  let no_inline = speedup (Core.Config.without_inline ()) ocean in
  Alcotest.(check bool) "OCEAN needs inlining" true (fullo > no_inline)

let test_speculative_candidates_reported () =
  let c = Suite.Registry.find "WAVE5" in
  let t = Core.Pipeline.compile (Core.Config.polaris ()) c.source in
  Alcotest.(check bool) "WAVE5 has LRPD candidates" true
    (List.length (Core.Pipeline.speculative_candidates t) > 0)

let test_determinism_end_to_end () =
  let c = Suite.Registry.find "FLO52" in
  let _, r1 = Core.Simulate.compile_and_run (Core.Config.polaris ()) c.source in
  let _, r2 = Core.Simulate.compile_and_run (Core.Config.polaris ()) c.source in
  Alcotest.(check int) "same serial time" r1.serial_time r2.serial_time;
  Alcotest.(check int) "same parallel time" r1.parallel_time r2.parallel_time

let tests =
  [ ("pipeline loop counts", `Quick, test_pipeline_counts);
    ("annotated output reparses", `Quick, test_pipeline_output_source_parses);
    ("simulate consistency", `Quick, test_simulate_consistency);
    ("polaris ahead where expected", `Slow, test_polaris_beats_baseline_where_expected);
    ("baseline ahead on SU2COR/WAVE5", `Slow, test_baseline_wins_su2cor_wave5);
    ("ablations hurt where expected", `Slow, test_ablation_ordering);
    ("speculative candidates reported", `Quick, test_speculative_candidates_reported);
    ("end-to-end determinism", `Quick, test_determinism_end_to_end) ]
