(* Tests for the Fortran frontend: lexer, parser, unparser round trip. *)

open Fir
open Ast

let parse = Frontend.Parser.parse_string

let main_body src =
  let p = parse src in
  (Program.main p).pu_body

let wrap stmts = "      PROGRAM T\n" ^ stmts ^ "\n      END\n"

(* ----- lexer ----- *)

let test_lexer_tokens () =
  let open Frontend.Token in
  let lines = Frontend.Lexer.lines_of_string "      X = 1.5D0 + A(2) .AND. .TRUE.\n" in
  match lines with
  | [ l ] ->
    Alcotest.(check bool) "tokens" true
      (l.toks
      = [ ID "X"; EQUALS; FLOAT 1.5; PLUS; ID "A"; LPAR; INT 2; RPAR; AND; TRUE ])
  | _ -> Alcotest.fail "one line expected"

let test_lexer_dotted_vs_real () =
  let open Frontend.Token in
  let lines = Frontend.Lexer.lines_of_string "      X = 1.EQ.2\n" in
  (match lines with
  | [ l ] ->
    Alcotest.(check bool) "1.EQ.2" true (l.toks = [ ID "X"; EQUALS; INT 1; EQ; INT 2 ])
  | _ -> Alcotest.fail "one line");
  let lines = Frontend.Lexer.lines_of_string "      X = 1.25\n" in
  match lines with
  | [ l ] -> Alcotest.(check bool) "real" true (l.toks = [ ID "X"; EQUALS; FLOAT 1.25 ])
  | _ -> Alcotest.fail "one line"

let test_lexer_comments_continuation () =
  let src = "C comment line\n      X = 1 +\n     &    2\n      Y = 3 ! trailing\n" in
  let lines = Frontend.Lexer.lines_of_string src in
  Alcotest.(check int) "two logical lines" 2 (List.length lines)

let test_lexer_labels () =
  let lines = Frontend.Lexer.lines_of_string " 100  CONTINUE\n" in
  match lines with
  | [ l ] -> Alcotest.(check (option int)) "label" (Some 100) l.label
  | _ -> Alcotest.fail "one line"

(* ----- parser ----- *)

let test_parse_assign_kinds () =
  match main_body (wrap "      X = 1\n      A = 2") with
  | [ { kind = Assign (Var "X", Int_lit 1); _ };
      { kind = Assign (Var "A", Int_lit 2); _ } ] ->
    ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_array_vs_call () =
  let src =
    wrap "      REAL A(10)\n      A(3) = MOD(7, 2) + F(1)"
  in
  match main_body src with
  | [ { kind = Assign (Ref ("A", [ Int_lit 3 ]), rhs); _ } ] ->
    Alcotest.(check bool) "MOD is call" true
      (Expr.exists (function Fun_call ("MOD", _) -> true | _ -> false) rhs);
    Alcotest.(check bool) "F is call (undeclared)" true
      (Expr.exists (function Fun_call ("F", _) -> true | _ -> false) rhs)
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_do_variants () =
  let src =
    wrap
      "      DO 10 I = 1, 5\n\
       \        X = X + I\n\
       \ 10   CONTINUE\n\
       \      DO J = 1, 4, 2\n\
       \        X = X + J\n\
       \      END DO\n\
       \      DO WHILE (X .LT. 100)\n\
       \        X = X * 2\n\
       \      END DO"
  in
  match main_body src with
  | [ { kind = Do d1; _ }; { kind = Do d2; _ }; { kind = While _; _ } ] ->
    Alcotest.(check string) "labeled do index" "I" d1.index;
    Alcotest.(check int) "labeled body incl terminator" 2 (List.length d1.body);
    Alcotest.(check bool) "step" true (d2.step = Some (Int_lit 2))
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_if_forms () =
  let src =
    wrap
      "      IF (X .GT. 0) Y = 1\n\
       \      IF (X .GT. 1) THEN\n\
       \        Y = 2\n\
       \      ELSE IF (X .GT. 2) THEN\n\
       \        Y = 3\n\
       \      ELSE\n\
       \        Y = 4\n\
       \      END IF"
  in
  match main_body src with
  | [ { kind = If (_, [ _ ], []); _ }; { kind = If (_, _, [ { kind = If (_, _, [ _ ]); _ } ]); _ } ] ->
    ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_decls () =
  let src =
    "      PROGRAM T\n\
     \      INTEGER N\n\
     \      PARAMETER (N = 10)\n\
     \      DOUBLE PRECISION D(N, 0:N)\n\
     \      COMMON /BLK/ C1, C2\n\
     \      DIMENSION C1(5)\n\
     \      D(1, 0) = 1.0\n\
     \      END\n"
  in
  let p = parse src in
  let u = Program.main p in
  let d = Symtab.lookup u.pu_symtab "D" in
  Alcotest.(check int) "D rank 2" 2 (List.length d.sym_dims);
  Alcotest.(check bool) "D double" true (d.sym_type = Double_precision);
  let c1 = Symtab.lookup u.pu_symtab "C1" in
  Alcotest.(check (option string)) "common" (Some "BLK") c1.sym_common;
  Alcotest.(check bool) "param" true (Symtab.is_parameter u.pu_symtab "N")

let test_parse_units () =
  let src =
    "      PROGRAM M\n      CALL S(1)\n      END\n\
     \      SUBROUTINE S(K)\n      INTEGER K\n      RETURN\n      END\n\
     \      REAL FUNCTION F(X)\n      F = X + 1.0\n      END\n"
  in
  let p = parse src in
  Alcotest.(check int) "three units" 3 (List.length (Program.units p));
  let f = Option.get (Program.find_unit p "F") in
  Alcotest.(check bool) "function kind" true (f.pu_kind = Function Real)

let test_parse_operator_precedence () =
  match main_body (wrap "      X = 1 + 2 * 3 ** 2") with
  | [ { kind = Assign (_, rhs); _ } ] ->
    (* 1 + (2 * (3 ** 2)) *)
    Alcotest.(check bool) "precedence" true
      (rhs
      = Binary
          ( Add,
            Int_lit 1,
            Binary (Mul, Int_lit 2, Binary (Pow, Int_lit 3, Int_lit 2)) ))
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_logical_precedence () =
  match main_body (wrap "      L = A .LT. B .AND. C .GT. D .OR. E .EQ. F") with
  | [ { kind = Assign (_, Binary (Or, Binary (And, _, _), Binary (Eq, _, _))); _ } ] -> ()
  | _ -> Alcotest.fail "unexpected logical parse"

let test_parse_goto () =
  let src = wrap "      GOTO 10\n 10   CONTINUE\n      GO TO 10" in
  match main_body src with
  | [ { kind = Goto 10; _ }; { kind = Continue; label = Some 10; _ }; { kind = Goto 10; _ } ] ->
    ()
  | _ -> Alcotest.fail "unexpected goto parse"

let test_parse_errors () =
  let bad = [ wrap "      X = "; wrap "      DO I = 1"; wrap "      IF (X" ] in
  List.iter
    (fun src ->
      Alcotest.(check bool) "syntax error raised" true
        (match parse src with
        | _ -> false
        | exception (Frontend.Parser.Error _ | Frontend.Lexer.Error _) -> true))
    bad

(* ----- unparser round trip ----- *)

let roundtrip_ok src =
  let p1 = parse src in
  let out1 = Frontend.Unparse.program_to_string p1 in
  let p2 = parse out1 in
  let out2 = Frontend.Unparse.program_to_string p2 in
  String.equal out1 out2

let test_roundtrip_suite () =
  List.iter
    (fun (c : Suite.Code.t) ->
      Alcotest.(check bool) (c.name ^ " round trip") true (roundtrip_ok c.source))
    Suite.Registry.all

let test_roundtrip_semantics () =
  (* unparsed programs run identically *)
  List.iter
    (fun name ->
      let c = Suite.Registry.find name in
      let p1 = parse c.source in
      let r1 = Machine.Interp.run p1 in
      let p2 = parse (Frontend.Unparse.program_to_string p1) in
      let r2 = Machine.Interp.run p2 in
      Alcotest.(check (list string)) (name ^ " output") r1.output r2.output)
    [ "TRFD"; "BDNA"; "CLOUD3D"; "OCEAN" ]

let contains_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_directive_emission () =
  let src = wrap "      REAL A(10)\n      DO I = 1, 10\n        A(I) = 1.0\n      END DO" in
  let p = parse src in
  let _ = Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p in
  let out = Frontend.Unparse.program_to_string p in
  Alcotest.(check bool) "CPOLARIS$ directive present" true
    (contains_substring out "CPOLARIS$ DOALL")

let tests =
  [ ("lexer tokens", `Quick, test_lexer_tokens);
    ("lexer dotted op vs real", `Quick, test_lexer_dotted_vs_real);
    ("lexer comments and continuation", `Quick, test_lexer_comments_continuation);
    ("lexer labels", `Quick, test_lexer_labels);
    ("parse assignments", `Quick, test_parse_assign_kinds);
    ("parse array vs call", `Quick, test_parse_array_vs_call);
    ("parse DO variants", `Quick, test_parse_do_variants);
    ("parse IF forms", `Quick, test_parse_if_forms);
    ("parse declarations", `Quick, test_parse_decls);
    ("parse multiple units", `Quick, test_parse_units);
    ("parse arithmetic precedence", `Quick, test_parse_operator_precedence);
    ("parse logical precedence", `Quick, test_parse_logical_precedence);
    ("parse goto", `Quick, test_parse_goto);
    ("parse errors", `Quick, test_parse_errors);
    ("unparse fixpoint on suite", `Quick, test_roundtrip_suite);
    ("unparse preserves semantics", `Quick, test_roundtrip_semantics);
    ("unparse emits directives", `Quick, test_directive_emission) ]
