(* The compile daemon: wire protocol, persistent store (integrity +
   eviction), per-file error containment of serve sessions, and the
   daemon end to end over a real unix socket — including the graceful
   SIGTERM drain. *)

let smoke_source =
  "      PROGRAM SMOKE\n\
   \      INTEGER I, N\n\
   \      PARAMETER (N = 16)\n\
   \      REAL A(16), B(16)\n\
   \      DO I = 1, N\n\
   \        A(I) = I * 2.0\n\
   \      ENDDO\n\
   \      DO I = 1, N\n\
   \        B(I) = A(I) + 1.0\n\
   \      ENDDO\n\
   \      PRINT *, B(1)\n\
   \      END\n"

let tmp_name base =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "polaris-test-%d-%s" (Unix.getpid ()) base)

let rm_rf_dir dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Unix.rmdir dir
  end

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)

let roundtrip_request r =
  Serve.Protocol.decode_request (Serve.Protocol.encode_request r)

let roundtrip_response r =
  Serve.Protocol.decode_response (Serve.Protocol.encode_response r)

let test_protocol_request_roundtrip () =
  let reqs =
    [ Serve.Protocol.Compile
        { cr_label = "a.f"; cr_source = smoke_source; cr_check = true;
          cr_baseline = false; cr_pipeline = "fast"; cr_backend = "f77-omp" };
      Serve.Protocol.Compile
        { cr_label = ""; cr_source = ""; cr_check = false; cr_baseline = true;
          cr_pipeline = ""; cr_backend = "" };
      Serve.Protocol.Stats; Serve.Protocol.Ping; Serve.Protocol.Shutdown ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "request round-trips" true (roundtrip_request r = r))
    reqs

let test_protocol_response_roundtrip () =
  let resps =
    [ Serve.Protocol.Compiled
        { co_label = "a.f"; co_output = "      END\n";
          co_verdicts = [ "MAIN DO I PARALLEL -- x"; "MAIN DO J serial -- y" ];
          co_incidents = 2; co_reuse_rate = 0.875; co_shared_hits = 13;
          co_shared_lookups = 21; co_wall_ms = 1.25;
          co_check_divergences = [ "output differs" ] };
      Serve.Protocol.Stats_reply "{\"requests\":3}";
      Serve.Protocol.Error_r "nope"; Serve.Protocol.Rejected "bad frame";
      Serve.Protocol.Busy; Serve.Protocol.Pong; Serve.Protocol.Bye ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "response round-trips" true
        (roundtrip_response r = r))
    resps

let test_protocol_rejects_malformed () =
  let malformed f = match f () with
    | exception Serve.Protocol.Malformed _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unknown request tag" true
    (malformed (fun () -> Serve.Protocol.decode_request "Zjunk"));
  Alcotest.(check bool) "empty request" true
    (malformed (fun () -> Serve.Protocol.decode_request ""));
  Alcotest.(check bool) "truncated compile payload" true
    (malformed (fun () -> Serve.Protocol.decode_request "C\000\000\000\005ab"));
  (* a valid payload with trailing garbage must not be silently accepted *)
  let valid = Serve.Protocol.encode_request Serve.Protocol.Stats in
  Alcotest.(check bool) "trailing bytes" true
    (malformed (fun () -> Serve.Protocol.decode_request (valid ^ "x")));
  (* an oversized frame length must be refused before allocation *)
  let buf = Buffer.create 8 in
  Buffer.add_string buf "\255\255\255\255rest";
  Alcotest.(check bool) "oversized frame length" true
    (malformed (fun () -> Serve.Protocol.peel buf))

(* the FNV-1a frame checksum: any single corrupted byte anywhere in a
   frame must be detected before the payload is decoded *)
let test_protocol_checksum_detects_flips () =
  let payload = Serve.Protocol.encode_request Serve.Protocol.Stats in
  let wire = Serve.Protocol.frame payload in
  for pos = 0 to String.length wire - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string wire in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      let buf = Buffer.create 64 in
      Buffer.add_bytes buf b;
      (* acceptable: checksum mismatch (Malformed) or a flipped length
         making the frame look incomplete (None).  Never a payload. *)
      match Serve.Protocol.peel buf with
      | Some _ ->
        Alcotest.fail
          (Printf.sprintf "flip at byte %d bit %d passed the checksum" pos bit)
      | None | (exception Serve.Protocol.Malformed _) -> ()
    done
  done;
  (* the clean frame still peels *)
  let buf = Buffer.create 64 in
  Buffer.add_string buf wire;
  Alcotest.(check bool) "clean frame peels" true
    (Serve.Protocol.peel buf = Some payload)

let test_protocol_peel_reassembles () =
  let p1 = Serve.Protocol.encode_request Serve.Protocol.Stats in
  let p2 =
    Serve.Protocol.encode_request
      (Serve.Protocol.Compile
         { cr_label = "x"; cr_source = "y"; cr_check = false;
           cr_baseline = false; cr_pipeline = ""; cr_backend = "" })
  in
  let wire = Serve.Protocol.frame p1 ^ Serve.Protocol.frame p2 in
  let buf = Buffer.create 64 in
  (* drip the bytes in: no frame until its last byte arrives, then both
     frames peel in order from the same buffer *)
  let got = ref [] in
  String.iter
    (fun ch ->
      Buffer.add_char buf ch;
      match Serve.Protocol.peel buf with
      | Some payload -> got := payload :: !got
      | None -> ())
    wire;
  Alcotest.(check int) "two frames" 2 (List.length !got);
  Alcotest.(check bool) "payloads in order" true (List.rev !got = [ p1; p2 ])

(* ------------------------------------------------------------------ *)
(* Persistent store                                                    *)

let test_store_roundtrip () =
  let dir = tmp_name "store-rt" in
  rm_rf_dir dir;
  let s = Serve.Store.open_store ~dir ~max_bytes:(1 lsl 20) () in
  Serve.Store.insert s ~name:"c1" ~key:"k1" ~data:"v1";
  Serve.Store.insert s ~name:"c1" ~key:"k2" ~data:"v2";
  Serve.Store.insert s ~name:"c2" ~key:"k1" ~data:"other";
  Alcotest.(check (option string)) "hit" (Some "v1")
    (Serve.Store.lookup s ~name:"c1" ~key:"k1");
  Alcotest.(check (option string)) "names are namespaces" (Some "other")
    (Serve.Store.lookup s ~name:"c2" ~key:"k1");
  Alcotest.(check (option string)) "miss" None
    (Serve.Store.lookup s ~name:"c1" ~key:"nope");
  Serve.Store.flush s;
  (* a different handle on the same directory sees everything *)
  let s2 = Serve.Store.open_store ~dir ~max_bytes:(1 lsl 20) () in
  Alcotest.(check int) "all entries reloaded" 3 (Serve.Store.entry_count s2);
  Alcotest.(check (option string)) "persisted across open" (Some "v2")
    (Serve.Store.lookup s2 ~name:"c1" ~key:"k2");
  rm_rf_dir dir

let flip_byte path pos =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.of_string (really_input_string ic n) in
  close_in ic;
  let pos = if pos < 0 then n + pos else pos in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_store_drops_corruption () =
  let dir = tmp_name "store-corrupt" in
  rm_rf_dir dir;
  let s = Serve.Store.open_store ~dir ~max_bytes:(1 lsl 20) () in
  for i = 1 to 10 do
    Serve.Store.insert s ~name:"c" ~key:(Printf.sprintf "k%d" i)
      ~data:(String.make 32 'x')
  done;
  Serve.Store.flush s;
  let path = Filename.concat dir "analysis.store" in
  (* garble the last entry's digest: that entry is dropped, the rest
     load fine *)
  flip_byte path (-1);
  let s2 = Serve.Store.open_store ~dir ~max_bytes:(1 lsl 20) () in
  Alcotest.(check int) "one entry dropped" 9 (Serve.Store.entry_count s2);
  (* truncate mid-entry: framing breaks, the tail is abandoned, the
     store still opens *)
  Serve.Store.flush s;
  let n = (Unix.stat path).st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (n - 10);
  Unix.close fd;
  let s3 = Serve.Store.open_store ~dir ~max_bytes:(1 lsl 20) () in
  Alcotest.(check bool) "truncated tail dropped, rest kept" true
    (Serve.Store.entry_count s3 < 10 && Serve.Store.entry_count s3 >= 1);
  (* corrupt the header: nothing written by "another binary" may be
     trusted — the whole file is discarded *)
  Serve.Store.flush s;
  flip_byte path 3;
  let s4 = Serve.Store.open_store ~dir ~max_bytes:(1 lsl 20) () in
  Alcotest.(check int) "corrupt header discards everything" 0
    (Serve.Store.entry_count s4);
  rm_rf_dir dir

(* end to end: a compile backed by a corrupted store must silently
   recompute the dropped facts and produce byte-identical output *)
let test_store_corruption_is_invisible () =
  let dir = tmp_name "store-invisible" in
  rm_rf_dir dir;
  let cfg = Core.Config.polaris ~procs:8 () in
  Util.Cachectl.clear_all ();
  let s = Serve.Store.open_store ~dir ~max_bytes:(1 lsl 20) () in
  let prev = Serve.Store.install s in
  let c1 = Serve.Local.compile_source cfg smoke_source in
  Serve.Store.flush s;
  Serve.Store.uninstall prev;
  (* flip bytes across the file: some entries survive, some don't *)
  let path = Filename.concat dir "analysis.store" in
  let size = (Unix.stat path).st_size in
  List.iter
    (fun frac -> flip_byte path (size * frac / 10))
    [ 4; 6; 8 ];
  Util.Cachectl.clear_all ();
  let s2 = Serve.Store.open_store ~dir ~max_bytes:(1 lsl 20) () in
  let prev2 = Serve.Store.install s2 in
  let c2 = Serve.Local.compile_source cfg smoke_source in
  Serve.Store.uninstall prev2;
  Util.Cachectl.clear_all ();
  let scratch = Core.Incremental.scratch cfg smoke_source in
  Alcotest.(check string) "store-backed output = scratch output"
    scratch.outcome.oc_output c2.lc_result.outcome.oc_output;
  Alcotest.(check string) "pre-corruption output agrees too"
    scratch.outcome.oc_output c1.lc_result.outcome.oc_output;
  Alcotest.(check bool) "verdicts identical" true
    (c1.lc_verdicts = c2.lc_verdicts
    && c2.lc_verdicts = Serve.Local.render_verdicts scratch.outcome);
  rm_rf_dir dir

let test_store_evicts_lru () =
  let dir = tmp_name "store-evict" in
  rm_rf_dir dir;
  (* a bound small enough that 50 ~72-byte entries cannot all fit *)
  let max_bytes = 1024 in
  let s = Serve.Store.open_store ~dir ~max_bytes () in
  for i = 1 to 50 do
    Serve.Store.insert s ~name:"c" ~key:(Printf.sprintf "key-%02d" i)
      ~data:(String.make 24 'd');
    (* keep key-01 hot: recency must protect it from eviction *)
    ignore (Serve.Store.lookup s ~name:"c" ~key:"key-01")
  done;
  Alcotest.(check bool) "evicted under the bound" true
    (Serve.Store.entry_count s < 50);
  Alcotest.(check (option string)) "hot entry survived LRU"
    (Some (String.make 24 'd'))
    (Serve.Store.lookup s ~name:"c" ~key:"key-01");
  Serve.Store.flush s;
  let size = (Unix.stat (Filename.concat dir "analysis.store")).st_size in
  Alcotest.(check bool) "flushed file respects the bound" true
    (size <= max_bytes + 64);
  let s2 = Serve.Store.open_store ~dir ~max_bytes () in
  Alcotest.(check bool) "reload stays bounded" true
    (Serve.Store.entry_count s2 <= Serve.Store.entry_count s);
  rm_rf_dir dir

(* ------------------------------------------------------------------ *)
(* Per-file error containment (the `polaris serve` discipline)         *)

let test_local_compile_path_contains_errors () =
  let cfg = Core.Config.polaris ~procs:8 () in
  (* unreadable path: an Error, not an exception *)
  (match Serve.Local.compile_path cfg "/nonexistent/nope.f" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unreadable path must be a per-file error");
  (* unparseable source: an Error naming the file *)
  let bad = tmp_name "bad.f" in
  let oc = open_out bad in
  output_string oc "      THIS IS NOT FORTRAN(\n";
  close_out oc;
  (match Serve.Local.compile_path cfg bad with
  | Error m ->
    Alcotest.(check bool) "error names the file" true
      (String.length m >= String.length bad
      && String.sub m 0 (String.length bad) = bad)
  | Ok _ -> Alcotest.fail "unparseable source must be a per-file error");
  Sys.remove bad;
  (* a good file still compiles *)
  let good = tmp_name "good.f" in
  let oc = open_out good in
  output_string oc smoke_source;
  close_out oc;
  (match Serve.Local.compile_path cfg good with
  | Ok c ->
    Alcotest.(check bool) "compile produced verdicts" true
      (c.lc_verdicts <> [])
  | Error m -> Alcotest.fail ("good file failed: " ^ m));
  Sys.remove good

(* ------------------------------------------------------------------ *)
(* Daemon end to end                                                   *)

let start_daemon ?(signals = false) ?(tweak = fun c -> c) ~socket ~store_dir
    () =
  let stop = Atomic.make false in
  let ready = Atomic.make false in
  let cfg =
    tweak
      { (Serve.Daemon.default_cfg ()) with
        d_socket = socket;
        d_store_dir = store_dir;
        d_poll_s = 0.02 }
  in
  let d =
    Domain.spawn (fun () ->
        Serve.Daemon.run ~signals ~stop
          ~on_ready:(fun () -> Atomic.set ready true)
          cfg)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  (d, stop)

let test_daemon_end_to_end () =
  let socket = tmp_name "e2e.sock" in
  let store_dir = tmp_name "e2e-store" in
  rm_rf_dir store_dir;
  Util.Cachectl.clear_all ();
  let d, _stop = start_daemon ~socket ~store_dir:(Some store_dir) () in
  (match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok c ->
    (match Serve.Client.compile_source c ~check:true ~label:"smoke" smoke_source with
    | Ok r ->
      Alcotest.(check int) "two loop verdicts" 2 (List.length r.co_verdicts);
      Alcotest.(check bool) "server-side check passes" true
        (r.co_check_divergences = []);
      Alcotest.(check bool) "output is annotated Fortran" true
        (String.length r.co_output > 0)
    | Error m -> Alcotest.fail ("compile: " ^ m));
    (match Serve.Client.stats c with
    | Ok json ->
      Alcotest.(check bool) "stats is a JSON object with requests" true
        (String.length json > 2 && json.[0] = '{')
    | Error m -> Alcotest.fail ("stats: " ^ m));
    (match Serve.Client.shutdown c with
    | Ok () -> ()
    | Error m -> Alcotest.fail ("shutdown: " ^ m));
    Serve.Client.close c);
  let report = Domain.join d in
  Alcotest.(check bool) "graceful" true report.Serve.Daemon.r_graceful;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists socket);
  Alcotest.(check bool) "store flushed to disk" true
    (Sys.file_exists (Filename.concat store_dir "analysis.store"));
  rm_rf_dir store_dir;
  Util.Cachectl.clear_all ()

let test_daemon_contains_malformed_session () =
  let socket = tmp_name "malformed.sock" in
  Util.Cachectl.clear_all ();
  let d, stop = start_daemon ~socket ~store_dir:None () in
  (* session 1 speaks garbage: it gets an error and is closed alone *)
  (match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok c ->
    Serve.Protocol.send c.Serve.Client.fd "Zjunk";
    (match Serve.Client.recv c with
    | Ok (Serve.Protocol.Rejected _) -> ()
    | Ok _ -> Alcotest.fail "expected Rejected for a malformed request"
    | Error m -> Alcotest.fail ("recv: " ^ m));
    (* the daemon closed this session after the protocol violation *)
    (match Serve.Client.recv c with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "session must be closed after a violation");
    Serve.Client.close c);
  (* the server itself is unharmed: a fresh session compiles fine *)
  (match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok c ->
    (match Serve.Client.compile_source c ~label:"after" smoke_source with
    | Ok r -> Alcotest.(check int) "still serving" 2 (List.length r.co_verdicts)
    | Error m -> Alcotest.fail ("compile after violation: " ^ m));
    Serve.Client.close c);
  Atomic.set stop true;
  let report = Domain.join d in
  Alcotest.(check bool) "graceful stop" true report.Serve.Daemon.r_graceful;
  Util.Cachectl.clear_all ()

let test_daemon_sigterm_drains () =
  let socket = tmp_name "sigterm.sock" in
  let store_dir = tmp_name "sigterm-store" in
  rm_rf_dir store_dir;
  Util.Cachectl.clear_all ();
  let d, _stop = start_daemon ~signals:true ~socket ~store_dir:(Some store_dir) () in
  match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok c ->
    (* an active session... *)
    (match Serve.Client.compile_source c ~label:"one" smoke_source with
    | Ok _ -> ()
    | Error m -> Alcotest.fail ("compile: " ^ m));
    (* ...with two more requests already in flight when the signal hits *)
    Serve.Client.send c
      (Serve.Protocol.Compile
         { cr_label = "two"; cr_source = smoke_source; cr_check = false;
           cr_baseline = false;
                 cr_pipeline = ""; cr_backend = "" });
    Serve.Client.send c
      (Serve.Protocol.Compile
         { cr_label = "three"; cr_source = smoke_source; cr_check = false;
           cr_baseline = false;
                 cr_pipeline = ""; cr_backend = "" });
    Unix.kill (Unix.getpid ()) Sys.sigterm;
    let report = Domain.join d in
    Alcotest.(check bool) "graceful under SIGTERM" true
      report.Serve.Daemon.r_graceful;
    (* both in-flight requests were drained and answered *)
    (match Serve.Client.recv c with
    | Ok (Serve.Protocol.Compiled r) ->
      Alcotest.(check string) "in-flight request two answered" "two" r.co_label
    | Ok _ | Error _ -> Alcotest.fail "request two was not drained");
    (match Serve.Client.recv c with
    | Ok (Serve.Protocol.Compiled r) ->
      Alcotest.(check string) "in-flight request three answered" "three"
        r.co_label
    | Ok _ | Error _ -> Alcotest.fail "request three was not drained");
    Serve.Client.close c;
    Alcotest.(check int) "all three requests served" 3
      report.Serve.Daemon.r_requests;
    Alcotest.(check bool) "store flushed on the way down" true
      (Sys.file_exists (Filename.concat store_dir "analysis.store"));
    Alcotest.(check bool) "socket removed" false (Sys.file_exists socket);
    rm_rf_dir store_dir;
    Util.Cachectl.clear_all ()

(* facts proved by one session must be served to the next from the
   persistent store: restart the daemon on the same store directory and
   require a majority of shared-cache lookups to hit *)
let test_daemon_store_warms_next_daemon () =
  let socket = tmp_name "warm.sock" in
  let store_dir = tmp_name "warm-store" in
  rm_rf_dir store_dir;
  Util.Cachectl.clear_all ();
  let d1, stop1 = start_daemon ~socket ~store_dir:(Some store_dir) () in
  (match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok c ->
    (match Serve.Client.compile_source c ~label:"cold" smoke_source with
    | Ok _ -> ()
    | Error m -> Alcotest.fail m);
    Serve.Client.close c);
  Atomic.set stop1 true;
  ignore (Domain.join d1);
  (* simulate a fresh daemon process: in-memory tables gone, disk kept *)
  Util.Cachectl.clear_all ();
  let d2, stop2 = start_daemon ~socket ~store_dir:(Some store_dir) () in
  (match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok c ->
    (match Serve.Client.compile_source c ~label:"warm" smoke_source with
    | Ok r ->
      Alcotest.(check bool) "warm compile hits the persisted store" true
        (r.co_shared_lookups > 0
        && float_of_int r.co_shared_hits
           >= 0.5 *. float_of_int r.co_shared_lookups)
    | Error m -> Alcotest.fail m);
    Serve.Client.close c);
  Atomic.set stop2 true;
  ignore (Domain.join d2);
  rm_rf_dir store_dir;
  Util.Cachectl.clear_all ()

(* ------------------------------------------------------------------ *)
(* Overload protection                                                 *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let count_occurrences hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else go (i + 1) (if String.sub hay i nn = needle then acc + 1 else acc)
  in
  if nn = 0 then 0 else go 0 0

let rec wait_for ~deadline f =
  f ()
  || Unix.gettimeofday () < deadline
     && begin
          Unix.sleepf 0.05;
          wait_for ~deadline f
        end

(* the head-of-line pin: a session that sends one byte of a frame and
   stalls forever must not delay anyone else beyond the poll interval *)
let test_daemon_stalled_client_no_hol () =
  let socket = tmp_name "stall.sock" in
  Util.Cachectl.clear_all ();
  let d, stop = start_daemon ~socket ~store_dir:None () in
  (match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok a ->
    ignore (Unix.write_substring a.Serve.Client.fd "\000" 0 1);
    (* warm the caches once so the timed compile measures the server
       loop, not a cold analysis *)
    (match Serve.Client.connect socket with
    | Error m -> Alcotest.fail m
    | Ok w ->
      (match Serve.Client.compile_source w ~label:"warmup" smoke_source with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m);
      Serve.Client.close w);
    (match Serve.Client.connect socket with
    | Error m -> Alcotest.fail m
    | Ok b ->
      let t0 = Unix.gettimeofday () in
      (match Serve.Client.compile_source b ~label:"b" smoke_source with
      | Ok r ->
        Alcotest.(check int) "B compiled behind the stall" 2
          (List.length r.co_verdicts)
      | Error m -> Alcotest.fail m);
      let dt = Unix.gettimeofday () -. t0 in
      (* generous pin: the 20ms poll plus a warm compile is well under
         a second; blocking on the stalled reader would hang forever *)
      Alcotest.(check bool)
        (Printf.sprintf "no head-of-line blocking (%.0f ms)" (1000.0 *. dt))
        true (dt < 2.0);
      Serve.Client.close b);
    Serve.Client.close a);
  Atomic.set stop true;
  let report = Domain.join d in
  Alcotest.(check bool) "graceful" true report.Serve.Daemon.r_graceful;
  Util.Cachectl.clear_all ()

(* a client that pipelines hundreds of compiles and never reads a byte
   must be evicted when its bounded write queue overflows — not hold
   its response bytes forever *)
let test_daemon_evicts_slow_reader () =
  let socket = tmp_name "slowreader.sock" in
  Util.Cachectl.clear_all ();
  let d, stop =
    start_daemon ~socket ~store_dir:None
      ~tweak:(fun c ->
        { c with
          Serve.Daemon.d_max_wbuf = 8 * 1024;
          d_sndbuf = Some 4096;
          d_max_pipeline = 8 })
      ()
  in
  (match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok c ->
    (try
       for i = 1 to 400 do
         Serve.Client.send c
           (Serve.Protocol.Compile
              { cr_label = Printf.sprintf "r%d" i; cr_source = smoke_source;
                cr_check = false; cr_baseline = false;
                 cr_pipeline = ""; cr_backend = "" })
       done
     with Unix.Unix_error _ | Serve.Protocol.Malformed _ ->
       (* the daemon evicted us mid-send: exactly the point *)
       ());
    (* observe the eviction from a second session's stats *)
    let evicted () =
      match Serve.Client.connect socket with
      | Error _ -> false
      | Ok s ->
        Fun.protect ~finally:(fun () -> Serve.Client.close s) @@ fun () ->
        (match Serve.Client.stats s with
        | Ok json ->
          contains json "\"evicted_slow\":"
          && not (contains json "\"evicted_slow\":0,")
        | Error _ -> false)
    in
    Alcotest.(check bool) "slow reader evicted" true
      (wait_for ~deadline:(Unix.gettimeofday () +. 30.0) evicted);
    Serve.Client.close c);
  Atomic.set stop true;
  let report = Domain.join d in
  Alcotest.(check bool) "eviction counted" true
    (report.Serve.Daemon.r_evicted_slow >= 1);
  Alcotest.(check bool) "pending bytes were bounded and observed" true
    (report.Serve.Daemon.r_max_pending > 0);
  Util.Cachectl.clear_all ()

(* at the admission cap a new connection gets one Busy frame and is
   closed; once a session leaves, admission resumes *)
let test_daemon_sheds_at_session_cap () =
  let socket = tmp_name "busy.sock" in
  Util.Cachectl.clear_all ();
  let d, stop =
    start_daemon ~socket ~store_dir:None
      ~tweak:(fun c -> { c with Serve.Daemon.d_max_sessions = 1 })
      ()
  in
  (match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok a ->
    (* the ping guarantees A is accepted and counted before B arrives *)
    (match Serve.Client.ping a with
    | Ok () -> ()
    | Error m -> Alcotest.fail ("ping: " ^ m));
    (match Serve.Client.connect socket with
    | Error m -> Alcotest.fail m
    | Ok b ->
      (match Serve.Client.recv b with
      | Ok Serve.Protocol.Busy -> ()
      | Ok _ -> Alcotest.fail "expected Busy at the session cap"
      | Error m -> Alcotest.fail ("recv: " ^ m));
      (* nothing follows the shed: the connection is closed *)
      (match Serve.Client.recv b with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "shed connection must be closed");
      Serve.Client.close b);
    Serve.Client.close a;
    (* with A gone, a new session is admitted again (the daemon notices
       the close on its next poll) *)
    let admitted () =
      match Serve.Client.connect socket with
      | Error _ -> false
      | Ok c ->
        Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
        Serve.Client.ping c = Ok ()
    in
    Alcotest.(check bool) "admission resumes after A leaves" true
      (wait_for ~deadline:(Unix.gettimeofday () +. 10.0) admitted));
  Atomic.set stop true;
  let report = Domain.join d in
  Alcotest.(check bool) "shed counted" true (report.Serve.Daemon.r_shed >= 1);
  Util.Cachectl.clear_all ()

let test_daemon_idle_timeout () =
  let socket = tmp_name "idle.sock" in
  Util.Cachectl.clear_all ();
  let d, stop =
    start_daemon ~socket ~store_dir:None
      ~tweak:(fun c -> { c with Serve.Daemon.d_idle_timeout_s = 0.15 })
      ()
  in
  (match Serve.Client.connect ~deadline_s:10.0 socket with
  | Error m -> Alcotest.fail m
  | Ok c ->
    (match Serve.Client.ping c with
    | Ok () -> ()
    | Error m -> Alcotest.fail ("ping: " ^ m));
    (* go quiet past the timeout: the daemon must hang up on us *)
    (match Serve.Client.recv c with
    | Error _ -> ()  (* EOF: evicted *)
    | Ok _ -> Alcotest.fail "idle session got an unsolicited response");
    Serve.Client.close c);
  Atomic.set stop true;
  let report = Domain.join d in
  Alcotest.(check bool) "idle eviction counted" true
    (report.Serve.Daemon.r_evicted_idle >= 1);
  Util.Cachectl.clear_all ()

(* ------------------------------------------------------------------ *)
(* Single-instance discipline and crash recovery                       *)

let test_daemon_pidfile_single_instance () =
  let socket = tmp_name "pidfile.sock" in
  Util.Cachectl.clear_all ();
  let d, stop = start_daemon ~socket ~store_dir:None () in
  (* a second daemon must refuse to stomp the live one's socket *)
  (match
     Serve.Daemon.run { (Serve.Daemon.default_cfg ()) with d_socket = socket }
   with
  | _ -> Alcotest.fail "second daemon must refuse a live socket"
  | exception Serve.Daemon.Already_running (pid, s) ->
    Alcotest.(check int) "pid names the owner" (Unix.getpid ()) pid;
    Alcotest.(check string) "socket named" socket s);
  Atomic.set stop true;
  ignore (Domain.join d);
  Alcotest.(check bool) "pidfile removed on clean exit" false
    (Sys.file_exists (socket ^ ".pid"));
  (* a stale pidfile — the SIGKILL leftover — must be recovered, not
     refused *)
  let oc = open_out (socket ^ ".pid") in
  output_string oc "4194303\n";
  close_out oc;
  Alcotest.(check bool) "dead pid probes stale" true
    (match Serve.Daemon.probe ~socket with
    | Serve.Daemon.Stale _ -> true
    | _ -> false);
  let d2, stop2 = start_daemon ~socket ~store_dir:None () in
  (match Serve.Daemon.probe ~socket with
  | Serve.Daemon.Live pid ->
    Alcotest.(check int) "recovered and live" (Unix.getpid ()) pid
  | _ -> Alcotest.fail "expected a live pidfile after recovery");
  Atomic.set stop2 true;
  ignore (Domain.join d2);
  Util.Cachectl.clear_all ()

(* the --log file must be appended across daemon lifetimes, and every
   startup must emit a restart event carrying the recovered entry count *)
let test_daemon_log_appends_restart_event () =
  let socket = tmp_name "logappend.sock" in
  let store_dir = tmp_name "logappend-store" in
  let log = tmp_name "logappend.jsonl" in
  rm_rf_dir store_dir;
  if Sys.file_exists log then Sys.remove log;
  Util.Cachectl.clear_all ();
  let tweak c = { c with Serve.Daemon.d_log = Some log } in
  let d1, stop1 = start_daemon ~tweak ~socket ~store_dir:(Some store_dir) () in
  (match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok c ->
    (match Serve.Client.compile_source c ~label:"first" smoke_source with
    | Ok _ -> ()
    | Error m -> Alcotest.fail m);
    Serve.Client.close c);
  Atomic.set stop1 true;
  ignore (Domain.join d1);
  (* second lifetime on the same store and the same log *)
  Util.Cachectl.clear_all ();
  let d2, stop2 = start_daemon ~tweak ~socket ~store_dir:(Some store_dir) () in
  Atomic.set stop2 true;
  ignore (Domain.join d2);
  let ic = open_in log in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check int) "two restart events (append, not truncate)" 2
    (count_occurrences text "\"event\":\"restart\"");
  Alcotest.(check int) "both lifetimes logged listening" 2
    (count_occurrences text "\"event\":\"listening\"");
  (* the second restart recovered the first lifetime's flushed facts *)
  let after_second =
    let needle = "\"event\":\"restart\"" in
    let nn = String.length needle in
    let last = ref 0 in
    for i = 0 to String.length text - nn do
      if String.sub text i nn = needle then last := i
    done;
    String.sub text !last (String.length text - !last)
  in
  Alcotest.(check bool) "second restart recovered entries" true
    (contains after_second "\"recovered_entries\":"
    && not (contains after_second "\"recovered_entries\":0,"));
  Sys.remove log;
  rm_rf_dir store_dir;
  Util.Cachectl.clear_all ()

(* SIGKILL mid-run: spawn the real binary, kill -9 it, restart it on
   the same store.  With --flush-every 1 the store is flushed before
   every reply, so everything a client saw answered survives; the
   restarted daemon must serve warm hits from an integrity-clean store.
   (A subprocess, not a fork: the OCaml 5 runtime with live worker
   domains cannot safely fork, and the store trusts only files written
   by the same executable.) *)
let polaris_exe = "../bin/polaris_cli.exe"

let spawn_daemon_proc ~socket ~store_dir extra =
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let argv =
    Array.of_list
      ([ polaris_exe; "daemon"; "--socket"; socket; "--store"; store_dir;
         "-j"; "1" ]
      @ extra)
  in
  let pid = Unix.create_process polaris_exe argv null null null in
  Unix.close null;
  pid

let test_daemon_sigkill_recovery () =
  let socket = tmp_name "sigkill.sock" in
  let store_dir = tmp_name "sigkill-store" in
  rm_rf_dir store_dir;
  (if Sys.file_exists socket then Sys.remove socket);
  (if Sys.file_exists (socket ^ ".pid") then Sys.remove (socket ^ ".pid"));
  let pid1 = spawn_daemon_proc ~socket ~store_dir [ "--flush-every"; "1" ] in
  (match Serve.Client.connect ~wait_s:30.0 socket with
  | Error m -> Alcotest.fail m
  | Ok c ->
    (match Serve.Client.compile_source c ~label:"one" smoke_source with
    | Ok r -> Alcotest.(check int) "compiled before the crash" 2
                (List.length r.co_verdicts)
    | Error m -> Alcotest.fail m);
    Serve.Client.close c);
  (* the reply above is proof its facts were flushed (--flush-every 1
     flushes before the response is queued).  Now crash hard. *)
  Unix.kill pid1 Sys.sigkill;
  ignore (Unix.waitpid [] pid1);
  Alcotest.(check bool) "pidfile left behind by SIGKILL" true
    (Sys.file_exists (socket ^ ".pid"));
  Alcotest.(check bool) "store file survived" true
    (Sys.file_exists (Filename.concat store_dir "analysis.store"));
  (* restart on the same socket and store: the stale pidfile and socket
     are recovered, the store loads clean, and the compile is warm *)
  let pid2 = spawn_daemon_proc ~socket ~store_dir [] in
  (match Serve.Client.connect ~wait_s:30.0 socket with
  | Error m -> Alcotest.fail m
  | Ok c ->
    (match Serve.Client.compile_source c ~label:"warm" smoke_source with
    | Ok r ->
      Alcotest.(check bool) "restarted daemon serves warm hits" true
        (r.co_shared_lookups > 0
        && float_of_int r.co_shared_hits
           >= 0.5 *. float_of_int r.co_shared_lookups)
    | Error m -> Alcotest.fail m);
    (match Serve.Client.stats c with
    | Ok json ->
      Alcotest.(check bool) "recovered store passed every integrity check"
        true
        (contains json "\"corrupt_dropped\":0")
    | Error m -> Alcotest.fail ("stats: " ^ m));
    (match Serve.Client.shutdown c with
    | Ok () -> ()
    | Error m -> Alcotest.fail ("shutdown: " ^ m));
    Serve.Client.close c);
  ignore (Unix.waitpid [] pid2);
  rm_rf_dir store_dir

(* ------------------------------------------------------------------ *)
(* Concurrent dispatch (--max-inflight > 1)                            *)

(* a distinct program per request, so a cross-wired response would be
   caught by both the label and the compiled output *)
let inflight_src tag =
  let n = 8 + (tag mod 5) in
  Printf.sprintf
    "      PROGRAM P%d\n\
     \      INTEGER I\n\
     \      REAL A(%d), B(%d)\n\
     \      DO I = 1, %d\n\
     \        A(I) = I * %d.0\n\
     \      ENDDO\n\
     \      DO I = 1, %d\n\
     \        B(I) = A(I) + 1.0\n\
     \      ENDDO\n\
     \      PRINT *, B(1)\n\
     \      END\n"
    tag n n n (1 + tag) n

(* run one daemon lifetime at the given inflight bound; [consume] runs
   against it and returns per-session reply lists *)
let with_inflight_daemon ~socket ~max_inflight consume =
  Util.Cachectl.clear_all ();
  let d, stop =
    start_daemon ~socket ~store_dir:None
      ~tweak:(fun c -> { c with Serve.Daemon.d_max_inflight = max_inflight })
      ()
  in
  let r = consume () in
  Atomic.set stop true;
  let report = Domain.join d in
  Util.Cachectl.clear_all ();
  (r, report)

let test_daemon_concurrent_dispatch () =
  let socket = tmp_name "inflight.sock" in
  let nsessions = 3 and nreqs = 4 in
  let label s i = Printf.sprintf "s%d-r%d" s i in
  (* every session pipelines all its requests up front, so with
     --max-inflight 4 compiles from different sessions genuinely
     overlap; replies are then read back one session at a time *)
  let drive () =
    let conns =
      List.init nsessions (fun s ->
          match Serve.Client.connect socket with
          | Ok c -> (s, c)
          | Error m -> Alcotest.fail m)
    in
    List.iter
      (fun (s, c) ->
        for i = 0 to nreqs - 1 do
          Serve.Client.send c
            (Serve.Protocol.Compile
               { cr_label = label s i;
                 cr_source = inflight_src ((s * nreqs) + i);
                 cr_check = false; cr_baseline = false;
                 cr_pipeline = ""; cr_backend = "" })
        done;
        (* one server-side --check ride-along per session: the barrier
           must serialize around the in-flight compiles and diverge on
           nothing *)
        Serve.Client.send c
          (Serve.Protocol.Compile
             { cr_label = label s nreqs;
               cr_source = inflight_src ((s * nreqs) + 1);
               cr_check = true; cr_baseline = false;
                 cr_pipeline = ""; cr_backend = "" }))
      conns;
    let replies =
      List.map
        (fun (s, c) ->
          let rs =
            List.init (nreqs + 1) (fun _ ->
                match Serve.Client.recv c with
                | Ok (Serve.Protocol.Compiled r) -> r
                | Ok _ -> Alcotest.fail "expected a Compiled response"
                | Error m -> Alcotest.fail ("recv: " ^ m))
          in
          Serve.Client.close c;
          (s, rs))
        conns
    in
    replies
  in
  let serial, serial_report = with_inflight_daemon ~socket ~max_inflight:1 drive in
  let conc, conc_report = with_inflight_daemon ~socket ~max_inflight:4 drive in
  let total = nsessions * (nreqs + 1) in
  Alcotest.(check int) "serial daemon served every request" total
    serial_report.Serve.Daemon.r_requests;
  Alcotest.(check int) "concurrent daemon served every request" total
    conc_report.Serve.Daemon.r_requests;
  List.iter2
    (fun (s, rs_serial) (s', rs_conc) ->
      Alcotest.(check int) "same session" s s';
      List.iteri
        (fun i
             ((a : Serve.Protocol.compile_reply),
              (b : Serve.Protocol.compile_reply)) ->
          (* per-session responses arrive in request order... *)
          Alcotest.(check string) "reply order preserved" (label s i)
            a.co_label;
          Alcotest.(check string) "reply order preserved under concurrency"
            (label s i) b.co_label;
          (* ...and every observable field of the compile is identical
             between --max-inflight 1 and 4 *)
          Alcotest.(check string) "output byte-identical" a.co_output
            b.co_output;
          Alcotest.(check (list string)) "verdicts identical" a.co_verdicts
            b.co_verdicts;
          Alcotest.(check int) "incidents identical" a.co_incidents
            b.co_incidents;
          Alcotest.(check (list string)) "no check divergences" []
            b.co_check_divergences)
        (List.combine rs_serial rs_conc))
    serial conc

let tests =
  [ ("protocol request roundtrip", `Quick, test_protocol_request_roundtrip);
    ("protocol response roundtrip", `Quick, test_protocol_response_roundtrip);
    ("protocol rejects malformed", `Quick, test_protocol_rejects_malformed);
    ("protocol checksum detects every bit flip", `Quick,
     test_protocol_checksum_detects_flips);
    ("protocol peel reassembles partial frames", `Quick,
     test_protocol_peel_reassembles);
    ("store roundtrip through disk", `Quick, test_store_roundtrip);
    ("store drops corrupt entries", `Quick, test_store_drops_corruption);
    ("store corruption invisible to compiles", `Quick,
     test_store_corruption_is_invisible);
    ("store evicts LRU under its bound", `Quick, test_store_evicts_lru);
    ("serve session contains per-file errors", `Quick,
     test_local_compile_path_contains_errors);
    ("daemon end to end", `Quick, test_daemon_end_to_end);
    ("daemon contains malformed sessions", `Quick,
     test_daemon_contains_malformed_session);
    ("daemon drains in-flight requests on SIGTERM", `Quick,
     test_daemon_sigterm_drains);
    ("daemon store warms the next daemon", `Quick,
     test_daemon_store_warms_next_daemon);
    ("daemon survives a stalled client (no head-of-line)", `Quick,
     test_daemon_stalled_client_no_hol);
    ("daemon evicts a slow reader at the write-queue bound", `Quick,
     test_daemon_evicts_slow_reader);
    ("daemon sheds Busy at the session cap", `Quick,
     test_daemon_sheds_at_session_cap);
    ("daemon evicts idle sessions", `Quick, test_daemon_idle_timeout);
    ("daemon pidfile: refuse live, recover stale", `Quick,
     test_daemon_pidfile_single_instance);
    ("daemon log appends and marks restarts", `Quick,
     test_daemon_log_appends_restart_event);
    ("daemon SIGKILL: restart recovers the flushed store", `Quick,
     test_daemon_sigkill_recovery);
    ("daemon concurrent dispatch: ordered, byte-identical, checked", `Quick,
     test_daemon_concurrent_dispatch) ]
