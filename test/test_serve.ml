(* The compile daemon: wire protocol, persistent store (integrity +
   eviction), per-file error containment of serve sessions, and the
   daemon end to end over a real unix socket — including the graceful
   SIGTERM drain. *)

let smoke_source =
  "      PROGRAM SMOKE\n\
   \      INTEGER I, N\n\
   \      PARAMETER (N = 16)\n\
   \      REAL A(16), B(16)\n\
   \      DO I = 1, N\n\
   \        A(I) = I * 2.0\n\
   \      ENDDO\n\
   \      DO I = 1, N\n\
   \        B(I) = A(I) + 1.0\n\
   \      ENDDO\n\
   \      PRINT *, B(1)\n\
   \      END\n"

let tmp_name base =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "polaris-test-%d-%s" (Unix.getpid ()) base)

let rm_rf_dir dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Unix.rmdir dir
  end

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)

let roundtrip_request r =
  Serve.Protocol.decode_request (Serve.Protocol.encode_request r)

let roundtrip_response r =
  Serve.Protocol.decode_response (Serve.Protocol.encode_response r)

let test_protocol_request_roundtrip () =
  let reqs =
    [ Serve.Protocol.Compile
        { cr_label = "a.f"; cr_source = smoke_source; cr_check = true;
          cr_baseline = false };
      Serve.Protocol.Compile
        { cr_label = ""; cr_source = ""; cr_check = false; cr_baseline = true };
      Serve.Protocol.Stats; Serve.Protocol.Shutdown ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "request round-trips" true (roundtrip_request r = r))
    reqs

let test_protocol_response_roundtrip () =
  let resps =
    [ Serve.Protocol.Compiled
        { co_label = "a.f"; co_output = "      END\n";
          co_verdicts = [ "MAIN DO I PARALLEL -- x"; "MAIN DO J serial -- y" ];
          co_incidents = 2; co_reuse_rate = 0.875; co_shared_hits = 13;
          co_shared_lookups = 21; co_wall_ms = 1.25;
          co_check_divergences = [ "output differs" ] };
      Serve.Protocol.Stats_reply "{\"requests\":3}";
      Serve.Protocol.Error_r "nope"; Serve.Protocol.Bye ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "response round-trips" true
        (roundtrip_response r = r))
    resps

let test_protocol_rejects_malformed () =
  let malformed f = match f () with
    | exception Serve.Protocol.Malformed _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unknown request tag" true
    (malformed (fun () -> Serve.Protocol.decode_request "Zjunk"));
  Alcotest.(check bool) "empty request" true
    (malformed (fun () -> Serve.Protocol.decode_request ""));
  Alcotest.(check bool) "truncated compile payload" true
    (malformed (fun () -> Serve.Protocol.decode_request "C\000\000\000\005ab"));
  (* a valid payload with trailing garbage must not be silently accepted *)
  let valid = Serve.Protocol.encode_request Serve.Protocol.Stats in
  Alcotest.(check bool) "trailing bytes" true
    (malformed (fun () -> Serve.Protocol.decode_request (valid ^ "x")));
  (* an oversized frame length must be refused before allocation *)
  let buf = Buffer.create 8 in
  Buffer.add_string buf "\255\255\255\255rest";
  Alcotest.(check bool) "oversized frame length" true
    (malformed (fun () -> Serve.Protocol.peel buf))

let test_protocol_peel_reassembles () =
  let p1 = Serve.Protocol.encode_request Serve.Protocol.Stats in
  let p2 =
    Serve.Protocol.encode_request
      (Serve.Protocol.Compile
         { cr_label = "x"; cr_source = "y"; cr_check = false;
           cr_baseline = false })
  in
  let wire = Serve.Protocol.frame p1 ^ Serve.Protocol.frame p2 in
  let buf = Buffer.create 64 in
  (* drip the bytes in: no frame until its last byte arrives, then both
     frames peel in order from the same buffer *)
  let got = ref [] in
  String.iter
    (fun ch ->
      Buffer.add_char buf ch;
      match Serve.Protocol.peel buf with
      | Some payload -> got := payload :: !got
      | None -> ())
    wire;
  Alcotest.(check int) "two frames" 2 (List.length !got);
  Alcotest.(check bool) "payloads in order" true (List.rev !got = [ p1; p2 ])

(* ------------------------------------------------------------------ *)
(* Persistent store                                                    *)

let test_store_roundtrip () =
  let dir = tmp_name "store-rt" in
  rm_rf_dir dir;
  let s = Serve.Store.open_store ~dir ~max_bytes:(1 lsl 20) () in
  Serve.Store.insert s ~name:"c1" ~key:"k1" ~data:"v1";
  Serve.Store.insert s ~name:"c1" ~key:"k2" ~data:"v2";
  Serve.Store.insert s ~name:"c2" ~key:"k1" ~data:"other";
  Alcotest.(check (option string)) "hit" (Some "v1")
    (Serve.Store.lookup s ~name:"c1" ~key:"k1");
  Alcotest.(check (option string)) "names are namespaces" (Some "other")
    (Serve.Store.lookup s ~name:"c2" ~key:"k1");
  Alcotest.(check (option string)) "miss" None
    (Serve.Store.lookup s ~name:"c1" ~key:"nope");
  Serve.Store.flush s;
  (* a different handle on the same directory sees everything *)
  let s2 = Serve.Store.open_store ~dir ~max_bytes:(1 lsl 20) () in
  Alcotest.(check int) "all entries reloaded" 3 (Serve.Store.entry_count s2);
  Alcotest.(check (option string)) "persisted across open" (Some "v2")
    (Serve.Store.lookup s2 ~name:"c1" ~key:"k2");
  rm_rf_dir dir

let flip_byte path pos =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.of_string (really_input_string ic n) in
  close_in ic;
  let pos = if pos < 0 then n + pos else pos in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_store_drops_corruption () =
  let dir = tmp_name "store-corrupt" in
  rm_rf_dir dir;
  let s = Serve.Store.open_store ~dir ~max_bytes:(1 lsl 20) () in
  for i = 1 to 10 do
    Serve.Store.insert s ~name:"c" ~key:(Printf.sprintf "k%d" i)
      ~data:(String.make 32 'x')
  done;
  Serve.Store.flush s;
  let path = Filename.concat dir "analysis.store" in
  (* garble the last entry's digest: that entry is dropped, the rest
     load fine *)
  flip_byte path (-1);
  let s2 = Serve.Store.open_store ~dir ~max_bytes:(1 lsl 20) () in
  Alcotest.(check int) "one entry dropped" 9 (Serve.Store.entry_count s2);
  (* truncate mid-entry: framing breaks, the tail is abandoned, the
     store still opens *)
  Serve.Store.flush s;
  let n = (Unix.stat path).st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (n - 10);
  Unix.close fd;
  let s3 = Serve.Store.open_store ~dir ~max_bytes:(1 lsl 20) () in
  Alcotest.(check bool) "truncated tail dropped, rest kept" true
    (Serve.Store.entry_count s3 < 10 && Serve.Store.entry_count s3 >= 1);
  (* corrupt the header: nothing written by "another binary" may be
     trusted — the whole file is discarded *)
  Serve.Store.flush s;
  flip_byte path 3;
  let s4 = Serve.Store.open_store ~dir ~max_bytes:(1 lsl 20) () in
  Alcotest.(check int) "corrupt header discards everything" 0
    (Serve.Store.entry_count s4);
  rm_rf_dir dir

(* end to end: a compile backed by a corrupted store must silently
   recompute the dropped facts and produce byte-identical output *)
let test_store_corruption_is_invisible () =
  let dir = tmp_name "store-invisible" in
  rm_rf_dir dir;
  let cfg = Core.Config.polaris ~procs:8 () in
  Util.Cachectl.clear_all ();
  let s = Serve.Store.open_store ~dir ~max_bytes:(1 lsl 20) () in
  let prev = Serve.Store.install s in
  let c1 = Serve.Local.compile_source cfg smoke_source in
  Serve.Store.flush s;
  Serve.Store.uninstall prev;
  (* flip bytes across the file: some entries survive, some don't *)
  let path = Filename.concat dir "analysis.store" in
  let size = (Unix.stat path).st_size in
  List.iter
    (fun frac -> flip_byte path (size * frac / 10))
    [ 4; 6; 8 ];
  Util.Cachectl.clear_all ();
  let s2 = Serve.Store.open_store ~dir ~max_bytes:(1 lsl 20) () in
  let prev2 = Serve.Store.install s2 in
  let c2 = Serve.Local.compile_source cfg smoke_source in
  Serve.Store.uninstall prev2;
  Util.Cachectl.clear_all ();
  let scratch = Core.Incremental.scratch cfg smoke_source in
  Alcotest.(check string) "store-backed output = scratch output"
    scratch.outcome.oc_output c2.lc_result.outcome.oc_output;
  Alcotest.(check string) "pre-corruption output agrees too"
    scratch.outcome.oc_output c1.lc_result.outcome.oc_output;
  Alcotest.(check bool) "verdicts identical" true
    (c1.lc_verdicts = c2.lc_verdicts
    && c2.lc_verdicts = Serve.Local.render_verdicts scratch.outcome);
  rm_rf_dir dir

let test_store_evicts_lru () =
  let dir = tmp_name "store-evict" in
  rm_rf_dir dir;
  (* a bound small enough that 50 ~72-byte entries cannot all fit *)
  let max_bytes = 1024 in
  let s = Serve.Store.open_store ~dir ~max_bytes () in
  for i = 1 to 50 do
    Serve.Store.insert s ~name:"c" ~key:(Printf.sprintf "key-%02d" i)
      ~data:(String.make 24 'd');
    (* keep key-01 hot: recency must protect it from eviction *)
    ignore (Serve.Store.lookup s ~name:"c" ~key:"key-01")
  done;
  Alcotest.(check bool) "evicted under the bound" true
    (Serve.Store.entry_count s < 50);
  Alcotest.(check (option string)) "hot entry survived LRU"
    (Some (String.make 24 'd'))
    (Serve.Store.lookup s ~name:"c" ~key:"key-01");
  Serve.Store.flush s;
  let size = (Unix.stat (Filename.concat dir "analysis.store")).st_size in
  Alcotest.(check bool) "flushed file respects the bound" true
    (size <= max_bytes + 64);
  let s2 = Serve.Store.open_store ~dir ~max_bytes () in
  Alcotest.(check bool) "reload stays bounded" true
    (Serve.Store.entry_count s2 <= Serve.Store.entry_count s);
  rm_rf_dir dir

(* ------------------------------------------------------------------ *)
(* Per-file error containment (the `polaris serve` discipline)         *)

let test_local_compile_path_contains_errors () =
  let cfg = Core.Config.polaris ~procs:8 () in
  (* unreadable path: an Error, not an exception *)
  (match Serve.Local.compile_path cfg "/nonexistent/nope.f" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unreadable path must be a per-file error");
  (* unparseable source: an Error naming the file *)
  let bad = tmp_name "bad.f" in
  let oc = open_out bad in
  output_string oc "      THIS IS NOT FORTRAN(\n";
  close_out oc;
  (match Serve.Local.compile_path cfg bad with
  | Error m ->
    Alcotest.(check bool) "error names the file" true
      (String.length m >= String.length bad
      && String.sub m 0 (String.length bad) = bad)
  | Ok _ -> Alcotest.fail "unparseable source must be a per-file error");
  Sys.remove bad;
  (* a good file still compiles *)
  let good = tmp_name "good.f" in
  let oc = open_out good in
  output_string oc smoke_source;
  close_out oc;
  (match Serve.Local.compile_path cfg good with
  | Ok c ->
    Alcotest.(check bool) "compile produced verdicts" true
      (c.lc_verdicts <> [])
  | Error m -> Alcotest.fail ("good file failed: " ^ m));
  Sys.remove good

(* ------------------------------------------------------------------ *)
(* Daemon end to end                                                   *)

let start_daemon ?(signals = false) ~socket ~store_dir () =
  let stop = Atomic.make false in
  let ready = Atomic.make false in
  let cfg =
    { (Serve.Daemon.default_cfg ()) with
      d_socket = socket;
      d_store_dir = store_dir;
      d_poll_s = 0.02 }
  in
  let d =
    Domain.spawn (fun () ->
        Serve.Daemon.run ~signals ~stop
          ~on_ready:(fun () -> Atomic.set ready true)
          cfg)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  (d, stop)

let test_daemon_end_to_end () =
  let socket = tmp_name "e2e.sock" in
  let store_dir = tmp_name "e2e-store" in
  rm_rf_dir store_dir;
  Util.Cachectl.clear_all ();
  let d, _stop = start_daemon ~socket ~store_dir:(Some store_dir) () in
  (match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok c ->
    (match Serve.Client.compile_source c ~check:true ~label:"smoke" smoke_source with
    | Ok r ->
      Alcotest.(check int) "two loop verdicts" 2 (List.length r.co_verdicts);
      Alcotest.(check bool) "server-side check passes" true
        (r.co_check_divergences = []);
      Alcotest.(check bool) "output is annotated Fortran" true
        (String.length r.co_output > 0)
    | Error m -> Alcotest.fail ("compile: " ^ m));
    (match Serve.Client.stats c with
    | Ok json ->
      Alcotest.(check bool) "stats is a JSON object with requests" true
        (String.length json > 2 && json.[0] = '{')
    | Error m -> Alcotest.fail ("stats: " ^ m));
    (match Serve.Client.shutdown c with
    | Ok () -> ()
    | Error m -> Alcotest.fail ("shutdown: " ^ m));
    Serve.Client.close c);
  let report = Domain.join d in
  Alcotest.(check bool) "graceful" true report.Serve.Daemon.r_graceful;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists socket);
  Alcotest.(check bool) "store flushed to disk" true
    (Sys.file_exists (Filename.concat store_dir "analysis.store"));
  rm_rf_dir store_dir;
  Util.Cachectl.clear_all ()

let test_daemon_contains_malformed_session () =
  let socket = tmp_name "malformed.sock" in
  Util.Cachectl.clear_all ();
  let d, stop = start_daemon ~socket ~store_dir:None () in
  (* session 1 speaks garbage: it gets an error and is closed alone *)
  (match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok c ->
    Serve.Protocol.send c.Serve.Client.fd "Zjunk";
    (match Serve.Client.recv c with
    | Ok (Serve.Protocol.Error_r _) -> ()
    | Ok _ -> Alcotest.fail "expected Error_r for a malformed request"
    | Error m -> Alcotest.fail ("recv: " ^ m));
    (* the daemon closed this session after the protocol violation *)
    (match Serve.Client.recv c with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "session must be closed after a violation");
    Serve.Client.close c);
  (* the server itself is unharmed: a fresh session compiles fine *)
  (match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok c ->
    (match Serve.Client.compile_source c ~label:"after" smoke_source with
    | Ok r -> Alcotest.(check int) "still serving" 2 (List.length r.co_verdicts)
    | Error m -> Alcotest.fail ("compile after violation: " ^ m));
    Serve.Client.close c);
  Atomic.set stop true;
  let report = Domain.join d in
  Alcotest.(check bool) "graceful stop" true report.Serve.Daemon.r_graceful;
  Util.Cachectl.clear_all ()

let test_daemon_sigterm_drains () =
  let socket = tmp_name "sigterm.sock" in
  let store_dir = tmp_name "sigterm-store" in
  rm_rf_dir store_dir;
  Util.Cachectl.clear_all ();
  let d, _stop = start_daemon ~signals:true ~socket ~store_dir:(Some store_dir) () in
  match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok c ->
    (* an active session... *)
    (match Serve.Client.compile_source c ~label:"one" smoke_source with
    | Ok _ -> ()
    | Error m -> Alcotest.fail ("compile: " ^ m));
    (* ...with two more requests already in flight when the signal hits *)
    Serve.Client.send c
      (Serve.Protocol.Compile
         { cr_label = "two"; cr_source = smoke_source; cr_check = false;
           cr_baseline = false });
    Serve.Client.send c
      (Serve.Protocol.Compile
         { cr_label = "three"; cr_source = smoke_source; cr_check = false;
           cr_baseline = false });
    Unix.kill (Unix.getpid ()) Sys.sigterm;
    let report = Domain.join d in
    Alcotest.(check bool) "graceful under SIGTERM" true
      report.Serve.Daemon.r_graceful;
    (* both in-flight requests were drained and answered *)
    (match Serve.Client.recv c with
    | Ok (Serve.Protocol.Compiled r) ->
      Alcotest.(check string) "in-flight request two answered" "two" r.co_label
    | Ok _ | Error _ -> Alcotest.fail "request two was not drained");
    (match Serve.Client.recv c with
    | Ok (Serve.Protocol.Compiled r) ->
      Alcotest.(check string) "in-flight request three answered" "three"
        r.co_label
    | Ok _ | Error _ -> Alcotest.fail "request three was not drained");
    Serve.Client.close c;
    Alcotest.(check int) "all three requests served" 3
      report.Serve.Daemon.r_requests;
    Alcotest.(check bool) "store flushed on the way down" true
      (Sys.file_exists (Filename.concat store_dir "analysis.store"));
    Alcotest.(check bool) "socket removed" false (Sys.file_exists socket);
    rm_rf_dir store_dir;
    Util.Cachectl.clear_all ()

(* facts proved by one session must be served to the next from the
   persistent store: restart the daemon on the same store directory and
   require a majority of shared-cache lookups to hit *)
let test_daemon_store_warms_next_daemon () =
  let socket = tmp_name "warm.sock" in
  let store_dir = tmp_name "warm-store" in
  rm_rf_dir store_dir;
  Util.Cachectl.clear_all ();
  let d1, stop1 = start_daemon ~socket ~store_dir:(Some store_dir) () in
  (match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok c ->
    (match Serve.Client.compile_source c ~label:"cold" smoke_source with
    | Ok _ -> ()
    | Error m -> Alcotest.fail m);
    Serve.Client.close c);
  Atomic.set stop1 true;
  ignore (Domain.join d1);
  (* simulate a fresh daemon process: in-memory tables gone, disk kept *)
  Util.Cachectl.clear_all ();
  let d2, stop2 = start_daemon ~socket ~store_dir:(Some store_dir) () in
  (match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok c ->
    (match Serve.Client.compile_source c ~label:"warm" smoke_source with
    | Ok r ->
      Alcotest.(check bool) "warm compile hits the persisted store" true
        (r.co_shared_lookups > 0
        && float_of_int r.co_shared_hits
           >= 0.5 *. float_of_int r.co_shared_lookups)
    | Error m -> Alcotest.fail m);
    Serve.Client.close c);
  Atomic.set stop2 true;
  ignore (Domain.join d2);
  rm_rf_dir store_dir;
  Util.Cachectl.clear_all ()

let tests =
  [ ("protocol request roundtrip", `Quick, test_protocol_request_roundtrip);
    ("protocol response roundtrip", `Quick, test_protocol_response_roundtrip);
    ("protocol rejects malformed", `Quick, test_protocol_rejects_malformed);
    ("protocol peel reassembles partial frames", `Quick,
     test_protocol_peel_reassembles);
    ("store roundtrip through disk", `Quick, test_store_roundtrip);
    ("store drops corrupt entries", `Quick, test_store_drops_corruption);
    ("store corruption invisible to compiles", `Quick,
     test_store_corruption_is_invisible);
    ("store evicts LRU under its bound", `Quick, test_store_evicts_lru);
    ("serve session contains per-file errors", `Quick,
     test_local_compile_path_contains_errors);
    ("daemon end to end", `Quick, test_daemon_end_to_end);
    ("daemon contains malformed sessions", `Quick,
     test_daemon_contains_malformed_session);
    ("daemon drains in-flight requests on SIGTERM", `Quick,
     test_daemon_sigterm_drains);
    ("daemon store warms the next daemon", `Quick,
     test_daemon_store_warms_next_daemon) ]
