(* The multi-backend emission layer (lib/backend).

   Four properties are pinned, per acceptance criteria of the registry/
   backend refactor.

   1. Byte identity: the default f77 emission of every suite code is
      byte-for-byte equal to the committed golden in [golden/f77/] —
      the refactor (pipeline interpreter + backend registry) must not
      move a single byte of the historical default output — and
      [Backend.Registry.default] emits exactly [Pipeline.output_source].

   2. C goldens: [Backend.Cgen] output equals the committed goldens in
      [golden/c/] (each was compiled with gcc -fopenmp and its stdout
      diffed against the interpreter oracle when generated; the
      [polaris native] lane re-checks on toolchain hosts) and emission
      is deterministic.

   3. Clause equality: the PRIVATE/LASTPRIVATE/REDUCTION sets the
      OpenMP backends print are exactly the sets the real parallel
      executor ([Machine.Parexec]) privatizes and reduces at run time —
      asserted against the executor's per-region logs, suite-wide.

   4. Round-trip fixed point: parse ∘ unparse is idempotent on the f77
      surface — 100 fuzzed programs reach a fixed point after one
      round trip, so the f77 backend's output is stable input for our
      own frontend (the property the daemon's re-compile lanes and the
      validate matrix lean on). *)

open Fir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compiled_suite =
  (* one compile per suite code, shared across test cases *)
  lazy
    (List.map
       (fun (c : Suite.Code.t) ->
         (c, Core.Pipeline.compile (Core.Config.polaris ()) c.source))
       Suite.Registry.all)

(* ------------------------------------------------------------------ *)
(* 1. default output is byte-stable against the committed goldens      *)

let test_f77_golden_identity () =
  List.iter
    (fun ((c : Suite.Code.t), t) ->
      let golden =
        read_file
          (Printf.sprintf "golden/f77/%s.f" (String.lowercase_ascii c.name))
      in
      let got = Core.Pipeline.output_source t in
      if not (String.equal golden got) then
        Alcotest.failf "%s: default f77 output drifted from golden/f77/%s.f"
          c.name
          (String.lowercase_ascii c.name))
    (Lazy.force compiled_suite)

let test_default_backend_is_output_source () =
  let b = Backend.Registry.default in
  Alcotest.(check string) "default name" "f77" b.Backend.Registry.b_name;
  List.iter
    (fun ((c : Suite.Code.t), t) ->
      Alcotest.(check bool)
        (c.name ^ ": registry default = pipeline output")
        true
        (String.equal
           (b.Backend.Registry.b_emit t.Core.Pipeline.program)
           (Core.Pipeline.output_source t)))
    (Lazy.force compiled_suite)

(* ------------------------------------------------------------------ *)
(* 2. C backend goldens + determinism                                  *)

let test_c_golden_identity () =
  List.iter
    (fun ((c : Suite.Code.t), t) ->
      let golden =
        read_file
          (Printf.sprintf "golden/c/%s.c" (String.lowercase_ascii c.name))
      in
      let got = Backend.Cgen.emit t.Core.Pipeline.program in
      if not (String.equal golden got) then
        Alcotest.failf "%s: C output drifted from golden/c/%s.c" c.name
          (String.lowercase_ascii c.name))
    (Lazy.force compiled_suite)

let test_c_deterministic () =
  List.iter
    (fun ((c : Suite.Code.t), t) ->
      let a = Backend.Cgen.emit t.Core.Pipeline.program in
      let b = Backend.Cgen.emit t.Core.Pipeline.program in
      Alcotest.(check bool) (c.name ^ ": C emission deterministic") true
        (String.equal a b))
    (Lazy.force compiled_suite)

(* every backend that claims [b_reparses] must emit source our own
   frontend accepts, for every suite code *)
let test_reparse_lane () =
  List.iter
    (fun (b : Backend.Registry.t) ->
      if b.b_reparses then
        List.iter
          (fun ((c : Suite.Code.t), t) ->
            let src = b.b_emit t.Core.Pipeline.program in
            try ignore (Frontend.Parser.parse_string src)
            with e ->
              Alcotest.failf "%s via %s does not re-parse: %s" c.name b.b_name
                (Printexc.to_string e))
          (Lazy.force compiled_suite))
    Backend.Registry.all

(* ------------------------------------------------------------------ *)
(* 3. emitted clauses = executor's runtime sets                        *)

let find_loop (prog : Program.t) sid =
  List.find_map
    (fun (u : Punit.t) ->
      List.find_map
        (fun ((s : Ast.stmt), d) -> if s.sid = sid then Some (u, d) else None)
        (Stmt.loops u.pu_body))
    (Program.units prog)

let sorted = List.sort_uniq String.compare

let test_clauses_match_executor () =
  let regions_seen = ref 0 in
  List.iter
    (fun ((c : Suite.Code.t), t) ->
      let prog = t.Core.Pipeline.program in
      (* procs must be >= 2: the executor short-circuits to the serial
         interpreter (and records no regions) on a single domain *)
      let _, stats = Machine.Parexec.run_full ~procs:2 prog in
      List.iter
        (fun (ri : Machine.Parexec.region_info) ->
          incr regions_seen;
          match find_loop prog ri.ri_sid with
          | None ->
            Alcotest.failf "%s: executor region sid %d not found in program"
              c.name ri.ri_sid
          | Some (u, d) ->
            let cl = Backend.Clauses.of_loop u.pu_symtab d in
            Alcotest.(check (list string))
              (Printf.sprintf "%s %s: PRIVATE∪LASTPRIVATE = executor privates"
                 c.name ri.ri_index)
              (sorted ri.ri_privates)
              (Backend.Clauses.private_union cl);
            Alcotest.(check (list string))
              (Printf.sprintf "%s %s: LASTPRIVATE" c.name ri.ri_index)
              (sorted ri.ri_lastprivates)
              (sorted cl.c_lastprivate);
            Alcotest.(check (list string))
              (Printf.sprintf "%s %s: REDUCTION" c.name ri.ri_index)
              (List.sort compare
                 (List.map
                    (fun (v, op) -> v ^ ":" ^ Backend.Clauses.op_name op)
                    ri.ri_reductions))
              (List.sort compare
                 (List.map
                    (fun (v, op) -> v ^ ":" ^ Backend.Clauses.op_name op)
                    cl.c_reductions)))
        stats.Machine.Parexec.region_infos)
    (Lazy.force compiled_suite);
  (* the property is vacuous if the executor never ran a region *)
  if !regions_seen = 0 then
    Alcotest.fail "no parallel regions executed across the whole suite"

(* ------------------------------------------------------------------ *)
(* 4. parse ∘ unparse fixed point (100 fuzzed programs)                *)

let test_roundtrip_fixed_point () =
  for seed = 1 to 100 do
    let src = Test_fuzz.gen_program (Util.Prng.create seed) in
    let once =
      Frontend.Unparse.program_to_string (Frontend.Parser.parse_string src)
    in
    let twice =
      Frontend.Unparse.program_to_string (Frontend.Parser.parse_string once)
    in
    if not (String.equal once twice) then
      Alcotest.failf "seed %d: unparse is not a fixed point after one trip"
        seed
  done

(* the committed f77 goldens are valid input for our own frontend
   (they are not plain parse∘unparse fixed points: the CPOLARIS$
   directive comments they carry are analysis results, re-derived by
   the pipeline rather than parsed back) *)
let test_golden_reparses () =
  List.iter
    (fun (c : Suite.Code.t) ->
      let path =
        Printf.sprintf "golden/f77/%s.f" (String.lowercase_ascii c.name)
      in
      let golden = read_file path in
      try ignore (Frontend.Parser.parse_string golden)
      with e ->
        Alcotest.failf "%s does not re-parse: %s" path (Printexc.to_string e))
    Suite.Registry.all

let tests =
  [ Alcotest.test_case "f77 golden identity (16 codes)" `Quick
      test_f77_golden_identity;
    Alcotest.test_case "default backend = output_source" `Quick
      test_default_backend_is_output_source;
    Alcotest.test_case "C golden identity (16 codes)" `Quick
      test_c_golden_identity;
    Alcotest.test_case "C emission deterministic" `Quick test_c_deterministic;
    Alcotest.test_case "reparse lane (b_reparses backends)" `Quick
      test_reparse_lane;
    Alcotest.test_case "clauses = executor runtime sets" `Quick
      test_clauses_match_executor;
    Alcotest.test_case "roundtrip fixed point (100 seeds)" `Quick
      test_roundtrip_fixed_point;
    Alcotest.test_case "f77 goldens re-parse" `Quick test_golden_reparses ]
