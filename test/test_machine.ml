(* Tests for the machine substrate: values, storage, cache, interpreter,
   multiprocessor timing model. *)

let parse = Frontend.Parser.parse_string

let run_src ?cfg src = Machine.Interp.run ?cfg (parse src)

let out1 ?cfg src =
  match (run_src ?cfg src).output with
  | [ line ] -> line
  | other -> Alcotest.fail ("expected one output line, got " ^ String.concat "|" other)

(* ----- values ----- *)

let test_value_arith () =
  let open Machine.Value in
  Alcotest.(check bool) "int div truncates" true (div (Int 7) (Int 2) = Int 3);
  Alcotest.(check bool) "int div negative" true (div (Int (-7)) (Int 2) = Int (-3));
  Alcotest.(check bool) "mixed promotes" true (add (Int 1) (Real 0.5) = Real 1.5);
  Alcotest.(check bool) "int pow" true (pow (Int 2) (Int 10) = Int 1024);
  Alcotest.(check bool) "compare" true (compare_num (Int 2) (Real 2.5) < 0)

(* ----- storage ----- *)

let test_storage_column_major () =
  (* A(4,3): A(i,j) at (i-1) + (j-1)*4 *)
  let dims = [ (1, 4); (1, 3) ] in
  Alcotest.(check int) "A(1,1)" 0 (Machine.Storage.linear_index dims [ 1; 1 ]);
  Alcotest.(check int) "A(2,1)" 1 (Machine.Storage.linear_index dims [ 2; 1 ]);
  Alcotest.(check int) "A(1,2)" 4 (Machine.Storage.linear_index dims [ 1; 2 ]);
  Alcotest.(check int) "A(4,3)" 11 (Machine.Storage.linear_index dims [ 4; 3 ])

let test_storage_lower_bounds () =
  let dims = [ (0, 5) ] in
  Alcotest.(check int) "A(0)" 0 (Machine.Storage.linear_index dims [ 0 ]);
  Alcotest.(check int) "A(4)" 4 (Machine.Storage.linear_index dims [ 4 ])

let test_storage_bounds_fault () =
  let b = Machine.Storage.array_binding Fir.Ast.Real [ (1, 3) ] in
  Alcotest.(check bool) "oob write faults" true
    (match Machine.Storage.write_elem b.view 5 (Machine.Value.Real 1.0) with
    | () -> false
    | exception Machine.Storage.Fault _ -> true)

let test_storage_snapshot () =
  let b = Machine.Storage.array_binding Fir.Ast.Integer [ (1, 3) ] in
  Machine.Storage.write_elem b.view 0 (Machine.Value.Int 7);
  let snap = Machine.Storage.snapshot b.view.alloc in
  Machine.Storage.write_elem b.view 0 (Machine.Value.Int 9);
  Machine.Storage.restore b.view.alloc snap;
  Alcotest.(check bool) "restored" true
    (Machine.Storage.read_elem b.view 0 = Machine.Value.Int 7)

(* ----- cache ----- *)

let test_cache () =
  let c = Machine.Cache.create ~sets:4 ~line_words:8 () in
  Alcotest.(check bool) "first miss" false (Machine.Cache.access c 0);
  Alcotest.(check bool) "same line hit" true (Machine.Cache.access c 7);
  Alcotest.(check bool) "next line miss" false (Machine.Cache.access c 8);
  (* conflicting line evicts: 4 sets * 8 words = line 0 and line 4 share set 0 *)
  ignore (Machine.Cache.access c (4 * 8));
  Alcotest.(check bool) "evicted" false (Machine.Cache.access c 0)

(* ----- interpreter semantics ----- *)

let test_interp_arith_and_intrinsics () =
  let src =
    "      PROGRAM T\n\
     \      I = 7 / 2\n\
     \      J = MOD(17, 5)\n\
     \      X = SQRT(9.0)\n\
     \      K = MAX(3, 9, 4)\n\
     \      L = ABS(-6)\n\
     \      PRINT *, I, J, X, K, L\n\
     \      END\n"
  in
  Alcotest.(check string) "arith" "3 2 3 9 6" (out1 src)

let test_interp_do_semantics () =
  let src =
    "      PROGRAM T\n\
     \      S = 0\n\
     \      DO I = 1, 10, 3\n\
     \        S = S + I\n\
     \      END DO\n\
     \      DO J = 5, 1\n\
     \        S = S + 100\n\
     \      END DO\n\
     \      PRINT *, S, I, J\n\
     \      END\n"
  in
  (* iterations 1,4,7,10 -> 22; zero-trip loop leaves J = 5; I ends at 13 *)
  Alcotest.(check string) "do semantics" "22 13 5" (out1 src)

let test_interp_goto_loop () =
  let src =
    "      PROGRAM T\n\
     \      K = 0\n\
     \ 10   CONTINUE\n\
     \      K = K + 1\n\
     \      IF (K .LT. 5) GOTO 10\n\
     \      PRINT *, K\n\
     \      END\n"
  in
  Alcotest.(check string) "goto loop" "5" (out1 src)

let test_interp_call_by_reference () =
  let src =
    "      PROGRAM T\n\
     \      INTEGER K\n\
     \      REAL A(5)\n\
     \      K = 3\n\
     \      A(2) = 1.0\n\
     \      CALL BUMP(K, A)\n\
     \      PRINT *, K, A(2)\n\
     \      END\n\
     \      SUBROUTINE BUMP(N, B)\n\
     \      INTEGER N\n\
     \      REAL B(5)\n\
     \      N = N + 10\n\
     \      B(2) = B(2) + 0.5\n\
     \      END\n"
  in
  Alcotest.(check string) "by reference" "13 1.5" (out1 src)

let test_interp_array_section_passing () =
  let src =
    "      PROGRAM T\n\
     \      REAL A(10)\n\
     \      DO I = 1, 10\n\
     \        A(I) = I * 1.0\n\
     \      END DO\n\
     \      CALL DBL(A(4), 3)\n\
     \      PRINT *, A(3), A(4), A(6), A(7)\n\
     \      END\n\
     \      SUBROUTINE DBL(B, N)\n\
     \      INTEGER N\n\
     \      REAL B(N)\n\
     \      DO I = 1, N\n\
     \        B(I) = B(I) * 2.0\n\
     \      END DO\n\
     \      END\n"
  in
  Alcotest.(check string) "offset view" "3 8 12 7" (out1 src)

let test_interp_adjustable_dims_any_order () =
  (* array formal precedes its dimension formals *)
  let src =
    "      PROGRAM T\n\
     \      REAL C(12)\n\
     \      DO I = 1, 12\n\
     \        C(I) = 0.0\n\
     \      END DO\n\
     \      CALL FILL(C, 4, 3)\n\
     \      S = 0.0\n\
     \      DO I = 1, 12\n\
     \        S = S + C(I)\n\
     \      END DO\n\
     \      PRINT *, S\n\
     \      END\n\
     \      SUBROUTINE FILL(D, M, K)\n\
     \      INTEGER M, K\n\
     \      REAL D(M, K)\n\
     \      DO J = 1, K\n\
     \        DO I = 1, M\n\
     \          D(I, J) = 1.0\n\
     \        END DO\n\
     \      END DO\n\
     \      END\n"
  in
  Alcotest.(check string) "all 12 filled" "12" (out1 src)

let test_interp_common_blocks () =
  let src =
    "      PROGRAM T\n\
     \      INTEGER N\n\
     \      COMMON /CFG/ N\n\
     \      N = 41\n\
     \      CALL STEP\n\
     \      PRINT *, N\n\
     \      END\n\
     \      SUBROUTINE STEP\n\
     \      INTEGER N\n\
     \      COMMON /CFG/ N\n\
     \      N = N + 1\n\
     \      END\n"
  in
  Alcotest.(check string) "common shared" "42" (out1 src)

let test_interp_function_call () =
  let src =
    "      PROGRAM T\n\
     \      K = TWICE(21)\n\
     \      PRINT *, K\n\
     \      END\n\
     \      INTEGER FUNCTION TWICE(N)\n\
     \      INTEGER N\n\
     \      TWICE = 2 * N\n\
     \      END\n"
  in
  Alcotest.(check string) "function" "42" (out1 src)

let test_interp_fuel () =
  let src =
    "      PROGRAM T\n\
     \      K = 0\n\
     \ 10   K = K + 1\n\
     \      GOTO 10\n\
     \      END\n"
  in
  let cfg = { (Machine.Interp.default_config ()) with max_steps = 10_000 } in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "fuel exhausted, message locates the abort" true
    (match run_src ~cfg src with
    | _ -> false
    | exception Machine.Interp.Fuel_exhausted m ->
      (* the message must locate the abort: statement count, unit, loop *)
      contains m "statements" && contains m "unit")

let test_interp_determinism () =
  let c = Suite.Registry.find "FLO52" in
  let r1 = run_src c.Suite.Code.source and r2 = run_src c.Suite.Code.source in
  Alcotest.(check bool) "same time" true (r1.time = r2.time);
  Alcotest.(check (list string)) "same output" r1.output r2.output

let test_parallel_timing_preserves_semantics () =
  let c = Suite.Registry.find "MDG" in
  let p = parse c.Suite.Code.source in
  let _ = Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p in
  let rs = Machine.Interp.run ~cfg:(Machine.Interp.default_config ~parallel:false ()) p in
  let rp = Machine.Interp.run ~cfg:(Machine.Interp.default_config ~parallel:true ()) p in
  Alcotest.(check (list string)) "same output" rs.output rp.output;
  Alcotest.(check bool) "parallel faster" true (rp.time < rs.time)

(* ----- parsim ----- *)

let test_block_schedule () =
  let cfg = Machine.Parsim.default ~procs:4 () in
  (* 8 equal iterations on 4 procs: 2 each *)
  Alcotest.(check int) "balanced" 20
    (Machine.Parsim.block_schedule_time cfg (Array.make 8 10));
  (* one heavy iteration dominates *)
  let costs = [| 100; 1; 1; 1; 1; 1; 1; 1 |] in
  Alcotest.(check int) "imbalanced" 101
    (Machine.Parsim.block_schedule_time cfg costs);
  Alcotest.(check int) "empty" 0 (Machine.Parsim.block_schedule_time cfg [||])

(* the block-schedule geometry is shared between the timing model and
   the real executor: pin the boundaries exactly, check block_start /
   proc_of agree with the textbook formula on small sizes, and check
   the division-first form survives near-max_int trip counts (the old
   [k * p] product overflowed there) *)
let test_block_boundaries () =
  let starts ~p ~n =
    List.init (p + 1) (fun j -> Machine.Parsim.block_start ~p ~n j)
  in
  Alcotest.(check (list int)) "n=10 p=4" [ 0; 3; 5; 8; 10 ] (starts ~p:4 ~n:10);
  Alcotest.(check (list int)) "n=8 p=4" [ 0; 2; 4; 6; 8 ] (starts ~p:4 ~n:8);
  Alcotest.(check (list int)) "n=2 p=8"
    [ 0; 1; 1; 1; 1; 2; 2; 2; 2 ] (starts ~p:8 ~n:2);
  Alcotest.(check (list int)) "n=7 p=3" [ 0; 3; 5; 7 ] (starts ~p:3 ~n:7);
  (* proc_of is the inverse of block_start and matches k*p/n exactly *)
  List.iter
    (fun (p, n) ->
      for k = 0 to n - 1 do
        let expect = min (p - 1) (k * p / n) in
        Alcotest.(check int)
          (Printf.sprintf "proc_of p=%d n=%d k=%d" p n k)
          expect
          (Machine.Parsim.proc_of ~p ~n k)
      done)
    [ (1, 5); (2, 5); (3, 7); (4, 10); (8, 2); (8, 64); (5, 100) ];
  (* overflow guard: trip counts where k * p would wrap *)
  let n = max_int / 2 and p = 8 in
  Alcotest.(check int) "huge n: first boundary" 0
    (Machine.Parsim.block_start ~p ~n 0);
  Alcotest.(check int) "huge n: last boundary" n
    (Machine.Parsim.block_start ~p ~n p);
  let rec mono j =
    j >= p
    || Machine.Parsim.block_start ~p ~n j <= Machine.Parsim.block_start ~p ~n (j + 1)
       && mono (j + 1)
  in
  Alcotest.(check bool) "huge n: boundaries monotone" true (mono 0);
  Alcotest.(check int) "huge n: last iteration on last proc" (p - 1)
    (Machine.Parsim.proc_of ~p ~n (n - 1));
  Alcotest.(check int) "huge n: first iteration on proc 0" 0
    (Machine.Parsim.proc_of ~p ~n 0)

let test_doall_time_overheads () =
  let cfg = Machine.Parsim.default ~procs:8 () in
  let t0 =
    Machine.Parsim.doall_time cfg ~iter_costs:(Array.make 8 100) ~n_private:0
      ~reduction_elems:0
  in
  let t1 =
    Machine.Parsim.doall_time cfg ~iter_costs:(Array.make 8 100) ~n_private:2
      ~reduction_elems:50
  in
  Alcotest.(check bool) "overheads monotone" true (t1 > t0);
  Alcotest.(check bool) "fork dominates empty loop" true
    (Machine.Parsim.doall_time cfg ~iter_costs:[||] ~n_private:0 ~reduction_elems:0
    >= cfg.fork_cost)

let test_speedup_more_procs () =
  (* simulated parallel time should not increase with more processors
     for a big balanced loop *)
  let c = Suite.Registry.find "SWIM" in
  let p = parse c.Suite.Code.source in
  let _ = Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p in
  let t procs =
    (Machine.Interp.run ~cfg:(Machine.Interp.default_config ~parallel:true ~procs ()) p).time
  in
  let t2 = t 2 and t8 = t 8 in
  Alcotest.(check bool) "8 procs faster than 2" true (t8 < t2)

let tests =
  [ ("value arithmetic", `Quick, test_value_arith);
    ("storage column major", `Quick, test_storage_column_major);
    ("storage lower bounds", `Quick, test_storage_lower_bounds);
    ("storage bounds fault", `Quick, test_storage_bounds_fault);
    ("storage snapshot/restore", `Quick, test_storage_snapshot);
    ("cache direct mapped", `Quick, test_cache);
    ("interp arithmetic+intrinsics", `Quick, test_interp_arith_and_intrinsics);
    ("interp DO semantics", `Quick, test_interp_do_semantics);
    ("interp goto loop", `Quick, test_interp_goto_loop);
    ("interp call by reference", `Quick, test_interp_call_by_reference);
    ("interp array section passing", `Quick, test_interp_array_section_passing);
    ("interp adjustable dims order", `Quick, test_interp_adjustable_dims_any_order);
    ("interp common blocks", `Quick, test_interp_common_blocks);
    ("interp function call", `Quick, test_interp_function_call);
    ("interp fuel", `Quick, test_interp_fuel);
    ("interp deterministic", `Quick, test_interp_determinism);
    ("parallel timing preserves semantics", `Quick, test_parallel_timing_preserves_semantics);
    ("parsim block schedule", `Quick, test_block_schedule);
    ("parsim block boundaries pinned", `Quick, test_block_boundaries);
    ("parsim doall overheads", `Quick, test_doall_time_overheads);
    ("parsim more procs faster", `Quick, test_speedup_more_procs) ]
