(* Network chaos: the seeded fault-injecting transport
   (Serve.Chaosnet) against a live in-process daemon.  The contract
   under test is the PR-7 robustness story end to end: every transport
   fault — bit flips, torn frames, mid-frame disconnects, stalls — is
   contained to the guilty session, the daemon never aborts, and a
   retrying client converges to byte-identical results. *)

let smoke_source =
  "      PROGRAM SMOKE\n\
   \      INTEGER I, N\n\
   \      PARAMETER (N = 16)\n\
   \      REAL A(16), B(16)\n\
   \      DO I = 1, N\n\
   \        A(I) = I * 2.0\n\
   \      ENDDO\n\
   \      DO I = 1, N\n\
   \        B(I) = A(I) + 1.0\n\
   \      ENDDO\n\
   \      PRINT *, B(1)\n\
   \      END\n"

let reduce_source =
  "      PROGRAM REDUCE\n\
   \      INTEGER I\n\
   \      REAL S, A(32)\n\
   \      DO I = 1, 32\n\
   \        A(I) = I * 1.5\n\
   \      ENDDO\n\
   \      S = 0.0\n\
   \      DO I = 1, 32\n\
   \        S = S + A(I)\n\
   \      ENDDO\n\
   \      PRINT *, S\n\
   \      END\n"

let tmp_name base =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "polaris-chaosnet-%d-%s" (Unix.getpid ()) base)

let start_daemon ~socket =
  let stop = Atomic.make false in
  let ready = Atomic.make false in
  (* short idle timeout: a flipped length field can leave the daemon
     holding a forever-incomplete frame while the client waits for a
     reply that cannot come — idle eviction is the designed unstick *)
  let cfg =
    { (Serve.Daemon.default_cfg ()) with
      d_socket = socket;
      d_store_dir = None;
      d_poll_s = 0.01;
      d_idle_timeout_s = 0.3 }
  in
  let d =
    Domain.spawn (fun () ->
        Serve.Daemon.run ~stop
          ~on_ready:(fun () -> Atomic.set ready true)
          cfg)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  (d, stop)

(* the chaos plan is a pure function of the seed: two transports with
   the same seed make identical fault decisions for identical traffic *)
let test_chaos_transport_deterministic () =
  let run seed =
    let t = Serve.Chaosnet.create seed in
    let io = Serve.Chaosnet.io t in
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let wire = Serve.Protocol.frame (String.make 200 'x') in
    (try
       for _ = 1 to 25 do
         io.Serve.Client.io_send a wire
       done
     with Unix.Unix_error _ | Serve.Protocol.Malformed _ -> ());
    (try Unix.close a with Unix.Unix_error _ -> ());
    (try Unix.close b with Unix.Unix_error _ -> ());
    (t.Serve.Chaosnet.n_flips, t.n_drops, t.n_tears, t.n_delays)
  in
  Alcotest.(check bool) "same seed, same faults" true (run 42 = run 42);
  (* and the sweep range is not degenerate: some seed injects faults *)
  let f1, d1, t1, _ = run 7 in
  let f2, d2, t2, _ = run 8 in
  Alcotest.(check bool) "faults actually occur" true
    (f1 + d1 + t1 + f2 + d2 + t2 > 0)

(* the tentpole sweep: 100 seeds of transport chaos against one
   daemon.  Every retried client must converge to the byte-exact
   from-scratch output; the daemon must survive all of it and go down
   gracefully afterwards. *)
let test_chaos_sweep_converges () =
  let socket = tmp_name "sweep.sock" in
  let sources = [ ("smoke", smoke_source); ("reduce", reduce_source) ] in
  let config = Core.Config.polaris ~procs:8 () in
  (* expectations first: the from-scratch compile clears the shared
     caches, so it must not race the daemon *)
  Util.Cachectl.clear_all ();
  let expected = Serve.Chaosnet.expected_outputs config sources in
  let d, stop = start_daemon ~socket in
  let sweep =
    Serve.Chaosnet.run_sweep ~first_seed:1 ~seeds:100 ~retries:16
      ~deadline_s:5.0 ~socket ~expected sources
  in
  Atomic.set stop true;
  let report = Domain.join d in
  (* the daemon outlived every fault and exited cleanly *)
  Alcotest.(check bool) "daemon never aborted" true
    report.Serve.Daemon.r_graceful;
  Alcotest.(check int) "all seeds ran" 100 sweep.Serve.Chaosnet.sw_seeds;
  Alcotest.(check int) "every compile attempted" (2 * 100)
    sweep.Serve.Chaosnet.sw_compiles;
  (* convergence: byte-identical or nothing — a wrong result is the
     one outcome chaos must never produce *)
  Alcotest.(check int) "zero mismatched results" 0
    sweep.Serve.Chaosnet.sw_mismatched;
  Alcotest.(check int) "every retried client converged" 0
    sweep.Serve.Chaosnet.sw_gave_up;
  Alcotest.(check int) "converged = attempted" sweep.Serve.Chaosnet.sw_compiles
    sweep.Serve.Chaosnet.sw_converged;
  (* the sweep was not a placebo: all four fault kinds fired *)
  Alcotest.(check bool) "flips injected" true (sweep.Serve.Chaosnet.sw_flips > 0);
  Alcotest.(check bool) "drops injected" true (sweep.Serve.Chaosnet.sw_drops > 0);
  Alcotest.(check bool) "tears injected" true (sweep.Serve.Chaosnet.sw_tears > 0);
  Alcotest.(check bool) "delays injected" true
    (sweep.Serve.Chaosnet.sw_delays > 0);
  Util.Cachectl.clear_all ()

(* fault containment at the session level: a chaos session that dies
   mid-frame must not poison the next clean session *)
let test_chaos_contained_to_guilty_session () =
  let socket = tmp_name "contain.sock" in
  Util.Cachectl.clear_all ();
  let d, stop = start_daemon ~socket in
  (* a handful of hostile sessions, no retries: many will fail *)
  for seed = 1 to 10 do
    let chaos = Serve.Chaosnet.create ~p_flip:0.3 ~p_drop:0.2 seed in
    match Serve.Client.connect ~io:(Serve.Chaosnet.io chaos) ~deadline_s:5.0 socket with
    | Error _ -> ()
    | Ok c ->
      ignore (Serve.Client.compile_source c ~label:"hostile" smoke_source);
      Serve.Client.close c
  done;
  (* a clean session right after must be served normally *)
  (match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok c ->
    (match Serve.Client.compile_source c ~label:"clean" smoke_source with
    | Ok r ->
      Alcotest.(check int) "clean session unaffected" 2
        (List.length r.co_verdicts)
    | Error m -> Alcotest.fail ("clean session failed: " ^ m));
    Serve.Client.close c);
  Atomic.set stop true;
  let report = Domain.join d in
  Alcotest.(check bool) "daemon graceful after hostile sessions" true
    report.Serve.Daemon.r_graceful;
  Util.Cachectl.clear_all ()

let tests =
  [ ("chaos transport is seed-deterministic", `Quick,
     test_chaos_transport_deterministic);
    ("chaos contained to the guilty session", `Quick,
     test_chaos_contained_to_guilty_session);
    ("100-seed chaos sweep converges byte-identically", `Slow,
     test_chaos_sweep_converges) ]
