(* Fault-injection (chaos) suite for the fail-safe pipeline: injected
   exceptions and IR corruptions must be contained and attributed by
   Core.Pipeline, budget exhaustion must degrade verdicts to serial
   "unknown" (never an unsound "independent"), the degraded output must
   stay oracle-equivalent to the original, and --strict must re-raise.
   Everything is seeded, so any failure replays from its seed. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let small_src = {|
      PROGRAM CHAOTIC
      INTEGER I, K
      REAL A(60), S
      K = 3
      S = 0.0
      DO 10 I = 1, 50
        A(I) = I * 0.5 + K
 10   CONTINUE
      DO 20 I = 1, 50
        S = S + A(I)
 20   CONTINUE
      PRINT *, S
      END
|}

(* ------------------------------------------------------------------ *)
(* Direct containment checks, one per injected pass                    *)

let test_containment_per_pass () =
  List.iter
    (fun pass ->
      let fault_hook p _prog =
        if p = pass then failwith ("boom in " ^ pass)
      in
      let t =
        Core.Pipeline.compile ~fault_hook (Core.Config.polaris ()) small_src
      in
      Alcotest.(check int)
        (pass ^ ": exactly one incident")
        1
        (List.length t.incidents);
      let i = List.hd t.incidents in
      Alcotest.(check string) (pass ^ ": attributed") pass i.inc_pass;
      Alcotest.(check bool) (pass ^ ": rolled back") true i.inc_rolled_back;
      (* the surviving program must still be consistent and runnable *)
      ignore (Fir.Consistency.check t.program);
      match Valid.Oracle.execute t.program with
      | Valid.Oracle.Finished _ -> ()
      | Valid.Oracle.Fault m ->
        Alcotest.failf "%s: degraded program faults: %s" pass m)
    [ "inline"; "constprop"; "induction"; "constprop2"; "deadcode";
      "parallelize" ]

let test_corruption_contained () =
  (* corrupt the IR inside the guard: the post-pass consistency check
     must catch it, roll back, and name the violation *)
  let fault_hook p (prog : Fir.Program.t) =
    if p = "induction" then
      match Fir.Program.units prog with
      | u :: _ -> u.pu_body <- List.hd u.pu_body :: u.pu_body
      | [] -> ()
  in
  let t =
    Core.Pipeline.compile ~fault_hook (Core.Config.polaris ()) small_src
  in
  Alcotest.(check int) "one incident" 1 (List.length t.incidents);
  let i = List.hd t.incidents in
  Alcotest.(check string) "attributed to induction" "induction" i.inc_pass;
  Alcotest.(check bool) "reason names the consistency violation" true
    (contains i.inc_reason "consistency violation");
  (* rollback erased the duplicate statement *)
  ignore (Fir.Consistency.check t.program)

let test_capability_disabled () =
  (* a fault in the first propagation round must disable the capability:
     constprop2 is skipped, so exactly one incident, not two *)
  let fired = ref [] in
  let fault_hook p _ =
    if p = "constprop" || p = "constprop2" then begin
      fired := p :: !fired;
      failwith "boom"
    end
  in
  let t =
    Core.Pipeline.compile ~fault_hook (Core.Config.polaris ()) small_src
  in
  Alcotest.(check (list string)) "only the first round ran" [ "constprop" ]
    !fired;
  Alcotest.(check int) "one incident" 1 (List.length t.incidents);
  Alcotest.(check (option string)) "capability disabled" (Some "constprop")
    (List.hd t.incidents).inc_disabled

let test_strict_reraises () =
  let fault_hook p _ = if p = "deadcode" then failwith "boom" in
  Alcotest.check_raises "strict re-raises" (Failure "boom") (fun () ->
      ignore
        (Core.Pipeline.compile ~strict:true ~fault_hook
           (Core.Config.polaris ()) small_src))

let test_clean_run_has_no_incidents () =
  let t = Core.Pipeline.compile (Core.Config.polaris ()) small_src in
  Alcotest.(check bool) "clean" true (Core.Pipeline.clean t);
  Alcotest.(check int) "no incidents" 0 (List.length t.incidents)

(* ------------------------------------------------------------------ *)
(* Budget exhaustion must degrade, never lie                           *)

(* writes A(51..99), reads A(1..49): independent, but only a completed
   range-test proof shows it (not a reduction, not privatizable); with a
   zero budget the test exhausts and the verdict must degrade to
   serial/unknown — never to "independent" *)
let budget_src = {|
      PROGRAM TIGHT
      INTEGER I
      REAL A(100)
      DO 10 I = 1, 49
        A(I+50) = A(I) + 1.0
 10   CONTINUE
      PRINT *, A(60)
      END
|}

let test_budget_exhaustion_degrades () =
  (* sanity: with the default budget the loop parallelizes *)
  let roomy = Core.Pipeline.compile (Core.Config.polaris ()) budget_src in
  Alcotest.(check bool) "roomy budget: parallel" true
    (List.exists
       (fun (l : Core.Pipeline.loop_result) -> l.report.parallel)
       roomy.loops);
  let before = (Dep.Driver.counters_snapshot ()).unknown in
  let cfg = { (Core.Config.polaris ()) with budget_steps = 0 } in
  let t = Core.Pipeline.compile cfg budget_src in
  Alcotest.(check bool) "no incidents (degradation is not a fault)" true
    (Core.Pipeline.clean t);
  List.iter
    (fun (l : Core.Pipeline.loop_result) ->
      Alcotest.(check bool)
        ("loop " ^ l.report.loop_index ^ " serial under zero budget")
        false l.report.parallel;
      Alcotest.(check bool) "reason says budget exhausted" true
        (contains l.report.reason "budget exhausted"))
    t.loops;
  Alcotest.(check bool) "unknown counter incremented" true
    ((Dep.Driver.counters_snapshot ()).unknown > before)

(* Non-linear subscripts (I*I+I vs I*I) grind through Symbolic.Compare:
   the full budget completes the monotonicity proof (the accesses really
   are disjoint), but a tiny step fuel must exhaust mid-proof and
   surface as a budget-unknown serial verdict — never an exception and
   never a wrong "independent" (satellite: ISSUE item 3). *)
let nonlinear_src = {|
      PROGRAM NLIN
      INTEGER I, N
      REAL A(10000)
      N = 90
      DO 10 I = 1, N
        A(I*I + I) = A(I*I) + 1.0
 10   CONTINUE
      PRINT *, A(2)
      END
|}

let test_nonlinear_budget_never_lies () =
  (* full budget: the proof completes, the loop is genuinely parallel —
     the budget machinery must not degrade verdicts it can afford *)
  let roomy = Core.Pipeline.compile (Core.Config.polaris ()) nonlinear_src in
  Alcotest.(check bool) "full budget: proof completes" true
    (List.exists
       (fun (l : Core.Pipeline.loop_result) -> l.report.parallel)
       roomy.loops);
  List.iter
    (fun steps ->
      let before = (Dep.Driver.counters_snapshot ()).unknown in
      let cfg = { (Core.Config.polaris ()) with budget_steps = steps } in
      let t = Core.Pipeline.compile cfg nonlinear_src in
      Alcotest.(check bool)
        (Fmt.str "steps=%d: contained" steps)
        true (Core.Pipeline.clean t);
      (* starved of fuel, the proof cannot finish: the verdict must land
         on the safe side (serial, budget-unknown), never on a guessed
         "independent" and never on an exception *)
      List.iter
        (fun (l : Core.Pipeline.loop_result) ->
          Alcotest.(check bool)
            (Fmt.str "steps=%d: loop %s serial" steps l.report.loop_index)
            false l.report.parallel;
          Alcotest.(check bool)
            (Fmt.str "steps=%d: reason says budget exhausted" steps)
            true
            (contains l.report.reason "budget exhausted"))
        t.loops;
      Alcotest.(check bool)
        (Fmt.str "steps=%d: unknown counter moved" steps)
        true
        ((Dep.Driver.counters_snapshot ()).unknown > before))
    [ 0; 5; 50 ]

(* ------------------------------------------------------------------ *)
(* The seeded sweep: >= 100 seeds across the suite corpus              *)

let test_sweep () =
  let sources = Valid.Chaos.default_sources () in
  let sweep =
    Valid.Chaos.run_sweep ~procs_list:[ 4 ] ~first_seed:1 ~n:100 sources
  in
  if not (Valid.Chaos.sweep_ok sweep) then
    Alcotest.failf "chaos sweep violated the containment contract:@.%a"
      Valid.Chaos.pp_sweep sweep;
  Alcotest.(check int) "100 seeds ran" 100 sweep.sw_seeds;
  (* injections must actually bite: the overwhelming majority of plans
     target passes that run, so containment events must be plentiful *)
  Alcotest.(check bool)
    (Fmt.str "most seeds contained a fault (%d/100)" sweep.sw_contained)
    true
    (sweep.sw_contained >= 60)

(* ------------------------------------------------------------------ *)
(* Fault containment with worker domains (satellite: multicore chaos)  *)

(* Injected faults and zero-budget plans must be contained, attributed
   and rolled back identically whether the dependence analysis runs
   serially or fans out across 4 domains: the outcome JSON (which
   carries the incidents, the attribution and the budget-unknown
   counter delta) must match field for field. *)
(* Statement ids are fresh on every compile (a global counter), so an
   incident message like "duplicate statement id 27481" differs between
   any two compiles of the same source — serial vs serial included.
   Mask only the digit run after "id " before comparing; every other
   number (seed, counters, deltas) must still match exactly. *)
let mask_sids s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 3 <= n && String.sub s !i 3 = "id " then begin
      Buffer.add_string buf "id #";
      i := !i + 3;
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let test_parallel_sweep_matches_serial () =
  let sources = Valid.Chaos.default_sources () in
  for seed = 1 to 12 do
    let _, source = List.nth sources ((seed - 1) mod List.length sources) in
    let plan = Valid.Chaos.make_plan seed in
    let serial = Valid.Chaos.run_plan plan source in
    let pooled =
      Util.Pool.with_jobs 4 (fun () -> Valid.Chaos.run_plan plan source)
    in
    Alcotest.(check string)
      (Fmt.str "seed %d: -j4 outcome = serial outcome" seed)
      (mask_sids (Valid.Chaos.outcome_json serial))
      (mask_sids (Valid.Chaos.outcome_json pooled))
  done

(* A fault raised {e inside} a worker domain mid-analysis: the verdict
   hook fires on the second sibling loop's index.  At -j4 both loops'
   analyses may already be in flight when K's task dies, but the
   deterministic merge must surface the same incident, the same
   rollback and the same counter deltas as the serial run, where loop
   I's analysis completed and loop K's raised. *)
let wfault_src = {|
      PROGRAM WFAULT
      INTEGER I, K
      REAL A(80), B(80)
      DO 10 I = 1, 60
        A(I) = I * 2.0
 10   CONTINUE
      DO 20 K = 1, 60
        B(K) = K * 3.0
 20   CONTINUE
      PRINT *, A(5), B(5)
      END
|}

let test_worker_fault_containment () =
  let with_hook f =
    let saved = !Dep.Driver.verdict_hook in
    Dep.Driver.verdict_hook :=
      (fun index -> if index = "K" then failwith "worker boom on K");
    Fun.protect ~finally:(fun () -> Dep.Driver.verdict_hook := saved) f
  in
  let signature () =
    let c0 = Dep.Driver.counters_snapshot () in
    let t = Core.Pipeline.compile (Core.Config.polaris ()) wfault_src in
    let c1 = Dep.Driver.counters_snapshot () in
    ( Core.Pipeline.output_source t,
      List.map
        (fun (l : Core.Pipeline.loop_result) ->
          (l.unit_name, l.report.loop_index, l.report.parallel, l.report.reason))
        t.loops,
      List.map
        (fun (i : Core.Pipeline.incident) ->
          (i.inc_pass, i.inc_reason, i.inc_rolled_back, i.inc_disabled))
        t.incidents,
      ( c1.range_proved - c0.range_proved,
        c1.linear_proved - c0.linear_proved,
        c1.unknown - c0.unknown ) )
  in
  let serial = with_hook signature in
  let (_, _, serial_incidents, _) = serial in
  (* the fault must actually fire and be contained+attributed *)
  Alcotest.(check int) "serial: one incident" 1 (List.length serial_incidents);
  let (pass, reason, rolled_back, _) = List.hd serial_incidents in
  Alcotest.(check string) "attributed to parallelize" "parallelize" pass;
  Alcotest.(check bool) "reason names the worker fault" true
    (contains reason "worker boom on K");
  Alcotest.(check bool) "rolled back" true rolled_back;
  let pooled =
    Util.Pool.with_jobs 8 (fun () -> with_hook signature)
  in
  Alcotest.(check bool) "-j8 containment identical to serial" true
    (serial = pooled)

let test_plan_determinism () =
  let p1 = Valid.Chaos.make_plan 42 and p2 = Valid.Chaos.make_plan 42 in
  Alcotest.(check string) "same seed, same plan"
    (Fmt.str "%a" Valid.Chaos.pp_plan p1)
    (Fmt.str "%a" Valid.Chaos.pp_plan p2);
  let o1 = Valid.Chaos.run_plan p1 small_src
  and o2 = Valid.Chaos.run_plan p2 small_src in
  Alcotest.(check string) "same seed, same outcome"
    (Valid.Chaos.outcome_json o1) (Valid.Chaos.outcome_json o2)

let tests =
  [ Alcotest.test_case "containment: every pass" `Quick
      test_containment_per_pass;
    Alcotest.test_case "containment: IR corruption" `Quick
      test_corruption_contained;
    Alcotest.test_case "containment: capability disabled" `Quick
      test_capability_disabled;
    Alcotest.test_case "strict mode re-raises" `Quick test_strict_reraises;
    Alcotest.test_case "clean run has no incidents" `Quick
      test_clean_run_has_no_incidents;
    Alcotest.test_case "budget exhaustion degrades to serial" `Quick
      test_budget_exhaustion_degrades;
    Alcotest.test_case "non-linear subscript never lies" `Quick
      test_nonlinear_budget_never_lies;
    Alcotest.test_case "seeded sweep (100 seeds)" `Slow test_sweep;
    Alcotest.test_case "parallel sweep matches serial" `Slow
      test_parallel_sweep_matches_serial;
    Alcotest.test_case "worker fault containment" `Quick
      test_worker_fault_containment;
    Alcotest.test_case "plans are deterministic" `Quick
      test_plan_determinism ]
