(* Tests for the dependence tests: GCD, Banerjee, SIV, the range test,
   and a brute-force soundness property for the whole driver. *)

open Fir
open Symbolic

let parse = Frontend.Parser.parse_string

(* run the parallelizer and return (index, parallel?) for each loop *)
let verdicts ~mode src =
  let p = parse src in
  ignore (Passes.Parallelize.run ~mode p);
  List.concat_map
    (fun (u : Punit.t) ->
      List.filter_map
        (fun (s : Ast.stmt) ->
          match s.kind with
          | Ast.Do d -> Some (d.index, d.info.par)
          | _ -> None)
        (Stmt.all_stmts u.pu_body))
    (Program.units p)

let check_verdicts name ~mode src expected =
  Alcotest.(check (list (pair string bool))) name expected (verdicts ~mode src)

(* ----- unit tests for the individual tests ----- *)

let aff coeffs const =
  List.fold_left
    (fun acc (v, c) -> Poly.add acc (Poly.scale (Util.Rat.of_int c) (Poly.var v)))
    (Poly.of_int const) coeffs

let test_gcd () =
  (* 2i vs 2i'+1: gcd 2 does not divide 1 -> independent *)
  Alcotest.(check bool) "2i vs 2i+1" true
    (Dep.Gcd_test.test ~indices:[ "I" ] [ aff [ ("I", 2) ] 0 ] [ aff [ ("I", 2) ] 1 ]
    = Dep.Gcd_test.Independent);
  Alcotest.(check bool) "i vs i+1 maybe" true
    (Dep.Gcd_test.test ~indices:[ "I" ] [ aff [ ("I", 1) ] 0 ] [ aff [ ("I", 1) ] 1 ]
    = Dep.Gcd_test.Maybe_dependent);
  (* constants: 3 vs 5 never equal *)
  Alcotest.(check bool) "const disjoint" true
    (Dep.Gcd_test.test ~indices:[] [ aff [] 3 ] [ aff [] 5 ] = Dep.Gcd_test.Independent)

let mk_loop name lo hi : Analysis.Loops.loop =
  let d : Ast.do_loop =
    { index = name; init = Ast.Int_lit lo; limit = Ast.Int_lit hi; step = None;
      body = []; info = Ast.fresh_loop_info () }
  in
  Analysis.Loops.describe (Stmt.mk (Ast.Do d)) d

let test_banerjee_directions () =
  let loops = [ mk_loop "I" 1 10 ] in
  (* A(I) vs A(I): carried only with distance 0 -> no <-direction dep *)
  Alcotest.(check bool) "A(I) self not carried" true
    (Dep.Banerjee.carries ~loops ~k:0 [ aff [ ("I", 1) ] 0 ] [ aff [ ("I", 1) ] 0 ]
    = Dep.Banerjee.Independent);
  (* A(I) vs A(I-1): distance 1 -> carried *)
  Alcotest.(check bool) "A(I) vs A(I-1) carried" true
    (Dep.Banerjee.carries ~loops ~k:0 [ aff [ ("I", 1) ] 0 ] [ aff [ ("I", 1) ] (-1) ]
    = Dep.Banerjee.Maybe_dependent);
  (* A(I) vs A(I+20): distance beyond loop bounds -> independent *)
  Alcotest.(check bool) "distance out of bounds" true
    (Dep.Banerjee.carries ~loops ~k:0 [ aff [ ("I", 1) ] 0 ] [ aff [ ("I", 1) ] 20 ]
    = Dep.Banerjee.Independent)

let test_siv () =
  (* same coefficient, symbolic bounds: distance reasoning *)
  Alcotest.(check bool) "A(2I) vs A(2I+1)" true
    (Dep.Siv.test ~enclosing:[] ~index:"I" ~inner:[]
       [ aff [ ("I", 2) ] 0 ] [ aff [ ("I", 2) ] 1 ]
    = Dep.Siv.Independent);
  Alcotest.(check bool) "A(I) self" true
    (Dep.Siv.test ~enclosing:[] ~index:"I" ~inner:[]
       [ aff [ ("I", 1) ] 0 ] [ aff [ ("I", 1) ] 0 ]
    = Dep.Siv.Independent);
  Alcotest.(check bool) "A(I) vs A(I+1) dependent" true
    (Dep.Siv.test ~enclosing:[] ~index:"I" ~inner:[]
       [ aff [ ("I", 1) ] 0 ] [ aff [ ("I", 1) ] 1 ]
    = Dep.Siv.Maybe_dependent);
  (* inner index present: no verdict *)
  Alcotest.(check bool) "inner index blocks SIV" true
    (Dep.Siv.test ~enclosing:[] ~index:"I" ~inner:[ "J" ]
       [ aff [ ("J", 1) ] 0 ] [ aff [ ("J", 1) ] 0 ]
    = Dep.Siv.Maybe_dependent)

let test_range_test_pair () =
  (* A(2i) vs A(2i+1) with symbolic n: globally interleaved, adjacent
     disjointness proves independence of the i loop *)
  let env =
    Range.refine Range.empty (Atom.var "I")
      (Range.between Poly.one (Poly.var "N"))
  in
  let f = [ aff [ ("I", 2) ] 0 ] and g = [ aff [ ("I", 2) ] 1 ] in
  Alcotest.(check bool) "2i vs 2i+1 disjoint" true
    (Dep.Range_test.test_pair env ~index:"I" ~inner:[] f g = Dep.Range_test.Disjoint);
  let h = [ aff [ ("I", 1) ] 1 ] in
  Alcotest.(check bool) "i vs i+1 overlap" true
    (Dep.Range_test.test_pair env ~index:"I" ~inner:[] [ aff [ ("I", 1) ] 0 ] h
    = Dep.Range_test.Overlap_possible)

(* ----- end-to-end verdicts on characteristic nests ----- *)

let test_polaris_nonlinear_stride () =
  (* the paper's motivating shape: stride n*i with symbolic n *)
  let src =
    "      PROGRAM T\n\
     \      INTEGER N, M, I, J\n\
     \      REAL A(10000)\n\
     \      N = 17\n\
     \      M = 9\n\
     \      CALL K(A, N, M)\n\
     \      END\n\
     \      SUBROUTINE K(A, N, M)\n\
     \      INTEGER N, M, I, J\n\
     \      REAL A(10000)\n\
     \      DO I = 0, M - 1\n\
     \        DO J = 1, N\n\
     \          A(N * I + J) = I * 1.0 + J\n\
     \        END DO\n\
     \      END DO\n\
     \      END\n"
  in
  (* in the subroutine, N is symbolic: baseline fails, range test works *)
  let vs = verdicts ~mode:Passes.Parallelize.Polaris src in
  Alcotest.(check bool) "polaris I parallel" true (List.assoc "I" vs);
  Alcotest.(check bool) "polaris J parallel" true (List.assoc "J" vs);
  let vb = verdicts ~mode:Passes.Parallelize.Baseline src in
  Alcotest.(check bool) "baseline I serial" false (List.assoc "I" vb);
  Alcotest.(check bool) "baseline J serial" false (List.assoc "J" vb)

let test_true_dependence_rejected () =
  (* both pipelines must keep a genuine recurrence serial *)
  let src =
    "      PROGRAM T\n\
     \      REAL A(100)\n\
     \      DO I = 2, 99\n\
     \        A(I) = A(I - 1) + 1.0\n\
     \      END DO\n\
     \      END\n"
  in
  check_verdicts "recurrence serial (polaris)" ~mode:Passes.Parallelize.Polaris src
    [ ("I", false) ];
  check_verdicts "recurrence serial (baseline)" ~mode:Passes.Parallelize.Baseline src
    [ ("I", false) ]

let test_anti_dependence_rejected () =
  let src =
    "      PROGRAM T\n\
     \      REAL A(100)\n\
     \      DO I = 1, 98\n\
     \        A(I) = A(I + 1) * 0.5\n\
     \      END DO\n\
     \      END\n"
  in
  check_verdicts "anti dep serial" ~mode:Passes.Parallelize.Polaris src
    [ ("I", false) ]

let test_ocean_permutation_needed () =
  (* Fig. 3: testing K directly fails; promoting J succeeds *)
  let src =
    "      PROGRAM T\n\
     \      INTEGER X, K, J, I\n\
     \      INTEGER Z(0:15)\n\
     \      REAL A(100000)\n\
     \      DO K = 0, X - 1\n\
     \        DO J = 0, Z(K)\n\
     \          DO I = 0, 128\n\
     \            A(258*X*J + 129*K + I + 1) = 0.5\n\
     \            A(258*X*J + 129*K + I + 1 + 129*X) = 1.0\n\
     \          END DO\n\
     \        END DO\n\
     \      END DO\n\
     \      END\n"
  in
  let p = parse src in
  ignore (Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p);
  let u = Program.main p in
  Stmt.iter
    (fun (s : Ast.stmt) ->
      match s.kind with
      | Ast.Do d when d.index = "K" && d.info.par ->
        Alcotest.(check bool) "K proof mentions promotion" true
          (let r = d.info.par_reason in
           let has sub =
             let n = String.length sub and h = String.length r in
             let rec go i = i + n <= h && (String.sub r i n = sub || go (i + 1)) in
             go 0
           in
           has "promoted")
      | _ -> ())
    u.pu_body

(* ----- brute-force soundness property ----- *)

(* Random structured loop nests; every loop the driver marks parallel is
   checked exhaustively: no two different iterations of that loop (with
   equal outer indices) may touch the same element when one access is a
   write.  Reduction-annotated loops are skipped (their flagged
   statements are exempt by construction). *)

let rec eval_expr env (e : Ast.expr) : int =
  match e with
  | Ast.Int_lit n -> n
  | Ast.Var v -> ( match List.assoc_opt v env with Some n -> n | None -> 1)
  | Ast.Unary (Ast.Neg, a) -> -eval_expr env a
  | Ast.Binary (Ast.Add, a, b) -> eval_expr env a + eval_expr env b
  | Ast.Binary (Ast.Sub, a, b) -> eval_expr env a - eval_expr env b
  | Ast.Binary (Ast.Mul, a, b) -> eval_expr env a * eval_expr env b
  | _ -> 0

type gen_access = { garr : string; gwrite : bool; gsub : Ast.expr }

(* build a random nest: depth 1-3 loops, 2-4 accesses *)
let nest_gen =
  let open QCheck2.Gen in
  let sub_gen depth =
    (* affine in up to [depth] indices with small coefficients, plus an
       occasional nonlinear product of two indices *)
    let idx = List.filteri (fun i _ -> i < depth) [ "I1"; "I2"; "I3" ] in
    let term =
      oneof
        [ map2
            (fun v c -> Ast.Binary (Ast.Mul, Ast.Int_lit c, Ast.Var v))
            (oneofl idx) (int_range (-2) 3);
          map (fun c -> Ast.Int_lit c) (int_range 0 6);
          (if depth >= 2 then
             return
               (Ast.Binary (Ast.Mul, Ast.Var "I1", Ast.Var "I2"))
           else map (fun c -> Ast.Int_lit c) (int_range 0 3)) ]
    in
    map
      (fun ts ->
        List.fold_left (fun acc t -> Ast.Binary (Ast.Add, acc, t)) (Ast.Int_lit 40) ts)
      (list_size (int_range 1 3) term)
  in
  let* depth = int_range 1 3 in
  let* bounds = list_repeat depth (int_range 1 4) in
  let* accs =
    list_size (int_range 2 4)
      (let* garr = oneofl [ "A"; "B" ] in
       let* gwrite = bool in
       let* gsub = sub_gen depth in
       return { garr; gwrite; gsub })
  in
  (* ensure at least one write *)
  let accs =
    match accs with
    | a :: rest -> { a with gwrite = true } :: rest
    | [] -> assert false
  in
  return (depth, bounds, accs)

let build_nest (depth, bounds, accs) : Punit.t =
  let u = Punit.create "T" in
  Symtab.define u.pu_symtab
    (Symtab.mk_symbol ~typ:Ast.Real ~dims:[ (Fir.Expr.int (-200), Fir.Expr.int 400) ] "A");
  Symtab.define u.pu_symtab
    (Symtab.mk_symbol ~typ:Ast.Real ~dims:[ (Fir.Expr.int (-200), Fir.Expr.int 400) ] "B");
  let stmts =
    List.map
      (fun g ->
        if g.gwrite then Stmt.assign (Ast.Ref (g.garr, [ g.gsub ])) (Fir.Expr.int 0)
        else Stmt.assign (Ast.Var "S") (Ast.Ref (g.garr, [ g.gsub ])))
      accs
  in
  let rec wrap k body =
    if k > depth then body
    else
      wrap (k + 1)
        [ Stmt.do_
            (Printf.sprintf "I%d" k)
            ~init:(Fir.Expr.int 1)
            ~limit:(Fir.Expr.int (List.nth bounds (k - 1)))
            body ]
  in
  (* innermost gets the statements: build from inside out *)
  let rec build k =
    if k > depth then stmts
    else
      [ Stmt.do_
          (Printf.sprintf "I%d" k)
          ~init:(Fir.Expr.int 1)
          ~limit:(Fir.Expr.int (List.nth bounds (k - 1)))
          (build (k + 1)) ]
  in
  ignore wrap;
  u.pu_body <- build 1;
  u

(* exhaustively: does loop [k] (1-based) carry a conflict that the
   marked parallelization (with [privates] privatized) cannot have?
   For privatized arrays output dependences are removed and reads are
   served by the loop-[k] iteration's own earlier write, so the check
   becomes: every read of a privatized array must be preceded — within
   the same iteration of loop [k] — by a write of the same element. *)
let brute_force_carries ?(privates = []) (depth, bounds, accs) k =
  let rec iterate idx env acc =
    if idx > depth then List.rev env :: acc
    else
      List.concat_map
        (fun v -> iterate (idx + 1) ((Printf.sprintf "I%d" idx, v) :: env) acc)
        (List.init (List.nth bounds (idx - 1)) (fun i -> i + 1))
  in
  let tuples = iterate 1 [] [] in
  let conflicts = ref false in
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 ->
          let outer_eq =
            List.for_all
              (fun j ->
                j >= k
                || List.assoc (Printf.sprintf "I%d" j) t1
                   = List.assoc (Printf.sprintf "I%d" j) t2)
              (List.init depth (fun i -> i + 1))
          in
          let k_name = Printf.sprintf "I%d" k in
          if outer_eq && List.assoc k_name t1 <> List.assoc k_name t2 then
            List.iter
              (fun a1 ->
                List.iter
                  (fun a2 ->
                    if
                      (a1.gwrite || a2.gwrite)
                      && String.equal a1.garr a2.garr
                      && eval_expr t1 a1.gsub = eval_expr t2 a2.gsub
                      && not (List.mem a1.garr privates)
                    then conflicts := true)
                  accs)
              accs)
        tuples)
    tuples;
  (* privatized arrays: reads must be covered within the same iteration
     of loop [k] — the private copy's scope.  A covering write may come
     from an earlier statement of the same innermost tuple, or from any
     strictly earlier inner-loop tuple with the same I1..Ik (inner loops
     run serially within one iteration of the parallelized loop). *)
  let indices = List.init depth (fun i -> Printf.sprintf "I%d" (i + 1)) in
  let prefix_eq t1 t2 =
    List.for_all
      (fun j ->
        let n = Printf.sprintf "I%d" j in
        List.assoc n t1 = List.assoc n t2)
      (List.init k (fun i -> i + 1))
  in
  let inner_lt t1 t2 =
    (* lexicographic < on the indices inside loop k *)
    let rec go = function
      | [] -> false
      | n :: rest ->
        let a = List.assoc n t1 and b = List.assoc n t2 in
        if a < b then true else if a > b then false else go rest
    in
    go (Util.Listx.drop k indices)
  in
  let covered_earlier t arr e =
    List.exists
      (fun t' ->
        prefix_eq t' t && inner_lt t' t
        && List.exists
             (fun a ->
               a.gwrite && String.equal a.garr arr && eval_expr t' a.gsub = e)
             accs)
      tuples
  in
  List.iter
    (fun t ->
      let written = Hashtbl.create 8 in
      List.iter
        (fun a ->
          if List.mem a.garr privates then
            let e = eval_expr t a.gsub in
            if a.gwrite then Hashtbl.replace written (a.garr, e) ()
            else if
              (not (Hashtbl.mem written (a.garr, e)))
              && not (covered_earlier t a.garr e)
            then conflicts := true)
        accs)
    tuples;
  !conflicts

(* render a generated nest so qcheck failures are reproducible by eye *)
let print_nest (depth, bounds, accs) =
  Fmt.str "depth=%d bounds=[%s] accs=[%s]" depth
    (String.concat ";" (List.map string_of_int bounds))
    (String.concat "; "
       (List.map
          (fun a ->
            Fmt.str "%s %s(%s)"
              (if a.gwrite then "W" else "R")
              a.garr
              (Fir.Expr.to_string a.gsub))
          accs))

let prop_driver_sound =
  QCheck2.Test.make ~name:"parallel verdicts are sound (brute force)" ~count:150
    ~print:print_nest nest_gen (fun spec ->
      let depth, _, _ = spec in
      let u = build_nest spec in
      let p = Program.create [ u ] in
      ignore (Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p);
      let ok = ref true in
      let pos = ref 0 in
      Stmt.iter
        (fun (s : Ast.stmt) ->
          match s.kind with
          | Ast.Do d ->
            incr pos;
            let k = !pos in
            if d.info.par && d.info.reductions = [] && k <= depth then
              if brute_force_carries ~privates:d.info.privates spec k then
                ok := false
          | _ -> ())
        u.pu_body;
      !ok)

let prop_baseline_sound =
  QCheck2.Test.make ~name:"baseline verdicts are sound (brute force)" ~count:150
    ~print:print_nest nest_gen (fun spec ->
      let depth, _, _ = spec in
      let u = build_nest spec in
      let p = Program.create [ u ] in
      ignore (Passes.Parallelize.run ~mode:Passes.Parallelize.Baseline p);
      let ok = ref true in
      let pos = ref 0 in
      Stmt.iter
        (fun (s : Ast.stmt) ->
          match s.kind with
          | Ast.Do d ->
            incr pos;
            let k = !pos in
            if d.info.par && d.info.reductions = [] && k <= depth then
              if brute_force_carries spec k then ok := false
          | _ -> ())
        u.pu_body;
      !ok)

let tests =
  [ ("gcd test", `Quick, test_gcd);
    ("banerjee directions", `Quick, test_banerjee_directions);
    ("strong SIV", `Quick, test_siv);
    ("range test pair", `Quick, test_range_test_pair);
    ("symbolic stride: polaris vs baseline", `Quick, test_polaris_nonlinear_stride);
    ("true dependence stays serial", `Quick, test_true_dependence_rejected);
    ("anti dependence stays serial", `Quick, test_anti_dependence_rejected);
    ("OCEAN needs promotion", `Quick, test_ocean_permutation_needed) ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_driver_sound; prop_baseline_sound ]
