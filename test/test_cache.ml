(* Cache soundness.  The compile-time caches (expression hash-consing,
   symbolic memo tables, dependence-verdict cache, COW pass guards) are
   pure performance levers: compiling with them enabled must be
   observationally identical to compiling with POLARIS_NO_CACHE=1 —
   same unparsed output, same per-loop verdicts, same oracle results.
   We pin that with a seeded property over random fuzz programs, and
   pin the invalidation protocol (every rollback bumps the cache
   generation, so stale hits after an incident are impossible). *)

let cfg ~caches = { (Core.Config.polaris ()) with caches }

let verdicts (t : Core.Pipeline.t) =
  List.map
    (fun (l : Core.Pipeline.loop_result) ->
      ( l.unit_name,
        l.report.loop_index,
        l.report.parallel,
        l.report.speculative,
        l.report.reason ))
    t.loops

(* compile one fuzz program twice — caches on and caches off — and
   check every observable agrees *)
let check_seed ?(oracle = false) seed =
  let src = Test_fuzz.gen_program (Util.Prng.create seed) in
  let cached = Core.Pipeline.compile (cfg ~caches:true) src in
  let uncached = Core.Pipeline.compile (cfg ~caches:false) src in
  let same_output =
    String.equal
      (Core.Pipeline.output_source cached)
      (Core.Pipeline.output_source uncached)
  in
  let same_verdicts = verdicts cached = verdicts uncached in
  let same_oracle =
    (not oracle)
    ||
    let run (t : Core.Pipeline.t) =
      Valid.Oracle.differential ~procs_list:[ 2 ] ~seeds:[ seed land 0xff ]
        ~original:(Frontend.Parser.parse_string src)
        ~transformed:t.program ()
    in
    let rc = run cached and ru = run uncached in
    Valid.Oracle.equivalent rc = Valid.Oracle.equivalent ru
    && rc.checks = ru.checks
    && List.length rc.failures = List.length ru.failures
  in
  if not same_output then
    Printf.eprintf "seed %d: cached/uncached outputs diverge\n%!" seed;
  if not same_verdicts then
    Printf.eprintf "seed %d: cached/uncached verdicts diverge\n%!" seed;
  if not same_oracle then
    Printf.eprintf "seed %d: cached/uncached oracle reports diverge\n%!" seed;
  same_output && same_verdicts && same_oracle

(* 100 seeded random programs: byte-identical output and identical
   verdicts; every 10th seed additionally cross-checked under the
   differential execution oracle (it interprets the program, so we
   sample to keep the suite fast) *)
let test_property_100_seeds () =
  for seed = 1 to 100 do
    Alcotest.(check bool)
      (Printf.sprintf "seed %d" seed)
      true
      (check_seed ~oracle:(seed mod 10 = 0) seed)
  done

(* the registry codes are the programs the bench measures; pin them too *)
let test_suite_codes () =
  List.iter
    (fun (c : Suite.Code.t) ->
      let cached = Core.Pipeline.compile (cfg ~caches:true) c.source in
      let uncached = Core.Pipeline.compile (cfg ~caches:false) c.source in
      Alcotest.(check string)
        (c.name ^ " output")
        (Core.Pipeline.output_source uncached)
        (Core.Pipeline.output_source cached);
      Alcotest.(check bool)
        (c.name ^ " verdicts")
        true
        (verdicts cached = verdicts uncached))
    Suite.Registry.all

(* a successful guarded pass retires pre-pass cache entries *)
let test_success_bumps_generation () =
  let src = Test_fuzz.gen_program (Util.Prng.create 42) in
  let p = Frontend.Parser.parse_string src in
  let gen0 = !Util.Cachectl.generation in
  let t = Core.Pipeline.run (cfg ~caches:true) p in
  Alcotest.(check bool) "clean run" true (Core.Pipeline.clean t);
  Alcotest.(check bool)
    "generation advanced" true
    (!Util.Cachectl.generation > gen0)

(* chaos: an injected fault must roll the pass back AND bump the cache
   generation, so no cache entry computed from the corrupted / discarded
   program state can ever be served afterwards *)
let test_rollback_bumps_generation () =
  let src = Test_fuzz.gen_program (Util.Prng.create 1996) in
  let p = Frontend.Parser.parse_string src in
  let gen0 = !Util.Cachectl.generation in
  let fault_hook pass _ =
    if String.equal pass "constprop" then failwith "chaos: injected fault"
  in
  let t = Core.Pipeline.run ~fault_hook (cfg ~caches:true) p in
  Alcotest.(check bool) "incident recorded" true (t.incidents <> []);
  Alcotest.(check bool)
    "rolled back" true
    (List.for_all
       (fun (i : Core.Pipeline.incident) -> i.inc_rolled_back)
       t.incidents);
  Alcotest.(check bool)
    "generation advanced past rollback" true
    (!Util.Cachectl.generation > gen0)

(* full chaos harness run with the caches on: containment, attribution
   and the oracle must all still hold, and the generation must advance *)
let test_chaos_plan_with_caches () =
  Util.Cachectl.with_enabled true @@ fun () ->
  let _, source = List.hd (Valid.Chaos.default_sources ()) in
  let plan =
    { Valid.Chaos.pl_seed = 7;
      pl_injections = [ ("constprop", Valid.Chaos.Raise_exn) ];
      pl_zero_budget = false }
  in
  let gen0 = !Util.Cachectl.generation in
  let outcome = Valid.Chaos.run_plan ~config:(cfg ~caches:true) plan source in
  Alcotest.(check bool) "outcome ok" true (Valid.Chaos.outcome_ok outcome);
  Alcotest.(check bool)
    "incident contained" true
    (outcome.oc_incidents <> []);
  Alcotest.(check bool)
    "generation advanced" true
    (!Util.Cachectl.generation > gen0)

(* budget replay plumbing: [afford] must not mutate, [used] must track
   spend — the cache hit path depends on both *)
let test_budget_afford_used () =
  let b = Util.Budget.create ~steps:10 () in
  Alcotest.(check int) "nothing used yet" 0 (Util.Budget.used b);
  Alcotest.(check bool) "can afford 5" true (Util.Budget.afford b 5);
  Alcotest.(check bool) "cannot afford 11" false (Util.Budget.afford b 11);
  Alcotest.(check bool) "afford did not spend" true (Util.Budget.used b = 0);
  Alcotest.(check bool) "afford did not exhaust" false (Util.Budget.exhausted b);
  ignore (Util.Budget.spend b 4 : bool);
  Alcotest.(check int) "used tracks spend" 4 (Util.Budget.used b);
  Alcotest.(check bool) "can afford remaining 6" true (Util.Budget.afford b 6);
  Alcotest.(check bool) "cannot afford 7" false (Util.Budget.afford b 7);
  ignore (Util.Budget.spend b 7 : bool);
  Alcotest.(check bool) "overspend is sticky" true (Util.Budget.exhausted b);
  Alcotest.(check bool) "exhausted affords nothing" false
    (Util.Budget.afford b 0)

let tests =
  [ ("cached vs uncached, 100 fuzz seeds", `Slow, test_property_100_seeds);
    ("cached vs uncached, suite codes", `Quick, test_suite_codes);
    ("success bumps cache generation", `Quick, test_success_bumps_generation);
    ("rollback bumps cache generation", `Quick, test_rollback_bumps_generation);
    ("chaos plan with caches on", `Quick, test_chaos_plan_with_caches);
    ("budget afford/used", `Quick, test_budget_afford_used) ]
