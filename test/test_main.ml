(* Test runner: one alcotest binary over every library of the
   reproduction. *)

let () =
  Alcotest.run "polaris-repro"
    [ ("util", Test_util.tests);
      ("fir", Test_fir.tests);
      ("frontend", Test_frontend.tests);
      ("symbolic", Test_symbolic.tests);
      ("machine", Test_machine.tests);
      ("analysis", Test_analysis.tests);
      ("dep", Test_dep.tests);
      ("passes", Test_passes.tests);
      ("runtime", Test_runtime.tests);
      ("parexec", Test_parexec.tests);
      ("core", Test_core.tests);
      ("suite", Test_suite.tests);
      ("fuzz", Test_fuzz.tests);
      ("incremental", Test_incremental.tests);
      ("valid", Test_valid.tests);
      ("chaos", Test_chaos.tests);
      ("cache", Test_cache.tests);
      ("pool", Test_pool.tests);
      ("registry", Test_registry.tests);
      ("backend", Test_backend.tests);
      ("serve", Test_serve.tests);
      ("chaosnet", Test_chaosnet.tests);
      ("props", Test_props.tests) ]
