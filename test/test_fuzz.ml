(* End-to-end fuzzing: random structured Fortran programs through the
   full pipelines, with the interpreter as the semantic oracle.

   The generator builds programs from loops (constant bounds), IFs,
   scalar assignments, array writes and reduction-shaped updates, with
   subscripts constructed to stay within bounds.  Each program is
   unparsed to source (covering the unparser), compiled under each
   configuration, and executed serially and with parallel timing; the
   PRINT output and final array memory must match the original.  This is
   the whole-compiler analogue of the dependence-driver soundness
   property in test_dep.ml. *)

open Fir

(* ------------------------------------------------------------------ *)
(* Program generator (stateful, driven by the deterministic PRNG; the
   qcheck side only supplies a seed, so shrinking reduces seeds) *)

let gen_program (rand : Util.Prng.t) : string =
  let r = rand in
  let buf = Buffer.create 512 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "      PROGRAM FUZZ";
  line "      INTEGER I1, I2, I3, K1, K2, P";
  line "      REAL A(300), B(300), S1, S2, T";
  (* deterministic initialization *)
  line "      DO I1 = 1, 300";
  line "        A(I1) = I1 * 0.5";
  line "        B(I1) = 301 - I1";
  line "      END DO";
  line "      S1 = 0.0";
  line "      S2 = 1.0";
  line "      K1 = 0";
  line "      P = 3";
  (* random subscript over the in-scope indices: values stay in
     [1, 300] by construction: 100 + sum of terms in [-8, 24] x 3 *)
  let subscript depth =
    let idx = List.filteri (fun i _ -> i < depth) [ "I1"; "I2"; "I3" ] in
    let terms = Util.Prng.range r 0 2 in
    let base = Buffer.create 16 in
    Buffer.add_string base "100";
    for _ = 0 to terms do
      let c = Util.Prng.range r (-2) 4 in
      let sign = if c < 0 then "-" else "+" in
      match (idx, Util.Prng.range r 0 2) with
      | [], _ | _, 0 ->
        Buffer.add_string base (Fmt.str " + %d" (abs c))
      | idx, _ ->
        Buffer.add_string base
          (Fmt.str " %s %d * %s" sign (abs c) (Util.Prng.pick r idx))
    done;
    Buffer.contents base
  in
  let scalar () = Util.Prng.pick r [ "S1"; "S2"; "T"; "K1"; "K2" ] in
  let arr () = Util.Prng.pick r [ "A"; "B" ] in
  let rec stmts depth indent n =
    let pad = String.make indent ' ' in
    for _ = 1 to n do
      match Util.Prng.range r 0 9 with
      | 0 | 1 ->
        (* array write *)
        line "%s%s(%s) = %s(%s) * 0.9 + %d.0" pad (arr ()) (subscript depth)
          (arr ()) (subscript depth) (Util.Prng.range r 0 5)
      | 2 ->
        (* scalar temp *)
        line "%sT = %s(%s) + %d.0" pad (arr ()) (subscript depth)
          (Util.Prng.range r 0 3)
      | 3 ->
        (* reduction-shaped update *)
        line "%sS1 = S1 + %s(%s) * 0.25" pad (arr ()) (subscript depth)
      | 4 when depth >= 1 ->
        (* induction-shaped update, only inside loops *)
        line "%sK1 = K1 + %d" pad (Util.Prng.range r 1 3)
      | 5 when depth < 3 ->
        (* nested loop *)
        let v = Printf.sprintf "I%d" (depth + 1) in
        line "%sDO %s = 1, %d" pad v (Util.Prng.range r 1 4);
        stmts (depth + 1) (indent + 2) (Util.Prng.range r 1 3);
        line "%sEND DO" pad
      | 6 ->
        (* conditional *)
        line "%sIF (%s .GT. %d.0) THEN" pad (scalar ()) (Util.Prng.range r 0 9);
        stmts depth (indent + 2) (Util.Prng.range r 1 2);
        line "%sEND IF" pad
      | 7 ->
        line "%sS2 = MAX(S2, %s(%s))" pad (arr ()) (subscript depth)
      | 8 when depth >= 1 && Util.Prng.range r 0 1 = 0 ->
        (* geometric recurrence *)
        line "%sS2 = S2 * 0.5" pad
      | 8 ->
        line "%sK2 = MOD(K1 + %d, 7)" pad (Util.Prng.range r 0 10)
      | _ ->
        line "%s%s(%s) = S1 + S2 * 0.1" pad (arr ()) (subscript depth)
    done
  in
  (* top level: a few statements and loops *)
  stmts 0 6 (Util.Prng.range r 3 6);
  line "      PRINT *, S1, S2, K1, K2, A(100), B(150)";
  line "      END";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The oracle                                                          *)

let run_program ?(parallel = false) (p : Program.t) =
  let cfg = Machine.Interp.default_config ~parallel () in
  Machine.Interp.run_capture ~cfg p

let check_one (seed : int) : bool =
  let src = gen_program (Util.Prng.create seed) in
  let original = Frontend.Parser.parse_string src in
  let reference, ref_mem = run_program original in
  List.for_all
    (fun cfg ->
      let t = Core.Pipeline.compile cfg src in
      (* the transformed program must also unparse and re-parse *)
      let reparsed =
        Frontend.Parser.parse_string (Core.Pipeline.output_source t)
      in
      let serial, serial_mem = run_program t.program in
      let par, par_mem = run_program ~parallel:true t.program in
      let rep, rep_mem = run_program reparsed in
      (* the lib/valid translation-validation oracle as a second judge:
         ULP-tolerant, multiple machine sizes, plus a seeded initial
         store (safe here: single unit, no CALLs, so seeding by name is
         stable across the transformation) *)
      let oracle =
        Valid.Oracle.differential ~procs_list:[ 2; 8 ]
          ~seeds:[ seed land 0xFFFF ] ~original ~transformed:t.program ()
      in
      reference.output = serial.output
      && ref_mem = serial_mem
      && reference.output = par.output
      && ref_mem = par_mem
      && reference.output = rep.output
      && ref_mem = rep_mem
      && Valid.Oracle.equivalent oracle)
    [ Core.Config.polaris (); Core.Config.baseline () ]

let prop_pipeline_preserves_semantics =
  QCheck2.Test.make ~name:"full pipeline preserves semantics (fuzz)" ~count:120
    QCheck2.Gen.(int_range 0 1_000_000)
    check_one

(* a fixed regression battery with known-interesting seeds, so failures
   reproduce outside qcheck too *)
let test_fixed_seeds () =
  List.iter
    (fun seed ->
      Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true (check_one seed))
    [ 1; 7; 42; 1996; 271828; 314159; 999983 ]

let tests =
  [ ("fixed fuzz seeds", `Quick, test_fixed_seeds) ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_pipeline_preserves_semantics ]
