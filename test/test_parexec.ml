(* Tests for the real parallel executor (Machine.Parexec + the
   Fruntime.Specexec LRPD backend): serial interpretation is the
   semantic oracle at every machine size, the forced-failure LRPD path
   must genuinely checkpoint/restore, and reduction merges must be
   deterministic run-to-run. *)

let compile_polaris src =
  let t = Core.Pipeline.compile (Core.Config.polaris ()) src in
  t.Core.Pipeline.program

(* exact bit-for-bit comparison of storage snapshots (the ULP-tolerant
   Oracle.data_close is too lenient for the checkpoint round-trip) *)
let data_bits_equal (a : Machine.Storage.data) (b : Machine.Storage.data) =
  match (a, b) with
  | Machine.Storage.Iarr x, Machine.Storage.Iarr y -> x = y
  | Machine.Storage.Barr x, Machine.Storage.Barr y -> x = y
  | Machine.Storage.Farr x, Machine.Storage.Farr y ->
    Array.length x = Array.length y
    && (let ok = ref true in
        Array.iteri
          (fun i v ->
            if Int64.bits_of_float v <> Int64.bits_of_float y.(i) then
              ok := false)
          x;
        !ok)
  | _ -> false

let check_identity ?(cmp = Valid.Oracle.real_cmp) name reference run =
  let divs = Valid.Oracle.compare_outcomes cmp reference run in
  Alcotest.(check int)
    (Fmt.str "%s: no divergences (%a)" name
       (Fmt.list ~sep:(Fmt.any "; ") Valid.Oracle.pp_divergence)
       (List.filteri (fun i _ -> i < 3) divs))
    0 (List.length divs)

(* ------------------------------------------------------------------ *)
(* Direct DOALL execution: privatized temp, lastprivate copy-out       *)

let vec_src =
  "      PROGRAM VEC\n\
   \      INTEGER I, N\n\
   \      PARAMETER (N = 200)\n\
   \      REAL A(200), B(200), T\n\
   \      DO I = 1, N\n\
   \        A(I) = I * 1.5\n\
   \        B(I) = 0.0\n\
   \      END DO\n\
   \      DO I = 1, N\n\
   \        T = A(I) * 2.0\n\
   \        B(I) = T + 1.0\n\
   \      END DO\n\
   \      PRINT *, B(1), B(200), T\n\
   \      END\n"

let test_doall_executes_for_real () =
  let p = compile_polaris vec_src in
  let reference = Valid.Oracle.execute p in
  List.iter
    (fun procs ->
      let run, stats = Valid.Oracle.execute_real ~procs p in
      check_identity (Fmt.str "vec p=%d" procs) reference run;
      if procs > 1 then begin
        Alcotest.(check bool)
          (Fmt.str "p=%d: regions actually forked" procs)
          true (stats.Machine.Parexec.regions >= 1);
        Alcotest.(check bool)
          (Fmt.str "p=%d: iterations ran on domains" procs)
          true
          (stats.Machine.Parexec.par_iters >= 200)
      end)
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Reductions: correct vs serial, deterministic run-to-run             *)

let red_src =
  "      PROGRAM RED\n\
   \      INTEGER I, N, KS\n\
   \      PARAMETER (N = 1000)\n\
   \      REAL A(1000), S, PMAX\n\
   \      DO I = 1, N\n\
   \        A(I) = MOD(I * 7, 13) * 0.1 + 0.01\n\
   \      END DO\n\
   \      S = 0.0\n\
   \      PMAX = 0.0\n\
   \      KS = 0\n\
   \      DO I = 1, N\n\
   \        S = S + A(I) * 1.1\n\
   \        PMAX = MAX(PMAX, A(I))\n\
   \        KS = KS + MOD(I, 3)\n\
   \      END DO\n\
   \      PRINT *, S, PMAX, KS\n\
   \      END\n"

let test_reductions_match_serial () =
  let p = compile_polaris red_src in
  let reference = Valid.Oracle.execute p in
  List.iter
    (fun procs ->
      let run, _ = Valid.Oracle.execute_real ~procs p in
      check_identity (Fmt.str "red p=%d" procs) reference run)
    [ 2; 4; 8 ]

let test_reduction_merge_deterministic () =
  let p = compile_polaris red_src in
  let first, stats = Valid.Oracle.execute_real ~procs:4 p in
  Alcotest.(check bool) "at least one real region" true
    (stats.Machine.Parexec.regions >= 1);
  for i = 1 to 3 do
    let again, _ = Valid.Oracle.execute_real ~procs:4 p in
    (* bit-for-bit: the domain-order merge leaves no room for run-to-run
       float wobble, whatever the domains' interleaving was *)
    check_identity ~cmp:{ Valid.Oracle.ulp_tol = 0; rel_tol = 0.0 }
      (Fmt.str "rerun %d identical" i)
      first again
  done

(* ------------------------------------------------------------------ *)
(* LRPD speculation: success commits, failure restores bit-for-bit     *)

let spec_program ~collide =
  let p = Frontend.Parser.parse_string (Test_runtime.spec_src ~collide) in
  ignore (Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p);
  p

let test_speculation_success_commits () =
  let p = spec_program ~collide:false in
  let reference = Valid.Oracle.execute p in
  let run, stats = Valid.Oracle.execute_real ~procs:4 p in
  check_identity "spec success" reference run;
  Alcotest.(check bool) "speculation attempted" true
    (stats.Machine.Parexec.spec_attempts >= 1);
  Alcotest.(check bool) "speculation succeeded" true
    (stats.Machine.Parexec.spec_success >= 1);
  Alcotest.(check int) "no failures" 0 stats.Machine.Parexec.spec_failures;
  match
    List.find_opt
      (fun (e : Machine.Parexec.spec_event) ->
        e.se_verdict = Machine.Parexec.Spec_parallel)
      stats.Machine.Parexec.events
  with
  | None -> Alcotest.fail "no successful speculative event recorded"
  | Some e ->
    Alcotest.(check (list string)) "tested array" [ "D" ] e.se_arrays;
    Alcotest.(check int) "all 64 iterations speculated" 64 e.se_trips;
    Alcotest.(check bool) "no restore on success" true
      (e.se_after_restore = [])

let test_speculation_failure_restores_bitwise () =
  let p = spec_program ~collide:true in
  let reference = Valid.Oracle.execute p in
  let run, stats = Valid.Oracle.execute_real ~procs:4 p in
  (* semantics: the rollback + serial re-run must be indistinguishable
     from never having speculated *)
  check_identity "spec failure" reference run;
  Alcotest.(check bool) "speculation failed" true
    (stats.Machine.Parexec.spec_failures >= 1);
  Alcotest.(check int) "nothing committed speculatively" 0
    stats.Machine.Parexec.spec_success;
  match
    List.find_opt
      (fun (e : Machine.Parexec.spec_event) ->
        e.se_verdict <> Machine.Parexec.Spec_parallel)
      stats.Machine.Parexec.events
  with
  | None -> Alcotest.fail "no failing speculative event recorded"
  | Some e ->
    Alcotest.(check bool) "flow dependence detected" true
      (e.se_verdict = Machine.Parexec.Spec_fail);
    Alcotest.(check bool) "checkpointed the tested array" true
      (List.mem_assoc "D" e.se_checkpoints);
    (* the load-bearing assertion: Storage.restore put back the exact
       bytes Storage.snapshot captured at region entry *)
    List.iter
      (fun (name, snap) ->
        match List.assoc_opt name e.se_after_restore with
        | None -> Alcotest.fail (name ^ ": no post-restore snapshot")
        | Some after ->
          Alcotest.(check bool)
            (name ^ ": checkpoint/restore round-trips bit-for-bit") true
            (data_bits_equal snap after))
      e.se_checkpoints

(* ------------------------------------------------------------------ *)
(* Fuzz: 100 seeds, parallel vs serial identity at p in {1,2,4,8}      *)

let fuzz_seeds = List.init 100 (fun i -> (i * 7919) + i)

let test_fuzz_parallel_vs_serial () =
  let regions = ref 0 in
  List.iter
    (fun seed ->
      let src = Test_fuzz.gen_program (Util.Prng.create seed) in
      let p = compile_polaris src in
      let reference = Valid.Oracle.execute p in
      List.iter
        (fun procs ->
          let run, stats = Valid.Oracle.execute_real ~procs p in
          regions := !regions + stats.Machine.Parexec.regions;
          check_identity (Fmt.str "seed %d p=%d" seed procs) reference run)
        [ 1; 2; 4; 8 ])
    fuzz_seeds;
  (* guard against the hook silently never firing: across 100 random
     programs at least some loops must have actually forked *)
  Alcotest.(check bool) "some regions executed on domains" true (!regions > 0)

(* the differential_real entry point used by `polaris validate` *)
let test_differential_real_report () =
  let p = compile_polaris vec_src in
  let report =
    Valid.Oracle.differential_real ~procs_list:[ 1; 2; 4 ] ~seeds:[ 42 ] p ()
  in
  Alcotest.(check bool) "equivalent" true (Valid.Oracle.equivalent report);
  Alcotest.(check int) "checks = stores x procs" 6 report.Valid.Oracle.checks

let tests =
  [ ("DOALL executes on domains", `Quick, test_doall_executes_for_real);
    ("reductions match serial", `Quick, test_reductions_match_serial);
    ("reduction merge deterministic", `Quick, test_reduction_merge_deterministic);
    ("LRPD success commits", `Quick, test_speculation_success_commits);
    ("LRPD failure restores bitwise", `Quick, test_speculation_failure_restores_bitwise);
    ("fuzz parallel vs serial (100 seeds)", `Slow, test_fuzz_parallel_vs_serial);
    ("differential_real report", `Quick, test_differential_real_report) ]
