#include <math.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

/* exponentiation helpers mirroring the interpreter's Value.pow */
static int ipow_ii(int b, int e) {
  if (e >= 0) { int r = 1; while (e-- > 0) r *= b; return r; }
  if (b == 1) return 1;
  if (b == -1) return (e % 2 == 0) ? 1 : -1;
  return 0;
}
static double dpow_i(double b, int e) {
  if (e >= 0) { double r = 1.0; while (e-- > 0) r *= b; return r; }
  return pow(b, (double)e);
}
static int imax_(int a, int b) { return a >= b ? a : b; }
static int imin_(int a, int b) { return a <= b ? a : b; }
static double dmax_(double a, double b) { return a >= b ? a : b; }
static double dmin_(double a, double b) { return a <= b ? a : b; }
static double dsign_(double a, double b) {
  double m = fabs(a);
  return b < 0.0 ? -m : m;
}
static int isign_(int a, int b) { return (int)dsign_((double)a, (double)b); }

static int C_GRID_X;
static void FTRVMT(double *A, int *Z);

int main(void) {
  double A[12000];
  memset(A, 0, sizeof A);
  double CHECK = 0;
  int FTRVMT_I = 0;
  int FTRVMT_J = 0;
  int FTRVMT_K = 0;
  int I = 0;
  int K = 0;
  int T = 0;
  int Z[16];
  memset(Z, 0, sizeof Z);
  C_GRID_X = 4;
  {
    const int init_1 = (int)(0);
    const int lim_1 = (int)(3);
    const int step_1 = 1;
    int n_1 = (lim_1 - init_1 + step_1) / step_1;
    if (n_1 < 0) n_1 = 0;
    if (n_1 > 0) {
#pragma omp parallel for private(K)
      for (int k_1 = 0; k_1 < n_1; k_1++) {
        K = init_1 + k_1 * step_1;
        Z[(int)(K)] = (5 + K);
      }
    }
    K = init_1 + n_1 * step_1;
  }
  {
    const int init_2 = (int)(1);
    const int lim_2 = (int)(12000);
    const int step_2 = 1;
    int n_2 = (lim_2 - init_2 + step_2) / step_2;
    if (n_2 < 0) n_2 = 0;
    if (n_2 > 0) {
#pragma omp parallel for private(I)
      for (int k_2 = 0; k_2 < n_2; k_2++) {
        I = init_2 + k_2 * step_2;
        A[((int)(I) - 1)] = (0.001 * I);
      }
    }
    I = init_2 + n_2 * step_2;
  }
  {
    const int init_3 = (int)(1);
    const int lim_3 = (int)(5);
    const int step_3 = 1;
    int n_3 = (lim_3 - init_3 + step_3) / step_3;
    if (n_3 < 0) n_3 = 0;
    for (int k_3 = 0; k_3 < n_3; k_3++) {
      T = init_3 + k_3 * step_3;
      {
        const int init_4 = (int)(0);
        const int lim_4 = (int)(3);
        const int step_4 = 1;
        int n_4 = (lim_4 - init_4 + step_4) / step_4;
        if (n_4 < 0) n_4 = 0;
        if (n_4 > 0) {
#pragma omp parallel for private(FTRVMT_K, FTRVMT_I, FTRVMT_J)
          for (int k_4 = 0; k_4 < n_4; k_4++) {
            FTRVMT_K = init_4 + k_4 * step_4;
            {
              const int init_5 = (int)(0);
              const int lim_5 = (int)(Z[(int)(FTRVMT_K)]);
              const int step_5 = 1;
              int n_5 = (lim_5 - init_5 + step_5) / step_5;
              if (n_5 < 0) n_5 = 0;
              if (n_5 > 0) {
#pragma omp parallel for private(FTRVMT_J, FTRVMT_I)
                for (int k_5 = 0; k_5 < n_5; k_5++) {
                  FTRVMT_J = init_5 + k_5 * step_5;
                  {
                    const int init_6 = (int)(0);
                    const int lim_6 = (int)(128);
                    const int step_6 = 1;
                    int n_6 = (lim_6 - init_6 + step_6) / step_6;
                    if (n_6 < 0) n_6 = 0;
                    if (n_6 > 0) {
#pragma omp parallel for private(FTRVMT_I)
                      for (int k_6 = 0; k_6 < n_6; k_6++) {
                        FTRVMT_I = init_6 + k_6 * step_6;
                        A[((int)(((((1032 * FTRVMT_J) + (129 * FTRVMT_K)) + FTRVMT_I) + 1)) - 1)] = ((A[((int)(((((1032 * FTRVMT_J) + (129 * FTRVMT_K)) + FTRVMT_I) + 1)) - 1)] * 0.99) + 0.5);
                        A[((int)((((((1032 * FTRVMT_J) + (129 * FTRVMT_K)) + FTRVMT_I) + 1) + 516)) - 1)] = (A[((int)(((((1032 * FTRVMT_J) + (129 * FTRVMT_K)) + FTRVMT_I) + 1)) - 1)] + 1.0);
                      }
                    }
                    FTRVMT_I = init_6 + n_6 * step_6;
                  }
                }
              }
              FTRVMT_J = init_5 + n_5 * step_5;
            }
          }
        }
        FTRVMT_K = init_4 + n_4 * step_4;
      }
    }
    T = init_3 + n_3 * step_3;
  }
  CHECK = 0.0;
  {
    const int init_7 = (int)(1);
    const int lim_7 = (int)(12000);
    const int step_7 = 1;
    int n_7 = (lim_7 - init_7 + step_7) / step_7;
    if (n_7 < 0) n_7 = 0;
    if (n_7 > 0) {
#pragma omp parallel for private(I) reduction(+:CHECK)
      for (int k_7 = 0; k_7 < n_7; k_7++) {
        I = init_7 + k_7 * step_7;
        CHECK = (CHECK + A[((int)(I) - 1)]);
      }
    }
    I = init_7 + n_7 * step_7;
  }
  printf("%g\n", CHECK);
  return 0;
}

static void FTRVMT(double *A, int *Z) {
  int I = 0;
  int J = 0;
  int K = 0;
  {
    const int init_1 = (int)(0);
    const int lim_1 = (int)((C_GRID_X - 1));
    const int step_1 = 1;
    int n_1 = (lim_1 - init_1 + step_1) / step_1;
    if (n_1 < 0) n_1 = 0;
    if (n_1 > 0) {
#pragma omp parallel for private(K, I, J)
      for (int k_1 = 0; k_1 < n_1; k_1++) {
        K = init_1 + k_1 * step_1;
        {
          const int init_2 = (int)(0);
          const int lim_2 = (int)(Z[(int)(K)]);
          const int step_2 = 1;
          int n_2 = (lim_2 - init_2 + step_2) / step_2;
          if (n_2 < 0) n_2 = 0;
          if (n_2 > 0) {
#pragma omp parallel for private(J, I)
            for (int k_2 = 0; k_2 < n_2; k_2++) {
              J = init_2 + k_2 * step_2;
              {
                const int init_3 = (int)(0);
                const int lim_3 = (int)(128);
                const int step_3 = 1;
                int n_3 = (lim_3 - init_3 + step_3) / step_3;
                if (n_3 < 0) n_3 = 0;
                if (n_3 > 0) {
#pragma omp parallel for private(I)
                  for (int k_3 = 0; k_3 < n_3; k_3++) {
                    I = init_3 + k_3 * step_3;
                    A[((int)((((((258 * C_GRID_X) * J) + (129 * K)) + I) + 1)) - 1)] = ((A[((int)((((((258 * C_GRID_X) * J) + (129 * K)) + I) + 1)) - 1)] * 0.99) + 0.5);
                    A[((int)(((((((258 * C_GRID_X) * J) + (129 * K)) + I) + 1) + (129 * C_GRID_X))) - 1)] = (A[((int)((((((258 * C_GRID_X) * J) + (129 * K)) + I) + 1)) - 1)] + 1.0);
                  }
                }
                I = init_3 + n_3 * step_3;
              }
            }
          }
          J = init_2 + n_2 * step_2;
        }
      }
    }
    K = init_1 + n_1 * step_1;
  }
  return;
}
