#include <math.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

/* exponentiation helpers mirroring the interpreter's Value.pow */
static int ipow_ii(int b, int e) {
  if (e >= 0) { int r = 1; while (e-- > 0) r *= b; return r; }
  if (b == 1) return 1;
  if (b == -1) return (e % 2 == 0) ? 1 : -1;
  return 0;
}
static double dpow_i(double b, int e) {
  if (e >= 0) { double r = 1.0; while (e-- > 0) r *= b; return r; }
  return pow(b, (double)e);
}
static int imax_(int a, int b) { return a >= b ? a : b; }
static int imin_(int a, int b) { return a <= b ? a : b; }
static double dmax_(double a, double b) { return a >= b ? a : b; }
static double dmin_(double a, double b) { return a <= b ? a : b; }
static double dsign_(double a, double b) {
  double m = fabs(a);
  return b < 0.0 ? -m : m;
}
static int isign_(int a, int b) { return (int)dsign_((double)a, (double)b); }


int main(void) {
  double A[100];
  memset(A, 0, sizeof A);
  double CHECK = 0;
  int I = 0;
  int IND[100];
  memset(IND, 0, sizeof IND);
  int J = 0;
  int K = 0;
  int L = 0;
  int M = 0;
  int P = 0;
  double R = 0;
  double RCUTS = 0;
  int T = 0;
  double W = 0;
  double X[2500];
  memset(X, 0, sizeof X);
  double Y[2500];
  memset(Y, 0, sizeof Y);
  double Z = 0;
  {
    const int init_1 = (int)(1);
    const int lim_1 = (int)(48);
    const int step_1 = 1;
    int n_1 = (lim_1 - init_1 + step_1) / step_1;
    if (n_1 < 0) n_1 = 0;
    if (n_1 > 0) {
#pragma omp parallel for private(I) lastprivate(J)
      for (int k_1 = 0; k_1 < n_1; k_1++) {
        I = init_1 + k_1 * step_1;
        {
          const int init_2 = (int)(1);
          const int lim_2 = (int)(48);
          const int step_2 = 1;
          int n_2 = (lim_2 - init_2 + step_2) / step_2;
          if (n_2 < 0) n_2 = 0;
          if (n_2 > 0) {
#pragma omp parallel for private(J)
            for (int k_2 = 0; k_2 < n_2; k_2++) {
              J = init_2 + k_2 * step_2;
              X[((int)(I) - 1) + (50 - 1 + 1) * (((int)(J) - 1))] = ((I * 0.4) + (J * 0.2));
              Y[((int)(I) - 1) + (50 - 1 + 1) * (((int)(J) - 1))] = ((I * 0.1) + (J * 0.3));
            }
          }
          J = init_2 + n_2 * step_2;
        }
      }
    }
    I = init_1 + n_1 * step_1;
  }
  {
    const int init_3 = (int)(1);
    const int lim_3 = (int)(4);
    const int step_3 = 1;
    int n_3 = (lim_3 - init_3 + step_3) / step_3;
    if (n_3 < 0) n_3 = 0;
    for (int k_3 = 0; k_3 < n_3; k_3++) {
      T = init_3 + k_3 * step_3;
      {
        const int init_4 = (int)(2);
        const int lim_4 = (int)(48);
        const int step_4 = 1;
        int n_4 = (lim_4 - init_4 + step_4) / step_4;
        if (n_4 < 0) n_4 = 0;
        if (n_4 > 0) {
#pragma omp parallel for private(I, A, IND, K, L, M, P, R) lastprivate(J)
          for (int k_4 = 0; k_4 < n_4; k_4++) {
            I = init_4 + k_4 * step_4;
            {
              const int init_5 = (int)(1);
              const int lim_5 = (int)((I - 1));
              const int step_5 = 1;
              int n_5 = (lim_5 - init_5 + step_5) / step_5;
              if (n_5 < 0) n_5 = 0;
              if (n_5 > 0) {
#pragma omp parallel for private(J, R)
                for (int k_5 = 0; k_5 < n_5; k_5++) {
                  J = init_5 + k_5 * step_5;
                  IND[((int)(J) - 1)] = 0;
                  A[((int)(J) - 1)] = (X[((int)(I) - 1) + (50 - 1 + 1) * (((int)(J) - 1))] - Y[((int)(I) - 1) + (50 - 1 + 1) * (((int)(J) - 1))]);
                  R = (A[((int)(J) - 1)] + 0.5);
                  if ((R < 20.0)) {
                    IND[((int)(J) - 1)] = 1;
                  }
                }
              }
              J = init_5 + n_5 * step_5;
            }
            P = 0;
            {
              const int init_6 = (int)(1);
              const int lim_6 = (int)((I - 1));
              const int step_6 = 1;
              int n_6 = (lim_6 - init_6 + step_6) / step_6;
              if (n_6 < 0) n_6 = 0;
              for (int k_6 = 0; k_6 < n_6; k_6++) {
                K = init_6 + k_6 * step_6;
                if ((IND[((int)(K) - 1)] != 0)) {
                  P = (P + 1);
                  IND[((int)(P) - 1)] = K;
                }
              }
              K = init_6 + n_6 * step_6;
            }
            {
              const int init_7 = (int)(1);
              const int lim_7 = (int)(P);
              const int step_7 = 1;
              int n_7 = (lim_7 - init_7 + step_7) / step_7;
              if (n_7 < 0) n_7 = 0;
              if (n_7 > 0) {
#pragma omp parallel for private(L, M)
                for (int k_7 = 0; k_7 < n_7; k_7++) {
                  L = init_7 + k_7 * step_7;
                  M = IND[((int)(L) - 1)];
                  X[((int)(I) - 1) + (50 - 1 + 1) * (((int)(L) - 1))] = (A[((int)(M) - 1)] + 1.5);
                }
              }
              L = init_7 + n_7 * step_7;
            }
          }
        }
        I = init_4 + n_4 * step_4;
      }
    }
    T = init_3 + n_3 * step_3;
  }
  CHECK = 0.0;
  {
    const int init_8 = (int)(1);
    const int lim_8 = (int)(48);
    const int step_8 = 1;
    int n_8 = (lim_8 - init_8 + step_8) / step_8;
    if (n_8 < 0) n_8 = 0;
    if (n_8 > 0) {
#pragma omp parallel for private(I) reduction(+:CHECK)
      for (int k_8 = 0; k_8 < n_8; k_8++) {
        I = init_8 + k_8 * step_8;
        CHECK = (CHECK + X[((int)(I) - 1) + (50 - 1 + 1) * (((int)(I) - 1))]);
      }
    }
    I = init_8 + n_8 * step_8;
  }
  printf("%g\n", CHECK);
  return 0;
}
