#include <math.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

/* exponentiation helpers mirroring the interpreter's Value.pow */
static int ipow_ii(int b, int e) {
  if (e >= 0) { int r = 1; while (e-- > 0) r *= b; return r; }
  if (b == 1) return 1;
  if (b == -1) return (e % 2 == 0) ? 1 : -1;
  return 0;
}
static double dpow_i(double b, int e) {
  if (e >= 0) { double r = 1.0; while (e-- > 0) r *= b; return r; }
  return pow(b, (double)e);
}
static int imax_(int a, int b) { return a >= b ? a : b; }
static int imin_(int a, int b) { return a <= b ? a : b; }
static double dmax_(double a, double b) { return a >= b ? a : b; }
static double dmin_(double a, double b) { return a <= b ? a : b; }
static double dsign_(double a, double b) {
  double m = fabs(a);
  return b < 0.0 ? -m : m;
}
static int isign_(int a, int b) { return (int)dsign_((double)a, (double)b); }


int main(void) {
  double CHECK = 0;
  double G[8192];
  memset(G, 0, sizeof G);
  int I = 0;
  int LNK[256];
  memset(LNK, 0, sizeof LNK);
  int S = 0;
  int T = 0;
  double W[256];
  memset(W, 0, sizeof W);
  {
    const int init_1 = (int)(1);
    const int lim_1 = (int)(256);
    const int step_1 = 1;
    int n_1 = (lim_1 - init_1 + step_1) / step_1;
    if (n_1 < 0) n_1 = 0;
    if (n_1 > 0) {
#pragma omp parallel for private(I)
      for (int k_1 = 0; k_1 < n_1; k_1++) {
        I = init_1 + k_1 * step_1;
        LNK[((int)(I) - 1)] = (((I * 37) % 8192) + 1);
        W[((int)(I) - 1)] = (0.5 + (0.001 * I));
      }
    }
    I = init_1 + n_1 * step_1;
  }
  {
    const int init_2 = (int)(1);
    const int lim_2 = (int)(8192);
    const int step_2 = 1;
    int n_2 = (lim_2 - init_2 + step_2) / step_2;
    if (n_2 < 0) n_2 = 0;
    if (n_2 > 0) {
#pragma omp parallel for private(I)
      for (int k_2 = 0; k_2 < n_2; k_2++) {
        I = init_2 + k_2 * step_2;
        G[((int)(I) - 1)] = 0.0;
      }
    }
    I = init_2 + n_2 * step_2;
  }
  {
    const int init_3 = (int)(1);
    const int lim_3 = (int)(4);
    const int step_3 = 1;
    int n_3 = (lim_3 - init_3 + step_3) / step_3;
    if (n_3 < 0) n_3 = 0;
    for (int k_3 = 0; k_3 < n_3; k_3++) {
      T = init_3 + k_3 * step_3;
      {
        const int init_4 = (int)(1);
        const int lim_4 = (int)(8);
        const int step_4 = 1;
        int n_4 = (lim_4 - init_4 + step_4) / step_4;
        if (n_4 < 0) n_4 = 0;
        for (int k_4 = 0; k_4 < n_4; k_4++) {
          S = init_4 + k_4 * step_4;
          {
            const int init_5 = (int)(1);
            const int lim_5 = (int)(256);
            const int step_5 = 1;
            int n_5 = (lim_5 - init_5 + step_5) / step_5;
            if (n_5 < 0) n_5 = 0;
            /* polaris: DOALL (serial in C: clause set not expressible in OpenMP C) */
            for (int k_5 = 0; k_5 < n_5; k_5++) {
              I = init_5 + k_5 * step_5;
              G[((int)(LNK[((int)(I) - 1)]) - 1)] = (G[((int)(LNK[((int)(I) - 1)]) - 1)] + (W[((int)(I) - 1)] * 0.5));
            }
            I = init_5 + n_5 * step_5;
          }
          {
            const int init_6 = (int)(1);
            const int lim_6 = (int)(256);
            const int step_6 = 1;
            int n_6 = (lim_6 - init_6 + step_6) / step_6;
            if (n_6 < 0) n_6 = 0;
            if (n_6 > 0) {
#pragma omp parallel for private(I)
              for (int k_6 = 0; k_6 < n_6; k_6++) {
                I = init_6 + k_6 * step_6;
                W[((int)(I) - 1)] = ((W[((int)(I) - 1)] * 0.9) + 0.01);
              }
            }
            I = init_6 + n_6 * step_6;
          }
        }
        S = init_4 + n_4 * step_4;
      }
    }
    T = init_3 + n_3 * step_3;
  }
  CHECK = 0.0;
  {
    const int init_7 = (int)(1);
    const int lim_7 = (int)(256);
    const int step_7 = 1;
    int n_7 = (lim_7 - init_7 + step_7) / step_7;
    if (n_7 < 0) n_7 = 0;
    if (n_7 > 0) {
#pragma omp parallel for private(I) reduction(+:CHECK)
      for (int k_7 = 0; k_7 < n_7; k_7++) {
        I = init_7 + k_7 * step_7;
        CHECK = ((CHECK + G[((int)(I) - 1)]) + W[((int)(I) - 1)]);
      }
    }
    I = init_7 + n_7 * step_7;
  }
  printf("%g\n", CHECK);
  return 0;
}
