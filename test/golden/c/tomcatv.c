#include <math.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

/* exponentiation helpers mirroring the interpreter's Value.pow */
static int ipow_ii(int b, int e) {
  if (e >= 0) { int r = 1; while (e-- > 0) r *= b; return r; }
  if (b == 1) return 1;
  if (b == -1) return (e % 2 == 0) ? 1 : -1;
  return 0;
}
static double dpow_i(double b, int e) {
  if (e >= 0) { double r = 1.0; while (e-- > 0) r *= b; return r; }
  return pow(b, (double)e);
}
static int imax_(int a, int b) { return a >= b ? a : b; }
static int imin_(int a, int b) { return a <= b ? a : b; }
static double dmax_(double a, double b) { return a >= b ? a : b; }
static double dmin_(double a, double b) { return a <= b ? a : b; }
static double dsign_(double a, double b) {
  double m = fabs(a);
  return b < 0.0 ? -m : m;
}
static int isign_(int a, int b) { return (int)dsign_((double)a, (double)b); }


int main(void) {
  double CHECK = 0;
  int I = 0;
  int J = 0;
  double RX[12];
  memset(RX, 0, sizeof RX);
  double RY[12];
  memset(RY, 0, sizeof RY);
  int T = 0;
  double X[2880];
  memset(X, 0, sizeof X);
  double XO[2880];
  memset(XO, 0, sizeof XO);
  double Y[2880];
  memset(Y, 0, sizeof Y);
  double YO[2880];
  memset(YO, 0, sizeof YO);
  {
    const int init_1 = (int)(1);
    const int lim_1 = (int)(240);
    const int step_1 = 1;
    int n_1 = (lim_1 - init_1 + step_1) / step_1;
    if (n_1 < 0) n_1 = 0;
    if (n_1 > 0) {
#pragma omp parallel for private(J) lastprivate(I)
      for (int k_1 = 0; k_1 < n_1; k_1++) {
        J = init_1 + k_1 * step_1;
        {
          const int init_2 = (int)(1);
          const int lim_2 = (int)(12);
          const int step_2 = 1;
          int n_2 = (lim_2 - init_2 + step_2) / step_2;
          if (n_2 < 0) n_2 = 0;
          if (n_2 > 0) {
#pragma omp parallel for private(I)
            for (int k_2 = 0; k_2 < n_2; k_2++) {
              I = init_2 + k_2 * step_2;
              X[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))] = (I + (0.1 * J));
              Y[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))] = (J - (0.05 * I));
              XO[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))] = X[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))];
              YO[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))] = Y[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))];
            }
          }
          I = init_2 + n_2 * step_2;
        }
      }
    }
    J = init_1 + n_1 * step_1;
  }
  {
    const int init_3 = (int)(1);
    const int lim_3 = (int)(4);
    const int step_3 = 1;
    int n_3 = (lim_3 - init_3 + step_3) / step_3;
    if (n_3 < 0) n_3 = 0;
    for (int k_3 = 0; k_3 < n_3; k_3++) {
      T = init_3 + k_3 * step_3;
      {
        const int init_4 = (int)(2);
        const int lim_4 = (int)(239);
        const int step_4 = 1;
        int n_4 = (lim_4 - init_4 + step_4) / step_4;
        if (n_4 < 0) n_4 = 0;
        if (n_4 > 0) {
#pragma omp parallel for private(J, RX, RY) lastprivate(I)
          for (int k_4 = 0; k_4 < n_4; k_4++) {
            J = init_4 + k_4 * step_4;
            {
              const int init_5 = (int)(2);
              const int lim_5 = (int)(11);
              const int step_5 = 1;
              int n_5 = (lim_5 - init_5 + step_5) / step_5;
              if (n_5 < 0) n_5 = 0;
              if (n_5 > 0) {
#pragma omp parallel for private(I)
                for (int k_5 = 0; k_5 < n_5; k_5++) {
                  I = init_5 + k_5 * step_5;
                  RX[((int)(I) - 1)] = (((((XO[((int)((I + 1)) - 1) + (12 - 1 + 1) * (((int)(J) - 1))] + XO[((int)((I - 1)) - 1) + (12 - 1 + 1) * (((int)(J) - 1))]) + XO[((int)(I) - 1) + (12 - 1 + 1) * (((int)((J + 1)) - 1))]) + XO[((int)(I) - 1) + (12 - 1 + 1) * (((int)((J - 1)) - 1))]) - (4.0 * XO[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))])) + (0.01 * sqrt(((XO[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))] * XO[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))]) + 1.0))));
                  RY[((int)(I) - 1)] = (((((YO[((int)((I + 1)) - 1) + (12 - 1 + 1) * (((int)(J) - 1))] + YO[((int)((I - 1)) - 1) + (12 - 1 + 1) * (((int)(J) - 1))]) + YO[((int)(I) - 1) + (12 - 1 + 1) * (((int)((J + 1)) - 1))]) + YO[((int)(I) - 1) + (12 - 1 + 1) * (((int)((J - 1)) - 1))]) - (4.0 * YO[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))])) + (0.01 * sqrt(((YO[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))] * YO[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))]) + 1.0))));
                }
              }
              I = init_5 + n_5 * step_5;
            }
            {
              const int init_6 = (int)(2);
              const int lim_6 = (int)(11);
              const int step_6 = 1;
              int n_6 = (lim_6 - init_6 + step_6) / step_6;
              if (n_6 < 0) n_6 = 0;
              if (n_6 > 0) {
#pragma omp parallel for private(I)
                for (int k_6 = 0; k_6 < n_6; k_6++) {
                  I = init_6 + k_6 * step_6;
                  X[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))] = (XO[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))] + (0.07 * RX[((int)(I) - 1)]));
                  Y[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))] = (YO[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))] + (0.07 * RY[((int)(I) - 1)]));
                }
              }
              I = init_6 + n_6 * step_6;
            }
          }
        }
        J = init_4 + n_4 * step_4;
      }
      {
        const int init_7 = (int)(2);
        const int lim_7 = (int)(239);
        const int step_7 = 1;
        int n_7 = (lim_7 - init_7 + step_7) / step_7;
        if (n_7 < 0) n_7 = 0;
        if (n_7 > 0) {
#pragma omp parallel for private(J) lastprivate(I)
          for (int k_7 = 0; k_7 < n_7; k_7++) {
            J = init_7 + k_7 * step_7;
            {
              const int init_8 = (int)(2);
              const int lim_8 = (int)(11);
              const int step_8 = 1;
              int n_8 = (lim_8 - init_8 + step_8) / step_8;
              if (n_8 < 0) n_8 = 0;
              if (n_8 > 0) {
#pragma omp parallel for private(I)
                for (int k_8 = 0; k_8 < n_8; k_8++) {
                  I = init_8 + k_8 * step_8;
                  XO[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))] = X[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))];
                  YO[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))] = Y[((int)(I) - 1) + (12 - 1 + 1) * (((int)(J) - 1))];
                }
              }
              I = init_8 + n_8 * step_8;
            }
          }
        }
        J = init_7 + n_7 * step_7;
      }
    }
    T = init_3 + n_3 * step_3;
  }
  CHECK = 0.0;
  {
    const int init_9 = (int)(1);
    const int lim_9 = (int)(240);
    const int step_9 = 1;
    int n_9 = (lim_9 - init_9 + step_9) / step_9;
    if (n_9 < 0) n_9 = 0;
    if (n_9 > 0) {
#pragma omp parallel for private(J) reduction(+:CHECK)
      for (int k_9 = 0; k_9 < n_9; k_9++) {
        J = init_9 + k_9 * step_9;
        CHECK = ((CHECK + X[((int)(6) - 1) + (12 - 1 + 1) * (((int)(J) - 1))]) + Y[((int)(6) - 1) + (12 - 1 + 1) * (((int)(J) - 1))]);
      }
    }
    J = init_9 + n_9 * step_9;
  }
  printf("%g\n", CHECK);
  return 0;
}
