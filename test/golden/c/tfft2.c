#include <math.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

/* exponentiation helpers mirroring the interpreter's Value.pow */
static int ipow_ii(int b, int e) {
  if (e >= 0) { int r = 1; while (e-- > 0) r *= b; return r; }
  if (b == 1) return 1;
  if (b == -1) return (e % 2 == 0) ? 1 : -1;
  return 0;
}
static double dpow_i(double b, int e) {
  if (e >= 0) { double r = 1.0; while (e-- > 0) r *= b; return r; }
  return pow(b, (double)e);
}
static int imax_(int a, int b) { return a >= b ? a : b; }
static int imin_(int a, int b) { return a <= b ? a : b; }
static double dmax_(double a, double b) { return a >= b ? a : b; }
static double dmin_(double a, double b) { return a <= b ? a : b; }
static double dsign_(double a, double b) {
  double m = fabs(a);
  return b < 0.0 ? -m : m;
}
static int isign_(int a, int b) { return (int)dsign_((double)a, (double)b); }

static void STEP(double *A, double *B, int *N2);

int main(void) {
  double A[512];
  memset(A, 0, sizeof A);
  double B[512];
  memset(B, 0, sizeof B);
  double CHECK = 0;
  int I = 0;
  int N2 = 0;
  int STEP_BR = 0;
  int STEP_I = 0;
  int T = 0;
  {
    const int init_1 = (int)(1);
    const int lim_1 = (int)(512);
    const int step_1 = 1;
    int n_1 = (lim_1 - init_1 + step_1) / step_1;
    if (n_1 < 0) n_1 = 0;
    if (n_1 > 0) {
#pragma omp parallel for private(I)
      for (int k_1 = 0; k_1 < n_1; k_1++) {
        I = init_1 + k_1 * step_1;
        A[((int)(I) - 1)] = (0.01 * I);
      }
    }
    I = init_1 + n_1 * step_1;
  }
  {
    const int init_2 = (int)(1);
    const int lim_2 = (int)(5);
    const int step_2 = 1;
    int n_2 = (lim_2 - init_2 + step_2) / step_2;
    if (n_2 < 0) n_2 = 0;
    for (int k_2 = 0; k_2 < n_2; k_2++) {
      T = init_2 + k_2 * step_2;
      {
        const int init_3 = (int)(1);
        const int lim_3 = (int)(256);
        const int step_3 = 1;
        int n_3 = (lim_3 - init_3 + step_3) / step_3;
        if (n_3 < 0) n_3 = 0;
        if (n_3 > 0) {
#pragma omp parallel for private(STEP_I)
          for (int k_3 = 0; k_3 < n_3; k_3++) {
            STEP_I = init_3 + k_3 * step_3;
            B[((int)(STEP_I) - 1)] = (A[((int)(((2 * STEP_I) - 1)) - 1)] + A[((int)((2 * STEP_I)) - 1)]);
            B[((int)((256 + STEP_I)) - 1)] = (A[((int)(((2 * STEP_I) - 1)) - 1)] - A[((int)((2 * STEP_I)) - 1)]);
          }
        }
        STEP_I = init_3 + n_3 * step_3;
      }
      {
        const int init_4 = (int)(1);
        const int lim_4 = (int)(512);
        const int step_4 = (int)(2);
        int n_4 = (lim_4 - init_4 + step_4) / step_4;
        if (n_4 < 0) n_4 = 0;
        for (int k_4 = 0; k_4 < n_4; k_4++) {
          STEP_I = init_4 + k_4 * step_4;
          STEP_BR = (((STEP_I * 317) % 511) + 1);
          A[((int)(STEP_BR) - 1)] = ((B[((int)(STEP_I) - 1)] * 0.7) + 0.01);
          A[((int)((STEP_BR + 1)) - 1)] = (B[((int)(STEP_I) - 1)] * 0.3);
        }
        STEP_I = init_4 + n_4 * step_4;
      }
    }
    T = init_2 + n_2 * step_2;
  }
  CHECK = 0.0;
  {
    const int init_5 = (int)(1);
    const int lim_5 = (int)(512);
    const int step_5 = 1;
    int n_5 = (lim_5 - init_5 + step_5) / step_5;
    if (n_5 < 0) n_5 = 0;
    if (n_5 > 0) {
#pragma omp parallel for private(I) reduction(+:CHECK)
      for (int k_5 = 0; k_5 < n_5; k_5++) {
        I = init_5 + k_5 * step_5;
        CHECK = (CHECK + A[((int)(I) - 1)]);
      }
    }
    I = init_5 + n_5 * step_5;
  }
  printf("%g\n", CHECK);
  return 0;
}

static void STEP(double *A, double *B, int *N2) {
  int BR = 0;
  int I = 0;
  {
    const int init_1 = (int)(1);
    const int lim_1 = (int)((*N2));
    const int step_1 = 1;
    int n_1 = (lim_1 - init_1 + step_1) / step_1;
    if (n_1 < 0) n_1 = 0;
    if (n_1 > 0) {
#pragma omp parallel for private(I)
      for (int k_1 = 0; k_1 < n_1; k_1++) {
        I = init_1 + k_1 * step_1;
        B[((int)(I) - 1)] = (A[((int)(((2 * I) - 1)) - 1)] + A[((int)((2 * I)) - 1)]);
        B[((int)(((*N2) + I)) - 1)] = (A[((int)(((2 * I) - 1)) - 1)] - A[((int)((2 * I)) - 1)]);
      }
    }
    I = init_1 + n_1 * step_1;
  }
  {
    const int init_2 = (int)(1);
    const int lim_2 = (int)((2 * (*N2)));
    const int step_2 = (int)(2);
    int n_2 = (lim_2 - init_2 + step_2) / step_2;
    if (n_2 < 0) n_2 = 0;
    for (int k_2 = 0; k_2 < n_2; k_2++) {
      I = init_2 + k_2 * step_2;
      BR = (((I * 317) % ((2 * (*N2)) - 1)) + 1);
      A[((int)(BR) - 1)] = ((B[((int)(I) - 1)] * 0.7) + 0.01);
      A[((int)((BR + 1)) - 1)] = (B[((int)(I) - 1)] * 0.3);
    }
    I = init_2 + n_2 * step_2;
  }
  return;
}
