      PROGRAM HYDRO2D
      INTEGER T
      REAL FL(56), RN(56, 44), RO(56, 44), VX(56, 44)
      PARAMETER (NI = 56)
      PARAMETER (NIT = 4)
      PARAMETER (NJ = 44)
CPOLARIS$ DOALL PRIVATE(I) LASTPRIVATE(I)
      DO J = 1, 44
CPOLARIS$ DOALL
        DO I = 1, 56
          RO(I, J) = 1.0 + 0.01 * I
          RN(I, J) = RO(I, J)
          VX(I, J) = 0.1 * J
        END DO
      END DO
      DO T = 1, 4
CPOLARIS$ DOALL PRIVATE(FL,I) LASTPRIVATE(I)
        DO J = 2, 43
CPOLARIS$ DOALL
          DO I = 1, 56
            FL(I) = 0.5 * (RO(I, J) * VX(I, J) + RO(I, J - 1) * VX(I, J - 1))
          END DO
CPOLARIS$ DOALL
          DO I = 2, 55
            RN(I, J) = RO(I, J) - 0.02 * (FL(I + 1) - FL(I))
          END DO
        END DO
CPOLARIS$ DOALL PRIVATE(I) LASTPRIVATE(I)
        DO J = 2, 43
CPOLARIS$ DOALL
          DO I = 2, 55
            RO(I, J) = RN(I, J)
          END DO
        END DO
        EK = 0.0
CPOLARIS$ DOALL PRIVATE(I) LASTPRIVATE(I) REDUCTION(+:EK/PRIVATE)
        DO J = 1, 44
CPOLARIS$ DOALL REDUCTION(+:EK/PRIVATE)
          DO I = 1, 56
            EK = EK + VX(I, J) * VX(I, J) * RO(I, J)
          END DO
        END DO
CPOLARIS$ DOALL PRIVATE(I) LASTPRIVATE(I)
        DO J = 2, 43
CPOLARIS$ DOALL
          DO I = 2, 55
            VX(I, J) = VX(I, J) + 0.001 * EK / (1.0 + RO(I, J))
          END DO
        END DO
      END DO
      PRINT *, EK
      END
