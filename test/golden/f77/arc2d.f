      PROGRAM ARC2D
      INTEGER COLSWP_J, T
      REAL COLSWP_W(48), Q(48, 32), S(48, 32)
      INTEGER COLSWP_JMAX
      PARAMETER (COLSWP_JMAX = 48)
      INTEGER COLSWP_KMAX
      PARAMETER (COLSWP_KMAX = 32)
      PARAMETER (JMAX = 48)
      PARAMETER (KMAX = 32)
      PARAMETER (NIT = 4)
CPOLARIS$ DOALL PRIVATE(J) LASTPRIVATE(J)
      DO K = 1, 32
CPOLARIS$ DOALL
        DO J = 1, 48
          Q(J, K) = J * 0.05 + K * 0.02
        END DO
      END DO
      DO T = 1, 4
CPOLARIS$ DOALL PRIVATE(J) LASTPRIVATE(J)
        DO K = 2, 31
CPOLARIS$ DOALL
          DO J = 2, 47
            S(J, K) = Q(J + 1, K) - 2.0 * Q(J, K) + Q(J - 1, K) + Q(J, K + 1) - 2.0 * Q(J, K) + Q(J, K - 1)
          END DO
        END DO
CPOLARIS$ DOALL PRIVATE(COLSWP_J,COLSWP_W)
        DO K = 2, 31
          COLSWP_W(1) = S(2, K)
          DO COLSWP_J = 2, 48
            COLSWP_W(COLSWP_J) = S(MIN(COLSWP_J, 47), K) + 0.4 * COLSWP_W(COLSWP_J - 1)
          END DO
CPOLARIS$ DOALL
          DO COLSWP_J = 2, 47
            Q(COLSWP_J, K) = Q(COLSWP_J, K) + 0.1 * COLSWP_W(COLSWP_J)
          END DO
        END DO
      END DO
      CHECK = 0.0
CPOLARIS$ DOALL REDUCTION(+:CHECK/PRIVATE)
      DO K = 1, 32
        CHECK = CHECK + Q(24, K)
      END DO
      PRINT *, CHECK
      END

      SUBROUTINE COLSWP(Q, S, K)
      REAL Q(48, 32), S(48, 32), W(48)
      PARAMETER (JMAX = 48)
      PARAMETER (KMAX = 32)
      W(1) = S(2, K)
      DO J = 2, 48
        W(J) = S(MIN(J, 47), K) + 0.4 * W(J - 1)
      END DO
CPOLARIS$ DOALL
      DO J = 2, 47
        Q(J, K) = Q(J, K) + 0.1 * W(J)
      END DO
      RETURN
      END
