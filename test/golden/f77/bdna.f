      PROGRAM BDNA
      INTEGER IND(100), P, T
      REAL A(100), X(50, 50), Y(50, 50)
      PARAMETER (N = 48)
      PARAMETER (NIT = 4)
CPOLARIS$ DOALL PRIVATE(J) LASTPRIVATE(J)
      DO I = 1, 48
CPOLARIS$ DOALL
        DO J = 1, 48
          X(I, J) = I * 0.4 + J * 0.2
          Y(I, J) = I * 0.1 + J * 0.3
        END DO
      END DO
      DO T = 1, 4
CPOLARIS$ DOALL PRIVATE(A,IND,J,K,L,M,P,R) LASTPRIVATE(J)
        DO I = 2, 48
CPOLARIS$ DOALL PRIVATE(R)
          DO J = 1, I - 1
            IND(J) = 0
            A(J) = X(I, J) - Y(I, J)
            R = A(J) + 0.5
            IF (R .LT. 20.0) THEN
              IND(J) = 1
            END IF
          END DO
          P = 0
          DO K = 1, I - 1
            IF (IND(K) .NE. 0) THEN
              P = P + 1
              IND(P) = K
            END IF
          END DO
CPOLARIS$ DOALL PRIVATE(M)
          DO L = 1, P
            M = IND(L)
            X(I, L) = A(M) + 1.5
          END DO
        END DO
      END DO
      CHECK = 0.0
CPOLARIS$ DOALL REDUCTION(+:CHECK/PRIVATE)
      DO I = 1, 48
        CHECK = CHECK + X(I, I)
      END DO
      PRINT *, CHECK
      END
