      PROGRAM TFFT2
      INTEGER STEP_BR, STEP_I, T
      REAL A(512), B(512)
      PARAMETER (NIT = 5)
CPOLARIS$ DOALL
      DO I = 1, 512
        A(I) = 0.01 * I
      END DO
      DO T = 1, 5
CPOLARIS$ DOALL
        DO STEP_I = 1, 256
          B(STEP_I) = A(2 * STEP_I - 1) + A(2 * STEP_I)
          B(256 + STEP_I) = A(2 * STEP_I - 1) - A(2 * STEP_I)
        END DO
        DO STEP_I = 1, 512, 2
          STEP_BR = MOD(STEP_I * 317, 511) + 1
          A(STEP_BR) = B(STEP_I) * 0.7 + 0.01
          A(STEP_BR + 1) = B(STEP_I) * 0.3
        END DO
      END DO
      CHECK = 0.0
CPOLARIS$ DOALL REDUCTION(+:CHECK/PRIVATE)
      DO I = 1, 512
        CHECK = CHECK + A(I)
      END DO
      PRINT *, CHECK
      END

      SUBROUTINE STEP(A, B, N2)
      INTEGER BR
      REAL A(512), B(512)
CPOLARIS$ DOALL
      DO I = 1, N2
        B(I) = A(2 * I - 1) + A(2 * I)
        B(N2 + I) = A(2 * I - 1) - A(2 * I)
      END DO
      DO I = 1, 2 * N2, 2
        BR = MOD(I * 317, 2 * N2 - 1) + 1
        A(BR) = B(I) * 0.7 + 0.01
        A(BR + 1) = B(I) * 0.3
      END DO
      RETURN
      END
