      PROGRAM WAVE5
      INTEGER IP(320), T
      REAL RHO(8192), VEL(320), XV(320)
      PARAMETER (NGRID = 8192)
      PARAMETER (NIT = 6)
      PARAMETER (NP = 320)
CPOLARIS$ DOALL
      DO K = 1, 320
        IP(K) = MOD(K * 29, 320) + 1
        XV(K) = 0.5 * K
        VEL(K) = 0.01 * K
      END DO
CPOLARIS$ DOALL
      DO I = 1, 8192
        RHO(I) = 0.0
      END DO
      DO T = 1, 6
CPOLARIS$ DOALL REDUCTION(+:RHO/EXPANDED)
        DO K = 1, 320
          RHO(IP(K)) = RHO(IP(K)) + 0.3
        END DO
        DO K = 1, 320
          XV(IP(K)) = XV(IP(K)) * 0.5 + VEL(K)
        END DO
CPOLARIS$ DOALL
        DO K = 1, 320
          VEL(K) = VEL(K) * 0.99
        END DO
      END DO
      CHECK = 0.0
CPOLARIS$ DOALL REDUCTION(+:CHECK/PRIVATE)
      DO K = 1, 320
        CHECK = CHECK + XV(K)
      END DO
      PRINT *, CHECK
      END
