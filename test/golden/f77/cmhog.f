      PROGRAM CMHOG
      INTEGER T
      REAL FLX(24), Q(24, 16, 16), RHO(24, 16, 16)
      PARAMETER (NI = 24)
      PARAMETER (NIT = 4)
      PARAMETER (NJ = 16)
      PARAMETER (NK = 16)
CPOLARIS$ DOALL PRIVATE(I,J) LASTPRIVATE(I,J)
      DO K = 1, 16
CPOLARIS$ DOALL PRIVATE(I) LASTPRIVATE(I)
        DO J = 1, 16
CPOLARIS$ DOALL
          DO I = 1, 24
            RHO(I, J, K) = 1.0 + 0.01 * I + 0.02 * J + 0.03 * K
            Q(I, J, K) = 0.5 + 0.005 * I
          END DO
        END DO
      END DO
      DO T = 1, 4
CPOLARIS$ DOALL PRIVATE(FLX,I,J) LASTPRIVATE(I,J)
        DO K = 2, 15
CPOLARIS$ DOALL PRIVATE(FLX,I) LASTPRIVATE(I)
          DO J = 2, 15
CPOLARIS$ DOALL
            DO I = 1, 24
              FLX(I) = RHO(I, J, K) * 0.4 + Q(I, J, K) * 0.3 + Q(I, J, MOD(K, 2) + 1) * 0.3
            END DO
CPOLARIS$ DOALL
            DO I = 2, 23
              RHO(I, J, K) = RHO(I, J, K) + 0.05 * (FLX(I + 1) - 2.0 * FLX(I) + FLX(I - 1))
            END DO
          END DO
        END DO
      END DO
      CHECK = 0.0
CPOLARIS$ DOALL REDUCTION(+:CHECK/PRIVATE)
      DO K = 1, 16
        CHECK = CHECK + RHO(12, 8, K)
      END DO
      PRINT *, CHECK
      END
