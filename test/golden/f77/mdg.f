      PROGRAM MDG
      INTEGER NB(200, 6), T
      REAL F(200), XP(200)
      PARAMETER (NATOM = 200)
      PARAMETER (NIT = 5)
      PARAMETER (NNB = 6)
CPOLARIS$ DOALL PRIVATE(J) LASTPRIVATE(J)
      DO I = 1, 200
        XP(I) = I * 0.3
        F(I) = 0.0
CPOLARIS$ DOALL
        DO J = 1, 6
          NB(I, J) = MOD(I * 7 + J * 13, 200) + 1
        END DO
      END DO
      DO T = 1, 5
CPOLARIS$ DOALL PRIVATE(D,J,K) LASTPRIVATE(J) REDUCTION(+:F/EXPANDED)
        DO I = 1, 200
CPOLARIS$ DOALL PRIVATE(D,K) REDUCTION(+:F/EXPANDED)
          DO J = 1, 6
            K = NB(I, J)
            D = XP(I) - XP(K)
            F(I) = F(I) + D / (D * D + 0.01)
            F(K) = F(K) - D / (D * D + 0.01)
          END DO
        END DO
CPOLARIS$ DOALL
        DO I = 1, 200
          XP(I) = XP(I) + F(I) * 0.001
        END DO
      END DO
      CHECK = 0.0
CPOLARIS$ DOALL REDUCTION(+:CHECK/PRIVATE)
      DO I = 1, 200
        CHECK = CHECK + XP(I)
      END DO
      PRINT *, CHECK
      END
