      PROGRAM OCEAN
      INTEGER FTRVMT_I, FTRVMT_J, FTRVMT_K, T, X, Z(0:15)
      REAL A(12000)
      PARAMETER (NIT = 5)
      COMMON /GRID/ X
      X = 4
CPOLARIS$ DOALL
      DO K = 0, 3
        Z(K) = 5 + K
      END DO
CPOLARIS$ DOALL
      DO I = 1, 12000
        A(I) = 0.001 * I
      END DO
      DO T = 1, 5
CPOLARIS$ DOALL PRIVATE(FTRVMT_I,FTRVMT_J)
        DO FTRVMT_K = 0, 3
CPOLARIS$ DOALL PRIVATE(FTRVMT_I)
          DO FTRVMT_J = 0, Z(FTRVMT_K)
CPOLARIS$ DOALL
            DO FTRVMT_I = 0, 128
              A(1032 * FTRVMT_J + 129 * FTRVMT_K + FTRVMT_I + 1) = A(1032 * FTRVMT_J + 129 * FTRVMT_K + FTRVMT_I + 1) * 0.99 + 0.5
              A(1032 * FTRVMT_J + 129 * FTRVMT_K + FTRVMT_I + 1 + 516) = A(1032 * FTRVMT_J + 129 * FTRVMT_K + FTRVMT_I + 1) + 1.0
            END DO
          END DO
        END DO
      END DO
      CHECK = 0.0
CPOLARIS$ DOALL REDUCTION(+:CHECK/PRIVATE)
      DO I = 1, 12000
        CHECK = CHECK + A(I)
      END DO
      PRINT *, CHECK
      END

      SUBROUTINE FTRVMT(A, Z)
      INTEGER X, Z(0:15)
      REAL A(12000)
      COMMON /GRID/ X
CPOLARIS$ DOALL PRIVATE(I,J)
      DO K = 0, X - 1
CPOLARIS$ DOALL PRIVATE(I)
        DO J = 0, Z(K)
CPOLARIS$ DOALL
          DO I = 0, 128
            A(258 * X * J + 129 * K + I + 1) = A(258 * X * J + 129 * K + I + 1) * 0.99 + 0.5
            A(258 * X * J + 129 * K + I + 1 + 129 * X) = A(258 * X * J + 129 * K + I + 1) + 1.0
          END DO
        END DO
      END DO
      RETURN
      END
