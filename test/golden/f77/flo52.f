      PROGRAM FLO52
      INTEGER T
      REAL FLUX(52), RES(52, 36), U(52, 36), V(52, 36)
      PARAMETER (NI = 52)
      PARAMETER (NIT = 4)
      PARAMETER (NJ = 36)
CPOLARIS$ DOALL PRIVATE(I) LASTPRIVATE(I)
      DO J = 1, 36
CPOLARIS$ DOALL
        DO I = 1, 52
          U(I, J) = 0.3 * I + 0.1 * J
          V(I, J) = 0.0
        END DO
      END DO
      DO T = 1, 4
CPOLARIS$ DOALL PRIVATE(I) LASTPRIVATE(I)
        DO J = 2, 35
CPOLARIS$ DOALL
          DO I = 2, 51
            RES(I, J) = U(I + 1, J) + U(I - 1, J) + U(I, J + 1) + U(I, J - 1) - 4.0 * U(I, J)
          END DO
        END DO
CPOLARIS$ DOALL PRIVATE(FLUX,I) LASTPRIVATE(I)
        DO J = 2, 35
CPOLARIS$ DOALL
          DO I = 1, 52
            FLUX(I) = 0.5 * (U(I, J) + U(I, J - 1))
          END DO
CPOLARIS$ DOALL
          DO I = 2, 51
            V(I, J) = FLUX(I + 1) - FLUX(I)
          END DO
        END DO
CPOLARIS$ DOALL PRIVATE(I) LASTPRIVATE(I)
        DO J = 2, 35
CPOLARIS$ DOALL
          DO I = 2, 51
            U(I, J) = U(I, J) + 0.05 * RES(I, J) + 0.01 * V(I, J)
          END DO
        END DO
      END DO
      CHECK = 0.0
CPOLARIS$ DOALL REDUCTION(+:CHECK/PRIVATE)
      DO J = 1, 36
        CHECK = CHECK + U(26, J)
      END DO
      PRINT *, CHECK
      END
