      PROGRAM SU2COR
      INTEGER LNK(256), S, T
      REAL G(8192), W(256)
      PARAMETER (NG = 8192)
      PARAMETER (NIT = 4)
      PARAMETER (NS = 8)
      PARAMETER (NSITE = 256)
CPOLARIS$ DOALL
      DO I = 1, 256
        LNK(I) = MOD(I * 37, 8192) + 1
        W(I) = 0.5 + 0.001 * I
      END DO
CPOLARIS$ DOALL
      DO I = 1, 8192
        G(I) = 0.0
      END DO
      DO T = 1, 4
        DO S = 1, 8
CPOLARIS$ DOALL REDUCTION(+:G/EXPANDED)
          DO I = 1, 256
            G(LNK(I)) = G(LNK(I)) + W(I) * 0.5
          END DO
CPOLARIS$ DOALL
          DO I = 1, 256
            W(I) = W(I) * 0.9 + 0.01
          END DO
        END DO
      END DO
      CHECK = 0.0
CPOLARIS$ DOALL REDUCTION(+:CHECK/PRIVATE)
      DO I = 1, 256
        CHECK = CHECK + G(I) + W(I)
      END DO
      PRINT *, CHECK
      END
