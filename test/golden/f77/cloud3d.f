      PROGRAM CLOUD3D
      INTEGER T
      REAL COL(40), QV(48, 40), TH(48, 40)
      PARAMETER (NI = 48)
      PARAMETER (NIT = 4)
      PARAMETER (NK = 40)
CPOLARIS$ DOALL PRIVATE(I) LASTPRIVATE(I)
      DO K = 1, 40
CPOLARIS$ DOALL
        DO I = 1, 48
          TH(I, K) = 290.0 + 0.1 * K + 0.01 * I
          QV(I, K) = 0.01 + 0.0001 * I
        END DO
      END DO
      DO T = 1, 4
        DO K = 2, 39
          DO I = 2, 47
            TH(I, K) = TH(I, K) + 0.02 * (TH(I + 1, K) + TH(I - 1, K) + TH(I, K + 1) + TH(I, K - 1) - 4.0 * TH(I, K))
          END DO
        END DO
CPOLARIS$ DOALL PRIVATE(COL,K) LASTPRIVATE(K)
        DO I = 2, 47
CPOLARIS$ DOALL
          DO K = 1, 40
            COL(K) = TH(I, K) * (1.0 + QV(I, K))
          END DO
CPOLARIS$ DOALL
          DO K = 2, 39
            QV(I, K) = QV(I, K) + 0.0001 * (COL(K + 1) - COL(K - 1))
          END DO
        END DO
        IT = 0
        RES = 1.0
10      CONTINUE
        IT = IT + 1
        RES = RES * 0.5
CPOLARIS$ DOALL
        DO K = 2, NK - 1
          TH(24, K) = TH(24, K) + RES * 0.001
        END DO
        IF (IT .LT. 5 .AND. RES .GT. 0.01) THEN
          GOTO 10
        END IF
      END DO
      CHECK = 0.0
CPOLARIS$ DOALL REDUCTION(+:CHECK/PRIVATE)
      DO K = 1, 40
        CHECK = CHECK + TH(24, K) + QV(24, K) * 100.0
      END DO
      PRINT *, CHECK
      END
