      PROGRAM APPLU
      INTEGER T
      REAL B(64, 48), F(64, 48), U(64, 48)
      PARAMETER (NI = 64)
      PARAMETER (NIT = 4)
      PARAMETER (NJ = 48)
CPOLARIS$ DOALL PRIVATE(I) LASTPRIVATE(I)
      DO J = 1, 48
CPOLARIS$ DOALL
        DO I = 1, 64
          U(I, J) = 0.1 * I + 0.05 * J
          B(I, J) = 1.0
        END DO
      END DO
      DO T = 1, 4
CPOLARIS$ DOALL PRIVATE(I) LASTPRIVATE(I)
        DO J = 2, 47
CPOLARIS$ DOALL
          DO I = 2, 63
            F(I, J) = B(I, J) + 0.2 * (U(I + 1, J) + U(I, J + 1))
          END DO
        END DO
        DO J = 2, 47
          DO I = 2, 63
            U(I, J) = 0.25 * (U(I - 1, J) + U(I, J - 1) + F(I, J))
          END DO
        END DO
        DO J = 47, 2, (-1)
          DO I = 63, 2, (-1)
            U(I, J) = 0.25 * (U(I + 1, J) + U(I, J + 1) + F(I, J))
          END DO
        END DO
      END DO
      CHECK = 0.0
CPOLARIS$ DOALL REDUCTION(+:CHECK/PRIVATE)
      DO J = 1, 48
        CHECK = CHECK + U(32, J)
      END DO
      PRINT *, CHECK
      END
