      PROGRAM TOMCATV
      INTEGER T
      REAL RX(12), RY(12), X(12, 240), XO(12, 240), Y(12, 240), YO(12, 240)
      PARAMETER (NI = 12)
      PARAMETER (NIT = 4)
      PARAMETER (NJ = 240)
CPOLARIS$ DOALL PRIVATE(I) LASTPRIVATE(I)
      DO J = 1, 240
CPOLARIS$ DOALL
        DO I = 1, 12
          X(I, J) = I + 0.1 * J
          Y(I, J) = J - 0.05 * I
          XO(I, J) = X(I, J)
          YO(I, J) = Y(I, J)
        END DO
      END DO
      DO T = 1, 4
CPOLARIS$ DOALL PRIVATE(I,RX,RY) LASTPRIVATE(I)
        DO J = 2, 239
CPOLARIS$ DOALL
          DO I = 2, 11
            RX(I) = XO(I + 1, J) + XO(I - 1, J) + XO(I, J + 1) + XO(I, J - 1) - 4.0 * XO(I, J) + 0.01 * SQRT(XO(I, J) * XO(I, J) + 1.0)
            RY(I) = YO(I + 1, J) + YO(I - 1, J) + YO(I, J + 1) + YO(I, J - 1) - 4.0 * YO(I, J) + 0.01 * SQRT(YO(I, J) * YO(I, J) + 1.0)
          END DO
CPOLARIS$ DOALL
          DO I = 2, 11
            X(I, J) = XO(I, J) + 0.07 * RX(I)
            Y(I, J) = YO(I, J) + 0.07 * RY(I)
          END DO
        END DO
CPOLARIS$ DOALL PRIVATE(I) LASTPRIVATE(I)
        DO J = 2, 239
CPOLARIS$ DOALL
          DO I = 2, 11
            XO(I, J) = X(I, J)
            YO(I, J) = Y(I, J)
          END DO
        END DO
      END DO
      CHECK = 0.0
CPOLARIS$ DOALL REDUCTION(+:CHECK/PRIVATE)
      DO J = 1, 240
        CHECK = CHECK + X(6, J) + Y(6, J)
      END DO
      PRINT *, CHECK
      END
