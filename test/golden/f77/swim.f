      PROGRAM SWIM
      INTEGER T
      REAL P(64, 64), U(64, 64), UN(64, 64), V(64, 64), VN(64, 64)
      PARAMETER (NI = 64)
      PARAMETER (NIT = 4)
      PARAMETER (NJ = 64)
CPOLARIS$ DOALL PRIVATE(I) LASTPRIVATE(I)
      DO J = 1, 64
CPOLARIS$ DOALL
        DO I = 1, 64
          U(I, J) = 0.1 * I
          V(I, J) = 0.1 * J
          P(I, J) = 10.0
        END DO
      END DO
      DO T = 1, 4
CPOLARIS$ DOALL PRIVATE(I) LASTPRIVATE(I)
        DO J = 2, 63
CPOLARIS$ DOALL
          DO I = 2, 63
            UN(I, J) = U(I, J) - 0.05 * (P(I + 1, J) - P(I - 1, J))
            VN(I, J) = V(I, J) - 0.05 * (P(I, J + 1) - P(I, J - 1))
          END DO
        END DO
CPOLARIS$ DOALL PRIVATE(I) LASTPRIVATE(I)
        DO J = 2, 63
CPOLARIS$ DOALL
          DO I = 2, 63
            P(I, J) = P(I, J) - 0.1 * (UN(I + 1, J) - UN(I - 1, J) + VN(I, J + 1) - VN(I, J - 1))
          END DO
        END DO
CPOLARIS$ DOALL PRIVATE(I) LASTPRIVATE(I)
        DO J = 2, 63
CPOLARIS$ DOALL
          DO I = 2, 63
            U(I, J) = UN(I, J)
            V(I, J) = VN(I, J)
          END DO
        END DO
      END DO
      CHECK = 0.0
CPOLARIS$ DOALL REDUCTION(+:CHECK/PRIVATE)
      DO J = 1, 64
        CHECK = CHECK + P(32, J)
      END DO
      PRINT *, CHECK
      END
