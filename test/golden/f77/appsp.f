      PROGRAM APPSP
      INTEGER T
      REAL RHS(64, 48), SOL(64, 48), TMP(64)
      PARAMETER (NI = 64)
      PARAMETER (NIT = 4)
      PARAMETER (NK = 48)
CPOLARIS$ DOALL PRIVATE(I) LASTPRIVATE(I)
      DO K = 1, 48
CPOLARIS$ DOALL
        DO I = 1, 64
          RHS(I, K) = 0.01 * I + 0.02 * K
        END DO
      END DO
      DO T = 1, 4
CPOLARIS$ DOALL PRIVATE(I,TMP) LASTPRIVATE(I)
        DO K = 1, 48
          TMP(1) = RHS(1, K)
          DO I = 2, 64
            TMP(I) = RHS(I, K) - 0.3 * TMP(I - 1)
          END DO
CPOLARIS$ DOALL
          DO I = 1, 64
            SOL(I, K) = TMP(I) * 1.1
          END DO
        END DO
CPOLARIS$ DOALL PRIVATE(I) LASTPRIVATE(I)
        DO K = 1, 48
CPOLARIS$ DOALL
          DO I = 1, 64
            RHS(I, K) = SOL(I, K) * 0.9 + 0.01
          END DO
        END DO
      END DO
      CHECK = 0.0
CPOLARIS$ DOALL REDUCTION(+:CHECK/PRIVATE)
      DO K = 1, 48
        CHECK = CHECK + SOL(32, K)
      END DO
      PRINT *, CHECK
      END
