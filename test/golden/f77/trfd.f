      PROGRAM TRFD
      INTEGER T, X, X0
      REAL A(1700)
      PARAMETER (M = 16)
      PARAMETER (N = 14)
      PARAMETER (NIT = 6)
      DO T = 1, 6
CPOLARIS$ DOALL PRIVATE(J,K)
        DO I = 0, 15
CPOLARIS$ DOALL PRIVATE(K)
          DO J = 0, 13
CPOLARIS$ DOALL
            DO K = 0, J - 1
              A((2 - J + J * J + 2 * K + 2 * (105 * I)) / 2) = ((2 - J + J * J + 2 * K + 2 * (105 * I)) / 2 - 0.5) * 0.01 + T * 0.1
            END DO
          END DO
        END DO
      END DO
      CHECK = 0.0
CPOLARIS$ DOALL REDUCTION(+:CHECK/PRIVATE)
      DO I = 1, 1680
        CHECK = CHECK + A(I)
      END DO
      PRINT *, CHECK
      END
