(* Incremental recompilation fuzzing: serve-style sessions over random
   multi-unit programs.

   Each session holds a three-unit document (the test_fuzz PROGRAM plus
   two generated SUBROUTINE units), cold-compiles it, then applies a
   random edit sequence — each step regenerates exactly one unit from a
   fresh seed — recompiling incrementally after every edit.  Every
   incremental compile must be byte-identical (annotated output,
   per-loop verdicts, incidents, dependence counters) to a from-scratch
   compile of the same source, and every post-edit recompile must
   actually reuse cached analyses.  The property is checked at the
   session's -j (100 qcheck seeds; the CI POLARIS_JOBS=4 rerun covers
   the parallel path) and a fixed battery pins -j 1 vs -j 4. *)

(* a self-contained subroutine unit; never called from the main program,
   so edits to it can only flow into the outcome through its own
   analyses and loop verdicts *)
let gen_subroutine (name : string) (seed : int) : string =
  let r = Util.Prng.create seed in
  let buf = Buffer.create 256 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "      SUBROUTINE %s" name;
  line "      INTEGER J1, J2, Q";
  line "      REAL C(200), U, V";
  line "      U = 0.0";
  line "      V = 1.0";
  line "      Q = 0";
  line "      DO J1 = 1, %d" (Util.Prng.range r 5 20);
  line "        C(J1) = J1 * 0.25";
  line "      END DO";
  for _ = 1 to Util.Prng.range r 1 3 do
    line "      DO J1 = 1, %d" (Util.Prng.range r 3 12);
    (match Util.Prng.range r 0 4 with
    | 0 ->
      line "        C(J1 + %d) = C(J1) * 0.5 + %d.0" (Util.Prng.range r 0 50)
        (Util.Prng.range r 0 5)
    | 1 -> line "        U = U + C(J1) * 0.125"
    | 2 ->
      line "        DO J2 = 1, %d" (Util.Prng.range r 2 6);
      line "          C(J1 + 12 * J2) = C(J1 + 12 * J2) + 1.0";
      line "        END DO"
    | 3 ->
      line "        Q = Q + %d" (Util.Prng.range r 1 3);
      line "        C(Q + %d) = U + V" (Util.Prng.range r 10 60)
    | _ -> line "        V = V * 0.5");
    line "      END DO"
  done;
  line "      END";
  Buffer.contents buf

(* one serve session: cold compile, then [edits] single-unit edits, each
   followed by an incremental recompile checked against scratch *)
let check_session ?(edits = 3) (seed : int) : bool =
  let r = Util.Prng.create seed in
  let cfg = Core.Config.polaris () in
  let seeds = Array.init 3 (fun _ -> Util.Prng.range r 0 1_000_000) in
  let source () =
    Test_fuzz.gen_program (Util.Prng.create seeds.(0))
    ^ gen_subroutine "SUB1" seeds.(1)
    ^ gen_subroutine "SUB2" seeds.(2)
  in
  Util.Cachectl.clear_all ();
  let ok = ref true in
  let fail fmt =
    Fmt.kstr
      (fun s ->
        ok := false;
        Printf.eprintf "incremental fuzz seed %d: %s\n%!" seed s)
      fmt
  in
  let step ~require_reuse =
    let src = source () in
    let inc = Core.Incremental.compile cfg src in
    let scr = Core.Incremental.scratch cfg src in
    List.iter (fail "%s")
      (Core.Incremental.diverges ~incremental:inc.outcome ~scratch:scr.outcome);
    if require_reuse && inc.stats.st_hits = 0 then
      fail "no analysis reuse on a single-unit-edit recompile"
  in
  step ~require_reuse:false;
  for _ = 1 to edits do
    seeds.(Util.Prng.range r 0 2) <- Util.Prng.range r 0 1_000_000;
    (* the scratch compile of the previous step re-warmed the caches
       with this very session's entries, so the post-edit recompile
       must hit on the two unedited units *)
    step ~require_reuse:true
  done;
  !ok

let prop_incremental_identical =
  QCheck2.Test.make
    ~name:"incremental recompile is byte-identical to scratch (fuzz)"
    ~count:100
    QCheck2.Gen.(int_range 0 1_000_000)
    check_session

(* the same property pinned at -j 1 and -j 4 regardless of the session's
   POLARIS_JOBS, so the parallel path is always covered *)
let test_fixed_seeds_jobs () =
  List.iter
    (fun jobs ->
      Util.Pool.with_jobs jobs (fun () ->
          List.iter
            (fun seed ->
              Alcotest.(check bool)
                (Printf.sprintf "seed %d at -j %d" seed jobs)
                true (check_session seed))
            [ 3; 17; 1996; 424242 ]))
    [ 1; 4 ]

let tests =
  [ ("fixed incremental seeds at -j 1/4", `Slow, test_fixed_seeds_jobs) ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_incremental_identical ]
