(* Translation-validation subsystem: the ULP comparator, the
   differential oracle, per-pass snapshot localization (including the
   mutation smoke test required for lib/valid: a deliberately broken
   pass must be caught AND attributed to the right stage), the flight
   recorder, and the speculative checkpoint/restore path. *)

open Fir

let parse = Frontend.Parser.parse_string

(* ------------------------------------------------------------------ *)
(* Comparators                                                         *)

let test_ulp_diff () =
  Alcotest.(check int) "equal floats" 0 (Valid.Oracle.ulp_diff 1.0 1.0);
  Alcotest.(check int) "+0 vs -0" 0 (Valid.Oracle.ulp_diff 0.0 (-0.0));
  Alcotest.(check int) "adjacent floats" 1
    (Valid.Oracle.ulp_diff 1.0 (Float.succ 1.0));
  Alcotest.(check int) "two ulps" 2
    (Valid.Oracle.ulp_diff 1.0 (Float.succ (Float.succ 1.0)));
  Alcotest.(check int) "across zero" 2
    (Valid.Oracle.ulp_diff (Float.succ 0.0) (Float.pred 0.0));
  Alcotest.(check int) "nan vs nan" 0 (Valid.Oracle.ulp_diff Float.nan Float.nan);
  Alcotest.(check bool) "nan vs number" true
    (Valid.Oracle.ulp_diff Float.nan 1.0 = max_int)

let test_value_close () =
  let open Machine.Value in
  let c = { Valid.Oracle.ulp_tol = 2; rel_tol = 0.0 } in
  Alcotest.(check bool) "ints bit-for-bit" false
    (Valid.Oracle.value_close c (Int 3) (Int 4));
  Alcotest.(check bool) "ints equal" true
    (Valid.Oracle.value_close c (Int 3) (Int 3));
  Alcotest.(check bool) "floats within tolerance" true
    (Valid.Oracle.value_close c (Real 1.0) (Real (Float.succ 1.0)));
  Alcotest.(check bool) "floats beyond tolerance" false
    (Valid.Oracle.value_close c (Real 1.0) (Real 1.0000001))

let test_data_close () =
  let open Machine.Storage in
  Alcotest.(check bool) "int arrays exact" false
    (Valid.Oracle.data_close (Iarr [| 1; 2 |]) (Iarr [| 1; 3 |]));
  Alcotest.(check bool) "float arrays within ulp" true
    (Valid.Oracle.data_close (Farr [| 1.0 |]) (Farr [| Float.succ 1.0 |]));
  Alcotest.(check bool) "length mismatch" false
    (Valid.Oracle.data_close (Farr [| 1.0 |]) (Farr [| 1.0; 2.0 |]))

(* ------------------------------------------------------------------ *)
(* The differential oracle                                             *)

let sum_src = {|
      PROGRAM SUMS
      INTEGER I, K
      REAL S, A(50)
      K = 0
      S = 0.0
      DO I = 1, 50
        K = K + 2
        A(I) = I * 0.5
        S = S + A(I)
      END DO
      PRINT *, S, K
      END
|}

let test_oracle_equivalent () =
  let r =
    Valid.Oracle.differential ~seeds:[ 7 ] ~original:(parse sum_src)
      ~transformed:(parse sum_src) ()
  in
  Alcotest.(check bool) "identical programs equivalent" true
    (Valid.Oracle.equivalent r);
  (* zero-init + 1 seed, each serial + p in {1,2,4,8} *)
  Alcotest.(check int) "check count" 10 r.checks

let test_oracle_catches_difference () =
  let broken_src = {|
      PROGRAM SUMS
      INTEGER I, K
      REAL S, A(50)
      K = 0
      S = 0.0
      DO I = 1, 50
        K = K + 3
        A(I) = I * 0.5
        S = S + A(I)
      END DO
      PRINT *, S, K
      END
|}
  in
  let r =
    Valid.Oracle.differential ~original:(parse sum_src)
      ~transformed:(parse broken_src) ()
  in
  Alcotest.(check bool) "difference detected" false (Valid.Oracle.equivalent r)

(* ------------------------------------------------------------------ *)
(* Per-pass snapshot validation on real pipelines                      *)

let test_validated_compile_suite () =
  List.iter
    (fun name ->
      let code = Suite.Registry.find name in
      List.iter
        (fun config ->
          let _, report =
            Valid.Snapshot.validated_compile ~procs_list:[ 1; 2; 4; 8 ] config
              code.Suite.Code.source
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s validates" name config.Core.Config.name)
            true (Valid.Snapshot.ok report))
        [ Core.Config.polaris (); Core.Config.baseline () ])
    [ "TRFD"; "MDG"; "TFFT2"; "WAVE5" ]

let test_validated_compile_seeded () =
  (* no CALLs in this program, so name-keyed seeded stores are identical
     across the transformation *)
  let _, report =
    Valid.Snapshot.validated_compile ~seeds:[ 1; 42 ]
      ~procs_list:[ 2; 8 ] (Core.Config.polaris ()) sum_src
  in
  Alcotest.(check bool) "seeded validation passes" true
    (Valid.Snapshot.ok report)

(* ------------------------------------------------------------------ *)
(* Mutation smoke tests: a broken pass must be localized               *)

(* add 1 to the right-hand side of the first assignment of the main
   unit — a miscompile that preserves IR well-formedness *)
let break_first_assign (p : Program.t) =
  let u = Program.main p in
  let done_ = ref false in
  u.pu_body <-
    Stmt.rewrite
      (fun s ->
        match s.kind with
        | Ast.Assign (lhs, rhs) when not !done_ ->
          done_ := true;
          [ { s with kind = Ast.Assign (lhs, Ast.Binary (Ast.Add, rhs, Ast.Int_lit 1)) } ]
        | _ -> [ s ])
      u.pu_body;
  Alcotest.(check bool) "mutation applied" true !done_

let test_mutation_localized () =
  let original = parse sum_src in
  let report =
    Valid.Snapshot.validate_stages ~procs_list:[ 2 ] ~original
      [ ( "induction",
          fun p -> ignore (Passes.Induction.run ~generalized:true p) );
        ("evil", break_first_assign);
        ("deadcode", fun p -> ignore (Passes.Deadcode.run p)) ]
  in
  Alcotest.(check bool) "validation failed" false (Valid.Snapshot.ok report);
  Alcotest.(check (option string)) "localized to the broken pass"
    (Some "evil") report.failed_stage;
  (* the pass before the mutation must have validated cleanly *)
  match report.stages with
  | { stage = "induction"; status = Valid.Snapshot.Ok_validated _ } :: _ -> ()
  | _ -> Alcotest.fail "induction stage should validate before the mutation"

let test_inconsistency_localized () =
  let original = parse sum_src in
  let report =
    Valid.Snapshot.validate_stages ~procs_list:[ 2 ] ~original
      [ ("constprop", Passes.Constprop.run);
        ( "bad-goto",
          fun p ->
            let u = Program.main p in
            u.pu_body <- u.pu_body @ [ Stmt.mk (Ast.Goto 999) ] ) ]
  in
  Alcotest.(check (option string)) "localized to the malformed pass"
    (Some "bad-goto") report.failed_stage;
  match List.rev report.stages with
  | { stage = "bad-goto"; status = Valid.Snapshot.Inconsistent _ } :: _ -> ()
  | _ -> Alcotest.fail "expected an IR-consistency failure"

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)

let test_trace_recorder () =
  let trfd = (Suite.Registry.find "TRFD").source in
  let t, trace = Valid.Trace.record_compile (Core.Config.polaris ()) trfd in
  Alcotest.(check bool) "loops recorded" true
    (List.length trace.tr_loops = List.length t.loops);
  Alcotest.(check bool) "one record per pass + parse" true
    (List.length trace.tr_passes >= 6);
  Alcotest.(check bool) "induction rewrote statements" true
    (List.exists
       (fun (p : Valid.Trace.pass_record) ->
         p.pass = "induction" && p.rewritten > 0)
       trace.tr_passes);
  Alcotest.(check bool) "range tests recorded" true
    (trace.tr_dep.range_proved + trace.tr_dep.range_failed > 0);
  let json = Valid.Trace.to_json trace in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json has dep counters" true
    (contains json "dep_tests")

(* ------------------------------------------------------------------ *)
(* Speculative failure path: checkpoint must restore exactly           *)

let spec_src ~collide = Printf.sprintf
  "      PROGRAM S\n\
   \      INTEGER N, K, COLL\n\
   \      PARAMETER (N = 64)\n\
   \      INTEGER IX(64), JX(64)\n\
   \      REAL D(128), SRC(128), T\n\
   \      COLL = %d\n\
   \      DO K = 1, N\n\
   \        IX(K) = 2 * K - MOD(K, 2)\n\
   \        JX(K) = IX(K)\n\
   \        SRC(K) = 0.5 * K\n\
   \      END DO\n\
   \      IF (COLL .EQ. 1) THEN\n\
   \        JX(7) = IX(6)\n\
   \      END IF\n\
   \      DO K = 1, N\n\
   \        T = D(JX(K)) + SRC(K)\n\
   \        D(IX(K)) = T * 0.5 + 1.0\n\
   \      END DO\n\
   \      PRINT *, D(1)\n\
   \      END\n"
  (if collide then 1 else 0)

let test_speculative_restore_exact () =
  let p = parse (spec_src ~collide:true) in
  ignore (Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p);
  let sid = ref (-1) in
  Stmt.iter
    (fun (s : Ast.stmt) ->
      match s.kind with
      | Ast.Do d when d.info.speculative -> sid := s.sid
      | _ -> ())
    (Program.main p).pu_body;
  Alcotest.(check bool) "speculative candidate flagged" true (!sid >= 0);
  let o = Fruntime.Speculative.run ~procs:8 ~loop_sid:!sid ~array:"D" p in
  Alcotest.(check bool) "PD test failed (collision)" true
    (o.verdict = Fruntime.Shadow.Not_parallel);
  match (o.checkpoint, o.tested_alloc) with
  | Some ckpt, Some alloc ->
    let post = Machine.Storage.snapshot alloc in
    Alcotest.(check bool) "loop modified the tested array" false
      (Valid.Oracle.data_close post ckpt);
    (* the failure path: restore the checkpoint, then the storage must
       equal the loop-entry state bit-for-bit (zero ULP tolerance) *)
    Machine.Storage.restore alloc ckpt;
    Alcotest.(check bool) "restored state equals checkpoint exactly" true
      (Valid.Oracle.data_close ~cmp:{ Valid.Oracle.ulp_tol = 0; rel_tol = 0.0 }
         (Machine.Storage.snapshot alloc) ckpt)
  | _ -> Alcotest.fail "checkpoint not captured at loop entry"

let tests =
  [ ("ulp distance", `Quick, test_ulp_diff);
    ("value comparator", `Quick, test_value_close);
    ("storage data comparator", `Quick, test_data_close);
    ("oracle: identical programs", `Quick, test_oracle_equivalent);
    ("oracle: difference caught", `Quick, test_oracle_catches_difference);
    ("validated compile: suite codes", `Slow, test_validated_compile_suite);
    ("validated compile: seeded stores", `Quick, test_validated_compile_seeded);
    ("mutation smoke: broken pass localized", `Quick, test_mutation_localized);
    ("mutation smoke: IR inconsistency localized", `Quick, test_inconsistency_localized);
    ("flight recorder", `Quick, test_trace_recorder);
    ("speculative failure restores checkpoint", `Quick, test_speculative_restore_exact) ]
