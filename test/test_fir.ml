(* Tests for the Fortran IR: expressions, statements, pattern matching,
   symbol tables, consistency checking. *)

open Fir
open Ast

let e = Alcotest.testable (fun ppf x -> Expr.pp ppf x) Expr.equal

(* a tiny integer evaluator used as the semantic oracle for simplify *)
let rec eval env (x : expr) : int option =
  match x with
  | Int_lit n -> Some n
  | Var v -> List.assoc_opt v env
  | Unary (Neg, a) -> Option.map (fun n -> -n) (eval env a)
  | Binary (op, a, b) -> (
    match (eval env a, eval env b) with
    | Some x, Some y -> (
      match op with
      | Add -> Some (x + y)
      | Sub -> Some (x - y)
      | Mul -> Some (x * y)
      | Div -> if y = 0 then None else Some (x / y)
      | Pow -> if y < 0 || y > 6 then None else Some (Expr.pow_int x y)
      | _ -> None)
    | _ -> None)
  | _ -> None

let test_constructors () =
  Alcotest.check e "var uppercases" (Var "ABC") (Expr.var "abc");
  Alcotest.check e "call uppercases" (Fun_call ("MOD", [ Expr.int 1 ]))
    (Expr.call "mod" [ Expr.int 1 ])

let test_simplify () =
  let x = Expr.var "X" in
  Alcotest.check e "x+0" x (Expr.simplify (Expr.add x (Expr.int 0)));
  Alcotest.check e "1*x" x (Expr.simplify (Expr.mul (Expr.int 1) x));
  Alcotest.check e "0*x" (Expr.int 0) (Expr.simplify (Expr.mul x (Expr.int 0)));
  Alcotest.check e "2+3" (Expr.int 5) (Expr.simplify (Expr.add (Expr.int 2) (Expr.int 3)));
  Alcotest.check e "2**3" (Expr.int 8) (Expr.simplify (Expr.pow (Expr.int 2) (Expr.int 3)));
  Alcotest.check e "6/3" (Expr.int 2) (Expr.simplify (Expr.div (Expr.int 6) (Expr.int 3)));
  Alcotest.check e "7/2 not folded (inexact)"
    (Expr.div (Expr.int 7) (Expr.int 2))
    (Expr.simplify (Expr.div (Expr.int 7) (Expr.int 2)));
  Alcotest.check e "neg neg" x (Expr.simplify (Expr.neg (Expr.neg x)))

(* random integer expressions over two variables *)
let expr_gen =
  let open QCheck2.Gen in
  let leaf =
    oneof [ map Expr.int (int_range (-9) 9); return (Var "X"); return (Var "Y") ]
  in
  let rec go n =
    if n = 0 then leaf
    else
      oneof
        [ leaf;
          map2 Expr.add (go (n - 1)) (go (n - 1));
          map2 Expr.sub (go (n - 1)) (go (n - 1));
          map2 Expr.mul (go (n - 1)) (go (n - 1));
          map Expr.neg (go (n - 1)) ]
  in
  go 4

let prop_simplify_preserves =
  QCheck2.Test.make ~name:"simplify preserves evaluation" ~count:300 expr_gen
    (fun x ->
      let env = [ ("X", 3); ("Y", -2) ] in
      eval env x = eval env (Expr.simplify x))

let prop_subst_var =
  QCheck2.Test.make ~name:"subst then eval = eval extended env" ~count:300
    expr_gen (fun x ->
      let x' = Expr.subst_var "X" (Expr.int 7) x in
      eval [ ("Y", 5) ] x' = eval [ ("X", 7); ("Y", 5) ] x)

let test_traversal () =
  let x = Expr.add (Expr.ref_ "A" [ Expr.var "I" ]) (Expr.call "MOD" [ Expr.var "J"; Expr.int 2 ]) in
  Alcotest.(check (list string)) "scalar_vars" [ "I"; "J" ] (Expr.scalar_vars x);
  Alcotest.(check (list string)) "all_names" [ "A"; "I"; "J"; "MOD" ] (Expr.all_names x);
  Alcotest.(check bool) "mentions A" true (Expr.mentions "A" x);
  Alcotest.(check bool) "mentions Z" false (Expr.mentions "Z" x)

let test_rename () =
  let x = Expr.add (Expr.ref_ "A" [ Expr.var "I" ]) (Expr.var "B") in
  let r = Expr.rename (fun n -> "P_" ^ n) x in
  Alcotest.check e "renamed"
    (Expr.add (Expr.ref_ "P_A" [ Expr.var "P_I" ]) (Expr.var "P_B"))
    r

(* ----- pattern matching (Forbol) ----- *)

let test_pattern_basic () =
  let pat = Binary (Add, Wildcard 1, Wildcard 2) in
  (match Pattern.matches pat (Expr.add (Expr.var "A") (Expr.int 3)) with
  | Some b ->
    Alcotest.check e "w1" (Expr.var "A") (List.assoc 1 b);
    Alcotest.check e "w2" (Expr.int 3) (List.assoc 2 b)
  | None -> Alcotest.fail "should match");
  Alcotest.(check bool) "no match on mul" true
    (Pattern.matches pat (Expr.mul (Expr.var "A") (Expr.int 3)) = None)

let test_pattern_nonlinear () =
  (* same wildcard twice must bind structurally equal subterms: the
     reduction idiom A(s) = A(s) + b *)
  let lhs = Expr.ref_ "A" [ Expr.var "I" ] in
  let red = Pattern.matches (Binary (Add, lhs, Wildcard 2)) in
  (match red (Expr.add lhs (Expr.var "B")) with
  | Some b -> Alcotest.check e "beta" (Expr.var "B") (List.assoc 2 b)
  | None -> Alcotest.fail "reduction pattern should match");
  let pat2 = Binary (Add, Wildcard 1, Wildcard 1) in
  Alcotest.(check bool) "x+x matches w+w" true
    (Pattern.matches pat2 (Expr.add (Expr.var "X") (Expr.var "X")) <> None);
  Alcotest.(check bool) "x+y does not match w+w" true
    (Pattern.matches pat2 (Expr.add (Expr.var "X") (Expr.var "Y")) = None)

let test_pattern_rewrite () =
  let lhs = Binary (Mul, Wildcard 1, Expr.int 2) in
  let rhs = Binary (Add, Wildcard 1, Wildcard 1) in
  let before = Expr.add (Expr.mul (Expr.var "A") (Expr.int 2)) (Expr.int 1) in
  let after = Pattern.rewrite ~lhs ~rhs before in
  Alcotest.check e "a*2 -> a+a"
    (Expr.add (Expr.add (Expr.var "A") (Expr.var "A")) (Expr.int 1))
    after

let test_pattern_find_all () =
  let pat = Fun_call ("SIN", [ Wildcard 1 ]) in
  let x =
    Expr.add (Expr.call "SIN" [ Expr.var "A" ]) (Expr.call "SIN" [ Expr.int 2 ])
  in
  Alcotest.(check int) "two matches" 2 (List.length (Pattern.find_all pat x))

(* ----- statements ----- *)

let test_stmt_fresh_ids () =
  let a = Stmt.assign (Var "X") (Expr.int 1) in
  let b = Stmt.assign (Var "X") (Expr.int 1) in
  Alcotest.(check bool) "distinct sids" true (a.sid <> b.sid)

let test_stmt_copy_fresh () =
  let s =
    Stmt.do_ "I" ~init:(Expr.int 1) ~limit:(Expr.int 10)
      [ Stmt.assign (Var "X") (Expr.var "I") ]
  in
  let c = Stmt.copy s in
  Alcotest.(check bool) "copy has fresh id" true (c.sid <> s.sid);
  match (s.kind, c.kind) with
  | Do d1, Do d2 ->
    Alcotest.(check bool) "body ids fresh" true
      ((List.hd d1.body).sid <> (List.hd d2.body).sid);
    Alcotest.(check bool) "info not shared" true (not (d1.info == d2.info))
  | _ -> Alcotest.fail "expected Do"

let test_stmt_queries () =
  let body =
    [ Stmt.assign (Var "X") (Expr.int 1);
      Stmt.do_ "I" ~init:(Expr.int 1) ~limit:(Expr.var "N")
        [ Stmt.assign (Ref ("A", [ Expr.var "I" ])) (Expr.var "X") ] ]
  in
  Alcotest.(check (list string)) "assigned" [ "A"; "I"; "X" ] (Stmt.assigned_names body);
  Alcotest.(check bool) "mentions N" true (Stmt.mentions "N" body);
  Alcotest.(check int) "loops found" 1 (List.length (Stmt.loops body));
  Alcotest.(check int) "all stmts" 3 (List.length (Stmt.all_stmts body))

let test_stmt_rewrite () =
  let body =
    [ Stmt.assign (Var "X") (Expr.int 1);
      Stmt.mk Continue;
      Stmt.assign (Var "Y") (Expr.int 2) ]
  in
  let out =
    Stmt.rewrite
      (fun s -> match s.kind with Continue -> [] | _ -> [ s ])
      body
  in
  Alcotest.(check int) "continue removed" 2 (List.length out)

(* ----- symbol tables ----- *)

let test_symtab () =
  let t = Symtab.create () in
  Alcotest.(check bool) "implicit I integer" true (Symtab.implicit_type "IVAL" = Integer);
  Alcotest.(check bool) "implicit X real" true (Symtab.implicit_type "XVAL" = Real);
  Symtab.define t (Symtab.mk_symbol ~typ:Real ~dims:[ (Expr.int 1, Expr.int 10) ] "ARR");
  Alcotest.(check bool) "is_array" true (Symtab.is_array t "arr");
  Alcotest.(check bool) "lookup materializes" true ((Symtab.lookup t "knew").sym_type = Integer);
  Symtab.define t (Symtab.mk_symbol ~param:(Expr.int 5) "NP");
  Alcotest.(check bool) "is_parameter" true (Symtab.is_parameter t "NP")

let test_const_size () =
  let s = Symtab.mk_symbol ~dims:[ (Expr.int 1, Expr.int 4); (Expr.int 0, Expr.int 2) ] "A" in
  Alcotest.(check (option int)) "4x3" (Some 12) (Symtab.const_size s);
  let s2 = Symtab.mk_symbol ~dims:[ (Expr.int 1, Expr.var "N") ] "B" in
  Alcotest.(check (option int)) "symbolic" None (Symtab.const_size s2)

(* ----- consistency ----- *)

let test_consistency_wildcard () =
  let u = Punit.create "T" in
  u.pu_body <- [ Stmt.assign (Var "X") (Wildcard 1) ];
  Alcotest.(check bool) "wildcard rejected" true
    (match Consistency.check_unit u with
    | () -> false
    | exception Consistency.Violation _ -> true)

let test_consistency_goto () =
  let u = Punit.create "T" in
  u.pu_body <- [ Stmt.mk (Goto 99) ];
  Alcotest.(check bool) "dangling goto rejected" true
    (match Consistency.check_unit u with
    | () -> false
    | exception Consistency.Violation _ -> true);
  u.pu_body <- [ Stmt.mk (Goto 99); Stmt.mk ~label:99 Continue ];
  Consistency.check_unit u

let test_consistency_dims () =
  let u = Punit.create "T" in
  Symtab.define u.pu_symtab
    (Symtab.mk_symbol ~typ:Real ~dims:[ (Expr.int 1, Expr.int 5); (Expr.int 1, Expr.int 5) ] "A");
  u.pu_body <- [ Stmt.assign (Ref ("A", [ Expr.int 1 ])) (Expr.int 0) ];
  Alcotest.(check bool) "rank mismatch rejected" true
    (match Consistency.check_unit u with
    | () -> false
    | exception Consistency.Violation _ -> true)

(* hand-written structural equal/compare: Wildcard identity is pinned
   (Wildcard i equals only Wildcard i — the pattern matcher's
   non-linearity depends on it), equal and compare must agree, and
   equal expressions must hash alike *)
let test_equal_compare_hash () =
  Alcotest.(check bool) "wildcard reflexive" true
    (Expr.equal (Wildcard 1) (Wildcard 1));
  Alcotest.(check bool) "wildcard 1 <> wildcard 2" false
    (Expr.equal (Wildcard 1) (Wildcard 2));
  Alcotest.(check bool) "wildcard <> var" false
    (Expr.equal (Wildcard 1) (Var "W1"));
  let samples =
    [ Expr.int 0; Expr.int 7; Expr.var "I"; Expr.var "J";
      Real_lit 1.5; Real_lit nan; Logical_lit true; Char_lit "X";
      Wildcard 1; Wildcard 2;
      Expr.add (Expr.var "I") (Expr.int 1);
      Expr.add (Expr.var "I") (Expr.int 2);
      Expr.mul (Expr.var "I") (Expr.int 1);
      Expr.call "MOD" [ Expr.var "I"; Expr.int 2 ];
      Ref ("A", [ Expr.var "I" ]);
      Ref ("A", [ Expr.var "J" ]);
      Unary (Neg, Expr.var "I") ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool) "compare=0 iff equal" (Expr.equal a b)
            (Expr.compare a b = 0);
          if Expr.equal a b then
            Alcotest.(check int) "equal implies same hash" (Expr.hash a)
              (Expr.hash b))
        samples;
      (* NaN consistency: equal must agree with compare, unlike (=) *)
      Alcotest.(check bool) "self-equal (incl. nan)" true (Expr.equal a a))
    samples;
  Alcotest.(check bool) "compare antisymmetric" true
    (Expr.compare (Expr.var "I") (Expr.var "J")
     = -Expr.compare (Expr.var "J") (Expr.var "I"))

(* hash-consing: interning structurally equal trees (built separately)
   yields physically identical nodes, so equality short-circuits on == *)
let test_intern_sharing () =
  Util.Cachectl.with_enabled true @@ fun () ->
  let build () =
    Expr.add (Expr.mul (Expr.var "I") (Expr.int 4)) (Expr.var "J")
  in
  let a = Expr.intern (build ()) and b = Expr.intern (build ()) in
  Alcotest.(check bool) "physically shared" true (a == b);
  Alcotest.(check bool) "still equal" true (Expr.equal a b);
  (* disabled interning is the identity *)
  Util.Cachectl.with_enabled false @@ fun () ->
  let c = build () in
  Alcotest.(check bool) "identity when disabled" true (Expr.intern c == c)

(* the per-unit fingerprint memo: repeat calls hit, Program.touch bumps
   the unit version and drops the memo, identical content refingerprints
   identically, edited content differently *)
let test_fingerprint_memo () =
  Util.Cachectl.with_enabled true @@ fun () ->
  let p =
    Frontend.Parser.parse_string
      "      PROGRAM M\n      INTEGER I\n      I = 1\n      I = I + 1\n\
      \      PRINT *, I\n      END\n"
  in
  let u = Program.main p in
  let counters base =
    match
      List.find_opt
        (fun (n, _, _) -> n = "punit.fingerprint")
        (Util.Cachectl.delta ~base (Util.Cachectl.snapshot ()))
    with
    | Some (_, h, m) -> (h, m)
    | None -> (0, 0)
  in
  let v0 = Punit.version u in
  let fp1 = Punit.fingerprint u in
  let base = Util.Cachectl.snapshot () in
  Alcotest.(check string) "repeat call returns the memo" fp1
    (Punit.fingerprint u);
  Alcotest.(check (pair int int)) "repeat call hit, no recompute" (1, 0)
    (counters base);
  Program.touch p u;
  Alcotest.(check bool) "touch bumps the version" true (Punit.version u > v0);
  let base = Util.Cachectl.snapshot () in
  Alcotest.(check string) "unchanged content refingerprints identically" fp1
    (Punit.fingerprint u);
  Alcotest.(check (pair int int)) "post-touch call recomputes" (0, 1)
    (counters base);
  Program.touch p u;
  u.pu_body <- List.rev u.pu_body;
  Alcotest.(check bool) "edited content changes the fingerprint" true
    (not (String.equal (Punit.fingerprint u) fp1))

let test_program_merge () =
  let a = Program.create [ Punit.create "MAIN" ] in
  let b = Program.create [ Punit.create ~kind:Subroutine "SUB" ] in
  let m = Program.merge a b in
  Alcotest.(check int) "two units" 2 (List.length (Program.units m));
  Alcotest.(check bool) "duplicate rejected" true
    (match Program.merge m b with
    | _ -> false
    | exception Invalid_argument _ -> true)

let tests =
  [ ("expr constructors", `Quick, test_constructors);
    ("expr simplify", `Quick, test_simplify);
    ("expr traversal", `Quick, test_traversal);
    ("expr rename", `Quick, test_rename);
    ("pattern basic", `Quick, test_pattern_basic);
    ("pattern nonlinear wildcards", `Quick, test_pattern_nonlinear);
    ("pattern rewrite", `Quick, test_pattern_rewrite);
    ("pattern find_all", `Quick, test_pattern_find_all);
    ("stmt fresh ids", `Quick, test_stmt_fresh_ids);
    ("stmt copy freshness", `Quick, test_stmt_copy_fresh);
    ("stmt queries", `Quick, test_stmt_queries);
    ("stmt rewrite", `Quick, test_stmt_rewrite);
    ("symtab basics", `Quick, test_symtab);
    ("symtab const_size", `Quick, test_const_size);
    ("consistency: wildcard", `Quick, test_consistency_wildcard);
    ("consistency: goto", `Quick, test_consistency_goto);
    ("consistency: dims", `Quick, test_consistency_dims);
    ("program merge", `Quick, test_program_merge);
    ("punit fingerprint memo", `Quick, test_fingerprint_memo);
    ("expr equal/compare/hash", `Quick, test_equal_compare_hash);
    ("expr intern sharing", `Quick, test_intern_sharing) ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_simplify_preserves; prop_subst_var ]
