(* Tests for the util library: rationals, PRNG, list helpers. *)

open Util

let rat = Alcotest.testable (fun ppf r -> Rat.pp ppf r) Rat.equal

let test_make_normalizes () =
  Alcotest.check rat "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
  Alcotest.check rat "-6/-4 = 3/2" (Rat.make 3 2) (Rat.make (-6) (-4));
  Alcotest.check rat "6/-4 = -3/2" (Rat.make (-3) 2) (Rat.make 6 (-4));
  Alcotest.check rat "0/7 = 0" Rat.zero (Rat.make 0 7)

let test_make_zero_den () =
  Alcotest.check_raises "zero denominator" (Invalid_argument "Rat.make: zero denominator")
    (fun () -> ignore (Rat.make 1 0))

let test_arith () =
  let half = Rat.make 1 2 and third = Rat.make 1 3 in
  Alcotest.check rat "1/2+1/3" (Rat.make 5 6) (Rat.add half third);
  Alcotest.check rat "1/2-1/3" (Rat.make 1 6) (Rat.sub half third);
  Alcotest.check rat "1/2*1/3" (Rat.make 1 6) (Rat.mul half third);
  Alcotest.check rat "(1/2)/(1/3)" (Rat.make 3 2) (Rat.div half third)

let test_div_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Rat.div Rat.one Rat.zero))

let test_floor_ceil () =
  Alcotest.(check int) "floor 7/2" 3 (Rat.floor (Rat.make 7 2));
  Alcotest.(check int) "floor -7/2" (-4) (Rat.floor (Rat.make (-7) 2));
  Alcotest.(check int) "ceil 7/2" 4 (Rat.ceil (Rat.make 7 2));
  Alcotest.(check int) "ceil -7/2" (-3) (Rat.ceil (Rat.make (-7) 2));
  Alcotest.(check int) "floor 4" 4 (Rat.floor (Rat.of_int 4))

let test_compare () =
  Alcotest.(check bool) "1/2 < 2/3" true (Rat.compare (Rat.make 1 2) (Rat.make 2 3) < 0);
  Alcotest.(check bool) "-1/2 < 1/3" true (Rat.compare (Rat.make (-1) 2) (Rat.make 1 3) < 0);
  Alcotest.(check int) "sign -3/4" (-1) (Rat.sign (Rat.make (-3) 4))

let test_to_int () =
  Alcotest.(check int) "to_int 5" 5 (Rat.to_int (Rat.of_int 5));
  Alcotest.check_raises "to_int 1/2" (Invalid_argument "Rat.to_int: not an integer")
    (fun () -> ignore (Rat.to_int (Rat.make 1 2)))

(* qcheck: field laws on random rationals *)
let rat_gen =
  QCheck2.Gen.(
    map2 (fun n d -> Rat.make n (if d = 0 then 1 else d)) (int_range (-1000) 1000)
      (int_range (-50) 50))

let prop_add_comm =
  QCheck2.Test.make ~name:"rat add commutative" ~count:500
    QCheck2.Gen.(pair rat_gen rat_gen)
    (fun (a, b) -> Rat.equal (Rat.add a b) (Rat.add b a))

let prop_mul_distrib =
  QCheck2.Test.make ~name:"rat mul distributes over add" ~count:500
    QCheck2.Gen.(triple rat_gen rat_gen rat_gen)
    (fun (a, b, c) ->
      Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)))

let prop_sub_add =
  QCheck2.Test.make ~name:"rat a-b+b = a" ~count:500
    QCheck2.Gen.(pair rat_gen rat_gen)
    (fun (a, b) -> Rat.equal a (Rat.add (Rat.sub a b) b))

let prop_floor_le =
  QCheck2.Test.make ~name:"floor(x) <= x < floor(x)+1" ~count:500 rat_gen
    (fun a ->
      let f = Rat.of_int (Rat.floor a) in
      Rat.compare f a <= 0 && Rat.compare a (Rat.add f Rat.one) < 0)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let xs = List.init 20 (fun _ -> Prng.int a 1000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_prng_range () =
  let g = Prng.create 7 in
  for _ = 1 to 200 do
    let v = Prng.range g 3 9 in
    Alcotest.(check bool) "in range" true (v >= 3 && v <= 9)
  done

let test_prng_float () =
  let g = Prng.create 3 in
  for _ = 1 to 200 do
    let x = Prng.float g in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_listx () =
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take over" [ 1; 2 ] (Listx.take 5 [ 1; 2 ]);
  Alcotest.(check (list int)) "drop" [ 3 ] (Listx.drop 2 [ 1; 2; 3 ]);
  Alcotest.(check int) "perms 3" 6 (List.length (Listx.permutations [ 1; 2; 3 ]));
  Alcotest.(check int) "perms 4" 24 (List.length (Listx.permutations [ 1; 2; 3; 4 ]));
  Alcotest.(check (option int)) "index_of" (Some 1)
    (Listx.index_of (fun x -> x = 5) [ 3; 5; 7 ]);
  Alcotest.(check (option int)) "index_of missing" None
    (Listx.index_of (fun x -> x = 9) [ 3; 5; 7 ]);
  Alcotest.(check int) "sum_by" 6 (Listx.sum_by (fun x -> x) [ 1; 2; 3 ]);
  Alcotest.(check int) "last" 3 (Listx.last [ 1; 2; 3 ]);
  Alcotest.(check int) "pairs incl diagonal" 9 (List.length (Listx.pairs [ 1; 2; 3 ]))

(* Env.parse_* are the single validation site for POLARIS_* variables;
   pin accepted forms, clamping and rejection of malformed values *)
let test_env_parse_jobs () =
  let rejected s =
    match Env.parse_jobs s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "plain" true (Env.parse_jobs "4" = Ok 4);
  Alcotest.(check bool) "whitespace trimmed" true (Env.parse_jobs " 8 " = Ok 8);
  Alcotest.(check bool) "huge count clamps to the ceiling" true
    (Env.parse_jobs "9999" = Ok Env.max_jobs);
  Alcotest.(check bool) "zero rejected" true (rejected "0");
  Alcotest.(check bool) "negative rejected" true (rejected "-3");
  Alcotest.(check bool) "non-numeric rejected" true (rejected "four");
  Alcotest.(check bool) "empty rejected" true (rejected "")

let test_env_parse_flag () =
  let rejected s =
    match Env.parse_flag s with Error _ -> true | Ok _ -> false
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " is true") true (Env.parse_flag s = Ok true))
    [ "1"; "true"; "YES"; "On"; " true " ];
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " is false") true (Env.parse_flag s = Ok false))
    [ "0"; "false"; "No"; "OFF" ];
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " rejected") true (rejected s))
    [ ""; "2"; "enable"; "oui" ]

(* the daemon-store knobs: POLARIS_MAX_CACHE_MB and the two path
   variables (POLARIS_CACHE_DIR, POLARIS_SOCKET) *)
let test_env_parse_mb () =
  let rejected s = match Env.parse_mb s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "plain" true (Env.parse_mb "64" = Ok 64);
  Alcotest.(check bool) "whitespace trimmed" true (Env.parse_mb " 128 " = Ok 128);
  Alcotest.(check bool) "zero rejected (store off = unset CACHE_DIR)" true
    (rejected "0");
  Alcotest.(check bool) "negative rejected" true (rejected "-5");
  Alcotest.(check bool) "non-numeric rejected" true (rejected "big");
  Alcotest.(check bool) "empty rejected" true (rejected "")

(* the daemon self-protection knobs: POLARIS_MAX_SESSIONS /
   POLARIS_FLUSH_EVERY (counts) and POLARIS_IDLE_TIMEOUT_S /
   POLARIS_FLUSH_INTERVAL_S (durations) *)
let test_env_parse_count () =
  let rejected s =
    match Env.parse_count s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "plain" true (Env.parse_count "64" = Ok 64);
  Alcotest.(check bool) "one is fine" true (Env.parse_count "1" = Ok 1);
  Alcotest.(check bool) "unclamped" true (Env.parse_count "100000" = Ok 100000);
  Alcotest.(check bool) "zero rejected" true (rejected "0");
  Alcotest.(check bool) "negative rejected" true (rejected "-3");
  Alcotest.(check bool) "non-numeric rejected" true (rejected "many");
  Alcotest.(check bool) "empty rejected" true (rejected "")

let test_env_parse_seconds () =
  let rejected s =
    match Env.parse_seconds s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "integer seconds" true (Env.parse_seconds "30" = Ok 30.0);
  Alcotest.(check bool) "fractional seconds" true
    (Env.parse_seconds "0.25" = Ok 0.25);
  Alcotest.(check bool) "zero rejected (would evict everyone)" true
    (rejected "0");
  Alcotest.(check bool) "negative rejected" true (rejected "-1.5");
  Alcotest.(check bool) "nan rejected" true (rejected "nan");
  Alcotest.(check bool) "inf rejected" true (rejected "inf");
  Alcotest.(check bool) "non-numeric rejected" true (rejected "soon")

(* the scheduling knobs: POLARIS_CHUNK (work-stealing batch size) and
   POLARIS_MAX_INFLIGHT (daemon concurrent-compile bound) *)
let test_env_parse_chunk () =
  let rejected s =
    match Env.parse_chunk s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "plain" true (Env.parse_chunk "16" = Ok 16);
  Alcotest.(check bool) "one is fine" true (Env.parse_chunk "1" = Ok 1);
  Alcotest.(check bool) "whitespace trimmed" true (Env.parse_chunk " 64 " = Ok 64);
  Alcotest.(check bool) "ceiling accepted" true
    (Env.parse_chunk "1000000" = Ok 1_000_000);
  Alcotest.(check bool) "zero rejected (would livelock the batcher)" true
    (rejected "0");
  Alcotest.(check bool) "negative rejected" true (rejected "-8");
  Alcotest.(check bool) "absurd size rejected as a typo" true
    (rejected "1000001");
  Alcotest.(check bool) "non-numeric rejected" true (rejected "auto");
  Alcotest.(check bool) "empty rejected" true (rejected "")

let test_env_parse_inflight () =
  let rejected s =
    match Env.parse_inflight s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "plain" true (Env.parse_inflight "1" = Ok 1);
  Alcotest.(check bool) "whitespace trimmed" true
    (Env.parse_inflight " 2 " = Ok 2);
  Alcotest.(check bool) "huge bound clamps to the job ceiling" true
    (Env.parse_inflight "9999" = Ok Env.max_jobs);
  Alcotest.(check bool) "zero rejected (the daemon must make progress)" true
    (rejected "0");
  Alcotest.(check bool) "negative rejected" true (rejected "-1");
  Alcotest.(check bool) "non-numeric rejected" true (rejected "all");
  Alcotest.(check bool) "empty rejected" true (rejected "")

(* POLARIS_RUNTIME_PROCS: the real executor's domain count *)
let test_env_parse_procs () =
  let rejected s =
    match Env.parse_procs s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "plain" true (Env.parse_procs "4" = Ok 4);
  Alcotest.(check bool) "one is fine (serial)" true (Env.parse_procs "1" = Ok 1);
  Alcotest.(check bool) "whitespace trimmed" true (Env.parse_procs " 8 " = Ok 8);
  Alcotest.(check bool) "huge count clamps to the ceiling" true
    (Env.parse_procs "9999" = Ok Env.max_runtime_procs);
  Alcotest.(check bool) "zero rejected" true (rejected "0");
  Alcotest.(check bool) "negative rejected" true (rejected "-2");
  Alcotest.(check bool) "non-numeric rejected" true (rejected "all");
  Alcotest.(check bool) "empty rejected" true (rejected "")

let test_env_parse_path () =
  Alcotest.(check bool) "plain path" true
    (Env.parse_path "/tmp/cache" = Ok "/tmp/cache");
  Alcotest.(check bool) "trimmed" true (Env.parse_path " /a/b " = Ok "/a/b");
  Alcotest.(check bool) "empty rejected" true
    (match Env.parse_path "" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "whitespace-only rejected" true
    (match Env.parse_path "   " with Error _ -> true | Ok _ -> false)

let tests =
  [ ("rat normalization", `Quick, test_make_normalizes);
    ("env jobs parsing", `Quick, test_env_parse_jobs);
    ("env flag parsing", `Quick, test_env_parse_flag);
    ("env cache-size parsing", `Quick, test_env_parse_mb);
    ("env count parsing", `Quick, test_env_parse_count);
    ("env seconds parsing", `Quick, test_env_parse_seconds);
    ("env chunk parsing", `Quick, test_env_parse_chunk);
    ("env inflight parsing", `Quick, test_env_parse_inflight);
    ("env runtime-procs parsing", `Quick, test_env_parse_procs);
    ("env path parsing", `Quick, test_env_parse_path);
    ("rat zero denominator", `Quick, test_make_zero_den);
    ("rat arithmetic", `Quick, test_arith);
    ("rat division by zero", `Quick, test_div_by_zero);
    ("rat floor/ceil", `Quick, test_floor_ceil);
    ("rat compare", `Quick, test_compare);
    ("rat to_int", `Quick, test_to_int);
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng range", `Quick, test_prng_range);
    ("prng float", `Quick, test_prng_float);
    ("listx helpers", `Quick, test_listx) ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_add_comm; prop_mul_distrib; prop_sub_add; prop_floor_le ]
