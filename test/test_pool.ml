(* The work-stealing domain pool: deterministic merge semantics, exact
   scheduler telemetry, and end-to-end byte-identity of the whole
   compiler between -j 1 and -j 8.

   The pool's contract is that [Pool.map f xs] is observably
   [List.map f xs] at any job count and any chunk size: results in
   input order, earliest failure re-raised.  The fuzz check below is
   the teeth: 100 random programs through the full Polaris pipeline,
   comparing the annotated output source, the per-loop verdicts and the
   incident list between a serial and an 8-domain compile.  (Statement
   ids are excluded from the comparison everywhere: their values depend
   on allocation order across domains and carry no meaning beyond
   uniqueness.) *)

open Util

(* spin so tasks finish in scrambled wall-clock order without Unix *)
let burn n =
  let x = ref 0 in
  for i = 1 to n * 10_000 do
    x := !x + i
  done;
  ignore !x

let test_ordering () =
  let xs = List.init 40 Fun.id in
  let serial = List.map (fun i -> i * i) xs in
  let pooled =
    Pool.with_jobs 4 (fun () ->
        Pool.map
          (fun i ->
            (* earlier items do more work: without an ordered merge the
               results would come back scrambled *)
            burn (40 - i);
            i * i)
          xs)
  in
  Alcotest.(check (list int)) "results in input order" serial pooled

let test_exception_earliest () =
  let attempt jobs =
    match
      Pool.with_jobs jobs (fun () ->
          Pool.map
            (fun i ->
              if i = 3 || i = 7 then failwith (Printf.sprintf "boom-%d" i);
              burn (20 - i);
              i)
            (List.init 12 Fun.id))
    with
    | _ -> "no exception"
    | exception Failure m -> m
  in
  (* the serial map raises at element 3 and never reaches 7; the pool
     must surface the same exception even when task 7 fails first *)
  Alcotest.(check string) "serial raises earliest" "boom-3" (attempt 1);
  Alcotest.(check string) "pool raises earliest" "boom-3" (attempt 4)

let test_nested_submit_rejected () =
  let r =
    Pool.with_jobs 2 (fun () ->
        Pool.map
          (fun i ->
            match Pool.map Fun.id [ 1; 2 ] with
            | _ -> `Nested_ran
            | exception Pool.Nested_submit -> `Rejected i)
          [ 0; 1; 2 ])
  in
  Alcotest.(check bool) "nested map rejected on every task" true
    (List.for_all (function `Rejected _ -> true | _ -> false) r)

let test_shutdown_respawn () =
  let go () =
    Pool.with_jobs 3 (fun () -> Pool.map (fun i -> i + 1) [ 1; 2; 3; 4; 5 ])
  in
  Alcotest.(check (list int)) "first batch" [ 2; 3; 4; 5; 6 ] (go ());
  (* an idle shutdown must be invisible: the next map respawns *)
  Pool.shutdown ();
  Alcotest.(check (list int)) "after shutdown" [ 2; 3; 4; 5; 6 ] (go ());
  (* changing the job count swaps the pool transparently too *)
  let wider =
    Pool.with_jobs 5 (fun () -> Pool.map (fun i -> i * 10) [ 1; 2; 3 ])
  in
  Alcotest.(check (list int)) "resized pool" [ 10; 20; 30 ] wider

let test_scheduler_counters () =
  let saved = Pool.chunk () in
  Fun.protect ~finally:(fun () -> Pool.set_chunk saved) @@ fun () ->
  (* a pinned chunk of 1 makes the plan exact: 40 tasks -> 40 chunks in
     one fanned batch, nothing inline *)
  Pool.set_chunk (Some 1);
  let base = Pool.counters () in
  let r =
    Pool.with_jobs 4 (fun () -> Pool.map (fun i -> i + 1) (List.init 40 Fun.id))
  in
  Alcotest.(check (list int)) "fanned results"
    (List.init 40 (fun i -> i + 1))
    r;
  let d = Pool.counters_delta ~base (Pool.counters ()) in
  Alcotest.(check int) "one fanned batch" 1 d.c_batches;
  Alcotest.(check int) "no inline batch" 0 d.c_inline;
  Alcotest.(check int) "every task executed exactly once" 40 d.c_tasks;
  Alcotest.(check int) "one chunk per task under --chunk 1" 40 d.c_chunks;
  Alcotest.(check bool) "steal count is sane" true (d.c_steals >= 0);
  (* a chunk swallowing the whole batch short-circuits to the inline
     path: no fan-out, no wake-up *)
  Pool.set_chunk (Some 1000);
  let base = Pool.counters () in
  let r =
    Pool.with_jobs 4 (fun () -> Pool.map (fun i -> i * 2) (List.init 10 Fun.id))
  in
  Alcotest.(check (list int)) "inline results"
    (List.init 10 (fun i -> i * 2))
    r;
  let d = Pool.counters_delta ~base (Pool.counters ()) in
  Alcotest.(check int) "inline batch counted" 1 d.c_inline;
  Alcotest.(check int) "no fanned batch" 0 d.c_batches

let test_chunk_identity () =
  (* the chunk size is a scheduling knob only: any pin must produce the
     same results as the cost model *)
  let xs = List.init 57 Fun.id in
  let expect = List.map (fun i -> i * i - i) xs in
  let saved = Pool.chunk () in
  Fun.protect ~finally:(fun () -> Pool.set_chunk saved) @@ fun () ->
  List.iter
    (fun pin ->
      Pool.set_chunk pin;
      let got =
        Pool.with_jobs 4 (fun () ->
            Pool.map
              (fun i ->
                burn ((i * 7) mod 13);
                (i * i) - i)
              xs)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "chunk %s"
           (match pin with None -> "auto" | Some c -> string_of_int c))
        expect got)
    [ None; Some 1; Some 3; Some 7; Some 1000 ]

let test_jobs_clamping () =
  (* the ambient job count is whatever POLARIS_JOBS says (the whole
     suite runs under =4 in CI): compare against it, don't assume 1 *)
  let ambient = Pool.jobs () in
  Pool.with_jobs 0 (fun () ->
      Alcotest.(check int) "0 clamps to 1" 1 (Pool.jobs ());
      Alcotest.(check bool) "1 job is serial" false (Pool.parallel ()));
  Pool.with_jobs 100_000 (fun () ->
      Alcotest.(check int) "huge clamps to max" Pool.max_jobs (Pool.jobs ()));
  Alcotest.(check int) "with_jobs restores" ambient (Pool.jobs ())

(* ------------------------------------------------------------------ *)
(* End-to-end byte-identity: -j 1 vs -j 4 over fuzzed programs         *)

(* everything observable about one compilation, statement ids excluded *)
let compile_signature src =
  Cachectl.clear_all ();
  let t = Core.Pipeline.compile (Core.Config.polaris ()) src in
  ( Core.Pipeline.output_source t,
    List.map
      (fun (l : Core.Pipeline.loop_result) ->
        ( l.unit_name, l.report.loop_index, l.report.parallel,
          l.report.speculative, l.report.reason ))
      t.loops,
    List.map
      (fun (i : Core.Pipeline.incident) ->
        (i.inc_pass, i.inc_reason, i.inc_rolled_back, i.inc_disabled))
      t.incidents )

let test_fuzz_identity () =
  for seed = 1 to 100 do
    let src = Test_fuzz.gen_program (Util.Prng.create seed) in
    let c0 = Dep.Driver.counters_snapshot () in
    let serial = compile_signature src in
    let c1 = Dep.Driver.counters_snapshot () in
    let pooled = Pool.with_jobs 8 (fun () -> compile_signature src) in
    let c2 = Dep.Driver.counters_snapshot () in
    if serial <> pooled then
      Alcotest.failf "seed %d: -j 8 compile differs from -j 1" seed;
    (* the dependence-test counters must advance identically too: the
       tally merge replays them in program order *)
    let delta (a : Dep.Driver.counters) (b : Dep.Driver.counters) =
      ( b.range_proved - a.range_proved, b.range_failed - a.range_failed,
        b.linear_proved - a.linear_proved, b.linear_failed - a.linear_failed,
        b.unknown - a.unknown )
    in
    if delta c0 c1 <> delta c1 c2 then
      Alcotest.failf "seed %d: -j 8 dependence counters differ from -j 1" seed
  done

let tests =
  [ Alcotest.test_case "map merges in input order" `Quick test_ordering;
    Alcotest.test_case "earliest task failure wins" `Quick
      test_exception_earliest;
    Alcotest.test_case "nested submission is rejected" `Quick
      test_nested_submit_rejected;
    Alcotest.test_case "shutdown is transparent" `Quick test_shutdown_respawn;
    Alcotest.test_case "job count clamping" `Quick test_jobs_clamping;
    Alcotest.test_case "scheduler counters are exact" `Quick
      test_scheduler_counters;
    Alcotest.test_case "chunk size never changes results" `Quick
      test_chunk_identity;
    Alcotest.test_case "-j1 vs -j8 byte-identical (100 fuzz seeds)" `Slow
      test_fuzz_identity ]
