(* The declarative pass/pipeline registry (Core.Registry / Core.Pass_id)
   and the validated environment knobs behind it (Util.Env).

   Three layers are pinned here.  (1) Registry invariants: the presets
   parse to their documented pass lists, custom pipelines resolve
   through Pass_id.of_name, and the three rejection modes — unknown
   pass, duplicate pass, ordering violation — each produce a clean
   configuration error whose message names the offending pass or the
   violated edge.  (2) Metadata consistency: every pass's declared
   [consumes] set refers to analysis caches the reuse ledger actually
   tracks, so --explain-reuse can never report on a phantom cache.
   (3) The CLI boundary: an ill-formed --pipeline/--emit-backend is a
   clean exit 1 from the real binary, never a traceback. *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check_contains msg sub s =
  if not (contains ~sub s) then
    Alcotest.failf "%s: expected %S within %S" msg sub s

let pass_names pl =
  List.map Core.Pass_id.name pl.Core.Registry.pl_passes

(* ------------------------------------------------------------------ *)
(* Preset and custom parsing                                           *)

let test_presets () =
  (match Core.Registry.parse "thorough" with
  | Ok pl ->
    Alcotest.(check (list string)) "thorough order"
      [ "inline"; "constprop"; "induction"; "constprop2"; "deadcode";
        "parallelize" ]
      (pass_names pl)
  | Error m -> Alcotest.failf "thorough rejected: %s" m);
  (match Core.Registry.parse "fast" with
  | Ok pl ->
    Alcotest.(check (list string)) "fast order"
      [ "constprop"; "induction"; "parallelize" ]
      (pass_names pl)
  | Error m -> Alcotest.failf "fast rejected: %s" m);
  (match Core.Registry.parse "serial" with
  | Ok pl ->
    if List.mem "parallelize" (pass_names pl) then
      Alcotest.fail "serial preset must not parallelize"
  | Error m -> Alcotest.failf "serial rejected: %s" m);
  (* parsing is case- and whitespace-tolerant *)
  match Core.Registry.parse "  Thorough " with
  | Ok pl -> Alcotest.(check string) "normalized" "thorough" pl.pl_name
  | Error m -> Alcotest.failf "' Thorough ' rejected: %s" m

let test_every_preset_checks () =
  List.iter
    (fun pl ->
      match Core.Registry.check pl with
      | Ok () -> ()
      | Error m ->
        Alcotest.failf "preset %s fails its own registry check: %s"
          pl.Core.Registry.pl_name m)
    Core.Registry.presets

let test_custom_ok () =
  match Core.Registry.parse "custom:constprop,induction,parallelize" with
  | Ok pl ->
    Alcotest.(check (list string)) "custom passes"
      [ "constprop"; "induction"; "parallelize" ]
      (pass_names pl)
  | Error m -> Alcotest.failf "valid custom rejected: %s" m

let test_unknown_pipeline () =
  match Core.Registry.parse "blazing" with
  | Ok _ -> Alcotest.fail "unknown pipeline accepted"
  | Error m ->
    check_contains "unknown pipeline" "unknown pipeline 'blazing'" m;
    (* the error teaches the valid spellings *)
    check_contains "lists presets" "thorough" m;
    check_contains "teaches custom" "custom:" m

let test_unknown_pass () =
  match Core.Registry.parse "custom:constprop,nope" with
  | Ok _ -> Alcotest.fail "unknown pass accepted"
  | Error m ->
    check_contains "unknown pass" "unknown pass 'nope'" m;
    (* the known-pass list is spelled out for the user *)
    List.iter
      (fun p -> check_contains "known list" (Core.Pass_id.name p) m)
      Core.Pass_id.all

let test_duplicate_pass () =
  match Core.Registry.parse "custom:deadcode,deadcode" with
  | Ok _ -> Alcotest.fail "duplicate pass accepted"
  | Error m -> check_contains "duplicate" "lists pass 'deadcode' twice" m

let test_empty_custom () =
  match Core.Registry.parse "custom:" with
  | Ok _ -> Alcotest.fail "empty custom accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Ordering constraints                                                *)

(* every registered edge, violated in isolation, is rejected with a
   message naming exactly that edge *)
let test_ordering_violations_name_the_edge () =
  List.iter
    (fun (before, after, _why) ->
      let spec =
        Printf.sprintf "custom:%s,%s" (Core.Pass_id.name after)
          (Core.Pass_id.name before)
      in
      match Core.Registry.parse spec with
      | Ok _ -> Alcotest.failf "violation accepted: %s" spec
      | Error m ->
        check_contains spec
          (Printf.sprintf "violates ordering constraint '%s' < '%s'"
             (Core.Pass_id.name before) (Core.Pass_id.name after))
          m)
    Core.Pass_id.ordering_edges

let test_ordering_irrelevant_edges_pass () =
  (* an edge only binds when both endpoints are present: parallelize
     alone, or deadcode alone, are fine in any position *)
  List.iter
    (fun spec ->
      match Core.Registry.parse spec with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "%s rejected: %s" spec m)
    [ "custom:parallelize"; "custom:deadcode"; "custom:constprop,parallelize" ]

(* ------------------------------------------------------------------ *)
(* Metadata consistency                                                *)

let test_consumes_are_tracked () =
  let tracked = Analysis.Manager.tracked () in
  List.iter
    (fun p ->
      List.iter
        (fun c ->
          if not (List.mem c tracked) then
            Alcotest.failf
              "pass %s consumes analysis %S which no reuse ledger tracks \
               (tracked: %s)"
              (Core.Pass_id.name p) c
              (String.concat ", " tracked))
        (Core.Pass_id.consumes p))
    Core.Pass_id.all

let test_of_name_total () =
  (* of_name inverts name on every pass, and rejects junk *)
  List.iter
    (fun p ->
      match Core.Pass_id.of_name (Core.Pass_id.name p) with
      | Some q when q = p -> ()
      | _ -> Alcotest.failf "of_name (name %s) broken" (Core.Pass_id.name p))
    Core.Pass_id.all;
  Alcotest.(check bool) "junk" true (Core.Pass_id.of_name "junk" = None)

(* ------------------------------------------------------------------ *)
(* Util.Env validated parsers                                          *)

let test_env_pipeline_spec () =
  let ok s =
    match Util.Env.parse_pipeline_spec s with
    | Ok v -> v
    | Error m -> Alcotest.failf "parse_pipeline_spec %S rejected: %s" s m
  in
  let err s =
    match Util.Env.parse_pipeline_spec s with
    | Ok v -> Alcotest.failf "parse_pipeline_spec %S accepted as %S" s v
    | Error _ -> ()
  in
  Alcotest.(check string) "preset" "thorough" (ok "thorough");
  Alcotest.(check string) "trimmed" "fast" (ok "  fast  ");
  ignore (ok "custom:constprop,parallelize");
  ignore (ok "CUSTOM:deadcode");
  err "";
  err "   ";
  err "weird:constprop";
  err "custom:";
  err "custom: , ,";
  err "custom:const prop";
  err "no good"

let test_env_backend_name () =
  (match Util.Env.parse_backend_name "F77-OMP" with
  | Ok v -> Alcotest.(check string) "lowercased" "f77-omp" v
  | Error m -> Alcotest.failf "F77-OMP rejected: %s" m);
  (match Util.Env.parse_backend_name " c " with
  | Ok v -> Alcotest.(check string) "trimmed" "c" v
  | Error m -> Alcotest.failf "' c ' rejected: %s" m);
  List.iter
    (fun s ->
      match Util.Env.parse_backend_name s with
      | Ok v -> Alcotest.failf "backend %S accepted as %S" s v
      | Error _ -> ())
    [ ""; "f 77"; "c!" ]

(* every registry backend name round-trips through the env parser, so
   POLARIS_BACKEND can always select any registered backend *)
let test_env_accepts_all_registered () =
  List.iter
    (fun name ->
      match Util.Env.parse_backend_name name with
      | Ok v -> Alcotest.(check string) name name v
      | Error m -> Alcotest.failf "registered backend %s rejected: %s" name m)
    Backend.Registry.names

(* ------------------------------------------------------------------ *)
(* Backend registry resolution                                         *)

let test_backend_find () =
  (match Backend.Registry.find " F77-OMP " with
  | Ok b -> Alcotest.(check string) "normalized" "f77-omp"
              b.Backend.Registry.b_name
  | Error m -> Alcotest.failf "f77-omp lookup failed: %s" m);
  match Backend.Registry.find "rust" with
  | Ok _ -> Alcotest.fail "unknown backend accepted"
  | Error m ->
    check_contains "unknown backend" "unknown backend 'rust'" m;
    List.iter
      (fun n -> check_contains "known list" n m)
      Backend.Registry.names

(* ------------------------------------------------------------------ *)
(* CLI boundary: the real binary rejects bad specs with exit 1          *)

let polaris_exe = "../bin/polaris_cli.exe"

let with_temp_source f =
  let path = Filename.temp_file "polaris_registry" ".f" in
  let oc = open_out path in
  output_string oc
    (String.concat "\n"
       [ "      PROGRAM T"; "      REAL A(10)"; "      DO I = 1, 4";
         "        A(I) = I"; "      END DO"; "      PRINT *, A(2)";
         "      END"; "" ]);
  close_out oc;
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let run_cli args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" polaris_exe args)

let test_cli_rejects_bad_pipeline () =
  with_temp_source @@ fun src ->
  Alcotest.(check int) "unknown pass exits 1" 1
    (run_cli (Printf.sprintf "compile --pipeline custom:nope %s" src));
  Alcotest.(check int) "ordering violation exits 1" 1
    (run_cli
       (Printf.sprintf "compile --pipeline custom:parallelize,constprop %s" src));
  Alcotest.(check int) "unknown preset exits 1" 1
    (run_cli (Printf.sprintf "compile --pipeline blazing %s" src));
  Alcotest.(check int) "good pipeline exits 0" 0
    (run_cli (Printf.sprintf "compile --pipeline fast %s" src))

let test_cli_rejects_bad_backend () =
  with_temp_source @@ fun src ->
  Alcotest.(check int) "unknown backend exits 1" 1
    (run_cli (Printf.sprintf "compile --emit-backend rust %s" src));
  Alcotest.(check int) "known backend exits 0" 0
    (run_cli (Printf.sprintf "compile --emit-backend f77-omp %s" src))

(* a malformed POLARIS_PIPELINE must warn and fall back, never break a
   working invocation (flags are strict; the environment is advisory) *)
let test_cli_env_falls_back () =
  with_temp_source @@ fun src ->
  Alcotest.(check int) "bad env pipeline still compiles" 0
    (Sys.command
       (Printf.sprintf
          "POLARIS_PIPELINE=custom:nope %s compile %s >/dev/null 2>&1"
          polaris_exe src));
  Alcotest.(check int) "bad env backend still compiles" 0
    (Sys.command
       (Printf.sprintf "POLARIS_BACKEND=rust %s compile %s >/dev/null 2>&1"
          polaris_exe src))

let read_cli args =
  let ic = Unix.open_process_in (Printf.sprintf "%s %s 2>&1" polaris_exe args) in
  let b = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel b ic 1
     done
   with End_of_file -> ());
  (match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.failf "%s %s exited non-zero" polaris_exe args);
  Buffer.contents b

let test_cli_listings () =
  let passes = read_cli "list-passes" in
  List.iter
    (fun p -> check_contains "list-passes" (Core.Pass_id.name p) passes)
    Core.Pass_id.all;
  check_contains "metadata shown" "consumes:" passes;
  check_contains "metadata shown" "disables-on-fault:" passes;
  let pipelines = read_cli "list-pipelines" in
  List.iter
    (fun pl ->
      check_contains "list-pipelines" pl.Core.Registry.pl_name pipelines)
    Core.Registry.presets;
  check_contains "custom documented" "custom:" pipelines;
  let backends = read_cli "list-backends" in
  List.iter
    (fun n -> check_contains "list-backends" n backends)
    Backend.Registry.names

let tests =
  [ Alcotest.test_case "presets parse" `Quick test_presets;
    Alcotest.test_case "presets self-check" `Quick test_every_preset_checks;
    Alcotest.test_case "custom parses" `Quick test_custom_ok;
    Alcotest.test_case "unknown pipeline" `Quick test_unknown_pipeline;
    Alcotest.test_case "unknown pass" `Quick test_unknown_pass;
    Alcotest.test_case "duplicate pass" `Quick test_duplicate_pass;
    Alcotest.test_case "empty custom" `Quick test_empty_custom;
    Alcotest.test_case "ordering violations name the edge" `Quick
      test_ordering_violations_name_the_edge;
    Alcotest.test_case "unbound edges pass" `Quick
      test_ordering_irrelevant_edges_pass;
    Alcotest.test_case "consumes are tracked" `Quick test_consumes_are_tracked;
    Alcotest.test_case "of_name total" `Quick test_of_name_total;
    Alcotest.test_case "env pipeline syntax" `Quick test_env_pipeline_spec;
    Alcotest.test_case "env backend syntax" `Quick test_env_backend_name;
    Alcotest.test_case "env accepts registered backends" `Quick
      test_env_accepts_all_registered;
    Alcotest.test_case "backend find" `Quick test_backend_find;
    Alcotest.test_case "cli rejects bad pipeline" `Quick
      test_cli_rejects_bad_pipeline;
    Alcotest.test_case "cli rejects bad backend" `Quick
      test_cli_rejects_bad_backend;
    Alcotest.test_case "cli env falls back" `Quick test_cli_env_falls_back;
    Alcotest.test_case "cli listings" `Quick test_cli_listings ]
