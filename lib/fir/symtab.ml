(** Symbol tables for program units.

    Fortran implicit typing is honoured: an undeclared identifier whose
    name starts with I..N is INTEGER, anything else REAL, matching the
    default rules the Perfect codes rely on. *)

open Ast

type t = (string, symbol) Hashtbl.t

let create () : t = Hashtbl.create 32

let norm = String.uppercase_ascii

(** Type given to undeclared identifiers by Fortran implicit rules. *)
let implicit_type name =
  let name = norm name in
  if String.length name = 0 then Real
  else match name.[0] with 'I' .. 'N' -> Integer | _ -> Real

let mk_symbol ?(dims = []) ?param ?common ?arg_pos ?typ name =
  let name = norm name in
  let sym_type = match typ with Some t -> t | None -> implicit_type name in
  { sym_name = name; sym_type; sym_dims = dims; sym_param = param;
    sym_common = common; sym_arg_pos = arg_pos }

(** Insert or replace the definition of a symbol. *)
let define (t : t) (s : symbol) = Hashtbl.replace t s.sym_name s

let find_opt (t : t) name = Hashtbl.find_opt t (norm name)

(** Look up [name], materializing an implicitly typed scalar if absent.
    This mirrors Fortran's implicit declaration semantics. *)
let lookup (t : t) name =
  let name = norm name in
  match Hashtbl.find_opt t name with
  | Some s -> s
  | None ->
    let s = mk_symbol name in
    Hashtbl.replace t name s;
    s

let mem (t : t) name = Hashtbl.mem t (norm name)
let remove (t : t) name = Hashtbl.remove t (norm name)

let is_array (t : t) name =
  match find_opt t name with Some s -> s.sym_dims <> [] | None -> false

let is_parameter (t : t) name =
  match find_opt t name with Some s -> Option.is_some s.sym_param | None -> false

(** Declared element type of [name] (implicit rules if undeclared). *)
let type_of (t : t) name =
  match find_opt t name with Some s -> s.sym_type | None -> implicit_type name

let fold f (t : t) acc = Hashtbl.fold f t acc

let symbols (t : t) =
  fold (fun _ s acc -> s :: acc) t []
  |> List.sort (fun a b -> String.compare a.sym_name b.sym_name)

let copy (t : t) : t = Hashtbl.copy t

(** In-place restore of [t] to the contents of [from] (typically an
    earlier {!copy}); existing references to [t] see the rolled-back
    state.  The fail-safe pipeline uses this to undo a pass that
    corrupted the symbol table. *)
let restore ~(from : t) (t : t) =
  Hashtbl.reset t;
  Hashtbl.iter (fun k v -> Hashtbl.replace t k v) from

(** Number of elements of array symbol [s] if all dims are constant. *)
let const_size (s : symbol) =
  let dim_size (lo, hi) =
    match (Expr.int_val lo, Expr.int_val hi) with
    | Some l, Some h when h >= l -> Some (h - l + 1)
    | _ -> None
  in
  List.fold_left
    (fun acc d ->
      match (acc, dim_size d) with Some a, Some n -> Some (a * n) | _ -> None)
    (Some 1) s.sym_dims
