(** Operations on {!Ast.expr} values: construction helpers, structural
    equality, traversal, substitution and a light algebraic simplifier.

    The Polaris paper (§2) stresses powerful structural-equality and
    pattern-matching routines on expressions; this module provides the
    former, {!Pattern} the latter. *)

open Ast

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)

let int n = Int_lit n
let real x = Real_lit x
let var v = Var (String.uppercase_ascii v)
let ref_ v args = Ref (String.uppercase_ascii v, args)
let call f args = Fun_call (String.uppercase_ascii f, args)

let add a b = Binary (Add, a, b)
let sub a b = Binary (Sub, a, b)
let mul a b = Binary (Mul, a, b)
let div a b = Binary (Div, a, b)
let pow a b = Binary (Pow, a, b)
let neg a = Unary (Neg, a)
let zero = Int_lit 0
let one = Int_lit 1

let lt a b = Binary (Lt, a, b)
let le a b = Binary (Le, a, b)
let gt a b = Binary (Gt, a, b)
let ge a b = Binary (Ge, a, b)
let eq a b = Binary (Eq, a, b)
let ne a b = Binary (Ne, a, b)
let and_ a b = Binary (And, a, b)
let or_ a b = Binary (Or, a, b)
let not_ a = Unary (Not, a)

(* ------------------------------------------------------------------ *)
(* Equality / ordering                                                 *)

(* Hand-written rather than polymorphic compare: (1) physical equality
   short-circuits, which turns structural walks into O(1) pointer tests
   on hash-consed subtrees (see [intern] below); (2) [Real_lit] uses
   [Float.compare], so [equal] and [compare] agree even on NaN, where
   polymorphic [=] and [Stdlib.compare] contradict each other. *)

(** Structural equality; [Wildcard i] only equals [Wildcard i]. *)
let rec equal (a : expr) (b : expr) =
  a == b
  ||
  match (a, b) with
  | Int_lit x, Int_lit y -> x = y
  | Real_lit x, Real_lit y -> Float.compare x y = 0
  | Logical_lit x, Logical_lit y -> x = y
  | Char_lit x, Char_lit y -> String.equal x y
  | Var x, Var y -> String.equal x y
  | Wildcard i, Wildcard j -> i = j
  | Ref (v, xs), Ref (w, ys) | Fun_call (v, xs), Fun_call (w, ys) ->
    String.equal v w && equal_list xs ys
  | Unary (op, x), Unary (oq, y) -> op = oq && equal x y
  | Binary (op, x1, x2), Binary (oq, y1, y2) ->
    op = oq && equal x1 y1 && equal x2 y2
  | ( ( Int_lit _ | Real_lit _ | Logical_lit _ | Char_lit _ | Var _
      | Wildcard _ | Ref _ | Fun_call _ | Unary _ | Binary _ ),
      _ ) ->
    false

and equal_list xs ys =
  match (xs, ys) with
  | [], [] -> true
  | x :: xs, y :: ys -> equal x y && equal_list xs ys
  | _ -> false

let constructor_rank = function
  | Int_lit _ -> 0
  | Real_lit _ -> 1
  | Logical_lit _ -> 2
  | Char_lit _ -> 3
  | Var _ -> 4
  | Ref _ -> 5
  | Fun_call _ -> 6
  | Unary _ -> 7
  | Binary _ -> 8
  | Wildcard _ -> 9

(** Total structural order, used to key maps of expressions.  Agrees
    with {!equal} ([compare a b = 0] iff [equal a b]). *)
let rec compare (a : expr) (b : expr) =
  if a == b then 0
  else
    match (a, b) with
    | Int_lit x, Int_lit y -> Int.compare x y
    | Real_lit x, Real_lit y -> Float.compare x y
    | Logical_lit x, Logical_lit y -> Bool.compare x y
    | Char_lit x, Char_lit y -> String.compare x y
    | Var x, Var y -> String.compare x y
    | Wildcard i, Wildcard j -> Int.compare i j
    | Ref (v, xs), Ref (w, ys) | Fun_call (v, xs), Fun_call (w, ys) ->
      let c = String.compare v w in
      if c <> 0 then c else compare_list xs ys
    | Unary (op, x), Unary (oq, y) ->
      let c = Stdlib.compare op oq in
      if c <> 0 then c else compare x y
    | Binary (op, x1, x2), Binary (oq, y1, y2) ->
      let c = Stdlib.compare op oq in
      if c <> 0 then c
      else
        let c = compare x1 y1 in
        if c <> 0 then c else compare x2 y2
    | _ -> Int.compare (constructor_rank a) (constructor_rank b)

and compare_list xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys ->
    let c = compare x y in
    if c <> 0 then c else compare_list xs ys

(* ------------------------------------------------------------------ *)
(* Hashing and hash-consing                                            *)

let hash_combine h k = (h * 0x01000193) lxor k

(** Structural hash consistent with {!equal}, bounded so pathological
    trees stay cheap: at most [64] nodes contribute. *)
let hash (e : expr) : int =
  let budget = ref 64 in
  let rec go h e =
    if !budget <= 0 then h
    else begin
      decr budget;
      match e with
      | Int_lit n -> hash_combine h (n lxor 0x11)
      | Real_lit x -> hash_combine h (Hashtbl.hash x lxor 0x22)
      | Logical_lit b -> hash_combine h (if b then 0x33 else 0x44)
      | Char_lit s -> hash_combine h (Hashtbl.hash s lxor 0x55)
      | Var v -> hash_combine h (Hashtbl.hash v lxor 0x66)
      | Wildcard i -> hash_combine h (i lxor 0x77)
      | Ref (v, args) ->
        List.fold_left go (hash_combine (go h (Var v)) 0x88) args
      | Fun_call (v, args) ->
        List.fold_left go (hash_combine (go h (Var v)) 0x99) args
      | Unary (op, a) -> go (hash_combine h (Hashtbl.hash op lxor 0xaa)) a
      | Binary (op, a, b) ->
        go (go (hash_combine h (Hashtbl.hash op lxor 0xbb)) a) b
    end
  in
  go 0x811c9dc5 e land max_int

module Pool = Hashtbl.Make (struct
  type t = expr

  let equal = equal
  let hash = hash
end)

let pool : expr Pool.t = Pool.create 4096

(* Historically the intern pool was single-writer (parse time, always
   the submitting domain).  The daemon's concurrent compile workers
   broke that assumption — each worker parses its own request — so the
   pool now follows the same discipline as {!Symbolic.Cache}: the
   shared pool is read-only whenever the caller holds a
   {!Util.Pool.slot}, slot-local shard pools absorb new expressions,
   and the merge hook promotes them at the next sequential point.
   Unlike the memo caches, lookups here stay shared-first: the shared
   pool holds the canonical representatives, and maximal [==] sharing
   with already-interned expressions is the whole point. *)
let pool_shards : expr Pool.t option array = Array.make Util.Pool.max_jobs None

let pool_shard i =
  match pool_shards.(i) with
  | Some t -> t
  | None ->
    let t = Pool.create 256 in
    pool_shards.(i) <- Some t;
    t

let clear_pool_shards () =
  Array.fill pool_shards 0 (Array.length pool_shards) None

let pool_stats =
  Util.Cachectl.register ~name:"fir.intern"
    ~merge:(fun () ->
      Array.iter
        (function
          | None -> ()
          | Some sh ->
            (* first-comer wins: an already-canonical representative in
               the shared pool must never be displaced *)
            Pool.iter
              (fun k v -> if not (Pool.mem pool k) then Pool.add pool k v)
              sh)
        pool_shards;
      clear_pool_shards ())
    ~clear:(fun () ->
      Pool.reset pool;
      clear_pool_shards ())
    ()

(** [intern e] returns the canonical physical representative of [e]'s
    structural equivalence class, interning every subtree bottom-up.
    Repeated subtrees then share identity, so {!equal} and {!compare}
    short-circuit on [==].  Opt-in: a no-op when {!Util.Cachectl.enabled}
    is false, and always semantically the identity. *)
let rec intern (e : expr) : expr =
  if not !Util.Cachectl.enabled then e
  else
    let e =
      match e with
      | Int_lit _ | Real_lit _ | Logical_lit _ | Char_lit _ | Var _
      | Wildcard _ ->
        e
      | Ref (v, args) -> Ref (v, List.map intern args)
      | Fun_call (f, args) -> Fun_call (f, List.map intern args)
      | Unary (op, a) -> Unary (op, intern a)
      | Binary (op, a, b) -> Binary (op, intern a, intern b)
    in
    match Pool.find_opt pool e with
    | Some canonical ->
      Util.Cachectl.hit pool_stats;
      canonical
    | None -> (
      match Util.Pool.slot () with
      | None ->
        Util.Cachectl.miss pool_stats;
        Pool.add pool e e;
        e
      | Some i -> (
        let sh = pool_shard i in
        match Pool.find_opt sh e with
        | Some canonical ->
          Util.Cachectl.hit pool_stats;
          canonical
        | None ->
          Util.Cachectl.miss pool_stats;
          Pool.add sh e e;
          e))

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)

(** Direct sub-expressions of [e]. *)
let children = function
  | Int_lit _ | Real_lit _ | Logical_lit _ | Char_lit _ | Var _ | Wildcard _ -> []
  | Ref (_, args) | Fun_call (_, args) -> args
  | Unary (_, a) -> [ a ]
  | Binary (_, a, b) -> [ a; b ]

(** Bottom-up rewrite: rebuilds [e] with [f] applied to every node. *)
let rec map f e =
  let e' =
    match e with
    | Int_lit _ | Real_lit _ | Logical_lit _ | Char_lit _ | Var _ | Wildcard _ -> e
    | Ref (v, args) -> Ref (v, List.map (map f) args)
    | Fun_call (g, args) -> Fun_call (g, List.map (map f) args)
    | Unary (op, a) -> Unary (op, map f a)
    | Binary (op, a, b) -> Binary (op, map f a, map f b)
  in
  f e'

(** Pre-order fold over every node of the expression tree. *)
let rec fold f acc e = List.fold_left (fold f) (f acc e) (children e)

let iter f e = fold (fun () x -> f x) () e

(** Does any node of [e] satisfy [p]? *)
let exists p e = fold (fun acc x -> acc || p x) false e

(** All scalar-variable names read in [e] (array base names excluded). *)
let scalar_vars e =
  fold (fun acc -> function Var v -> v :: acc | _ -> acc) [] e
  |> List.sort_uniq String.compare

(** All names referenced in [e]: scalars, array bases and called functions. *)
let all_names e =
  fold
    (fun acc -> function
      | Var v -> v :: acc
      | Ref (v, _) -> v :: acc
      | Fun_call (f, _) -> f :: acc
      | _ -> acc)
    [] e
  |> List.sort_uniq String.compare

(** [mentions name e] is true if [e] references [name] as a scalar, an
    array base, or a function. *)
let mentions name e =
  exists (function
    | Var v | Ref (v, _) | Fun_call (v, _) -> String.equal v name
    | _ -> false) e

(* ------------------------------------------------------------------ *)
(* Substitution                                                        *)

(** [subst_var v by e] replaces every scalar reference [Var v] by [by]. *)
let subst_var v by e =
  map (function Var x when String.equal x v -> by | x -> x) e

(** [subst tbl e] applies a simultaneous scalar substitution. *)
let subst tbl e =
  map
    (function
      | Var x as orig ->
        (match List.assoc_opt x tbl with Some by -> by | None -> orig)
      | x -> x)
    e

(** Rename every identifier (scalars, array bases, calls) via [f]. *)
let rename f e =
  map
    (function
      | Var v -> Var (f v)
      | Ref (v, args) -> Ref (f v, args)
      | Fun_call (g, args) -> Fun_call (f g, args)
      | x -> x)
    e

(* ------------------------------------------------------------------ *)
(* Constant evaluation and simplification                              *)

(** [int_val e] is [Some n] if [e] is a (possibly signed) integer literal. *)
let rec int_val = function
  | Int_lit n -> Some n
  | Unary (Neg, e) -> Option.map (fun n -> -n) (int_val e)
  | _ -> None

let is_const e = Option.is_some (int_val e)

let rec pow_int b e = if e <= 0 then 1 else b * pow_int b (e - 1)

(** One-layer arithmetic simplification used to keep generated code
    readable; the heavy symbolic machinery lives in {!Symbolic.Poly}. *)
let simplify_node = function
  | Binary (Add, Int_lit a, Int_lit b) -> Int_lit (a + b)
  | Binary (Sub, Int_lit a, Int_lit b) -> Int_lit (a - b)
  | Binary (Mul, Int_lit a, Int_lit b) -> Int_lit (a * b)
  | Binary (Div, Int_lit a, Int_lit b) when b <> 0 && a mod b = 0 -> Int_lit (a / b)
  | Binary (Pow, Int_lit a, Int_lit b) when b >= 0 && b < 8 -> Int_lit (pow_int a b)
  | Binary (Add, e, Int_lit 0) | Binary (Add, Int_lit 0, e) -> e
  | Binary (Sub, e, Int_lit 0) -> e
  | Binary (Mul, e, Int_lit 1) | Binary (Mul, Int_lit 1, e) -> e
  | Binary (Mul, _, Int_lit 0) | Binary (Mul, Int_lit 0, _) -> Int_lit 0
  | Binary (Div, e, Int_lit 1) -> e
  | Binary (Pow, e, Int_lit 1) -> e
  | Binary (Pow, _, Int_lit 0) -> Int_lit 1
  | Unary (Neg, Int_lit n) -> Int_lit (-n)
  | Unary (Neg, Unary (Neg, e)) -> e
  | Unary (Not, Logical_lit b) -> Logical_lit (not b)
  | e -> e

let simplify e = map simplify_node e

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let unop_to_string = function Neg -> "-" | Not -> ".NOT."

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Pow -> "**"
  | And -> ".AND." | Or -> ".OR."
  | Eq -> ".EQ." | Ne -> ".NE." | Lt -> ".LT." | Le -> ".LE."
  | Gt -> ".GT." | Ge -> ".GE."

let precedence = function
  | Or -> 1 | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div -> 5
  | Pow -> 6

(** Fortran-syntax rendering with minimal parentheses. *)
let rec pp ppf e = pp_prec 0 ppf e

and pp_prec ctx ppf = function
  | Int_lit n -> if n < 0 then Fmt.pf ppf "(%d)" n else Fmt.int ppf n
  | Real_lit x ->
    if Float.is_integer x && Float.abs x < 1e9 then Fmt.pf ppf "%.1f" x
    else Fmt.pf ppf "%g" x
  | Logical_lit true -> Fmt.string ppf ".TRUE."
  | Logical_lit false -> Fmt.string ppf ".FALSE."
  | Char_lit s -> Fmt.pf ppf "'%s'" s
  | Var v -> Fmt.string ppf v
  | Wildcard n -> Fmt.pf ppf "?%d" n
  | Ref (v, args) | Fun_call (v, args) ->
    Fmt.pf ppf "%s(%a)" v Fmt.(list ~sep:(any ", ") pp) args
  | Unary (op, a) ->
    if ctx > 4 then Fmt.pf ppf "(%s%a)" (unop_to_string op) (pp_prec 4) a
    else Fmt.pf ppf "%s%a" (unop_to_string op) (pp_prec 4) a
  | Binary (op, a, b) ->
    let p = precedence op in
    let body ppf () =
      Fmt.pf ppf "%a %s %a" (pp_prec p) a (binop_to_string op) (pp_prec (p + 1)) b
    in
    if p < ctx then Fmt.pf ppf "(%a)" body () else body ppf ()

let to_string e = Fmt.str "%a" pp e
