(** Program units: main programs, subroutines, functions. *)

open Ast

type t = {
  pu_name : string;
  pu_kind : unit_kind;
  pu_args : string list;
  pu_symtab : Symtab.t;
  mutable pu_body : block;
  mutable pu_version : int;
      (** per-unit invalidation counter: bumped by {!invalidate}
          (i.e. by [Program.touch] and {!restore}) every time a pass
          announces it is about to mutate this unit.  Analyses cached
          against a unit pin the version they were computed at. *)
  mutable pu_fp : (int * string) option;
      (** memoized {!fingerprint} and the version it was computed at *)
}

let create ?(kind = Main) ?(args = []) name =
  { pu_name = Symtab.norm name; pu_kind = kind;
    pu_args = List.map Symtab.norm args;
    pu_symtab = Symtab.create (); pu_body = [];
    pu_version = 0; pu_fp = None }

let is_function u = match u.pu_kind with Function _ -> true | _ -> false

(** Invalidation epoch of the unit (see {!t.pu_version}). *)
let version u = u.pu_version

(** Announce that the unit is about to be mutated: bump the version and
    drop the memoized fingerprint.  Called by [Program.touch] — passes
    never call this directly. *)
let invalidate u =
  u.pu_version <- u.pu_version + 1;
  u.pu_fp <- None

(** Deep copy (fresh statement ids, fresh symbol table).  The copy
    inherits the version and memoized fingerprint — both remain valid
    because the content is equal; the copies' versions advance
    independently from here on. *)
let copy u =
  { u with pu_symtab = Symtab.copy u.pu_symtab; pu_body = Stmt.copy_block u.pu_body }

(** In-place rollback of one unit from a {!copy} taken earlier: [u]
    keeps its identity, body and symbol table are replaced by fresh deep
    copies of the snapshot (fresh statement ids, so id-uniqueness holds
    even if the aborted pass leaked statements elsewhere).  Counts as a
    mutation: the version is bumped so unit-keyed analyses of the
    pre-rollback body can never be served again. *)
let restore ~(from : t) (u : t) =
  let fresh = copy from in
  u.pu_body <- fresh.pu_body;
  Symtab.restore ~from:fresh.pu_symtab u.pu_symtab;
  invalidate u

(** All loops of the unit, outer listed before inner. *)
let loops u = Stmt.loops u.pu_body

(** Every name the body references as a scalar variable — reads,
    writes and DO indices.  The parser only registers {e declared}
    names in the symbol table; implicitly typed scalars materialize on
    first {!Symtab.lookup}, so a backend that must declare every
    symbol (a native compiler has no implicit-materialization step for
    C, and declare-all Fortran promises completeness) unions this set
    with {!Symtab.symbols}. *)
let used_scalars (u : t) : string list =
  let acc = ref [] in
  let expr e = Expr.iter (function Var v -> acc := v :: !acc | _ -> ()) e in
  Stmt.iter
    (fun (s : stmt) ->
      match s.kind with
      | Assign (l, r) ->
        expr l;
        expr r
      | If (c, _, _) | While (c, _) -> expr c
      | Do d ->
        acc := d.index :: !acc;
        expr d.init;
        expr d.limit;
        Option.iter expr d.step
      | Call (_, args) | Print args -> List.iter expr args
      | Goto _ | Continue | Return | Stop -> ())
    u.pu_body;
  List.sort_uniq String.compare !acc

(** Resolve the PARAMETER constants of the unit as an expression
    substitution (transitively resolved). *)
let parameter_bindings u =
  let rec resolve seen e =
    Expr.map
      (function
        | Var v when not (List.mem v seen) -> (
          match Symtab.find_opt u.pu_symtab v with
          | Some { sym_param = Some value; _ } -> resolve (v :: seen) value
          | _ -> Var v)
        | x -> x)
      e
  in
  Symtab.fold
    (fun name sym acc ->
      match sym.sym_param with
      | Some value -> (name, Expr.simplify (resolve [ name ] value)) :: acc
      | None -> acc)
    u.pu_symtab []

(* ------------------------------------------------------------------ *)
(* Content fingerprint                                                 *)

(* Canonical serialization of everything a unit-level analysis may read
   — symbol table (sorted), arguments, kind, and the full body — while
   deliberately excluding statement ids and loop_info annotations.  Two
   units with equal fingerprints are indistinguishable to any analysis
   that ignores ids and decisions, so caches may key on the fingerprint
   and get hits across passes, pipeline generations, and even separate
   compilations of the same source.  Strings are length-prefixed and
   every node carries a distinct tag, so the encoding is injective. *)

let fp_string buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let fp_unop = function Neg -> '~' | Not -> '!'

let fp_binop = function
  | Add -> '+' | Sub -> '-' | Mul -> '*' | Div -> '/' | Pow -> '^'
  | And -> '&' | Or -> '|'
  | Eq -> 'e' | Ne -> 'n' | Lt -> 'l' | Le -> 'm' | Gt -> 'g' | Ge -> 'h'

let rec fp_expr buf (e : expr) =
  match e with
  | Int_lit n ->
    Buffer.add_char buf 'i';
    Buffer.add_string buf (string_of_int n)
  | Real_lit x ->
    Buffer.add_char buf 'r';
    Buffer.add_string buf (Int64.to_string (Int64.bits_of_float x))
  | Logical_lit b -> Buffer.add_char buf (if b then 'T' else 'F')
  | Char_lit s ->
    Buffer.add_char buf 'c';
    fp_string buf s
  | Var v ->
    Buffer.add_char buf 'v';
    fp_string buf v
  | Ref (a, subs) ->
    Buffer.add_char buf 'R';
    fp_string buf a;
    fp_exprs buf subs
  | Fun_call (f, args) ->
    Buffer.add_char buf 'C';
    fp_string buf f;
    fp_exprs buf args
  | Unary (op, a) ->
    Buffer.add_char buf 'u';
    Buffer.add_char buf (fp_unop op);
    fp_expr buf a
  | Binary (op, a, b) ->
    Buffer.add_char buf 'b';
    Buffer.add_char buf (fp_binop op);
    fp_expr buf a;
    fp_expr buf b
  | Wildcard i ->
    Buffer.add_char buf 'w';
    Buffer.add_string buf (string_of_int i)

and fp_exprs buf es =
  Buffer.add_char buf '(';
  List.iter (fp_expr buf) es;
  Buffer.add_char buf ')'

let rec fp_stmt buf (s : stmt) =
  (match s.label with
  | Some l ->
    Buffer.add_char buf 'L';
    Buffer.add_string buf (string_of_int l)
  | None -> ());
  match s.kind with
  | Assign (l, r) ->
    Buffer.add_char buf '=';
    fp_expr buf l;
    fp_expr buf r
  | If (c, t, e) ->
    Buffer.add_char buf '?';
    fp_expr buf c;
    fp_block buf t;
    fp_block buf e
  | Do d ->
    Buffer.add_char buf 'D';
    fp_string buf d.index;
    fp_expr buf d.init;
    fp_expr buf d.limit;
    (match d.step with
    | Some e ->
      Buffer.add_char buf 's';
      fp_expr buf e
    | None -> Buffer.add_char buf '1');
    fp_block buf d.body
  | While (c, b) ->
    Buffer.add_char buf 'W';
    fp_expr buf c;
    fp_block buf b
  | Call (n, args) ->
    Buffer.add_char buf '!';
    fp_string buf n;
    fp_exprs buf args
  | Goto l ->
    Buffer.add_char buf 'G';
    Buffer.add_string buf (string_of_int l)
  | Continue -> Buffer.add_char buf '.'
  | Return -> Buffer.add_char buf '<'
  | Stop -> Buffer.add_char buf 'S'
  | Print args ->
    Buffer.add_char buf 'P';
    fp_exprs buf args

and fp_block buf (b : block) =
  Buffer.add_char buf '[';
  List.iter (fp_stmt buf) b;
  Buffer.add_char buf ']'

let fp_symbol buf (s : symbol) =
  fp_string buf s.sym_name;
  Buffer.add_string buf (base_type_to_string s.sym_type);
  List.iter
    (fun (lo, hi) ->
      Buffer.add_char buf 'd';
      fp_expr buf lo;
      fp_expr buf hi)
    s.sym_dims;
  (match s.sym_param with
  | Some e ->
    Buffer.add_char buf 'p';
    fp_expr buf e
  | None -> ());
  (match s.sym_common with
  | Some c ->
    Buffer.add_char buf 'k';
    fp_string buf c
  | None -> ());
  match s.sym_arg_pos with
  | Some i ->
    Buffer.add_char buf 'a';
    Buffer.add_string buf (string_of_int i)
  | None -> ()

(** Canonical content fingerprint of a single block (same encoding as
    {!fingerprint}, ids and loop decisions excluded).  Passes use it to
    detect that a rewritten body is content-identical to the original —
    in which case they skip the mutation (and the [Program.touch]) and
    every analysis of the unit survives. *)
let block_fingerprint (b : block) : string =
  let buf = Buffer.create 512 in
  fp_block buf b;
  Buffer.contents buf

let compute_fingerprint (u : t) : string =
  let buf = Buffer.create 1024 in
  fp_string buf u.pu_name;
  Buffer.add_string buf
    (match u.pu_kind with
    | Main -> "M"
    | Subroutine -> "S"
    | Function ty -> "F" ^ base_type_to_string ty);
  List.iter (fp_string buf) u.pu_args;
  List.iter (fp_symbol buf) (Symtab.symbols u.pu_symtab);
  fp_block buf u.pu_body;
  Buffer.contents buf

(* The memo lives in the unit record itself (not a table), so there is
   nothing for clear_all to flush — the entry dies with the version
   bump.  Counters are registered so `perf`/`--explain-reuse` report
   it like every other cache. *)
let fp_stats =
  Util.Cachectl.register ~name:"punit.fingerprint" ~clear:(fun () -> ()) ()

(** Canonical content fingerprint of the unit: name, kind, arguments,
    sorted symbol table and body — statement ids and loop decisions
    excluded (see above).  Memoized per unit at the current
    {!version}; [Program.touch] invalidates.  The O(unit-size)
    serialization reruns only after a touch (or with caches disabled).

    Domain safety: during a parallel phase concurrent tasks may race to
    fill [pu_fp].  Both compute the same content-determined pair and
    publish a fresh immutable tuple with a single field store, so any
    reader observes either [None] or a fully valid entry. *)
let fingerprint (u : t) : string =
  if not !Util.Cachectl.enabled then compute_fingerprint u
  else
    match u.pu_fp with
    | Some (v, fp) when v = u.pu_version ->
      Util.Cachectl.hit fp_stats;
      fp
    | _ ->
      Util.Cachectl.miss fp_stats;
      let fp = compute_fingerprint u in
      u.pu_fp <- Some (u.pu_version, fp);
      fp

let pp ppf u =
  let kw =
    match u.pu_kind with
    | Main -> "PROGRAM"
    | Subroutine -> "SUBROUTINE"
    | Function _ -> "FUNCTION"
  in
  let args =
    if u.pu_args = [] then ""
    else Fmt.str "(%s)" (String.concat ", " u.pu_args)
  in
  Fmt.pf ppf "%s %s%s@.%a" kw u.pu_name args (Stmt.pp_block ~indent:2) u.pu_body;
  Fmt.pf ppf "END@."
