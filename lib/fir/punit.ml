(** Program units: main programs, subroutines, functions. *)

open Ast

type t = {
  pu_name : string;
  pu_kind : unit_kind;
  pu_args : string list;
  pu_symtab : Symtab.t;
  mutable pu_body : block;
}

let create ?(kind = Main) ?(args = []) name =
  { pu_name = Symtab.norm name; pu_kind = kind;
    pu_args = List.map Symtab.norm args;
    pu_symtab = Symtab.create (); pu_body = [] }

let is_function u = match u.pu_kind with Function _ -> true | _ -> false

(** Deep copy (fresh statement ids, fresh symbol table). *)
let copy u =
  { u with pu_symtab = Symtab.copy u.pu_symtab; pu_body = Stmt.copy_block u.pu_body }

(** In-place rollback of one unit from a {!copy} taken earlier: [u]
    keeps its identity, body and symbol table are replaced by fresh deep
    copies of the snapshot (fresh statement ids, so id-uniqueness holds
    even if the aborted pass leaked statements elsewhere). *)
let restore ~(from : t) (u : t) =
  let fresh = copy from in
  u.pu_body <- fresh.pu_body;
  Symtab.restore ~from:fresh.pu_symtab u.pu_symtab

(** All loops of the unit, outer listed before inner. *)
let loops u = Stmt.loops u.pu_body

(** Resolve the PARAMETER constants of the unit as an expression
    substitution (transitively resolved). *)
let parameter_bindings u =
  let rec resolve seen e =
    Expr.map
      (function
        | Var v when not (List.mem v seen) -> (
          match Symtab.find_opt u.pu_symtab v with
          | Some { sym_param = Some value; _ } -> resolve (v :: seen) value
          | _ -> Var v)
        | x -> x)
      e
  in
  Symtab.fold
    (fun name sym acc ->
      match sym.sym_param with
      | Some value -> (name, Expr.simplify (resolve [ name ] value)) :: acc
      | None -> acc)
    u.pu_symtab []

let pp ppf u =
  let kw =
    match u.pu_kind with
    | Main -> "PROGRAM"
    | Subroutine -> "SUBROUTINE"
    | Function _ -> "FUNCTION"
  in
  let args =
    if u.pu_args = [] then ""
    else Fmt.str "(%s)" (String.concat ", " u.pu_args)
  in
  Fmt.pf ppf "%s %s%s@.%a" kw u.pu_name args (Stmt.pp_block ~indent:2) u.pu_body;
  Fmt.pf ppf "END@."
