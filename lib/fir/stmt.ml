(** Operations on statements and statement blocks.

    Polaris' [StmtList] class offered iterators over selected statement
    kinds, well-formedness checks, and copy/insert/delete of well-formed
    sublists; the equivalents here are ordinary functions over the
    structured {!Ast.block} representation. *)

open Ast

(* ------------------------------------------------------------------ *)
(* Identity                                                            *)

(* atomic: the validation oracle deep-copies programs inside worker
   domains, so id allocation must be race-free.  Note id *values* then
   depend on allocation order across domains — nothing downstream may
   key behaviour on them beyond uniqueness (comparisons in the bench
   and tests deliberately exclude sids). *)
let counter = Atomic.make 0

(** Globally fresh statement id. *)
let fresh_id () = Atomic.fetch_and_add counter 1 + 1

let mk ?label kind = { sid = fresh_id (); label; kind }

let assign ?label lhs rhs = mk ?label (Assign (lhs, rhs))

let do_ ?label ?step index ~init ~limit body =
  mk ?label
    (Do { index = String.uppercase_ascii index; init; limit; step; body;
          info = fresh_loop_info () })

let if_ ?label cond then_ else_ = mk ?label (If (cond, then_, else_))

(* ------------------------------------------------------------------ *)
(* Copying                                                             *)

(** Deep copy with fresh statement ids and fresh loop annotations.
    Polaris forbade structure sharing between statements; a transformation
    wanting to reuse a statement must copy it. *)
let rec copy s =
  let kind =
    match s.kind with
    | Assign (l, r) -> Assign (l, r)
    | If (c, t, e) -> If (c, copy_block t, copy_block e)
    | Do d ->
      Do { d with body = copy_block d.body;
           info = { d.info with privates = d.info.privates } }
    | While (c, b) -> While (c, copy_block b)
    | (Call _ | Goto _ | Continue | Return | Stop | Print _) as k -> k
  in
  { s with sid = fresh_id (); kind }

and copy_block b = List.map copy b

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)

(** Iterate over every statement of a block, innermost included,
    in source order. *)
let rec iter f (b : block) = List.iter (iter_stmt f) b

and iter_stmt f s =
  f s;
  match s.kind with
  | If (_, t, e) ->
    iter f t;
    iter f e
  | Do d -> iter f d.body
  | While (_, b) -> iter f b
  | Assign _ | Call _ | Goto _ | Continue | Return | Stop | Print _ -> ()

let fold f acc b =
  let r = ref acc in
  iter (fun s -> r := f !r s) b;
  !r

let exists p b = fold (fun acc s -> acc || p s) false b

(** All statements of the block, flattened in source order. *)
let all_stmts b = List.rev (fold (fun acc s -> s :: acc) [] b)

(** All [Do] loops of the block (outer loops listed before inner). *)
let loops b =
  all_stmts b
  |> List.filter_map (fun s -> match s.kind with Do d -> Some (s, d) | _ -> None)

(* ------------------------------------------------------------------ *)
(* Expression access                                                   *)

(** Every expression appearing directly in statement [s] (not recursing
    into nested statements).  The first component tags the role. *)
type expr_role = Elhs | Erhs | Econd | Ebound | Earg

let exprs_of s =
  match s.kind with
  | Assign (l, r) -> [ (Elhs, l); (Erhs, r) ]
  | If (c, _, _) -> [ (Econd, c) ]
  | Do d ->
    (Ebound, d.init) :: (Ebound, d.limit)
    :: (match d.step with Some e -> [ (Ebound, e) ] | None -> [])
  | While (c, _) -> [ (Econd, c) ]
  | Call (_, args) -> List.map (fun a -> (Earg, a)) args
  | Print args -> List.map (fun a -> (Earg, a)) args
  | Goto _ | Continue | Return | Stop -> []

(** Rewrite every expression of [s] (deep, including nested statements)
    with [f], rebuilding the statement tree.  Statement ids are kept. *)
let rec map_exprs f s =
  let kind =
    match s.kind with
    | Assign (l, r) -> Assign (f l, f r)
    | If (c, t, e) -> If (f c, map_block_exprs f t, map_block_exprs f e)
    | Do d ->
      Do
        { d with
          init = f d.init;
          limit = f d.limit;
          step = Option.map f d.step;
          body = map_block_exprs f d.body }
    | While (c, b) -> While (f c, map_block_exprs f b)
    | Call (n, args) -> Call (n, List.map f args)
    | Print args -> Print (List.map f args)
    | (Goto _ | Continue | Return | Stop) as k -> k
  in
  { s with kind }

and map_block_exprs f b = List.map (map_exprs f) b

(** Iterate over every expression of the block, deep. *)
let iter_exprs f b =
  iter (fun s -> List.iter (fun (_, e) -> f e) (exprs_of s)) b

(** All names assigned (as scalar or array element) anywhere in [b]. *)
let assigned_names b =
  fold
    (fun acc s ->
      match s.kind with
      | Assign (Var v, _) | Assign (Ref (v, _), _) -> v :: acc
      | Do d -> d.index :: acc
      | _ -> acc)
    [] b
  |> List.sort_uniq String.compare

(** All names referenced anywhere in [b] (reads and writes). *)
let referenced_names b =
  let acc = ref [] in
  iter_exprs (fun e -> acc := Expr.all_names e @ !acc) b;
  List.sort_uniq String.compare !acc

(** [mentions name b]: does any expression of [b] reference [name]? *)
let mentions name b =
  exists (fun s -> List.exists (fun (_, e) -> Expr.mentions name e) (exprs_of s)) b

(* ------------------------------------------------------------------ *)
(* Structured-block rewriting                                          *)

(** Rebuild a block bottom-up: [f] receives each statement with already
    rewritten children and returns its replacement list (possibly empty
    or longer, enabling statement deletion/insertion). *)
let rec rewrite (f : stmt -> stmt list) (b : block) : block =
  List.concat_map
    (fun s ->
      let s' =
        match s.kind with
        | If (c, t, e) -> { s with kind = If (c, rewrite f t, rewrite f e) }
        | Do d -> { s with kind = Do { d with body = rewrite f d.body } }
        | While (c, body) -> { s with kind = While (c, rewrite f body) }
        | _ -> s
      in
      f s')
    b

(* ------------------------------------------------------------------ *)
(* Printing (debug-oriented; the faithful unparser is Frontend.Unparse) *)

let rec pp_block ?(indent = 0) ppf b = List.iter (pp_stmt ~indent ppf) b

and pp_stmt ~indent ppf s =
  let pad = String.make indent ' ' in
  let lbl = match s.label with Some l -> Fmt.str "%d " l | None -> "" in
  match s.kind with
  | Assign (l, r) -> Fmt.pf ppf "%s%s%a = %a@." pad lbl Expr.pp l Expr.pp r
  | If (c, t, []) ->
    Fmt.pf ppf "%s%sIF (%a) THEN@." pad lbl Expr.pp c;
    pp_block ~indent:(indent + 2) ppf t;
    Fmt.pf ppf "%sEND IF@." pad
  | If (c, t, e) ->
    Fmt.pf ppf "%s%sIF (%a) THEN@." pad lbl Expr.pp c;
    pp_block ~indent:(indent + 2) ppf t;
    Fmt.pf ppf "%sELSE@." pad;
    pp_block ~indent:(indent + 2) ppf e;
    Fmt.pf ppf "%sEND IF@." pad
  | Do d ->
    let step = match d.step with Some e -> Fmt.str ", %s" (Expr.to_string e) | None -> "" in
    let mark = if d.info.par then "  !$ DOALL" else "" in
    Fmt.pf ppf "%s%sDO %s = %a, %a%s%s@." pad lbl d.index Expr.pp d.init Expr.pp
      d.limit step mark;
    pp_block ~indent:(indent + 2) ppf d.body;
    Fmt.pf ppf "%sEND DO@." pad
  | While (c, b) ->
    Fmt.pf ppf "%s%sDO WHILE (%a)@." pad lbl Expr.pp c;
    pp_block ~indent:(indent + 2) ppf b;
    Fmt.pf ppf "%sEND DO@." pad
  | Call (n, args) ->
    Fmt.pf ppf "%s%sCALL %s(%a)@." pad lbl n Fmt.(list ~sep:(any ", ") Expr.pp) args
  | Goto l -> Fmt.pf ppf "%s%sGOTO %d@." pad lbl l
  | Continue -> Fmt.pf ppf "%s%sCONTINUE@." pad lbl
  | Return -> Fmt.pf ppf "%s%sRETURN@." pad lbl
  | Stop -> Fmt.pf ppf "%s%sSTOP@." pad lbl
  | Print args ->
    Fmt.pf ppf "%s%sPRINT *, %a@." pad lbl Fmt.(list ~sep:(any ", ") Expr.pp) args

let block_to_string b = Fmt.str "%a" (pp_block ~indent:0) b
