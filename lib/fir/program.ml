(** Whole Fortran programs: a collection of program units.

    Mirrors the Polaris [Program] class — a container of [ProgramUnit]s
    with lookup, merge and display operations. *)

type t = { units : Punit.t list }

let create units = { units }

let units t = t.units

(** The unique main program unit.
    @raise Not_found if the program has no main unit. *)
let main t =
  match List.find_opt (fun u -> u.Punit.pu_kind = Ast.Main) t.units with
  | Some u -> u
  | None -> raise Not_found

(** Find a unit (subroutine/function/main) by name, case-insensitive. *)
let find_unit t name =
  let name = Symtab.norm name in
  List.find_opt (fun u -> String.equal u.Punit.pu_name name) t.units

(** Merge two programs; unit names must not collide.
    @raise Invalid_argument on a duplicate unit name. *)
let merge a b =
  List.iter
    (fun u ->
      if find_unit a u.Punit.pu_name <> None then
        invalid_arg ("Program.merge: duplicate unit " ^ u.Punit.pu_name))
    b.units;
  { units = a.units @ b.units }

let copy t = { units = List.map Punit.copy t.units }

(** In-place rollback: restore every unit of [t] from [from], a {!copy}
    taken earlier.  Unit records keep their identity — outstanding
    references to [t] and its units observe the restored state — while
    bodies and symbol tables are replaced by fresh deep copies of the
    snapshot (fresh statement ids, so id-uniqueness invariants hold even
    if the aborted pass leaked statements elsewhere).

    The unit list itself is immutable, so [t] and [from] always pair up
    positionally; {!Fir.Consistency} violations introduced by a failed
    pass are erased wholesale. *)
let restore ~(from : t) (t : t) =
  List.iter2
    (fun (u : Punit.t) (s : Punit.t) ->
      let fresh = Punit.copy s in
      u.pu_body <- fresh.pu_body;
      Symtab.restore ~from:fresh.pu_symtab u.pu_symtab)
    t.units from.units

let pp ppf t = List.iter (fun u -> Fmt.pf ppf "%a@." Punit.pp u) t.units
let to_string t = Fmt.str "%a" pp t
