(** Whole Fortran programs: a collection of program units.

    Mirrors the Polaris [Program] class — a container of [ProgramUnit]s
    with lookup, merge and display operations. *)

type t = {
  units : Punit.t list;
  mutable on_touch : (Punit.t -> unit) option;
      (** copy-on-write seam: called by passes just before they mutate a
          unit (body or symbol table), so a guard can snapshot only what
          actually changes.  [None] outside a guarded pass. *)
}

let create units = { units; on_touch = None }

let units t = t.units

(** Install (or clear) the copy-on-write hook; see {!touch}. *)
let set_touch_hook t hook = t.on_touch <- hook

(** [touch t u]: every pass must call this before mutating unit [u] of
    [t] (rewriting [pu_body], defining symbols, ...).  Always bumps the
    unit's invalidation version (dropping its memoized fingerprint and
    every unit-keyed analysis), then notifies the guard hook if one is
    installed — so fine-grained invalidation works even outside a
    guarded pass. *)
let touch t u =
  Punit.invalidate u;
  match t.on_touch with Some f -> f u | None -> ()

(** The unique main program unit.
    @raise Not_found if the program has no main unit. *)
let main t =
  match List.find_opt (fun u -> u.Punit.pu_kind = Ast.Main) t.units with
  | Some u -> u
  | None -> raise Not_found

(** Find a unit (subroutine/function/main) by name, case-insensitive. *)
let find_unit t name =
  let name = Symtab.norm name in
  List.find_opt (fun u -> String.equal u.Punit.pu_name name) t.units

(** Merge two programs; unit names must not collide.
    @raise Invalid_argument on a duplicate unit name. *)
let merge a b =
  List.iter
    (fun u ->
      if find_unit a u.Punit.pu_name <> None then
        invalid_arg ("Program.merge: duplicate unit " ^ u.Punit.pu_name))
    b.units;
  create (a.units @ b.units)

let copy t = create (List.map Punit.copy t.units)

(** In-place rollback: restore every unit of [t] from [from], a {!copy}
    taken earlier.  Unit records keep their identity — outstanding
    references to [t] and its units observe the restored state — while
    bodies and symbol tables are replaced by fresh deep copies of the
    snapshot (fresh statement ids, so id-uniqueness invariants hold even
    if the aborted pass leaked statements elsewhere).

    The unit list itself is immutable, so [t] and [from] always pair up
    positionally; {!Fir.Consistency} violations introduced by a failed
    pass are erased wholesale. *)
let restore ~(from : t) (t : t) =
  List.iter2
    (fun (u : Punit.t) (s : Punit.t) -> Punit.restore ~from:s u)
    t.units from.units

let pp ppf t = List.iter (fun u -> Fmt.pf ppf "%a@." Punit.pp u) t.units
let to_string t = Fmt.str "%a" pp t
