(** The demand-driven analysis manager.

    Every structural analysis of the compiler — control-flow graphs,
    loop nests, array accesses, scalar def/use classes, gated SSA,
    demand-driven reaching definitions — registers here as a memoized,
    invalidation-tracked {e analysis}: a pure function from a piece of
    IR to a fact, computed on demand and reused until the IR it read is
    touched.  Passes stop recomputing facts ad hoc; they simply ask, and
    the manager either serves the cached fact or computes it once.

    {b Scopes.}  Analyses come in three scopes, by what they read:

    - {!unit_analysis}: reads a whole {!Fir.Punit.t} (symbol table +
      body).  Keyed by unit name; an entry is valid while it was
      computed on the {e same physical unit record} at the {e same
      invalidation version} ({!Fir.Punit.version}, bumped by every
      [Program.touch]).  Fine-grained by construction: a pass that
      touches unit A invalidates nothing of unit B.
    - {!block_analysis}: reads one {!Fir.Ast.block} (a loop body, an IF
      arm, a unit body).  Keyed by the statement id of the block's head;
      valid while the {e physical} block list is unchanged.  Statement
      lists are immutable (passes replace them and announce the
      replacement via [Program.touch]), so physical identity is exactly
      content identity here.
    - {!point_analysis}: reads a unit up to a target statement.  Keyed
      by (unit name, statement id), validated like a unit analysis.

    {b Invalidation.}  Validity is checked per entry on every lookup —
    there is no flush-the-world epoch for these analyses.  A lookup
    that finds a stale entry counts it as an {e invalidation} (reported
    by {!invalidation_snapshot} and `polaris --explain-reuse`) and
    recomputes in place.  Because validity is (physical identity ×
    per-unit version), analyses survive any pass that does not touch
    their unit: deadcode rewriting MAIN does not flush the loop nests,
    accesses or dependence facts of an untouched subroutine.

    {b Results are physical.}  Unit/block/point analyses return values
    that embed statement pointers and ids, so they are only reusable
    while the underlying IR objects are alive — within one compilation.
    Cross-{e compilation} reuse (the `polaris serve` path) is carried by
    the {e semantic} caches, which key on content rather than identity:
    [Punit.fingerprint], [Range_prop.env_at], [Dep.Driver]'s verdict
    cache, [Poly.of_expr] and the [Compare] tables.  The manager tracks
    those by name ({!tracked}) so reuse accounting covers both kinds.

    All tables are {!Symbolic.Cache} instances, which gives every
    analysis the established contracts: the [POLARIS_NO_CACHE] master
    switch, hit/miss counters in [Cachectl], debug cross-checking, and
    per-slot shard routing during {!Util.Pool} parallel phases (the
    shared store stays read-only mid-phase).  The debug cross-check is
    disabled for managed analyses ([equal_result] is constant-true):
    results hold physical pointers — and GSA terms are cyclic — so
    structural comparison is meaningless or divergent; validity is
    enforced by the probes instead. *)

open Fir

(* ------------------------------------------------------------------ *)
(* Registry: invalidation counters + tracked semantic caches           *)

let invalidation_registry : (string * int Atomic.t) list ref = ref []

let register_invalidations name =
  let c = Atomic.make 0 in
  invalidation_registry := !invalidation_registry @ [ (name, c) ];
  c

(** Per-analysis count of stale entries found (and recomputed) since
    startup, as [(name, count)]. *)
let invalidation_snapshot () =
  List.map (fun (n, c) -> (n, Atomic.get c)) !invalidation_registry

(** Per-analysis invalidation growth since [base]. *)
let invalidation_delta ~base now =
  List.map
    (fun (name, n) ->
      match List.assoc_opt name base with
      | Some n0 -> (name, n - n0)
      | None -> (name, n))
    now

(* Semantic (content-addressed) caches that participate in reuse
   accounting but live outside the manager; see the module comment. *)
let semantic_analyses =
  [ "punit.fingerprint"; "fir.intern"; "poly.of_expr"; "compare.eliminate";
    "compare.monotonicity"; "range_prop.env_at"; "dep.verdict" ]

let managed_names : string list ref = ref []

(** Names of every analysis cache that counts toward the reuse rate:
    the manager's own tables plus the content-addressed semantic
    caches. *)
let tracked () = !managed_names @ semantic_analyses

(* ------------------------------------------------------------------ *)
(* Unit-scoped analyses                                                *)

type 'a unit_entry = {
  ue_unit : Punit.t;   (* physical unit the fact was computed on *)
  ue_version : int;    (* Punit.version at computation time *)
  ue_value : 'a;
}

(** [unit_analysis ~name compute]: register a unit-scoped analysis and
    return its demand-driven entry point. *)
let unit_analysis ~name (compute : Punit.t -> 'a) : Punit.t -> 'a =
  let cache : (string, 'a unit_entry) Symbolic.Cache.t =
    Symbolic.Cache.create ~name ~equal_result:(fun _ _ -> true) ()
  in
  let inval = register_invalidations name in
  managed_names := !managed_names @ [ name ];
  fun (u : Punit.t) ->
    let entry =
      Symbolic.Cache.memo_validated cache u.pu_name
        ~valid:(fun e ->
          let ok = e.ue_unit == u && e.ue_version = Punit.version u in
          if not ok then Atomic.incr inval;
          ok)
        (fun () ->
          { ue_unit = u; ue_version = Punit.version u; ue_value = compute u })
    in
    entry.ue_value

(* ------------------------------------------------------------------ *)
(* Block-scoped analyses                                               *)

type 'a block_entry = {
  be_block : Ast.block;  (* physical block list the fact was computed on *)
  be_value : 'a;
}

(* A block is identified by the statement id of its head: every
   statement belongs to exactly one block of the AST tree, so among
   live blocks the head sid is unique.  Rewrites that keep a statement
   id ([{ s with kind }]) build a new list, so the physical-identity
   probe catches them; rollbacks deep-copy with fresh ids, so they
   simply miss.  The empty block keys as -1 — all empty blocks are
   interchangeable to a pure analysis. *)
let block_key : Ast.block -> int = function
  | [] -> -1
  | s :: _ -> s.Ast.sid

(** [block_analysis ~name compute]: register a block-scoped analysis
    and return its demand-driven entry point. *)
let block_analysis ~name (compute : Ast.block -> 'a) : Ast.block -> 'a =
  let cache : (int, 'a block_entry) Symbolic.Cache.t =
    Symbolic.Cache.create ~name ~equal_result:(fun _ _ -> true) ()
  in
  let inval = register_invalidations name in
  managed_names := !managed_names @ [ name ];
  fun (b : Ast.block) ->
    let entry =
      Symbolic.Cache.memo_validated cache (block_key b)
        ~valid:(fun e ->
          let ok = e.be_block == b in
          if not ok then Atomic.incr inval;
          ok)
        (fun () -> { be_block = b; be_value = compute b })
    in
    entry.be_value

(* ------------------------------------------------------------------ *)
(* Point-scoped analyses                                               *)

(** [point_analysis ~name compute]: like {!unit_analysis} but the fact
    is specific to a target statement within the unit (e.g. reaching
    definitions at a program point). *)
let point_analysis ~name (compute : Punit.t -> target:int -> 'a) :
    Punit.t -> target:int -> 'a =
  let cache : (string * int, 'a unit_entry) Symbolic.Cache.t =
    Symbolic.Cache.create ~name ~equal_result:(fun _ _ -> true) ()
  in
  let inval = register_invalidations name in
  managed_names := !managed_names @ [ name ];
  fun (u : Punit.t) ~target ->
    let entry =
      Symbolic.Cache.memo_validated cache (u.pu_name, target)
        ~valid:(fun e ->
          let ok = e.ue_unit == u && e.ue_version = Punit.version u in
          if not ok then Atomic.incr inval;
          ok)
        (fun () ->
          { ue_unit = u; ue_version = Punit.version u;
            ue_value = compute u ~target })
    in
    entry.ue_value
