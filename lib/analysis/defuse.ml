(** Scalar def/use classification for a loop body (paper §3.4, scalar
    part).

    For each scalar referenced in the body of a candidate parallel loop
    we decide between:
    - [Read_only]: never written — shared safely;
    - [Private]: every read is dominated by a write of the same
      iteration — privatizable;
    - [Exposed]: some read may see a value from a previous iteration —
      a loop-carried scalar dependence unless the induction or
      reduction pass solves it.

    Domination is computed with a single structured walk maintaining the
    set of definitely-written scalars: writes under IF only dominate
    within their branch (branches are rejoined by intersection); writes
    inside an inner loop only dominate reads later in that body (the
    loop may run zero times, so they do not dominate code after it). *)

open Fir
open Ast

type scalar_class = Read_only | Private | Exposed

type stats = {
  mutable written : bool;
  mutable read : bool;
  mutable exposed : bool;
  mutable written_conditionally : bool;
      (** some write does not dominate the body end *)
}

module S = Set.Make (String)

let compute_classify (body : block) : (string * scalar_class) list =
  let tbl : (string, stats) Hashtbl.t = Hashtbl.create 16 in
  let stat v =
    match Hashtbl.find_opt tbl v with
    | Some s -> s
    | None ->
      let s = { written = false; read = false; exposed = false;
                written_conditionally = false } in
      Hashtbl.replace tbl v s;
      s
  in
  let read_var dom v =
    let s = stat v in
    s.read <- true;
    if not (S.mem v !dom) then s.exposed <- true
  in
  let read_expr dom e =
    Expr.iter (function Var v -> read_var dom v | _ -> ()) e
  in
  let write_var dom v =
    let s = stat v in
    s.written <- true;
    dom := S.add v !dom
  in
  let rec walk dom (b : block) =
    List.iter
      (fun s ->
        match s.kind with
        | Assign (Var v, rhs) ->
          read_expr dom rhs;
          write_var dom v
        | Assign (Ref (_, subs), rhs) ->
          List.iter (read_expr dom) subs;
          read_expr dom rhs
        | Assign (_, _) -> ()
        | If (c, t, e) ->
          read_expr dom c;
          let dom_t = ref !dom and dom_e = ref !dom in
          walk dom_t t;
          walk dom_e e;
          dom := S.union !dom (S.inter !dom_t !dom_e)
        | Do d ->
          read_expr dom d.init;
          read_expr dom d.limit;
          Option.iter (read_expr dom) d.step;
          write_var dom d.index;
          (* the body may run zero times: its writes do not dominate
             statements after the loop *)
          let dom_body = ref !dom in
          walk dom_body d.body
        | While (c, body) ->
          read_expr dom c;
          let dom_body = ref !dom in
          walk dom_body body
        | Call (_, args) | Print args -> List.iter (read_expr dom) args
        | Goto _ | Continue | Return | Stop -> ())
      b
  in
  (* mark conditional writes in a second pass (used by reduction checks) *)
  let rec mark_conditional ~cond (b : block) =
    List.iter
      (fun s ->
        match s.kind with
        | Assign (Var v, _) -> if cond then (stat v).written_conditionally <- true
        | If (_, t, e) ->
          mark_conditional ~cond:true t;
          mark_conditional ~cond:true e
        | Do d -> mark_conditional ~cond:true d.body
        | While (_, body) -> mark_conditional ~cond:true body
        | _ -> ())
      b
  in
  walk (ref S.empty) body;
  mark_conditional ~cond:false body;
  Hashtbl.fold
    (fun v s acc ->
      let cls =
        if not s.written then Read_only
        else if s.exposed then Exposed
        else Private
      in
      (v, cls) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** Scalar classification of a loop body — a demand-driven {!Manager}
    analysis: memoized per physical block. *)
let classify : block -> (string * scalar_class) list =
  Manager.block_analysis ~name:"analysis.defuse" compute_classify

(** Scalars of a given class. *)
let of_class cls classified =
  List.filter_map (fun (v, c) -> if c = cls then Some v else None) classified

(** Is scalar [v] read anywhere in block [b]?  Used as a conservative
    liveness check for last-value (lastprivate) decisions. *)
let reads_scalar (b : block) v =
  let v = Symtab.norm v in
  Stmt.exists
    (fun s ->
      List.exists
        (fun ((role : Stmt.expr_role), e) ->
          let e =
            (* the write side of an assignment is not a read, but its
               subscripts are *)
            match (role, e) with
            | Stmt.Elhs, Ref (_, subs) -> Ast.Fun_call ("", subs)
            | Stmt.Elhs, Var _ -> Ast.Int_lit 0
            | _ -> e
          in
          Expr.exists (function Var x -> String.equal x v | _ -> false) e)
        (Stmt.exprs_of s))
    b
