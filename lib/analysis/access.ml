(** Array access extraction.

    Collects every array element read and write in a loop body, with
    subscripts lifted to polynomials, conditional-context and statement
    provenance.  The dependence tests consume pairs of these. *)

open Fir
open Ast

type kind = Read | Write

type t = {
  array : string;
  kind : kind;
  subs : Symbolic.Poly.t list;   (** one polynomial per dimension *)
  subs_exprs : expr list;        (** original subscript expressions *)
  conditional : bool;            (** under an IF within the loop body *)
  sid : int;                     (** statement of the access *)
  reduction_flag : bool;         (** part of a flagged reduction statement *)
}

let pp ppf a =
  Fmt.pf ppf "%s %s(%a)"
    (match a.kind with Read -> "read" | Write -> "write")
    a.array
    Fmt.(list ~sep:(any ", ") Symbolic.Poly.pp)
    a.subs

(* collect accesses of one expression (reads only) *)
let rec of_expr ~conditional ~sid (e : expr) acc =
  match e with
  | Ref (v, subs) ->
    let acc =
      { array = v; kind = Read; subs = List.map Symbolic.Poly.of_expr subs;
        subs_exprs = subs; conditional; sid; reduction_flag = false }
      :: acc
    in
    List.fold_left (fun acc s -> of_expr ~conditional ~sid s acc) acc subs
  | _ ->
    List.fold_left (fun acc s -> of_expr ~conditional ~sid s acc) acc
      (Expr.children e)

let compute_of_block (b : block) : t list =
  let acc = ref [] in
  let rec go ~conditional (b : block) =
    List.iter
      (fun (s : stmt) ->
        match s.kind with
        | Assign (lhs, rhs) ->
          (match lhs with
          | Ref (v, subs) ->
            acc :=
              { array = v; kind = Write;
                subs = List.map Symbolic.Poly.of_expr subs; subs_exprs = subs;
                conditional; sid = s.sid; reduction_flag = false }
              :: !acc;
            (* subscript expressions are reads *)
            List.iter (fun e -> acc := of_expr ~conditional ~sid:s.sid e !acc) subs
          | _ -> ());
          acc := of_expr ~conditional ~sid:s.sid rhs !acc
        | If (c, t, e) ->
          acc := of_expr ~conditional ~sid:s.sid c !acc;
          go ~conditional:true t;
          go ~conditional:true e
        | Do d ->
          acc := of_expr ~conditional ~sid:s.sid d.init !acc;
          acc := of_expr ~conditional ~sid:s.sid d.limit !acc;
          (match d.step with
          | Some e -> acc := of_expr ~conditional ~sid:s.sid e !acc
          | None -> ());
          go ~conditional d.body
        | While (c, body) ->
          acc := of_expr ~conditional ~sid:s.sid c !acc;
          go ~conditional:true body
        | Call (_, args) | Print args ->
          List.iter (fun e -> acc := of_expr ~conditional ~sid:s.sid e !acc) args
        | Goto _ | Continue | Return | Stop -> ())
      b
  in
  go ~conditional:false b;
  List.rev !acc

(** All array accesses in a block.  [conditional] marks accesses under
    an IF (relative to the block entry); calls are *not* expanded here —
    the inliner runs first, and any remaining call makes the caller
    conservative (see {!calls_in}).  A demand-driven {!Manager}
    analysis: memoized per physical block. *)
let of_block : block -> t list =
  Manager.block_analysis ~name:"analysis.access" compute_of_block

(** Accesses grouped by array name. *)
let by_array (accs : t list) : (string * t list) list =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun a ->
      if not (Hashtbl.mem tbl a.array) then order := a.array :: !order;
      Hashtbl.replace tbl a.array
        (a :: Option.value ~default:[] (Hashtbl.find_opt tbl a.array)))
    accs;
  List.rev_map (fun name -> (name, List.rev (Hashtbl.find tbl name))) !order

(** Names of subroutines/functions still called inside the block
    (after inlining these force conservative treatment). *)
let calls_in (b : block) ~(is_intrinsic : string -> bool) : string list =
  let acc = ref [] in
  Stmt.iter
    (fun s ->
      (match s.kind with
      | Call (n, _) -> acc := n :: !acc
      | _ -> ());
      List.iter
        (fun (_, e) ->
          Expr.iter
            (function
              | Fun_call (f, _) when not (is_intrinsic f) -> acc := f :: !acc
              | _ -> ())
            e)
        (Stmt.exprs_of s))
    b;
  List.sort_uniq String.compare !acc

(** Standard Fortran intrinsics known to be pure. *)
let intrinsics =
  [ "ABS"; "IABS"; "DABS"; "MOD"; "AMOD"; "DMOD"; "MAX"; "MAX0"; "AMAX1";
    "DMAX1"; "MIN"; "MIN0"; "AMIN1"; "DMIN1"; "SQRT"; "DSQRT"; "SIN"; "DSIN";
    "COS"; "DCOS"; "TAN"; "DTAN"; "ATAN"; "DATAN"; "EXP"; "DEXP"; "LOG";
    "ALOG"; "DLOG"; "INT"; "IFIX"; "IDINT"; "NINT"; "IDNINT"; "REAL";
    "FLOAT"; "DBLE"; "SNGL"; "SIGN"; "ISIGN"; "DSIGN" ]

let is_intrinsic n = List.mem (String.uppercase_ascii n) intrinsics
