(** Gated Single Assignment form for scalars (paper §3.4, after Tu &
    Padua).

    In GSA, every join point gets a {e gating} function that records the
    condition under which each reaching definition arrives — unlike
    plain SSA phi-functions, the term is executable symbolically:

    - γ(c, a, b): the value is [a] when [c] holds, [b] otherwise
      (IF/ELSE join);
    - μ(init, iter): the value at a loop header — [init] on the first
      iteration, [iter] (the value at the end of the previous body) on
      subsequent ones;
    - η(t): the value after the loop exits.

    The construction walks the structured AST once per unit body and
    yields, for every program point, a map from scalar names to gated
    terms.  {!Passes.Demand} performs the demand-driven backward
    substitution the paper describes on a flattened view; this module is
    the faithful representation, used where the gating structure itself
    matters (and by the test suite to validate the §3.4 examples). *)

open Fir
open Ast

type term =
  | Entry of string                 (** value at unit entry *)
  | Rhs of expr * env               (** assigned expression, with the
                                        terms of the scalars it read *)
  | Gamma of expr * term * term     (** γ(cond, then-value, else-value) *)
  | Mu of { init : term; iter : term option ref }
      (** loop-header value; [iter] is tied after the body is built *)
  | Eta of term                     (** value after loop exit *)
  | Unknown of string               (** killed (call, aliasing, goto) *)

and env = (string * term) list

let rec pp ppf = function
  | Entry v -> Fmt.pf ppf "%s@entry" v
  | Rhs (e, _) -> Fmt.pf ppf "%a" Expr.pp e
  | Gamma (c, a, b) -> Fmt.pf ppf "gamma(%a, %a, %a)" Expr.pp c pp a pp b
  | Mu { init; iter } ->
    Fmt.pf ppf "mu(%a, %s)" pp init
      (match !iter with Some _ -> "<iter>" | None -> "<open>")
  | Eta t -> Fmt.pf ppf "eta(%a)" pp t
  | Unknown why -> Fmt.pf ppf "unknown:%s" why

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

type point_table = (int, env) Hashtbl.t
(** statement id -> scalar environment holding *before* the statement *)

let lookup (env : env) v : term =
  match List.assoc_opt v env with Some t -> t | None -> Entry v

let scalar_env_of (symtab : Symtab.t) (env : env) (e : expr) : env =
  List.filter_map
    (fun v ->
      if Symtab.is_array symtab v then None else Some (v, lookup env v))
    (Expr.scalar_vars e)

let rec walk (symtab : Symtab.t) (points : point_table) (env : env) (b : block)
    : env =
  List.fold_left
    (fun env (s : stmt) ->
      Hashtbl.replace points s.sid env;
      match s.kind with
      | Assign (Var v, rhs) when not (Symtab.is_array symtab v) ->
        (v, Rhs (rhs, scalar_env_of symtab env rhs)) :: List.remove_assoc v env
      | Assign (_, _) -> env
      | If (c, t, e) ->
        let env_t = walk symtab points env t in
        let env_e = walk symtab points env e in
        let assigned =
          List.sort_uniq String.compare
            (Stmt.assigned_names t @ Stmt.assigned_names e)
        in
        List.fold_left
          (fun env v ->
            if Symtab.is_array symtab v then env
            else
              (v, Gamma (c, lookup env_t v, lookup env_e v))
              :: List.remove_assoc v env)
          env assigned
      | Do d ->
        let assigned =
          List.filter
            (fun v -> not (Symtab.is_array symtab v))
            (d.index :: Stmt.assigned_names d.body)
        in
        (* tie the knot: loop-carried values become mu-terms whose
           iteration side is filled in after the body walk *)
        let mus =
          List.map
            (fun v -> (v, Mu { init = lookup env v; iter = ref None }))
            assigned
        in
        let env_in =
          mus @ List.filter (fun (v, _) -> not (List.mem v assigned)) env
        in
        let env_out = walk symtab points env_in d.body in
        List.iter
          (fun (v, mu) ->
            match mu with
            | Mu m -> m.iter := Some (lookup env_out v)
            | _ -> assert false)
          mus;
        (* after the loop: eta of the body-end value *)
        List.fold_left
          (fun env v -> (v, Eta (lookup env_out v)) :: List.remove_assoc v env)
          env assigned
      | While (_, body) ->
        let env' = walk symtab points env body in
        ignore env';
        List.fold_left
          (fun env v ->
            if Symtab.is_array symtab v then env
            else (v, Unknown "while loop") :: List.remove_assoc v env)
          env (Stmt.assigned_names body)
      | Call (_, args) ->
        let killed = List.concat_map Expr.all_names args in
        let commons =
          Symtab.fold
            (fun n sym acc -> if sym.sym_common <> None then n :: acc else acc)
            symtab []
        in
        List.fold_left
          (fun env v ->
            if Symtab.is_array symtab v then env
            else (v, Unknown "call") :: List.remove_assoc v env)
          env (killed @ commons)
      | Goto _ ->
        List.map (fun (v, _) -> (v, Unknown "goto")) env
      | Continue | Return | Stop | Print _ -> env)
    env b

let compute (u : Punit.t) : point_table =
  let points = Hashtbl.create 64 in
  ignore (walk u.pu_symtab points [] u.pu_body);
  points

(** Build the GSA point table for a unit: for each statement id, the
    gated terms of every scalar live at that point.  A demand-driven
    {!Manager} analysis: memoized per unit until the unit is touched.
    Callers must treat the table as read-only. *)
let build : Punit.t -> point_table =
  Manager.unit_analysis ~name:"analysis.gsa" compute

(** The gated term of [var] just before statement [sid]. *)
let value_at (points : point_table) ~(sid : int) ~(var : string) : term =
  match Hashtbl.find_opt points sid with
  | Some env -> lookup env (Symtab.norm var)
  | None -> Entry (Symtab.norm var)

(* ------------------------------------------------------------------ *)
(* Resolution                                                          *)

(** Resolve a term to a closed expression over entry values when no
    gating is involved (straight-line def-use chains): the demand-driven
    substitution of the paper's Fig. 4, where following [MP = M * P]
    once discharges the goal. [fuel] bounds the chain length. *)
let rec resolve ?(fuel = 16) (t : term) : expr option =
  if fuel <= 0 then None
  else
    match t with
    | Entry v -> Some (Var v)
    | Rhs (e, captured) ->
      let exception Stuck in
      (try
         Some
           (Expr.map
              (function
                | Var v as orig -> (
                  match List.assoc_opt v captured with
                  | None -> orig
                  | Some t' -> (
                    match resolve ~fuel:(fuel - 1) t' with
                    | Some e' -> e'
                    | None -> raise Stuck))
                | e -> e)
              e)
       with Stuck -> None)
    | Eta t -> resolve ~fuel:(fuel - 1) t
    | Gamma _ | Mu _ | Unknown _ -> None

(** Is the value of the term invariant in the given loop body, i.e. does
    it resolve without crossing a μ of that loop?  A cheap query used to
    sanity-check the construction in tests. *)
let rec is_gated = function
  | Entry _ -> false
  | Rhs (_, captured) -> List.exists (fun (_, t) -> is_gated t) captured
  | Gamma _ | Mu _ -> true
  | Eta t -> is_gated t
  | Unknown _ -> false
