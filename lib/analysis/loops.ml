(** Loop-nest discovery and normalized loop descriptors.

    A [nest] is a loop together with the enclosing loops from outermost
    to itself; the dependence tests and the induction pass work on these
    descriptors, with loop bounds already lifted to polynomials. *)

open Fir
open Ast

type loop = {
  stmt : stmt;           (** the DO statement *)
  dloop : do_loop;       (** its payload *)
  lo : Symbolic.Poly.t;  (** init as a polynomial *)
  hi : Symbolic.Poly.t;  (** limit as a polynomial *)
  step : int option;     (** constant step if known *)
  index : Symbolic.Atom.t;
}

type nest = {
  loops : loop list;     (** outermost first; last = this nest's innermost *)
  body : block;          (** body of the innermost loop of [loops] *)
}

let describe (s : stmt) (d : do_loop) : loop =
  { stmt = s; dloop = d;
    lo = Symbolic.Poly.of_expr d.init;
    hi = Symbolic.Poly.of_expr d.limit;
    step = (match d.step with None -> Some 1 | Some e -> Expr.int_val e);
    index = Symbolic.Atom.var d.index }

let compute_nests (b : block) : nest list =
  let acc = ref [] in
  let rec go context (b : block) =
    List.iter
      (fun s ->
        match s.kind with
        | Do d ->
          let me = describe s d in
          let loops = context @ [ me ] in
          acc := { loops; body = d.body } :: !acc;
          go loops d.body
        | If (_, t, e) ->
          go context t;
          go context e
        | While (_, body) -> go context body
        | _ -> ())
      b
  in
  go [] b;
  List.rev !acc

(** All loops of a block with their enclosing-loop context (outermost
    first), in source order.  A demand-driven {!Manager} analysis:
    memoized per physical block, so repeated queries on an undisturbed
    body (within and across passes) walk it once. *)
let nests_of_block : block -> nest list =
  Manager.block_analysis ~name:"analysis.loops" compute_nests

let nests_of_unit (u : Punit.t) = nests_of_block u.pu_body

(** The innermost loop of a nest. *)
let innermost (n : nest) = Util.Listx.last n.loops

(** Indices of all loops in the nest, outermost first. *)
let indices (n : nest) = List.map (fun l -> l.index) n.loops

(** Trip-count polynomial of a loop with step 1 (hi - lo + 1). *)
let trip_count (l : loop) =
  Symbolic.Poly.add (Symbolic.Poly.sub l.hi l.lo) Symbolic.Poly.one

(** Does the loop body contain unstructured control flow (GOTO), STOP,
    RETURN or I/O that prevents parallelization? *)
let has_disqualifying_control (b : block) =
  Stmt.exists
    (fun s ->
      match s.kind with
      | Goto _ | Return | Stop | Print _ -> true
      | While _ -> true
      | _ -> false)
    b

(** Range environment of facts for analyzing the body of nest [n]:
    every loop index bounded by its bounds, loop-non-emptiness facts,
    plus the facts [outer_env] (e.g. from {!Symbolic.Range_prop})
    holding at the outermost loop.

    The environment lists innermost loops first, which is the
    elimination order the range test wants. *)
let nest_env ?(outer_env = Symbolic.Range.empty) (n : nest) : Symbolic.Range.env =
  List.fold_left
    (fun env (l : loop) ->
      match l.step with
      | Some s when s > 0 ->
        let env = Symbolic.Range.refine env l.index (Symbolic.Range.between l.lo l.hi) in
        (* the body only runs when the loop is non-empty *)
        Symbolic.Range_prop.assume_nonneg env (Symbolic.Poly.sub l.hi l.lo)
      | Some s when s < 0 ->
        let env = Symbolic.Range.refine env l.index (Symbolic.Range.between l.hi l.lo) in
        Symbolic.Range_prop.assume_nonneg env (Symbolic.Poly.sub l.lo l.hi)
      | _ -> env)
    outer_env n.loops
