(** Control-flow graph over the statement list (paper §2).

    Polaris kept successor/predecessor flow links in every statement and
    maintained them automatically across transformations.  Here the
    graph is derived on demand from the structured AST (cheap and always
    consistent by construction) and exposed with the same vocabulary:
    statement-level successor and predecessor sets, plus reachability.

    Edges follow Fortran semantics: sequential fall-through; DO headers
    branch into the body and past it (zero-trip); the last statement of
    a DO body loops back to the header; IFs branch to both arms (or past
    an empty else); GOTO edges resolve labels anywhere in the unit. *)

open Fir
open Ast

type t = {
  entry : int;                        (** sid of the first statement; -1 if empty *)
  succ : (int, int list) Hashtbl.t;   (** sid -> successor sids *)
  pred : (int, int list) Hashtbl.t;
  stmts : (int, stmt) Hashtbl.t;
  exit_sid : int;                     (** synthetic exit node *)
}

let exit_node = -2

let add_edge t a b =
  let push tbl k v =
    let prev = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
    if not (List.mem v prev) then Hashtbl.replace tbl k (v :: prev)
  in
  push t.succ a b;
  push t.pred b a

let compute (u : Punit.t) : t =
  let t =
    { entry = (match u.pu_body with [] -> -1 | s :: _ -> s.sid);
      succ = Hashtbl.create 64;
      pred = Hashtbl.create 64;
      stmts = Hashtbl.create 64;
      exit_sid = exit_node }
  in
  Stmt.iter (fun s -> Hashtbl.replace t.stmts s.sid s) u.pu_body;
  (* label resolution across the whole unit *)
  let label_tbl = Hashtbl.create 16 in
  Stmt.iter
    (fun s ->
      match s.label with
      | Some l -> if not (Hashtbl.mem label_tbl l) then Hashtbl.replace label_tbl l s.sid
      | None -> ())
    u.pu_body;
  (* [flow b ~after]: wire block [b], whose fall-through continues at
     [after] (a sid or the exit node) *)
  let rec flow (b : block) ~after =
    let rec go = function
      | [] -> ()
      | s :: rest ->
        let next = match rest with s' :: _ -> s'.sid | [] -> after in
        (match s.kind with
        | Assign _ | Call _ | Continue | Print _ -> add_edge t s.sid next
        | Return | Stop -> add_edge t s.sid exit_node
        | Goto l -> (
          match Hashtbl.find_opt label_tbl l with
          | Some target -> add_edge t s.sid target
          | None -> add_edge t s.sid exit_node)
        | If (_, th, el) ->
          (match th with
          | [] -> add_edge t s.sid next
          | f :: _ -> add_edge t s.sid f.sid);
          (match el with
          | [] -> add_edge t s.sid next
          | f :: _ -> add_edge t s.sid f.sid);
          flow th ~after:next;
          flow el ~after:next
        | Do d ->
          (* into the body, and past the loop for zero trips *)
          (match d.body with
          | [] -> ()
          | f :: _ -> add_edge t s.sid f.sid);
          add_edge t s.sid next;
          (* back edge: the body's fall-through returns to the header *)
          flow d.body ~after:s.sid
        | While (_, body) ->
          (match body with
          | [] -> ()
          | f :: _ -> add_edge t s.sid f.sid);
          add_edge t s.sid next;
          flow body ~after:s.sid);
        go rest
    in
    go b
  in
  flow u.pu_body ~after:exit_node;
  t

(** Flow graph of a unit body — a demand-driven {!Manager} analysis:
    memoized per unit, invalidated when the unit is touched. *)
let build : Punit.t -> t = Manager.unit_analysis ~name:"analysis.cfg" compute

let successors t sid = Option.value ~default:[] (Hashtbl.find_opt t.succ sid)
let predecessors t sid = Option.value ~default:[] (Hashtbl.find_opt t.pred sid)

(** Statements reachable from the entry. *)
let reachable (t : t) : int list =
  if t.entry < 0 then []
  else begin
    let seen = Hashtbl.create 64 in
    let rec go sid =
      if sid >= 0 && not (Hashtbl.mem seen sid) then begin
        Hashtbl.replace seen sid ();
        List.iter go (successors t sid)
      end
    in
    go t.entry;
    Hashtbl.fold (fun k () acc -> k :: acc) seen []
  end

(** Statements present in the unit but unreachable from the entry (dead
    code behind GOTOs/RETURNs). *)
let unreachable_stmts (u : Punit.t) : int list =
  let t = build u in
  let reach = reachable t in
  Hashtbl.fold
    (fun sid _ acc -> if List.mem sid reach then acc else sid :: acc)
    t.stmts []

(** Consistency: every statement has at least one successor (possibly
    the synthetic exit) and every non-entry reachable statement has a
    predecessor.  Holds by construction; exposed for the test suite in
    the spirit of Polaris' automatic flow-link maintenance. *)
let consistent (u : Punit.t) : bool =
  let t = build u in
  let ok = ref true in
  Hashtbl.iter
    (fun sid _ -> if successors t sid = [] then ok := false)
    t.stmts;
  List.iter
    (fun sid ->
      if sid <> t.entry && sid >= 0 && predecessors t sid = [] then ok := false)
    (reachable t);
  !ok
