(** Real LRPD speculation backend for {!Machine.Parexec}.

    [Parexec] owns the execution mechanics of a speculative region —
    checkpointing written arrays, forking the iteration space, rolling
    back with {!Machine.Storage.restore} and re-running sequentially on
    failure — but is deliberately ignorant of how accesses are judged
    (the [machine] library cannot depend on [fruntime]).  This module
    supplies that judgement: one private {!Shadow} per (tested array ×
    domain), marked concurrently without any synchronization, then
    merged with {!Shadow.merge_into} at the join and rendered into a
    verdict with the same {!Shadow.verdict_of_analysis} the modeled
    lane uses.  A loop is committed only on a plain [Parallel] verdict:
    [Parallel_privatized] means the as-executed in-place writes had
    output dependences, so the results are discarded exactly like a
    failure. *)

let backend : Machine.Parexec.spec_backend =
  { Machine.Parexec.sb_make =
      (fun ~size ~domains ->
        let shadows = Array.init domains (fun _ -> Shadow.create size) in
        let make j =
          let s = shadows.(j) in
          { Machine.Parexec.s_read = Shadow.read s;
            s_write = Shadow.write s;
            s_iter_begin = (fun () -> Shadow.begin_iteration s) }
        in
        let finalize () =
          let merged = Shadow.create size in
          Array.iter (fun s -> Shadow.merge_into merged s) shadows;
          match Shadow.verdict merged with
          | Shadow.Parallel -> Machine.Parexec.Spec_parallel
          | Shadow.Parallel_privatized -> Machine.Parexec.Spec_privatize
          | Shadow.Not_parallel -> Machine.Parexec.Spec_fail
        in
        (make, finalize)) }
