(** Speculative DOALL execution with the PD test (paper §3.5).

    Orchestrates one speculative instantiation of a loop whose access
    pattern is unknown at compile time:

    + run the loop through the interpreter with the access hook
      attached, collecting per-iteration costs and the access trace of
      the tested shared array;
    + feed the trace to the {!Shadow} marking and run the
      post-execution analysis;
    + price the outcome: on success the loop costs the speculative
      parallel time plus the PD overhead; on failure the checkpointed
      state is restored and the loop re-executes sequentially.

    Execution is always semantically sequential (the interpreter runs
    the loop in order); only the *timing* reflects the speculation, as
    everywhere else in the simulator. *)

open Fir

type outcome = {
  verdict : Shadow.verdict;
  t_seq : int;          (** sequential time of the loop *)
  t_spec : int;         (** speculative parallel time incl. marking *)
  t_pd_analysis : int;  (** post-execution analysis time *)
  t_checkpoint : int;
  t_restore : int;      (** only paid on failure *)
  t_total : int;        (** what this instantiation costs end-to-end *)
  accesses : int;
  iterations : int;
  checkpoint : Machine.Storage.data option;
      (** contents of the tested array at loop entry — what a failed
          speculation must restore *)
  tested_alloc : Machine.Storage.alloc option;
      (** the tested array's live allocation, so callers (and tests) can
          exercise {!Machine.Storage.restore} against the checkpoint *)
}

(** Potential slowdown of this instantiation had the test failed:
    (T_seq + T_pdt) / T_seq (paper Fig. 6, bottom). *)
let potential_slowdown (o : outcome) =
  if o.t_seq = 0 then 1.0
  else
    float_of_int (o.t_seq + o.t_spec + o.t_pd_analysis + o.t_checkpoint + o.t_restore)
    /. float_of_int o.t_seq

let speedup (o : outcome) =
  if o.t_total = 0 then 1.0 else float_of_int o.t_seq /. float_of_int o.t_total

(** Run program [prog] (whose main unit contains the speculative loop
    marked by [loop_sid]) once, speculating on [array]; [procs] selects
    the machine size.  [shadow_size] defaults to the declared size of
    [array] in the main unit. *)
let run ?(cost = Pd_test.default_cost) ?(procs = 8) ~(loop_sid : int)
    ~(array : string) ?(shadow_size : int option) (prog : Program.t) : outcome =
  let array = Symtab.norm array in
  let main = Program.main prog in
  let size =
    match shadow_size with
    | Some n -> n
    | None -> (
      match Symtab.find_opt main.pu_symtab array with
      | Some sym -> (
        match Symtab.const_size sym with
        | Some n -> n
        | None -> invalid_arg "Speculative.run: array size unknown")
      | None -> invalid_arg "Speculative.run: array not declared in main")
  in
  let shadow = Shadow.create size in
  let accesses = ref 0 in
  let iter_costs = ref [] in
  let in_loop = ref false in
  let iter_start_time = ref 0 in
  let iterations = ref 0 in
  let cfg = Machine.Interp.default_config ~parallel:false ~procs () in
  let st = Machine.Interp.fresh_state ~cfg prog in
  let checkpoint = ref None in
  let tested_alloc = ref None in
  let fr : Machine.Interp.frame =
    { unit_ = main; vars = Hashtbl.create 32 }
  in
  st.on_loop_iter <-
    Some
      (fun sid k time ->
        if sid = loop_sid then begin
          if not !in_loop then begin
            (* loop entry: checkpoint the tested array so a failed
               speculation can restore it (paper §3.5.3) *)
            let b = Machine.Interp.binding_for st fr array in
            tested_alloc := Some b.view.alloc;
            checkpoint := Some (Machine.Storage.snapshot b.view.alloc)
          end;
          if k > 0 || !in_loop then begin
            iter_costs := (time - !iter_start_time) :: !iter_costs;
            Shadow.end_iteration shadow
          end;
          iter_start_time := time;
          in_loop := true
        end);
  st.on_loop_done <-
    Some (fun sid _time -> if sid = loop_sid then in_loop := false);
  st.on_access <-
    Some
      (fun rw name idx ->
        if !in_loop && String.equal name array then begin
          incr accesses;
          match rw with
          | Machine.Interp.R -> Shadow.read shadow idx
          | Machine.Interp.W -> Shadow.write shadow idx
        end);
  Machine.Interp.run_unit_body st fr;
  (* the final on_loop_iter event (k = trips) closed the last iteration;
     the cost list is reversed and one entry longer than the trip count
     only if the loop ran at least once *)
  let costs = Array.of_list (List.rev !iter_costs) in
  iterations := Array.length costs;
  let t_seq = Array.fold_left ( + ) 0 costs in
  let analysis = Shadow.analyze ~total_accesses:!accesses shadow in
  let verdict = Shadow.verdict_of_analysis analysis in
  let mach = Machine.Parsim.default ~procs () in
  (* pricing follows the shadow analysis: a plain Parallel verdict
     privatizes nothing and merges nothing; Parallel_privatized pays
     one private copy of the tested array per processor plus the
     last-value merge of every element the loop wrote; a failed
     speculation ran unprivatized, so its attempt also charges
     nothing here (the restore + serial re-run are priced below) *)
  let n_private, reduction_elems =
    match verdict with
    | Shadow.Parallel_privatized -> (1, analysis.Shadow.marks)
    | Shadow.Parallel | Shadow.Not_parallel -> (0, 0)
  in
  let body =
    Machine.Parsim.doall_time mach ~iter_costs:costs ~n_private
      ~reduction_elems
  in
  let t_spec = body + Pd_test.marking_time cost ~accesses:!accesses ~p:procs in
  let t_pd_analysis = Pd_test.analysis_time cost ~size ~p:procs in
  let t_checkpoint = Pd_test.checkpoint_time cost ~size ~p:procs in
  let t_restore = Pd_test.restore_time cost ~size ~p:procs in
  let t_total =
    match verdict with
    | Shadow.Parallel | Shadow.Parallel_privatized ->
      t_checkpoint + t_spec + t_pd_analysis
    | Shadow.Not_parallel ->
      (* failed speculation: pay the attempt, restore, re-run serially *)
      t_checkpoint + t_spec + t_pd_analysis + t_restore + t_seq
  in
  { verdict; t_seq; t_spec; t_pd_analysis; t_checkpoint; t_restore; t_total;
    accesses = !accesses; iterations = !iterations;
    checkpoint = !checkpoint; tested_alloc = !tested_alloc }
