(** Shadow arrays for the PD test (paper §3.5.2).

    One shadow structure per tested shared array [A]:
    - [w] (the paper's A_w): element written by some iteration;
    - [r] (A_r): element read by some iteration that never wrote it
      during that iteration;
    - [np] (A_np): element read before being written within the same
      iteration — privatization would read an uninitialized private
      copy;
    - [wa]: total count of first-per-iteration writes; [wa <> marks(w)]
      means some element was written by more than one iteration (an
      output dependence, removable by privatization). *)

type t = {
  size : int;
  w : Bytes.t;
  r : Bytes.t;
  np : Bytes.t;
  mutable wa : int;
  iter_written : Bytes.t;        (** per-iteration: written flags *)
  iter_pending : Bytes.t;        (** per-iteration: read-before-write *)
  mutable touched : int list;    (** elements touched this iteration *)
}

let create size =
  { size;
    w = Bytes.make size '\000';
    r = Bytes.make size '\000';
    np = Bytes.make size '\000';
    wa = 0;
    iter_written = Bytes.make size '\000';
    iter_pending = Bytes.make size '\000';
    touched = [] }

let mark b i = Bytes.set b i '\001'
let marked b i = Bytes.get b i <> '\000'

(* flush the per-iteration state: pending reads never satisfied by a
   later write of the same iteration become A_r marks *)
let end_iteration t =
  List.iter
    (fun i ->
      if marked t.iter_pending i && not (marked t.iter_written i) then mark t.r i;
      Bytes.set t.iter_written i '\000';
      Bytes.set t.iter_pending i '\000')
    t.touched;
  t.touched <- []

(** Start marking a new iteration (also finishes the previous one). *)
let begin_iteration t = end_iteration t

(** Record a write of element [i] by the current iteration. *)
let write t i =
  if i >= 0 && i < t.size then
    if not (marked t.iter_written i) then begin
      if marked t.iter_pending i then mark t.np i (* read before write *);
      t.wa <- t.wa + 1;
      mark t.w i;
      mark t.iter_written i;
      t.touched <- i :: t.touched
    end

(** Record a read of element [i] by the current iteration. *)
let read t i =
  if i >= 0 && i < t.size then
    if (not (marked t.iter_written i)) && not (marked t.iter_pending i) then begin
      mark t.iter_pending i;
      t.touched <- i :: t.touched
    end

(** Merge the marks of [src] into [dst] (both are flushed first).

    Under block scheduling each domain marks a private shadow for its
    own iterations; [w]/[r]/[np] are per-(element, iteration) facts
    aggregated by OR and [wa] counts first-per-iteration writes, so
    OR-ing the bitmaps and summing [wa] yields exactly the marks a
    single shadow would have collected over the whole iteration space
    (paper §3.5.2's "merge phase", O(size) per processor). *)
let merge_into dst src =
  if dst.size <> src.size then invalid_arg "Shadow.merge_into: size mismatch";
  end_iteration dst;
  end_iteration src;
  for i = 0 to dst.size - 1 do
    if marked src.w i then mark dst.w i;
    if marked src.r i then mark dst.r i;
    if marked src.np i then mark dst.np i
  done;
  dst.wa <- dst.wa + src.wa

(** Post-execution analysis of the marks (paper §3.5.2). *)
type analysis = {
  flow_or_anti : bool;     (** any(A_w and A_r) *)
  not_privatizable : bool; (** any(A_w and A_np) *)
  output_deps : bool;      (** wa <> marks(A_w) *)
  marks : int;
  total_writes : int;
  total_accesses : int;    (** accesses fed to the shadow (for the cost
                               model O(a/p + log p)) *)
}

(* total accesses are counted by the caller; keep a cell here *)
let analyze ?(total_accesses = 0) t : analysis =
  end_iteration t;
  let marks = ref 0 in
  let flow = ref false in
  let np = ref false in
  for i = 0 to t.size - 1 do
    if marked t.w i then begin
      incr marks;
      if marked t.r i then flow := true;
      if marked t.np i then np := true
    end
  done;
  { flow_or_anti = !flow;
    not_privatizable = !np;
    output_deps = t.wa <> !marks;
    marks = !marks;
    total_writes = t.wa;
    total_accesses }

(** Verdict for a loop speculatively executed as a DOALL. *)
type verdict =
  | Parallel               (** fully parallel as-is *)
  | Parallel_privatized    (** parallel with the tested array privatized *)
  | Not_parallel

let verdict_of_analysis (a : analysis) : verdict =
  if a.flow_or_anti then Not_parallel
  else if a.not_privatizable then
    (* element read-before-write and written only within single
       iterations is harmless; with multiple writers privatization
       would be required but is invalid *)
    if a.output_deps then Not_parallel else Parallel
  else if a.output_deps then Parallel_privatized
  else Parallel

let verdict ?total_accesses t = verdict_of_analysis (analyze ?total_accesses t)
