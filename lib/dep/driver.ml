(** Dependence-analysis driver: per-loop parallelism verdicts.

    Orchestrates the tests over all access pairs of a loop body and
    implements the permuted-prefix scheme of the range test (paper
    §3.3.1): a loop is free of carried array dependences if there is an
    ordered list of promoted inner loops, each passing its own
    range-test position, with the tested loop passing last.

    The [method_] selects the capability set: [Range_test] is the
    Polaris configuration, [Banerjee_gcd] the baseline ("current
    compilers" / PFA) configuration. *)

open Symbolic
module Loops = Analysis.Loops
module Access = Analysis.Access

type method_ = Range_symbolic | Banerjee_gcd

type verdict =
  | Parallel of string          (** proof description *)
  | Dependent of string         (** first failure reason *)

let is_parallel = function Parallel _ -> true | Dependent _ -> false

(* ------------------------------------------------------------------ *)
(* Outcome counters (the flight recorder's dependence-test telemetry)   *)

type counters = {
  mutable range_proved : int;   (** range test: independence proved *)
  mutable range_failed : int;
  mutable linear_proved : int;  (** gcd/banerjee/siv: independence proved *)
  mutable linear_failed : int;
  mutable unknown : int;
      (** verdicts degraded to serial because the analysis budget ran
          out before the tests could finish (counted on top of the
          failed counter for the method) *)
}

let counters =
  { range_proved = 0; range_failed = 0; linear_proved = 0; linear_failed = 0;
    unknown = 0 }

let reset_counters () =
  counters.range_proved <- 0;
  counters.range_failed <- 0;
  counters.linear_proved <- 0;
  counters.linear_failed <- 0;
  counters.unknown <- 0

let index_name (l : Loops.loop) =
  match l.index with Atom.Avar v -> v | Atom.Aopaque _ -> "?"

(* ------------------------------------------------------------------ *)
(* Verdict cache and phase timing                                      *)

(* Wall-clock seconds spent inside [array_deps] since process start;
   the perf benchmark subtracts snapshots to attribute pipeline time to
   the dependence phase. *)
let wall_in_deps = ref 0.0
let wall_snapshot () = !wall_in_deps

(* --- Domain-safe counter collection (the deterministic-merge story) --

   During the parallel dependence phase, verdicts run inside
   {!Util.Pool} worker tasks.  Bare atomics would make the *final*
   counter values correct but their intermediate evolution (and, after
   a contained fault, the final values too) dependent on scheduling.
   Instead, every task runs under {!collecting}, which parks a private
   tally in domain-local storage; the merge step applies the tallies in
   program order ({!apply_tally}), so the global counters are only ever
   written by the submitting domain, and a run at [-j 8] leaves them
   byte-identical to [-j 1] — including runs where a verdict faulted
   (the tally survives the exception, exactly like the serial
   accumulate-then-raise path under [Fun.protect]). *)

type tally = { t_counters : counters; mutable t_wall : float }

let fresh_tally () =
  { t_counters =
      { range_proved = 0; range_failed = 0; linear_proved = 0;
        linear_failed = 0; unknown = 0 };
    t_wall = 0.0 }

let tally_key : tally option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* Per-request isolation (the daemon's concurrent compile workers).
   [isolate] parks a second, longer-lived tally in domain-local storage
   for the whole request: every counter update and snapshot inside it
   reads/writes the private record, so two requests compiling
   concurrently in different domains each observe exactly their own
   dependence-test outcome deltas — byte-identical to running the same
   request alone.  The private tally folds into the process-wide
   counters (under a mutex) when the request ends, keeping the
   process-lifetime telemetry whole. *)
let isolated_key : tally option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let global_m = Mutex.create ()

(* the counters record to charge from the current context: a
   [collecting] task tally first, then a per-request [isolate] tally,
   then the process-wide record *)
let live_counters () =
  match !(Domain.DLS.get tally_key) with
  | Some t -> t.t_counters
  | None -> (
    match !(Domain.DLS.get isolated_key) with
    | Some t -> t.t_counters
    | None -> counters)

(** A copy of the counters of the current context (safe to keep across
    {!reset_counters}): inside {!isolate} the request's private record,
    the process-wide record otherwise.  {!Core.Incremental} brackets a
    compile with two snapshots and reports the delta, so under
    [isolate] the delta covers exactly that one compile. *)
let counters_snapshot () =
  let c = live_counters () in
  { c with range_proved = c.range_proved }

let add_wall dt =
  match !(Domain.DLS.get tally_key) with
  | Some t -> t.t_wall <- t.t_wall +. dt
  | None -> (
    match !(Domain.DLS.get isolated_key) with
    | Some t -> t.t_wall <- t.t_wall +. dt
    | None -> wall_in_deps := !wall_in_deps +. dt)

(** Run [f] with counter and wall updates diverted into a fresh private
    tally; returns [f]'s outcome (exceptions are captured, not raised —
    the caller decides where in the merged order they surface) together
    with the tally. *)
let collecting (f : unit -> 'a) :
    ('a, exn * Printexc.raw_backtrace) result * tally =
  let t = fresh_tally () in
  let cell = Domain.DLS.get tally_key in
  cell := Some t;
  let outcome =
    match f () with
    | v -> Ok v
    | exception e -> Error (e, Printexc.get_raw_backtrace ())
  in
  cell := None;
  (outcome, t)

let fold_into (dst : counters) (src : counters) =
  dst.range_proved <- dst.range_proved + src.range_proved;
  dst.range_failed <- dst.range_failed + src.range_failed;
  dst.linear_proved <- dst.linear_proved + src.linear_proved;
  dst.linear_failed <- dst.linear_failed + src.linear_failed;
  dst.unknown <- dst.unknown + src.unknown

(** Fold a {!collecting} tally into the enclosing context — the
    per-request {!isolate} tally when one is active, the process-wide
    counters and wall clock otherwise (submitting domain only, in
    program order). *)
let apply_tally (t : tally) =
  match !(Domain.DLS.get isolated_key) with
  | Some iso ->
    fold_into iso.t_counters t.t_counters;
    iso.t_wall <- iso.t_wall +. t.t_wall
  | None ->
    fold_into counters t.t_counters;
    wall_in_deps := !wall_in_deps +. t.t_wall

(** Run [f] as an isolated request: counter and wall snapshots inside
    [f] observe only this request's own dependence-test activity, no
    matter what other domains are doing.  On exit (exceptions included)
    the private tally folds into the process-wide records under a
    mutex, so lifetime telemetry still adds up. *)
let isolate (f : unit -> 'a) : 'a =
  let t = fresh_tally () in
  let cell = Domain.DLS.get isolated_key in
  let saved = !cell in
  cell := Some t;
  Fun.protect
    ~finally:(fun () ->
      cell := saved;
      Mutex.protect global_m (fun () ->
          fold_into counters t.t_counters;
          wall_in_deps := !wall_in_deps +. t.t_wall))
    f

let record method_ verdict =
  let c = live_counters () in
  match (method_, verdict) with
  | Range_symbolic, Parallel _ -> c.range_proved <- c.range_proved + 1
  | Range_symbolic, Dependent _ -> c.range_failed <- c.range_failed + 1
  | Banerjee_gcd, Parallel _ -> c.linear_proved <- c.linear_proved + 1
  | Banerjee_gcd, Dependent _ -> c.linear_failed <- c.linear_failed + 1

(** Test seam: called with the target loop's index name at the start of
    every {!array_deps} verdict (before any symbolic work).  The chaos
    suite uses it to fault a specific verdict {e inside} a worker
    domain and check that containment is identical to the serial run.
    Restore the previous value after use ([Fun.protect]). *)
let verdict_hook : (string -> unit) ref = ref (fun _ -> ())

(* A verdict is a pure function of the canonical fingerprint below plus
   the budget's starvation behaviour, which [Cache.memo_budgeted]
   replays exactly (each verdict draws a fresh budget, so the recorded
   step cost is affordable on a hit precisely when the original run did
   not starve).  Statement ids and bodies are deliberately absent: the
   env, loop headers, access polynomials and the assigned/written name
   sets capture everything the tests read, so structurally identical
   nests hit across passes and even across compilations. *)
type loop_fingerprint = Atom.t * Poly.t * Poly.t * int option

type verdict_key = {
  vk_method : method_;
  vk_enclosing : loop_fingerprint list;
  vk_target : loop_fingerprint;
  vk_inner : loop_fingerprint list;
  vk_accesses : (string * Access.kind * Poly.t list) list;
  vk_assigned : string list;
  vk_written : string list;
  vk_env : Range.env;
}

let loop_fingerprint (l : Loops.loop) : loop_fingerprint =
  (l.index, l.lo, l.hi, l.step)

(* persist: the key is a pure content fingerprint and the value a pure
   (verdict, step-cost) pair, so entries survive to the daemon's
   on-disk store and re-hit in later processes *)
let verdict_cache : (verdict_key, verdict * int) Cache.t =
  Cache.create ~name:"dep.verdict" ~persist:true ()

(* ------------------------------------------------------------------ *)
(* Analysis budgets                                                    *)

(** Default step fuel for one {!array_deps} verdict.  Generous: the
    whole evaluation suite spends well under this per loop; the point is
    to bound pathological symbolic blow-ups, not to change verdicts. *)
let default_budget_steps = 200_000

(** Produces the budget for one verdict when the caller passes none.
    {!Core.Pipeline} installs a factory honouring the configuration's
    budget (and the chaos injector installs an exhausted one). *)
let budget_factory : (unit -> Util.Budget.t) ref =
  ref (fun () -> Util.Budget.create ~steps:default_budget_steps ())

(* Inside {!isolate} the factory lives in domain-local storage: two
   requests installing budgets concurrently must not see (or restore)
   each other's factories through the process-wide ref. *)
let budget_override_key : (unit -> Util.Budget.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_budget_factory () =
  match !(Domain.DLS.get budget_override_key) with
  | Some f -> f
  | None -> !budget_factory

(** Run [f] with budgets drawn as [steps] of fuel plus an optional
    deadline; restores the previous factory on exit. *)
let with_budget ?steps ?deadline_s f =
  let factory () =
    Util.Budget.create
      ~steps:(Option.value steps ~default:default_budget_steps)
      ?deadline_s ()
  in
  if Option.is_some !(Domain.DLS.get isolated_key) then begin
    let cell = Domain.DLS.get budget_override_key in
    let saved = !cell in
    cell := Some factory;
    Fun.protect ~finally:(fun () -> cell := saved) f
  end
  else begin
    let saved = !budget_factory in
    budget_factory := factory;
    Fun.protect ~finally:(fun () -> budget_factory := saved) f
  end

(* ------------------------------------------------------------------ *)
(* Access-pair enumeration                                             *)

(* unordered pairs (with self-pairs for writes) that involve a write *)
let conflict_pairs (accs : Access.t list) : (Access.t * Access.t) list =
  let arr = Array.of_list accs in
  let n = Array.length arr in
  let out = ref [] in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      if a.Access.kind = Access.Write || b.Access.kind = Access.Write then
        if i <> j || a.Access.kind = Access.Write then out := (a, b) :: !out
    done
  done;
  !out

(* ------------------------------------------------------------------ *)
(* Soundness pre-checks on subscripts                                  *)

(* subscripts must denote a single value per iteration vector: reject
   accesses whose subscripts mention scalars assigned in the body (other
   than loop indices, which the tests model) or arrays written in the
   body (subscripted subscripts - the LRPD candidates, paper §3.5) *)
type subscript_issue = Varying_scalar of string | Subscripted_subscript of string

let subscript_issue ~(assigned_scalars : string list)
    ~(written_arrays : string list) ~(index_names : string list)
    (a : Access.t) : subscript_issue option =
  let bad_scalar =
    List.find_opt
      (fun v ->
        (not (List.mem v index_names))
        && List.exists (fun p -> Poly.mentions_var v p) a.subs)
      assigned_scalars
  in
  match bad_scalar with
  | Some v -> Some (Varying_scalar v)
  | None ->
    let bad_array =
      List.find_opt
        (fun arr -> List.exists (fun p -> Poly.mentions_var arr p) a.subs)
        written_arrays
    in
    (match bad_array with
    | Some arr -> Some (Subscripted_subscript arr)
    | None -> None)

(* ------------------------------------------------------------------ *)
(* Range-test positions and prefixes                                   *)

(* one position test: iterations of [tested] differ, [collapsed] loops
   range-collapse, everything else is fixed *)
let position_passes ~budget env ~(tested : Loops.loop)
    ~(collapsed : Loops.loop list) (pairs : (Access.t * Access.t) list) : bool
    =
  let inner = List.map (fun (l : Loops.loop) -> l.index) collapsed in
  let index = index_name tested in
  List.for_all
    (fun ((a : Access.t), (b : Access.t)) ->
      Range_test.test_pair ~budget env ~index ~inner a.subs b.subs
      = Range_test.Disjoint)
    pairs

(* candidate promotion prefixes: empty, each single inner loop, each
   ordered pair of inner loops (the paper's permutations never needed
   more in the benchmark suite) *)
let promotion_prefixes (inner : Loops.loop list) : Loops.loop list list =
  let singles = List.map (fun l -> [ l ]) inner in
  let pairs =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b -> if a != b then Some [ a; b ] else None)
          inner)
      inner
  in
  ([] :: singles) @ pairs

let range_test_verdict ~budget env ~(target : Loops.loop)
    ~(inner : Loops.loop list) pairs : verdict =
  let try_prefix (prefix : Loops.loop list) : bool =
    (* each promoted loop must pass with earlier promotions fixed and
       everything else (including the target) collapsed *)
    let rec check_promoted before = function
      | [] -> true
      | s :: rest ->
        let collapsed =
          target :: List.filter (fun l -> not (List.memq l (before @ [ s ]))) inner
        in
        position_passes ~budget env ~tested:s ~collapsed pairs
        && check_promoted (before @ [ s ]) rest
    in
    check_promoted [] prefix
    &&
    let collapsed = List.filter (fun l -> not (List.memq l prefix)) inner in
    position_passes ~budget env ~tested:target ~collapsed pairs
  in
  let rec first_passing = function
    | [] -> Dependent "range test: overlap possible in every tested order"
    | prefix :: rest ->
      if try_prefix prefix then
        let desc =
          match prefix with
          | [] -> "range test"
          | ls ->
            Fmt.str "range test (promoted: %s)"
              (String.concat "," (List.map index_name ls))
        in
        Parallel desc
      else first_passing rest
  in
  first_passing (promotion_prefixes inner)

(* ------------------------------------------------------------------ *)
(* Baseline: GCD + Banerjee                                            *)

let banerjee_verdict ~budget ~(enclosing : Loops.loop list)
    ~(target : Loops.loop) ~(inner : Loops.loop list) pairs : verdict =
  let loops = enclosing @ [ target ] @ inner in
  let k = List.length enclosing in
  let indices = List.map index_name loops in
  let pair_ok ((a : Access.t), (b : Access.t)) =
    Gcd_test.test ~indices a.subs b.subs = Gcd_test.Independent
    || Banerjee.carries ~budget ~loops ~k a.subs b.subs = Banerjee.Independent
    || Siv.test
         ~enclosing:(List.map index_name enclosing)
         ~index:(index_name target)
         ~inner:(List.map index_name inner)
         a.subs b.subs
       = Siv.Independent
  in
  match List.find_opt (fun p -> not (pair_ok p)) pairs with
  | None -> Parallel "gcd/banerjee"
  | Some (a, _) ->
    Dependent (Fmt.str "banerjee: possible carried dependence on %s" a.Access.array)

(* ------------------------------------------------------------------ *)
(* Top-level per-loop array-dependence analysis                        *)

(** Array-dependence verdict for [target].

    [accesses] are the accesses of the target's body (use
    {!Analysis.Access.of_block}), already filtered of flagged reduction
    statements.  [env] must include loop-bound facts for enclosing,
    target and inner loops (use {!Analysis.Loops.nest_env}).

    [budget] (default: one drawn from {!budget_factory}) bounds the
    symbolic work of this one verdict; when it runs out the verdict
    degrades to a serial "dependence unknown" — never an exception, and
    never an unsound "independent". *)
let array_deps ?budget ~(method_ : method_) ~(symtab : Fir.Symtab.t)
    ~(env : Range.env) ~(enclosing : Loops.loop list) ~(target : Loops.loop)
    ~(inner : Loops.loop list) ~(body_writes : string list)
    ~(accesses : Access.t list) () : verdict =
  let t0 = Unix.gettimeofday () in
  (* [Fun.protect]: a fault mid-verdict (contained later by the
     pipeline guard) must not lose the elapsed-time accounting, and the
     counter updates below all happen before any point that can raise
     after them — accumulate-then-raise, deterministically. *)
  Fun.protect
    ~finally:(fun () -> add_wall (Unix.gettimeofday () -. t0))
  @@ fun () ->
  !verdict_hook (index_name target);
  let budget =
    match budget with Some b -> b | None -> current_budget_factory () ()
  in
  let body = target.dloop.body in
  let assigned_scalars =
    List.filter
      (fun v -> not (Fir.Symtab.is_array symtab v))
      (Fir.Stmt.assigned_names body)
  in
  (* arrays written anywhere in the body (callers analyzing one array at
     a time must pass the full set, or subscripted subscripts through
     arrays written elsewhere in the body would go unnoticed) *)
  let written_arrays =
    List.sort_uniq String.compare
      (body_writes
      @ List.filter_map
          (fun (a : Access.t) ->
            if a.kind = Access.Write then Some a.array else None)
          accesses)
  in
  let index_names =
    List.map index_name (enclosing @ [ target ] @ inner)
  in
  let key =
    { vk_method = method_;
      vk_enclosing = List.map loop_fingerprint enclosing;
      vk_target = loop_fingerprint target;
      vk_inner = List.map loop_fingerprint inner;
      vk_accesses =
        List.map (fun (a : Access.t) -> (a.array, a.kind, a.subs)) accesses;
      vk_assigned = assigned_scalars;
      vk_written = written_arrays;
      vk_env = env }
  in
  let verdict =
    Cache.memo_budgeted verdict_cache ~budget key (fun () ->
        (* soundness: reject unanalyzable subscripts *)
        let issue =
          List.fold_left
            (fun acc a ->
              match acc with
              | Some _ -> acc
              | None ->
                subscript_issue ~assigned_scalars ~written_arrays ~index_names a)
            None accesses
        in
        match issue with
        | Some (Varying_scalar v) ->
          Dependent (Fmt.str "subscript contains loop-varying scalar %s" v)
        | Some (Subscripted_subscript arr) ->
          Dependent
            (Fmt.str "subscripted subscript through array %s written in loop" arr)
        | None -> (
          let pairs = conflict_pairs accesses in
          if pairs = [] then Parallel "no conflicting accesses"
          else
            match method_ with
            | Range_symbolic -> range_test_verdict ~budget env ~target ~inner pairs
            | Banerjee_gcd -> banerjee_verdict ~budget ~enclosing ~target ~inner pairs))
  in
  (* a Dependent verdict reached with an exhausted budget is not a
     disproof, it is "analysis did not finish": degrade explicitly so
     the reason (and the counters) say so.  A Parallel verdict is kept —
     a proof that completed before the fuel ran out is still a proof. *)
  let verdict =
    match verdict with
    | Dependent why when Util.Budget.exhausted budget ->
      let c = live_counters () in
      c.unknown <- c.unknown + 1;
      Dependent
        (Fmt.str "analysis budget exhausted: dependence unknown, loop stays serial (last test: %s)"
           why)
    | v -> v
  in
  record method_ verdict;
  verdict
