(** The Range Test (Blume & Eigenmann; paper §3.3.1).

    A loop is marked parallel when the range of array elements accessed
    by one of its iterations provably does not overlap the ranges of
    other iterations.  Per-iteration ranges are obtained by eliminating
    the indices of loops *inner* to the tested loop by monotone
    min/max substitution ({!Symbolic.Compare}); the non-overlap proof is
    either

    - {b total disjointness}: the whole range of one access lies below
      the whole range of the other for every pair of iterations, or
    - {b adjacent disjointness}: [max f(i) < min g(i+1)] with
      [min g] monotonically non-decreasing in the tested index (and the
      symmetric and direction-reversed variants),

    exactly the tests worked through for TRFD and OCEAN in the paper.

    {b Loop permutation.}  Testing visits the loops of a nest in a
    permuted order: the loops before the tested one in that order are
    held fixed, the later ones are collapsed into ranges.  A loop is
    DOALL under a permuted prefix only if every promoted inner loop of
    the prefix passes its own test (first-difference argument, see
    DESIGN.md); {!Driver} assembles prefixes, this module provides the
    single-position test. *)

open Symbolic

type pair_verdict = Disjoint | Overlap_possible

(* does any opaque atom of [p] capture the scalar [name]?  if so,
   substituting name+1 for name would be unsound *)
let opaque_captures name (p : Poly.t) =
  List.exists
    (function
      | Atom.Aopaque _ as a -> Atom.mentions name a
      | Atom.Avar _ -> false)
    (Poly.atoms p)

(* env entries whose *bounds* mention the tested index are per-iteration
   facts; they must not be used when comparing two different iterations.
   Exception: atoms being range-collapsed ([keep]) — their index-dependent
   bounds are exactly what produces the per-iteration range, and the
   shift to iteration i+1 rewrites the index through those bounds. *)
let sanitize_env (env : Range.env) ~(index : string) ~(keep : Atom.t list) :
    Range.env =
  List.filter
    (fun ((a : Atom.t), (iv : Range.interval)) ->
      Atom.equal a (Atom.var index)
      || List.exists (Atom.equal a) keep
      || ((not (Range.bound_mentions_var index iv.lo))
         && not (Range.bound_mentions_var index iv.hi)))
    env

type ranged = {
  rmin : Poly.t;   (** per-iteration minimum of the subscript *)
  rmax : Poly.t;   (** per-iteration maximum *)
}

(** Collapse the [inner] index atoms out of subscript [p] (one array
    dimension) under [env], producing its per-iteration range. *)
let collapse ?budget env ~(inner : Atom.t list) (p : Poly.t) : ranged option =
  match
    ( Compare.eliminate ?budget env `Min ~over:inner p,
      Compare.eliminate ?budget env `Max ~over:inner p )
  with
  | Ok rmin, Ok rmax -> Some { rmin; rmax }
  | _ -> None

let shift_index ~index (p : Poly.t) =
  Poly.subst (Atom.var index) (Poly.add (Poly.var index) Poly.one) p

(* prove that range [a] at iteration i never meets range [b] at any
   iteration i' > i of [index] *)
let disjoint_forward ?budget env ~index (a : ranged) (b : ranged) : bool =
  let i = Atom.var index in
  (* adjacent + monotone: max a(i) < min b(i+1), min b nondecreasing *)
  (Compare.prove_lt ?budget env a.rmax (shift_index ~index b.rmin)
  && Compare.monotonicity ?budget env i b.rmin = Compare.Nondecreasing)
  || (* decreasing variant: min a(i) > max b(i+1), max b nonincreasing *)
  (Compare.prove_gt ?budget env a.rmin (shift_index ~index b.rmax)
  && Compare.monotonicity ?budget env i b.rmax = Compare.Nonincreasing)

(* prove the two accesses can never touch the same element at all
   (distinct or equal iterations): whole-range disjointness *)
let globally_disjoint ?budget env ~index (a : ranged) (b : ranged) : bool =
  let over = [ Atom.var index ] in
  let amax_all = Compare.eliminate ?budget env `Max ~over a.rmax in
  let bmin_all = Compare.eliminate ?budget env `Min ~over b.rmin in
  let amin_all = Compare.eliminate ?budget env `Min ~over a.rmin in
  let bmax_all = Compare.eliminate ?budget env `Max ~over b.rmax in
  match (amax_all, bmin_all, amin_all, bmax_all) with
  | Ok amax, Ok bmin, _, _ when Compare.prove_lt ?budget env amax bmin -> true
  | _, _, Ok amin, Ok bmax when Compare.prove_gt ?budget env amin bmax -> true
  | _ -> false

(** Test one dimension of an access pair for cross-iteration
    disjointness with respect to loop [index]; [inner] are the atoms to
    collapse (indices of loops treated as inner in the permuted order).

    [env] must already contain the bounds facts of every loop in scope
    (see {!Analysis.Loops.nest_env}); it is sanitized here. *)
let test_dimension ?budget env ~(index : string) ~(inner : Atom.t list)
    (f : Poly.t) (g : Poly.t) : pair_verdict =
  let env = sanitize_env env ~index ~keep:inner in
  match (collapse ?budget env ~inner f, collapse ?budget env ~inner g) with
  | Some rf, Some rg ->
    if
      opaque_captures index rf.rmin || opaque_captures index rf.rmax
      || opaque_captures index rg.rmin || opaque_captures index rg.rmax
    then Overlap_possible
    else if globally_disjoint ?budget env ~index rf rg then Disjoint
    else if
      (* both temporal directions must be covered *)
      disjoint_forward ?budget env ~index rf rg
      && disjoint_forward ?budget env ~index rg rf
    then Disjoint
    else Overlap_possible
  | _ -> Overlap_possible

(** Full access-pair test: the pair is independent across iterations of
    [index] if some dimension proves disjoint. *)
let test_pair ?budget env ~index ~inner (f : Poly.t list) (g : Poly.t list) :
    pair_verdict =
  if List.length f <> List.length g then Overlap_possible
  else if
    List.exists2
      (fun pf pg -> test_dimension ?budget env ~index ~inner pf pg = Disjoint)
      f g
  then Disjoint
  else Overlap_possible
