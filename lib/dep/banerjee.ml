(** Banerjee's inequalities with direction vectors.

    For a direction vector over the loop nest, bound
    [h = f(i) - g(i')] subject to the loop bounds and the per-loop
    direction constraint; a dependence with that direction is possible
    only if the bounds straddle zero.  Requires affine subscripts with
    constant coefficients and constant loop bounds (paper §3.3: exactly
    the regime where "current compilers" operate; the range test exists
    for everything else).

    Per-loop min/max contributions are computed exactly by evaluating
    [A*x - B*y] at the vertices of the feasible lattice polytope for the
    direction, rather than by the textbook positive/negative-part
    formulas — equivalent results, no formula transcription risk. *)

type direction = Lt | Eq | Gt | Star

type verdict = Independent | Maybe_dependent

let pp_direction ppf d =
  Fmt.string ppf (match d with Lt -> "<" | Eq -> "=" | Gt -> ">" | Star -> "*")

(* vertices of {(x,y) | 0 <= x,y <= d, constraint}; empty if infeasible *)
let vertices (dir : direction) (d : int) : (int * int) list =
  match dir with
  | Star -> if d < 0 then [] else [ (0, 0); (0, d); (d, 0); (d, d) ]
  | Eq -> if d < 0 then [] else [ (0, 0); (d, d) ]
  | Lt -> if d < 1 then [] else [ (0, 1); (0, d); (d - 1, d) ]
  | Gt -> if d < 1 then [] else [ (1, 0); (d, 0); (d, d - 1) ]

(** Bound one loop's contribution [A*i - B*i'] with [i, i' in [lo,hi]]
    and the direction constraint; [None] if the direction is infeasible
    for these bounds. *)
let loop_contrib ~a ~b ~lo ~hi (dir : direction) : (int * int) option =
  let d = hi - lo in
  match vertices dir d with
  | [] -> None
  | vs ->
    let base = (a - b) * lo in
    let values = List.map (fun (x, y) -> base + (a * x) - (b * y)) vs in
    Some (List.fold_left min max_int values, List.fold_left max min_int values)

(** [test ~loops ~dirs f g]: is a dependence between accesses with
    subscripts [f] (source) and [g] (sink) possible with direction
    vector [dirs] (one entry per loop of [loops], outermost first)?
    Falls back to [Maybe_dependent] whenever the affine/constant-bounds
    requirements fail. *)
let test ?(budget = Util.Budget.unlimited ())
    ~(loops : Analysis.Loops.loop list) ~(dirs : direction list)
    (f : Symbolic.Poly.t list) (g : Symbolic.Poly.t list) : verdict =
  let indices =
    List.map
      (fun (l : Analysis.Loops.loop) ->
        match l.index with Symbolic.Atom.Avar v -> v | _ -> "?")
      loops
  in
  if List.length f <> List.length g then Maybe_dependent
  else if
    (* each dimension costs one budget step per loop of the nest;
       an exhausted budget degrades to "dependence possible" (safe) *)
    not (Util.Budget.spend budget (List.length f * max 1 (List.length loops)))
  then Maybe_dependent
  else
    let dim_independent (pf, pg) =
      match (Linear.of_poly indices pf, Linear.of_poly indices pg) with
      | Some af, Some ag -> (
        let exception Fail in
        try
          let lo_hi =
            List.map2
              (fun (l : Analysis.Loops.loop) dir ->
                match Linear.const_bounds l with
                | Some (lo, hi) ->
                  let name =
                    match l.index with Symbolic.Atom.Avar v -> v | _ -> "?"
                  in
                  let a = Linear.coeff af name and b = Linear.coeff ag name in
                  (match loop_contrib ~a ~b ~lo ~hi dir with
                  | Some mm -> mm
                  | None -> raise_notrace Exit)
                | None -> raise Fail)
              loops dirs
          in
          let lb = List.fold_left (fun acc (mn, _) -> acc + mn) (af.const - ag.const) lo_hi in
          let ub = List.fold_left (fun acc (_, mx) -> acc + mx) (af.const - ag.const) lo_hi in
          (* dependence needs f(i) - g(i') = 0 *)
          lb > 0 || ub < 0
        with
        | Fail -> false
        | Exit -> true (* direction infeasible: no dependence *))
      | _ -> false
    in
    if List.exists dim_independent (List.combine f g) then Independent
    else Maybe_dependent

(** Does loop number [k] (0-based, outermost first) carry a dependence
    between [f] and [g]?  Tests the direction vectors with [=] outside
    position [k], [<] (resp. [>]) at [k] and [*] inside; the loop is
    free of carried dependences for this pair if both are
    [Independent]. *)
let carries ?budget ~(loops : Analysis.Loops.loop list) ~k f g : verdict =
  let n = List.length loops in
  let dirs_with at =
    List.init n (fun i -> if i < k then Eq else if i = k then at else Star)
  in
  match
    ( test ?budget ~loops ~dirs:(dirs_with Lt) f g,
      test ?budget ~loops ~dirs:(dirs_with Gt) f g )
  with
  | Independent, Independent -> Independent
  | _ -> Maybe_dependent
