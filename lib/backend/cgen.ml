(** C backend: lower the restructured Fortran to portable C99 with
    OpenMP pragmas derived from the compiler's verdicts.

    The translation mirrors the interpreter's semantics construct by
    construct so the native binary's stdout can be compared against the
    interpreter oracle:
    - INTEGER is [int], REAL/DOUBLE PRECISION is [double], LOGICAL is
      [int]; integer division and double→int conversion truncate toward
      zero in both worlds;
    - DO trip counts use the interpreter's formula
      [max 0 ((limit - init + step) / step)], and the index variable is
      left at [init + trips*step] after a normal exit;
    - exponentiation reproduces {!Machine.Value.pow} exactly (integer
      power by repeated multiplication, real**int by iterated
      multiplication) via emitted helpers;
    - arrays are flattened column-major like {!Machine.Storage};
      locals are zeroed at procedure entry, COMMON members are
      zero-initialized globals that persist across calls;
    - arguments pass by reference: scalar dummies become [T *],
      expression actuals become writable compound-literal temporaries,
      exactly the copy-in temporaries the interpreter allocates.

    Proven-DOALL loops become [#pragma omp parallel for] with
    private / lastprivate / reduction sets from {!Clauses} — the same
    sets the domain-based executor privatizes at run time.  A loop
    falls back to serial emission (with the verdict kept as a comment)
    when OpenMP cannot express the region soundly in C: speculative
    (LRPD) verdicts, privatized or reduced {e dummy} arguments (C would
    privatize the pointer, not the pointee), and array reductions.

    Known, deliberate semantic gaps from the interpreter (documented
    rather than papered over): [.AND.]/[.OR.] short-circuit in C while
    the interpreter evaluates both operands (observable only through
    side-effecting operands, which the suite has none of), and [GOTO]
    resolves labels function-wide while the interpreter searches
    enclosing blocks outward (equivalent for backward/outward jumps;
    the frontend rejects inward jumps at runtime anyway). *)

open Fir
open Ast

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

(* ------------------------------------------------------------------ *)
(* Static expression typing (mirrors Value's promotion rules)          *)

type ct = CInt | CDouble | CBool | CStr

let ct_of_base = function
  | Integer -> CInt
  | Logical -> CBool
  | Character -> CStr
  | Real | Double_precision | Complex -> CDouble

let ct_name = function
  | CInt -> "int"
  | CBool -> "int"
  | CDouble -> "double"
  | CStr -> "const char *"

(* ------------------------------------------------------------------ *)
(* Per-unit emission context                                           *)

type ctx = {
  prog : Program.t;
  u : Punit.t;
  params : (string * expr) list;  (** transitively resolved PARAMETERs *)
  mutable gensym : int;           (** fresh suffix for loop temporaries *)
  buf : Buffer.t;
}

let fresh ctx = ctx.gensym <- ctx.gensym + 1; ctx.gensym

let find_sym ctx name = Symtab.find_opt ctx.u.pu_symtab name

let base_type_of ctx name =
  match find_sym ctx name with
  | Some s -> s.sym_type
  | None -> Symtab.implicit_type name

let dims_of ctx name =
  match find_sym ctx name with Some s -> s.sym_dims | None -> []

let is_dummy ctx name = List.mem name ctx.u.pu_args
let is_param ctx name = List.mem_assoc name ctx.params

let common_of ctx name =
  match find_sym ctx name with Some s -> s.sym_common | None -> None

(* the function-result variable needs a name distinct from the C
   function itself *)
let is_result ctx name =
  Punit.is_function ctx.u && String.equal name ctx.u.pu_name

(** C name of a Fortran symbol: COMMON members become globals shared by
    every unit, the function result gets a RET_ prefix, everything else
    keeps its (upper-case) Fortran name — which cannot collide with C's
    lower-case keywords or our lower-case helpers. *)
let c_name ctx name =
  match common_of ctx name with
  | Some blk -> Fmt.str "C_%s_%s" blk name
  | None -> if is_result ctx name then "RET_" ^ name else name

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let resolve_param ctx name = List.assoc name ctx.params

let rec ct_of ctx (e : expr) : ct =
  match e with
  | Int_lit _ -> CInt
  | Real_lit _ -> CDouble
  | Logical_lit _ -> CBool
  | Char_lit _ -> CStr
  | Wildcard n -> unsupported "wildcard ?%d in emitted program" n
  | Var v | Ref (v, _) -> ct_of_base (base_type_of ctx v)
  | Unary (Neg, a) -> ct_of ctx a
  | Unary (Not, _) -> CBool
  | Binary ((Add | Sub | Mul | Div | Pow), a, b) -> (
    match (ct_of ctx a, ct_of ctx b) with
    | CInt, CInt -> CInt
    | _ -> CDouble)
  | Binary ((And | Or | Eq | Ne | Lt | Le | Gt | Ge), _, _) -> CBool
  | Fun_call (f, args) -> ct_of_call ctx f args

and ct_of_call ctx f args =
  let arg0 () = match args with a :: _ -> ct_of ctx a | [] -> CInt in
  let fold_args () =
    if List.for_all (fun a -> ct_of ctx a = CInt) args then CInt else CDouble
  in
  match f with
  | "ABS" | "SIGN" -> arg0 ()
  | "IABS" | "ISIGN" -> CInt
  | "DABS" | "DSIGN" -> CDouble
  | "MOD" -> fold_args ()
  | "AMOD" | "DMOD" -> CDouble
  | "MAX" | "MIN" -> fold_args ()
  | "MAX0" | "MIN0" -> CInt
  | "AMAX1" | "DMAX1" | "AMIN1" | "DMIN1" -> CDouble
  | "SQRT" | "DSQRT" | "SIN" | "DSIN" | "COS" | "DCOS" | "TAN" | "DTAN"
  | "ATAN" | "DATAN" | "EXP" | "DEXP" | "LOG" | "ALOG" | "DLOG"
  | "REAL" | "FLOAT" | "DBLE" | "SNGL" ->
    CDouble
  | "INT" | "IFIX" | "IDINT" | "NINT" | "IDNINT" -> CInt
  | _ -> (
    match Program.find_unit ctx.prog f with
    | Some u -> (
      match u.pu_kind with
      | Function typ -> ct_of_base typ
      | _ -> unsupported "call to non-function %s in expression" f)
    | None -> unsupported "unknown function %s" f)

(** A double literal that round-trips: shortest of %.1f / %.9g / %.17g
    that parses back to the same double, always spelled as a double. *)
let c_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Fmt.str "%.1f" x
  else
    let s = Fmt.str "%.9g" x in
    if float_of_string s = x then s else Fmt.str "%.17g" x

let rec cexpr ctx (e : expr) : string =
  match e with
  | Int_lit n -> if n < 0 then Fmt.str "(%d)" n else string_of_int n
  | Real_lit x -> c_float x
  | Logical_lit b -> if b then "1" else "0"
  | Char_lit s -> Fmt.str "%S" s
  | Wildcard n -> unsupported "wildcard ?%d in emitted program" n
  | Var v ->
    if is_param ctx v then cexpr ctx (resolve_param ctx v)
    else if dims_of ctx v <> [] then
      unsupported "array %s used as scalar" v
    else if is_dummy ctx v then Fmt.str "(*%s)" v
    else c_name ctx v
  | Ref (v, subs) -> element ctx v subs
  | Unary (Neg, a) -> Fmt.str "(-%s)" (cexpr ctx a)
  | Unary (Not, a) -> Fmt.str "(!%s)" (cexpr ctx a)
  | Binary (Pow, a, b) -> (
    match (ct_of ctx a, ct_of ctx b) with
    | CInt, CInt -> Fmt.str "ipow_ii(%s, %s)" (cexpr ctx a) (cexpr ctx b)
    | _, CInt -> Fmt.str "dpow_i(%s, %s)" (cexpr ctx a) (cexpr ctx b)
    | _ -> Fmt.str "pow(%s, %s)" (cexpr ctx a) (cexpr ctx b))
  | Binary (op, a, b) ->
    let sym =
      match op with
      | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
      | And -> "&&" | Or -> "||"
      | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
      | Pow -> assert false
    in
    Fmt.str "(%s %s %s)" (cexpr ctx a) sym (cexpr ctx b)
  | Fun_call (f, args) -> ccall ctx f args

(** Column-major element lvalue [NAME[(s1-lo1) + ext1*((s2-lo2) + ...)]],
    the layout of {!Machine.Storage.linear_index}. *)
and element ctx v subs =
  let dims = dims_of ctx v in
  if dims = [] then unsupported "%s subscripted but declared scalar" v;
  if List.length dims <> List.length subs then
    unsupported "%s: subscript count mismatch" v;
  let sub_str (lo, _) s =
    match Expr.int_val (Expr.simplify lo) with
    | Some 0 -> Fmt.str "(int)(%s)" (cexpr ctx s)
    | _ -> Fmt.str "((int)(%s) - %s)" (cexpr ctx s) (cint ctx lo)
  in
  let exts =
    List.map
      (fun (lo, hi) -> Fmt.str "(%s - %s + 1)" (cint ctx hi) (cint ctx lo))
      dims
  in
  (* fold from the last dimension inward: last extent never needed *)
  let rec build dims exts subs =
    match (dims, exts, subs) with
    | [ d ], _, [ s ] -> sub_str d s
    | d :: dtl, ext :: etl, s :: stl ->
      Fmt.str "%s + %s * (%s)" (sub_str d s) ext (build dtl etl stl)
    | _ -> assert false
  in
  Fmt.str "%s[%s]" (c_name ctx v) (build dims exts subs)

(* integer-context rendering of dimension/bound expressions *)
and cint ctx e =
  match Expr.int_val (Expr.simplify (Expr.subst ctx.params e)) with
  | Some n -> if n < 0 then Fmt.str "(%d)" n else string_of_int n
  | None -> Fmt.str "(int)(%s)" (cexpr ctx e)

and ccall ctx f args =
  let one () =
    match args with
    | [ a ] -> cexpr ctx a
    | _ -> unsupported "%s expects one argument" f
  in
  let two () =
    match args with
    | [ a; b ] -> (cexpr ctx a, cexpr ctx b)
    | _ -> unsupported "%s expects two arguments" f
  in
  let fold2 fn =
    match List.map (cexpr ctx) args with
    | a :: rest -> List.fold_left (fun acc b -> Fmt.str "%s(%s, %s)" fn acc b) a rest
    | [] -> unsupported "%s with no arguments" f
  in
  match f with
  | "ABS" | "IABS" | "DABS" ->
    if ct_of_call ctx f args = CInt then Fmt.str "abs(%s)" (one ())
    else Fmt.str "fabs(%s)" (one ())
  | "MOD" | "AMOD" | "DMOD" ->
    let a, b = two () in
    if ct_of_call ctx f args = CInt then Fmt.str "(%s %% %s)" a b
    else Fmt.str "fmod(%s, %s)" a b
  | "MAX" | "MAX0" | "AMAX1" | "DMAX1" ->
    fold2 (if ct_of_call ctx f args = CInt then "imax_" else "dmax_")
  | "MIN" | "MIN0" | "AMIN1" | "DMIN1" ->
    fold2 (if ct_of_call ctx f args = CInt then "imin_" else "dmin_")
  | "SQRT" | "DSQRT" -> Fmt.str "sqrt(%s)" (one ())
  | "SIN" | "DSIN" -> Fmt.str "sin(%s)" (one ())
  | "COS" | "DCOS" -> Fmt.str "cos(%s)" (one ())
  | "TAN" | "DTAN" -> Fmt.str "tan(%s)" (one ())
  | "ATAN" | "DATAN" -> Fmt.str "atan(%s)" (one ())
  | "EXP" | "DEXP" -> Fmt.str "exp(%s)" (one ())
  | "LOG" | "ALOG" | "DLOG" -> Fmt.str "log(%s)" (one ())
  | "INT" | "IFIX" | "IDINT" -> Fmt.str "(int)(%s)" (one ())
  | "NINT" | "IDNINT" -> Fmt.str "(int)round(%s)" (one ())
  | "REAL" | "FLOAT" | "DBLE" | "SNGL" -> Fmt.str "(double)(%s)" (one ())
  | "SIGN" | "ISIGN" | "DSIGN" ->
    let a, b = two () in
    if ct_of_call ctx f args = CInt then Fmt.str "isign_(%s, %s)" a b
    else Fmt.str "dsign_(%s, %s)" a b
  | _ -> (
    match Program.find_unit ctx.prog f with
    | Some callee when Punit.is_function callee ->
      Fmt.str "%s(%s)" f (String.concat ", " (actual_args ctx callee args))
    | _ -> unsupported "unknown function %s" f)

(** By-reference actuals, mirroring the interpreter's binding rules:
    arrays pass their base, array elements their address, scalar
    variables their cell, and expressions a writable copy-in temporary
    (a compound literal) typed like the callee's dummy. *)
and actual_args ctx (callee : Punit.t) actuals =
  if List.length actuals <> List.length callee.pu_args then
    unsupported "%s called with %d args, expects %d" callee.pu_name
      (List.length actuals) (List.length callee.pu_args);
  List.map2
    (fun formal actual ->
      let fsym = Symtab.find_opt callee.pu_symtab formal in
      let ftype =
        match fsym with
        | Some s -> ct_of_base s.sym_type
        | None -> ct_of_base (Symtab.implicit_type formal)
      in
      match actual with
      | Var v when is_param ctx v ->
        Fmt.str "&(%s){%s}" (ct_name ftype) (cexpr ctx (resolve_param ctx v))
      | Var v when dims_of ctx v <> [] || is_dummy ctx v ->
        (* array base, or pointer pass-through of our own dummy *)
        c_name ctx v
      | Var v -> Fmt.str "&%s" (c_name ctx v)
      | Ref (v, subs) -> Fmt.str "&%s" (element ctx v subs)
      | e ->
        (match fsym with
        | Some s when s.sym_dims <> [] ->
          unsupported "array formal %s bound to expression" formal
        | _ -> ());
        Fmt.str "&(%s){%s}" (ct_name ftype) (cexpr ctx e))
    callee.pu_args actuals

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let line ctx indent fmt =
  Fmt.kstr
    (fun s ->
      Buffer.add_string ctx.buf (String.make indent ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let raw ctx fmt =
  Fmt.kstr
    (fun s ->
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

(** Can this proven-DOALL be expressed as an OpenMP C worksharing loop?
    Dummy arguments in the private/reduction sets would privatize the
    pointer instead of the data, and C has no whole-array reduction for
    our flattened arrays — those loops stay serial (still correct, the
    pragma is an optimization). *)
let c_parallel_ok ctx (c : Clauses.t) (d : do_loop) =
  let vars = Clauses.private_union c @ List.map fst c.c_reductions in
  (not (is_dummy ctx d.index))
  && List.for_all (fun v -> not (is_dummy ctx v)) vars
  && List.for_all (fun (v, _) -> dims_of ctx v = []) c.c_reductions

let omp_pragma ctx (c : Clauses.t) (d : do_loop) =
  let cn v = c_name ctx v in
  let privates = d.index :: c.c_private in
  let clause kw = function
    | [] -> ""
    | vs -> Fmt.str " %s(%s)" kw (String.concat ", " (List.map cn vs))
  in
  let red_name = function
    | Rsum -> "+" | Rprod -> "*" | Rmax -> "max" | Rmin -> "min"
  in
  let reds =
    List.map
      (fun (v, op) -> Fmt.str " reduction(%s:%s)" (red_name op) (cn v))
      c.c_reductions
    |> String.concat ""
  in
  Fmt.str "#pragma omp parallel for%s%s%s"
    (clause "private" privates)
    (clause "lastprivate" c.c_lastprivate)
    reds

let rec cstmt ctx indent (s : stmt) =
  (match s.label with Some l -> raw ctx "L%d: ;" l | None -> ());
  match s.kind with
  | Assign (lhs, rhs) ->
    let target =
      match lhs with
      | Var v ->
        if is_dummy ctx v then Fmt.str "(*%s)" v else c_name ctx v
      | Ref (v, subs) -> element ctx v subs
      | e -> unsupported "invalid assignment target %s" (Expr.to_string e)
    in
    line ctx indent "%s = %s;" target (cexpr ctx rhs)
  | If (c, t, []) ->
    line ctx indent "if (%s) {" (cexpr ctx c);
    List.iter (cstmt ctx (indent + 2)) t;
    line ctx indent "}"
  | If (c, t, e) ->
    line ctx indent "if (%s) {" (cexpr ctx c);
    List.iter (cstmt ctx (indent + 2)) t;
    line ctx indent "} else {";
    List.iter (cstmt ctx (indent + 2)) e;
    line ctx indent "}"
  | Do d -> cdo ctx indent d
  | While (c, b) ->
    line ctx indent "while (%s) {" (cexpr ctx c);
    List.iter (cstmt ctx (indent + 2)) b;
    line ctx indent "}"
  | Call (name, args) -> (
    match Program.find_unit ctx.prog name with
    | Some callee ->
      line ctx indent "%s(%s);" name
        (String.concat ", " (actual_args ctx callee args))
    | None -> unsupported "unknown subroutine %s" name)
  | Goto l -> line ctx indent "goto L%d;" l
  | Continue -> ()
  | Return -> (
    match ctx.u.pu_kind with
    | Main -> line ctx indent "return 0;"
    | Subroutine -> line ctx indent "return;"
    | Function _ -> line ctx indent "return RET_%s;" ctx.u.pu_name)
  | Stop -> line ctx indent "exit(0);"
  | Print args ->
    let part e =
      match (e, ct_of ctx e) with
      | Char_lit s, _ -> ("%s", Fmt.str "%S" s)
      | _, CInt -> ("%d", cexpr ctx e)
      | _, CBool -> ("%s", Fmt.str "(%s) ? \"T\" : \"F\"" (cexpr ctx e))
      | _, CStr -> ("%s", cexpr ctx e)
      | _, CDouble -> ("%g", cexpr ctx e)
    in
    let parts = List.map part args in
    line ctx indent "printf(\"%s\\n\"%s);"
      (String.concat " " (List.map fst parts))
      (String.concat ""
         (List.map (fun (_, a) -> Fmt.str ", %s" a) parts))

(** DO lowering with the interpreter's exact index protocol: trip count
    [max 0 ((limit - init + step)/step)] computed up front, index set
    from the normalized counter each iteration, index left at
    [init + trips*step] after a normal exit (a GOTO/RETURN out of the
    loop skips that final write, as in the interpreter). *)
and cdo ctx indent (d : do_loop) =
  let n = fresh ctx in
  let idx =
    if is_dummy ctx d.index then Fmt.str "(*%s)" d.index else c_name ctx d.index
  in
  line ctx indent "{";
  let ind = indent + 2 in
  line ctx ind "const int init_%d = (int)(%s);" n (cexpr ctx d.init);
  line ctx ind "const int lim_%d = (int)(%s);" n (cexpr ctx d.limit);
  (match d.step with
  | None -> line ctx ind "const int step_%d = 1;" n
  | Some e -> line ctx ind "const int step_%d = (int)(%s);" n (cexpr ctx e));
  line ctx ind "int n_%d = (lim_%d - init_%d + step_%d) / step_%d;" n n n n n;
  line ctx ind "if (n_%d < 0) n_%d = 0;" n n;
  let parallel =
    d.info.par && not d.info.speculative
    &&
    let c = Clauses.of_loop ctx.u.pu_symtab d in
    c_parallel_ok ctx c d
  in
  if parallel then begin
    let c = Clauses.of_loop ctx.u.pu_symtab d in
    line ctx ind "if (n_%d > 0) {" n;
    raw ctx "%s" (omp_pragma ctx c d);
    line ctx (ind + 2) "for (int k_%d = 0; k_%d < n_%d; k_%d++) {" n n n n;
    line ctx (ind + 4) "%s = init_%d + k_%d * step_%d;" idx n n n;
    List.iter (cstmt ctx (ind + 4)) d.body;
    line ctx (ind + 2) "}";
    line ctx ind "}"
  end
  else begin
    if d.info.par then
      line ctx ind "/* polaris: DOALL%s (serial in C: %s) */"
        (if d.info.speculative then " (speculative, LRPD)" else "")
        (if d.info.speculative then "needs the run-time test"
         else "clause set not expressible in OpenMP C");
    line ctx ind "for (int k_%d = 0; k_%d < n_%d; k_%d++) {" n n n n;
    line ctx (ind + 2) "%s = init_%d + k_%d * step_%d;" idx n n n;
    List.iter (cstmt ctx (ind + 2)) d.body;
    line ctx ind "}"
  end;
  line ctx ind "%s = init_%d + n_%d * step_%d;" idx n n n;
  line ctx indent "}"

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)

(** Constant element count of array symbol [s] with PARAMETERs resolved;
    local and COMMON arrays must size statically. *)
let const_extent ctx (s : symbol) =
  let dim (lo, hi) =
    let v e = Expr.int_val (Expr.simplify (Expr.subst ctx.params e)) in
    match (v lo, v hi) with
    | Some l, Some h -> max 0 (h - l + 1)
    | _ ->
      unsupported "%s: array %s has a non-constant bound" ctx.u.pu_name
        s.sym_name
  in
  List.fold_left (fun acc d -> acc * dim d) 1 s.sym_dims

let local_decls ctx =
  (* union the declared symbols with the names the body actually uses:
     implicitly typed scalars only reach the symbol table on first
     lookup, and C has no implicit declaration to fall back on *)
  let syms = Symtab.symbols ctx.u.pu_symtab in
  let known = List.map (fun (s : symbol) -> s.sym_name) syms in
  let extra =
    Punit.used_scalars ctx.u
    |> List.filter (fun v -> not (List.mem v known))
    |> List.map (fun v -> Symtab.mk_symbol v)
  in
  let syms =
    List.sort
      (fun (a : symbol) b -> String.compare a.sym_name b.sym_name)
      (syms @ extra)
  in
  List.iter
    (fun (s : symbol) ->
      if
        s.sym_param = None && s.sym_common = None
        && (not (is_dummy ctx s.sym_name))
        && not (is_result ctx s.sym_name)
      then
        let t = ct_name (ct_of_base s.sym_type) in
        if s.sym_dims = [] then line ctx 2 "%s %s = 0;" t s.sym_name
        else begin
          line ctx 2 "%s %s[%d];" t s.sym_name (const_extent ctx s);
          line ctx 2 "memset(%s, 0, sizeof %s);" s.sym_name s.sym_name
        end)
    syms

let signature ctx =
  let ret =
    match ctx.u.pu_kind with
    | Main -> "int"
    | Subroutine -> "static void"
    | Function typ -> "static " ^ ct_name (ct_of_base typ)
  in
  let formal name =
    let t =
      match find_sym ctx name with
      | Some s -> ct_name (ct_of_base s.sym_type)
      | None -> ct_name (ct_of_base (Symtab.implicit_type name))
    in
    Fmt.str "%s *%s" t name
  in
  if ctx.u.pu_kind = Main then "int main(void)"
  else
    Fmt.str "%s %s(%s)" ret ctx.u.pu_name
      (match ctx.u.pu_args with
      | [] -> "void"
      | args -> String.concat ", " (List.map formal args))

let emit_unit ctx =
  raw ctx "%s {" (signature ctx);
  local_decls ctx;
  (match ctx.u.pu_kind with
  | Function typ -> line ctx 2 "%s RET_%s = 0;" (ct_name (ct_of_base typ)) ctx.u.pu_name
  | _ -> ());
  List.iter (cstmt ctx 2) ctx.u.pu_body;
  (match ctx.u.pu_kind with
  | Main -> line ctx 2 "return 0;"
  | Subroutine -> ()
  | Function _ -> line ctx 2 "return RET_%s;" ctx.u.pu_name);
  raw ctx "}"

(* ------------------------------------------------------------------ *)
(* Whole-program assembly                                              *)

let prelude =
  {|#include <math.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

/* exponentiation helpers mirroring the interpreter's Value.pow */
static int ipow_ii(int b, int e) {
  if (e >= 0) { int r = 1; while (e-- > 0) r *= b; return r; }
  if (b == 1) return 1;
  if (b == -1) return (e % 2 == 0) ? 1 : -1;
  return 0;
}
static double dpow_i(double b, int e) {
  if (e >= 0) { double r = 1.0; while (e-- > 0) r *= b; return r; }
  return pow(b, (double)e);
}
static int imax_(int a, int b) { return a >= b ? a : b; }
static int imin_(int a, int b) { return a <= b ? a : b; }
static double dmax_(double a, double b) { return a >= b ? a : b; }
static double dmin_(double a, double b) { return a <= b ? a : b; }
static double dsign_(double a, double b) {
  double m = fabs(a);
  return b < 0.0 ? -m : m;
}
static int isign_(int a, int b) { return (int)dsign_((double)a, (double)b); }
|}

let mk_ctx prog (u : Punit.t) buf =
  { prog; u; params = Punit.parameter_bindings u; gensym = 0; buf }

(** COMMON members, deduplicated program-wide; the first declaring unit
    fixes type and shape (the suite declares blocks consistently). *)
let emit_commons prog buf =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (u : Punit.t) ->
      let ctx = mk_ctx prog u buf in
      List.iter
        (fun (s : symbol) ->
          match s.sym_common with
          | Some blk ->
            let key = blk ^ "/" ^ s.sym_name in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              let t = ct_name (ct_of_base s.sym_type) in
              let name = Fmt.str "C_%s_%s" blk s.sym_name in
              if s.sym_dims = [] then
                Buffer.add_string buf (Fmt.str "static %s %s;\n" t name)
              else
                Buffer.add_string buf
                  (Fmt.str "static %s %s[%d];\n" t name (const_extent ctx s))
            end
          | None -> ())
        (Symtab.symbols u.pu_symtab))
    (Program.units prog)

let emit_prototypes prog buf =
  List.iter
    (fun (u : Punit.t) ->
      if u.pu_kind <> Main then begin
        let ctx = mk_ctx prog u buf in
        Buffer.add_string buf (signature ctx);
        Buffer.add_string buf ";\n"
      end)
    (Program.units prog)

(** Render [p] as one self-contained C translation unit.
    @raise Unsupported on constructs outside the translatable subset. *)
let emit (p : Program.t) : string =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf prelude;
  Buffer.add_char buf '\n';
  emit_commons p buf;
  emit_prototypes p buf;
  List.iter
    (fun (u : Punit.t) ->
      Buffer.add_char buf '\n';
      emit_unit (mk_ctx p u buf))
    (Program.units p);
  Buffer.contents buf
