(** Work-sharing clause sets for an annotated DOALL loop.

    The clause computation is deliberately the same one the real
    executor uses at run time ({!Machine.Parexec.doall_private_set}):
    what the OpenMP backends print as [PRIVATE(...)] is exactly the set
    of scalars the interpreter-backed executor privatizes per domain
    when it runs the loop on OCaml domains.  A test pins this equality
    against {!Machine.Parexec} region logs, so the emitted annotations
    can never drift from the semantics the oracle validated. *)

open Fir
open Ast

type t = {
  c_private : string list;      (** privatized, no copy-out (sorted) *)
  c_lastprivate : string list;  (** privatized with last-value copy-out *)
  c_reductions : (string * reduction_op) list;
}

(** Clauses for loop [d] in a unit with symbol table [symtab].
    [c_private] and [c_lastprivate] are disjoint (OpenMP's LASTPRIVATE
    implies privatization), and their union is the executor's private
    set. *)
let of_loop (symtab : Symtab.t) (d : do_loop) : t =
  let privates =
    Machine.Parexec.doall_private_set ~is_array:(Symtab.is_array symtab) d
  in
  let lastprivates =
    List.filter (fun v -> List.mem v privates) d.info.lastprivates
  in
  { c_private = List.filter (fun v -> not (List.mem v lastprivates)) privates;
    c_lastprivate = lastprivates;
    c_reductions =
      List.map (fun (r : reduction) -> (r.red_var, r.red_op)) d.info.reductions }

(** The executor's full private set ([c_private] ∪ [c_lastprivate]). *)
let private_union (c : t) : string list =
  List.sort_uniq String.compare (c.c_private @ c.c_lastprivate)

let op_name = function
  | Rsum -> "+" | Rprod -> "*" | Rmax -> "MAX" | Rmin -> "MIN"
