(** Backend registry: every emission target is a first-class value.

    The compiler's output stage is a lookup in this table — CLI, daemon
    and bench all resolve [--emit-backend] / [POLARIS_BACKEND] here, so
    adding a backend is one entry, and the validate/bench matrices
    enumerate [all] instead of hard-coding names. *)

type family = Fortran | C

type t = {
  b_name : string;
  b_doc : string;
  b_family : family;
  b_reparses : bool;
      (** output is valid input for our own frontend (round-trip lane) *)
  b_ext : string;  (** file extension, without the dot *)
  b_emit : Fir.Program.t -> string;
}

let f77 =
  { b_name = "f77";
    b_doc = "Fortran 77 with CPOLARIS$ comment directives (the default; \
             byte-stable, re-parses with our frontend)";
    b_family = Fortran;
    b_reparses = true;
    b_ext = "f";
    b_emit = Frontend.Unparse.program_to_string ?mode:None }

let f77_omp =
  { b_name = "f77-omp";
    b_doc = "Fortran 77 with !$OMP PARALLEL DO directives carrying \
             PRIVATE/LASTPRIVATE/REDUCTION clauses from the compiler's \
             verdicts (compile with -fopenmp -ffixed-line-length-none \
             -fdefault-real-8)";
    b_family = Fortran;
    b_reparses = true;
    b_ext = "f";
    b_emit = F77_omp.emit }

let c =
  { b_name = "c";
    b_doc = "portable C99 with #pragma omp parallel for on proven DOALL \
             loops (compile with -fopenmp -lm)";
    b_family = C;
    b_reparses = false;
    b_ext = "c";
    b_emit = Cgen.emit }

let all = [ f77; f77_omp; c ]

let default = f77

let names = List.map (fun b -> b.b_name) all

let find name : (t, string) result =
  let name = String.lowercase_ascii (String.trim name) in
  match List.find_opt (fun b -> String.equal b.b_name name) all with
  | Some b -> Ok b
  | None ->
    Error
      (Fmt.str "unknown backend '%s' (known: %s)" name
         (String.concat ", " names))

let pp_backends ppf () =
  List.iter
    (fun b ->
      Fmt.pf ppf "%-10s %s@."
        b.b_name
        b.b_doc)
    all
