(** OpenMP Fortran backend: fixed-form F77 with [!$OMP PARALLEL DO]
    directives derived from the compiler's own verdicts.

    Each proven-DOALL loop gets a [!$OMP PARALLEL DO] with PRIVATE /
    LASTPRIVATE / REDUCTION clauses computed by {!Clauses} — the very
    sets the domain-based executor privatizes at run time, so the
    annotations a native compiler consumes are the ones the oracle
    validated.  Soundness of plain PRIVATE (no copy-in): a scalar is
    only in the executor's private set when every iteration writes it
    before reading it, so the uninitialized thread-local copy OpenMP
    provides is never read before being defined.

    Speculative (LRPD) loops have no compile-time proof — they are
    emitted serial, carrying the LRPD verdict as a [!POLARIS$] comment
    so the run-time test's existence is visible in the output.

    Declarations are emitted for {e every} symbol (a native compiler
    has no access to our symbol table).  REAL stays REAL in the text;
    the native check compiles with [-fdefault-real-8] so variables
    {e and literals} are 8-byte, matching the interpreter's
    double-precision arithmetic (a DOUBLE PRECISION display mapping
    would leave literals single-precision).  The output is still
    lexable by our own frontend ([!] starts a comment anywhere), which
    the round-trip lane in the validate matrix exercises. *)

open Fir
open Ast

(* gfortran's free/fixed-form sentinel: in fixed form, "!$OMP" starting
   in column 1 is a conditional-compilation sentinel under -fopenmp.
   Continuation directives would need "!$OMP&"; our clause lines are
   emitted unwrapped (gfortran needs -ffixed-line-length-none, which
   the native check passes). *)
let sentinel = "!$OMP "

let clause_list kw = function
  | [] -> ""
  | vs -> Fmt.str " %s(%s)" kw (String.concat "," vs)

let reduction_clauses reds =
  (* one REDUCTION per operator, grouping its variables *)
  let ops = [ Rsum; Rprod; Rmax; Rmin ] in
  List.concat_map
    (fun op ->
      match List.filter (fun (_, o) -> o = op) reds with
      | [] -> []
      | vs ->
        [ Fmt.str " REDUCTION(%s:%s)" (Clauses.op_name op)
            (String.concat "," (List.map fst vs)) ])
    ops
  |> String.concat ""

let directive symtab (d : do_loop) : string list =
  if not d.info.par then []
  else if d.info.speculative then
    (* no static proof: leave the loop serial, document the LRPD verdict *)
    [ Fmt.str "!POLARIS$ SPECULATIVE DOALL (LRPD candidate: %s)"
        d.info.par_reason ]
  else
    let c = Clauses.of_loop symtab d in
    [ Fmt.str "%sPARALLEL DO%s%s%s" sentinel
        (clause_list "PRIVATE" c.c_private)
        (clause_list "LASTPRIVATE" c.c_lastprivate)
        (reduction_clauses c.c_reductions) ]

let mode : Frontend.Unparse.mode =
  { m_directive = directive;
    m_declare_all = true;
    m_display_type = (fun t -> t) }

(** Render [p] as OpenMP-annotated fixed-form Fortran. *)
let emit (p : Program.t) : string =
  Frontend.Unparse.program_to_string ~mode p
