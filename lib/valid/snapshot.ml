(** Pass-level snapshot validation: localize a divergence to the pass
    that introduced it.

    Hooks into {!Core.Pipeline}'s observer to deep-copy the program
    after every pass, then replays the snapshots in order through the
    {!Oracle} (each against the untransformed original) and through
    {!Fir.Consistency} (the paper's p_assert discipline).  The first
    snapshot that fails names the guilty pass — the whole-pipeline
    analogue of bisecting a miscompile. *)

type stage_status =
  | Ok_validated of Oracle.report  (** consistency + oracle both passed *)
  | Skipped_unchanged    (** snapshot textually identical to the previous *)
  | Inconsistent of string         (** {!Fir.Consistency.Violation} *)
  | Diverged of Oracle.report

type stage_report = {
  stage : string;
  status : stage_status;
}

type report = {
  stages : stage_report list;
  failed_stage : string option;  (** first stage that failed, if any *)
  trace : Trace.t option;        (** flight record, when compiled here *)
}

let ok (r : report) = r.failed_stage = None

let status_failed = function
  | Ok_validated _ | Skipped_unchanged -> false
  | Inconsistent _ | Diverged _ -> true

(* ------------------------------------------------------------------ *)
(* Core: validate an ordered list of snapshots against the original    *)

let validate_snapshots ?cmp ?procs_list ?seeds ~(original : Fir.Program.t)
    (snaps : (string * Fir.Program.t) list) : stage_report list * string option
    =
  let prev_src = ref None in
  let failed = ref None in
  let stages =
    List.map
      (fun (stage, prog) ->
        let src = Frontend.Unparse.program_to_string prog in
        let status =
          if !prev_src = Some src then Skipped_unchanged
          else begin
            prev_src := Some src;
            match Fir.Consistency.check prog with
            | exception Fir.Consistency.Violation m -> Inconsistent m
            | _ ->
              let r =
                Oracle.differential ?cmp ?procs_list ?seeds ~original
                  ~transformed:prog ()
              in
              if Oracle.equivalent r then Ok_validated r else Diverged r
          end
        in
        if !failed = None && status_failed status then failed := Some stage;
        { stage; status })
      snaps
  in
  (stages, !failed)

(** Validate an explicit stage list: each stage mutates the working copy
    in place, and every intermediate state is checked.  This is how the
    mutation smoke tests inject a deliberately broken pass and assert
    the oracle localizes it. *)
let validate_stages ?cmp ?procs_list ?seeds ~(original : Fir.Program.t)
    (stages : (string * (Fir.Program.t -> unit)) list) : report =
  let work = Fir.Program.copy original in
  let snaps =
    List.map
      (fun (name, pass) ->
        pass work;
        (name, Fir.Program.copy work))
      stages
  in
  let stages, failed_stage =
    validate_snapshots ?cmp ?procs_list ?seeds ~original snaps
  in
  { stages; failed_stage; trace = None }

(** Compile [source] under [config] with the oracle attached to every
    pass boundary and the flight recorder running.  Returns the ordinary
    pipeline result plus the validation report. *)
let validated_compile ?cmp ?procs_list ?seeds (config : Core.Config.t)
    (source : string) : Core.Pipeline.t * report =
  let original = Frontend.Parser.parse_string source in
  let recorder = Trace.create () in
  let snaps = ref [] in
  let observer pass prog =
    Trace.observe recorder pass prog;
    snaps := (pass, Fir.Program.copy prog) :: !snaps
  in
  let t = Core.Pipeline.compile ~observer config source in
  let trace = Trace.finish recorder t in
  let stages, failed_stage =
    validate_snapshots ?cmp ?procs_list ?seeds ~original (List.rev !snaps)
  in
  (t, { stages; failed_stage; trace = Some trace })

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let pp_stage ppf (s : stage_report) =
  match s.status with
  | Ok_validated r -> Fmt.pf ppf "  %-12s ok (%d checks)" s.stage r.checks
  | Skipped_unchanged -> Fmt.pf ppf "  %-12s unchanged" s.stage
  | Inconsistent m -> Fmt.pf ppf "  %-12s IR INCONSISTENT: %s" s.stage m
  | Diverged r -> Fmt.pf ppf "  %-12s %a" s.stage Oracle.pp_report r

let pp_report ppf (r : report) =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_stage) r.stages;
  match r.failed_stage with
  | None -> Fmt.pf ppf "@,validation: PASS (%d stages)" (List.length r.stages)
  | Some s -> Fmt.pf ppf "@,validation: FAIL — first divergence in pass '%s'" s

let report_json (r : report) : string =
  let open Trace.Json in
  let stage_json (s : stage_report) =
    let status, detail =
      match s.status with
      | Ok_validated rep -> ("ok", int rep.checks)
      | Skipped_unchanged -> ("unchanged", null)
      | Inconsistent m -> ("inconsistent", str m)
      | Diverged rep ->
        ( "diverged",
          arr
            (List.map
               (fun (ck : Oracle.check) ->
                 obj
                   [ ("context", str ck.context);
                     ( "divergences",
                       arr
                         (List.map
                            (fun (d : Oracle.divergence) ->
                              obj
                                [ ("at", str d.at);
                                  ("expected", str d.expected);
                                  ("got", str d.got) ])
                            ck.divergences) ) ])
               rep.failures) )
    in
    obj [ ("stage", str s.stage); ("status", str status); ("detail", detail) ]
  in
  obj
    [ ("stages", arr (List.map stage_json r.stages));
      ( "failed_stage",
        match r.failed_stage with None -> null | Some s -> str s );
      ( "trace",
        match r.trace with None -> null | Some t -> Trace.to_json t ) ]
