(** Compilation flight recorder.

    A structured record of one pipeline run: per-pass wall-clock and CPU
    time and rewrite counts, dependence-test outcome counters (range
    test vs. GCD/Banerjee proved/failed, from {!Dep.Driver}), cache
    hit/miss counters ({!Util.Cachectl}), and per-loop verdict
    provenance.  Serialized to JSON so CI can diff recorder output
    across commits and the bench can trend it. *)

open Fir

(* ------------------------------------------------------------------ *)
(* Records                                                             *)

type pass_record = {
  pass : string;
  wall_s : float;   (** monotonic wall-clock seconds spent in the pass *)
  cpu_s : float;    (** CPU seconds spent in the pass ([Sys.time]) *)
  stmts : int;      (** statement count after the pass *)
  rewritten : int;  (** statements added or changed by the pass *)
}

type loop_record = {
  lr_unit : string;
  lr_index : string;
  lr_parallel : bool;
  lr_speculative : bool;
  lr_reason : string;  (** verdict provenance (proof / failure chain) *)
}

type t = {
  tr_config : string;
  tr_total_s : float;      (** wall-clock seconds, whole run *)
  tr_total_cpu_s : float;  (** CPU seconds, whole run *)
  tr_passes : pass_record list;
  tr_dep : Dep.Driver.counters;  (** counters accumulated by this run *)
  tr_cache : (string * int * int) list;
      (** per-cache (name, hits, misses) accumulated by this run — the
          {!Util.Cachectl} counter deltas *)
  tr_loops : loop_record list;
  tr_incidents : Core.Pipeline.incident list;
      (** contained pass failures (fail-safe rollbacks) during the run *)
  tr_reuse : Core.Pipeline.pass_reuse list;
      (** per-pass analysis consumption/reuse/invalidation, from the
          analysis manager's counters via the pipeline ledger *)
}

(* ------------------------------------------------------------------ *)
(* Statement fingerprints: a shallow rendering (kind + own expressions,
   no nested bodies) so a rewrite deep in a loop body counts once       *)

let shallow_renderings (p : Program.t) : string list =
  let out = ref [] in
  List.iter
    (fun (u : Punit.t) ->
      Stmt.iter
        (fun (s : Ast.stmt) ->
          let tag =
            match s.kind with
            | Ast.Assign _ -> "assign"
            | Ast.If _ -> "if"
            | Ast.Do d -> "do " ^ d.index
            | Ast.While _ -> "while"
            | Ast.Call (n, _) -> "call " ^ n
            | Ast.Goto l -> "goto " ^ string_of_int l
            | Ast.Continue -> "continue"
            | Ast.Return -> "return"
            | Ast.Stop -> "stop"
            | Ast.Print _ -> "print"
          in
          let exprs =
            Stmt.exprs_of s |> List.map (fun (_, e) -> Expr.to_string e)
          in
          out :=
            (u.pu_name ^ ":" ^ tag ^ ":" ^ String.concat "," exprs) :: !out)
        u.pu_body)
    (Program.units p);
  !out

(* statements of [after] not present in the [before] multiset *)
let count_new before after =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun k -> Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    before;
  List.fold_left
    (fun acc k ->
      match Hashtbl.find_opt tbl k with
      | Some n when n > 0 ->
        Hashtbl.replace tbl k (n - 1);
        acc
      | _ -> acc + 1)
    0 after

(* ------------------------------------------------------------------ *)
(* Recorder: plugs into Core.Pipeline's observer                       *)

type recorder = {
  started : float;      (* wall clock (Unix.gettimeofday) *)
  started_cpu : float;  (* CPU clock (Sys.time) *)
  base_dep : Dep.Driver.counters;
  base_cache : (string * int * int) list;
  mutable last_time : float;
  mutable last_cpu : float;
  mutable prev : string list;         (* fingerprints after previous pass *)
  mutable recs : pass_record list;    (* reversed *)
}

let create () =
  let now = Unix.gettimeofday () in
  let cpu = Sys.time () in
  { started = now; started_cpu = cpu;
    base_dep = Dep.Driver.counters_snapshot ();
    base_cache = Util.Cachectl.snapshot ();
    last_time = now; last_cpu = cpu; prev = []; recs = [] }

(** The observer to pass to {!Core.Pipeline.run}. *)
let observe (r : recorder) (pass : string) (p : Program.t) =
  let now = Unix.gettimeofday () in
  let cpu = Sys.time () in
  let fingerprints = shallow_renderings p in
  let rewritten =
    match pass with "parse" -> 0 | _ -> count_new r.prev fingerprints
  in
  r.recs <-
    { pass; wall_s = now -. r.last_time; cpu_s = cpu -. r.last_cpu;
      stmts = List.length fingerprints; rewritten }
    :: r.recs;
  r.prev <- fingerprints;
  r.last_time <- now;
  r.last_cpu <- cpu

let dep_delta (base : Dep.Driver.counters) (now : Dep.Driver.counters) :
    Dep.Driver.counters =
  { Dep.Driver.range_proved = now.range_proved - base.range_proved;
    range_failed = now.range_failed - base.range_failed;
    linear_proved = now.linear_proved - base.linear_proved;
    linear_failed = now.linear_failed - base.linear_failed;
    unknown = now.unknown - base.unknown }

let finish (r : recorder) (t : Core.Pipeline.t) : t =
  let loops =
    List.map
      (fun (l : Core.Pipeline.loop_result) ->
        { lr_unit = l.unit_name; lr_index = l.report.loop_index;
          lr_parallel = l.report.parallel;
          lr_speculative = l.report.speculative;
          lr_reason = l.report.reason })
      t.loops
  in
  { tr_config = t.config.name;
    tr_total_s = Unix.gettimeofday () -. r.started;
    tr_total_cpu_s = Sys.time () -. r.started_cpu;
    tr_passes = List.rev r.recs;
    tr_dep = dep_delta r.base_dep (Dep.Driver.counters_snapshot ());
    tr_cache = Util.Cachectl.delta ~base:r.base_cache (Util.Cachectl.snapshot ());
    tr_loops = loops;
    tr_incidents = t.incidents;
    tr_reuse = t.reuse }

(** Compile [source] under [config] with the recorder attached. *)
let record_compile (config : Core.Config.t) (source : string) :
    Core.Pipeline.t * t =
  let r = create () in
  let t = Core.Pipeline.compile ~observer:(observe r) config source in
  (t, finish r t)

(* ------------------------------------------------------------------ *)
(* JSON serialization (no external dependency)                         *)

module Json = struct
  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let str s = "\"" ^ escape s ^ "\""
  let int = string_of_int
  let bool b = if b then "true" else "false"
  let float f = Printf.sprintf "%.6f" f
  let arr xs = "[" ^ String.concat "," xs ^ "]"

  let obj fields =
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields)
    ^ "}"

  let null = "null"
end

let dep_json (d : Dep.Driver.counters) =
  Json.obj
    [ ("range_proved", Json.int d.range_proved);
      ("range_failed", Json.int d.range_failed);
      ("gcd_banerjee_proved", Json.int d.linear_proved);
      ("gcd_banerjee_failed", Json.int d.linear_failed);
      ("budget_unknown", Json.int d.unknown) ]

let incident_json (i : Core.Pipeline.incident) =
  Json.obj
    [ ("pass", Json.str i.inc_pass);
      ("reason", Json.str i.inc_reason);
      ("rolled_back", Json.bool i.inc_rolled_back);
      ( "disabled",
        match i.inc_disabled with Some c -> Json.str c | None -> Json.null ) ]

let cache_json (stats : (string * int * int) list) =
  Json.arr
    (List.map
       (fun (name, hits, misses) ->
         Json.obj
           [ ("cache", Json.str name);
             ("hits", Json.int hits);
             ("misses", Json.int misses) ])
       stats)

let to_json (t : t) : string =
  Json.obj
    [ ("config", Json.str t.tr_config);
      ("total_wall_s", Json.float t.tr_total_s);
      ("total_cpu_s", Json.float t.tr_total_cpu_s);
      ( "passes",
        Json.arr
          (List.map
             (fun (p : pass_record) ->
               Json.obj
                 [ ("pass", Json.str p.pass);
                   ("wall_s", Json.float p.wall_s);
                   ("cpu_s", Json.float p.cpu_s);
                   ("stmts", Json.int p.stmts);
                   ("rewritten", Json.int p.rewritten) ])
             t.tr_passes) );
      ("dep_tests", dep_json t.tr_dep);
      ("caches", cache_json t.tr_cache);
      ( "loops",
        Json.arr
          (List.map
             (fun (l : loop_record) ->
               Json.obj
                 [ ("unit", Json.str l.lr_unit);
                   ("loop", Json.str l.lr_index);
                   ("parallel", Json.bool l.lr_parallel);
                   ("speculative", Json.bool l.lr_speculative);
                   ("reason", Json.str l.lr_reason) ])
             t.tr_loops) );
      ("incidents", Json.arr (List.map incident_json t.tr_incidents));
      ( "reuse",
        Json.arr
          (List.map
             (fun (r : Core.Pipeline.pass_reuse) ->
               Json.obj
                 [ ("pass", Json.str r.pr_pass);
                   ("consumes", Json.arr (List.map Json.str r.pr_consumes));
                   ("analyses", cache_json r.pr_cache);
                   ( "invalidated",
                     Json.arr
                       (List.map
                          (fun (name, n) ->
                            Json.obj
                              [ ("analysis", Json.str name);
                                ("entries", Json.int n) ])
                          r.pr_invalidated) ) ])
             t.tr_reuse) ) ]

(* ------------------------------------------------------------------ *)
(* The --explain-reuse table                                           *)

(** Per-pass table of analyses consumed / reused / invalidated, from
    the pipeline's reuse ledger ([polaris --explain-reuse]). *)
let pp_reuse_table ppf (reuse : Core.Pipeline.pass_reuse list) =
  Fmt.pf ppf "analysis reuse by pass:@.";
  List.iter
    (fun (r : Core.Pipeline.pass_reuse) ->
      Fmt.pf ppf "  %-12s consumes: %s@." r.pr_pass
        (if r.pr_consumes = [] then "-" else String.concat ", " r.pr_consumes);
      List.iter
        (fun (name, hits, misses) ->
          let invalidated =
            Option.value ~default:0 (List.assoc_opt name r.pr_invalidated)
          in
          Fmt.pf ppf "    %-22s %7d reused %7d computed%s@." name hits misses
            (if invalidated > 0 then
               Fmt.str " %7d invalidated" invalidated
             else ""))
        r.pr_cache;
      (* invalidations in analyses that had no lookup still matter *)
      List.iter
        (fun (name, n) ->
          if not (List.exists (fun (c, _, _) -> c = name) r.pr_cache) then
            Fmt.pf ppf "    %-22s %7s        %7s          %7d invalidated@."
              name "-" "-" n)
        r.pr_invalidated)
    reuse

let pp ppf (t : t) =
  Fmt.pf ppf "flight record [%s] %.3fs wall (%.3fs cpu)@," t.tr_config
    t.tr_total_s t.tr_total_cpu_s;
  List.iter
    (fun (p : pass_record) ->
      Fmt.pf ppf "  %-12s %8.4fs wall %8.4fs cpu  %4d stmts  %3d rewritten@,"
        p.pass p.wall_s p.cpu_s p.stmts p.rewritten)
    t.tr_passes;
  Fmt.pf ppf "  dep tests: range %d/%d proved, gcd/banerjee %d/%d proved@,"
    t.tr_dep.range_proved
    (t.tr_dep.range_proved + t.tr_dep.range_failed)
    t.tr_dep.linear_proved
    (t.tr_dep.linear_proved + t.tr_dep.linear_failed);
  List.iter
    (fun (name, hits, misses) ->
      if hits + misses > 0 then
        Fmt.pf ppf "  cache %-22s %7d hits %7d misses@," name hits misses)
    t.tr_cache;
  List.iter
    (fun i -> Fmt.pf ppf "  %a@," Core.Pipeline.pp_incident i)
    t.tr_incidents
