(** Translation-validation oracle: differential execution.

    Polaris's credibility rested on pervasive consistency assertions
    (paper §2); the analogue for a reproduction that transforms programs
    is an end-to-end check that the transformed program computes the
    same answers as the original.  This module runs an original /
    transformed program pair through {!Machine.Interp} on deterministic
    initial stores (zero-filled, plus optional splitmix64-seeded fills)
    and compares the observable final states:

    - PRINT output must match exactly (execution is sequential under
      every timing model, so even float output is deterministic);
    - integer and logical storage must match bit-for-bit;
    - float storage must match within a configurable ULP tolerance
      (headroom for reduction-reordering transforms).

    The transformed program is executed under serial timing and under
    parallel (DOALL-honouring) timing at each requested machine size, so
    the annotation-driven timing paths are exercised as well. *)

open Machine

(* ------------------------------------------------------------------ *)
(* Float and value comparison                                          *)

(** Two floats compare equal when they are within [ulp_tol] units in
    the last place {e or} within [rel_tol] relative error.  The modeled
    lane keeps [rel_tol] at 0 (pure ULP); only the real-execution lane
    uses the relative band — see {!real_cmp}. *)
type cmp = { ulp_tol : int; rel_tol : float }

let default_cmp = { ulp_tol = 2; rel_tol = 0.0 }

(** Comparator for the {e real-execution} lane ({!execute_real}).
    Parallel float reductions accumulate per-domain partials and merge
    them in domain order — a deterministic but different association
    from the serial fold, so the rounding drifts by a few ULP per
    thousand same-sign terms (observed ≤ 8 ULP at p ≤ 8 over 1000
    terms; see DESIGN.md §10).  64 ULP gives an order of magnitude of
    headroom while still pinning ~14 of the 16 significant digits.

    The relative band exists for iterative codes that feed a reduction
    result back into the next timestep's state (HYDRO2D: EK drives the
    velocity update, which drives the next EK).  A numerically unstable
    stencil amplifies the ULP-scale reassociation difference
    multiplicatively, so no fixed ULP bound survives — the measured
    drift over the full suite is ≤ 1.5e-11 relative at p ≤ 8, and
    1e-9 gives two orders of magnitude of headroom while still
    catching every real executor bug class: a lost per-domain partial
    or a wrong-element write perturbs values by ≥ 1e-4 relative here.
    Integers, logicals and PRINT output remain exact — only float
    {e memory} gets the slack. *)
let real_cmp = { ulp_tol = 64; rel_tol = 1e-9 }

(** Distance between two floats in units-in-the-last-place, using the
    monotone integer encoding of IEEE-754 doubles.  NaN/NaN compare as
    0; NaN against a number is [max_int]. *)
let ulp_diff a b =
  if a = b then 0 (* also identifies +0.0 with -0.0 *)
  else if Float.is_nan a && Float.is_nan b then 0
  else if Float.is_nan a || Float.is_nan b then max_int
  else
    let key x =
      let bits = Int64.bits_of_float x in
      if Int64.compare bits 0L >= 0 then bits else Int64.sub Int64.min_int bits
    in
    let d = Int64.abs (Int64.sub (key a) (key b)) in
    if Int64.compare d (Int64.of_int max_int) > 0 || Int64.compare d 0L < 0
    then max_int
    else Int64.to_int d

let float_close (c : cmp) x y =
  ulp_diff x y <= c.ulp_tol
  || c.rel_tol > 0.0
     && abs_float (x -. y)
        <= c.rel_tol *. Float.max (abs_float x) (abs_float y)

let value_close (c : cmp) (a : Value.t) (b : Value.t) =
  match (a, b) with
  | Value.Int x, Value.Int y -> x = y
  | Value.Bool x, Value.Bool y -> x = y
  | Value.Str x, Value.Str y -> String.equal x y
  | Value.Real x, Value.Real y -> float_close c x y
  | _ ->
    (* mixed numeric kinds should not arise (same variable, same type);
       fall back to exact numeric equality *)
    (try Value.to_float a = Value.to_float b with Value.Type_error _ -> false)

(** Storage-level comparator (used by the speculative checkpoint test):
    integers and logicals bit-for-bit, floats within the tolerance. *)
let data_close ?(cmp = default_cmp) (a : Storage.data) (b : Storage.data) =
  match (a, b) with
  | Storage.Iarr x, Storage.Iarr y -> x = y
  | Storage.Barr x, Storage.Barr y -> x = y
  | Storage.Farr x, Storage.Farr y ->
    Array.length x = Array.length y
    && (let ok = ref true in
        Array.iteri (fun i v -> if not (float_close cmp v y.(i)) then ok := false) x;
        !ok)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

type outcome =
  | Finished of Interp.capture
  | Fault of string  (** runtime error; two faulting runs compare equal *)

let execute ?seed ?(parallel = false) ?(procs = 8) (p : Fir.Program.t) :
    outcome =
  let cfg = Interp.default_config ~parallel ~procs ?seed () in
  try Finished (Interp.run_full ~cfg p) with
  | Interp.Runtime_error m -> Fault ("runtime error: " ^ m)
  | Interp.Fuel_exhausted m -> Fault ("fuel exhausted " ^ m)
  | Storage.Fault m -> Fault ("storage fault: " ^ m)
  | Value.Type_error m -> Fault ("type error: " ^ m)
  | Division_by_zero -> Fault "division by zero"

(** Like {!execute}, but annotated loops actually run on [procs] OCaml
    domains via {!Machine.Parexec} (speculative loops against real
    shadow arrays through {!Fruntime.Specexec}).  Also returns the
    runtime stats so callers can assert that regions really forked. *)
let execute_real ?seed ?(procs = 8) ?(spec = Fruntime.Specexec.backend)
    (p : Fir.Program.t) : outcome * Parexec.stats =
  let cfg = Interp.default_config ~parallel:false ~procs ?seed () in
  try
    let capture, stats = Parexec.run_full ~cfg ~procs ~spec p in
    (Finished capture, stats)
  with
  | Interp.Runtime_error m -> (Fault ("runtime error: " ^ m), Parexec.fresh_stats ())
  | Interp.Fuel_exhausted m -> (Fault ("fuel exhausted " ^ m), Parexec.fresh_stats ())
  | Storage.Fault m -> (Fault ("storage fault: " ^ m), Parexec.fresh_stats ())
  | Value.Type_error m -> (Fault ("type error: " ^ m), Parexec.fresh_stats ())
  | Division_by_zero -> (Fault "division by zero", Parexec.fresh_stats ())

(* ------------------------------------------------------------------ *)
(* Capture comparison                                                  *)

type divergence = {
  at : string;       (** location: "output", "scalar X", "array A[17]" *)
  expected : string;
  got : string;
}

let pp_divergence ppf (d : divergence) =
  Fmt.pf ppf "%s: expected %s, got %s" d.at d.expected d.got

(* compare only names both sides bind: transformation passes may remove
   dead locals (deadcode) or add remapped ones (inlining); locals are
   not observable, so the common names are the comparable store *)
let common_names a b =
  List.filter_map
    (fun (name, x) ->
      match List.assoc_opt name b with
      | Some y -> Some (name, x, y)
      | None -> None)
    a

let compare_captures (c : cmp) (ref_ : Interp.capture) (got : Interp.capture) :
    divergence list =
  let divs = ref [] in
  let add at expected got = divs := { at; expected; got } :: !divs in
  (* PRINT output: exact, line by line *)
  let ro = ref_.cap_result.output and go = got.cap_result.output in
  if List.length ro <> List.length go then
    add "output" (Fmt.str "%d lines" (List.length ro))
      (Fmt.str "%d lines" (List.length go))
  else
    List.iteri
      (fun i (a, b) ->
        if not (String.equal a b) then
          add (Fmt.str "output line %d" (i + 1)) a b)
      (List.combine ro go);
  (* main-frame scalars *)
  List.iter
    (fun (name, x, y) ->
      if not (value_close c x y) then
        add ("scalar " ^ name) (Value.to_string x) (Value.to_string y))
    (common_names ref_.cap_result.final got.cap_result.final);
  (* main-frame arrays and COMMON members *)
  let compare_arrays kind ref_arrays got_arrays =
    List.iter
      (fun (name, x, y) ->
        if Array.length x <> Array.length y then
          add
            (Fmt.str "%s %s" kind name)
            (Fmt.str "%d elements" (Array.length x))
            (Fmt.str "%d elements" (Array.length y))
        else
          Array.iteri
            (fun i v ->
              if not (value_close c v y.(i)) then
                add
                  (Fmt.str "%s %s[%d]" kind name i)
                  (Value.to_string v) (Value.to_string y.(i)))
            x)
      (common_names ref_arrays got_arrays)
  in
  compare_arrays "array" ref_.cap_arrays got.cap_arrays;
  compare_arrays "common" ref_.cap_commons got.cap_commons;
  List.rev !divs

let compare_outcomes (c : cmp) (ref_ : outcome) (got : outcome) :
    divergence list =
  match (ref_, got) with
  | Finished a, Finished b -> compare_captures c a b
  | Fault _, Fault _ ->
    (* both executions fault: a transformation may legitimately move the
       fault point, so messages are not compared *)
    []
  | Fault m, Finished _ ->
    (* name the faulting side: "the original ran out of fuel" reads very
       differently from "the transformed program ran out of fuel" *)
    [ { at = "termination";
        expected = "original program faulted: " ^ m;
        got = "transformed program completed normally" } ]
  | Finished _, Fault m ->
    [ { at = "termination";
        expected = "original program completed normally";
        got = "transformed program faulted: " ^ m } ]

(* ------------------------------------------------------------------ *)
(* The differential oracle                                             *)

type check = {
  context : string;  (** e.g. "seed=7 parallel p=4" *)
  divergences : divergence list;  (** non-empty *)
}

type report = {
  checks : int;             (** differential runs performed *)
  failures : check list;
}

let equivalent (r : report) = r.failures = []

let pp_report ppf (r : report) =
  if equivalent r then Fmt.pf ppf "equivalent (%d checks)" r.checks
  else
    Fmt.pf ppf "DIVERGED in %d of %d checks:@,%a" (List.length r.failures)
      r.checks
      (Fmt.list ~sep:Fmt.cut (fun ppf (ck : check) ->
           Fmt.pf ppf "  [%s] %a" ck.context
             (Fmt.list ~sep:(Fmt.any "; ") pp_divergence)
             (List.filteri (fun i _ -> i < 3) ck.divergences)))
      r.failures

(** Differentially execute [transformed] against [original].

    For the zero-filled store and each seeded store, the original is run
    serially (the reference) and the transformed program is run serially
    and with parallel timing at each machine size of [procs_list]. *)
let differential ?(cmp = default_cmp) ?(procs_list = [ 1; 2; 4; 8 ])
    ?(seeds = []) ~(original : Fir.Program.t)
    ~(transformed : Fir.Program.t) () : report =
  let checks = ref 0 in
  let failures = ref [] in
  let stores = None :: List.map Option.some seeds in
  (* Interpretation mutates IR-adjacent state: {!Fir.Symtab.lookup}
     materializes implicitly-declared symbols on first touch.  The
     serial oracle runs every execution on the one shared program pair;
     the parallel oracle therefore gives each concurrent run of the
     {e transformed} program its own deep copy (annotations travel with
     the copy) and keeps the original's reference run as the sole task
     touching [original].  Results are compared in the serial order, so
     reports — including the order of [failures] — are identical. *)
  List.iter
    (fun seed ->
      let seed_ctx =
        match seed with None -> "zero-init" | Some s -> Fmt.str "seed=%d" s
      in
      let check reference context run =
        incr checks;
        let divergences = compare_outcomes cmp reference run in
        if divergences <> [] then
          failures := { context; divergences } :: !failures
      in
      if not (Util.Pool.parallel ()) then begin
        let reference = execute ?seed original in
        check reference (seed_ctx ^ " serial") (execute ?seed transformed);
        List.iter
          (fun procs ->
            check reference
              (Fmt.str "%s parallel p=%d" seed_ctx procs)
              (execute ?seed ~parallel:true ~procs transformed))
          procs_list
      end
      else begin
        let specs =
          `Ref :: `Serial :: List.map (fun p -> `Par p) procs_list
        in
        let outcomes =
          Util.Pool.map
            (fun spec ->
              match spec with
              | `Ref -> execute ?seed original
              | `Serial -> execute ?seed (Fir.Program.copy transformed)
              | `Par procs ->
                execute ?seed ~parallel:true ~procs
                  (Fir.Program.copy transformed))
            specs
        in
        match outcomes with
        | reference :: serial :: pars ->
          check reference (seed_ctx ^ " serial") serial;
          List.iter2
            (fun procs run ->
              check reference (Fmt.str "%s parallel p=%d" seed_ctx procs) run)
            procs_list pars
        | _ -> assert false
      end)
    stores;
  { checks = !checks; failures = List.rev !failures }

(** Differentially execute the {e real} parallel executor against the
    serial interpreter on the same program: for the zero-filled store
    and each seeded store, the serial run is the reference and
    {!execute_real} must reproduce its output and final memory at every
    machine size in [procs_list].  This is the runtime analogue of
    {!differential} (which checks the {e transformation}); here the
    program is fixed and the execution strategy varies. *)
let differential_real ?(cmp = real_cmp) ?(procs_list = [ 1; 2; 4; 8 ])
    ?(seeds = []) ?spec (program : Fir.Program.t) () : report =
  let checks = ref 0 in
  let failures = ref [] in
  let stores = None :: List.map Option.some seeds in
  List.iter
    (fun seed ->
      let seed_ctx =
        match seed with None -> "zero-init" | Some s -> Fmt.str "seed=%d" s
      in
      let reference = execute ?seed program in
      List.iter
        (fun procs ->
          incr checks;
          let run, _stats = execute_real ?seed ~procs ?spec program in
          let divergences = compare_outcomes cmp reference run in
          if divergences <> [] then
            failures :=
              { context = Fmt.str "%s real p=%d" seed_ctx procs; divergences }
              :: !failures)
        procs_list)
    stores;
  { checks = !checks; failures = List.rev !failures }
