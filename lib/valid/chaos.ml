(** Deterministic fault-injection harness for the fail-safe pipeline.

    Polaris's engineering discipline (paper §2) was to assume its own
    passes were buggy and catch the damage with pervasive assertions.
    This module turns that assumption into a test: it injects faults —
    raised exceptions, IR corruptions that violate {!Fir.Consistency},
    and analysis-budget exhaustion — at pass and dependence-test
    boundaries, then checks the containment contract of
    {!Core.Pipeline}:

    - no injected fault escapes [Pipeline.run];
    - every contained fault is attributed (an {!Core.Pipeline.incident}
      naming the pass it was injected into);
    - the degraded output is still {e correct}: it passes the
      {!Oracle} differential check against the original program;
    - under [~strict:true] the same fault re-raises.

    Everything draws from a single splitmix64 {!Util.Prng} stream, so a
    seed fully determines the plan, the injection sites, and the
    corruptions: every failure is replayable from its seed alone. *)

open Fir

(* ------------------------------------------------------------------ *)
(* Fault plans                                                         *)

type fault =
  | Raise_exn     (** raise [Failure] at the pass boundary *)
  | Corrupt_ir    (** mutate the IR so {!Fir.Consistency} rejects it *)

let fault_to_string = function
  | Raise_exn -> "raise"
  | Corrupt_ir -> "corrupt"

(** What one chaos run will do, derived deterministically from a seed. *)
type plan = {
  pl_seed : int;
  pl_injections : (string * fault) list;
      (** pass name → fault, at most one per pass *)
  pl_zero_budget : bool;
      (** run with [budget_steps = 0]: every dependence test exhausts,
          all verdicts must degrade to "unknown → serial" *)
}

(* passes that run under every configuration we test with *)
let injectable_passes =
  [ "inline"; "constprop"; "induction"; "constprop2"; "deadcode";
    "parallelize" ]

let make_plan seed : plan =
  let prng = Util.Prng.create (0x5EED_C4A0 lxor (seed * 2654435761)) in
  let n_inj = 1 + Util.Prng.int prng 2 in
  let rec draw acc n =
    if n = 0 then acc
    else
      let pass = Util.Prng.pick prng injectable_passes in
      if List.mem_assoc pass acc then draw acc n
      else
        let fault = if Util.Prng.int prng 2 = 0 then Raise_exn else Corrupt_ir in
        draw ((pass, fault) :: acc) (n - 1)
  in
  { pl_seed = seed;
    pl_injections = draw [] n_inj;
    pl_zero_budget = Util.Prng.int prng 4 = 0 }

let pp_plan ppf (p : plan) =
  Fmt.pf ppf "seed=%d [%s]%s" p.pl_seed
    (String.concat ", "
       (List.map
          (fun (pass, f) -> pass ^ ":" ^ fault_to_string f)
          p.pl_injections))
    (if p.pl_zero_budget then " zero-budget" else "")

(* ------------------------------------------------------------------ *)
(* IR corruption                                                       *)

(* Corrupt [prog] in place so that {!Fir.Consistency.check} must reject
   it.  Two shapes, chosen by the PRNG:
   - duplicate a statement record (two statements share an sid);
   - replace an expression with a pattern [Wildcard], which is illegal
     outside {!Fir.Pattern} templates.
   Falls back from wildcard to duplication when the chosen unit has no
   expressions, so corruption is never a silent no-op. *)
let corrupt prng (prog : Program.t) : string =
  let units =
    List.filter (fun (u : Punit.t) -> u.pu_body <> []) (Program.units prog)
  in
  match units with
  | [] -> "no corruptible unit"  (* cannot arise for parsed programs *)
  | _ ->
    let u = Util.Prng.pick prng units in
    (* announce the mutation like any pass would: bumps the unit's
       invalidation version so no fingerprint-keyed analysis of the
       pre-corruption body can survive, and lets the COW guard snapshot
       the unit for rollback *)
    Program.touch prog u;
    let duplicate () =
      u.pu_body <- List.hd u.pu_body :: u.pu_body;
      Fmt.str "duplicated statement in %s" u.pu_name
    in
    if Util.Prng.int prng 2 = 0 then duplicate ()
    else begin
      (* count expressions, then zap a PRNG-chosen one with a Wildcard *)
      let total = ref 0 in
      Stmt.iter_exprs (fun _ -> incr total) u.pu_body;
      if !total = 0 then duplicate ()
      else begin
        let target = Util.Prng.int prng !total and seen = ref 0 in
        u.pu_body <-
          Stmt.map_block_exprs
            (fun e ->
              let i = !seen in
              incr seen;
              if i = target then Ast.Wildcard 0 else e)
            u.pu_body;
        Fmt.str "wildcard planted in %s" u.pu_name
      end
    end

(* ------------------------------------------------------------------ *)
(* One chaos run                                                       *)

(** Result of one seeded run. *)
type outcome = {
  oc_plan : plan;
  oc_fired : (string * fault) list;
      (** injections that actually triggered (a pass disabled by an
          earlier incident never reaches its injection site) *)
  oc_escaped : string option;  (** exception that escaped [Pipeline.run] *)
  oc_incidents : Core.Pipeline.incident list;
  oc_attributed : bool;
      (** every fired fault has an incident naming its pass *)
  oc_unknown_delta : int;
      (** budget-exhaustion verdicts recorded by {!Dep.Driver} *)
  oc_budget_degraded : bool;
      (** zero-budget runs must not parallelize any loop whose verdict
          needed an (exhausted) array dependence test *)
  oc_oracle : Oracle.report option;
      (** differential check of degraded output vs. original *)
}

let outcome_ok (o : outcome) =
  o.oc_escaped = None && o.oc_attributed && o.oc_budget_degraded
  && (match o.oc_oracle with Some r -> Oracle.equivalent r | None -> true)

(** Run the pipeline on [source] under [plan], injecting faults through
    {!Core.Pipeline}'s [fault_hook] seam, and check the containment
    contract.  [procs_list]/[seeds] bound the oracle's differential
    matrix (chaos sweeps run many seeds, so the default is small). *)
let run_plan ?(config = Core.Config.polaris ()) ?(procs_list = [ 4 ])
    ?(seeds = []) (plan : plan) (source : string) : outcome =
  let prng = Util.Prng.create (0xFA017 lxor (plan.pl_seed * 40503)) in
  let original = Frontend.Parser.parse_string source in
  let program = Program.copy original in
  let config =
    if plan.pl_zero_budget then { config with budget_steps = 0 } else config
  in
  let fired = ref [] in
  let fault_hook pass prog =
    match List.assoc_opt pass plan.pl_injections with
    | None -> ()
    | Some f ->
      fired := (pass, f) :: !fired;
      (match f with
      | Raise_exn -> failwith ("chaos: injected fault in pass " ^ pass)
      | Corrupt_ir -> ignore (corrupt prng prog : string))
  in
  let unknown0 = (Dep.Driver.counters_snapshot ()).unknown in
  let result =
    try Ok (Core.Pipeline.run ~fault_hook config program)
    with e -> Error (Printexc.to_string e)
  in
  let unknown_delta =
    (Dep.Driver.counters_snapshot ()).unknown - unknown0
  in
  match result with
  | Error e ->
    { oc_plan = plan; oc_fired = List.rev !fired; oc_escaped = Some e;
      oc_incidents = []; oc_attributed = false;
      oc_unknown_delta = unknown_delta; oc_budget_degraded = false;
      oc_oracle = None }
  | Ok t ->
    let attributed =
      List.for_all
        (fun (pass, _) ->
          List.exists
            (fun (i : Core.Pipeline.incident) -> i.inc_pass = pass)
            t.incidents)
        !fired
    in
    let budget_degraded =
      (not plan.pl_zero_budget)
      || List.for_all
           (fun (l : Core.Pipeline.loop_result) ->
             (* with zero budget no array dependence test can complete,
                so any parallel verdict must be one that needed no such
                proof (no array accesses at all) — conservatively: the
                loop is serial or the run recorded its exhaustion *)
             (not l.report.parallel) || unknown_delta >= 0)
           t.loops
    in
    let oracle =
      Oracle.differential ~procs_list ~seeds ~original
        ~transformed:t.program ()
    in
    { oc_plan = plan; oc_fired = List.rev !fired; oc_escaped = None;
      oc_incidents = t.incidents; oc_attributed = attributed;
      oc_unknown_delta = unknown_delta; oc_budget_degraded = budget_degraded;
      oc_oracle = Some oracle }

(** Check that [~strict:true] re-raises the planned fault instead of
    containing it.  Returns [true] when the first injected fault escapes
    (or the plan injects into passes that never run). *)
let strict_reraises ?(config = Core.Config.polaris ()) (plan : plan)
    (source : string) : bool =
  let prng = Util.Prng.create (0xFA017 lxor (plan.pl_seed * 40503)) in
  let program = Frontend.Parser.parse_string source in
  let fired = ref false in
  let fault_hook pass prog =
    match List.assoc_opt pass plan.pl_injections with
    | None -> ()
    | Some f ->
      fired := true;
      (match f with
      | Raise_exn -> failwith ("chaos: injected fault in pass " ^ pass)
      | Corrupt_ir -> ignore (corrupt prng prog : string))
  in
  match Core.Pipeline.run ~strict:true ~fault_hook config program with
  | _ -> not !fired  (* no injection site was reached: vacuously fine *)
  | exception _ -> true

(* ------------------------------------------------------------------ *)
(* Sweeps                                                              *)

type sweep = {
  sw_seeds : int;                (** seeded runs performed *)
  sw_contained : int;            (** runs with >= 1 incident, none escaped *)
  sw_failures : outcome list;    (** runs violating the contract *)
  sw_strict_failures : int list; (** seeds where strict failed to re-raise *)
}

let sweep_ok (s : sweep) = s.sw_failures = [] && s.sw_strict_failures = []

(** Run [n] seeded chaos plans ([first_seed ...]) over [sources]
    round-robin; each seed also gets a strict re-raise check. *)
let run_sweep ?config ?procs_list ?seeds ?(first_seed = 1) ~n
    (sources : (string * string) list) : sweep =
  if sources = [] then invalid_arg "Chaos.run_sweep: no sources";
  let contained = ref 0 and failures = ref [] and strict_failures = ref [] in
  for i = 0 to n - 1 do
    let seed = first_seed + i in
    let _, source = List.nth sources (i mod List.length sources) in
    let plan = make_plan seed in
    let o = run_plan ?config ?procs_list ?seeds plan source in
    if o.oc_incidents <> [] && o.oc_escaped = None then incr contained;
    if not (outcome_ok o) then failures := o :: !failures;
    if not (strict_reraises ?config plan source) then
      strict_failures := seed :: !strict_failures
  done;
  { sw_seeds = n; sw_contained = !contained;
    sw_failures = List.rev !failures;
    sw_strict_failures = List.rev !strict_failures }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let outcome_json (o : outcome) =
  let open Trace.Json in
  obj
    [ ("seed", int o.oc_plan.pl_seed);
      ( "injections",
        arr
          (List.map
             (fun (pass, f) ->
               obj
                 [ ("pass", str pass); ("fault", str (fault_to_string f)) ])
             o.oc_plan.pl_injections) );
      ("zero_budget", bool o.oc_plan.pl_zero_budget);
      ( "fired",
        arr (List.map (fun (pass, _) -> str pass) o.oc_fired) );
      ( "escaped",
        match o.oc_escaped with Some e -> str e | None -> null );
      ("attributed", bool o.oc_attributed);
      ("budget_unknown_delta", int o.oc_unknown_delta);
      ("incidents", arr (List.map Trace.incident_json o.oc_incidents));
      ( "oracle_equivalent",
        match o.oc_oracle with
        | Some r -> bool (Oracle.equivalent r)
        | None -> null );
      ("ok", bool (outcome_ok o)) ]

let sweep_json (s : sweep) =
  let open Trace.Json in
  obj
    [ ("seeds", int s.sw_seeds);
      ("contained", int s.sw_contained);
      ("ok", bool (sweep_ok s));
      ("failures", arr (List.map outcome_json s.sw_failures));
      ("strict_failures", arr (List.map int s.sw_strict_failures)) ]

let pp_outcome ppf (o : outcome) =
  Fmt.pf ppf "%a: %s%s%s%s" pp_plan o.oc_plan
    (match o.oc_escaped with
    | Some e -> "ESCAPED " ^ e
    | None -> Fmt.str "%d incident(s)" (List.length o.oc_incidents))
    (if o.oc_attributed then "" else " MISATTRIBUTED")
    (if o.oc_budget_degraded then "" else " BUDGET-UNSOUND")
    (match o.oc_oracle with
    | Some r when not (Oracle.equivalent r) -> " ORACLE-DIVERGED"
    | _ -> "")

let pp_sweep ppf (s : sweep) =
  Fmt.pf ppf "chaos sweep: %d seeds, %d contained, %d contract failures, %d strict failures@."
    s.sw_seeds s.sw_contained
    (List.length s.sw_failures)
    (List.length s.sw_strict_failures);
  List.iter (fun o -> Fmt.pf ppf "  %a@." pp_outcome o) s.sw_failures

(** The default chaos corpus: every synthetic suite code. *)
let default_sources () =
  List.map (fun (c : Suite.Code.t) -> (c.name, c.source)) Suite.Registry.all
