(** Execution of compiled programs on the simulated multiprocessor. *)

type run = {
  serial_time : int;     (** simulated time, annotations ignored *)
  parallel_time : int;   (** simulated time honouring DOALL annotations *)
  speedup : float;
  output : string list;  (** the program's PRINT lines *)
}

exception Output_mismatch
(** Raised if the serial and parallel-timed executions disagree — an
    internal invariant of the simulator (execution is sequential either
    way). *)

(** Time a compiled program serially and on [procs] processors. *)
val run : ?procs:int -> ?use_cache:bool -> Fir.Program.t -> run

(** Compile [source] under a configuration and simulate it.  The serial
    reference time is measured on the {e original} program, because
    induction substitution trades recurrences for stronger arithmetic
    (paper §3.2).  [strict] is passed to {!Pipeline.compile}: pass
    faults re-raise instead of being contained. *)
val compile_and_run :
  ?strict:bool -> ?use_cache:bool -> Config.t -> string -> Pipeline.t * run
