(** Execution of compiled programs on the simulated multiprocessor. *)

type run = {
  serial_time : int;     (** simulated time, annotations ignored *)
  parallel_time : int;   (** simulated time honouring DOALL annotations *)
  speedup : float;
  output : string list;  (** the program's PRINT lines *)
}

exception Output_mismatch
(** Raised if the serial and parallel-timed executions disagree — an
    internal invariant of the simulator (execution is sequential either
    way). *)

(** Time a compiled program serially and on [procs] processors. *)
val run : ?procs:int -> ?use_cache:bool -> Fir.Program.t -> run

(** Compile [source] under a configuration and simulate it.  The serial
    reference time is measured on the {e original} program, because
    induction substitution trades recurrences for stronger arithmetic
    (paper §3.2).  [strict] is passed to {!Pipeline.compile}: pass
    faults re-raise instead of being contained. *)
val compile_and_run :
  ?strict:bool -> ?use_cache:bool -> Config.t -> string -> Pipeline.t * run

type measured = {
  m_procs : int;                 (** OCaml domains used *)
  serial_wall : float;           (** wall-clock seconds, serial interpreter *)
  parallel_wall : float;         (** wall-clock seconds, {!Machine.Parexec} *)
  wall_speedup : float;          (** serial_wall / parallel_wall *)
  serial_capture : Machine.Interp.capture;
  parallel_capture : Machine.Interp.capture;
  stats : Machine.Parexec.stats; (** regions forked, speculation outcomes *)
}

(** The {e measured} lane: execute a compiled program for real, serially
    and on [procs] OCaml domains, and time both with a wall clock.  The
    modeled lane ({!run}) prices the paper's 8-way machine; this one
    measures this machine.  [procs] defaults to [POLARIS_RUNTIME_PROCS]
    or the host's recommended domain count.  Captures are returned
    uncompared (use [Valid.Oracle] for the ULP-tolerant identity
    check). *)
val run_measured :
  ?procs:int -> ?use_cache:bool -> ?seed:int -> Fir.Program.t -> measured
