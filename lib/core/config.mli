(** Compiler configurations: the Polaris pipeline, the baseline ("PFA")
    pipeline, and ablations in between. *)

type t = {
  name : string;               (** short label used in reports *)
  inline : bool;               (** §3.1 inline expansion *)
  constprop : bool;            (** constant/copy propagation *)
  generalized_induction : bool;
      (** §3.2 cascaded/triangular/geometric inductions (false =
          loop-invariant increments in rectangular nests only, the
          "current compiler" capability) *)
  mode : Passes.Parallelize.mode;
      (** range test + array privatization vs. GCD/Banerjee + scalars *)
  deadcode : bool;             (** dead scalar-assignment cleanup *)
  procs : int;                 (** simulated machine size *)
  budget_steps : int;
      (** analysis budget: symbolic/dependence-test steps available per
          loop verdict; exhaustion degrades the verdict to
          "unknown → serial" instead of looping or raising *)
  budget_deadline_s : float option;
      (** optional CPU-seconds deadline per loop verdict *)
  caches : bool;
      (** compile-time caches (hash-consing, symbolic memoization,
          dependence-verdict cache — see {!Util.Cachectl}).  Defaults to
          on unless [POLARIS_NO_CACHE=1] is in the environment; purely a
          performance lever, verdicts and output are identical either
          way *)
  pipeline : Registry.pipeline;
      (** which passes run and in what order ({!Registry}); the
          capability flags above still gate each pass individually *)
}

(** The full Polaris configuration (paper §3). *)
val polaris : ?procs:int -> unit -> t

(** The baseline standing in for SGI's PFA: the capability set the
    paper ascribes to "current compilers". *)
val baseline : ?procs:int -> unit -> t

(** Polaris without inline expansion (ablation). *)
val without_inline : ?procs:int -> unit -> t

(** Polaris with only classic (loop-invariant, rectangular) induction
    handling (ablation). *)
val without_generalized_induction : ?procs:int -> unit -> t

(** [with_pipeline pl config]: the same capability set run through
    pipeline [pl]; the report label appends the pipeline name when it
    is not the default. *)
val with_pipeline : Registry.pipeline -> t -> t
