(** Execution of compiled programs on the simulated multiprocessor.

    Runs a program twice through the interpreter — once ignoring the
    DOALL annotations (serial time) and once honouring them on a
    [procs]-processor machine — and reports the simulated speedup.
    Execution is sequential either way, so the outputs are compared as
    a built-in sanity check. *)

type run = {
  serial_time : int;
  parallel_time : int;
  speedup : float;
  output : string list;
}

exception Output_mismatch

(** Time the program serially and in parallel on [procs] processors.
    @raise Output_mismatch if the two executions disagree (they cannot,
    unless the simulator itself is broken — this is an internal check). *)
let run ?(procs = 8) ?(use_cache = true) (program : Fir.Program.t) : run =
  let serial_cfg =
    Machine.Interp.default_config ~parallel:false ~procs ~use_cache ()
  in
  let parallel_cfg =
    Machine.Interp.default_config ~parallel:true ~procs ~use_cache ()
  in
  let rs = Machine.Interp.run ~cfg:serial_cfg program in
  let rp = Machine.Interp.run ~cfg:parallel_cfg program in
  if rs.output <> rp.output then raise Output_mismatch;
  { serial_time = rs.time;
    parallel_time = rp.time;
    speedup = Machine.Parsim.speedup ~seq:rs.time ~par:rp.time;
    output = rs.output }

(** End-to-end: compile [source] under [config] and simulate.

    The serial reference time is measured on the {e original} program:
    induction substitution trades recurrences for stronger arithmetic
    (the paper's §3.2 note on strength reduction), so timing the
    transformed program serially would overstate both pipelines.
    Returns (pipeline result, run). *)
let compile_and_run ?strict ?(use_cache = true) (config : Config.t)
    (source : string) : Pipeline.t * run =
  let original = Frontend.Parser.parse_string source in
  let serial_cfg =
    Machine.Interp.default_config ~parallel:false ~procs:config.procs
      ~use_cache ()
  in
  let rs = Machine.Interp.run ~cfg:serial_cfg original in
  let t = Pipeline.compile ?strict config source in
  let parallel_cfg =
    Machine.Interp.default_config ~parallel:true ~procs:config.procs
      ~use_cache ()
  in
  let rp = Machine.Interp.run ~cfg:parallel_cfg t.program in
  if rs.output <> rp.output then raise Output_mismatch;
  ( t,
    { serial_time = rs.time;
      parallel_time = rp.time;
      speedup = Machine.Parsim.speedup ~seq:rs.time ~par:rp.time;
      output = rs.output } )

(* ------------------------------------------------------------------ *)
(* The measured lane                                                   *)

type measured = {
  m_procs : int;
  serial_wall : float;
  parallel_wall : float;
  wall_speedup : float;
  serial_capture : Machine.Interp.capture;
  parallel_capture : Machine.Interp.capture;
  stats : Machine.Parexec.stats;
}

(** Execute [program] twice for real and time both: once on the plain
    serial interpreter and once with {!Machine.Parexec} running the
    annotated loops on [procs] OCaml domains (LRPD loops speculate
    against {!Fruntime.Specexec} shadows).  Both captures are returned
    so the caller can run the identity check it wants — this module
    deliberately does not compare them, because float reductions need
    the ULP-tolerant comparator that lives in [Valid.Oracle] and [core]
    sits below [valid] in the library stack. *)
let run_measured ?procs ?(use_cache = true) ?seed (program : Fir.Program.t) :
    measured =
  let procs =
    match procs with
    | Some p -> max 1 p
    | None -> Machine.Parexec.default_procs ()
  in
  let cfg =
    Machine.Interp.default_config ~parallel:false ~procs ~use_cache ?seed ()
  in
  let t0 = Unix.gettimeofday () in
  let serial_capture = Machine.Interp.run_full ~cfg program in
  let t1 = Unix.gettimeofday () in
  let parallel_capture, stats =
    Machine.Parexec.run_full ~cfg ~procs ~spec:Fruntime.Specexec.backend
      program
  in
  let t2 = Unix.gettimeofday () in
  let serial_wall = t1 -. t0 and parallel_wall = t2 -. t1 in
  { m_procs = procs;
    serial_wall;
    parallel_wall;
    wall_speedup =
      (if parallel_wall <= 0.0 then 0.0 else serial_wall /. parallel_wall);
    serial_capture;
    parallel_capture;
    stats }
