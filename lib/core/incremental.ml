(** Incremental recompilation (`polaris serve`).

    A serve session compiles a sequence of programs — typically edit
    deltas to one program — through the ordinary {!Pipeline}, in one
    process, {e without clearing the analysis caches between compiles}.
    The content-addressed semantic caches ([Punit.fingerprint]-keyed
    range environments, dependence verdicts keyed on canonical
    loop/access/env fingerprints, [Poly.of_expr], the [Compare] tables,
    expression interning) key on what the IR {e says}, not on which
    physical records say it, so recompiling a program whose unit is
    unchanged re-hits every fact proved about that unit in an earlier
    compile — only the edited unit pays for analysis.  The
    physically-keyed {!Analysis.Manager} tables revalidate per entry
    and recompute only for new IR.

    Soundness is not argued, it is measured: {!diverges} compares an
    incremental compile against a from-scratch compile ({!scratch}) of
    the same source — annotated output, per-loop verdicts (statement
    ids masked), incidents and dependence-test outcome counters must
    all be byte-identical.  `polaris serve --check`, the bench
    [incremental] experiment and [test/test_incremental.ml] enforce
    this; PR 1's differential oracle and PR 2's containment run
    unchanged underneath. *)

(* sid-free projection of one loop verdict *)
type verdict = {
  v_unit : string;
  v_index : string;
  v_parallel : bool;
  v_speculative : bool;
  v_reason : string;
}

(* dependence-test outcome counter deltas for one compile *)
type counters = {
  c_range_proved : int;
  c_range_failed : int;
  c_linear_proved : int;
  c_linear_failed : int;
  c_unknown : int;
}

(** Everything an incremental compile must reproduce byte-identically:
    the annotated output source, the per-loop verdicts with statement
    ids masked (ids are globally fresh by design, so they differ across
    compiles of identical source), the incident list and the
    dependence counters accumulated by the compile. *)
type outcome = {
  oc_output : string;
  oc_verdicts : verdict list;
  oc_incidents : Pipeline.incident list;
  oc_counters : counters;
}

(** Analysis-reuse accounting of one compile: hit/miss growth of every
    tracked analysis cache ({!Analysis.Manager.tracked}), and the reuse
    rate hits/(hits+misses) over all of them. *)
type stats = {
  st_tracked : (string * int * int) list;  (** (analysis, hits, misses) *)
  st_hits : int;
  st_lookups : int;
  st_reuse_rate : float;  (** 0.0 when there were no lookups *)
}

type result = {
  pipeline : Pipeline.t;
  outcome : outcome;
  stats : stats;
}

let counters_delta ~(base : Dep.Driver.counters) (now : Dep.Driver.counters) :
    counters =
  { c_range_proved = now.range_proved - base.range_proved;
    c_range_failed = now.range_failed - base.range_failed;
    c_linear_proved = now.linear_proved - base.linear_proved;
    c_linear_failed = now.linear_failed - base.linear_failed;
    c_unknown = now.unknown - base.unknown }

let outcome_of ~(counters_base : Dep.Driver.counters) (t : Pipeline.t) :
    outcome =
  { oc_output = Pipeline.output_source t;
    oc_verdicts =
      List.map
        (fun (l : Pipeline.loop_result) ->
          { v_unit = l.unit_name;
            v_index = l.report.loop_index;
            v_parallel = l.report.parallel;
            v_speculative = l.report.speculative;
            v_reason = l.report.reason })
        t.loops;
    oc_incidents = t.incidents;
    oc_counters =
      counters_delta ~base:counters_base (Dep.Driver.counters_snapshot ()) }

let stats_of ~cache_base : stats =
  let tracked = Analysis.Manager.tracked () in
  let st_tracked =
    Util.Cachectl.delta ~base:cache_base (Util.Cachectl.snapshot ())
    |> List.filter (fun (name, _, _) -> List.mem name tracked)
  in
  let st_hits = List.fold_left (fun a (_, h, _) -> a + h) 0 st_tracked in
  let misses = List.fold_left (fun a (_, _, m) -> a + m) 0 st_tracked in
  let st_lookups = st_hits + misses in
  { st_tracked; st_hits; st_lookups;
    st_reuse_rate =
      (if st_lookups = 0 then 0.0
       else float_of_int st_hits /. float_of_int st_lookups) }

(** Compile [source] reusing whatever the analysis caches still hold
    from earlier compiles of this process — the incremental path. *)
let compile ?strict ?observer (config : Config.t) (source : string) : result =
  let cache_base = Util.Cachectl.snapshot () in
  let counters_base = Dep.Driver.counters_snapshot () in
  let pipeline = Pipeline.compile ?strict ?observer config source in
  { pipeline;
    outcome = outcome_of ~counters_base pipeline;
    stats = stats_of ~cache_base }

(** Compile [source] from scratch: every analysis cache is emptied
    first, so nothing from earlier compiles can be reused.  The
    reference for {!diverges}.  (The scratch compile itself re-warms
    the content-addressed caches with entries equivalent to those it
    cleared, so a following incremental compile is measured against an
    honestly warm state either way.) *)
let scratch ?strict ?observer (config : Config.t) (source : string) : result =
  Util.Cachectl.clear_all ();
  compile ?strict ?observer config source

(** [diverges ~incremental ~scratch]: every way the incremental outcome
    differs from the from-scratch outcome, as human-readable one-liners
    (empty = byte-identical, the required result). *)
let diverges ~(incremental : outcome) ~(scratch : outcome) : string list =
  let d = ref [] in
  let add fmt = Fmt.kstr (fun s -> d := s :: !d) fmt in
  if not (String.equal incremental.oc_output scratch.oc_output) then
    add "annotated output source differs";
  if incremental.oc_verdicts <> scratch.oc_verdicts then
    add "per-loop verdicts differ (%d vs %d loops)"
      (List.length incremental.oc_verdicts)
      (List.length scratch.oc_verdicts);
  if incremental.oc_incidents <> scratch.oc_incidents then
    add "incident lists differ (%d vs %d)"
      (List.length incremental.oc_incidents)
      (List.length scratch.oc_incidents);
  if incremental.oc_counters <> scratch.oc_counters then
    add "dependence-test outcome counters differ";
  List.rev !d
