(** The declarative pass/pipeline registry.

    A pipeline is a named list of {!Pass_id.t}s.  Three presets ship —
    [thorough] (the classic full Polaris order, the default), [fast]
    (skip inlining, the second propagation round and dead-code cleanup)
    and [serial] (every restructuring pass but no parallelization) —
    and [custom:p1,p2,...] builds one from pass names on the CLI or in
    [POLARIS_PIPELINE].  {!check} enforces the registry's ordering
    constraints ({!Pass_id.ordering_edges}) and rejects duplicates, so
    an ill-formed pipeline is a clean configuration error, never a
    miscompile. *)

type pipeline = {
  pl_name : string;
  pl_passes : Pass_id.t list;
}

let thorough =
  { pl_name = "thorough"; pl_passes = Pass_id.all }

let fast =
  { pl_name = "fast";
    pl_passes = Pass_id.[ Constprop; Induction; Parallelize ] }

let serial =
  { pl_name = "serial";
    pl_passes = Pass_id.[ Inline; Constprop; Induction; Constprop2; Deadcode ] }

(** The named presets, in listing order. *)
let presets = [ thorough; fast; serial ]

let preset_doc = function
  | "thorough" -> "every pass in the classic Polaris order (the default)"
  | "fast" -> "propagation + induction + parallelize: the quick verdict lane"
  | "serial" -> "restructure only; no parallelization pass, no directives"
  | _ -> ""

(** [check pl]: [Ok ()] iff [pl] has no duplicate passes and respects
    every ordering edge; the error names the violated constraint. *)
let check (pl : pipeline) : (unit, string) result =
  let rec dup = function
    | [] -> None
    | p :: tl -> if List.mem p tl then Some p else dup tl
  in
  match dup pl.pl_passes with
  | Some p ->
    Error
      (Printf.sprintf "pipeline '%s' lists pass '%s' twice" pl.pl_name
         (Pass_id.name p))
  | None ->
    let pos p =
      let rec go i = function
        | [] -> None
        | q :: tl -> if q = p then Some i else go (i + 1) tl
      in
      go 0 pl.pl_passes
    in
    let violated =
      List.find_opt
        (fun (before, after, _) ->
          match (pos before, pos after) with
          | Some i, Some j -> i > j
          | _ -> false)
        Pass_id.ordering_edges
    in
    (match violated with
    | None -> Ok ()
    | Some (before, after, why) ->
      Error
        (Printf.sprintf
           "pipeline '%s' violates ordering constraint '%s' < '%s' (%s)"
           pl.pl_name (Pass_id.name before) (Pass_id.name after) why))

(** [parse spec]: a preset name, or [custom:p1,p2,...] over
    {!Pass_id.of_name}.  The result already passed {!check}. *)
let parse (spec : string) : (pipeline, string) result =
  let spec = String.lowercase_ascii (String.trim spec) in
  match List.find_opt (fun pl -> pl.pl_name = spec) presets with
  | Some pl -> Ok pl
  | None ->
    let custom_prefix = "custom:" in
    if String.length spec > String.length custom_prefix
       && String.sub spec 0 (String.length custom_prefix) = custom_prefix
    then begin
      let names =
        String.sub spec (String.length custom_prefix)
          (String.length spec - String.length custom_prefix)
        |> String.split_on_char ','
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      if names = [] then Error "custom: pipeline lists no passes"
      else
        let rec resolve acc = function
          | [] -> Ok (List.rev acc)
          | n :: tl -> (
            match Pass_id.of_name n with
            | Some p -> resolve (p :: acc) tl
            | None ->
              Error
                (Printf.sprintf
                   "unknown pass '%s' (known: %s)" n
                   (String.concat ", " (List.map Pass_id.name Pass_id.all))))
        in
        match resolve [] names with
        | Error _ as e -> e
        | Ok passes ->
          let pl = { pl_name = spec; pl_passes = passes } in
          (match check pl with Ok () -> Ok pl | Error m -> Error m)
    end
    else
      Error
        (Printf.sprintf
           "unknown pipeline '%s' (presets: %s; or custom:p1,p2,...)" spec
           (String.concat ", " (List.map (fun pl -> pl.pl_name) presets)))

(* ------------------------------------------------------------------ *)
(* Listings (polaris --list-passes / --list-pipelines)                 *)

let pp_pass_entry ppf (p : Pass_id.t) =
  Fmt.pf ppf "%-12s %s@,%-12s   consumes: %s@,%-12s   invalidates: %s@,%-12s   disables-on-fault: %s"
    (Pass_id.name p) (Pass_id.doc p) ""
    (match Pass_id.consumes p with [] -> "-" | cs -> String.concat ", " cs)
    ""
    (match Pass_id.invalidates p with [] -> "-" | cs -> String.concat ", " cs)
    "" (Pass_id.disables p)

let pp_passes ppf () =
  Fmt.pf ppf "@[<v>%a@]@."
    (Fmt.list ~sep:Fmt.cut pp_pass_entry)
    Pass_id.all

let pp_pipelines ppf () =
  Fmt.pf ppf "@[<v>%a@]@."
    (Fmt.list ~sep:Fmt.cut (fun ppf pl ->
         Fmt.pf ppf "%-10s %s@,%-10s   passes: %s" pl.pl_name
           (preset_doc pl.pl_name) ""
           (String.concat " -> " (List.map Pass_id.name pl.pl_passes))))
    presets
