(** First-class pass identities (the Juvix [TransformationId] pattern).

    Every pass in [lib/passes] is one constructor here, with its
    metadata — the guarded-pass name the observer and the validation
    oracle see, the analyses it declares it consumes (the reuse
    ledger), the analyses it invalidates by rewriting the IR, and the
    fail-safe capability its guard disables when it faults.  The
    pipeline interpreter ({!Pipeline.run}) dispatches on these ids;
    {!Registry} groups them into named pipelines and checks ordering
    constraints.  Adding a pass means adding a constructor and one
    dispatch arm — nothing else in the spine changes. *)

type t =
  | Inline       (** §3.1 inline expansion *)
  | Constprop    (** constant/copy propagation, first round *)
  | Induction    (** §3.2 induction-variable substitution *)
  | Constprop2   (** second propagation round (the TRFD X=X0 cleanup) *)
  | Deadcode     (** dead scalar-assignment cleanup *)
  | Parallelize  (** dependence/privatization/reduction analysis driver *)

(** Every pass, in the canonical (thorough) order. *)
let all = [ Inline; Constprop; Induction; Constprop2; Deadcode; Parallelize ]

(** The guarded-pass name: what the observer, the flight recorder and
    the incident records call this pass.  Stable — {!Valid.Snapshot}
    and the daemon's JSON log key on these strings. *)
let name = function
  | Inline -> "inline"
  | Constprop -> "constprop"
  | Induction -> "induction"
  | Constprop2 -> "constprop2"
  | Deadcode -> "deadcode"
  | Parallelize -> "parallelize"

let of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "inline" -> Some Inline
  | "constprop" -> Some Constprop
  | "induction" -> Some Induction
  | "constprop2" -> Some Constprop2
  | "deadcode" -> Some Deadcode
  | "parallelize" -> Some Parallelize
  | _ -> None

let doc = function
  | Inline -> "inline small subroutines into call sites (paper §3.1)"
  | Constprop -> "propagate compile-time constants and copies"
  | Induction -> "substitute (generalized) induction variables (paper §3.2)"
  | Constprop2 -> "second propagation round: clean up induction's X=X0 exposures"
  | Deadcode -> "remove dead scalar assignments"
  | Parallelize -> "prove DOALLs: range test, privatization, reductions, LRPD"

(** Analyses the pass declares it consumes, by {!Util.Cachectl} cache
    name — re-exported from the pass modules so the declaration lives
    with the pass. *)
let consumes = function
  | Inline -> Passes.Inline.consumes
  | Constprop | Constprop2 -> Passes.Constprop.consumes
  | Induction -> Passes.Induction.consumes
  | Deadcode -> Passes.Deadcode.consumes
  | Parallelize -> Passes.Parallelize.consumes

(** Analyses whose cached facts the pass invalidates by rewriting the
    IR.  Mutating passes retire every structural/semantic fact about
    the units they touch (the guard's generation bump enforces this
    wholesale; the list documents which tables that bump actually
    ages).  [Parallelize] only annotates loop info — it rewrites no
    statements, so it invalidates nothing. *)
let invalidates = function
  | Inline | Constprop | Induction | Constprop2 | Deadcode ->
    [ "analysis.loops"; "analysis.access"; "analysis.defuse";
      "range_prop.env_at"; "dep.verdict" ]
  | Parallelize -> []

(** The fail-safe capability the guard disables when the pass faults.
    Both propagation rounds share ["constprop"]: a crashed first round
    also skips the second. *)
let disables = function
  | Inline -> "inline"
  | Constprop | Constprop2 -> "constprop"
  | Induction -> "induction"
  | Deadcode -> "deadcode"
  | Parallelize -> "parallelize"

(** Ordering constraints: [(before, after, why)] — in any pipeline
    containing both passes, [before] must precede [after].
    {!Registry.check} rejects violations naming the edge. *)
let ordering_edges : (t * t * string) list =
  List.concat
    [ (* inlining rewrites call sites wholesale; every later pass must
         see the flattened program or its work is thrown away *)
      List.map
        (fun p -> (Inline, p, "inline rewrites call sites the later passes analyze"))
        [ Constprop; Induction; Constprop2; Deadcode; Parallelize ];
      [ ( Constprop, Constprop2,
          "the second propagation round cleans up after the first" );
        ( Induction, Constprop2,
          "constprop2 propagates the X=X0 constants induction substitution \
           exposes" ) ];
      (* parallelize only annotates; a mutating pass after it would
         rewrite the statements its directives point at *)
      List.map
        (fun p ->
          (p, Parallelize, "parallelize annotates the final program text"))
        [ Constprop; Induction; Constprop2; Deadcode ] ]

let pp ppf p = Fmt.string ppf (name p)
