(** Compiler configuration: the Polaris pipeline, the baseline ("PFA")
    pipeline, and ablations in between. *)

type t = {
  name : string;
  inline : bool;              (** §3.1 inline expansion *)
  constprop : bool;           (** constant/copy propagation *)
  generalized_induction : bool;
      (** §3.2 cascaded/triangular inductions (false = loop-invariant
          increments only, the "current compiler" capability) *)
  mode : Passes.Parallelize.mode;
      (** range test + array privatization vs. GCD/Banerjee + scalars *)
  deadcode : bool;            (** dead scalar-assignment cleanup *)
  procs : int;                (** simulated machine size *)
  budget_steps : int;
      (** analysis budget: symbolic/dependence-test steps available per
          loop verdict; exhaustion degrades the verdict to
          "unknown → serial" (see {!Util.Budget}, {!Dep.Driver}) *)
  budget_deadline_s : float option;
      (** optional CPU-seconds deadline per loop verdict, for bounding
          pathological inputs at the cost of time-dependent verdicts *)
  caches : bool;
      (** compile-time caches (hash-consing, symbolic memoization,
          dependence-verdict cache — see {!Util.Cachectl}).  Defaults to
          on unless [POLARIS_NO_CACHE=1] is in the environment; purely a
          performance lever, verdicts and output are identical either
          way *)
  pipeline : Registry.pipeline;
      (** which passes run and in what order ({!Registry}); the
          capability flags above still gate each pass individually, so
          [thorough] + the baseline flag set reproduces the classic
          baseline behaviour *)
}

(** The full Polaris configuration (paper §3). *)
let polaris ?(procs = 8) () =
  { name = "polaris"; inline = true; constprop = true;
    generalized_induction = true; mode = Passes.Parallelize.Polaris;
    deadcode = true; procs;
    budget_steps = Dep.Driver.default_budget_steps;
    budget_deadline_s = None;
    caches = Util.Cachectl.default_enabled;
    pipeline = Registry.thorough }

(** The baseline configuration standing in for SGI's PFA: the
    capability set the paper ascribes to "current compilers". *)
let baseline ?(procs = 8) () =
  { name = "baseline"; inline = false; constprop = true;
    generalized_induction = false; mode = Passes.Parallelize.Baseline;
    deadcode = true; procs;
    budget_steps = Dep.Driver.default_budget_steps;
    budget_deadline_s = None;
    caches = Util.Cachectl.default_enabled;
    pipeline = Registry.thorough }

(** Ablations: Polaris minus one technique, for the ablation bench. *)
let without_inline ?(procs = 8) () =
  { (polaris ~procs ()) with name = "polaris-noinline"; inline = false }

let without_generalized_induction ?(procs = 8) () =
  { (polaris ~procs ()) with
    name = "polaris-simple-induction";
    generalized_induction = false }

(** [with_pipeline pl config]: run [config]'s capability set through
    pipeline [pl].  The report label keeps the configuration name and
    appends the pipeline's when it is not the default. *)
let with_pipeline (pl : Registry.pipeline) (c : t) : t =
  { c with
    pipeline = pl;
    name =
      (if pl.pl_name = Registry.thorough.pl_name then c.name
       else c.name ^ "+" ^ pl.pl_name) }
