(** The pass pipeline: source in, annotated parallel source + report out.

    Order (paper §3): inline expansion → constant/copy propagation →
    induction substitution → another propagation round (the TRFD
    [X = X0] cleanup) → reduction/dependence/privatization analysis
    (the parallelize driver).  The baseline configuration runs the same
    skeleton with the weaker capability set.

    {b Fail-safe contract} (paper §2: a restructurer must never
    miscompile).  Every pass runs inside a fault-containment guard: a
    unit is snapshotted copy-on-write at its {e first} mutation across
    the whole pipeline (deep-copied wholesale per pass under [strict]
    or a chaos [fault_hook]), the pass result is re-checked with
    {!Fir.Consistency}, and any exception or consistency violation
    rolls the program back — restoring the first-touch snapshots and
    replaying the passes that already succeeded — disables the guilty
    capability for the rest of the run, and appends an {!incident}
    record.  [run]/[compile] therefore never raise past
    parse errors (unless [strict] is set): the worst possible output is
    the original program compiled serially, plus a non-empty
    [incidents] list. *)

type loop_result = {
  unit_name : string;
  report : Passes.Parallelize.loop_report;
}

(** One contained pass failure. *)
type incident = {
  inc_pass : string;      (** guarded pass that failed *)
  inc_reason : string;    (** exception / violation, backtrace-free *)
  inc_rolled_back : bool; (** program restored to the pre-pass snapshot *)
  inc_disabled : string option;
      (** capability disabled for the remainder of the run, if any *)
}

(** Per-pass analysis-reuse ledger entry: what the pass declared it
    consumes, and how the tracked analysis caches behaved while it ran
    (hit/miss/invalidation deltas from {!Util.Cachectl} and
    {!Analysis.Manager}).  The raw material of [polaris
    --explain-reuse]. *)
type pass_reuse = {
  pr_pass : string;               (** guarded pass name *)
  pr_consumes : string list;      (** analyses the pass declares it reads *)
  pr_cache : (string * int * int) list;
      (** (analysis, hits, misses) growth during the pass — tracked
          analyses with at least one lookup *)
  pr_invalidated : (string * int) list;
      (** (analysis, stale entries found) growth during the pass *)
}

type t = {
  config : Config.t;
  program : Fir.Program.t;        (** transformed, annotated program *)
  loops : loop_result list;
  inductions : (string * string) list;  (** substituted induction vars *)
  inline_stats : Passes.Inline.stats option;
  incidents : incident list;      (** contained pass failures, in order *)
  reuse : pass_reuse list;        (** per-pass analysis reuse, in pass order *)
}

let pp_incident ppf (i : incident) =
  Fmt.pf ppf "incident in pass '%s': %s%s%s" i.inc_pass i.inc_reason
    (if i.inc_rolled_back then " [rolled back]" else "")
    (match i.inc_disabled with
    | Some c -> Fmt.str " [capability '%s' disabled]" c
    | None -> "")

(** Run the configured pipeline on a parsed program (the program is
    transformed in place and returned in the result).

    [observer] is invoked after each pass that ran {e and survived its
    guard}, with the pass name and the (in-place mutated) program — the
    hook the translation-validation oracle ({!Valid.Snapshot}) and the
    flight recorder ({!Valid.Trace}) use to snapshot intermediate states
    and localize a divergence to the pass that introduced it.  The first
    event is ["parse"], before any transformation.  A rolled-back pass
    is not observed: its (discarded) effect is invisible downstream.

    [fault_hook] is invoked {e inside} the guard, right after the pass
    body and before the post-pass consistency check — the seam the chaos
    injector ({!Valid.Chaos}) uses to raise exceptions or corrupt the IR
    at a pass boundary and have the fault attributed to that pass.

    [strict] disables containment: the first fault re-raises (the
    debugging mode behind [polaris --strict]). *)
let run ?(strict = false) ?(observer : (string -> Fir.Program.t -> unit) option)
    ?(fault_hook : (string -> Fir.Program.t -> unit) option)
    (config : Config.t) (program : Fir.Program.t) : t =
  (* an ill-formed pipeline is a configuration error, not a compile
     fault: refuse up front instead of running passes out of order *)
  (match Registry.check config.pipeline with
  | Ok () -> ()
  | Error m -> invalid_arg ("Pipeline.run: " ^ m));
  Util.Cachectl.with_enabled config.caches @@ fun () ->
  let obs name = match observer with Some f -> f name program | None -> () in
  let incidents = ref [] in
  let reuse = ref [] in
  let disabled = ref [] in
  let enabled cap = not (List.mem cap !disabled) in
  (* Snapshot strategy.  Under [strict] or an installed [fault_hook]
     (chaos runs) the guard deep-copies the whole program per pass and
     re-checks every unit: injected faults corrupt arbitrary units
     behind the passes' backs, so nothing weaker is sound.  Otherwise
     the guard is copy-on-write with {e pipeline-level} snapshot
     elision: passes announce each unit they are about to mutate
     through the {!Fir.Program.touch} seam, and the guard deep-copies a
     unit only on its {e first} touch in the whole pipeline run (the
     [pristine] map below) — a unit rewritten by four passes is copied
     once, not four times.  Per pass the guard tracks only the touched
     units' identities for the post-pass consistency re-check.  On a
     fault the guard rolls every pristine-snapshotted unit back to its
     pre-pipeline state and deterministically {e replays} the passes
     that already succeeded (the [completed] thunks), reproducing the
     state the per-pass scheme would have restored directly; the
     observer and the reuse ledger are not re-fired during replay.
     Replay is fault-free by construction — it re-runs deterministic
     passes on the same pre-pipeline state they succeeded on — but if
     it ever diverges the program is reset to its parse state, which
     still satisfies the fail-safe contract. *)
  let full_guard = strict || fault_hook <> None in
  (* (live unit, deep copy at its first-ever touch) — grows monotonically
     across passes; the rollback baseline for the COW guard *)
  let pristine : (Fir.Punit.t * Fir.Punit.t) list ref = ref [] in
  (* replay thunks of the guarded passes that succeeded, newest first *)
  let completed : (unit -> unit) list ref = ref [] in
  (* run one pass under the containment guard; [disables] is the
     capability to switch off if the pass faults (its later runs are
     skipped — e.g. a crashed first propagation round disables the
     second).  [consumes] is the pass's declared analysis inputs: the
     guard brackets the pass with tracked-cache counter snapshots and
     appends a {!pass_reuse} ledger entry on success. *)
  let guard :
      'a.
      pass:string ->
      ?disables:string ->
      ?consumes:string list ->
      (unit -> 'a) ->
      'a option =
   fun ~pass ?disables ?(consumes = []) f ->
    let tracked = Analysis.Manager.tracked () in
    let cache_base = Util.Cachectl.snapshot () in
    let inval_base = Analysis.Manager.invalidation_snapshot () in
    let dirty : Fir.Punit.t list ref = ref [] in
    let snapshot =
      if full_guard then Some (Fir.Program.copy program)
      else begin
        Fir.Program.set_touch_hook program
          (Some
             (fun u ->
               if not (List.memq u !dirty) then dirty := u :: !dirty;
               if not (List.exists (fun (live, _) -> live == u) !pristine)
               then pristine := (u, Fir.Punit.copy u) :: !pristine));
        None
      end
    in
    let release () = Fir.Program.set_touch_hook program None in
    match
      Fun.protect ~finally:release (fun () ->
          let v = f () in
          (match fault_hook with Some h -> h pass program | None -> ());
          (match snapshot with
          | Some _ -> ignore (Fir.Consistency.check program : Fir.Program.t)
          | None ->
            (* unit-local re-checks of the touched units; at -j > 1
               the checks fan out across domains (each reads one unit,
               writes nothing) and Pool.map's earliest-failure merge
               re-raises the same violation the serial left-to-right
               iteration would *)
            ignore
              (Util.Pool.map
                 (fun live -> Fir.Consistency.check_unit live)
                 !dirty
                : unit list));
          v)
    with
    | v ->
      (* the pass may have rewritten the program: retire every cache
         entry keyed on pre-pass program state *)
      Util.Cachectl.bump_generation ();
      reuse :=
        { pr_pass = pass;
          pr_consumes = consumes;
          pr_cache =
            Util.Cachectl.delta ~base:cache_base (Util.Cachectl.snapshot ())
            |> List.filter (fun (name, h, m) ->
                   List.mem name tracked && h + m > 0);
          pr_invalidated =
            Analysis.Manager.invalidation_delta ~base:inval_base
              (Analysis.Manager.invalidation_snapshot ())
            |> List.filter (fun (_, n) -> n > 0) }
        :: !reuse;
      obs pass;
      if not full_guard then completed := (fun () -> ignore (f ())) :: !completed;
      Some v
    | exception e ->
      if strict then raise e;
      let reason =
        ref
          (match e with
          | Fir.Consistency.Violation m ->
            "post-pass IR consistency violation: " ^ m
          | e -> Printexc.to_string e)
      in
      (match snapshot with
      | Some s -> Fir.Program.restore ~from:s program
      | None ->
        (* COW rollback: reset every ever-touched unit to its
           pre-pipeline snapshot, then replay the already-succeeded
           passes in order to rebuild the state this pass started from.
           Replay mutations bump unit versions through the touch seam
           and the generation bump below retires cross-pass cache
           entries, so no cache can serve facts about the discarded
           intermediate states. *)
        List.iter (fun (live, snap) -> Fir.Punit.restore ~from:snap live)
          !pristine;
        Util.Cachectl.bump_generation ();
        (try
           List.iter
             (fun replay ->
               replay ();
               Util.Cachectl.bump_generation ())
             (List.rev !completed)
         with re ->
           (* A deterministic pass that succeeded before diverged on
              replay — should be impossible.  Fall back to the parse
              state (fail-safe: worst output is the original program). *)
           List.iter (fun (live, snap) -> Fir.Punit.restore ~from:snap live)
             !pristine;
           completed := [];
           reason :=
             !reason
             ^ Printf.sprintf
                 " (replay of prior passes failed: %s; program reset to \
                  parse state)"
                 (Printexc.to_string re)));
      (* rollback rewrote the program too (fresh statement ids): stale
         hits after an incident must be impossible *)
      Util.Cachectl.bump_generation ();
      Option.iter (fun c -> disabled := c :: !disabled) disables;
      incidents :=
        { inc_pass = pass; inc_reason = !reason; inc_rolled_back = true;
          inc_disabled = disables }
        :: !incidents;
      None
  in
  obs "parse";
  (* The pipeline is data ({!Registry.pipeline}), and this loop is its
     interpreter: one dispatch arm per {!Pass_id}, each arm preserving
     the exact gating and guard parameters the hard-coded sequence
     used — [thorough] under the default flags is byte-identical to the
     pre-registry compiler.  The guard's COW/rollback machinery is
     oblivious to which passes run or in what order. *)
  let inline_stats = ref None in
  let inductions = ref [] in
  let reports = ref [] in
  let run_pass (p : Pass_id.t) =
    let pass = Pass_id.name p in
    let disables = Pass_id.disables p in
    let consumes = Pass_id.consumes p in
    match p with
    | Pass_id.Inline ->
      if config.inline then
        inline_stats :=
          guard ~pass ~disables ~consumes (fun () -> Passes.Inline.run program)
    | Pass_id.Constprop ->
      if config.constprop then
        ignore
          (guard ~pass ~disables ~consumes (fun () ->
               Passes.Constprop.run program))
    | Pass_id.Induction ->
      inductions :=
        Option.value ~default:[]
          (guard ~pass ~disables ~consumes (fun () ->
               Passes.Induction.run ~generalized:config.generalized_induction
                 program))
    | Pass_id.Constprop2 ->
      if config.constprop && enabled "constprop" then
        ignore
          (guard ~pass ~disables ~consumes (fun () ->
               Passes.Constprop.run program))
    | Pass_id.Deadcode ->
      if config.deadcode then
        ignore
          (guard ~pass ~disables ~consumes (fun () ->
               ignore (Passes.Deadcode.run program)))
    | Pass_id.Parallelize ->
      reports :=
        Option.value ~default:[]
          (guard ~pass ~disables ~consumes (fun () ->
               Dep.Driver.with_budget ~steps:config.budget_steps
                 ?deadline_s:config.budget_deadline_s (fun () ->
                   Passes.Parallelize.run ~mode:config.mode program)))
  in
  List.iter run_pass config.pipeline.pl_passes;
  let inline_stats = !inline_stats in
  let inductions = !inductions in
  let reports = !reports in
  let loops =
    List.concat_map
      (fun (unit_name, rs) ->
        List.map (fun report -> { unit_name; report }) rs)
      reports
  in
  { config; program; loops; inductions; inline_stats;
    incidents = List.rev !incidents; reuse = List.rev !reuse }

(** Parse Fortran source and run the pipeline. *)
let compile ?strict ?observer ?fault_hook (config : Config.t)
    (source : string) : t =
  (* scope the cache switch around the parse too, so expression
     hash-consing follows [config.caches] *)
  Util.Cachectl.with_enabled config.caches @@ fun () ->
  run ?strict ?observer ?fault_hook config
    (Frontend.Parser.parse_string source)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let parallel_loops (t : t) =
  List.filter (fun l -> l.report.parallel) t.loops

let serial_loops (t : t) =
  List.filter (fun l -> not l.report.parallel) t.loops

let speculative_candidates (t : t) =
  List.filter (fun l -> l.report.speculative) t.loops

(** True when every pass survived its guard. *)
let clean (t : t) = t.incidents = []

(** Annotated Fortran source of the transformed program. *)
let output_source (t : t) = Frontend.Unparse.program_to_string t.program

let pp_summary ppf (t : t) =
  Fmt.pf ppf "pipeline %s: %d/%d loops parallel@." t.config.name
    (List.length (parallel_loops t))
    (List.length t.loops);
  List.iter
    (fun l ->
      Fmt.pf ppf "  [%s] DO %-8s %s%s -- %s@." l.unit_name
        l.report.loop_index
        (if l.report.parallel then "PARALLEL" else "serial  ")
        (if l.report.speculative then " (speculative candidate)" else "")
        l.report.reason)
    t.loops;
  if t.incidents <> [] then begin
    Fmt.pf ppf "  compiled with %d incident(s):@." (List.length t.incidents);
    List.iter (fun i -> Fmt.pf ppf "    %a@." pp_incident i) t.incidents
  end
