(** The pass pipeline: source in, annotated parallel source + report out.

    Order (paper §3): inline expansion → constant/copy propagation →
    induction substitution → another propagation round (the TRFD
    [X = X0] cleanup) → reduction/dependence/privatization analysis
    (the parallelize driver).  The baseline configuration runs the same
    skeleton with the weaker capability set. *)

type loop_result = {
  unit_name : string;
  report : Passes.Parallelize.loop_report;
}

type t = {
  config : Config.t;
  program : Fir.Program.t;        (** transformed, annotated program *)
  loops : loop_result list;
  inductions : (string * string) list;  (** substituted induction vars *)
  inline_stats : Passes.Inline.stats option;
}

(** Run the configured pipeline on a parsed program (the program is
    transformed in place and returned in the result).

    [observer] is invoked after each pass that actually ran, with the
    pass name and the (in-place mutated) program — the hook the
    translation-validation oracle ({!Valid.Snapshot}) and the flight
    recorder ({!Valid.Trace}) use to snapshot intermediate states and
    localize a divergence to the pass that introduced it.  The first
    event is ["parse"], before any transformation. *)
let run ?(observer : (string -> Fir.Program.t -> unit) option)
    (config : Config.t) (program : Fir.Program.t) : t =
  let obs name = match observer with Some f -> f name program | None -> () in
  obs "parse";
  let inline_stats =
    if config.inline then begin
      let s = Passes.Inline.run program in
      obs "inline";
      Some s
    end
    else None
  in
  if config.constprop then begin
    Passes.Constprop.run program;
    obs "constprop"
  end;
  let inductions =
    Passes.Induction.run ~generalized:config.generalized_induction program
  in
  obs "induction";
  if config.constprop then begin
    Passes.Constprop.run program;
    obs "constprop2"
  end;
  if config.deadcode then begin
    ignore (Passes.Deadcode.run program);
    obs "deadcode"
  end;
  let reports = Passes.Parallelize.run ~mode:config.mode program in
  obs "parallelize";
  let loops =
    List.concat_map
      (fun (unit_name, rs) ->
        List.map (fun report -> { unit_name; report }) rs)
      reports
  in
  { config; program; loops; inductions; inline_stats }

(** Parse Fortran source and run the pipeline. *)
let compile ?observer (config : Config.t) (source : string) : t =
  run ?observer config (Frontend.Parser.parse_string source)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let parallel_loops (t : t) =
  List.filter (fun l -> l.report.parallel) t.loops

let serial_loops (t : t) =
  List.filter (fun l -> not l.report.parallel) t.loops

let speculative_candidates (t : t) =
  List.filter (fun l -> l.report.speculative) t.loops

(** Annotated Fortran source of the transformed program. *)
let output_source (t : t) = Frontend.Unparse.program_to_string t.program

let pp_summary ppf (t : t) =
  Fmt.pf ppf "pipeline %s: %d/%d loops parallel@." t.config.name
    (List.length (parallel_loops t))
    (List.length t.loops);
  List.iter
    (fun l ->
      Fmt.pf ppf "  [%s] DO %-8s %s%s -- %s@." l.unit_name
        l.report.loop_index
        (if l.report.parallel then "PARALLEL" else "serial  ")
        (if l.report.speculative then " (speculative candidate)" else "")
        l.report.reason)
    t.loops
