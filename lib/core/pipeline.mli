(** The pass pipeline: Fortran source in, annotated parallel program and
    per-loop reports out.

    Pass order (paper §3): inline expansion → constant/copy propagation
    → induction substitution → propagation again → dead-code cleanup →
    reduction/dependence/privatization analysis. *)

type loop_result = {
  unit_name : string;                      (** enclosing program unit *)
  report : Passes.Parallelize.loop_report; (** the loop's verdict *)
}

type t = {
  config : Config.t;
  program : Fir.Program.t;   (** transformed, annotated program *)
  loops : loop_result list;  (** one entry per loop, outer before inner *)
  inductions : (string * string) list;
      (** substituted induction variables with their region loop *)
  inline_stats : Passes.Inline.stats option;
}

(** Run the configured pipeline on a parsed program (transformed in
    place and returned in the result).

    [observer] is called after each pass that actually ran with the pass
    name and the (mutated) program; the first event is ["parse"].  The
    translation-validation oracle ({!Valid.Snapshot}) and the flight
    recorder ({!Valid.Trace}) hook in here to snapshot intermediate
    states and localize divergences to the pass that introduced them. *)
val run :
  ?observer:(string -> Fir.Program.t -> unit) -> Config.t -> Fir.Program.t -> t

(** Parse Fortran source and run the pipeline.
    @raise Frontend.Parser.Error on syntax errors. *)
val compile : ?observer:(string -> Fir.Program.t -> unit) -> Config.t -> string -> t

val parallel_loops : t -> loop_result list
val serial_loops : t -> loop_result list

(** Loops defeated only by subscripted subscripts: candidates for the
    run-time PD test (paper §3.5). *)
val speculative_candidates : t -> loop_result list

(** Annotated Fortran source of the transformed program ([CPOLARIS$]
    directives); re-parses with {!Frontend.Parser}. *)
val output_source : t -> string

(** Human-readable per-loop summary. *)
val pp_summary : Format.formatter -> t -> unit
