(** The pass pipeline: Fortran source in, annotated parallel program and
    per-loop reports out.

    Pass order (paper §3): inline expansion → constant/copy propagation
    → induction substitution → propagation again → dead-code cleanup →
    reduction/dependence/privatization analysis.

    {b Fail-safe contract.}  Every pass runs inside a fault-containment
    guard: a unit is snapshotted copy-on-write at its first mutation in
    the whole pipeline run (through the {!Fir.Program.touch} seam;
    under [strict] or a [fault_hook] the whole program is deep-copied
    per pass instead), the result is re-checked with {!Fir.Consistency}
    (dirty units only, or the whole program under the full guard), and
    any exception or consistency violation rolls the program back —
    first-touch snapshots restored and the already-succeeded passes
    replayed — disables the guilty capability for the rest of the run,
    and appends an {!incident} record.  [run]/[compile] never raise past parse
    errors (unless [strict] is set): the worst possible output is the
    original program compiled serially, plus a non-empty incident
    list.

    {b Caches.}  [run]/[compile] scope {!Util.Cachectl.enabled} to
    [config.caches] and bump the cache invalidation generation after
    every guarded pass and every rollback, so the compile-time caches
    can never serve results derived from a rewritten-away program
    state. *)

type loop_result = {
  unit_name : string;                      (** enclosing program unit *)
  report : Passes.Parallelize.loop_report; (** the loop's verdict *)
}

(** One contained pass failure. *)
type incident = {
  inc_pass : string;      (** guarded pass that failed *)
  inc_reason : string;    (** exception / consistency violation *)
  inc_rolled_back : bool; (** program restored to the pre-pass snapshot *)
  inc_disabled : string option;
      (** capability disabled for the remainder of the run, if any *)
}

(** Per-pass analysis-reuse ledger entry: what the pass declared it
    consumes and how the tracked analysis caches behaved while it ran.
    The raw material of [polaris --explain-reuse]. *)
type pass_reuse = {
  pr_pass : string;               (** guarded pass name *)
  pr_consumes : string list;      (** analyses the pass declares it reads *)
  pr_cache : (string * int * int) list;
      (** (analysis, hits, misses) growth during the pass *)
  pr_invalidated : (string * int) list;
      (** (analysis, stale entries found) growth during the pass *)
}

type t = {
  config : Config.t;
  program : Fir.Program.t;   (** transformed, annotated program *)
  loops : loop_result list;  (** one entry per loop, outer before inner *)
  inductions : (string * string) list;
      (** substituted induction variables with their region loop *)
  inline_stats : Passes.Inline.stats option;
  incidents : incident list; (** contained pass failures, in order *)
  reuse : pass_reuse list;   (** per-pass analysis reuse, in pass order *)
}

val pp_incident : Format.formatter -> incident -> unit

(** Run the configured pipeline on a parsed program (transformed in
    place and returned in the result).

    [observer] is called after each pass that ran and survived its
    guard, with the pass name and the (mutated) program; the first event
    is ["parse"].  The translation-validation oracle ({!Valid.Snapshot})
    and the flight recorder ({!Valid.Trace}) hook in here to snapshot
    intermediate states and localize divergences to the pass that
    introduced them.  A rolled-back pass is not observed.

    [fault_hook] runs {e inside} each pass's guard, after the pass body
    and before the consistency check — the fault-injection seam used by
    {!Valid.Chaos}.

    [strict] disables containment: the first fault re-raises. *)
val run :
  ?strict:bool ->
  ?observer:(string -> Fir.Program.t -> unit) ->
  ?fault_hook:(string -> Fir.Program.t -> unit) ->
  Config.t -> Fir.Program.t -> t

(** Parse Fortran source and run the pipeline.
    @raise Frontend.Parser.Error on syntax errors. *)
val compile :
  ?strict:bool ->
  ?observer:(string -> Fir.Program.t -> unit) ->
  ?fault_hook:(string -> Fir.Program.t -> unit) ->
  Config.t -> string -> t

val parallel_loops : t -> loop_result list
val serial_loops : t -> loop_result list

(** Loops defeated only by subscripted subscripts: candidates for the
    run-time PD test (paper §3.5). *)
val speculative_candidates : t -> loop_result list

(** True when every pass survived its guard (no incidents). *)
val clean : t -> bool

(** Annotated Fortran source of the transformed program ([CPOLARIS$]
    directives); re-parses with {!Frontend.Parser}. *)
val output_source : t -> string

(** Human-readable per-loop summary, including incidents if any. *)
val pp_summary : Format.formatter -> t -> unit
