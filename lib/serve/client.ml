(** The thin daemon client: connect, frame requests, decode responses.

    The client owns the filesystem side of a session — it reads source
    files and ships their {e text} to the daemon — so the daemon never
    depends on the client's working directory.  A file that cannot be
    read is a per-file failure: the session continues with the rest and
    the overall exit is non-zero, mirroring `polaris serve`. *)

type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* carry-over bytes between [recv] calls *)
}

(** Connect to the daemon at [socket].  Retries for up to [wait_s]
    (default 5s) while the socket does not exist yet or refuses — the
    common race when the daemon was just spawned. *)
let connect ?(wait_s = 5.0) (socket : string) : (t, string) result =
  let deadline = Unix.gettimeofday () +. wait_s in
  let rec attempt () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Ok { fd; buf = Buffer.create 4096 }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when Unix.gettimeofday () < deadline ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.05;
      attempt ()
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to daemon at %s: %s" socket
           (Unix.error_message e))
  in
  attempt ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(** Send one request; the response arrives via {!recv}.  Pipelining is
    allowed: the daemon answers strictly in request order. *)
let send t (req : Protocol.request) =
  Protocol.send t.fd (Protocol.encode_request req)

(** Receive the next response; [Error] on EOF or a protocol violation. *)
let recv t : (Protocol.response, string) result =
  match Protocol.recv t.fd t.buf with
  | None -> Error "daemon closed the connection"
  | Some payload -> (
    match Protocol.decode_response payload with
    | r -> Ok r
    | exception Protocol.Malformed m -> Error ("malformed response: " ^ m))
  | exception Protocol.Malformed m -> Error ("broken connection: " ^ m)
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let roundtrip t req =
  match send t req with
  | () -> recv t
  | exception Protocol.Malformed m -> Error ("send failed: " ^ m)
  | exception Unix.Unix_error (e, _, _) -> Error ("send failed: " ^ Unix.error_message e)

(* ------------------------------------------------------------------ *)
(* Convenience requests                                                *)

let compile_source t ?(check = false) ?(baseline = false) ~label source :
    (Protocol.compile_reply, string) result =
  match
    roundtrip t
      (Protocol.Compile
         { cr_label = label; cr_source = source; cr_check = check;
           cr_baseline = baseline })
  with
  | Ok (Protocol.Compiled r) -> Ok r
  | Ok (Protocol.Error_r m) -> Error m
  | Ok _ -> Error "unexpected response kind"
  | Error m -> Error m

(** Read [path] locally and compile it on the daemon.  An unreadable
    path is a per-file [Error], never a session abort. *)
let compile_path t ?check ?baseline (path : string) :
    (Protocol.compile_reply, string) result =
  match Local.read_file path with
  | exception Sys_error msg -> Error msg
  | source -> compile_source t ?check ?baseline ~label:path source

let stats t : (string, string) result =
  match roundtrip t Protocol.Stats with
  | Ok (Protocol.Stats_reply j) -> Ok j
  | Ok (Protocol.Error_r m) -> Error m
  | Ok _ -> Error "unexpected response kind"
  | Error m -> Error m

(** Ask the daemon to drain, flush and exit. *)
let shutdown t : (unit, string) result =
  match roundtrip t Protocol.Shutdown with
  | Ok Protocol.Bye -> Ok ()
  | Ok (Protocol.Error_r m) -> Error m
  | Ok _ -> Error "unexpected response kind"
  | Error m -> Error m
