(** The daemon client: connect, frame requests, decode responses —
    and survive a hostile network doing it.

    The client owns the filesystem side of a session — it reads source
    files and ships their {e text} to the daemon — so the daemon never
    depends on the client's working directory.  A file that cannot be
    read is a per-file failure: the session continues with the rest and
    the overall exit is non-zero, mirroring `polaris serve`.

    {b Resilience} (PR 7).  All transport goes through an {!io} record
    — the seam {!Chaosnet} substitutes to inject faults — and every
    receive honours an optional per-request wall deadline, so a stalled
    or dead daemon costs bounded time, never a hang.  {!compile_retry}
    layers recovery on top: each attempt is a {e fresh connection}
    (the daemon closes a session it rejected, and a torn frame poisons
    a connection's framing for good), failed attempts back off
    exponentially, and only {e transient} failures are retried —
    transport errors, timeouts, [Busy] sheds and [Rejected] frames.
    An application-level [Error_r] (bad source) is deterministic and
    final: retrying would recompute the same verdict.  Compiles are
    deterministic and side-effect-free per request, so resending one is
    idempotent-safe by construction. *)

(** The transport seam.  [io_send fd wire] writes the complete framed
    bytes; [io_read] has the [Unix.read] signature and feeds
    {!Protocol.recv}.  {!Chaosnet.io} wraps both with seeded faults. *)
type io = {
  io_send : Unix.file_descr -> string -> unit;
  io_read : Unix.file_descr -> Bytes.t -> int -> int -> int;
}

let plain_io = { io_send = Protocol.write_all; io_read = Unix.read }

type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* carry-over bytes between [recv] calls *)
  io : io;
  deadline_s : float option;  (* per-request wall deadline *)
}

(** Connect to the daemon at [socket].  Retries for up to [wait_s]
    (default 5s) while the socket does not exist yet or refuses — the
    common race when the daemon was just spawned.  [deadline_s] bounds
    every subsequent {!recv} on this connection. *)
let connect ?(wait_s = 5.0) ?(io = plain_io) ?deadline_s (socket : string) :
    (t, string) result =
  let deadline = Unix.gettimeofday () +. wait_s in
  let rec attempt () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Ok { fd; buf = Buffer.create 4096; io; deadline_s }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when Unix.gettimeofday () < deadline ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.05;
      attempt ()
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to daemon at %s: %s" socket
           (Unix.error_message e))
  in
  attempt ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(** Send one request; the response arrives via {!recv}.  Pipelining is
    allowed: the daemon answers strictly in request order. *)
let send t (req : Protocol.request) =
  t.io.io_send t.fd (Protocol.frame (Protocol.encode_request req))

(** Receive the next response; [Error] on EOF, a protocol violation, or
    the connection deadline.  Every [Error] here is transport-level and
    therefore transient: a fresh connection may succeed. *)
let recv t : (Protocol.response, string) result =
  let deadline =
    Option.map (fun s -> Unix.gettimeofday () +. s) t.deadline_s
  in
  match Protocol.recv ~read:t.io.io_read ?deadline t.fd t.buf with
  | None -> Error "daemon closed the connection"
  | Some payload -> (
    match Protocol.decode_response payload with
    | r -> Ok r
    | exception Protocol.Malformed m -> Error ("malformed response: " ^ m))
  | exception Protocol.Malformed m -> Error ("broken connection: " ^ m)
  | exception Protocol.Timeout -> Error "request deadline exceeded"
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let roundtrip t req =
  match send t req with
  | () -> recv t
  | exception Protocol.Malformed m -> Error ("send failed: " ^ m)
  | exception Unix.Unix_error (e, _, _) ->
    Error ("send failed: " ^ Unix.error_message e)

(* ------------------------------------------------------------------ *)
(* Convenience requests                                                *)

let compile_source t ?(check = false) ?(baseline = false) ?(pipeline = "")
    ?(backend = "") ~label source : (Protocol.compile_reply, string) result =
  match
    roundtrip t
      (Protocol.Compile
         { cr_label = label; cr_source = source; cr_check = check;
           cr_baseline = baseline; cr_pipeline = pipeline;
           cr_backend = backend })
  with
  | Ok (Protocol.Compiled r) -> Ok r
  | Ok (Protocol.Error_r m) -> Error m
  | Ok Protocol.Busy -> Error "daemon busy (admission cap reached)"
  | Ok (Protocol.Rejected m) -> Error ("rejected: " ^ m)
  | Ok _ -> Error "unexpected response kind"
  | Error m -> Error m

(** Read [path] locally and compile it on the daemon.  An unreadable
    path is a per-file [Error], never a session abort. *)
let compile_path t ?check ?baseline ?pipeline ?backend (path : string) :
    (Protocol.compile_reply, string) result =
  match Local.read_file path with
  | exception Sys_error msg -> Error msg
  | source ->
    compile_source t ?check ?baseline ?pipeline ?backend ~label:path source

let stats t : (string, string) result =
  match roundtrip t Protocol.Stats with
  | Ok (Protocol.Stats_reply j) -> Ok j
  | Ok (Protocol.Error_r m) -> Error m
  | Ok _ -> Error "unexpected response kind"
  | Error m -> Error m

(** Liveness probe: true iff the daemon answered [Pong]. *)
let ping t : (unit, string) result =
  match roundtrip t Protocol.Ping with
  | Ok Protocol.Pong -> Ok ()
  | Ok _ -> Error "unexpected response kind"
  | Error m -> Error m

(** Ask the daemon to drain, flush and exit. *)
let shutdown t : (unit, string) result =
  match roundtrip t Protocol.Shutdown with
  | Ok Protocol.Bye -> Ok ()
  | Ok (Protocol.Error_r m) -> Error m
  | Ok _ -> Error "unexpected response kind"
  | Error m -> Error m

(* ------------------------------------------------------------------ *)
(* Retry                                                               *)

(* exponential backoff, capped: 50ms, 100ms, 200ms, ... 1s, 1s, ... *)
let backoff_s attempt = Float.min 1.0 (0.05 *. Float.pow 2.0 (float_of_int (attempt - 1)))

(** [compile_retry ~socket ~label source]: compile with recovery.  Up
    to [1 + retries] attempts, each over a fresh connection, backing
    off exponentially between them; [deadline_s] bounds each attempt's
    wait for the response.  Transient failures (connect failure,
    transport error, deadline, [Busy], [Rejected]) are retried;
    [Compiled] and [Error_r] are final.  Determinism makes the resend
    safe: a retried compile yields a byte-identical result. *)
let compile_retry ?(retries = 0) ?deadline_s ?io ?(connect_wait_s = 5.0)
    ?(check = false) ?(baseline = false) ?(pipeline = "") ?(backend = "")
    ~socket ~label source : (Protocol.compile_reply, string) result =
  let attempts = 1 + max 0 retries in
  let rec go n last_err =
    if n > attempts then
      Error
        (Printf.sprintf "giving up after %d attempt%s: %s" attempts
           (if attempts = 1 then "" else "s")
           last_err)
    else begin
      if n > 1 then Unix.sleepf (backoff_s (n - 1));
      match connect ~wait_s:connect_wait_s ?io ?deadline_s socket with
      | Error m -> go (n + 1) m
      | Ok t ->
        let verdict =
          match
            roundtrip t
              (Protocol.Compile
                 { cr_label = label; cr_source = source; cr_check = check;
                   cr_baseline = baseline; cr_pipeline = pipeline;
                   cr_backend = backend })
          with
          | Ok (Protocol.Compiled r) -> `Final (Ok r)
          | Ok (Protocol.Error_r m) -> `Final (Error m)  (* deterministic *)
          | Ok Protocol.Busy -> `Transient "daemon busy (admission cap reached)"
          | Ok (Protocol.Rejected m) -> `Transient ("rejected: " ^ m)
          | Ok _ -> `Transient "unexpected response kind"
          | Error m -> `Transient m
        in
        close t;
        (match verdict with
        | `Final r -> r
        | `Transient m -> go (n + 1) m)
    end
  in
  go 1 "no attempt made"
