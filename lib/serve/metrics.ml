(** Per-session and server-wide observability for the compile daemon.

    Every request is timed server-side; sessions accumulate request
    counts, contained incidents, errors, and the two reuse telemetries:
    the {e tracked} rate over every analysis cache (what
    `polaris serve` reports) and the {e shared} rate over the
    persistent caches only — the facts that actually cross session and
    process boundaries through {!Store}.  The [Stats] request and the
    JSON server log are rendered from these records. *)

(* ------------------------------------------------------------------ *)
(* Latency recorder                                                    *)

type recorder = {
  mutable samples : float list;  (** seconds, most recent first *)
  mutable n : int;
  mutable sum : float;
}

let recorder () = { samples = []; n = 0; sum = 0.0 }

let add r dt =
  r.samples <- dt :: r.samples;
  r.n <- r.n + 1;
  r.sum <- r.sum +. dt

(** [percentile r p]: the [p]-th percentile (0..100, nearest-rank) of
    the recorded samples; 0 when empty. *)
let percentile r p =
  match r.samples with
  | [] -> 0.0
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let rank = Float.to_int (Float.ceil (p /. 100.0 *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

let mean r = if r.n = 0 then 0.0 else r.sum /. float_of_int r.n

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)

type session = {
  ss_id : int;
  mutable ss_requests : int;
  mutable ss_errors : int;      (** malformed / failed requests (contained) *)
  mutable ss_incidents : int;   (** contained pass faults across compiles *)
  mutable ss_shared_hits : int;
  mutable ss_shared_lookups : int;
  mutable ss_tracked_hits : int;
  mutable ss_tracked_lookups : int;
  ss_lat : recorder;
}

let session id =
  { ss_id = id; ss_requests = 0; ss_errors = 0; ss_incidents = 0;
    ss_shared_hits = 0; ss_shared_lookups = 0; ss_tracked_hits = 0;
    ss_tracked_lookups = 0; ss_lat = recorder () }

type server = {
  sv_started : float;  (** Unix.gettimeofday at daemon start *)
  mutable sv_sessions : int;  (** sessions ever accepted *)
  mutable sv_requests : int;
  mutable sv_errors : int;
  mutable sv_incidents : int;
  (* self-protection telemetry (PR 7): every shed, eviction, protocol
     rejection and store flush is counted so overload behaviour is
     observable, not inferred *)
  mutable sv_shed : int;          (** connections refused with [Busy] at the cap *)
  mutable sv_evicted_slow : int;  (** sessions dropped for an overfull write queue *)
  mutable sv_evicted_idle : int;  (** sessions dropped by the idle timeout *)
  mutable sv_rejects : int;       (** protocol violations answered [Rejected] *)
  mutable sv_flushes : int;       (** periodic store flushes performed *)
  mutable sv_max_pending : int;   (** high-water mark of queued response bytes *)
  sv_lat : recorder;
}

let server ~now = { sv_started = now; sv_sessions = 0; sv_requests = 0;
                    sv_errors = 0; sv_incidents = 0; sv_shed = 0;
                    sv_evicted_slow = 0; sv_evicted_idle = 0; sv_rejects = 0;
                    sv_flushes = 0; sv_max_pending = 0; sv_lat = recorder () }

let rate_of hits lookups =
  if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)

open Valid.Trace

let session_json (s : session) =
  Json.obj
    [ ("session", Json.int s.ss_id);
      ("requests", Json.int s.ss_requests);
      ("errors", Json.int s.ss_errors);
      ("incidents", Json.int s.ss_incidents);
      ("shared_hits", Json.int s.ss_shared_hits);
      ("shared_lookups", Json.int s.ss_shared_lookups);
      ("shared_hit_rate", Json.float (rate_of s.ss_shared_hits s.ss_shared_lookups));
      ("tracked_hit_rate", Json.float (rate_of s.ss_tracked_hits s.ss_tracked_lookups));
      ("p50_ms", Json.float (1000.0 *. percentile s.ss_lat 50.0));
      ("p95_ms", Json.float (1000.0 *. percentile s.ss_lat 95.0));
      ("mean_ms", Json.float (1000.0 *. mean s.ss_lat)) ]

(** The [Stats] reply and the shutdown log line: server totals,
    throughput, latency percentiles, per-session summaries, and the
    persistent store's counters when one is attached. *)
let server_json ~now (sv : server) (sessions : session list)
    (store_json : string option) =
  let uptime = now -. sv.sv_started in
  Json.obj
    ([ ("uptime_s", Json.float uptime);
       ("sessions", Json.int sv.sv_sessions);
       ("requests", Json.int sv.sv_requests);
       ("errors", Json.int sv.sv_errors);
       ("incidents", Json.int sv.sv_incidents);
       ("shed", Json.int sv.sv_shed);
       ("evicted_slow", Json.int sv.sv_evicted_slow);
       ("evicted_idle", Json.int sv.sv_evicted_idle);
       ("rejects", Json.int sv.sv_rejects);
       ("flushes", Json.int sv.sv_flushes);
       ("max_pending_bytes", Json.int sv.sv_max_pending);
       ( "req_per_s",
         Json.float
           (if uptime <= 0.0 then 0.0 else float_of_int sv.sv_requests /. uptime) );
       ("p50_ms", Json.float (1000.0 *. percentile sv.sv_lat 50.0));
       ("p95_ms", Json.float (1000.0 *. percentile sv.sv_lat 95.0));
       ("mean_ms", Json.float (1000.0 *. mean sv.sv_lat));
       ( "per_session",
         Json.arr (List.map session_json (List.sort (fun a b -> compare a.ss_id b.ss_id) sessions)) ) ]
    @ match store_json with None -> [] | Some j -> [ ("store", j) ])
