(** The local (in-process) serve session: shared by `polaris serve`
    and the daemon's request handler.

    One entry point, {!compile_source}, does everything a compile
    request needs: an incremental compile through {!Core.Incremental}
    under a per-request analysis budget, the per-request shared-cache
    accounting, the optional from-scratch verification, and the
    sid-masked verdict rendering the protocol carries.  Pulling this
    out of [bin/polaris_cli.ml] makes the per-file failure behaviour
    testable: a session must {e contain} a bad file — report it, keep
    compiling the rest, and exit non-zero at the end — instead of
    aborting on the first unreadable path. *)

(** Everything one compile request produced. *)
type compiled = {
  lc_result : Core.Incremental.result;
  lc_output : string;
      (** the emitted output source in the requested backend; equals
          [lc_result.outcome.oc_output] for the default [f77] backend *)
  lc_verdicts : string list;       (** sid-masked, one line per loop *)
  lc_shared_hits : int;            (** persistent-cache hits of this compile *)
  lc_shared_lookups : int;
  lc_wall_s : float;
  lc_check_divergences : string list;
      (** empty unless [check] was set and the compile diverged *)
}

let render_verdicts (o : Core.Incremental.outcome) : string list =
  List.map
    (fun (v : Core.Incremental.verdict) ->
      Printf.sprintf "%s DO %s %s%s -- %s" v.v_unit v.v_index
        (if v.v_parallel then "PARALLEL" else "serial")
        (if v.v_speculative then " (speculative)" else "")
        v.v_reason)
    o.oc_verdicts

(* hit/miss growth of the persistent (shared) caches across [f] *)
let with_shared_delta f =
  let shared = Util.Cachectl.persistent_names () in
  let base = Util.Cachectl.snapshot () in
  let r = f () in
  let d =
    Util.Cachectl.delta ~base (Util.Cachectl.snapshot ())
    |> List.filter (fun (n, _, _) -> List.mem n shared)
  in
  let hits = List.fold_left (fun a (_, h, _) -> a + h) 0 d in
  let misses = List.fold_left (fun a (_, _, m) -> a + m) 0 d in
  (r, hits, hits + misses)

(** Compile [source] incrementally (warm caches), optionally verifying
    against a from-scratch compile.  [budget_steps]/[deadline_s] bound
    this one request's dependence analysis — exhaustion degrades
    verdicts to safe serial, it never faults the session.  [backend]
    selects the emission target of [lc_output] (default: the f77
    unparser output the incremental engine already rendered); check
    divergence detection always compares the engine's canonical f77
    output, so the check verdict is backend-independent. *)
let compile_source ?strict ?budget_steps ?deadline_s ?(check = false)
    ?(backend = Backend.Registry.default) (config : Core.Config.t)
    (source : string) : compiled =
  let t0 = Unix.gettimeofday () in
  let (result : Core.Incremental.result), lc_shared_hits, lc_shared_lookups =
    with_shared_delta (fun () ->
        Dep.Driver.with_budget ?steps:budget_steps ?deadline_s (fun () ->
            Core.Incremental.compile ?strict config source))
  in
  let lc_wall_s = Unix.gettimeofday () -. t0 in
  let lc_check_divergences =
    if not check then []
    else
      let fresh =
        Dep.Driver.with_budget ?steps:budget_steps ?deadline_s (fun () ->
            Core.Incremental.scratch ?strict config source)
      in
      Core.Incremental.diverges ~incremental:result.outcome
        ~scratch:fresh.outcome
  in
  let lc_output =
    if backend.Backend.Registry.b_name = Backend.Registry.default.b_name then
      result.outcome.oc_output
    else backend.b_emit result.pipeline.Core.Pipeline.program
  in
  { lc_result = result;
    lc_output;
    lc_verdicts = render_verdicts result.outcome;
    lc_shared_hits; lc_shared_lookups; lc_wall_s; lc_check_divergences }

(* ------------------------------------------------------------------ *)
(* File-based sessions (`polaris serve`)                               *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

(** One file of a serve session.  A path that cannot be read (or whose
    source fails to parse) is a {e per-file} error: the session carries
    on with the remaining files and the caller reports a non-zero exit
    at the end.  Compiler-internal faults still propagate — they are
    bugs, not inputs. *)
let compile_path ?strict ?budget_steps ?deadline_s ?check ?backend
    (config : Core.Config.t) (path : string) : (compiled, string) result =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | source -> (
    match
      compile_source ?strict ?budget_steps ?deadline_s ?check ?backend config
        source
    with
    | c -> Ok c
    | exception Frontend.Lexer.Error m -> Error (path ^ ": lexical error: " ^ m)
    | exception Frontend.Parser.Error m -> Error (path ^ ": syntax error: " ^ m))
