(** Seeded network-fault injection for the compile daemon — the
    transport-level sibling of {!Valid.Chaos} (which injects {e pass}
    faults).

    A chaos transport wraps a client connection's reads and writes
    (the {!Client.io} seam) and perturbs them with every failure mode a
    unix-domain socket can realistically present, drawn from a
    {!Util.Prng} stream so each run is reproducible bit-for-bit from
    its seed:

    - {b byte flips} — one bit of one in-flight byte is inverted.  The
      FNV-1a frame checksum ({!Protocol.frame}) turns every flip into a
      detected [Malformed]: the daemon answers [Rejected] and closes
      the guilty session; the client drops the connection and retries.
      A flip can never be silently compiled or silently accepted.
    - {b torn writes / short reads} — frames split at arbitrary byte
      boundaries, exercising both sides' carry-over buffering.
      Tearing is loss-free, so it must be invisible in the results.
    - {b delays} — sub-frame stalls (≤ 2 ms) between chunks, jittering
      the interleaving the daemon's select loop observes.
    - {b mid-frame disconnects} — the connection closes partway
      through a write or instead of a read ([EPIPE]/[ECONNRESET]).
      The daemon contains the orphaned session; the client's next
      operation fails transiently and a fresh connection retries.

    {!run_sweep} is the convergence harness the chaos tests and the
    storm bench share: against a live daemon it compiles a fixed
    source set through [n] differently-seeded chaos transports with
    {!Client.compile_retry}, and checks every result that converged is
    {e byte-identical} to the from-scratch expectation — chaos may cost
    retries, never correctness. *)

type t = {
  prng : Util.Prng.t;
  p_flip : float;   (** per-operation probability of a bit flip *)
  p_drop : float;   (** per-operation probability of a disconnect *)
  p_tear : float;   (** per-write probability of tearing the frame *)
  p_delay : float;  (** per-operation probability of a small stall *)
  (* observability: what the seed actually did *)
  mutable n_flips : int;
  mutable n_drops : int;
  mutable n_tears : int;
  mutable n_delays : int;
}

let create ?(p_flip = 0.12) ?(p_drop = 0.08) ?(p_tear = 0.5)
    ?(p_delay = 0.3) (seed : int) : t =
  { prng = Util.Prng.create seed; p_flip; p_drop; p_tear; p_delay;
    n_flips = 0; n_drops = 0; n_tears = 0; n_delays = 0 }

let faults t = t.n_flips + t.n_drops + t.n_tears + t.n_delays

let hit t p = Util.Prng.float t.prng < p

let maybe_delay t =
  if hit t t.p_delay then begin
    t.n_delays <- t.n_delays + 1;
    Unix.sleepf (0.002 *. Util.Prng.float t.prng)
  end

(* flip one random bit of [b.(off..off+len)] *)
let flip_in t b off len =
  if len > 0 then begin
    t.n_flips <- t.n_flips + 1;
    let i = off + Util.Prng.int t.prng len in
    Bytes.set b i
      (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Util.Prng.int t.prng 8)))
  end

let drop t fd err =
  t.n_drops <- t.n_drops + 1;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  raise (Unix.Unix_error (err, "chaosnet", ""))

(* ------------------------------------------------------------------ *)
(* The faulty transport                                                *)

let chaos_send t fd (wire : string) =
  maybe_delay t;
  let b = Bytes.of_string wire in
  if hit t t.p_flip then flip_in t b 0 (Bytes.length b);
  let n = Bytes.length b in
  (* a drop mid-frame leaves the daemon holding a torn prefix *)
  let cut = if hit t t.p_drop then Util.Prng.int t.prng (n + 1) else n in
  let chunks =
    if hit t t.p_tear && n > 1 then Util.Prng.range t.prng 2 4 else 1
  in
  if chunks > 1 then t.n_tears <- t.n_tears + 1;
  let off = ref 0 in
  let write_upto stop =
    while !off < stop do
      let k = Unix.write fd b !off (stop - !off) in
      if k = 0 then raise (Protocol.Malformed "connection closed mid-write");
      off := !off + k
    done
  in
  let limit = min cut n in
  for c = 1 to chunks do
    let stop =
      if c = chunks then limit
      else min limit (!off + 1 + Util.Prng.int t.prng (max 1 (n / chunks)))
    in
    write_upto stop;
    if c < chunks then maybe_delay t
  done;
  if cut < n then drop t fd Unix.EPIPE

let chaos_read t fd buf off len =
  maybe_delay t;
  if hit t t.p_drop then drop t fd Unix.ECONNRESET;
  (* short reads: take a small bite, let the carry-over buffer work *)
  let len =
    if hit t t.p_tear && len > 1 then begin
      t.n_tears <- t.n_tears + 1;
      1 + Util.Prng.int t.prng (min len 7)
    end
    else len
  in
  let k = Unix.read fd buf off len in
  if k > 0 && hit t t.p_flip then flip_in t buf off k;
  k

(** The fault-injecting {!Client.io}: hand it to {!Client.connect} or
    {!Client.compile_retry} to run a session over a hostile network. *)
let io (t : t) : Client.io =
  { Client.io_send = chaos_send t; io_read = chaos_read t }

(* ------------------------------------------------------------------ *)
(* The convergence sweep                                               *)

type sweep = {
  sw_seeds : int;          (** chaos sessions run *)
  sw_compiles : int;       (** compile requests attempted across them *)
  sw_converged : int;      (** results byte-identical to the expectation *)
  sw_mismatched : int;     (** converged to the {e wrong} bytes (must be 0) *)
  sw_gave_up : int;        (** retries exhausted (tolerated, counted) *)
  sw_flips : int;
  sw_drops : int;
  sw_tears : int;
  sw_delays : int;
}

let sweep_json (s : sweep) =
  let open Valid.Trace.Json in
  obj
    [ ("seeds", int s.sw_seeds);
      ("compiles", int s.sw_compiles);
      ("converged", int s.sw_converged);
      ("mismatched", int s.sw_mismatched);
      ("gave_up", int s.sw_gave_up);
      ("flips", int s.sw_flips);
      ("drops", int s.sw_drops);
      ("tears", int s.sw_tears);
      ("delays", int s.sw_delays) ]

(** [run_sweep ~socket ~expected sources]: one chaos session per seed
    in [first_seed .. first_seed + seeds - 1] against the live daemon
    at [socket], each compiling every [(label, source)] through its own
    seeded transport with [retries] and [deadline_s].  [expected] maps
    each label to the byte-exact output a clean compile produces (see
    {!expected_outputs}).  Convergence failures are never silent:
    a result that differs from the expectation counts [sw_mismatched]
    — the one outcome chaos must never produce. *)
let run_sweep ?(first_seed = 1) ?(seeds = 100) ?(retries = 16)
    ?(deadline_s = 30.0) ~socket ~(expected : (string * string) list)
    (sources : (string * string) list) : sweep =
  let sw =
    ref
      { sw_seeds = 0; sw_compiles = 0; sw_converged = 0; sw_mismatched = 0;
        sw_gave_up = 0; sw_flips = 0; sw_drops = 0; sw_tears = 0;
        sw_delays = 0 }
  in
  for seed = first_seed to first_seed + seeds - 1 do
    let chaos = create seed in
    List.iter
      (fun (label, source) ->
        let r =
          Client.compile_retry ~retries ~deadline_s ~io:(io chaos) ~socket
            ~label source
        in
        let s = !sw in
        let s = { s with sw_compiles = s.sw_compiles + 1 } in
        sw :=
          (match r with
          | Ok reply ->
            let want = List.assoc_opt label expected in
            if want = Some reply.Protocol.co_output then
              { s with sw_converged = s.sw_converged + 1 }
            else { s with sw_mismatched = s.sw_mismatched + 1 }
          | Error _ -> { s with sw_gave_up = s.sw_gave_up + 1 }))
      sources;
    sw :=
      { !sw with
        sw_seeds = !sw.sw_seeds + 1;
        sw_flips = !sw.sw_flips + chaos.n_flips;
        sw_drops = !sw.sw_drops + chaos.n_drops;
        sw_tears = !sw.sw_tears + chaos.n_tears;
        sw_delays = !sw.sw_delays + chaos.n_delays }
  done;
  !sw

(** The clean-compile expectations for {!run_sweep}: each source
    compiled from scratch, in-process.  Call {e before} starting (or
    while not racing) a daemon in the same process — the from-scratch
    compile clears the shared analysis caches. *)
let expected_outputs (config : Core.Config.t)
    (sources : (string * string) list) : (string * string) list =
  List.map
    (fun (label, source) ->
      let r = Core.Incremental.scratch config source in
      (label, r.Core.Incremental.outcome.Core.Incremental.oc_output))
    sources
