(** The daemon's persistent analysis store.

    A size-bounded, integrity-checked, LRU-evicted on-disk mirror of
    the content-addressed semantic caches ([dep.verdict],
    [range_prop.env_at], [poly.of_expr], [compare.*] — every
    {!Symbolic.Cache} created with [~persist:true]).  Installed as the
    {!Util.Cachectl.backing} store, it makes analysis facts {e shared}
    across client sessions (they already share the in-process tables)
    and {e persistent} across daemon restarts: a warm daemon re-proves
    nothing it proved last week about an unchanged loop nest.

    {b Trust model.}  Entries are [Marshal]-encoded OCaml values, which
    are only type-safe when written by the very same binary.  The store
    file therefore opens with the MD5 digest of the running executable:
    a file written by any other build (or corrupted in the header) is
    discarded wholesale — stale facts are dropped, never trusted.
    Every entry additionally carries an MD5 digest of its bytes;
    truncated or garbled entries are dropped individually (a digest
    mismatch with intact framing skips one entry, a broken length field
    abandons the unreadable tail).  Dropping is always safe: a missing
    entry is a cache miss, and the compiler recomputes the fact —
    byte-identically, by the PR-3 soundness contract.

    {b Eviction.}  The store tracks a recency tick per entry (bumped on
    every lookup hit and insert).  When the byte total exceeds the
    bound ([POLARIS_MAX_CACHE_MB]), least-recently-used entries are
    evicted — on insert (so one pathological session cannot balloon the
    daemon's memory) and again at {!flush} (so the file on disk never
    exceeds the bound either).

    {b Domain safety.}  Lookups and inserts arrive concurrently from
    {!Util.Pool} worker domains mid-phase; one mutex serializes all
    table access.  The critical sections are small (no marshaling
    happens under the lock — the cache layer passes ready bytes). *)

type entry = {
  mutable e_data : string;
  mutable e_tick : int;  (** recency: larger = more recently used *)
}

type t = {
  dir : string;
  path : string;
  max_bytes : int;
  tbl : (string * string, entry) Hashtbl.t;  (** (cache name, key bytes) *)
  m : Mutex.t;
  mutable tick : int;
  mutable bytes : int;  (** payload bytes currently held *)
  (* observability *)
  mutable n_disk_hits : int;     (** lookups served from the store *)
  mutable n_disk_misses : int;
  mutable n_loaded : int;        (** entries accepted at open *)
  mutable n_corrupt : int;       (** entries or files dropped by integrity checks *)
  mutable n_evicted : int;
  mutable n_inserts : int;
}

let magic = "POLARIS-STORE-v1\n"

(* Only load marshaled bytes written by this exact binary: any other
   build's type layout must not be trusted.  Computed once. *)
let exe_digest = lazy (Digest.file Sys.executable_name)

let file_name = "analysis.store"

let entry_cost (name : string) (key : string) (data : string) =
  String.length name + String.length key + String.length data + 40

(* ------------------------------------------------------------------ *)
(* Eviction (caller holds the lock)                                    *)

let evict_over_locked t ~budget =
  if t.bytes > budget then begin
    let entries =
      Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.tbl []
      |> List.sort (fun (_, a) (_, b) -> compare b.e_tick a.e_tick)
    in
    let total = ref 0 in
    List.iter
      (fun ((name, key), e) ->
        let c = entry_cost name key e.e_data in
        if !total + c <= budget then total := !total + c
        else begin
          Hashtbl.remove t.tbl (name, key);
          t.bytes <- t.bytes - c;
          t.n_evicted <- t.n_evicted + 1
        end)
      entries
  end

(* ------------------------------------------------------------------ *)
(* Load                                                                *)

(* Robust reader: returns the entries it could authenticate and the
   number it had to drop.  Any framing damage abandons the rest of the
   file (lengths can no longer be trusted); a digest mismatch with
   plausible framing drops that one entry and continues. *)
let load_file path : ((string * string * string * int) list * int) =
  match open_in_bin path with
  | exception Sys_error _ -> ([], 0)
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let len = in_channel_length ic in
    let header_len = String.length magic + 16 in
    if len < header_len then ([], if len = 0 then 0 else 1)
    else begin
      let head = really_input_string ic (String.length magic) in
      let dg = really_input_string ic 16 in
      if head <> magic || dg <> Lazy.force exe_digest then ([], 1)
      else begin
        let read_u32 () =
          let b () = Char.code (input_char ic) in
          let n = b () in
          let n = (n lsl 8) lor b () in
          let n = (n lsl 8) lor b () in
          (n lsl 8) lor b ()
        in
        let entries = ref [] and dropped = ref 0 in
        (try
           while pos_in ic < len do
             let name_len = read_u32 () in
             let name = really_input_string ic name_len in
             let key_len = read_u32 () in
             let key = really_input_string ic key_len in
             let data_len = read_u32 () in
             let data = really_input_string ic data_len in
             let tick = read_u32 () in
             let digest = really_input_string ic 16 in
             if Digest.string (name ^ key ^ data) = digest then
               entries := (name, key, data, tick) :: !entries
             else incr dropped
           done
         with End_of_file | Invalid_argument _ ->
           (* framing broke: the unreadable tail is one corruption event *)
           incr dropped);
        (List.rev !entries, !dropped)
      end
    end

let open_store ~dir ~max_bytes () : t =
  (if not (Sys.file_exists dir) then
     try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat dir file_name in
  let t =
    { dir; path; max_bytes; tbl = Hashtbl.create 4096; m = Mutex.create ();
      tick = 0; bytes = 0; n_disk_hits = 0; n_disk_misses = 0; n_loaded = 0;
      n_corrupt = 0; n_evicted = 0; n_inserts = 0 }
  in
  let entries, dropped = load_file path in
  t.n_corrupt <- dropped;
  List.iter
    (fun (name, key, data, tick) ->
      Hashtbl.replace t.tbl (name, key) { e_data = data; e_tick = tick };
      t.bytes <- t.bytes + entry_cost name key data;
      t.n_loaded <- t.n_loaded + 1;
      if tick > t.tick then t.tick <- tick)
    entries;
  Mutex.lock t.m;
  evict_over_locked t ~budget:t.max_bytes;
  Mutex.unlock t.m;
  t

(* ------------------------------------------------------------------ *)
(* The backing-store interface                                         *)

let lookup t ~name ~key =
  Mutex.lock t.m;
  let r =
    match Hashtbl.find_opt t.tbl (name, key) with
    | Some e ->
      t.tick <- t.tick + 1;
      e.e_tick <- t.tick;
      t.n_disk_hits <- t.n_disk_hits + 1;
      Some e.e_data
    | None ->
      t.n_disk_misses <- t.n_disk_misses + 1;
      None
  in
  Mutex.unlock t.m;
  r

let insert t ~name ~key ~data =
  Mutex.lock t.m;
  t.tick <- t.tick + 1;
  (match Hashtbl.find_opt t.tbl (name, key) with
  | Some e ->
    t.bytes <- t.bytes + String.length data - String.length e.e_data;
    e.e_data <- data;
    e.e_tick <- t.tick
  | None ->
    Hashtbl.replace t.tbl (name, key) { e_data = data; e_tick = t.tick };
    t.bytes <- t.bytes + entry_cost name key data);
  t.n_inserts <- t.n_inserts + 1;
  (* keep the resident set bounded too: one greedy session must not
     balloon the daemon; modest slack so steady-state inserts don't
     resort the table on every call *)
  if t.bytes > t.max_bytes + (t.max_bytes / 4) then
    evict_over_locked t ~budget:t.max_bytes;
  Mutex.unlock t.m

(** Entry count currently resident. *)
let entry_count t =
  Mutex.lock t.m;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.m;
  n

(** Entries recovered from disk when the store was opened — what a
    daemon restart actually inherited (the [restart] log event and the
    crash-recovery tests read this). *)
let loaded_count t = t.n_loaded

(** Entries or files dropped by the integrity checks at open.  Zero
    means the on-disk store passed every digest — the crash-safety
    contract after an atomic-flush-only history (a torn write is
    impossible: flushes go through tmp+rename). *)
let corrupt_count t = t.n_corrupt

(* ------------------------------------------------------------------ *)
(* Flush                                                               *)

(** Write the store to disk atomically (temp file + rename), evicting
    LRU entries beyond the size bound first.  Safe to call at any
    sequential point; the daemon flushes on graceful shutdown and after
    every [Stats] request. *)
let flush t =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) @@ fun () ->
  evict_over_locked t ~budget:t.max_bytes;
  let tmp = t.path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc magic;
     output_string oc (Lazy.force exe_digest);
     let write_u32 n =
       output_char oc (Char.chr ((n lsr 24) land 0xff));
       output_char oc (Char.chr ((n lsr 16) land 0xff));
       output_char oc (Char.chr ((n lsr 8) land 0xff));
       output_char oc (Char.chr (n land 0xff))
     in
     Hashtbl.iter
       (fun (name, key) e ->
         write_u32 (String.length name);
         output_string oc name;
         write_u32 (String.length key);
         output_string oc key;
         write_u32 (String.length e.e_data);
         output_string oc e.e_data;
         write_u32 (e.e_tick land 0x7fffffff);
         output_string oc (Digest.string (name ^ key ^ e.e_data)))
       t.tbl;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp t.path

(* ------------------------------------------------------------------ *)
(* Installation                                                        *)

(** Route every persistent {!Symbolic.Cache} through [t]; returns the
    previously installed backing (restore it when the daemon exits). *)
let install t : Util.Cachectl.backing option =
  let prev = !Util.Cachectl.backing in
  Util.Cachectl.set_backing
    (Some
       { Util.Cachectl.bk_lookup = (fun ~name ~key -> lookup t ~name ~key);
         bk_insert = (fun ~name ~key ~data -> insert t ~name ~key ~data) });
  prev

let uninstall prev = Util.Cachectl.set_backing prev

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)

let stats_json t =
  Mutex.lock t.m;
  let j =
    Valid.Trace.Json.obj
      [ ("dir", Valid.Trace.Json.str t.dir);
        ("max_bytes", Valid.Trace.Json.int t.max_bytes);
        ("resident_bytes", Valid.Trace.Json.int t.bytes);
        ("entries", Valid.Trace.Json.int (Hashtbl.length t.tbl));
        ("loaded", Valid.Trace.Json.int t.n_loaded);
        ("disk_hits", Valid.Trace.Json.int t.n_disk_hits);
        ("disk_misses", Valid.Trace.Json.int t.n_disk_misses);
        ("inserts", Valid.Trace.Json.int t.n_inserts);
        ("evicted", Valid.Trace.Json.int t.n_evicted);
        ("corrupt_dropped", Valid.Trace.Json.int t.n_corrupt) ]
  in
  Mutex.unlock t.m;
  j
