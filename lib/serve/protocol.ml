(** Wire protocol of the compile daemon.

    One connection is one client {e session}: a sequence of
    length-prefixed request frames, each answered by exactly one
    length-prefixed response frame, in order.  A frame is a 4-byte
    big-endian payload length, a 4-byte FNV-1a checksum of the payload,
    then the payload; inside a payload every field is explicitly
    encoded (tag bytes, length-prefixed strings, 8-byte IEEE-754
    floats), so the format is binary-deterministic, independent of
    [Marshal], and safe to parse from untrusted peers — every decoder
    validates lengths and tags and raises {!Malformed} instead of
    reading out of bounds.

    The checksum is the transport-fault detector: a bit flip anywhere
    in a frame (length, checksum or payload) is caught before the
    payload is decoded, so a corrupted {e request} can never be
    silently compiled as a different program and a corrupted
    {e response} can never be silently accepted as a result.  Both
    sides treat a checksum mismatch exactly like any other framing
    violation — the daemon answers {!Rejected} and closes the guilty
    session, the client drops the connection and (with retries
    configured) reconnects and resends.  Compiles are deterministic, so
    the retry is idempotent-safe.

    Requests: [Compile] carries the {e source text} (the client reads
    the file, keeping the daemon independent of the client's
    filesystem), a label for reporting, a [check] flag asking the
    daemon to verify the compile against a from-scratch one, and
    optional pass-pipeline / emission-backend overrides (empty strings
    pick the daemon's defaults; the daemon resolves the names against
    its registries and answers [Error_r] for unknown ones).  [Stats]
    asks for the server's observability report.  [Ping] is a liveness
    probe answered with [Pong].  [Shutdown] asks for a graceful
    drain-flush-exit.

    Responses carry everything a client needs to reproduce the
    compiler's one-shot behaviour byte-for-byte: the annotated output
    source, the sid-masked per-loop verdict lines, incident counts,
    and the per-request reuse telemetry (tracked-analysis rate and
    shared persistent-cache rate) the bench aggregates.  [Busy] and
    [Rejected] are the daemon's self-protection verdicts: [Busy] sheds
    a connection at the admission cap (retry later — nothing was
    attempted), [Rejected] answers a protocol violation (a retried
    request may succeed: the bytes, not the request, were bad). *)

exception Malformed of string
(** A frame or payload that violates the protocol.  Per-connection
    fault containment: the daemon answers with {!Rejected} and closes
    that session only. *)

exception Timeout
(** Raised by {!recv} when its deadline passes before a complete frame
    arrives.  Clients treat it as a transient failure (retryable). *)

let max_frame = 64 * 1024 * 1024
(** Ceiling on one frame's payload (64 MB): a corrupt or hostile length
    prefix must not make the server allocate unboundedly. *)

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)

type compile_req = {
  cr_label : string;   (** client-side name, e.g. the file path *)
  cr_source : string;  (** full Fortran source text *)
  cr_check : bool;     (** verify against a from-scratch compile *)
  cr_baseline : bool;  (** use the baseline (PFA-like) pipeline *)
  cr_pipeline : string;
      (** pass-pipeline spec (a preset name or [custom:p1,p2,...]),
          resolved against {!Core.Registry} on the daemon; [""] means
          the daemon's default.  An unknown spec is an application
          error ([Error_r]), not a protocol violation. *)
  cr_backend : string;
      (** emission backend name, resolved against {!Backend.Registry}
          on the daemon; [""] means the daemon's default *)
}

type request = Compile of compile_req | Stats | Ping | Shutdown

type compile_reply = {
  co_label : string;
  co_output : string;          (** annotated output source *)
  co_verdicts : string list;   (** sid-masked per-loop verdict lines *)
  co_incidents : int;          (** contained pass faults of this compile *)
  co_reuse_rate : float;       (** tracked-analysis reuse (hits/lookups) *)
  co_shared_hits : int;        (** hits in the persistent (shared) caches *)
  co_shared_lookups : int;
  co_wall_ms : float;          (** server-side wall time of the compile *)
  co_check_divergences : string list;
      (** non-empty only when [cr_check] was set and the incremental
          compile diverged from scratch — a server-side contract
          violation the client must surface *)
}

type response =
  | Compiled of compile_reply
  | Stats_reply of string  (** the server's observability report, JSON *)
  | Error_r of string      (** request-contained {e application} failure
                               (bad source); deterministic, not retryable *)
  | Rejected of string     (** protocol-level refusal (malformed frame,
                               cap exceeded); the connection closes and a
                               retry over a fresh one may succeed *)
  | Busy                   (** load shed at the admission cap; retry later *)
  | Pong                   (** liveness probe answer *)
  | Bye                    (** shutdown acknowledged; the server is draining *)

(* ------------------------------------------------------------------ *)
(* Primitive encoders / decoders                                       *)

let add_u32 buf n =
  if n < 0 || n > max_frame then
    invalid_arg (Printf.sprintf "Protocol.add_u32: %d out of range" n);
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff))

let add_str buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let add_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

let add_float buf f =
  let bits = Int64.bits_of_float f in
  for i = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

let add_list buf add xs =
  add_u32 buf (List.length xs);
  List.iter (add buf) xs

(* cursor-based reader over one payload string *)
type cursor = { s : string; mutable pos : int }

let need c n what =
  if c.pos + n > String.length c.s then
    raise (Malformed (Printf.sprintf "truncated payload reading %s" what))

let get_u8 c what =
  need c 1 what;
  let b = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  b

let get_u32 c what =
  need c 4 what;
  let b i = Char.code c.s.[c.pos + i] in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  c.pos <- c.pos + 4;
  if n > max_frame then
    raise (Malformed (Printf.sprintf "%s length %d exceeds limit" what n));
  n

let get_str c what =
  let n = get_u32 c what in
  need c n what;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let get_bool c what =
  match get_u8 c what with
  | 0 -> false
  | 1 -> true
  | b -> raise (Malformed (Printf.sprintf "%s: bad boolean byte %d" what b))

let get_float c what =
  need c 8 what;
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code c.s.[c.pos + i]))
  done;
  c.pos <- c.pos + 8;
  Int64.float_of_bits !bits

let get_list c get what =
  let n = get_u32 c what in
  List.init n (fun _ -> get c what)

let finished c what =
  if c.pos <> String.length c.s then
    raise
      (Malformed
         (Printf.sprintf "%s: %d trailing bytes" what
            (String.length c.s - c.pos)))

(* ------------------------------------------------------------------ *)
(* Request / response payloads                                         *)

let encode_request (r : request) : string =
  let buf = Buffer.create 256 in
  (match r with
  | Compile c ->
    Buffer.add_char buf 'C';
    add_str buf c.cr_label;
    add_bool buf c.cr_check;
    add_bool buf c.cr_baseline;
    add_str buf c.cr_pipeline;
    add_str buf c.cr_backend;
    add_str buf c.cr_source
  | Stats -> Buffer.add_char buf 'S'
  | Ping -> Buffer.add_char buf 'P'
  | Shutdown -> Buffer.add_char buf 'Q');
  Buffer.contents buf

let decode_request (payload : string) : request =
  let c = { s = payload; pos = 0 } in
  let r =
    match Char.chr (get_u8 c "request tag") with
    | 'C' ->
      let cr_label = get_str c "compile label" in
      let cr_check = get_bool c "compile check flag" in
      let cr_baseline = get_bool c "compile baseline flag" in
      let cr_pipeline = get_str c "compile pipeline spec" in
      let cr_backend = get_str c "compile backend name" in
      let cr_source = get_str c "compile source" in
      Compile { cr_label; cr_source; cr_check; cr_baseline;
                cr_pipeline; cr_backend }
    | 'S' -> Stats
    | 'P' -> Ping
    | 'Q' -> Shutdown
    | t -> raise (Malformed (Printf.sprintf "unknown request tag %C" t))
  in
  finished c "request";
  r

let encode_response (r : response) : string =
  let buf = Buffer.create 1024 in
  (match r with
  | Compiled o ->
    Buffer.add_char buf 'R';
    add_str buf o.co_label;
    add_str buf o.co_output;
    add_list buf add_str o.co_verdicts;
    add_u32 buf o.co_incidents;
    add_float buf o.co_reuse_rate;
    add_u32 buf o.co_shared_hits;
    add_u32 buf o.co_shared_lookups;
    add_float buf o.co_wall_ms;
    add_list buf add_str o.co_check_divergences
  | Stats_reply json ->
    Buffer.add_char buf 'T';
    add_str buf json
  | Error_r msg ->
    Buffer.add_char buf 'E';
    add_str buf msg
  | Rejected msg ->
    Buffer.add_char buf 'J';
    add_str buf msg
  | Busy -> Buffer.add_char buf 'Y'
  | Pong -> Buffer.add_char buf 'p'
  | Bye -> Buffer.add_char buf 'B');
  Buffer.contents buf

let decode_response (payload : string) : response =
  let c = { s = payload; pos = 0 } in
  let r =
    match Char.chr (get_u8 c "response tag") with
    | 'R' ->
      let co_label = get_str c "reply label" in
      let co_output = get_str c "reply output" in
      let co_verdicts = get_list c get_str "reply verdicts" in
      let co_incidents = get_u32 c "reply incidents" in
      let co_reuse_rate = get_float c "reply reuse rate" in
      let co_shared_hits = get_u32 c "reply shared hits" in
      let co_shared_lookups = get_u32 c "reply shared lookups" in
      let co_wall_ms = get_float c "reply wall" in
      let co_check_divergences = get_list c get_str "reply divergences" in
      Compiled
        { co_label; co_output; co_verdicts; co_incidents; co_reuse_rate;
          co_shared_hits; co_shared_lookups; co_wall_ms; co_check_divergences }
    | 'T' -> Stats_reply (get_str c "stats json")
    | 'E' -> Error_r (get_str c "error message")
    | 'J' -> Rejected (get_str c "rejection message")
    | 'Y' -> Busy
    | 'p' -> Pong
    | 'B' -> Bye
    | t -> raise (Malformed (Printf.sprintf "unknown response tag %C" t))
  in
  finished c "response";
  r

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)

let header_len = 8
(** 4-byte payload length + 4-byte FNV-1a payload checksum. *)

(** 32-bit FNV-1a over [s] — cheap, order-sensitive, and sensitive to
    any single bit flip; the frame integrity check, not a cryptographic
    authenticator (the store's trust model is {!Store}'s concern). *)
let fnv32 (s : string) : int =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    s;
  !h

(* the checksum is a full 32-bit value, so it cannot go through
   [add_u32] (whose range check is for payload lengths) *)
let add_raw32 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff))

(** [frame payload]: the bytes to put on the wire. *)
let frame (payload : string) : string =
  let buf = Buffer.create (String.length payload + header_len) in
  add_u32 buf (String.length payload);
  add_raw32 buf (fnv32 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(** [peel buf]: if [buf] starts with a complete frame, remove and
    return its payload; [None] while bytes are still missing.  Raises
    {!Malformed} on an oversized length prefix or a checksum mismatch —
    the connection's framing is unrecoverable from that point. *)
let peel (buf : Buffer.t) : string option =
  let len = Buffer.length buf in
  if len < header_len then None
  else begin
    let b i = Char.code (Buffer.nth buf i) in
    let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if n > max_frame then
      raise (Malformed (Printf.sprintf "frame length %d exceeds limit" n));
    let ck = (b 4 lsl 24) lor (b 5 lsl 16) lor (b 6 lsl 8) lor b 7 in
    if len < header_len + n then None
    else begin
      let payload = Buffer.sub buf header_len n in
      if fnv32 payload <> ck then
        raise (Malformed "frame checksum mismatch");
      let rest =
        Buffer.sub buf (header_len + n) (len - header_len - n)
      in
      Buffer.clear buf;
      Buffer.add_string buf rest;
      Some payload
    end
  end

(** [has_frame buf]: true when {!peel} would make progress — a complete
    frame is buffered, or the header is already provably malformed.
    The daemon's select loop polls this to keep processing pipelined
    frames that arrived in one read. *)
let has_frame (buf : Buffer.t) : bool =
  let len = Buffer.length buf in
  len >= header_len
  &&
  let b i = Char.code (Buffer.nth buf i) in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  n > max_frame || len >= header_len + n

(* ------------------------------------------------------------------ *)
(* Blocking I/O helpers (client side and tests)                        *)

let write_all fd (s : string) =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let k = Unix.write fd b !off (n - !off) in
    if k = 0 then raise (Malformed "connection closed mid-write");
    off := !off + k
  done

(** Send one message (request or response payload) on [fd]. *)
let send fd (payload : string) = write_all fd (frame payload)

(** Receive one complete frame from [fd] (blocking); [None] on orderly
    EOF at a frame boundary.  [buf] is the connection's carry-over
    buffer: bytes of a following frame that arrive in the same read are
    kept there for the next call.

    [read] is the transport seam ({!Serve.Chaosnet} substitutes a
    fault-injecting reader); [deadline] is an absolute
    [Unix.gettimeofday] instant after which {!Timeout} raises instead
    of blocking forever on a stalled or dead daemon. *)
let recv ?(read = Unix.read) ?deadline fd (buf : Buffer.t) : string option =
  let chunk = Bytes.create 4096 in
  let wait_readable () =
    match deadline with
    | None -> ()
    | Some d ->
      let rec sel () =
        let left = d -. Unix.gettimeofday () in
        if left <= 0.0 then raise Timeout;
        match Unix.select [ fd ] [] [] left with
        | [], _, _ -> raise Timeout
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> sel ()
      in
      sel ()
  in
  let rec loop () =
    match peel buf with
    | Some payload -> Some payload
    | None -> (
      wait_readable ();
      match read fd chunk 0 (Bytes.length chunk) with
      | 0 ->
        if Buffer.length buf = 0 then None
        else raise (Malformed "connection closed mid-frame")
      | k ->
        Buffer.add_subbytes buf chunk 0 k;
        loop ())
  in
  loop ()
