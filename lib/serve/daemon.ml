(** The Polaris compile daemon: a long-lived, multi-client compilation
    server over a unix-domain socket.

    Architecture (DESIGN.md §9): one server loop multiplexes every
    client session with [Unix.select]; requests are decoded from
    length-prefixed frames ({!Protocol}) and executed {e one at a time,
    in arrival order} — the determinism anchor — while each compile
    internally fans its dependence analysis and validation across the
    {!Util.Pool} worker domains ([-j N]).  The analysis facts live in
    the process-wide content-addressed caches, so every session warms
    every other session; with a {!Store} attached
    ([POLARIS_CACHE_DIR]) the persistent subset also survives daemon
    restarts, bounded by LRU eviction and guarded by integrity checks.

    Fault containment is per request and per session: a compile that
    faults (bad source, contained pass incident, exhausted budget)
    answers with an error or degraded-but-sound result and the session
    lives on; a session that breaks the framing protocol is closed
    alone; SIGINT/SIGTERM drain in-flight requests, flush the store
    and return cleanly.  One greedy client cannot starve the fleet:
    every request draws its own analysis budget
    ([--budget-steps]/[--deadline]), so a pathological source degrades
    its own verdicts to serial and nothing else. *)

type cfg = {
  d_socket : string;            (** unix-domain socket path *)
  d_store_dir : string option;  (** persistent store directory (None = off) *)
  d_max_cache_mb : int;
  d_baseline : bool;            (** serve the baseline pipeline instead *)
  d_jobs : int;                 (** worker domains per compile *)
  d_budget_steps : int option;  (** per-request analysis fuel *)
  d_deadline_s : float option;  (** per-request analysis deadline *)
  d_log : string option;        (** JSON-lines server log path *)
  d_poll_s : float;             (** select timeout: stop-flag latency bound *)
}

let default_socket () =
  match Util.Env.socket with
  | Some p -> p
  | None ->
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "polaris-%d.sock" (Unix.getuid ()))

let default_cfg () =
  { d_socket = default_socket ();
    d_store_dir = Util.Env.cache_dir;
    d_max_cache_mb = Util.Env.max_cache_mb;
    d_baseline = false;
    d_jobs = Util.Pool.jobs ();
    d_budget_steps = None;
    d_deadline_s = None;
    d_log = None;
    d_poll_s = 0.1 }

(** What {!run} hands back when the loop ends. *)
type report = {
  r_graceful : bool;      (** drained and flushed (signal or Shutdown) *)
  r_requests : int;
  r_sessions : int;
  r_stats_json : string;  (** final server stats (same shape as [Stats]) *)
}

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)

type conn = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;        (* bytes received, frames not yet peeled *)
  c_session : Metrics.session;
  mutable c_open : bool;
}

let close_conn c =
  if c.c_open then begin
    c.c_open <- false;
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)

type state = {
  st_cfg : cfg;
  st_config : Core.Config.t;
  st_store : Store.t option;
  st_sv : Metrics.server;
  mutable st_sessions : Metrics.session list;  (* every session ever *)
  mutable st_stop : bool;  (* graceful shutdown requested *)
  st_log : out_channel option;
}

let log_line st json =
  match st.st_log with
  | None -> ()
  | Some oc ->
    output_string oc json;
    output_char oc '\n';
    flush oc

let stats_json st =
  Metrics.server_json ~now:(Unix.gettimeofday ()) st.st_sv st.st_sessions
    (Option.map Store.stats_json st.st_store)

let handle_compile st (sess : Metrics.session) (c : Protocol.compile_req) :
    Protocol.response =
  let config =
    if c.cr_baseline then Core.Config.baseline ~procs:8 () else st.st_config
  in
  match
    Local.compile_source ?budget_steps:st.st_cfg.d_budget_steps
      ?deadline_s:st.st_cfg.d_deadline_s ~check:c.cr_check config c.cr_source
  with
  | compiled ->
    let r = compiled.lc_result in
    let incidents = List.length r.pipeline.incidents in
    sess.ss_incidents <- sess.ss_incidents + incidents;
    st.st_sv.sv_incidents <- st.st_sv.sv_incidents + incidents;
    sess.ss_shared_hits <- sess.ss_shared_hits + compiled.lc_shared_hits;
    sess.ss_shared_lookups <- sess.ss_shared_lookups + compiled.lc_shared_lookups;
    sess.ss_tracked_hits <- sess.ss_tracked_hits + r.stats.st_hits;
    sess.ss_tracked_lookups <- sess.ss_tracked_lookups + r.stats.st_lookups;
    Protocol.Compiled
      { co_label = c.cr_label;
        co_output = r.outcome.oc_output;
        co_verdicts = compiled.lc_verdicts;
        co_incidents = incidents;
        co_reuse_rate = r.stats.st_reuse_rate;
        co_shared_hits = compiled.lc_shared_hits;
        co_shared_lookups = compiled.lc_shared_lookups;
        co_wall_ms = 1000.0 *. compiled.lc_wall_s;
        co_check_divergences = compiled.lc_check_divergences }
  | exception Frontend.Lexer.Error m ->
    Protocol.Error_r ("lexical error: " ^ m)
  | exception Frontend.Parser.Error m ->
    Protocol.Error_r ("syntax error: " ^ m)
  | exception e ->
    (* contained: the request failed, the session and server live on *)
    Protocol.Error_r ("compile failed: " ^ Printexc.to_string e)

let handle_request st conn (req : Protocol.request) : Protocol.response =
  let sess = conn.c_session in
  let t0 = Unix.gettimeofday () in
  sess.ss_requests <- sess.ss_requests + 1;
  st.st_sv.sv_requests <- st.st_sv.sv_requests + 1;
  let resp =
    match req with
    | Protocol.Compile c ->
      let r = handle_compile st sess c in
      (match r with
      | Protocol.Error_r _ ->
        sess.ss_errors <- sess.ss_errors + 1;
        st.st_sv.sv_errors <- st.st_sv.sv_errors + 1
      | _ -> ());
      r
    | Protocol.Stats ->
      Option.iter Store.flush st.st_store;
      Protocol.Stats_reply (stats_json st)
    | Protocol.Shutdown ->
      st.st_stop <- true;
      Protocol.Bye
  in
  let dt = Unix.gettimeofday () -. t0 in
  Metrics.add sess.ss_lat dt;
  Metrics.add st.st_sv.sv_lat dt;
  (let open Valid.Trace.Json in
   log_line st
     (obj
        [ ("event", str "request");
          ("session", int sess.ss_id);
          ("seq", int sess.ss_requests);
          ( "kind",
            str
              (match req with
              | Protocol.Compile c -> "compile " ^ c.cr_label
              | Protocol.Stats -> "stats"
              | Protocol.Shutdown -> "shutdown") );
          ("wall_ms", float (1000.0 *. dt));
          ( "shared_hit_rate",
            float (Metrics.rate_of sess.ss_shared_hits sess.ss_shared_lookups) );
          ("incidents", int sess.ss_incidents);
          ("errors", int sess.ss_errors) ]));
  resp

(* peel and answer every complete frame already buffered on [conn];
   closes the connection on protocol violations (framing is
   unrecoverable) or when the peer is gone *)
let drain_frames st conn =
  let continue = ref true in
  while !continue && conn.c_open do
    match Protocol.peel conn.c_buf with
    | None -> continue := false
    | Some payload -> (
      match Protocol.decode_request payload with
      | req -> (
        let resp = handle_request st conn req in
        match Protocol.send conn.c_fd (Protocol.encode_response resp) with
        | () -> if resp = Protocol.Bye then continue := false
        | exception (Unix.Unix_error _ | Protocol.Malformed _) ->
          close_conn conn)
      | exception Protocol.Malformed m ->
        conn.c_session.ss_errors <- conn.c_session.ss_errors + 1;
        st.st_sv.sv_errors <- st.st_sv.sv_errors + 1;
        (try Protocol.send conn.c_fd (Protocol.encode_response (Protocol.Error_r m))
         with Unix.Unix_error _ | Protocol.Malformed _ -> ());
        close_conn conn)
    | exception Protocol.Malformed m ->
      conn.c_session.ss_errors <- conn.c_session.ss_errors + 1;
      st.st_sv.sv_errors <- st.st_sv.sv_errors + 1;
      (try Protocol.send conn.c_fd (Protocol.encode_response (Protocol.Error_r m))
       with Unix.Unix_error _ | Protocol.Malformed _ -> ());
      close_conn conn
  done

(* ------------------------------------------------------------------ *)
(* The server loop                                                     *)

(** Run the daemon until a [Shutdown] request, a SIGINT/SIGTERM (when
    [signals]), or [stop] is set externally.  Returns after draining
    in-flight requests, flushing the store and removing the socket.
    [on_ready] fires once the socket is listening (tests and the bench
    use it to gate client connects). *)
let run ?(signals = false) ?(stop = Atomic.make false) ?on_ready (cfg : cfg) :
    report =
  Util.Pool.set_jobs cfg.d_jobs;
  let store =
    Option.map
      (fun dir ->
        Store.open_store ~dir ~max_bytes:(cfg.d_max_cache_mb * 1024 * 1024) ())
      cfg.d_store_dir
  in
  let prev_backing = Option.map Store.install store in
  let log_oc = Option.map open_out cfg.d_log in
  (* a client that disappears mid-write must not kill the server *)
  let prev_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let prev_handlers =
    if signals then
      let h = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
      Some (Sys.signal Sys.sigint h, Sys.signal Sys.sigterm h)
    else None
  in
  (if Sys.file_exists cfg.d_socket then
     try Unix.unlink cfg.d_socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let st =
    { st_cfg = cfg;
      st_config =
        (if cfg.d_baseline then Core.Config.baseline ~procs:8 ()
         else Core.Config.polaris ~procs:8 ());
      st_store = store;
      st_sv = Metrics.server ~now:(Unix.gettimeofday ());
      st_sessions = [];
      st_stop = false;
      st_log = log_oc }
  in
  let conns : conn list ref = ref [] in
  let cleanup () =
    List.iter close_conn !conns;
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    (try Unix.unlink cfg.d_socket with Unix.Unix_error _ -> ());
    Option.iter Store.flush store;
    Option.iter (fun prev -> Store.uninstall prev) prev_backing;
    (match prev_handlers with
    | Some (hi, ht) ->
      ignore (Sys.signal Sys.sigint hi);
      ignore (Sys.signal Sys.sigterm ht)
    | None -> ());
    ignore (Sys.signal Sys.sigpipe prev_sigpipe);
    Option.iter close_out log_oc
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.d_socket);
  Unix.listen listen_fd 64;
  (let open Valid.Trace.Json in
   log_line st
     (obj
        [ ("event", str "listening");
          ("socket", str cfg.d_socket);
          ( "store",
            match cfg.d_store_dir with Some d -> str d | None -> null ) ]));
  Option.iter (fun f -> f ()) on_ready;
  let chunk = Bytes.create 65536 in
  let next_session = ref 0 in
  while (not st.st_stop) && not (Atomic.get stop) do
    let fds = listen_fd :: List.map (fun c -> c.c_fd) !conns in
    match Unix.select fds [] [] cfg.d_poll_s with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      if List.mem listen_fd readable then begin
        match Unix.accept listen_fd with
        | fd, _ ->
          incr next_session;
          st.st_sv.sv_sessions <- st.st_sv.sv_sessions + 1;
          let sess = Metrics.session !next_session in
          st.st_sessions <- sess :: st.st_sessions;
          conns :=
            !conns
            @ [ { c_fd = fd; c_buf = Buffer.create 4096; c_session = sess;
                  c_open = true } ]
        | exception Unix.Unix_error _ -> ()
      end;
      List.iter
        (fun c ->
          if c.c_open && List.mem c.c_fd readable then
            match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
            | 0 -> close_conn c
            | n ->
              Buffer.add_subbytes c.c_buf chunk 0 n;
              drain_frames st c
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
              ->
              close_conn c
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
        !conns;
      conns := List.filter (fun c -> c.c_open) !conns
  done;
  (* graceful drain: answer every request already sent (one last
     non-blocking read picks up bytes in flight — nothing waits for
     new work), then flush and go down *)
  List.iter
    (fun c ->
      if c.c_open then begin
        (try
           Unix.set_nonblock c.c_fd;
           let continue = ref true in
           while !continue do
             match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
             | 0 -> continue := false
             | n -> Buffer.add_subbytes c.c_buf chunk 0 n
             | exception Unix.Unix_error _ -> continue := false
           done
         with Unix.Unix_error _ -> ());
        drain_frames st c
      end)
    !conns;
  let final = stats_json st in
  (let open Valid.Trace.Json in
   log_line st (obj [ ("event", str "shutdown"); ("stats", final) ]));
  { r_graceful = true;
    r_requests = st.st_sv.sv_requests;
    r_sessions = st.st_sv.sv_sessions;
    r_stats_json = final }
