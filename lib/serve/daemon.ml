(** The Polaris compile daemon: a long-lived, multi-client compilation
    server over a unix-domain socket.

    Architecture (DESIGN.md §9): one server loop multiplexes every
    client session with [Unix.select]; requests are decoded from
    length-prefixed frames ({!Protocol}) and, by default, executed
    {e one at a time, in arrival order} — the determinism anchor —
    while each compile internally fans its dependence analysis and
    validation across the {!Util.Pool} worker domains ([-j N]).

    With [--max-inflight N] (N > 1) independent compile requests from
    {e distinct} sessions execute concurrently on N dedicated worker
    domains instead; each worker pins a cache shard slot
    ({!Util.Pool.with_slot}) and compiles with jobs-here = 1, so
    cross-request parallelism replaces intra-request fan-out.  Each
    session still sees its responses in request order (at most one of
    its requests is in flight at a time), per-request dependence
    counters are domain-isolated ({!Dep.Driver.isolate}), shard
    promotion and [--check] verification compiles (which clear the
    caches) run only at quiescent points (zero requests in flight), and
    all daemon bookkeeping stays on the select loop — responses are
    byte-identical to the serial daemon's.

    The analysis facts live in
    the process-wide content-addressed caches, so every session warms
    every other session; with a {!Store} attached
    ([POLARIS_CACHE_DIR]) the persistent subset also survives daemon
    restarts, bounded by LRU eviction and guarded by integrity checks.

    Fault containment is per request and per session: a compile that
    faults (bad source, contained pass incident, exhausted budget)
    answers with an error or degraded-but-sound result and the session
    lives on; a session that breaks the framing protocol is closed
    alone; SIGINT/SIGTERM drain in-flight requests, flush the store
    and return cleanly.  One greedy client cannot starve the fleet:
    every request draws its own analysis budget
    ([--budget-steps]/[--deadline]), so a pathological source degrades
    its own verdicts to serial and nothing else.

    {b Overload protection} (PR 7).  Responses are never written
    blocking: each connection owns a bounded outgoing byte queue
    drained through the select loop's write set, so a stalled reader
    wedges {e its own} queue, not the server — when the queue overflows
    [max_wbuf] the session is evicted.  Admission is controlled: at
    [max_sessions] open sessions a new connection is shed with one
    {!Protocol.Busy} frame and closed (nothing attempted, retry
    later); a connection buffering more than [max_rbuf] unparsed
    request bytes, or idle longer than [idle_timeout_s], is evicted.
    At most [max_pipeline] pipelined requests are executed per
    connection per loop turn, round-robining the sessions.

    {b Crash safety.}  The store is flushed (atomic tmp+rename) every
    [flush_every] compile requests — {e before} the triggering
    response is queued, so a client that has seen reply N knows every
    fact up to the last flush boundary is on disk — and again after
    [flush_interval_s] seconds with unflushed work.  A SIGKILL
    therefore loses at most one flush window.  A pidfile
    ([socket].pid) enforces single-instance discipline: a new daemon
    refuses to stomp a live daemon's socket ({!Already_running}) but
    silently recovers a stale one (dead pid — the SIGKILL case). *)

type cfg = {
  d_socket : string;            (** unix-domain socket path *)
  d_store_dir : string option;  (** persistent store directory (None = off) *)
  d_max_cache_mb : int;
  d_baseline : bool;            (** serve the baseline pipeline instead *)
  d_pipeline : Core.Registry.pipeline option;
      (** default pass pipeline served to requests that do not carry
          their own ([None] = the configuration's own, i.e. thorough) *)
  d_backend : Backend.Registry.t option;
      (** default emission backend ([None] = the f77 unparser) *)
  d_jobs : int;                 (** worker domains per compile *)
  d_max_inflight : int;
      (** compile requests executed concurrently (from distinct
          sessions, on dedicated worker domains).  1 = the classic
          serial select loop; N > 1 trades intra-request fan-out for
          cross-request parallelism: each worker compiles with a pinned
          cache shard slot and jobs-here = 1 *)
  d_budget_steps : int option;  (** per-request analysis fuel *)
  d_deadline_s : float option;  (** per-request analysis deadline *)
  d_log : string option;        (** JSON-lines server log path (appended) *)
  d_poll_s : float;             (** select timeout: stop-flag latency bound *)
  (* overload protection *)
  d_max_sessions : int;         (** admission cap; beyond it: [Busy] + close *)
  d_idle_timeout_s : float;     (** evict sessions idle longer than this *)
  d_max_rbuf : int;             (** per-connection unparsed-request byte cap *)
  d_max_wbuf : int;             (** per-connection queued-response byte cap *)
  d_max_pipeline : int;         (** requests executed per connection per turn *)
  d_sndbuf : int option;        (** SO_SNDBUF for client fds (tests shrink it) *)
  (* crash safety *)
  d_flush_every : int;          (** store flush cadence in compile requests *)
  d_flush_interval_s : float;   (** store flush cadence in seconds *)
}

let default_socket () =
  match Util.Env.socket with
  | Some p -> p
  | None ->
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "polaris-%d.sock" (Unix.getuid ()))

let default_cfg () =
  { d_socket = default_socket ();
    d_store_dir = Util.Env.cache_dir;
    d_max_cache_mb = Util.Env.max_cache_mb;
    d_baseline = false;
    d_pipeline = None;
    d_backend = None;
    d_jobs = Util.Pool.jobs ();
    d_max_inflight = Util.Env.max_inflight;
    d_budget_steps = None;
    d_deadline_s = None;
    d_log = None;
    d_poll_s = 0.1;
    d_max_sessions = Util.Env.max_sessions;
    d_idle_timeout_s = Util.Env.idle_timeout_s;
    d_max_rbuf = Protocol.max_frame + Protocol.header_len;
    d_max_wbuf = Protocol.max_frame + Protocol.header_len;
    d_max_pipeline = 32;
    d_sndbuf = None;
    d_flush_every = Util.Env.flush_every;
    d_flush_interval_s = Util.Env.flush_interval_s }

(** What {!run} hands back when the loop ends. *)
type report = {
  r_graceful : bool;      (** drained and flushed (signal or Shutdown) *)
  r_requests : int;
  r_sessions : int;
  r_shed : int;           (** connections refused with [Busy] *)
  r_evicted_slow : int;   (** sessions evicted for an overfull write queue *)
  r_evicted_idle : int;   (** sessions evicted by the idle timeout *)
  r_flushes : int;        (** periodic store flushes *)
  r_max_pending : int;    (** high-water mark of queued response bytes *)
  r_stats_json : string;  (** final server stats (same shape as [Stats]) *)
}

(* ------------------------------------------------------------------ *)
(* Single-instance discipline: the pidfile                              *)

exception Already_running of int * string
(** [(pid, socket)]: a live daemon owns the socket; refusing to stomp
    it.  The CLI reports this as a clean one-line error. *)

let pidfile_path socket = socket ^ ".pid"

type liveness =
  | Live of int   (** pidfile names a process that is alive *)
  | Stale of int  (** pidfile names a dead process (crash leftovers) *)
  | Absent        (** no pidfile (or unreadable garbage — also stale) *)

(** Probe the pidfile guarding [socket].  [Live] means a daemon owns
    the socket right now; [Stale] means the previous owner died without
    cleanup (e.g. SIGKILL) and its socket and pidfile are safe to
    recover.  Garbage pidfile contents are treated as [Absent]: there
    is nothing trustworthy to refuse over. *)
let probe ~socket : liveness =
  let path = pidfile_path socket in
  match open_in path with
  | exception Sys_error _ -> Absent
  | ic ->
    let line = try input_line ic with End_of_file -> "" in
    close_in_noerr ic;
    (match int_of_string_opt (String.trim line) with
    | None -> Absent
    | Some pid -> (
      match Unix.kill pid 0 with
      | () -> Live pid
      | exception Unix.Unix_error (Unix.ESRCH, _, _) -> Stale pid
      | exception Unix.Unix_error (Unix.EPERM, _, _) -> Live pid
      | exception Unix.Unix_error _ -> Stale pid))

let write_pidfile socket =
  let path = pidfile_path socket in
  let oc = open_out path in
  output_string oc (string_of_int (Unix.getpid ()));
  output_char oc '\n';
  close_out oc

let remove_pidfile socket =
  try Sys.remove (pidfile_path socket) with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)

type conn = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;          (* bytes received, frames not yet peeled *)
  c_outq : string Queue.t;   (* framed responses not yet (fully) written *)
  mutable c_out_off : int;   (* bytes of the queue head already written *)
  mutable c_out_bytes : int; (* total bytes pending across the queue *)
  mutable c_last_active : float;  (* last read or write progress *)
  mutable c_closing : bool;  (* flush the queue, then close; no more reads *)
  c_session : Metrics.session;
  mutable c_open : bool;
  (* concurrent dispatch (--max-inflight > 1) only: *)
  mutable c_busy : bool;     (* a compile of this session is in flight *)
  mutable c_barrier : Protocol.compile_req option;
      (* a peeled --check compile waiting for the in-flight count to
         reach zero (scratch verification clears the caches, so it must
         run exclusively); blocks further peeling on this session *)
}

let close_conn c =
  if c.c_open then begin
    c.c_open <- false;
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)

type state = {
  st_cfg : cfg;
  st_config : Core.Config.t;
  st_store : Store.t option;
  st_sv : Metrics.server;
  mutable st_sessions : Metrics.session list;  (* every session ever *)
  mutable st_stop : bool;  (* graceful shutdown requested *)
  mutable st_since_flush : int;   (* compile requests since the last flush *)
  mutable st_last_flush : float;
  st_log : out_channel option;
}

let log_line st json =
  match st.st_log with
  | None -> ()
  | Some oc ->
    output_string oc json;
    output_char oc '\n';
    flush oc

let stats_json st =
  Metrics.server_json ~now:(Unix.gettimeofday ()) st.st_sv st.st_sessions
    (Option.map Store.stats_json st.st_store)

(* flush the store and reset the cadence counters; every flush is
   counted and logged so the crash window is observable *)
let flush_store st ~reason =
  match st.st_store with
  | None -> ()
  | Some store ->
    Store.flush store;
    st.st_since_flush <- 0;
    st.st_last_flush <- Unix.gettimeofday ();
    st.st_sv.sv_flushes <- st.st_sv.sv_flushes + 1;
    let open Valid.Trace.Json in
    log_line st
      (obj
         [ ("event", str "flush");
           ("reason", str reason);
           ("entries", int (Store.entry_count store)) ])

(* everything one compile produced, before any daemon bookkeeping — the
   part that is safe to run on a dispatcher worker domain (no [st]
   mutation, no metrics) *)
type compile_done = {
  k_resp : Protocol.response;
  k_incidents : int;
  k_shared_hits : int;
  k_shared_lookups : int;
  k_tracked_hits : int;
  k_tracked_lookups : int;
}

let compile_error msg =
  { k_resp = Protocol.Error_r msg; k_incidents = 0; k_shared_hits = 0;
    k_shared_lookups = 0; k_tracked_hits = 0; k_tracked_lookups = 0 }

(* per-request pipeline/backend resolution: an unknown name in a
   request is an application error ([Error_r] — deterministic, not
   retryable), never a daemon fault; "" picks the daemon's default *)
let resolve_config st (c : Protocol.compile_req) :
    (Core.Config.t, string) result =
  let base =
    if c.cr_baseline then
      let b = Core.Config.baseline ~procs:8 () in
      match st.st_cfg.d_pipeline with
      | Some pl -> Core.Config.with_pipeline pl b
      | None -> b
    else st.st_config
  in
  if c.cr_pipeline = "" then Ok base
  else
    match Core.Registry.parse c.cr_pipeline with
    | Ok pl -> Ok (Core.Config.with_pipeline pl base)
    | Error m -> Error m

let resolve_backend st (c : Protocol.compile_req) :
    (Backend.Registry.t, string) result =
  if c.cr_backend = "" then
    Ok (Option.value st.st_cfg.d_backend ~default:Backend.Registry.default)
  else Backend.Registry.find c.cr_backend

let compile_response st (c : Protocol.compile_req) : compile_done =
  match (resolve_config st c, resolve_backend st c) with
  | Error m, _ | _, Error m -> compile_error m
  | Ok config, Ok backend -> (
  match
    Local.compile_source ?budget_steps:st.st_cfg.d_budget_steps
      ?deadline_s:st.st_cfg.d_deadline_s ~check:c.cr_check ~backend config
      c.cr_source
  with
  | compiled ->
    let r = compiled.lc_result in
    let incidents = List.length r.pipeline.incidents in
    { k_resp =
        Protocol.Compiled
          { co_label = c.cr_label;
            co_output = compiled.lc_output;
            co_verdicts = compiled.lc_verdicts;
            co_incidents = incidents;
            co_reuse_rate = r.stats.st_reuse_rate;
            co_shared_hits = compiled.lc_shared_hits;
            co_shared_lookups = compiled.lc_shared_lookups;
            co_wall_ms = 1000.0 *. compiled.lc_wall_s;
            co_check_divergences = compiled.lc_check_divergences };
      k_incidents = incidents;
      k_shared_hits = compiled.lc_shared_hits;
      k_shared_lookups = compiled.lc_shared_lookups;
      k_tracked_hits = r.stats.st_hits;
      k_tracked_lookups = r.stats.st_lookups }
  | exception Frontend.Lexer.Error m -> compile_error ("lexical error: " ^ m)
  | exception Frontend.Parser.Error m -> compile_error ("syntax error: " ^ m)
  | exception e ->
    (* contained: the request failed, the session and server live on *)
    compile_error ("compile failed: " ^ Printexc.to_string e))

(* fold a finished compile into the session/server metrics (select loop
   only) and hand back its response *)
let apply_compile st (sess : Metrics.session) (d : compile_done) :
    Protocol.response =
  sess.ss_incidents <- sess.ss_incidents + d.k_incidents;
  st.st_sv.sv_incidents <- st.st_sv.sv_incidents + d.k_incidents;
  sess.ss_shared_hits <- sess.ss_shared_hits + d.k_shared_hits;
  sess.ss_shared_lookups <- sess.ss_shared_lookups + d.k_shared_lookups;
  sess.ss_tracked_hits <- sess.ss_tracked_hits + d.k_tracked_hits;
  sess.ss_tracked_lookups <- sess.ss_tracked_lookups + d.k_tracked_lookups;
  d.k_resp

let handle_compile st (sess : Metrics.session) (c : Protocol.compile_req) :
    Protocol.response =
  apply_compile st sess (compile_response st c)

(* count an error response against the session and the server *)
let note_error st (sess : Metrics.session) (resp : Protocol.response) =
  match resp with
  | Protocol.Error_r _ ->
    sess.ss_errors <- sess.ss_errors + 1;
    st.st_sv.sv_errors <- st.st_sv.sv_errors + 1
  | _ -> ()

(* crash-window discipline: the flush that covers a compile's facts
   happens before its response can reach the client *)
let compile_flush_tick st =
  st.st_since_flush <- st.st_since_flush + 1;
  if st.st_store <> None && st.st_since_flush >= st.st_cfg.d_flush_every then
    flush_store st ~reason:"request-count"

let log_request st (sess : Metrics.session) ~kind ~dt =
  Metrics.add sess.ss_lat dt;
  Metrics.add st.st_sv.sv_lat dt;
  let open Valid.Trace.Json in
  log_line st
    (obj
       [ ("event", str "request");
         ("session", int sess.ss_id);
         ("seq", int sess.ss_requests);
         ("kind", str kind);
         ("wall_ms", float (1000.0 *. dt));
         ( "shared_hit_rate",
           float (Metrics.rate_of sess.ss_shared_hits sess.ss_shared_lookups) );
         ("incidents", int sess.ss_incidents);
         ("errors", int sess.ss_errors) ])

let request_kind = function
  | Protocol.Compile c -> "compile " ^ c.cr_label
  | Protocol.Stats -> "stats"
  | Protocol.Ping -> "ping"
  | Protocol.Shutdown -> "shutdown"

let handle_request st conn (req : Protocol.request) : Protocol.response =
  let sess = conn.c_session in
  let t0 = Unix.gettimeofday () in
  sess.ss_requests <- sess.ss_requests + 1;
  st.st_sv.sv_requests <- st.st_sv.sv_requests + 1;
  let resp =
    match req with
    | Protocol.Compile c ->
      let r = handle_compile st sess c in
      note_error st sess r;
      compile_flush_tick st;
      r
    | Protocol.Stats ->
      (match st.st_store with
      | Some _ -> flush_store st ~reason:"stats"
      | None -> ());
      Protocol.Stats_reply (stats_json st)
    | Protocol.Ping -> Protocol.Pong
    | Protocol.Shutdown ->
      st.st_stop <- true;
      Protocol.Bye
  in
  log_request st sess ~kind:(request_kind req)
    ~dt:(Unix.gettimeofday () -. t0);
  resp

(* ------------------------------------------------------------------ *)
(* Concurrent compile dispatch (--max-inflight > 1)                    *)

(* Plain compile requests from distinct sessions execute concurrently
   on dedicated worker domains; the select loop stays the only writer
   of daemon state.  Each worker pins a {!Util.Pool} cache shard slot
   (its cache misses go to a private shard, the shared tier stays
   read-only) and compiles with jobs-here = 1; per-request dependence
   counters and budgets are isolated with {!Dep.Driver.isolate}.
   Completions travel back through a mutex-guarded list plus a
   self-pipe that wakes [select]. *)

type job = { j_conn : conn; j_req : Protocol.compile_req }

type completion = {
  k_conn : conn;
  k_kind : string;          (* request-log label *)
  k_compile : compile_done;
  k_wall : float;           (* worker-side wall seconds *)
}

type dispatcher = {
  dp_m : Mutex.t;                    (* guards jobs, done, stop *)
  dp_work : Condition.t;
  dp_jobs : job Queue.t;
  mutable dp_done : completion list; (* newest first *)
  mutable dp_stop : bool;
  dp_wake_r : Unix.file_descr;       (* self-pipe: workers wake select *)
  dp_wake_w : Unix.file_descr;
  mutable dp_domains : unit Domain.t list;
  mutable dp_inflight : int;         (* select loop only *)
  mutable dp_merge_due : bool;       (* worker shards await promotion *)
}

let wake_byte = Bytes.make 1 '!'

let worker_loop st dp slot () =
  Util.Pool.with_slot slot @@ fun () ->
  Util.Pool.with_jobs_here 1 @@ fun () ->
  let rec loop () =
    Mutex.lock dp.dp_m;
    while Queue.is_empty dp.dp_jobs && not dp.dp_stop do
      Condition.wait dp.dp_work dp.dp_m
    done;
    match Queue.take_opt dp.dp_jobs with
    | None -> Mutex.unlock dp.dp_m (* stopping, queue drained *)
    | Some j ->
      Mutex.unlock dp.dp_m;
      let t0 = Unix.gettimeofday () in
      let d =
        try Dep.Driver.isolate (fun () -> compile_response st j.j_req)
        with e ->
          (* belt and braces: a worker domain must never die *)
          compile_error ("compile failed: " ^ Printexc.to_string e)
      in
      let k =
        { k_conn = j.j_conn;
          k_kind = "compile " ^ j.j_req.Protocol.cr_label;
          k_compile = d;
          k_wall = Unix.gettimeofday () -. t0 }
      in
      Mutex.lock dp.dp_m;
      dp.dp_done <- k :: dp.dp_done;
      Mutex.unlock dp.dp_m;
      (try ignore (Unix.write dp.dp_wake_w wake_byte 0 1 : int)
       with Unix.Unix_error _ -> ());
      loop ()
  in
  loop ()

let dispatcher_start st n =
  let dp_wake_r, dp_wake_w = Unix.pipe () in
  Unix.set_nonblock dp_wake_r;
  Unix.set_nonblock dp_wake_w;
  let dp =
    { dp_m = Mutex.create (); dp_work = Condition.create ();
      dp_jobs = Queue.create (); dp_done = []; dp_stop = false;
      dp_wake_r; dp_wake_w; dp_domains = []; dp_inflight = 0;
      dp_merge_due = false }
  in
  dp.dp_domains <- List.init n (fun i -> Domain.spawn (worker_loop st dp i));
  dp

let dispatcher_stop dp =
  Mutex.lock dp.dp_m;
  dp.dp_stop <- true;
  Condition.broadcast dp.dp_work;
  Mutex.unlock dp.dp_m;
  List.iter Domain.join dp.dp_domains;
  dp.dp_domains <- [];
  (try Unix.close dp.dp_wake_r with Unix.Unix_error _ -> ());
  try Unix.close dp.dp_wake_w with Unix.Unix_error _ -> ()

(* hand a compile to the workers; the session is busy until its
   completion is processed *)
let dispatch st dp conn (c : Protocol.compile_req) =
  let sess = conn.c_session in
  sess.ss_requests <- sess.ss_requests + 1;
  st.st_sv.sv_requests <- st.st_sv.sv_requests + 1;
  conn.c_busy <- true;
  dp.dp_inflight <- dp.dp_inflight + 1;
  Mutex.lock dp.dp_m;
  Queue.add { j_conn = conn; j_req = c } dp.dp_jobs;
  Condition.signal dp.dp_work;
  Mutex.unlock dp.dp_m

(* drain the wake pipe and collect finished compiles, oldest first *)
let take_completions dp =
  let buf = Bytes.create 64 in
  (try
     while Unix.read dp.dp_wake_r buf 0 (Bytes.length buf) > 0 do
       ()
     done
   with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | Unix.Unix_error _ -> ());
  Mutex.lock dp.dp_m;
  let ks = dp.dp_done in
  dp.dp_done <- [];
  Mutex.unlock dp.dp_m;
  List.rev ks

(* ------------------------------------------------------------------ *)
(* Outgoing write queues                                               *)

(* every conn list is short (bounded by max_sessions), so summing is
   cheap enough to keep the high-water gauge exact *)
let total_pending conns =
  List.fold_left (fun a c -> if c.c_open then a + c.c_out_bytes else a) 0 conns

let log_evict st conn ~kind =
  let open Valid.Trace.Json in
  log_line st
    (obj
       [ ("event", str "evict");
         ("kind", str kind);
         ("session", int conn.c_session.ss_id);
         ("pending_bytes", int conn.c_out_bytes) ])

(* queue [wire] on [conn]; a queue that outgrows the cap means the
   peer stopped reading — evict it rather than hold its bytes forever *)
let enqueue st conns conn (wire : string) =
  if conn.c_open then begin
    Queue.add wire conn.c_outq;
    conn.c_out_bytes <- conn.c_out_bytes + String.length wire;
    let pending = total_pending conns in
    if pending > st.st_sv.sv_max_pending then
      st.st_sv.sv_max_pending <- pending;
    if conn.c_out_bytes > st.st_cfg.d_max_wbuf then begin
      st.st_sv.sv_evicted_slow <- st.st_sv.sv_evicted_slow + 1;
      log_evict st conn ~kind:"slow";
      close_conn conn
    end
  end

(* write as much of the queue as the kernel will take right now; never
   blocks (conn fds are non-blocking).  Closes on a gone peer; closes a
   [c_closing] conn whose last byte just left. *)
let flush_conn conn =
  if conn.c_open then begin
    let progress = ref false in
    let continue = ref true in
    while !continue && conn.c_open do
      match Queue.peek_opt conn.c_outq with
      | None -> continue := false
      | Some head -> (
        let len = String.length head - conn.c_out_off in
        match Unix.write_substring conn.c_fd head conn.c_out_off len with
        | 0 -> continue := false
        | k ->
          progress := true;
          conn.c_out_bytes <- conn.c_out_bytes - k;
          if k = len then begin
            ignore (Queue.pop conn.c_outq);
            conn.c_out_off <- 0
          end
          else begin
            (* kernel buffer full: stop until select says writable *)
            conn.c_out_off <- conn.c_out_off + k;
            continue := false
          end
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
          continue := false
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error _ -> close_conn conn)
    done;
    if !progress && conn.c_open then
      conn.c_last_active <- Unix.gettimeofday ();
    if conn.c_closing && conn.c_open && Queue.is_empty conn.c_outq then
      close_conn conn
  end

(* ------------------------------------------------------------------ *)
(* Frame processing                                                    *)

(* protocol violation or cap breach: answer [Rejected], stop reading,
   close once the answer is flushed.  One helper — the malformed-frame
   and malformed-payload paths used to be two identical branches. *)
let reject st conns conn msg =
  conn.c_session.ss_errors <- conn.c_session.ss_errors + 1;
  st.st_sv.sv_errors <- st.st_sv.sv_errors + 1;
  st.st_sv.sv_rejects <- st.st_sv.sv_rejects + 1;
  enqueue st conns conn
    (Protocol.frame (Protocol.encode_response (Protocol.Rejected msg)));
  conn.c_closing <- true

(* peel and answer buffered frames on [conn], at most [budget] per call
   so one aggressive pipeliner round-robins with the other sessions
   (the shutdown drain passes [max_int]) *)
let drain_frames ?budget st conns conn =
  let budget =
    ref (match budget with Some b -> b | None -> st.st_cfg.d_max_pipeline)
  in
  let continue = ref true in
  while !continue && conn.c_open && (not conn.c_closing) && !budget > 0 do
    match Protocol.peel conn.c_buf with
    | None -> continue := false
    | Some payload -> (
      decr budget;
      match Protocol.decode_request payload with
      | req ->
        let resp = handle_request st conn req in
        enqueue st conns conn
          (Protocol.frame (Protocol.encode_response resp));
        if resp = Protocol.Bye then conn.c_closing <- true
      | exception Protocol.Malformed m ->
        reject st conns conn ("malformed request: " ^ m))
    | exception Protocol.Malformed m ->
      reject st conns conn ("broken framing: " ^ m)
  done

(* Peel and route buffered frames in concurrent mode.  At most one
   request of a session is ever in flight (no peeling while busy), so a
   session's responses come back in request order; non-compile requests
   execute inline (they are cheap and touch daemon state); a [--check]
   compile parks as a barrier until nothing is in flight (its scratch
   verification clears the caches). *)
let dispatch_frames st dp conns conn =
  let budget = ref st.st_cfg.d_max_pipeline in
  let continue = ref true in
  while
    !continue && conn.c_open && (not conn.c_closing) && (not conn.c_busy)
    && conn.c_barrier = None && !budget > 0
    && dp.dp_inflight < st.st_cfg.d_max_inflight
  do
    match Protocol.peel conn.c_buf with
    | None -> continue := false
    | Some payload -> (
      decr budget;
      match Protocol.decode_request payload with
      | Protocol.Compile c when c.cr_check -> conn.c_barrier <- Some c
      | Protocol.Compile c -> dispatch st dp conn c
      | req ->
        let resp = handle_request st conn req in
        enqueue st conns conn (Protocol.frame (Protocol.encode_response resp));
        if resp = Protocol.Bye then conn.c_closing <- true
      | exception Protocol.Malformed m ->
        reject st conns conn ("malformed request: " ^ m))
    | exception Protocol.Malformed m ->
      reject st conns conn ("broken framing: " ^ m)
  done

(* fold one finished compile back into the daemon (select loop only):
   metrics, flush cadence, request log, response — the same sequence
   the synchronous path runs inside [handle_request] *)
let process_completion st dp conns (k : completion) =
  let conn = k.k_conn in
  let sess = conn.c_session in
  conn.c_busy <- false;
  dp.dp_inflight <- dp.dp_inflight - 1;
  dp.dp_merge_due <- true;
  let resp = apply_compile st sess k.k_compile in
  note_error st sess resp;
  compile_flush_tick st;
  log_request st sess ~kind:k.k_kind ~dt:k.k_wall;
  enqueue st conns conn (Protocol.frame (Protocol.encode_response resp))

(* run every parked [--check] compile, oldest session first — caller
   guarantees zero requests in flight.  Shards are promoted first so
   the incremental half of the check sees every fact the workers
   computed. *)
let run_barriers st dp conns ordered =
  List.iter
    (fun conn ->
      match conn.c_barrier with
      | None -> ()
      | Some c ->
        conn.c_barrier <- None;
        if conn.c_open && not conn.c_closing then begin
          Util.Cachectl.merge_shards ();
          dp.dp_merge_due <- false;
          let resp = handle_request st conn (Protocol.Compile c) in
          enqueue st conns conn (Protocol.frame (Protocol.encode_response resp))
        end)
    ordered

(* ------------------------------------------------------------------ *)
(* The server loop                                                     *)

(** Run the daemon until a [Shutdown] request, a SIGINT/SIGTERM (when
    [signals]), or [stop] is set externally.  Returns after draining
    in-flight requests, flushing the store and removing the socket.
    [on_ready] fires once the socket is listening (tests and the bench
    use it to gate client connects).
    @raise Already_running when a live daemon owns the socket. *)
let run ?(signals = false) ?(stop = Atomic.make false) ?on_ready (cfg : cfg) :
    report =
  (* single-instance discipline before touching the socket *)
  (match probe ~socket:cfg.d_socket with
  | Live pid -> raise (Already_running (pid, cfg.d_socket))
  | Stale _ | Absent -> ());
  Util.Pool.set_jobs cfg.d_jobs;
  let store =
    Option.map
      (fun dir ->
        Store.open_store ~dir ~max_bytes:(cfg.d_max_cache_mb * 1024 * 1024) ())
      cfg.d_store_dir
  in
  let prev_backing = Option.map Store.install store in
  (* append: a restarted daemon must extend the log, not erase the
     history that explains why it restarted *)
  let log_oc =
    Option.map
      (fun p -> open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 p)
      cfg.d_log
  in
  (* a client that disappears mid-write must not kill the server *)
  let prev_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let prev_handlers =
    if signals then
      let h = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
      Some (Sys.signal Sys.sigint h, Sys.signal Sys.sigterm h)
    else None
  in
  (if Sys.file_exists cfg.d_socket then
     try Unix.unlink cfg.d_socket with Unix.Unix_error _ -> ());
  write_pidfile cfg.d_socket;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let now0 = Unix.gettimeofday () in
  let st =
    { st_cfg = cfg;
      st_config =
        (let base =
           if cfg.d_baseline then Core.Config.baseline ~procs:8 ()
           else Core.Config.polaris ~procs:8 ()
         in
         match cfg.d_pipeline with
         | Some pl -> Core.Config.with_pipeline pl base
         | None -> base);
      st_store = store;
      st_sv = Metrics.server ~now:now0;
      st_sessions = [];
      st_stop = false;
      st_since_flush = 0;
      st_last_flush = now0;
      st_log = log_oc }
  in
  let conns : conn list ref = ref [] in
  (* concurrent dispatch only when asked: at the default
     --max-inflight 1 the classic synchronous select loop runs
     unchanged *)
  let dp =
    if cfg.d_max_inflight > 1 then
      Some (dispatcher_start st (min cfg.d_max_inflight Util.Pool.max_jobs))
    else None
  in
  let cleanup () =
    Option.iter dispatcher_stop dp;
    List.iter close_conn !conns;
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    (try Unix.unlink cfg.d_socket with Unix.Unix_error _ -> ());
    remove_pidfile cfg.d_socket;
    Option.iter Store.flush store;
    Option.iter (fun prev -> Store.uninstall prev) prev_backing;
    (match prev_handlers with
    | Some (hi, ht) ->
      ignore (Sys.signal Sys.sigint hi);
      ignore (Sys.signal Sys.sigterm ht)
    | None -> ());
    ignore (Sys.signal Sys.sigpipe prev_sigpipe);
    Option.iter close_out log_oc
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.d_socket);
  Unix.listen listen_fd 64;
  (let open Valid.Trace.Json in
   log_line st
     (obj
        [ ("event", str "listening");
          ("socket", str cfg.d_socket);
          ( "store",
            match cfg.d_store_dir with Some d -> str d | None -> null ) ]);
   (* the restart marker: how much analysis state this lifetime
      recovered from the previous one's flushes *)
   log_line st
     (obj
        [ ("event", str "restart");
          ("pid", int (Unix.getpid ()));
          ( "recovered_entries",
            int (match store with Some s -> Store.loaded_count s | None -> 0)
          );
          ( "corrupt_dropped",
            int (match store with Some s -> Store.corrupt_count s | None -> 0)
          ) ]));
  Option.iter (fun f -> f ()) on_ready;
  let busy_wire = Protocol.frame (Protocol.encode_response Protocol.Busy) in
  let chunk = Bytes.create 65536 in
  let next_session = ref 0 in
  let accept_one now =
    match Unix.accept listen_fd with
    | fd, _ ->
      let open_sessions =
        List.length (List.filter (fun c -> c.c_open) !conns)
      in
      if open_sessions >= cfg.d_max_sessions then begin
        (* shed: one tiny Busy frame (always fits the empty socket
           buffer), then close — no session, no state *)
        st.st_sv.sv_shed <- st.st_sv.sv_shed + 1;
        (let open Valid.Trace.Json in
         log_line st
           (obj [ ("event", str "shed"); ("open_sessions", int open_sessions) ]));
        (try ignore (Unix.write_substring fd busy_wire 0 (String.length busy_wire))
         with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        Unix.set_nonblock fd;
        (match cfg.d_sndbuf with
        | Some n -> (
          try Unix.setsockopt_int fd Unix.SO_SNDBUF n
          with Unix.Unix_error _ | Invalid_argument _ -> ())
        | None -> ());
        incr next_session;
        st.st_sv.sv_sessions <- st.st_sv.sv_sessions + 1;
        let sess = Metrics.session !next_session in
        st.st_sessions <- sess :: st.st_sessions;
        conns :=
          { c_fd = fd; c_buf = Buffer.create 4096; c_outq = Queue.create ();
            c_out_off = 0; c_out_bytes = 0; c_last_active = now;
            c_closing = false; c_session = sess; c_open = true;
            c_busy = false; c_barrier = None }
          :: !conns
      end
    | exception Unix.Unix_error _ -> ()
  in
  while (not st.st_stop) && not (Atomic.get stop) do
    let now = Unix.gettimeofday () in
    (* time-based flush: bound the crash window even on a quiet socket *)
    if
      store <> None && st.st_since_flush > 0
      && now -. st.st_last_flush >= cfg.d_flush_interval_s
    then flush_store st ~reason:"interval";
    (* idle eviction (a session whose compile is in flight or parked at
       a barrier is waiting on us, not idle) *)
    List.iter
      (fun c ->
        if
          c.c_open && (not c.c_busy) && c.c_barrier = None
          && now -. c.c_last_active > cfg.d_idle_timeout_s
        then begin
          st.st_sv.sv_evicted_idle <- st.st_sv.sv_evicted_idle + 1;
          log_evict st c ~kind:"idle";
          close_conn c
        end)
      !conns;
    conns := List.filter (fun c -> c.c_open) !conns;
    (* oldest-first keeps per-turn processing in arrival order *)
    let ordered = List.rev !conns in
    let read_fds =
      (match dp with Some d -> [ d.dp_wake_r ] | None -> [])
      @ listen_fd
        :: List.filter_map
             (fun c ->
               if c.c_open && not c.c_closing then Some c.c_fd else None)
             ordered
    in
    let write_fds =
      List.filter_map
        (fun c -> if c.c_open && c.c_out_bytes > 0 then Some c.c_fd else None)
        ordered
    in
    (* frames deferred by the pipelining cap (or, in concurrent mode,
       by capacity/barriers) are work we already have — but only poll
       at zero when acting on them is actually possible now *)
    let timeout =
      let dispatchable c =
        c.c_open && (not c.c_closing) && Protocol.has_frame c.c_buf
      in
      let progress =
        match dp with
        | None -> List.exists dispatchable ordered
        | Some d ->
          let barrier_waiting =
            List.exists (fun c -> c.c_open && c.c_barrier <> None) ordered
          in
          if barrier_waiting then d.dp_inflight = 0
          else
            d.dp_inflight < cfg.d_max_inflight
            && List.exists
                 (fun c ->
                   dispatchable c && (not c.c_busy) && c.c_barrier = None)
                 ordered
      in
      if progress then 0.0 else cfg.d_poll_s
    in
    (match Unix.select read_fds write_fds [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _writable, _ ->
      if List.mem listen_fd readable then accept_one now;
      (* reads *)
      List.iter
        (fun c ->
          if c.c_open && (not c.c_closing) && List.mem c.c_fd readable then
            match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
            | 0 -> close_conn c
            | n ->
              c.c_last_active <- now;
              Buffer.add_subbytes c.c_buf chunk 0 n;
              if Buffer.length c.c_buf > cfg.d_max_rbuf then
                reject st !conns c "receive buffer cap exceeded"
            | exception
                Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
              close_conn c
            | exception
                Unix.Unix_error
                  ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              ())
        ordered;
      (* execute buffered frames — fresh and deferred alike, capped per
         connection per turn *)
      (match dp with
      | None -> List.iter (fun c -> drain_frames st !conns c) ordered
      | Some d ->
        (* finished compiles first: they free capacity and sessions *)
        List.iter (process_completion st d !conns) (take_completions d);
        if d.dp_inflight = 0 then begin
          (* quiescent point: promote worker shards so every fact found
             this round reaches the shared tier, then run any parked
             --check compiles exclusively *)
          if d.dp_merge_due then begin
            Util.Cachectl.merge_shards ();
            d.dp_merge_due <- false
          end;
          run_barriers st d !conns ordered
        end;
        (* dispatch new work unless a barrier is (still) waiting for
           the in-flight compiles to drain *)
        if
          not (List.exists (fun c -> c.c_open && c.c_barrier <> None) !conns)
        then List.iter (fun c -> dispatch_frames st d !conns c) ordered);
      (* opportunistic flush: the common case writes the response now;
         the select write set only exists to wake us for the backlog *)
      List.iter (fun c -> if c.c_out_bytes > 0 then flush_conn c) ordered);
    conns := List.filter (fun c -> c.c_open) !conns
  done;
  (* concurrent mode: wait out the compiles still in flight (their
     sessions are owed answers), then run any parked --check compiles
     at the now-quiescent point *)
  (match dp with
  | None -> ()
  | Some d ->
    while d.dp_inflight > 0 do
      (match Unix.select [ d.dp_wake_r ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | _ -> ());
      List.iter (process_completion st d !conns) (take_completions d)
    done;
    if d.dp_merge_due then begin
      Util.Cachectl.merge_shards ();
      d.dp_merge_due <- false
    end;
    run_barriers st d !conns (List.rev !conns));
  (* graceful drain: answer every request already sent (one last
     non-blocking read picks up bytes in flight — nothing waits for
     new work), then flush the queues blocking, flush the store and go
     down *)
  List.iter
    (fun c ->
      if c.c_open then begin
        (try
           let continue = ref true in
           while !continue do
             match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
             | 0 -> continue := false
             | n -> Buffer.add_subbytes c.c_buf chunk 0 n
             | exception Unix.Unix_error _ -> continue := false
           done
         with Unix.Unix_error _ -> ());
        if not c.c_closing then drain_frames ~budget:max_int st !conns c;
        (* deliver the queued answers even to a peer whose socket
           buffer is full: blocking writes, best effort *)
        (try
           Unix.clear_nonblock c.c_fd;
           while c.c_open && not (Queue.is_empty c.c_outq) do
             let head = Queue.peek c.c_outq in
             let len = String.length head - c.c_out_off in
             match Unix.write_substring c.c_fd head c.c_out_off len with
             | 0 -> close_conn c
             | k ->
               c.c_out_bytes <- c.c_out_bytes - k;
               if k = len then begin
                 ignore (Queue.pop c.c_outq);
                 c.c_out_off <- 0
               end
               else c.c_out_off <- c.c_out_off + k
           done
         with Unix.Unix_error _ -> close_conn c)
      end)
    (List.rev !conns);
  let final = stats_json st in
  (let open Valid.Trace.Json in
   log_line st (obj [ ("event", str "shutdown"); ("stats", final) ]));
  { r_graceful = true;
    r_requests = st.st_sv.sv_requests;
    r_sessions = st.st_sv.sv_sessions;
    r_shed = st.st_sv.sv_shed;
    r_evicted_slow = st.st_sv.sv_evicted_slow;
    r_evicted_idle = st.st_sv.sv_evicted_idle;
    r_flushes = st.st_sv.sv_flushes;
    r_max_pending = st.st_sv.sv_max_pending;
    r_stats_json = final }
