(** Shared-memory multiprocessor timing model.

    Stands in for the paper's 8-processor SGI Challenge (Fig. 7) and
    Alliant FX/80 (Fig. 6).  Given the per-iteration work of a DOALL
    loop it computes the parallel execution time under static block
    scheduling plus the overheads the paper's transformations imply
    (fork/join, private-copy setup, reduction merging).

    The block-schedule geometry ([block_start] / [proc_of]) is shared
    with the real executor {!Parexec}: modeled processor j and runtime
    domain j own exactly the same iteration range. *)

type config = {
  procs : int;              (** number of processors *)
  fork_cost : int;          (** fixed cost of starting a parallel region *)
  fork_per_proc : int;      (** per-processor dispatch cost *)
  private_setup : int;      (** per privatized name, per processor *)
  reduction_per_elem : int; (** merge cost per reduced element, per processor *)
  barrier_cost : int;       (** join barrier *)
}

let default ?(procs = 8) () =
  { procs; fork_cost = 120; fork_per_proc = 12; private_setup = 6;
    reduction_per_elem = 2; barrier_cost = 40 }

(** First iteration owned by processor [j] (0-based) under static block
    scheduling of [n] iterations on [p] processors: iteration [k] goes
    to processor [k * p / n], so processor [j] owns
    [ceil (j * n / p) .. ceil ((j+1) * n / p) - 1].

    Computed division-first — [j * (n / p) + ceil (j * (n mod p) / p)]
    — so the intermediate products stay below [p * p] even when [n] is
    a near-[max_int] trip count ([j * n] would overflow). *)
let block_start ~p ~n j =
  if j <= 0 then 0
  else if j >= p then n
  else (j * (n / p)) + (((j * (n mod p)) + p - 1) / p)

(** Processor owning iteration [k] of [n] (the inverse of
    [block_start]); equals [min (p-1) (k * p / n)] without the
    overflowing [k * p] product.  [p] is small, so a linear scan over
    the boundaries is exact and cheap. *)
let proc_of ~p ~n k =
  if p <= 1 || n <= 0 then 0
  else begin
    let j = ref 0 in
    while !j < p - 1 && block_start ~p ~n (!j + 1) <= k do incr j done;
    !j
  end

(** Static block scheduling: iteration [k] of [n] goes to processor
    [k * p / n]; the region time is the maximum per-processor sum. *)
let block_schedule_time (cfg : config) (iter_costs : int array) =
  let n = Array.length iter_costs in
  if n = 0 then 0
  else begin
    let p = max 1 cfg.procs in
    let worst = ref 0 in
    for j = 0 to p - 1 do
      let lo = block_start ~p ~n j and hi = block_start ~p ~n (j + 1) in
      let sum = ref 0 in
      for k = lo to hi - 1 do
        sum := !sum + iter_costs.(k)
      done;
      if !sum > !worst then worst := !sum
    done;
    !worst
  end

(** Total simulated time of one DOALL instantiation.

    [n_private] privatized names, [reduction_elems] total elements that
    must be merged across processors after the loop. *)
let doall_time (cfg : config) ~iter_costs ~n_private ~reduction_elems =
  let p = max 1 cfg.procs in
  let fork = cfg.fork_cost + (cfg.fork_per_proc * p) in
  let setup = cfg.private_setup * n_private * p in
  let body = block_schedule_time cfg iter_costs in
  let merge = cfg.reduction_per_elem * reduction_elems in
  fork + setup + body + merge + cfg.barrier_cost

(** Speedup of [par] over [seq] as a float. *)
let speedup ~seq ~par =
  if par <= 0 then 0.0 else float_of_int seq /. float_of_int par
