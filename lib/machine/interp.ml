(** Fortran interpreter with a simulated-time cost model.

    The interpreter serves three roles in the reproduction:
    - semantic oracle: transformation passes are validated by running
      original vs. transformed programs and comparing memory/output;
    - serial timer: Table 1's serial-time column is the simulated time
      of each suite code;
    - parallel timer: with [parallel = true] the annotations produced by
      the compiler ({!Fir.Ast.loop_info}) are honoured and DOALL loops
      are timed with the {!Parsim} multiprocessor model (execution stays
      sequential, so semantics are independent of the timing model).

    Simulated time is deterministic: a pure function of program, input
    and configuration. *)

open Fir
open Ast

exception Runtime_error of string

(** Raised when execution exceeds [max_steps]; the payload locates the
    abort: statement count, executing unit, innermost DO loop. *)
exception Fuel_exhausted of string

let error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Cost constants                                                      *)

module Cost = struct
  let binop = function
    | Add | Sub | And | Or | Eq | Ne | Lt | Le | Gt | Ge -> 1
    | Mul -> 1
    | Div -> 4
    | Pow -> 8

  let unop = 1
  let intrinsic = 4
  let assign = 1
  let mem_hit = 1
  let mem_miss = 9
  let loop_iter = 2
  let call = 16
  let print = 8
end

(* ------------------------------------------------------------------ *)
(* Configuration and state                                             *)

type config = {
  parallel : bool;              (** honour DOALL annotations for timing *)
  machine : Parsim.config;
  use_cache : bool;
  max_steps : int;              (** fuel: statements executed before abort *)
  seed : int option;
      (** when set, fresh local/COMMON storage is filled with
          deterministic splitmix64 values (keyed by variable name, not
          allocation order) instead of zeros — the translation-validation
          oracle uses this to differentially execute a program pair on
          several initial stores *)
}

let default_config ?(parallel = false) ?(procs = 8) ?(use_cache = true)
    ?seed () =
  { parallel; machine = Parsim.default ~procs (); use_cache;
    max_steps = 200_000_000; seed }

type rw = R | W

type outcome = Normal | Jump of int | Returned | Stopped

type frame = {
  unit_ : Punit.t;
  vars : (string, Storage.binding) Hashtbl.t;
}

type state = {
  prog : Program.t;
  cfg : config;
  cache : Cache.t;
  commons : (string, Storage.binding) Hashtbl.t;  (** key "BLK/NAME" *)
  mutable time : int;
  mutable steps : int;
  mutable par_depth : int;       (** > 0 when inside a simulated DOALL *)
  mutable cur_unit : string;     (** unit being executed (fuel diagnostics) *)
  mutable cur_loop : string option;  (** innermost DO index being executed *)
  mutable output : string list;  (** PRINT lines, reversed *)
  mutable on_access : (rw -> string -> int -> unit) option;
      (** runtime-analysis hook: kind, array name, linear element index *)
  mutable on_loop_iter : (int -> int -> int -> unit) option;
      (** called before each DO iteration: loop statement id, iteration
          number (0-based), current simulated time *)
  mutable on_loop_done : (int -> int -> unit) option;
      (** called when a DO completes: loop statement id, time *)
  mutable on_assign : (string -> unit) option;
      (** scalar-write hook: called with the variable name on every
          assignment to a scalar (the real executor tracks last-value
          copy-out of privatized scalars with it) *)
  mutable on_parallel_do :
    (state -> frame -> int -> do_loop -> init:int -> step:int -> trips:int ->
     outcome option)
      option;
      (** real-execution hook: offered every DO loop reached at
          [par_depth = 0] with its evaluated bounds, {e before} the
          serial (or Parsim-timed) path runs.  Returning [Some outcome]
          means the hook executed the loop (e.g. {!Parexec} ran it on
          domains); [None] falls through to the ordinary path.  The
          hook must leave [idx] and all memory exactly as serial
          execution would. *)
}

let charge st n = st.time <- st.time + n

let charge_mem st (v : Storage.view) i =
  if st.cfg.use_cache then
    let hit = Cache.access st.cache (Storage.address v i) in
    charge st (if hit then Cost.mem_hit else Cost.mem_miss)
  else charge st Cost.mem_hit

let tick st =
  st.steps <- st.steps + 1;
  if st.steps > st.cfg.max_steps then
    raise
      (Fuel_exhausted
         (Fmt.str "after %d statements in unit %s%s" st.steps st.cur_unit
            (match st.cur_loop with
            | Some i -> ", loop DO " ^ i
            | None -> "")))

(* deterministic per-name seeding of fresh storage: the value stream
   depends only on (seed, name), so the original and the transformed
   program see the same initial store regardless of allocation order;
   integers are kept small so seeded loop bounds stay tame *)
let seed_binding seed name (b : Storage.binding) =
  let r = Util.Prng.create (seed lxor (Hashtbl.hash name * 0x2545F491)) in
  let n = Storage.extent_of b in
  for i = 0 to n - 1 do
    let v =
      match b.Storage.elem with
      | Integer -> Value.Int (Util.Prng.int r 4)
      | Logical -> Value.Bool (Util.Prng.int r 2 = 1)
      | _ -> Value.Real (Util.Prng.float r)
    in
    Storage.write_elem b.view i v
  done

let maybe_seed st name (b : Storage.binding) =
  (match st.cfg.seed with Some s -> seed_binding s name b | None -> ());
  b

(* ------------------------------------------------------------------ *)
(* Variable binding                                                    *)

let rec const_int_expr st (fr : frame) e =
  (* dimension expressions: evaluated with parameters and current frame *)
  Value.to_int (eval st fr e)

and binding_for st (fr : frame) name : Storage.binding =
  match Hashtbl.find_opt fr.vars name with
  | Some b -> b
  | None ->
    let sym = Symtab.lookup fr.unit_.pu_symtab name in
    let b =
      match sym.sym_common with
      | Some blk -> common_binding st fr blk sym
      | None ->
        (match sym.sym_param with
        | Some value ->
          (* parameters are bound once to their constant value *)
          let b = Storage.scalar_binding sym.sym_type in
          Storage.write_elem b.view 0 (eval st fr value);
          b
        | None ->
          maybe_seed st sym.sym_name
            (if sym.sym_dims = [] then Storage.scalar_binding sym.sym_type
             else Storage.array_binding sym.sym_type (eval_dims st fr sym)))
    in
    Hashtbl.replace fr.vars name b;
    b

and eval_dims st fr (sym : symbol) =
  List.map
    (fun (lo, hi) ->
      let lo = const_int_expr st fr lo in
      match hi with
      | Var "*" -> (lo, -1)
      | _ ->
        let hi = const_int_expr st fr hi in
        (lo, hi - lo + 1))
    sym.sym_dims

and common_binding st fr blk (sym : symbol) =
  let key = blk ^ "/" ^ sym.sym_name in
  match Hashtbl.find_opt st.commons key with
  | Some b -> b
  | None ->
    let b =
      maybe_seed st key
        (if sym.sym_dims = [] then Storage.scalar_binding sym.sym_type
         else Storage.array_binding sym.sym_type (eval_dims st fr sym))
    in
    Hashtbl.replace st.commons key b;
    b

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)

and element_index st fr name (subs : expr list) =
  let b = binding_for st fr name in
  if b.dims = [] then error "%s subscripted but bound as scalar" name;
  let subs = List.map (fun e -> Value.to_int (eval st fr e)) subs in
  charge st (List.length subs);
  (b, Storage.linear_index b.dims subs)

and eval st fr (e : expr) : Value.t =
  match e with
  | Int_lit n -> Value.Int n
  | Real_lit x -> Value.Real x
  | Logical_lit b -> Value.Bool b
  | Char_lit s -> Value.Str s
  | Wildcard n -> error "wildcard ?%d evaluated" n
  | Var v ->
    let b = binding_for st fr v in
    if b.dims <> [] then error "array %s used as scalar" v;
    Storage.read_elem b.view 0
  | Ref (v, subs) ->
    let b, i = element_index st fr v subs in
    (match st.on_access with Some f -> f R v i | None -> ());
    charge_mem st b.view i;
    Storage.read_elem b.view i
  | Unary (op, a) ->
    charge st Cost.unop;
    let va = eval st fr a in
    (match op with Neg -> Value.neg va | Not -> Value.Bool (not (Value.to_bool va)))
  | Binary (op, a, b) -> (
    charge st (Cost.binop op);
    match op with
    | And ->
      (* no short-circuit in F77 semantics, but evaluation order is free;
         we evaluate both, matching most compilers' simple codegen *)
      let va = Value.to_bool (eval st fr a) in
      let vb = Value.to_bool (eval st fr b) in
      Value.Bool (va && vb)
    | Or ->
      let va = Value.to_bool (eval st fr a) in
      let vb = Value.to_bool (eval st fr b) in
      Value.Bool (va || vb)
    | _ ->
      let va = eval st fr a in
      let vb = eval st fr b in
      (match op with
      | Add -> Value.add va vb
      | Sub -> Value.sub va vb
      | Mul -> Value.mul va vb
      | Div -> Value.div va vb
      | Pow -> Value.pow va vb
      | Eq -> Value.Bool (Value.equal va vb)
      | Ne -> Value.Bool (not (Value.equal va vb))
      | Lt -> Value.Bool (Value.compare_num va vb < 0)
      | Le -> Value.Bool (Value.compare_num va vb <= 0)
      | Gt -> Value.Bool (Value.compare_num va vb > 0)
      | Ge -> Value.Bool (Value.compare_num va vb >= 0)
      | And | Or -> assert false))
  | Fun_call (f, args) -> eval_call st fr f args

and eval_call st fr f args =
  match intrinsic st fr f args with
  | Some v -> v
  | None -> (
    match Program.find_unit st.prog f with
    | Some u when Punit.is_function u ->
      charge st Cost.call;
      let callee = call_frame st fr u args in
      run_unit_body st callee;
      let ret = binding_for st callee f in
      Storage.read_elem ret.view 0
    | _ -> error "unknown function %s" f)

and intrinsic st fr name args =
  let open Value in
  let ev e = eval st fr e in
  let unary f = match args with [ a ] -> Some (f (ev a)) | _ -> None in
  let nary2 f =
    match List.map ev args with
    | a :: rest -> Some (List.fold_left f a rest)
    | [] -> None
  in
  let r =
    match name with
    | "ABS" | "IABS" | "DABS" ->
      unary (function Int n -> Int (abs n) | v -> Real (Float.abs (to_float v)))
    | "MOD" | "AMOD" | "DMOD" -> (
      match List.map ev args with
      | [ Int a; Int b ] -> Some (Int (a mod b))
      | [ a; b ] -> Some (Real (Float.rem (to_float a) (to_float b)))
      | _ -> None)
    | "MAX" | "MAX0" | "AMAX1" | "DMAX1" ->
      nary2 (fun a b -> if compare_num a b >= 0 then a else b)
    | "MIN" | "MIN0" | "AMIN1" | "DMIN1" ->
      nary2 (fun a b -> if compare_num a b <= 0 then a else b)
    | "SQRT" | "DSQRT" -> unary (fun v -> Real (Float.sqrt (to_float v)))
    | "SIN" | "DSIN" -> unary (fun v -> Real (Float.sin (to_float v)))
    | "COS" | "DCOS" -> unary (fun v -> Real (Float.cos (to_float v)))
    | "TAN" | "DTAN" -> unary (fun v -> Real (Float.tan (to_float v)))
    | "ATAN" | "DATAN" -> unary (fun v -> Real (Float.atan (to_float v)))
    | "EXP" | "DEXP" -> unary (fun v -> Real (Float.exp (to_float v)))
    | "LOG" | "ALOG" | "DLOG" -> unary (fun v -> Real (Float.log (to_float v)))
    | "INT" | "IFIX" | "IDINT" -> unary (fun v -> Int (to_int v))
    | "NINT" | "IDNINT" ->
      unary (fun v -> Int (int_of_float (Float.round (to_float v))))
    | "REAL" | "FLOAT" | "DBLE" | "SNGL" -> unary (fun v -> Real (to_float v))
    | "SIGN" | "ISIGN" | "DSIGN" -> (
      match List.map ev args with
      | [ a; b ] ->
        let mag = Float.abs (to_float a) in
        let v = if to_float b < 0.0 then -.mag else mag in
        Some (match a with Int _ -> Int (int_of_float v) | _ -> Real v)
      | _ -> None)
    | _ -> None
  in
  if r <> None then charge st Cost.intrinsic;
  r

(* ------------------------------------------------------------------ *)
(* Calls                                                               *)

and call_frame st (caller : frame) (u : Punit.t) (actuals : expr list) : frame =
  if List.length actuals <> List.length u.pu_args then
    error "%s called with %d args, expects %d" u.pu_name (List.length actuals)
      (List.length u.pu_args);
  let callee = { unit_ = u; vars = Hashtbl.create 16 } in
  (* two-phase binding: scalars first, then arrays, because an array
     formal's dimension expressions may reference scalar formals that
     appear later in the argument list (adjustable arrays) *)
  let bind_scalar formal actual (sym : symbol) =
    let bound : Storage.binding =
      match actual with
      | Var v ->
        let b = binding_for st caller v in
        (* scalar dummy: alias the caller's cell (or an array's first
           element when a whole array is passed) *)
        { b with dims = [] }
      | Ref (v, subs) ->
        let b, i = element_index st caller v subs in
        let view = { b.Storage.view with off = b.Storage.view.off + i } in
        { Storage.view; dims = []; elem = b.elem }
      | e ->
        (* expression actual: copy-in, read-only temporary *)
        let v = eval st caller e in
        let typ = match v with Value.Int _ -> Integer | _ -> Real in
        let b = Storage.scalar_binding typ in
        Storage.write_elem b.view 0 v;
        b
    in
    ignore sym;
    Hashtbl.replace callee.vars formal bound
  in
  let bind_array formal actual (sym : symbol) =
    let bound : Storage.binding =
      match actual with
      | Var v ->
        let b = binding_for st caller v in
        { b with dims = eval_dims_in st callee caller sym }
      | Ref (v, subs) ->
        let b, i = element_index st caller v subs in
        let view = { b.Storage.view with off = b.Storage.view.off + i } in
        { Storage.view; dims = eval_dims_in st callee caller sym; elem = b.elem }
      | e -> error "array formal %s bound to expression %s" formal (Expr.to_string e)
    in
    Hashtbl.replace callee.vars formal bound
  in
  let pairs = List.combine u.pu_args actuals in
  List.iter
    (fun (formal, actual) ->
      let sym = Symtab.lookup u.pu_symtab formal in
      if sym.sym_dims = [] then bind_scalar formal actual sym)
    pairs;
  List.iter
    (fun (formal, actual) ->
      let sym = Symtab.lookup u.pu_symtab formal in
      if sym.sym_dims <> [] then bind_array formal actual sym)
    pairs;
  callee

(* dummy-array dimension expressions may reference other dummies (e.g.
   B(N)); they must be evaluated in the callee frame after scalars are
   bound, falling back to the caller for values not yet bound *)
and eval_dims_in st (callee : frame) (_caller : frame) (sym : symbol) =
  eval_dims st callee sym

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)

and assign_to st fr lhs v =
  match lhs with
  | Var name ->
    let b = binding_for st fr name in
    if b.dims <> [] then error "array %s assigned as scalar" name;
    (match st.on_assign with Some f -> f name | None -> ());
    Storage.write_elem b.view 0 v
  | Ref (name, subs) ->
    let b, i = element_index st fr name subs in
    (match st.on_access with Some f -> f W name i | None -> ());
    charge_mem st b.view i;
    Storage.write_elem b.view i v
  | e -> error "invalid assignment target %s" (Expr.to_string e)

and exec_block st fr (b : block) : outcome =
  let stmts = Array.of_list b in
  let n = Array.length stmts in
  let rec go pc =
    if pc >= n then Normal
    else
      match exec_stmt st fr stmts.(pc) with
      | Normal -> go (pc + 1)
      | Jump l -> (
        match find_label stmts l with
        | Some target -> go target
        | None -> Jump l)
      | (Returned | Stopped) as o -> o
  in
  go 0

and find_label stmts l =
  let n = Array.length stmts in
  let rec go i =
    if i >= n then None
    else if stmts.(i).label = Some l then Some i
    else go (i + 1)
  in
  go 0

and exec_stmt st fr (s : stmt) : outcome =
  tick st;
  match s.kind with
  | Assign (lhs, rhs) ->
    charge st Cost.assign;
    let v = eval st fr rhs in
    assign_to st fr lhs v;
    Normal
  | If (c, t, e) ->
    let cond = Value.to_bool (eval st fr c) in
    exec_block st fr (if cond then t else e)
  | Do d -> exec_do st fr s.sid d
  | While (c, body) ->
    let rec loop () =
      charge st Cost.loop_iter;
      if Value.to_bool (eval st fr c) then
        match exec_block st fr body with
        | Normal -> loop ()
        | o -> o
      else Normal
    in
    loop ()
  | Call (name, args) -> (
    match Program.find_unit st.prog name with
    | Some u ->
      charge st Cost.call;
      let callee = call_frame st fr u args in
      run_unit_body st callee;
      Normal
    | None -> error "unknown subroutine %s" name)
  | Goto l -> Jump l
  | Continue -> Normal
  | Return -> Returned
  | Stop -> Stopped
  | Print args ->
    charge st Cost.print;
    let line =
      String.concat " " (List.map (fun e -> Value.to_string (eval st fr e)) args)
    in
    st.output <- line :: st.output;
    Normal

and exec_do st fr sid (d : do_loop) : outcome =
  (* track the innermost executing loop for fuel-exhaustion diagnostics;
     restored on normal exit only — on an abort the innermost loop is
     exactly the location to report *)
  let enclosing_loop = st.cur_loop in
  st.cur_loop <- Some d.index;
  let outcome = exec_do_body st fr sid d in
  st.cur_loop <- enclosing_loop;
  outcome

and exec_do_body st fr sid (d : do_loop) : outcome =
  let init = Value.to_int (eval st fr d.init) in
  let limit = Value.to_int (eval st fr d.limit) in
  let step =
    match d.step with Some e -> Value.to_int (eval st fr e) | None -> 1
  in
  if step = 0 then error "DO %s: zero step" d.index;
  let trips = max 0 ((limit - init + step) / step) in
  let idx_binding = binding_for st fr d.index in
  let set_index v =
    (* the DO construct's index updates are scalar writes too: the real
       executor's last-value masks must see nested loop indices *)
    (match st.on_assign with Some f -> f d.index | None -> ());
    Storage.write_elem idx_binding.view 0 (Value.Int v)
  in
  let real_executed =
    match st.on_parallel_do with
    | Some hook when st.par_depth = 0 -> hook st fr sid d ~init ~step ~trips
    | _ -> None
  in
  match real_executed with
  | Some outcome -> outcome
  | None ->
  let simulate_parallel =
    st.cfg.parallel && d.info.par && (not d.info.speculative) && st.par_depth = 0
  in
  if simulate_parallel then begin
    st.par_depth <- st.par_depth + 1;
    let t0 = st.time in
    let iter_costs = Array.make trips 0 in
    let outcome = ref Normal in
    (try
       for k = 0 to trips - 1 do
         let before = st.time in
         (match st.on_loop_iter with Some f -> f sid k st.time | None -> ());
         set_index (init + (k * step));
         charge st Cost.loop_iter;
         (match exec_block st fr d.body with
         | Normal -> ()
         | o ->
           outcome := o;
           raise Exit);
         iter_costs.(k) <- st.time - before
       done
     with Exit -> ());
    set_index (init + (trips * step));
    st.par_depth <- st.par_depth - 1;
    if !outcome = Normal then begin
      let n_private =
        List.length d.info.privates + List.length d.info.lastprivates
      in
      let reduction_elems =
        Util.Listx.sum_by
          (fun (r : reduction) ->
            match r.red_form with
            | Private_copies ->
              (* one private cell per processor, merged at the join *)
              st.cfg.machine.procs
            | Blocked ->
              (* no merge; the per-access synchronization is charged as
                 if every iteration paid one merge-unit *)
              trips
            | Expanded -> (
              match Symtab.find_opt fr.unit_.pu_symtab r.red_var with
              | Some sym -> (
                match Symtab.const_size sym with Some n -> n | None -> 1)
              | None -> 1))
          d.info.reductions
      in
      st.time <-
        t0 + Parsim.doall_time st.cfg.machine ~iter_costs ~n_private ~reduction_elems;
      (match st.on_loop_done with Some f -> f sid st.time | None -> ());
      Normal
    end
    else !outcome
    (* a non-local exit disables the parallel timing: time stays serial *)
  end
  else begin
    let outcome = ref Normal in
    (try
       for k = 0 to trips - 1 do
         (match st.on_loop_iter with Some f -> f sid k st.time | None -> ());
         set_index (init + (k * step));
         charge st Cost.loop_iter;
         match exec_block st fr d.body with
         | Normal -> ()
         | o ->
           outcome := o;
           raise Exit
       done
     with Exit -> ());
    if !outcome = Normal then set_index (init + (trips * step));
    (match st.on_loop_iter with Some f -> f sid trips st.time | None -> ());
    (match st.on_loop_done with Some f -> f sid st.time | None -> ());
    !outcome
  end

and run_unit_body st (fr : frame) =
  let caller = st.cur_unit in
  st.cur_unit <- fr.unit_.pu_name;
  (match exec_block st fr fr.unit_.pu_body with
  | Normal | Returned | Stopped -> ()
  | Jump l -> error "unit %s: GOTO %d escapes the unit" fr.unit_.pu_name l);
  st.cur_unit <- caller

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let fresh_state ?(cfg = default_config ()) prog =
  { prog; cfg; cache = Cache.create (); commons = Hashtbl.create 8; time = 0;
    steps = 0; par_depth = 0; cur_unit = "?"; cur_loop = None; output = [];
    on_access = None; on_loop_iter = None; on_loop_done = None;
    on_assign = None; on_parallel_do = None }

type result = {
  time : int;                 (** simulated time units *)
  output : string list;      (** PRINT lines, in order *)
  final : (string * Value.t) list;
      (** final values of the main unit's scalar variables *)
}

(* run the main unit and hand back the full machine state *)
let run_main ?cfg (prog : Program.t) : state * frame =
  let st = fresh_state ?cfg prog in
  let main = Program.main prog in
  let fr = { unit_ = main; vars = Hashtbl.create 32 } in
  run_unit_body st fr;
  (st, fr)

let sorted_by_name xs = List.sort (fun (a, _) (b, _) -> String.compare a b) xs

let final_scalars (fr : frame) =
  Hashtbl.fold
    (fun name (b : Storage.binding) acc ->
      if b.dims = [] then (name, Storage.read_elem b.view 0) :: acc else acc)
    fr.vars []
  |> sorted_by_name

let result_of (st : state) (fr : frame) : result =
  { time = st.time; output = List.rev st.output; final = final_scalars fr }

(** Run the main program unit to completion. *)
let run ?cfg (prog : Program.t) : result =
  let st, fr = run_main ?cfg prog in
  result_of st fr

(** Like {!run} but also returns every array of the main frame, flattened,
    for memory-equivalence checks between original and transformed code. *)
let run_capture ?cfg (prog : Program.t) :
    result * (string * float array) list =
  let st, fr = run_main ?cfg prog in
  let arrays =
    Hashtbl.fold
      (fun name (b : Storage.binding) acc ->
        if b.dims = [] then acc
        else
          let n = Storage.extent_of b in
          let out = Array.make n 0.0 in
          for i = 0 to n - 1 do
            out.(i) <- Value.to_float (Storage.read_elem b.view i)
          done;
          (name, out) :: acc)
      fr.vars []
    |> sorted_by_name
  in
  (result_of st fr, arrays)

(** Typed full-state capture for the translation-validation oracle:
    the {!result} plus every main-frame array and every COMMON member,
    flattened to typed values so integers and logicals compare
    bit-for-bit and floats can be compared within an ULP tolerance. *)
type capture = {
  cap_result : result;
  cap_arrays : (string * Value.t array) list;   (** main-frame arrays *)
  cap_commons : (string * Value.t array) list;  (** key "BLK/NAME" *)
}

let values_of_binding (b : Storage.binding) =
  Array.init (Storage.extent_of b) (fun i -> Storage.read_elem b.view i)

let run_full ?cfg (prog : Program.t) : capture =
  let st, fr = run_main ?cfg prog in
  let arrays =
    Hashtbl.fold
      (fun name (b : Storage.binding) acc ->
        if b.dims = [] then acc else (name, values_of_binding b) :: acc)
      fr.vars []
    |> sorted_by_name
  in
  let commons =
    Hashtbl.fold
      (fun key (b : Storage.binding) acc -> (key, values_of_binding b) :: acc)
      st.commons []
    |> sorted_by_name
  in
  { cap_result = result_of st fr; cap_arrays = arrays; cap_commons = commons }
