(** Memory model of the simulated machine.

    Every allocation is a typed flat array with a unique id; multi-dim
    Fortran arrays are laid out column-major on top of it.  Views (an
    allocation plus an element offset) implement Fortran's by-reference
    argument passing, including passing [A(5)] as the start of a dummy
    array.  COMMON blocks use named association: each (block, member)
    pair denotes one global allocation, shared by every program unit
    that declares it (the test suite declares commons consistently, so
    this coincides with F77 storage association for our inputs).

    Concurrency ({!Parexec}): allocations may be written by several
    OCaml domains at once, but only at {e disjoint} element indices —
    the executor forks a loop only when its iterations were proven (or
    are being speculatively tested) to write disjoint elements, and
    block scheduling gives each domain a contiguous index range.
    Element writes here are plain [Array.unsafe_set]-style stores of
    immediate ints/bools or boxed-float array slots, all word-sized;
    under the OCaml 5 memory model, racing accesses to {e distinct}
    array cells are independent non-atomic locations, so disjoint
    writes neither tear nor interfere, and the join at region end
    (domain termination) publishes every child store to the parent.
    No location is written by two domains in the same region — scalars
    are privatized per-domain and merged by the parent after the
    join. *)

open Fir

type data =
  | Farr of float array
  | Iarr of int array
  | Barr of bool array

type alloc = {
  aid : int;            (** unique allocation id, used by the cache model *)
  data : data;
}

type view = {
  alloc : alloc;
  off : int;            (** element offset of the view base *)
}

(** A bound variable: a view plus the evaluated dimension info
    (per-dimension lower bound and extent).  [dims = []] is a scalar. *)
type binding = {
  view : view;
  dims : (int * int) list;   (** (lower, extent); extent < 0 = assumed size *)
  elem : Ast.base_type;
}

exception Fault of string

let fault fmt = Fmt.kstr (fun s -> raise (Fault s)) fmt

(* atomic: the validation oracle interprets program copies on several
   domains at once; aids only need uniqueness, never a specific order *)
let alloc_counter = Atomic.make 0

let size_of_data = function
  | Farr a -> Array.length a
  | Iarr a -> Array.length a
  | Barr a -> Array.length a

let allocate (typ : Ast.base_type) n : alloc =
  let aid = Atomic.fetch_and_add alloc_counter 1 + 1 in
  let data =
    match typ with
    | Ast.Integer -> Iarr (Array.make n 0)
    | Ast.Real | Ast.Double_precision | Ast.Complex -> Farr (Array.make n 0.0)
    | Ast.Logical -> Barr (Array.make n false)
    | Ast.Character -> Farr (Array.make n 0.0)
  in
  { aid; data }

let scalar_binding typ : binding =
  { view = { alloc = allocate typ 1; off = 0 }; dims = []; elem = typ }

let array_binding typ dims : binding =
  let extent = List.fold_left (fun acc (_, e) -> acc * max e 0) 1 dims in
  { view = { alloc = allocate typ extent; off = 0 }; dims; elem = typ }

(** Column-major linear index of [subs] within [dims], relative to the
    view base.  The last dimension's extent is not needed (hence [*]
    assumed-size arrays work). *)
let linear_index (dims : (int * int) list) (subs : int list) =
  let rec go dims subs stride acc =
    match (dims, subs) with
    | [], [] -> acc
    | (lo, ext) :: dtl, s :: stl ->
      let acc = acc + ((s - lo) * stride) in
      go dtl stl (stride * max ext 1) acc
    | _ -> fault "subscript count mismatch"
  in
  go dims subs 1 0

(** Total element count of the view's array if fully known. *)
let extent_of (b : binding) =
  if b.dims = [] then 1
  else if List.exists (fun (_, e) -> e < 0) b.dims then
    size_of_data b.view.alloc.data - b.view.off
  else List.fold_left (fun acc (_, e) -> acc * e) 1 b.dims

let read_elem (v : view) i : Value.t =
  let j = v.off + i in
  match v.alloc.data with
  | Farr a ->
    if j < 0 || j >= Array.length a then fault "read out of bounds (%d)" j;
    Value.Real a.(j)
  | Iarr a ->
    if j < 0 || j >= Array.length a then fault "read out of bounds (%d)" j;
    Value.Int a.(j)
  | Barr a ->
    if j < 0 || j >= Array.length a then fault "read out of bounds (%d)" j;
    Value.Bool a.(j)

let write_elem (v : view) i (x : Value.t) =
  let j = v.off + i in
  match v.alloc.data with
  | Farr a ->
    if j < 0 || j >= Array.length a then fault "write out of bounds (%d)" j;
    a.(j) <- Value.to_float x
  | Iarr a ->
    if j < 0 || j >= Array.length a then fault "write out of bounds (%d)" j;
    a.(j) <- Value.to_int x
  | Barr a ->
    if j < 0 || j >= Array.length a then fault "write out of bounds (%d)" j;
    a.(j) <- Value.to_bool x

(** Snapshot an allocation's contents (for speculative rollback). *)
let snapshot (a : alloc) : data =
  match a.data with
  | Farr x -> Farr (Array.copy x)
  | Iarr x -> Iarr (Array.copy x)
  | Barr x -> Barr (Array.copy x)

(** Restore a snapshot taken with {!snapshot}. *)
let restore (a : alloc) (s : data) =
  match (a.data, s) with
  | Farr dst, Farr src -> Array.blit src 0 dst 0 (Array.length dst)
  | Iarr dst, Iarr src -> Array.blit src 0 dst 0 (Array.length dst)
  | Barr dst, Barr src -> Array.blit src 0 dst 0 (Array.length dst)
  | _ -> fault "snapshot type mismatch"

(** Global machine address of element [i] of a view, for the cache
    model: allocations are given disjoint 8-byte-word address ranges. *)
let address (v : view) i = (v.alloc.aid * (1 lsl 24)) + v.off + i
