(** Real parallel execution of DOALL and speculative loops on OCaml 5
    domains.

    {!Interp} prices DOALL loops with the {!Parsim} model but executes
    them sequentially; this module actually runs them.  It installs the
    interpreter's [on_parallel_do] hook and, for every annotated loop
    reached at [par_depth = 0], forks the iteration space across a
    persistent team of worker domains under the {e same} static block
    schedule the model prices ({!Parsim.block_start}), so modeled
    processor [j] and runtime domain [j] own identical iteration
    ranges.

    Memory-safety argument (DESIGN.md §10):
    - each domain interprets on its own {!Interp.state} (own time,
      fuel, output, cache) and its own frame copy;
    - names in the loop body are pre-bound on the parent before the
      fork, so no domain ever touches the shared symbol table, the
      COMMON table or the frame's binding table during the region;
    - shared arrays are written only at compile-time-proven disjoint
      indices (DOALL) or guarded by the LRPD test (speculation);
      {!Storage} element writes are single word-sized stores, which the
      OCaml memory model guarantees tear-free;
    - privatized names and reduction variables are rebound to fresh
      per-domain allocations and merged after the join, in ascending
      domain order — a deterministic order that equals iteration order
      under block scheduling.

    Speculative (LRPD) loops run against per-domain shadow arrays
    supplied by a {!spec_backend} (implemented by [Fruntime.Specexec];
    this library cannot depend on [Fruntime]).  The shared written
    arrays are checkpointed with {!Storage.snapshot} before the fork;
    a failed PD test restores them with {!Storage.restore} and re-runs
    the loop sequentially on the parent state. *)

open Fir
open Ast

(* ------------------------------------------------------------------ *)
(* Speculation backend interface                                       *)

(** Per-domain shadow marker for one tested array. *)
type shadow_inst = {
  s_read : int -> unit;
  s_write : int -> unit;
  s_iter_begin : unit -> unit;  (** called at the start of each iteration *)
}

type spec_verdict =
  | Spec_parallel      (** fully parallel as executed: results stand *)
  | Spec_privatize     (** output deps: needed privatization — results
                           are discarded like a failure, the loop
                           re-runs sequentially *)
  | Spec_fail          (** flow/anti dependence: restore and re-run *)

(** [sb_make ~size ~domains] returns the per-domain marker factory and
    the finalizer that merges the [domains] shadows and renders the
    verdict. *)
type spec_backend = {
  sb_make :
    size:int -> domains:int -> (int -> shadow_inst) * (unit -> spec_verdict);
}

(** One speculative region instance, for tests and reporting. *)
type spec_event = {
  se_loop_sid : int;
  se_arrays : string list;                     (** tested (written) arrays *)
  se_verdict : spec_verdict;
  se_trips : int;
  se_domains : int;
  se_checkpoints : (string * Storage.data) list;
      (** entry snapshots of every tested array *)
  se_after_restore : (string * Storage.data) list;
      (** snapshots taken immediately after {!Storage.restore} on the
          failure path; [[]] when the speculation succeeded *)
}

(** What one executed DOALL region actually privatized and reduced —
    the runtime half of the clause-equality contract: the OpenMP
    backends must emit exactly these sets ({!doall_private_set} is the
    single shared source of truth; [test/test_backend.ml] asserts the
    equality per suite code). *)
type region_info = {
  ri_sid : int;                 (** loop statement id *)
  ri_index : string;            (** loop index variable *)
  ri_privates : string list;    (** names rebound to per-domain copies *)
  ri_lastprivates : string list;     (** subset copied out by last value *)
  ri_reductions : (string * Ast.reduction_op) list;
}

type stats = {
  mutable regions : int;        (** parallel regions executed for real *)
  mutable par_iters : int;      (** iterations executed on worker domains *)
  mutable serial_loops : int;   (** annotated loops declined (ran serially) *)
  mutable spec_attempts : int;
  mutable spec_success : int;
  mutable spec_failures : int;  (** restored + re-executed sequentially *)
  mutable events : spec_event list;  (** newest first *)
  mutable region_infos : region_info list;
      (** per-DOALL-region privatization/reduction records, newest first *)
}

let fresh_stats () =
  { regions = 0; par_iters = 0; serial_loops = 0; spec_attempts = 0;
    spec_success = 0; spec_failures = 0; events = []; region_infos = [] }

(* ------------------------------------------------------------------ *)
(* Worker team                                                         *)

type worker = {
  w_mutex : Mutex.t;
  w_cond : Condition.t;
  mutable w_job : (unit -> unit) option;
  mutable w_stop : bool;
  mutable w_dom : unit Domain.t option;
}

type team = {
  t_domains : int;              (** block count = workers + the caller *)
  t_workers : worker array;     (** [t_domains - 1] persistent domains *)
}

let rec worker_loop (w : worker) =
  Mutex.lock w.w_mutex;
  while w.w_job = None && not w.w_stop do
    Condition.wait w.w_cond w.w_mutex
  done;
  match w.w_job with
  | Some job ->
    Mutex.unlock w.w_mutex;
    job ();  (* jobs trap their own exceptions *)
    Mutex.lock w.w_mutex;
    w.w_job <- None;
    Condition.broadcast w.w_cond;
    Mutex.unlock w.w_mutex;
    worker_loop w
  | None -> Mutex.unlock w.w_mutex

let make_team domains : team =
  let workers =
    Array.init (max 0 (domains - 1)) (fun _ ->
        { w_mutex = Mutex.create (); w_cond = Condition.create ();
          w_job = None; w_stop = false; w_dom = None })
  in
  Array.iter
    (fun w -> w.w_dom <- Some (Domain.spawn (fun () -> worker_loop w)))
    workers;
  { t_domains = domains; t_workers = workers }

let stop_team (t : team) =
  Array.iter
    (fun w ->
      Mutex.lock w.w_mutex;
      w.w_stop <- true;
      Condition.broadcast w.w_cond;
      Mutex.unlock w.w_mutex)
    t.t_workers;
  Array.iter
    (fun w -> match w.w_dom with Some d -> Domain.join d | None -> ())
    t.t_workers

(** Run [fns.(1 ..)] on worker domains, [fns.(0)] on the caller, and
    wait for all of them (a synchronous fork-join). *)
let run_blocks (t : team) (fns : (unit -> unit) array) =
  let n = Array.length fns in
  for i = 1 to n - 1 do
    let w = t.t_workers.(i - 1) in
    Mutex.lock w.w_mutex;
    w.w_job <- Some fns.(i);
    Condition.broadcast w.w_cond;
    Mutex.unlock w.w_mutex
  done;
  fns.(0) ();
  for i = 1 to n - 1 do
    let w = t.t_workers.(i - 1) in
    Mutex.lock w.w_mutex;
    while w.w_job <> None do
      Condition.wait w.w_cond w.w_mutex
    done;
    Mutex.unlock w.w_mutex
  done

(* ------------------------------------------------------------------ *)
(* Structural safety                                                   *)

(* Variable names referenced anywhere in the loop (body + nested
   bounds), excluding called-function names: the set to pre-bind on the
   parent so child lookups never miss. *)
let loop_names (d : do_loop) =
  let acc = ref [ d.index ] in
  let add_expr e =
    acc :=
      Expr.fold
        (fun acc -> function
          | Var v | Ref (v, _) -> v :: acc
          | _ -> acc)
        !acc e
  in
  Stmt.iter
    (fun s ->
      (match s.kind with Do dd -> acc := dd.index :: !acc | _ -> ());
      List.iter (fun (_, e) -> add_expr e) (Stmt.exprs_of s))
    d.body;
  List.sort_uniq String.compare !acc

(* A loop body the fork-join model can run: no control flow that could
   escape the region (GOTO/RETURN/STOP) and no calls to user units
   (callee frames would bind symbols concurrently, and accesses through
   dummy arguments are invisible to masks and shadows). *)
let body_forkable (prog : Program.t) (d : do_loop) =
  let ok = ref true in
  Stmt.iter
    (fun s ->
      (match s.kind with
      | Goto _ | Return | Stop | Call _ -> ok := false
      | _ -> ());
      List.iter
        (fun (_, e) ->
          if
            Expr.exists
              (function
                | Fun_call (f, _) -> Program.find_unit prog f <> None
                | _ -> false)
              e
          then ok := false)
        (Stmt.exprs_of s))
    d.body;
  !ok

(* does the body ever READ scalar [v]?  (assignment targets [v = ...]
   do not count; everything else, including subscripts of assignment
   targets, does) *)
let reads_scalar (body : block) v =
  Stmt.fold
    (fun acc (s : stmt) ->
      acc
      || List.exists
           (fun ((role : Stmt.expr_role), e) ->
             match (role, e) with
             | Stmt.Elhs, Var x when String.equal x v -> false
             | Stmt.Elhs, Ref (_, subs) ->
               List.exists (Expr.mentions v) subs
             | _ -> Expr.mentions v e)
           (Stmt.exprs_of s))
    false body

(* Is written scalar [v] safe to privatize per-iteration with copy-in?
   Safe iff every iteration writes it before reading it.  Verdicts:
   [`Safe] (definitely assigned before any read), [`Unseen] (not
   referenced), anything conditional or read-first is unsafe. *)
let scalar_write_first (body : block) v =
  let rec scan_block b =
    List.fold_left
      (fun acc s -> match acc with `Unseen -> scan_stmt s | v -> v)
      `Unseen b
  and scan_stmt (s : stmt) =
    match s.kind with
    | Assign (Var x, rhs) when String.equal x v ->
      if Expr.mentions v rhs then `Unsafe else `Safe
    | Do dd when String.equal dd.index v ->
      if
        List.exists (Expr.mentions v)
          (dd.init :: dd.limit
          :: (match dd.step with Some e -> [ e ] | None -> []))
      then `Unsafe
      else `Safe (* the DO construct assigns the index first *)
    | If (c, t, e) ->
      if Expr.mentions v c then `Unsafe
      else begin
        match (scan_block t, scan_block e) with
        | `Unsafe, _ | _, `Unsafe -> `Unsafe
        | `Safe, `Safe -> `Safe
        | `Unseen, `Unseen -> `Unseen
        | _ -> `Unsafe (* conditionally written: refuse *)
      end
    | _ ->
      if
        List.exists (fun (_, e) -> Expr.mentions v e) (Stmt.exprs_of s)
        ||
        match s.kind with
        | Do dd -> scan_block dd.body <> `Unseen
        | While (_, b) -> scan_block b <> `Unseen
        | _ -> false
      then `Unsafe
      else `Unseen
  in
  scan_block body

let scalar_privatizable body v =
  (not (reads_scalar body v)) || scalar_write_first body v = `Safe

(* ------------------------------------------------------------------ *)
(* Private copies, masks, merges                                       *)

(* fresh per-domain allocation shaped like [b], copied in from it *)
let private_binding ?(copy_in = true) (b : Storage.binding) : Storage.binding =
  let n = max 1 (Storage.extent_of b) in
  let pb =
    { Storage.view = { alloc = Storage.allocate b.elem n; off = 0 };
      dims = b.dims; elem = b.elem }
  in
  if copy_in then
    for i = 0 to Storage.extent_of b - 1 do
      Storage.write_elem pb.view i (Storage.read_elem b.view i)
    done;
  pb

let identity_value (elem : base_type) (op : reduction_op) : Value.t =
  match (elem, op) with
  | Integer, Rsum -> Value.Int 0
  | Integer, Rprod -> Value.Int 1
  | Integer, Rmax -> Value.Int min_int
  | Integer, Rmin -> Value.Int max_int
  | Logical, _ -> Value.Bool false
  | _, Rsum -> Value.Real 0.0
  | _, Rprod -> Value.Real 1.0
  | _, Rmax -> Value.Real neg_infinity
  | _, Rmin -> Value.Real infinity

(* the merge operator, matching the interpreter's semantics for the
   reduction statement forms ({!Interp.intrinsic} MAX/MIN use the same
   [compare_num] tie-breaking) *)
let merge_value (op : reduction_op) a b =
  match op with
  | Rsum -> Value.add a b
  | Rprod -> Value.mul a b
  | Rmax -> if Value.compare_num a b >= 0 then a else b
  | Rmin -> if Value.compare_num a b <= 0 then a else b

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)

type t = {
  procs : int;
  team : team;
  spec : spec_backend option;
  stats : stats;
}

(* per-domain execution context *)
type child = {
  c_state : Interp.state;
  c_frame : Interp.frame;
  c_masks : (string, Bytes.t) Hashtbl.t;
      (** per-name written-element masks (privates + reduction vars) *)
  c_lo : int;
  c_hi : int;
  mutable c_exn : (exn * Printexc.raw_backtrace) option;
}

let child_state (st : Interp.state) : Interp.state =
  { st with
    cache = Cache.create ();
    time = 0;
    steps = st.steps;
    par_depth = 1;
    output = [];
    on_access = None; on_loop_iter = None; on_loop_done = None;
    on_assign = None; on_parallel_do = None }

(* build one child: copy the frame, rebind [privates] to fresh
   per-domain copies (with copy-in) and reduction vars to identity
   accumulators; install the write masks *)
let make_child (st : Interp.state) (fr : Interp.frame) (d : do_loop)
    ~(privates : string list) ~(reductions : reduction list) ~lo ~hi : child =
  let cst = child_state st in
  let vars = Hashtbl.copy fr.Interp.vars in
  let cfr = { Interp.unit_ = fr.Interp.unit_; vars } in
  let masks = Hashtbl.create 8 in
  let track name (b : Storage.binding) =
    Hashtbl.replace masks name (Bytes.make (max 1 (Storage.extent_of b)) '\000')
  in
  (* the loop index: always private, no copy-in (the construct assigns
     it at every iteration) *)
  let idx_b = Hashtbl.find vars d.index in
  Hashtbl.replace vars d.index (private_binding ~copy_in:false idx_b);
  List.iter
    (fun name ->
      match Hashtbl.find_opt vars name with
      | Some b ->
        let pb = private_binding b in
        Hashtbl.replace vars name pb;
        track name pb
      | None -> ())
    privates;
  List.iter
    (fun (r : reduction) ->
      match Hashtbl.find_opt vars r.red_var with
      | Some b ->
        let pb = private_binding ~copy_in:false b in
        let id = identity_value pb.elem r.red_op in
        for i = 0 to Storage.extent_of pb - 1 do
          Storage.write_elem pb.view i id
        done;
        Hashtbl.replace vars r.red_var pb;
        track r.red_var pb
      | None -> ())
    reductions;
  cst.on_access <-
    Some
      (fun rw name i ->
        match rw with
        | Interp.W -> (
          match Hashtbl.find_opt masks name with
          | Some m when i >= 0 && i < Bytes.length m -> Bytes.set m i '\001'
          | _ -> ())
        | Interp.R -> ());
  cst.on_assign <-
    Some
      (fun name ->
        match Hashtbl.find_opt masks name with
        | Some m -> Bytes.set m 0 '\001'
        | None -> ());
  { c_state = cst; c_frame = cfr; c_masks = masks; c_lo = lo; c_hi = hi;
    c_exn = None }

(* iterations [c_lo, c_hi) of [d] on child [c]; [iter_begin] lets the
   speculative path flush shadow iteration state *)
let exec_child_block (c : child) sid (d : do_loop) ~init ~step
    ?(iter_begin = fun _ -> ()) () =
  try
    let cst = c.c_state and cfr = c.c_frame in
    let idx_b = Interp.binding_for cst cfr d.index in
    let outcome = ref Interp.Normal in
    (try
       for k = c.c_lo to c.c_hi - 1 do
         iter_begin k;
         Storage.write_elem idx_b.view 0 (Value.Int (init + (k * step)));
         Interp.charge cst Interp.Cost.loop_iter;
         match Interp.exec_block cst cfr d.body with
         | Interp.Normal -> ()
         | o ->
           outcome := o;
           raise Exit
       done
     with Exit -> ());
    ignore sid;
    match !outcome with
    | Interp.Normal -> ()
    | _ ->
      (* unreachable: [body_forkable] rejects escaping control flow *)
      raise (Interp.Runtime_error "parallel region aborted by control flow")
  with e -> c.c_exn <- Some (e, Printexc.get_raw_backtrace ())

(* after a successful join: fold child fuel into the parent and re-check
   the budget (serial execution counts the same statements, so serial
   and parallel runs exhaust fuel on the same programs) *)
let merge_steps (st : Interp.state) (children : child array) =
  let base = st.steps in
  Array.iter (fun c -> st.steps <- st.steps + (c.c_state.steps - base)) children;
  if st.steps > st.cfg.max_steps then
    raise
      (Interp.Fuel_exhausted
         (Fmt.str "after %d statements in unit %s (parallel region)" st.steps
            st.cur_unit))

(* child PRINT lines, spliced in ascending domain order (= iteration
   order under block scheduling).  [st.output] is newest-first, so
   prepending domain 0's lines first leaves the highest domain's lines
   at the head — exactly the serial emission order once reversed *)
let merge_output (st : Interp.state) (children : child array) =
  Array.iter (fun c -> st.output <- c.c_state.output @ st.output) children

let merge_time (st : Interp.state) (children : child array) =
  let slowest = Array.fold_left (fun m c -> max m c.c_state.time) 0 children in
  st.time <- st.time + slowest

let reraise_child_exn (children : child array) =
  Array.iter
    (fun c ->
      match c.c_exn with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    children

(* last-value copy-out: ascending domain order replays iteration order,
   so the surviving value of every masked element is the one the
   highest-numbered writing iteration produced — exactly serial *)
let copy_out_privates (fr : Interp.frame) (privates : string list)
    (children : child array) =
  List.iter
    (fun name ->
      match Hashtbl.find_opt fr.Interp.vars name with
      | None -> ()
      | Some dst ->
        Array.iter
          (fun c ->
            match
              ( Hashtbl.find_opt c.c_frame.Interp.vars name,
                Hashtbl.find_opt c.c_masks name )
            with
            | Some src, Some mask ->
              for i = 0 to Storage.extent_of dst - 1 do
                if i < Bytes.length mask && Bytes.get mask i <> '\000' then
                  Storage.write_elem dst.view i (Storage.read_elem src.view i)
              done
            | _ -> ())
          children)
    privates

(* deterministic reduction merge: shared op partial_0 op partial_1 ...
   in ascending domain order; only elements the domain actually updated
   participate (the mask), so untouched elements keep their serial
   bit pattern *)
let merge_reductions (fr : Interp.frame) (reductions : reduction list)
    (children : child array) =
  List.iter
    (fun (r : reduction) ->
      match Hashtbl.find_opt fr.Interp.vars r.red_var with
      | None -> ()
      | Some dst ->
        Array.iter
          (fun c ->
            match
              ( Hashtbl.find_opt c.c_frame.Interp.vars r.red_var,
                Hashtbl.find_opt c.c_masks r.red_var )
            with
            | Some src, Some mask ->
              for i = 0 to Storage.extent_of dst - 1 do
                if i < Bytes.length mask && Bytes.get mask i <> '\000' then
                  Storage.write_elem dst.view i
                    (merge_value r.red_op
                       (Storage.read_elem dst.view i)
                       (Storage.read_elem src.view i))
              done
            | _ -> ())
          children)
    reductions

(* ------------------------------------------------------------------ *)
(* The DOALL path                                                      *)

(* The definitive DOALL private set, shared between the executor and
   the OpenMP-emitting backends ([lib/backend]): the pass annotations
   (privates + lastprivates) plus every written scalar not covered by
   them — a write-only scalar (e.g. a temporary the liveness pass
   proved dead) written directly to the shared cell would race —
   minus the reduction variables and the loop index.  [is_array]
   abstracts over how the caller classifies names (runtime bindings
   here, the symbol table in the backends), so both compute the same
   set from the same loop by construction. *)
let doall_private_set ~(is_array : string -> bool) (d : do_loop) : string list =
  let red_vars = List.map (fun (r : reduction) -> r.red_var) d.info.reductions in
  let written_scalars =
    List.filter
      (fun v -> (not (String.equal v d.index)) && not (is_array v))
      (Stmt.assigned_names d.body)
  in
  List.sort_uniq String.compare
    (d.info.privates @ d.info.lastprivates @ written_scalars)
  |> List.filter (fun v ->
         (not (List.mem v red_vars)) && not (String.equal v d.index))

let exec_doall (t : t) (st : Interp.state) (fr : Interp.frame) sid
    (d : do_loop) ~init ~step ~trips =
  let p = min t.team.t_domains trips in
  (* pre-bind every name the region can touch: after this, no child
     lookup mutates shared tables *)
  List.iter (fun n -> ignore (Interp.binding_for st fr n)) (loop_names d);
  let privates =
    doall_private_set
      ~is_array:(fun v -> (Interp.binding_for st fr v).dims <> [])
      d
  in
  let children =
    Array.init p (fun j ->
        make_child st fr d ~privates ~reductions:d.info.reductions
          ~lo:(Parsim.block_start ~p ~n:trips j)
          ~hi:(Parsim.block_start ~p ~n:trips (j + 1)))
  in
  run_blocks t.team
    (Array.map
       (fun c -> fun () -> exec_child_block c sid d ~init ~step ())
       children);
  reraise_child_exn children;
  merge_time st children;
  merge_steps st children;
  merge_output st children;
  copy_out_privates fr privates children;
  merge_reductions fr d.info.reductions children;
  let idx_b = Interp.binding_for st fr d.index in
  Storage.write_elem idx_b.view 0 (Value.Int (init + (trips * step)));
  t.stats.regions <- t.stats.regions + 1;
  t.stats.par_iters <- t.stats.par_iters + trips;
  t.stats.region_infos <-
    { ri_sid = sid; ri_index = d.index; ri_privates = privates;
      ri_lastprivates =
        List.filter (fun v -> List.mem v privates) d.info.lastprivates;
      ri_reductions =
        List.map (fun (r : reduction) -> (r.red_var, r.red_op))
          d.info.reductions }
    :: t.stats.region_infos;
  Interp.Normal

(* ------------------------------------------------------------------ *)
(* The speculative (LRPD) path                                         *)

(* serial re-execution of the loop on the parent state: the failure
   path, byte-identical to what {!Interp.exec_do_body} would have done
   (the body is forkable, so no non-local exits can occur) *)
let exec_serial (st : Interp.state) (fr : Interp.frame) (d : do_loop) ~init
    ~step ~trips =
  let idx_b = Interp.binding_for st fr d.index in
  for k = 0 to trips - 1 do
    Storage.write_elem idx_b.view 0 (Value.Int (init + (k * step)));
    Interp.charge st Interp.Cost.loop_iter;
    match Interp.exec_block st fr d.body with
    | Interp.Normal -> ()
    | _ -> raise (Interp.Runtime_error "parallel region aborted by control flow")
  done;
  Storage.write_elem idx_b.view 0 (Value.Int (init + (trips * step)));
  Interp.Normal

let exec_speculative (t : t) (backend : spec_backend) (st : Interp.state)
    (fr : Interp.frame) sid (d : do_loop) ~init ~step ~trips =
  let p = min t.team.t_domains trips in
  List.iter (fun n -> ignore (Interp.binding_for st fr n)) (loop_names d);
  let written = Stmt.assigned_names d.body in
  let arrays, scalars =
    List.partition
      (fun v -> (Interp.binding_for st fr v).dims <> [])
      (List.filter (fun v -> not (String.equal v d.index)) written)
  in
  if not (List.for_all (scalar_privatizable d.body) scalars) then None
  else begin
    t.stats.spec_attempts <- t.stats.spec_attempts + 1;
    (* checkpoint every written array: the speculation writes them in
       place, so a failed PD test must roll them back *)
    let tested =
      List.map
        (fun name ->
          let b = Interp.binding_for st fr name in
          (name, b, Storage.snapshot b.view.alloc))
        arrays
    in
    (* per-array, per-domain shadow markers *)
    let shadows =
      List.map
        (fun (name, (b : Storage.binding), _) ->
          let make, finalize =
            backend.sb_make ~size:(max 1 (Storage.extent_of b)) ~domains:p
          in
          (name, make, finalize))
        tested
    in
    let children =
      Array.init p (fun j ->
          let c =
            make_child st fr d ~privates:scalars ~reductions:[]
              ~lo:(Parsim.block_start ~p ~n:trips j)
              ~hi:(Parsim.block_start ~p ~n:trips (j + 1))
          in
          let insts = List.map (fun (name, make, _) -> (name, make j)) shadows in
          let masks_hook = c.c_state.on_access in
          c.c_state.on_access <-
            Some
              (fun rw name i ->
                (match masks_hook with Some f -> f rw name i | None -> ());
                match List.assoc_opt name insts with
                | Some inst -> (
                  match rw with
                  | Interp.R -> inst.s_read i
                  | Interp.W -> inst.s_write i)
                | None -> ());
          (c, insts))
    in
    run_blocks t.team
      (Array.map
         (fun (c, insts) ->
           fun () ->
            exec_child_block c sid d ~init ~step
              ~iter_begin:(fun _ ->
                List.iter (fun (_, inst) -> inst.s_iter_begin ()) insts)
              ())
         children);
    let children = Array.map fst children in
    let child_failed = Array.exists (fun c -> c.c_exn <> None) children in
    let verdicts = List.map (fun (_, _, finalize) -> finalize ()) shadows in
    let verdict =
      if child_failed || List.mem Spec_fail verdicts then Spec_fail
      else if List.mem Spec_privatize verdicts then Spec_privatize
      else Spec_parallel
    in
    let success = verdict = Spec_parallel in
    let after_restore = ref [] in
    let outcome =
      if success then begin
        (* writes already landed in the shared arrays; only the
           privatized scalars and the index need last-value copy-out *)
        merge_time st children;
        merge_steps st children;
        merge_output st children;
        copy_out_privates fr scalars children;
        let idx_b = Interp.binding_for st fr d.index in
        Storage.write_elem idx_b.view 0 (Value.Int (init + (trips * step)));
        t.stats.regions <- t.stats.regions + 1;
        t.stats.par_iters <- t.stats.par_iters + trips;
        t.stats.spec_success <- t.stats.spec_success + 1;
        Interp.Normal
      end
      else begin
        (* failed speculation: a real rollback.  Child time/steps/output
           are discarded (the serial re-execution is the only run that
           counts, so fuel accounting matches a serial interpreter) *)
        List.iter
          (fun (_, (b : Storage.binding), snap) ->
            Storage.restore b.view.alloc snap)
          tested;
        after_restore :=
          List.map
            (fun (name, (b : Storage.binding), _) ->
              (name, Storage.snapshot b.view.alloc))
            tested;
        t.stats.spec_failures <- t.stats.spec_failures + 1;
        exec_serial st fr d ~init ~step ~trips
      end
    in
    t.stats.events <-
      { se_loop_sid = sid;
        se_arrays = List.map (fun (n, _, _) -> n) tested;
        se_verdict = verdict;
        se_trips = trips;
        se_domains = p;
        se_checkpoints = List.map (fun (n, _, snap) -> (n, snap)) tested;
        se_after_restore = !after_restore }
      :: t.stats.events;
    Some outcome
  end

(* ------------------------------------------------------------------ *)
(* Hook and entry points                                               *)

let hook (t : t) : Interp.state -> Interp.frame -> int -> do_loop ->
    init:int -> step:int -> trips:int -> Interp.outcome option =
 fun st fr sid d ~init ~step ~trips ->
  let doall = d.info.par && not d.info.speculative in
  let speculative = d.info.speculative && t.spec <> None in
  if (not doall) && not speculative then None
  else if trips < 2 || t.team.t_domains < 2 then begin
    t.stats.serial_loops <- t.stats.serial_loops + 1;
    None
  end
  else if not (body_forkable st.prog d) then begin
    t.stats.serial_loops <- t.stats.serial_loops + 1;
    None
  end
  else if doall then
    Some (exec_doall t st fr sid d ~init ~step ~trips)
  else begin
    match t.spec with
    | Some backend -> (
      match exec_speculative t backend st fr sid d ~init ~step ~trips with
      | Some o -> Some o
      | None ->
        (* unsafe scalar pattern: decline, run serially *)
        t.stats.serial_loops <- t.stats.serial_loops + 1;
        None)
    | None -> None
  end

(** Runtime domain count: [POLARIS_RUNTIME_PROCS] when set, otherwise
    the machine's recommended domain count capped at the modeled
    machine size (8). *)
let default_procs () =
  match Util.Env.runtime_procs with
  | Some n -> n
  | None -> max 1 (min 8 (Domain.recommended_domain_count ()))

let capture_of (st : Interp.state) (fr : Interp.frame) : Interp.capture =
  let arrays =
    Hashtbl.fold
      (fun name (b : Storage.binding) acc ->
        if b.dims = [] then acc else (name, Interp.values_of_binding b) :: acc)
      fr.Interp.vars []
    |> Interp.sorted_by_name
  in
  let commons =
    Hashtbl.fold
      (fun key (b : Storage.binding) acc ->
        (key, Interp.values_of_binding b) :: acc)
      st.commons []
    |> Interp.sorted_by_name
  in
  { Interp.cap_result = Interp.result_of st fr; cap_arrays = arrays;
    cap_commons = commons }

(** Execute [prog]'s main unit with annotated loops running on [procs]
    OCaml domains; returns the full capture (same shape as
    {!Interp.run_full}) and the runtime statistics.  [spec] enables
    real LRPD speculation for loops the compiler marked [speculative];
    without it they run serially. *)
let run_full ?cfg ?procs ?spec (prog : Program.t) : Interp.capture * stats =
  let procs =
    match procs with Some p -> max 1 p | None -> default_procs ()
  in
  let stats = fresh_stats () in
  if procs <= 1 then (Interp.run_full ?cfg prog, stats)
  else begin
    let team = make_team procs in
    Fun.protect
      ~finally:(fun () -> stop_team team)
      (fun () ->
        let st = Interp.fresh_state ?cfg prog in
        let t = { procs; team; spec; stats } in
        st.on_parallel_do <- Some (hook t);
        let main = Program.main prog in
        let fr = { Interp.unit_ = main; vars = Hashtbl.create 32 } in
        Interp.run_unit_body st fr;
        (capture_of st fr, stats))
  end
