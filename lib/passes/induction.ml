(** Generalized induction-variable substitution (paper §3.2).

    Recognizes scalar recurrences [V = V + inc] whose increment is a
    loop index, a loop-invariant expression, or an expression over other
    induction variables (cascaded inductions), including triangular
    nests where inner bounds depend on outer indices (Fig. 1 / Fig. 2 of
    the paper).  The pass follows the paper's three steps:

    + locate candidate induction statements (unconditional recurrences);
    + compute the closed form at the beginning of each loop iteration
      (and the last value after the loop) by summing the per-iteration
      increment across the iteration space with exact Faulhaber
      summation ({!Symbolic.Summation}), recursing into inner loops;
    + substitute every use with "closed form at the loop header plus
      increments up to the point of use", delete the recurrences, and
      assign the last value after the loop.

    Regions are loops taken outermost-first: a variable disqualified in
    an outer region (e.g. [X] in TRFD, reassigned by [X = X0] inside the
    [I] loop) is retried in the inner region where all its assignments
    are induction-form. *)

open Fir
open Ast
open Symbolic

(* ------------------------------------------------------------------ *)
(* Recurrence-statement recognition                                    *)

type update =
  | Add of Poly.t        (** v = v + inc *)
  | Mul of expr          (** v = v * c, c a constant (geometric, [13]) *)

(** [incr_of v rhs] recognizes [v + inc] (up to reassociation, [inc] not
    mentioning [v]) or [v * c] with [c] a numeric constant. *)
let incr_of v (rhs : expr) : update option =
  let p = Poly.of_expr rhs in
  let va = Atom.var v in
  let v = Symtab.norm v in
  if Poly.degree va p <> 1 then None
  else
    let coeffs = Poly.coeffs_in va p in
    let lin = List.assoc_opt 1 coeffs in
    let rest = Option.value ~default:Poly.zero (List.assoc_opt 0 coeffs) in
    match lin with
    | Some c when Poly.equal c Poly.one && not (Poly.mentions_var v rest) ->
      Some (Add rest)
    | Some c when Poly.is_zero rest -> (
      (* v = c * v: geometric progression; c an integer or real literal *)
      (* real factors must be exact powers of two, or the closed form
         c**n would differ from the iterated products in floating point *)
      let numeric_const = function
        | Int_lit _ -> true
        | Real_lit x -> x > 0.0 && fst (Float.frexp x) = 0.5
        | Unary (Neg, Int_lit _) -> true
        | _ -> false
      in
      match rhs with
      | Binary (Ast.Mul, Var w, k) when String.equal w v && numeric_const k ->
        Some (Mul k)
      | Binary (Ast.Mul, k, Var w) when String.equal w v && numeric_const k ->
        Some (Mul k)
      | _ ->
        (match Poly.const_val c with
        | Some r when Util.Rat.is_integer r ->
          Some (Mul (Int_lit (Util.Rat.to_int r)))
        | _ -> None))
    | _ -> None

let is_induction_stmt (s : stmt) : (string * update) option =
  match s.kind with
  | Assign (Var v, rhs) -> (
    match incr_of v rhs with Some u -> Some (v, u) | None -> None)
  | _ -> None

(* additive update's increment, if it is one *)
let add_inc = function Add p -> Some p | Mul _ -> None

(* ------------------------------------------------------------------ *)
(* Candidate discovery over a region (a block)                         *)

type context_flag = Plain | Conditional

(* (var, context, is_induction_form) for every scalar assignment *)
let assignment_contexts (b : block) : (string * context_flag * bool) list =
  let acc = ref [] in
  let rec go flag (b : block) =
    List.iter
      (fun (s : stmt) ->
        match s.kind with
        | Assign (Var v, _) ->
          acc := (v, flag, is_induction_stmt s <> None) :: !acc
        | Assign (_, _) -> ()
        | If (_, t, e) ->
          go Conditional t;
          go Conditional e
        | While (_, body) -> go Conditional body
        | Do d ->
          acc := (d.index, flag, false) :: !acc;
          let step_ok =
            match d.step with None -> true | Some e -> Expr.int_val e = Some 1
          in
          (* inside a non-unit-step loop we cannot sum: treat as
             conditional so its updates disqualify *)
          go (if step_ok then flag else Conditional) d.body
        | _ -> ())
      b
  in
  go Plain b;
  !acc

let call_mentioned_names (b : block) : string list =
  Stmt.fold
    (fun acc (s : stmt) ->
      match s.kind with
      | Call (_, args) -> List.concat_map Expr.all_names args @ acc
      | _ -> acc)
    [] b
  |> List.sort_uniq String.compare

let written_arrays (symtab : Symtab.t) (b : block) =
  Stmt.fold
    (fun acc (s : stmt) ->
      match s.kind with
      | Assign (Ref (a, _), _) -> a :: acc
      | Call (_, args) ->
        List.concat_map
          (fun e -> List.filter (Symtab.is_array symtab) (Expr.all_names e))
          args
        @ acc
      | _ -> acc)
    [] b
  |> List.sort_uniq String.compare

(** Induction candidates of region [b]: integer scalars whose region
    assignments are all unconditional induction updates, not loop
    indices, not passed to calls, with increments built from loop
    indices, other candidates and region-invariant values. *)
let candidates_of ?(generalized = true) (symtab : Symtab.t) (b : block) :
    string list =
  if Stmt.exists (fun s -> match s.kind with Goto _ -> true | _ -> false) b
  then []
  else begin
    let ctxs = assignment_contexts b in
    let vars =
      List.sort_uniq String.compare (List.map (fun (v, _, _) -> v) ctxs)
    in
    let call_names = call_mentioned_names b in
    let base_ok v =
      Symtab.type_of symtab v = Integer
      && (not (Symtab.is_array symtab v))
      && (not (List.mem v call_names))
      && List.for_all
           (fun (w, flag, ind) ->
             (not (String.equal w v)) || (flag = Plain && ind))
           ctxs
      && List.exists (fun (w, _, ind) -> String.equal w v && ind) ctxs
    in
    let cands = List.filter base_ok vars in
    (* multiplicative recurrences are handled separately *)
    let cands =
      List.filter
        (fun v ->
          Stmt.fold
            (fun ok (s : stmt) ->
              ok
              &&
              match is_induction_stmt s with
              | Some (w, Mul _) when String.equal w v -> false
              | _ -> true)
            true b)
        cands
    in
    (* classic compilers ("current compilers", paper §3.2) only solve
       inductions in rectangular nests: when not generalized, exclude
       variables updated under a loop whose bounds depend on an
       enclosing loop index of the region *)
    let triangular_updated =
      let acc = ref [] in
      let rec go enclosing triangular (b : block) =
        List.iter
          (fun (s : stmt) ->
            match s.kind with
            | Assign (Var v, _) -> if triangular then acc := v :: !acc
            | If (_, t, e) ->
              go enclosing triangular t;
              go enclosing triangular e
            | While (_, b') -> go enclosing true b'
            | Do d ->
              let bound_vars =
                Expr.scalar_vars d.init @ Expr.scalar_vars d.limit
              in
              let tri =
                triangular
                || List.exists (fun i -> List.mem i bound_vars) enclosing
              in
              go (d.index :: enclosing) tri d.body
            | _ -> ())
          b
      in
      go [] false b;
      List.sort_uniq String.compare !acc
    in
    let cands =
      if generalized then cands
      else List.filter (fun v -> not (List.mem v triangular_updated)) cands
    in
    (* increments may only reference loop indices, candidates, and
       names not assigned in the region; iterate since removing one
       candidate can invalidate another *)
    let assigned = Stmt.assigned_names b in
    let warrays = written_arrays symtab b in
    let do_indices =
      Stmt.fold
        (fun acc (s : stmt) ->
          match s.kind with Do d -> d.index :: acc | _ -> acc)
        [] b
    in
    let inc_ok cands inc =
      let names =
        List.concat_map
          (function
            | Atom.Avar v -> [ v ]
            | Atom.Aopaque e -> Expr.all_names e)
          (Poly.atoms inc)
      in
      List.for_all
        (fun n ->
          if generalized then
            List.mem n do_indices || List.mem n cands
            || ((not (List.mem n assigned)) && not (List.mem n warrays))
          else
            (* classic compilers: loop-invariant increments only *)
            (not (List.mem n do_indices))
            && (not (List.mem n cands))
            && (not (List.mem n assigned))
            && not (List.mem n warrays))
        names
    in
    let all_incs_ok cands v =
      Stmt.fold
        (fun ok (s : stmt) ->
          ok
          &&
          match is_induction_stmt s with
          | Some (w, Add inc) when String.equal w v -> inc_ok cands inc
          | Some (w, Mul _) when String.equal w v -> false
          | _ -> true)
        true b
    in
    let rec fixpoint cands =
      let cands' = List.filter (all_incs_ok cands) cands in
      if List.length cands' = List.length cands then cands else fixpoint cands'
    in
    fixpoint cands
  end

(** Multiplicative candidates of region [b]: scalars whose updates are
    all [v = v * c] for one shared constant [c], otherwise subject to
    the same conditions as {!candidates_of}; they must not appear in any
    other recurrence's increment (no geometric cascades). *)
let mul_candidates_of ?(generalized = true) (symtab : Symtab.t) (b : block) :
    (string * expr) list =
  if not generalized then []
  else if Stmt.exists (fun s -> match s.kind with Goto _ -> true | _ -> false) b
  then []
  else begin
    let ctxs = assignment_contexts b in
    let vars =
      List.sort_uniq String.compare (List.map (fun (v, _, _) -> v) ctxs)
    in
    let call_names = call_mentioned_names b in
    let factors v =
      Stmt.fold
        (fun acc (s : stmt) ->
          match is_induction_stmt s with
          | Some (w, Mul c) when String.equal w v -> c :: acc
          | _ -> acc)
        [] b
    in
    List.filter_map
      (fun v ->
        let ok_ctx =
          (not (Symtab.is_array symtab v))
          && (not (List.mem v call_names))
          && List.for_all
               (fun (w, flag, ind) ->
                 (not (String.equal w v)) || (flag = Plain && ind))
               ctxs
        in
        match factors v with
        | c :: rest when ok_ctx && List.for_all (Expr.equal c) rest ->
          (* v must have ONLY multiplicative updates *)
          let all_mul =
            Stmt.fold
              (fun ok (s : stmt) ->
                ok
                &&
                match is_induction_stmt s with
                | Some (w, Add _) when String.equal w v -> false
                | _ -> true)
              true b
          in
          if all_mul then Some (v, c) else None
        | _ -> None)
      vars
  end

(* dependence-topological order of candidates; drops cycles *)
let topo_order (b : block) (cands : string list) : string list =
  let deps v =
    Stmt.fold
      (fun acc (s : stmt) ->
        match is_induction_stmt s with
        | Some (w, Add inc) when String.equal w v ->
          List.filter
            (fun c -> Poly.mentions_var c inc && not (String.equal c v))
            cands
          @ acc
        | _ -> acc)
      [] b
    |> List.sort_uniq String.compare
  in
  let rec visit (order, state) v =
    match List.assoc_opt v state with
    | Some `Done -> (order, state)
    | Some `Active -> raise Exit
    | None ->
      let state = (v, `Active) :: state in
      let order, state = List.fold_left visit (order, state) (deps v) in
      (v :: order, (v, `Done) :: List.remove_assoc v state)
  in
  let order, _ =
    List.fold_left
      (fun (order, state) v ->
        try visit (order, state) v with Exit -> (order, state))
      ([], []) cands
  in
  List.rev order

(* ------------------------------------------------------------------ *)
(* Offsets                                                             *)

exception Give_up

(* offset map: candidate -> polynomial increment since region entry.
   Inside rewritten code [Var v] denotes v's region-entry value, because
   all updates to v inside the region are deleted. *)
type offsets = (string * Poly.t) list

let offset (o : offsets) v = Option.value ~default:Poly.zero (List.assoc_opt v o)
let set_offset (o : offsets) v p = (v, p) :: List.remove_assoc v o
let closed_form o v = Poly.add (Poly.var v) (offset o v)

(* substitute candidate atoms of a polynomial by their closed forms at
   the current point *)
let resolve (order : string list) (o : offsets) (p : Poly.t) : Poly.t =
  List.fold_left (fun p v -> Poly.subst (Atom.var v) (closed_form o v) p) p order

let resolve_expr order o (e : expr) = resolve order o (Poly.of_expr e)

let rewrite_expr ?(mulvars : (string * expr) list = []) (order : string list)
    (o : offsets) (e : expr) : expr =
  Expr.map
    (function
      | Var v when List.mem v order && not (Poly.is_zero (offset o v)) ->
        Poly.to_expr (closed_form o v)
      | Var v
        when List.mem_assoc v mulvars && not (Poly.is_zero (offset o v)) ->
        (* geometric closed form: v * c ** (application count) *)
        Binary
          ( Ast.Mul,
            Var v,
            Binary (Pow, List.assoc v mulvars, Poly.to_expr (offset o v)) )
      | e -> e)
    e

(* ------------------------------------------------------------------ *)
(* Increment analysis and summation                                    *)

(* per-execution increment of each candidate over one run of [b],
   relative to the values at the start of that run; candidate atoms in
   the result denote start-of-run values *)
let rec analyze ?(mulvars : (string * expr) list = []) (order : string list)
    (b : block) : offsets =
  List.fold_left
    (fun acc (s : stmt) ->
      match s.kind with
      | Assign (Var v, _) when List.mem v order -> (
        match is_induction_stmt s with
        | Some (_, Add inc) ->
          let inc = resolve order acc inc in
          set_offset acc v (Poly.add (offset acc v) inc)
        | Some (_, Mul _) | None -> raise Give_up)
      | Assign (Var v, _) when List.mem_assoc v mulvars -> (
        (* exponent counting: each application multiplies once *)
        match is_induction_stmt s with
        | Some (_, Mul _) -> set_offset acc v (Poly.add (offset acc v) Poly.one)
        | Some (_, Add _) | None -> raise Give_up)
      | Do d ->
        let deltas = analyze ~mulvars order d.body in
        if List.for_all (fun (_, p) -> Poly.is_zero p) deltas then acc
        else begin
          let lo = resolve order acc (Poly.of_expr d.init) in
          let hi = resolve order acc (Poly.of_expr d.limit) in
          let sums =
            sums_for
              ~order:(order @ List.map fst mulvars)
              ~index:d.index ~lo ~before:acc deltas
          in
          (* totals = sums evaluated at j := hi + 1 *)
          List.fold_left
            (fun acc (v, s) ->
              let total =
                Poly.subst (Atom.var d.index) (Poly.add hi Poly.one) s
              in
              set_offset acc v (Poly.add (offset acc v) total))
            acc sums
        end
      | _ -> acc)
    [] b

(* S_v(j) = sum of v's per-iteration increment for iterations lo..j-1,
   as a polynomial in the loop index [index]; cascaded increments are
   resolved in topological [order] *)
and sums_for ~(order : string list) ~(index : string) ~(lo : Poly.t)
    ~(before : offsets) (deltas : offsets) : offsets =
  let t = "__T" ^ index in
  let t_poly = Poly.var t in
  let j_minus_1 = Poly.sub (Poly.var index) Poly.one in
  List.fold_left
    (fun (sums : offsets) v ->
      let d = offset deltas v in
      if Poly.is_zero d then sums
      else begin
        (* delta at iteration t, with candidate atoms resolved to their
           value at the start of iteration t *)
        let d_t = Poly.subst (Atom.var index) t_poly d in
        let d_t =
          List.fold_left
            (fun p w ->
              if not (Poly.mentions_var w p) then p
              else if String.equal w v then raise Give_up
              else
                let s_w_t = Poly.subst (Atom.var index) t_poly (offset sums w) in
                let value_at_t =
                  Poly.add (Poly.var w) (Poly.add (offset before w) s_w_t)
                in
                Poly.subst (Atom.var w) value_at_t p)
            d_t order
        in
        let s =
          try Summation.sum ~index:t ~lo ~hi:j_minus_1 d_t
          with Invalid_argument _ -> raise Give_up
        in
        set_offset sums v s
      end)
    [] order

(* ------------------------------------------------------------------ *)
(* The rewriting walk                                                  *)

let rec rewrite_block ?(mulvars : (string * expr) list = [])
    (order : string list) (o : offsets) (b : block) : block * offsets =
  let rewrite_expr = rewrite_expr ~mulvars in
  let rewrite_block = rewrite_block ~mulvars in
  let analyze = analyze ~mulvars in
  List.fold_left
    (fun (out, o) (s : stmt) ->
      match s.kind with
      | Assign (Var v, _) when List.mem v order -> (
        match is_induction_stmt s with
        | Some (_, Add inc) ->
          let inc = resolve order o inc in
          (out, set_offset o v (Poly.add (offset o v) inc))
        | Some (_, Mul _) | None -> raise Give_up)
      | Assign (Var v, _) when List.mem_assoc v mulvars -> (
        match is_induction_stmt s with
        | Some (_, Mul _) -> (out, set_offset o v (Poly.add (offset o v) Poly.one))
        | Some (_, Add _) | None -> raise Give_up)
      | Assign (lhs, rhs) ->
        let s' =
          { s with kind = Assign (rewrite_expr order o lhs, rewrite_expr order o rhs) }
        in
        (s' :: out, o)
      | If (c, t, e) ->
        (* candidate updates never occur under IF (checked), so the
           offsets are unchanged by either branch *)
        let t', _ = rewrite_block order o t in
        let e', _ = rewrite_block order o e in
        ({ s with kind = If (rewrite_expr order o c, t', e') } :: out, o)
      | While (c, body) ->
        let body', _ = rewrite_block order o body in
        ({ s with kind = While (rewrite_expr order o c, body') } :: out, o)
      | Do d ->
        let deltas = analyze order d.body in
        let init' = rewrite_expr order o d.init in
        let limit' = rewrite_expr order o d.limit in
        let step' = Option.map (rewrite_expr order o) d.step in
        if List.for_all (fun (_, p) -> Poly.is_zero p) deltas then begin
          let body', _ = rewrite_block order o d.body in
          ({ s with kind = Do { d with init = init'; limit = limit'; step = step'; body = body' } } :: out, o)
        end
        else begin
          let lo = resolve order o (Poly.of_expr d.init) in
          let hi = resolve order o (Poly.of_expr d.limit) in
          let sums =
            sums_for
              ~order:(order @ List.map fst mulvars)
              ~index:d.index ~lo ~before:o deltas
          in
          let iter_o =
            List.fold_left
              (fun acc (v, s) -> set_offset acc v (Poly.add (offset o v) s))
              o sums
          in
          let body', _ = rewrite_block order iter_o d.body in
          let after_o =
            List.fold_left
              (fun acc (v, s) ->
                let total =
                  Poly.subst (Atom.var d.index) (Poly.add hi Poly.one) s
                in
                set_offset acc v (Poly.add (offset o v) total))
              o sums
          in
          ( { s with kind = Do { d with init = init'; limit = limit'; step = step'; body = body' } }
            :: out,
            after_o )
        end
      | Call (n, args) ->
        ({ s with kind = Call (n, List.map (rewrite_expr order o) args) } :: out, o)
      | Print args ->
        ({ s with kind = Print (List.map (rewrite_expr order o) args) } :: out, o)
      | Goto _ -> raise Give_up
      | Continue | Return | Stop -> (s :: out, o))
    ([], o) b
  |> fun (out, o) -> (List.rev out, o)

(* ------------------------------------------------------------------ *)
(* Region driver                                                       *)

type report = { mutable substituted : (string * string) list }
    (** (variable, region loop index) pairs solved *)

(* try to substitute the candidates of the region consisting of the
   single loop statement [s]; returns the replacement statements *)
let try_loop_region ~generalized (symtab : Symtab.t) (report : report)
    (s : stmt) (d : do_loop) : stmt list option =
  let region = [ s ] in
  let cands = candidates_of ~generalized symtab region in
  let mulvars = mul_candidates_of ~generalized symtab region in
  match (topo_order region cands, mulvars) with
  | [], [] -> None
  | order, mulvars -> (
    try
      let region', final = rewrite_block ~mulvars order [] region in
      (* last-value assignments reference the *entry* values of the
         other candidates, so emit them in reverse topological order:
         each total only mentions candidates not yet reassigned *)
      let last_values =
        List.filter_map
          (fun v ->
            let total = offset final v in
            if Poly.is_zero total then None
            else begin
              report.substituted <- (v, d.index) :: report.substituted;
              Some
                (Stmt.assign (Var v)
                   (Poly.to_expr (Poly.add (Poly.var v) total)))
            end)
          (List.rev order)
      in
      let mul_last_values =
        List.filter_map
          (fun (v, c) ->
            let total = offset final v in
            if Poly.is_zero total then None
            else begin
              report.substituted <- (v, d.index) :: report.substituted;
              Some
                (Stmt.assign (Var v)
                   (Binary (Ast.Mul, Var v, Binary (Pow, c, Poly.to_expr total))))
            end)
          mulvars
      in
      Some (region' @ last_values @ mul_last_values)
    with Give_up -> None)

(** Substitute induction variables throughout a block, processing loops
    outermost-first and retrying disqualified variables in inner loops. *)
let rec process_block ~generalized (symtab : Symtab.t) (report : report)
    (b : block) : block =
  List.concat_map
    (fun (s : stmt) ->
      match s.kind with
      | Do d -> (
        match try_loop_region ~generalized symtab report s d with
        | Some replacement ->
          (* recurse into the rewritten loops for further candidates *)
          List.map
            (fun (s' : stmt) ->
              match s'.kind with
              | Do d' ->
                { s' with
                  kind =
                    Do
                      { d' with
                        body = process_block ~generalized symtab report d'.body } }
              | _ -> s')
            replacement
        | None ->
          [ { s with
              kind =
                Do { d with body = process_block ~generalized symtab report d.body } } ])
      | If (c, t, e) ->
        [ { s with
            kind =
              If
                ( c,
                  process_block ~generalized symtab report t,
                  process_block ~generalized symtab report e ) } ]
      | While (c, body) ->
        [ { s with kind = While (c, process_block ~generalized symtab report body) } ]
      | _ -> [ s ])
    b

(** Run induction substitution on a program unit (in place).  Returns
    the list of (variable, loop index) pairs that were substituted.
    [process_block] is pure — the rewritten body is built first, and
    the unit is only touched (invalidating its cached analyses) when a
    substitution actually happened. *)
let run_unit ?(generalized = true) (p : Program.t) (u : Punit.t) :
    (string * string) list =
  let report = { substituted = [] } in
  let body' = process_block ~generalized u.pu_symtab report u.pu_body in
  if report.substituted <> [] then begin
    Program.touch p u;
    u.pu_body <- body';
    Consistency.check_unit u
  end;
  List.rev report.substituted

(** Analyses this pass consumes (for the pipeline's reuse ledger):
    candidate recognition leans on the symbolic layer's memo tables. *)
let consumes = [ "fir.intern"; "poly.of_expr"; "compare.eliminate" ]

let run ?(generalized = true) (p : Program.t) : (string * string) list =
  List.concat_map (fun u -> run_unit ~generalized p u) (Program.units p)
