(** The parallelization driver: per-loop DOALL decisions.

    For every loop (outermost first) this pass combines the analyses:
    reduction recognition (§3.2), scalar classification (§3.4),
    dependence testing per array (§3.3) with array privatization (§3.4)
    as the fallback for failed arrays, and marks the loop's
    {!Fir.Ast.loop_info} in place.  Loops defeated only by subscripted
    subscripts are flagged [speculative]: candidates for the run-time
    PD test (§3.5).

    The [mode] selects Polaris (range test + array privatization +
    histogram reductions) or the baseline "current compiler"
    configuration (GCD/Banerjee, scalar privatization, scalar
    single-address reductions only). *)

open Fir
open Ast
open Symbolic
module Loops = Analysis.Loops
module Access = Analysis.Access
module Defuse = Analysis.Defuse

type mode = Polaris | Baseline

(** Analyses this pass consumes (by {!Util.Cachectl} cache name); the
    pipeline records them against the manager's counters for
    [--explain-reuse]. *)
let consumes =
  [ "analysis.loops"; "analysis.access"; "analysis.defuse";
    "range_prop.env_at"; "dep.verdict"; "passes.demand" ]

type loop_report = {
  loop_index : string;
  loop_sid : int;
  parallel : bool;
  speculative : bool;
  reason : string;
}

(* scalar [v] is read after the loop (conservative liveness over the
   whole unit outside the loop body) *)
let live_after (u : Punit.t) (d : do_loop) v =
  let inside = Stmt.fold (fun acc s -> s.sid :: acc) [] d.body in
  Stmt.fold
    (fun acc (s : stmt) ->
      acc
      || (not (List.mem s.sid inside))
         && List.exists (fun (_, e) -> Expr.mentions v e) (Stmt.exprs_of s))
    false u.pu_body

(** Analysis of one nest, {e side-effect-free}: returns the report and
    a deferred [apply] thunk that writes the [loop_info] decision
    fields.  The serial driver applies immediately; the parallel driver
    ({!run} at jobs > 1) evaluates many nests concurrently and applies
    the thunks on the submitting domain in program order, so the IR
    and the outcome counters evolve exactly as in the serial run —
    including after a fault, where the merge re-raises at the first
    failed nest and every later (already computed) decision is
    discarded, just as the serial compiler would never have reached
    them. *)
let analyze_nest ~(mode : mode) (u : Punit.t) (outer_env : Range.env)
    (nest : Loops.nest) : loop_report * (unit -> unit) =
  let target = Loops.innermost nest in
  let enclosing = List.filter (fun l -> l != target) nest.loops in
  let d = target.dloop in
  let body = d.body in
  let info = d.info in
  let decide ?(commit = fun () -> ()) ~parallel ~speculative reason =
    let report =
      { loop_index = d.index; loop_sid = target.stmt.sid; parallel;
        speculative; reason }
    in
    let apply () =
      commit ();
      info.par <- parallel;
      info.speculative <- speculative;
      info.par_reason <- reason
    in
    (report, apply)
  in
  (* 0. structural disqualifiers *)
  if Loops.has_disqualifying_control body then
    decide ~parallel:false ~speculative:false "unstructured control flow or I/O"
  else if Access.calls_in body ~is_intrinsic:Access.is_intrinsic <> [] then
    decide ~parallel:false ~speculative:false "contains procedure calls"
  else begin
    (* 1. reductions *)
    let reductions = Reduction.find u.pu_symtab body in
    let reductions =
      match mode with
      | Polaris -> reductions
      | Baseline ->
        (* classic compilers: scalar single-address sums/products only *)
        List.filter
          (fun (f : Reduction.found) ->
            f.red.red_kind = Single_address
            && not (Symtab.is_array u.pu_symtab f.red.red_var))
          reductions
    in
    (* the paper (§3.2): the data-dependence pass removes the flags of
       reduction statements it can prove free of loop-carried
       dependences — e.g. element-wise updates A(I) = A(I) + x, which
       need no merge at all *)
    let env0 = Loops.nest_env ~outer_env nest in
    let env0 =
      List.fold_left
        (fun env n -> Loops.nest_env ~outer_env:env n)
        env0
        (Loops.nests_of_block body)
    in
    let inner0 =
      Loops.nests_of_block body |> List.map (fun n -> Loops.innermost n)
    in
    let all_accesses = Access.of_block body in
    let body_writes0 =
      List.filter_map
        (fun (a : Access.t) ->
          if a.kind = Access.Write then Some a.array else None)
        all_accesses
      |> List.sort_uniq String.compare
    in
    let method0 =
      match mode with
      | Polaris -> Dep.Driver.Range_symbolic
      | Baseline -> Dep.Driver.Banerjee_gcd
    in
    let reductions =
      List.filter
        (fun (f : Reduction.found) ->
          if not (Symtab.is_array u.pu_symtab f.red.red_var) then true
          else
            let accs =
              List.filter
                (fun (a : Access.t) -> String.equal a.array f.red.red_var)
                all_accesses
            in
            match
              Dep.Driver.array_deps ~method_:method0 ~symtab:u.pu_symtab
                ~env:env0 ~enclosing ~target ~inner:inner0
                ~body_writes:body_writes0 ~accesses:accs ()
            with
            | Dep.Driver.Parallel _ -> false (* flag removed: independent *)
            | Dep.Driver.Dependent _ -> true)
        reductions
    in
    let reduction_vars = List.map (fun (f : Reduction.found) -> f.red.red_var) reductions in
    let reduction_sids = List.concat_map (fun (f : Reduction.found) -> f.stmt_ids) reductions in
    (* 2. scalars *)
    let classes = Defuse.classify body in
    let exposed =
      Defuse.of_class Defuse.Exposed classes
      |> List.filter (fun v ->
             (not (List.mem v reduction_vars)) && not (Symtab.is_array u.pu_symtab v))
    in
    let exposed =
      (* arrays are dealt with below; Defuse only tracks scalars, but be
         safe against name confusion *)
      exposed
    in
    if exposed <> [] then
      decide ~parallel:false ~speculative:false
        (Fmt.str "carried scalar dependence on %s" (String.concat "," exposed))
    else begin
      let private_scalars =
        Defuse.of_class Defuse.Private classes
        |> List.filter (fun v -> not (List.mem v reduction_vars))
      in
      (* 3. arrays: per-array dependence test, privatization fallback.
         The environment, inner-loop list, accesses, written set and
         method are exactly the ones already derived in step 1 — reuse
         them instead of re-deriving. *)
      let env = env0 in
      let inner = inner0 in
      let accesses =
        List.filter
          (fun (a : Access.t) ->
            not
              (List.mem a.sid reduction_sids
              && List.mem a.array reduction_vars))
          all_accesses
      in
      let arrays =
        Access.by_array accesses
        |> List.filter (fun (name, accs) ->
               Symtab.is_array u.pu_symtab name
               && List.exists (fun (a : Access.t) -> a.kind = Access.Write) accs)
      in
      (* arrays written anywhere in the body, including by reduction
         statements: a subscript routed through any of them is
         unanalyzable *)
      let body_writes = body_writes0 in
      let method_ = method0 in
      let privates = ref private_scalars in
      let lastprivates = ref [] in
      let failed = ref None in
      let speculative = ref false in
      let proof = ref [] in
      List.iter
        (fun (name, accs) ->
          if !failed = None then
            match
              Dep.Driver.array_deps ~method_ ~symtab:u.pu_symtab ~env ~enclosing
                ~target ~inner ~body_writes ~accesses:accs ()
            with
            | Dep.Driver.Parallel how ->
              proof := Fmt.str "%s:%s" name how :: !proof
            | Dep.Driver.Dependent why -> (
              (* a subscript routed through any array element (written
                 or not) makes the loop an LRPD candidate (paper 3.5) *)
              let has_array_subscript =
                List.exists
                  (fun (a : Access.t) ->
                    List.exists
                      (fun p ->
                        List.exists
                          (function
                            | Symbolic.Atom.Aopaque e ->
                              Fir.Expr.exists
                                (function Ast.Ref _ -> true | _ -> false)
                                e
                              || (match e with Ast.Ref _ -> true | _ -> false)
                            | Symbolic.Atom.Avar _ -> false)
                          (Symbolic.Poly.atoms p))
                      a.subs)
                  accs
              in
              let is_subscripted =
                match mode with
                | Polaris ->
                  has_array_subscript
                  || (String.length why >= 11
                     && String.sub why 0 11 = "subscripted")
                | Baseline -> false
              in
              match mode with
              | Baseline ->
                failed := Some (Fmt.str "%s: %s" name why)
              | Polaris -> (
                match
                  Privatize.analyze ~unit_:u ~outer_env ~loop_sid:target.stmt.sid
                    ~d ~array:name
                with
                | Ok ()
                  when Privatize.needs_copy_out ~unit_:u ~d ~array:name
                       && Stmt.exists
                            (fun (s : stmt) ->
                              match s.kind with
                              | Assign (Ref (a, subs), _) ->
                                String.equal a name
                                && List.exists (Expr.mentions d.index) subs
                              | _ -> false)
                            body ->
                  (* live after the loop with an iteration-dependent
                     write set: the last iteration's copy-out would miss
                     elements written by earlier iterations *)
                  failed :=
                    Some
                      (Fmt.str
                         "%s: %s; not privatizable: live-out with varying write set"
                         name why)
                | Ok () ->
                  privates := name :: !privates;
                  if Privatize.needs_copy_out ~unit_:u ~d ~array:name then
                    lastprivates := name :: !lastprivates;
                  proof := Fmt.str "%s:privatized" name :: !proof
                | Error perr ->
                  if is_subscripted then speculative := true;
                  failed :=
                    Some (Fmt.str "%s: %s; not privatizable: %s" name why perr))))
        arrays;
      match !failed with
      | Some why -> decide ~parallel:false ~speculative:!speculative why
      | None ->
        (* lastprivate scalars *)
        let lp_scalars =
          List.filter (fun v -> live_after u d v) private_scalars
        in
        let privates = List.sort_uniq String.compare !privates in
        let lastprivates =
          List.sort_uniq String.compare (lp_scalars @ !lastprivates)
        in
        let commit () =
          info.privates <- privates;
          info.lastprivates <- lastprivates;
          info.reductions <-
            List.map (fun (f : Reduction.found) -> f.red) reductions
        in
        decide ~commit ~parallel:true ~speculative:false
          (String.concat "; "
             (List.rev
                ((if reductions = [] then [] else [ "reductions solved" ])
                @ !proof
                @ [ "scalars private" ])))
    end
  end

(** Analyze one nest and mark its loop_info immediately (the serial
    entry point). *)
let analyze_loop ~(mode : mode) (u : Punit.t) (outer_env : Range.env)
    (nest : Loops.nest) : loop_report =
  let report, apply = analyze_nest ~mode u outer_env nest in
  apply ();
  report

(** Analyze every loop of a unit (outermost first), marking loop_info in
    place; returns the per-loop reports. *)
let run_unit ~(mode : mode) (u : Punit.t) : loop_report list =
  let nests = Loops.nests_of_unit u in
  List.map
    (fun nest ->
      let target = Loops.innermost nest in
      let outer_env = Range_prop.env_at u ~target:target.stmt.sid in
      analyze_loop ~mode u outer_env nest)
    nests

(* Deliberately no [Program.touch]: this pass writes only the [loop_info]
   decision fields (par/privates/reductions/...), never statement bodies
   or symbol tables.  Those fields start in the safe serial default, so a
   fault mid-pass can at worst leave later loops undecided (= serial) —
   nothing for a copy-on-write guard to roll back, and nothing
   {!Fir.Consistency} checks. *)
let run ~mode (p : Program.t) : (string * loop_report list) list =
  if not (Util.Pool.parallel ()) then
    List.map (fun u -> (u.Punit.pu_name, run_unit ~mode u)) (Program.units p)
  else begin
    (* Parallel driver.  Each nest is analyzed on a worker domain with
       all side effects deferred: analysis reads the (frozen) IR and
       shared caches, writes only its per-task cache shards and its
       per-task counter tally ({!Dep.Driver.collecting}).  The merge on
       the submitting domain then replays the serial order exactly:
       tallies fold into the global counters nest-by-nest in program
       order, each Ok report's [apply] commits the loop_info decision,
       and the first Error re-raises — after its tally is applied — so
       counters, decisions and the fault point are byte-identical to
       the serial run. *)
    let units = Program.units p in
    let tasks =
      List.concat_map
        (fun u -> List.map (fun n -> (u, n)) (Loops.nests_of_unit u))
        units
    in
    let outcomes =
      (* weight: nest depth + statements in the innermost body — a
         cheap proxy for access-pair count, so the batcher packs many
         small nests per chunk but never lumps two big ones together *)
      Util.Pool.map
        ~weight:(fun ((_ : Punit.t), (nest : Loops.nest)) ->
          List.length nest.loops + Stmt.fold (fun n _ -> n + 1) 0 nest.body)
        (fun ((u : Punit.t), nest) ->
          Dep.Driver.collecting (fun () ->
              let target = Loops.innermost nest in
              let outer_env = Range_prop.env_at u ~target:target.stmt.sid in
              analyze_nest ~mode u outer_env nest))
        tasks
    in
    let reports =
      List.map2
        (fun ((u : Punit.t), _) (outcome, tally) ->
          Dep.Driver.apply_tally tally;
          match outcome with
          | Ok (report, apply) ->
            apply ();
            (u, report)
          | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
        tasks outcomes
    in
    List.map
      (fun u ->
        ( u.Punit.pu_name,
          List.filter_map
            (fun (u', r) -> if u' == u then Some r else None)
            reports ))
      units
  end
