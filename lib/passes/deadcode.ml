(** Dead scalar-assignment elimination.

    After induction substitution and constant propagation many scalar
    assignments (old induction seeds, propagated copies, unused
    last-value updates) are never read again; this cleanup removes them.
    An assignment [v = e] is dead when [v] is a scalar that is never
    read anywhere in the unit after the pass ran to fixpoint, [e] has no
    side effects (no function calls that could reach user code), and [v]
    is not a dummy argument or COMMON member (both escape the unit). *)

open Fir
open Ast

(* every scalar READ in the unit (array subscripts included; assignment
   left-hand sides excluded) *)
let read_scalars (u : Punit.t) =
  let acc = ref [] in
  Stmt.iter
    (fun (s : stmt) ->
      List.iter
        (fun ((role : Stmt.expr_role), e) ->
          let relevant =
            match (role, e) with
            | Stmt.Elhs, Ref (_, subs) -> subs
            | Stmt.Elhs, _ -> []
            | _, e -> [ e ]
          in
          List.iter
            (fun e ->
              Expr.iter
                (function Var v -> acc := v :: !acc | _ -> ())
                e)
            relevant)
        (Stmt.exprs_of s))
    u.pu_body;
  List.sort_uniq String.compare !acc

let escapes (u : Punit.t) v =
  List.mem v u.pu_args
  ||
  match Symtab.find_opt u.pu_symtab v with
  | Some sym -> sym.sym_common <> None
  | None -> false

let has_call e = Expr.exists (function Fun_call _ -> true | _ -> false) e

(* one sweep, pure: the swept body and whether anything was removed *)
let sweep (u : Punit.t) : block * bool =
  let reads = read_scalars u in
  let changed = ref false in
  let body' =
    Stmt.rewrite
      (fun (s : stmt) ->
        match s.kind with
        | Assign (Var v, rhs)
          when (not (List.mem v reads))
               && (not (escapes u v))
               && (not (Symtab.is_array u.pu_symtab v))
               && (not (has_call rhs))
               && s.label = None ->
          changed := true;
          []
        | _ -> [ s ])
      u.pu_body
  in
  (body', !changed)

(** Remove dead scalar assignments from a unit, to fixpoint.  The first
    sweep is computed {e before} announcing any mutation: a unit with
    no dead assignment is never touched, so its invalidation version —
    and every analysis cached against it — survives the pass. *)
let run_unit (p : Program.t) (u : Punit.t) : int =
  let body1, changed1 = sweep u in
  if not changed1 then 0
  else begin
    Program.touch p u;
    u.pu_body <- body1;
    let rounds = ref 1 in
    let continue_ = ref true in
    while !continue_ && !rounds < 16 do
      let body', changed = sweep u in
      if changed then begin
        u.pu_body <- body';
        incr rounds
      end
      else continue_ := false
    done;
    Consistency.check_unit u;
    !rounds
  end

(** Analyses this pass consumes (for the pipeline's reuse ledger): it
    reads raw statements only, so it disturbs nothing it does not
    rewrite — in particular it must never flush dependence verdicts. *)
let consumes = [ "fir.intern" ]

let run (p : Program.t) : int =
  Util.Listx.sum_by (fun u -> run_unit p u) (Program.units p)
