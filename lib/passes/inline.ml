(** Subroutine inline expansion (paper §3.1).

    Polaris used full inline expansion of call sites into the top-level
    routine to get flow-sensitive interprocedural analysis.  Following
    the paper's design, expansion of a subprogram is split into a
    site-independent part — a {e template} with all locals renamed to
    fresh caller-level names — and a site-specific part: formal→actual
    remapping, label renumbering, RETURN rewriting, and (when formal and
    actual arrays do not conform) subscript {e linearization}.

    Scope: subroutine CALL statements.  Function calls in expressions
    are left to the interpreter (they disqualify enclosing loops from
    parallelization, like unanalyzed calls did in Polaris).  Recursive
    or unknown subroutines are left untouched.  COMMON-block members are
    shared by name, so they keep their names across inlining. *)

open Fir
open Ast

type stats = { mutable sites_expanded : int; mutable sites_skipped : int }

(* Copy-in temporary numbering.  Domain-local (the daemon compiles
   concurrent requests in separate domains) and reset at the start of
   every {!run}, so the ITMP names a compile emits are a pure function
   of its own source — identical across processes, requests and job
   counts. *)
let temp_counter : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

let fresh_temp () =
  let c = Domain.DLS.get temp_counter in
  incr c;
  Fmt.str "ITMP%d" !c

(* ------------------------------------------------------------------ *)
(* Templates (site-independent preparation)                            *)

type template = {
  t_unit : Punit.t;        (** copy with locals renamed UNITNAME_LOCAL *)
  t_formals : string list; (** renamed formal parameter names *)
}

let local_prefix u name = u.Punit.pu_name ^ "_" ^ name

(* site-independent transformation: rename every non-common symbol *)
let make_template (u : Punit.t) : template =
  let u = Punit.copy u in
  let rename_map = Hashtbl.create 16 in
  Symtab.fold
    (fun name sym () ->
      if sym.sym_common = None then
        Hashtbl.replace rename_map name (local_prefix u name))
    u.pu_symtab ();
  let rn name =
    match Hashtbl.find_opt rename_map name with Some n -> n | None -> name
  in
  let new_symtab = Symtab.create () in
  Symtab.fold
    (fun name sym () ->
      let dims =
        List.map
          (fun (lo, hi) -> (Expr.rename rn lo, Expr.rename rn hi))
          sym.sym_dims
      in
      let param = Option.map (Expr.rename rn) sym.sym_param in
      Symtab.define new_symtab
        { sym with sym_name = rn name; sym_dims = dims; sym_param = param })
    u.pu_symtab ();
  (* DO indices are strings, not expressions: rename them structurally *)
  let rec rename_indices (b : block) =
    List.map
      (fun (s : stmt) ->
        match s.kind with
        | Do d ->
          { s with
            kind = Do { d with index = rn d.index; body = rename_indices d.body } }
        | If (c, t, e) -> { s with kind = If (c, rename_indices t, rename_indices e) }
        | While (c, b') -> { s with kind = While (c, rename_indices b') }
        | _ -> s)
      b
  in
  let body = Stmt.map_block_exprs (Expr.rename rn) (rename_indices u.pu_body) in
  let t_unit =
    { u with
      pu_symtab = new_symtab;
      pu_body = body;
      pu_args = List.map rn u.pu_args }
  in
  { t_unit; t_formals = t_unit.pu_args }

(* ------------------------------------------------------------------ *)
(* Site-specific expansion                                             *)

exception Cannot_inline of string

(* linear 1-based offset expression of [subs] within [dims] *)
let linear_offset (dims : (expr * expr) list) (subs : expr list) : expr =
  let open Expr in
  let rec go dims subs stride =
    match (dims, subs) with
    | [], [] -> int 0
    | (lo, hi) :: dtl, s :: stl ->
      let here = mul (sub s lo) stride in
      let stride' = mul stride (simplify (add (sub hi lo) (int 1))) in
      simplify (add here (go dtl stl stride'))
    | _ -> raise (Cannot_inline "subscript/rank mismatch")
  in
  go dims subs (int 1)

type array_mapping =
  | Rename of string                      (** formal -> actual base name *)
  | Linearize of {
      base : string;
      base_lo : expr;        (** lower bound of the 1-D base *)
      base_offset : expr;    (** 0-based element offset of the mapping *)
      formal_dims : (expr * expr) list;
    }
      (** formal element (s1..sk) -> base(base_lo + offset + linear) *)

(* dims structurally identical (same bounds)? *)
let dims_identical (a : (expr * expr) list) (b : (expr * expr) list) =
  List.length a = List.length b
  && List.for_all2
       (fun (lo1, hi1) (lo2, hi2) -> Expr.equal lo1 lo2 && Expr.equal hi1 hi2)
       a b

(* decide how a formal array with (actual-remapped) dims [fdims] maps
   onto actual [actual] *)
let array_map (caller : Punit.t) (fdims : (expr * expr) list) (actual : expr) :
    array_mapping =
  match actual with
  | Var base -> (
    match Symtab.find_opt caller.pu_symtab base with
    | Some bsym when bsym.sym_dims <> [] ->
      if dims_identical fdims bsym.sym_dims then Rename base
      else if List.length bsym.sym_dims = 1 then
        Linearize
          { base; base_lo = fst (List.hd bsym.sym_dims);
            base_offset = Expr.int 0; formal_dims = fdims }
      else raise (Cannot_inline "non-conforming multi-dimensional actual")
    | _ -> raise (Cannot_inline "array formal bound to scalar actual"))
  | Ref (base, subs) -> (
    (* actual is an element: the formal maps at an offset *)
    match Symtab.find_opt caller.pu_symtab base with
    | Some bsym when List.length bsym.sym_dims = 1 ->
      let lo = fst (List.hd bsym.sym_dims) in
      let off = Expr.simplify (Expr.sub (List.hd subs) lo) in
      Linearize { base; base_lo = lo; base_offset = off; formal_dims = fdims }
    | _ -> raise (Cannot_inline "offset passing into multi-dimensional actual"))
  | _ -> raise (Cannot_inline "array formal bound to expression actual")

let max_label (u : Punit.t) =
  Stmt.fold
    (fun acc s ->
      let acc = match s.label with Some l -> max acc l | None -> acc in
      match s.kind with Goto l -> max acc l | _ -> acc)
    0 u.pu_body

(* label allocation must be monotonic across the sites expanded in one
   rewrite round (the caller body is only swapped in afterwards), or two
   inlined bodies would share an exit label; domain-local for the same
   reason as [temp_counter] *)
let label_floor : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

(* expand one call site; returns the replacement statements *)
let expand_site (caller : Punit.t) (tmpl : template) (args : expr list) :
    stmt list =
  let callee = Punit.copy tmpl.t_unit in
  if List.length args <> List.length tmpl.t_formals then
    raise (Cannot_inline "argument count mismatch");
  (* build the remapping: scalars first, so that array-dimension
     expressions referencing scalar formals (adjustable arrays) can be
     remapped before conformance is decided *)
  let scalar_renames = ref [] in
  let prologue = ref [] in
  let array_mappings = ref [] in
  List.iter2
    (fun formal actual ->
      let fsym = Symtab.lookup callee.pu_symtab formal in
      if fsym.sym_dims = [] then begin
        match actual with
        | Var v -> scalar_renames := (formal, v) :: !scalar_renames
        | _ ->
          (* expression actual: copy-in temporary (read-only use) *)
          let t = fresh_temp () in
          Symtab.define caller.pu_symtab
            (Symtab.mk_symbol ~typ:fsym.sym_type t);
          prologue := Stmt.assign (Var t) actual :: !prologue;
          scalar_renames := (formal, t) :: !scalar_renames
      end)
    tmpl.t_formals args;
  let remap_scalars e =
    Expr.map
      (function
        | Var v as orig -> (
          match List.assoc_opt v !scalar_renames with
          | Some n -> Var n
          | None -> orig)
        | e -> e)
      e
  in
  List.iter2
    (fun formal actual ->
      let fsym = Symtab.lookup callee.pu_symtab formal in
      if fsym.sym_dims <> [] then begin
        let fdims =
          List.map
            (fun (lo, hi) -> (remap_scalars lo, remap_scalars hi))
            fsym.sym_dims
        in
        array_mappings := (formal, array_map caller fdims actual) :: !array_mappings
      end)
    tmpl.t_formals args;
  (* move callee locals (non-formals) into the caller's symbol table *)
  Symtab.fold
    (fun name sym () ->
      if (not (List.mem name tmpl.t_formals)) && sym.sym_common = None then begin
        (* dimension expressions may reference formals: remap them *)
        let remap_expr e =
          Expr.map
            (function
              | Var v as orig -> (
                match List.assoc_opt v !scalar_renames with
                | Some n -> Var n
                | None -> orig)
              | e -> e)
            e
        in
        let dims = List.map (fun (lo, hi) -> (remap_expr lo, remap_expr hi)) sym.sym_dims in
        let param = Option.map remap_expr sym.sym_param in
        Symtab.define caller.pu_symtab { sym with sym_dims = dims; sym_param = param }
      end)
    callee.pu_symtab ();
  (* also declare commons used by the callee in the caller *)
  Symtab.fold
    (fun _ sym () ->
      if sym.sym_common <> None && not (Symtab.mem caller.pu_symtab sym.sym_name)
      then Symtab.define caller.pu_symtab sym)
    callee.pu_symtab ();
  (* rewrite the body *)
  let rewrite_one (e : expr) : expr =
    Expr.map
      (function
        | Var v as orig -> (
          match List.assoc_opt v !scalar_renames with
          | Some n -> Var n
          | None -> orig)
        | Ref (a, subs) as orig -> (
          match List.assoc_opt a !array_mappings with
          | Some (Rename base) -> Ref (base, subs)
          | Some (Linearize { base; base_lo; base_offset; formal_dims }) ->
            let lin = linear_offset formal_dims subs in
            Ref
              ( base,
                [ Expr.simplify (Expr.add base_lo (Expr.add base_offset lin)) ] )
          | None -> orig)
        | e -> e)
      e
  in
  let body = Stmt.map_block_exprs rewrite_one callee.pu_body in
  (* label renumbering *)
  let floor = Domain.DLS.get label_floor in
  let base_label = ((max (max_label caller) !floor / 1000) + 1) * 1000 in
  floor := base_label + 999;
  let relabel l = l + base_label in
  let rec renumber (b : block) =
    List.map
      (fun (s : stmt) ->
        let s = { s with label = Option.map relabel s.label } in
        match s.kind with
        | Goto l -> { s with kind = Goto (relabel l) }
        | If (c, t, e) -> { s with kind = If (c, renumber t, renumber e) }
        | Do d -> { s with kind = Do { d with body = renumber d.body } }
        | While (c, b') -> { s with kind = While (c, renumber b') }
        | _ -> s)
      b
  in
  let body = renumber body in
  (* a single trailing RETURN (the common case) is simply dropped so no
     GOTO pollutes the inlined body; interior RETURNs become GOTOs to a
     fresh trailing label *)
  let count_returns b =
    Stmt.fold
      (fun n s -> match s.kind with Return -> n + 1 | _ -> n)
      0 b
  in
  let body =
    match List.rev body with
    | ({ kind = Return; _ } as last) :: rest when count_returns [ last ] = count_returns body ->
      List.rev rest
    | _ -> body
  in
  let has_return =
    Stmt.exists (fun s -> match s.kind with Return -> true | _ -> false) body
  in
  let exit_label = base_label + 999 in
  let body =
    if not has_return then body
    else
      let rec replace (b : block) =
        List.map
          (fun (s : stmt) ->
            match s.kind with
            | Return -> { s with kind = Goto exit_label }
            | If (c, t, e) -> { s with kind = If (c, replace t, replace e) }
            | Do d -> { s with kind = Do { d with body = replace d.body } }
            | While (c, b') -> { s with kind = While (c, replace b') }
            | _ -> s)
          b
      in
      replace body @ [ Stmt.mk ~label:exit_label Continue ]
  in
  List.rev !prologue @ body

(* ------------------------------------------------------------------ *)
(* The driver                                                          *)

let has_function_calls (p : Program.t) (u : Punit.t) =
  let found = ref false in
  Stmt.iter
    (fun s ->
      List.iter
        (fun (_, e) ->
          Expr.iter
            (function
              | Fun_call (f, _) when Program.find_unit p f <> None -> found := true
              | _ -> ())
            e)
        (Stmt.exprs_of s))
    u.pu_body;
  !found

(** Fully expand subroutine calls in [unit_name] (default: the main
    unit), repeatedly, bottoming out at recursion or non-inlinable
    sites.  Returns expansion statistics. *)
let expand_unit ?(max_rounds = 12) (p : Program.t) (u : Punit.t) : stats =
  let stats = { sites_expanded = 0; sites_skipped = 0 } in
  Domain.DLS.get label_floor := max_label u;
  let templates : (string, template) Hashtbl.t = Hashtbl.create 8 in
  let template_for name =
    match Hashtbl.find_opt templates name with
    | Some t -> Some t
    | None -> (
      match Program.find_unit p name with
      | Some callee
        when callee.pu_kind = Subroutine
             && (not (String.equal callee.pu_name u.pu_name))
             && not (has_function_calls p callee) ->
        (* only inline call-free or intrinsic-only subroutines' bodies;
           nested CALLs are fine - they get expanded in later rounds *)
        let t = make_template callee in
        Hashtbl.replace templates name t;
        Some t
      | _ -> None)
  in
  let round () =
    let changed = ref false in
    let body' =
      Stmt.rewrite
        (fun (s : stmt) ->
          match s.kind with
          | Call (name, args) -> (
            match template_for name with
            | Some tmpl -> (
              try
                let replacement = expand_site u tmpl args in
                stats.sites_expanded <- stats.sites_expanded + 1;
                changed := true;
                replacement
              with Cannot_inline _ ->
                stats.sites_skipped <- stats.sites_skipped + 1;
                [ s ])
            | None -> [ s ])
          | _ -> [ s ])
        u.pu_body
    in
    u.pu_body <- body';
    !changed
  in
  let rec go n = if n > 0 && round () then go (n - 1) in
  go max_rounds;
  Consistency.check_unit u;
  stats

(* cheap pure precheck: does [u] contain a CALL that [expand_unit]'s
   [template_for] could possibly expand?  Mirrors its conditions minus
   the template construction. *)
let has_expandable_call (p : Program.t) (u : Punit.t) =
  Stmt.exists
    (fun s ->
      match s.kind with
      | Call (name, _) -> (
        match Program.find_unit p name with
        | Some callee ->
          callee.pu_kind = Subroutine
          && (not (String.equal callee.pu_name u.pu_name))
          && not (has_function_calls p callee)
        | None -> false)
      | _ -> false)
    u.pu_body

(** Analyses this pass consumes (for the pipeline's reuse ledger). *)
let consumes = [ "fir.intern" ]

(** Expand subroutine calls in every unit of the program (each unit is
    its own "top-level routine" in the paper's sense). *)
let run (p : Program.t) : stats =
  Domain.DLS.get temp_counter := 0;
  let total = { sites_expanded = 0; sites_skipped = 0 } in
  List.iter
    (fun u ->
      (* units with no expandable call site are left untouched — their
         invalidation version, fingerprint and cached analyses all
         survive the pass *)
      if has_expandable_call p u then begin
        (* expansion mutates only [u] (its body, and its symtab for
           copied-in callee locals/temps): one touch covers the unit *)
        Program.touch p u;
        let s = expand_unit p u in
        total.sites_expanded <- total.sites_expanded + s.sites_expanded;
        total.sites_skipped <- total.sites_skipped + s.sites_skipped
      end)
    (Program.units p);
  total
