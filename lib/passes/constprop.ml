(** Forward constant and copy propagation.

    Propagates scalar definitions [v = e] to later uses when the
    definition dominates the use and neither [v] nor anything [e]
    depends on is redefined in between.  PARAMETER constants are
    propagated unconditionally.  This is the pass that turns TRFD's
    [X = X0] into the fully substituted subscript after induction
    substitution (paper Fig. 2), and it feeds interprocedural constants
    after inlining (paper §3.3, OCEAN preconditioning).

    A definition is propagated into a loop body only if none of its
    dependencies (including the defined variable) is assigned anywhere
    in that body, so one forward pass is sound without iteration. *)

open Fir
open Ast

(* should we substitute this RHS?  constants and cheap expressions
   always; larger expressions only into subscript-ish integer uses -
   to keep things simple we propagate any expression up to a size cap *)
let rec expr_size (e : expr) =
  1 + Util.Listx.sum_by expr_size (Expr.children e)

let max_propagated_size = 24

type envmap = (string * expr) list

let kill (env : envmap) names =
  List.filter
    (fun (v, e) ->
      (not (List.mem v names))
      && not (List.exists (fun n -> Expr.mentions n e) names))
    env

let apply (env : envmap) (e : expr) =
  if env = [] then e
  else
    Expr.simplify
      (Expr.map
         (function
           | Var v as orig -> (
             match List.assoc_opt v env with Some by -> by | None -> orig)
           | x -> x)
         e)

let rec prop_block (symtab : Symtab.t) (env : envmap) (b : block) :
    block * envmap =
  List.fold_left
    (fun (out, env) (s : stmt) ->
      (* a labeled statement may be a backward-GOTO target: facts from
         the fall-through path do not hold there *)
      let env = if s.label = None then env else [] in
      match s.kind with
      | Assign (Var v, rhs) ->
        let rhs' = apply env rhs in
        let env = kill env [ v ] in
        let env =
          if
            expr_size rhs' <= max_propagated_size
            && (not (Expr.mentions v rhs'))
            && (not
                  (List.exists
                     (fun n -> Symtab.is_array symtab n)
                     (Expr.all_names rhs')))
            && not (Expr.exists (function Fun_call _ -> true | _ -> false) rhs')
          then (v, rhs') :: env
          else env
        in
        ({ s with kind = Assign (Var v, rhs') } :: out, env)
      | Assign (Ref (a, subs), rhs) ->
        let s' =
          { s with
            kind = Assign (Ref (a, List.map (apply env) subs), apply env rhs) }
        in
        (s' :: out, env)
      | Assign (lhs, rhs) ->
        ({ s with kind = Assign (apply env lhs, apply env rhs) } :: out, env)
      | If (c, t, e) ->
        let c' = apply env c in
        let t', _ = prop_block symtab env t in
        let e', _ = prop_block symtab env e in
        let env = kill env (Stmt.assigned_names t @ Stmt.assigned_names e) in
        ({ s with kind = If (c', t', e') } :: out, env)
      | Do d ->
        let init' = apply env d.init in
        let limit' = apply env d.limit in
        let step' = Option.map (apply env) d.step in
        (* inside the body, only definitions untouched by the body
           survive; the index is of course killed *)
        let body_kill = d.index :: Stmt.assigned_names d.body in
        let env_in = kill env body_kill in
        let body', _ = prop_block symtab env_in d.body in
        let env = kill env body_kill in
        ( { s with
            kind = Do { d with init = init'; limit = limit'; step = step'; body = body' } }
          :: out,
          env )
      | While (c, body) ->
        let body_kill = Stmt.assigned_names body in
        let env_in = kill env body_kill in
        let c' = apply env_in c in
        let body', _ = prop_block symtab env_in body in
        let env = kill env body_kill in
        ({ s with kind = While (c', body') } :: out, env)
      | Call (n, args) ->
        let args' = List.map (apply env) args in
        (* by-reference effects: kill anything passed, plus commons *)
        let commons =
          Symtab.fold
            (fun nm sym acc -> if sym.sym_common <> None then nm :: acc else acc)
            symtab []
        in
        let env = kill env (List.concat_map Expr.all_names args' @ commons) in
        ({ s with kind = Call (n, args') } :: out, env)
      | Print args ->
        ({ s with kind = Print (List.map (apply env) args) } :: out, env)
      | Goto _ -> (s :: out, []) (* unstructured flow: drop all facts *)
      | Continue | Return | Stop -> (s :: out, env))
    ([], env) b
  |> fun (out, env) -> (List.rev out, env)

(** Run constant/copy propagation on a unit (in place).  The propagated
    body is built first, purely; the unit is only touched — and its
    cached analyses only invalidated — when the result differs in
    content from the original (compared by sid-free block
    fingerprints). *)
let run_unit (p : Program.t) (u : Punit.t) =
  let params =
    List.map (fun (v, e) -> (v, e)) (Punit.parameter_bindings u)
  in
  let body', _ = prop_block u.pu_symtab params u.pu_body in
  if
    not
      (String.equal
         (Punit.block_fingerprint body')
         (Punit.block_fingerprint u.pu_body))
  then begin
    Program.touch p u;
    u.pu_body <- body';
    Consistency.check_unit u
  end

(** Analyses this pass consumes (for the pipeline's reuse ledger). *)
let consumes = [ "fir.intern" ]

let run (p : Program.t) =
  List.iter (fun u -> run_unit p u) (Program.units p)
