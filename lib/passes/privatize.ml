(** Array privatization (paper §3.4).

    An array is privatizable for a loop when every read of it in an
    iteration is dominated by a write of the same iteration covering the
    read region.  The analysis walks the loop body once, maintaining

    - {b exact writes}: dominating writes with their subscript
      polynomials, for same-subscript coverage (the [A(J)] write/read
      pair inside BDNA's first inner loop);
    - {b dense regions}: completed inner loops contribute per-dimension
      [lo..hi] regions when the written set is provably contiguous
      (stride-1 coverage with adjacency proved symbolically);
    - {b a forward scalar substitution} so that [M = IND(L); ... A(M)]
      is analyzed as [A(IND(L))];
    - {b monotonic index-array facts} (paper Fig. 5): a fill loop of the
      shape [IF (...) THEN P = P + 1; IND(P) = val ENDIF] proves that
      positions [c0+1..P] of [IND] hold values in the range of [val],
      so a later read [A(IND(L))] with [L] within [1..P] reads inside
      that value range.

    Coverage proofs go through {!Symbolic.Compare} and fall back to
    demand-driven backward substitution ({!Demand}), which is how the
    [MP >= M*P] obligation of the paper's Fig. 4 is discharged. *)

open Fir
open Ast
open Symbolic

type region = { rdims : (Poly.t * Poly.t) list }

type mono_fact = {
  ind_array : string;
  counter : string;            (** the monotonically increasing P *)
  pos_lo : Poly.t;             (** first filled position, c0 + 1 *)
  val_lo : Poly.t;
  val_hi : Poly.t;
  counter_lo : Poly.t;         (** c0: final P is at least the initial value *)
  counter_hi : Poly.t;         (** c0 + fill-loop trip count: at most one
                                   increment per iteration *)
  fill_sid : int;              (** DO statement of the filling loop *)
  mutable active : bool;
}

type state = {
  array : string;
  unit_ : Punit.t;
  ddefs : Demand.defs;               (** reaching defs at the loop, for demand proofs *)
  mutable defs : region list;
  mutable exacts : Poly.t list list;
  mutable subst : (string * expr) list;
  mutable facts : mono_fact list;
  mutable failure : string option;
}

(* ------------------------------------------------------------------ *)
(* Forward scalar substitution                                         *)

let subst_kill (sub : (string * expr) list) names =
  List.filter
    (fun (v, e) ->
      (not (List.mem v names))
      && not (List.exists (fun n -> Expr.mentions n e) names))
    sub

let subst_apply (sub : (string * expr) list) (e : expr) =
  if sub = [] then e
  else
    Expr.map
      (function
        | Var v as orig -> (
          match List.assoc_opt v sub with Some by -> by | None -> orig)
        | x -> x)
      e

(* ------------------------------------------------------------------ *)
(* Monotonic index-array detection                                     *)

(* [P = P + 1] ? *)
let is_incr_one p (s : stmt) =
  match s.kind with
  | Assign (Var v, rhs) when String.equal v p ->
    Poly.equal (Poly.of_expr rhs) (Poly.add (Poly.var p) Poly.one)
  | _ -> false

(* find the adjacent pair [P = P+1; IND(P) = val] in a block *)
let rec find_fill_pair (b : block) : (string * string * expr) option =
  match b with
  | s1 :: s2 :: rest -> (
    match (s1.kind, s2.kind) with
    | Assign (Var p, _), Assign (Ref (ind, [ Var p' ]), v)
      when String.equal p p' && is_incr_one p s1 ->
      Some (p, ind, v)
    | _ -> find_fill_pair (s2 :: rest))
  | _ -> None

(* detect fill loops anywhere in [body]; [env0] provides outer facts *)
let detect_facts (symtab : Symtab.t) (env0 : Range.env) (body : block) :
    mono_fact list =
  let facts = ref [] in
  let rec go env (b : block) (last_const : (string * int) list) =
    ignore
      (List.fold_left
         (fun last_const (s : stmt) ->
           (match s.kind with
           | Do d -> (
             let denv = Range_prop.enter_loop env d in
             let pair =
               match find_fill_pair d.body with
               | Some _ as p -> p
               | None -> (
                 (* conditional fill: IF (...) THEN pair ENDIF *)
                 match
                   List.find_map
                     (fun (s : stmt) ->
                       match s.kind with
                       | If (_, t, []) -> find_fill_pair t
                       | _ -> None)
                     d.body
                 with
                 | Some _ as p -> p
                 | None -> None)
             in
             (match pair with
             | Some (p, ind, value) when List.mem_assoc p last_const ->
               let c0 = List.assoc p last_const in
               let vp = Poly.of_expr value in
               let over = [ Atom.var d.index ] in
               (match
                  ( Compare.eliminate denv `Min ~over vp,
                    Compare.eliminate denv `Max ~over vp )
                with
               | Ok val_lo, Ok val_hi
                 when (not (Poly.mentions_var d.index val_lo))
                      && not (Poly.mentions_var d.index val_hi)
                      && (match d.step with
                         | None -> true
                         | Some e -> Expr.int_val e = Some 1) ->
                 let trips =
                   Poly.add
                     (Poly.sub (Poly.of_expr d.limit) (Poly.of_expr d.init))
                     Poly.one
                 in
                 facts :=
                   { ind_array = ind; counter = p;
                     pos_lo = Poly.of_int (c0 + 1); val_lo; val_hi;
                     counter_lo = Poly.of_int c0;
                     counter_hi = Poly.add (Poly.of_int c0) trips;
                     fill_sid = s.sid; active = false }
                   :: !facts
               | _ -> ())
             | _ -> ());
             go denv d.body [])
           | If (_, t, e) ->
             go env t [];
             go env e []
           | While (_, b') -> go env b' []
           | _ -> ());
           match s.kind with
           | Assign (Var v, rhs) -> (
             match Expr.int_val rhs with
             | Some c -> (v, c) :: List.remove_assoc v last_const
             | None -> List.remove_assoc v last_const)
           | _ -> last_const)
         last_const b)
  in
  ignore symtab;
  go env0 body [];
  !facts

(* ------------------------------------------------------------------ *)
(* Regions                                                             *)

(* collapse a region over loop index [idx]: exactly one dimension may
   vary, stride must provably tile the interval *)
let collapse_region env (idx : string) (r : region) : region option =
  let mentions p = Poly.mentions_var idx p in
  let varying = List.filter (fun (lo, hi) -> mentions lo || mentions hi) r.rdims in
  match varying with
  | [] -> Some r
  | [ _ ] ->
    let collapse_dim (lo, hi) =
      if not (mentions lo || mentions hi) then Some (lo, hi)
      else begin
        (* opaque capture makes substitution of idx+1 unsound *)
        let opaque_capture p =
          List.exists
            (function
              | Atom.Aopaque _ as a -> Atom.mentions idx a
              | Atom.Avar _ -> false)
            (Poly.atoms p)
        in
        if opaque_capture lo || opaque_capture hi then None
        else
          let over = [ Atom.var idx ] in
          match
            (Compare.eliminate env `Min ~over lo, Compare.eliminate env `Max ~over hi)
          with
          | Ok lo', Ok hi' ->
            let next p =
              Poly.subst (Atom.var idx) (Poly.add (Poly.var idx) Poly.one) p
            in
            (* contiguity: each iteration non-empty and adjacent to the
               next: lo(i) <= hi(i), lo(i+1) <= hi(i) + 1 *)
            if
              Compare.prove_le env lo hi
              && Compare.prove_le env (next lo) (Poly.add hi Poly.one)
            then Some (lo', hi')
            else None
          | _ -> None
      end
    in
    let dims' = List.map collapse_dim r.rdims in
    if List.for_all Option.is_some dims' then
      Some { rdims = List.map Option.get dims' }
    else None
  | _ -> None

(* union-merge two regions: all dimensions structurally equal except at
   most one, where the intervals are provably contiguous *)
let try_merge env (a : region) (b : region) : region option =
  if List.length a.rdims <> List.length b.rdims then None
  else begin
    let exception No in
    try
      let merged_one = ref false in
      let dims =
        List.map2
          (fun (alo, ahi) (blo, bhi) ->
            if Poly.equal alo blo && Poly.equal ahi bhi then (alo, ahi)
            else if !merged_one then raise No
            else begin
              merged_one := true;
              (* b extends a upward: [alo,ahi] u [blo,bhi] = [alo,bhi] *)
              if
                Compare.prove_le env blo (Poly.add ahi Poly.one)
                && Compare.prove_le env alo blo
                && Compare.prove_le env ahi bhi
              then (alo, bhi)
              else if
                (* b extends a downward *)
                Compare.prove_le env alo (Poly.add bhi Poly.one)
                && Compare.prove_le env blo alo
                && Compare.prove_le env bhi ahi
              then (blo, ahi)
              else raise No
            end)
          a.rdims b.rdims
      in
      Some { rdims = dims }
    with No -> None
  end

(* "written-so-far" region of a write inside loop [d]: at iteration J,
   everything from the first iteration's start up to this iteration's
   start minus one has been written by previous iterations, provided
   the per-iteration intervals are non-empty, contiguous, and the start
   is monotonically non-decreasing.  The interval is empty at the first
   iteration by construction ([lo(init) .. lo(J)-1]), so no guard on
   "a previous iteration exists" is needed.  Enables the classic
   forward-sweep pattern [W(J) = ... W(J-1) ...]. *)
let so_far_region env (d : do_loop) (r : region) : region option =
  let idx = d.index in
  let step_ok = match d.step with None -> true | Some e -> Expr.int_val e = Some 1 in
  if not step_ok then None
  else begin
    let mentions p = Poly.mentions_var idx p in
    let varying = List.filter (fun (lo, hi) -> mentions lo || mentions hi) r.rdims in
    match varying with
    | [ _ ] ->
      let init = Poly.of_expr d.init in
      let opaque_capture p =
        List.exists
          (function
            | Atom.Aopaque _ as a -> Atom.mentions idx a
            | Atom.Avar _ -> false)
          (Poly.atoms p)
      in
      let convert_dim (lo, hi) =
        if not (mentions lo || mentions hi) then Some (lo, hi)
        else if opaque_capture lo || opaque_capture hi then None
        else
          let next p =
            Poly.subst (Atom.var idx) (Poly.add (Poly.var idx) Poly.one) p
          in
          if
            Compare.monotonicity env (Atom.var idx) lo = Compare.Nondecreasing
            && Compare.prove_le env lo hi
            && Compare.prove_le env (next lo) (Poly.add hi Poly.one)
          then
            Some (Poly.subst (Atom.var idx) init lo, Poly.sub lo Poly.one)
          else None
      in
      let dims = List.map convert_dim r.rdims in
      if List.for_all Option.is_some dims then
        Some { rdims = List.map Option.get dims }
      else None
    | _ -> None
  end

(* ------------------------------------------------------------------ *)
(* Coverage                                                            *)

let point_region subs = { rdims = List.map (fun p -> (p, p)) subs }

let covered_by_region st env (subs : Poly.t list) (r : region) =
  List.length subs = List.length r.rdims
  && List.for_all2
       (fun sub (lo, hi) ->
         (Demand.prove_le st.ddefs env lo sub && Demand.prove_le st.ddefs env sub hi))
       subs r.rdims

(* effective region of a read subscript dimension through a monotonic
   index-array fact, if applicable *)
let fact_region st env (sub : Poly.t) : (Poly.t * Poly.t) option =
  match sub with
  | [ ([ (Atom.Aopaque (Ref (ind, [ pos ])), 1) ], c) ]
    when Util.Rat.equal c Util.Rat.one ->
    List.find_map
      (fun f ->
        if f.active && String.equal f.ind_array ind then begin
          let posp = Poly.of_expr pos in
          if
            Demand.prove_ge st.ddefs env posp f.pos_lo
            && Demand.prove_le st.ddefs env posp (Poly.var f.counter)
          then Some (f.val_lo, f.val_hi)
          else None
        end
        else None)
      st.facts
  | _ -> None

(* active monotonic counters carry interval facts for the proofs *)
let env_with_facts st env =
  List.fold_left
    (fun env f ->
      if f.active then
        Range.refine env (Atom.var f.counter)
          (Range.between f.counter_lo f.counter_hi)
      else env)
    env st.facts

let read_covered st env (subs : Poly.t list) : bool =
  let env = env_with_facts st env in
  (* exact-subscript domination *)
  List.exists
    (fun ws ->
      List.length ws = List.length subs && List.for_all2 Poly.equal ws subs)
    st.exacts
  ||
  (* region coverage, with monotonic index-array translation per dim *)
  let effective =
    List.map
      (fun sub ->
        match fact_region st env sub with
        | Some (lo, hi) -> `Range (lo, hi)
        | None -> `Point sub)
      subs
  in
  List.exists
    (fun (r : region) ->
      List.length effective = List.length r.rdims
      && List.for_all2
           (fun eff (lo, hi) ->
             match eff with
             | `Point sub ->
               Demand.prove_le st.ddefs env lo sub
               && Demand.prove_le st.ddefs env sub hi
             | `Range (elo, ehi) ->
               Demand.prove_le st.ddefs env lo elo
               && Demand.prove_le st.ddefs env ehi hi)
           effective r.rdims)
    st.defs

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)

let fail st fmt =
  Fmt.kstr (fun m -> if st.failure = None then st.failure <- Some m) fmt

(* check the reads of array [st.array] inside expression [e] *)
let rec check_reads_expr st env (e : expr) =
  (match e with
  | Ref (a, subs) when String.equal a st.array ->
    let subs' = List.map (fun x -> Poly.of_expr (subst_apply st.subst x)) subs in
    if not (read_covered st env subs') then
      fail st "read %s(%s) not covered by a dominating write [defs: %s]" st.array
        (String.concat ", " (List.map Poly.to_string subs'))
        (String.concat "; "
           (List.map
              (fun r ->
                String.concat ","
                  (List.map
                     (fun (lo, hi) ->
                       Fmt.str "[%s..%s]" (Poly.to_string lo) (Poly.to_string hi))
                     r.rdims))
              st.defs))
  | _ -> ());
  List.iter (check_reads_expr st env) (Expr.children e)

(* add a region to the coverage set, union-merging when provable *)
let add_def st env (r : region) =
  let rec go acc = function
    | [] -> r :: acc
    | r0 :: rest -> (
      match try_merge env r0 r with
      | Some m -> m :: (acc @ rest)
      | None -> go (r0 :: acc) rest)
  in
  st.defs <- go [] st.defs

let deactivate_on_write st name =
  List.iter
    (fun f ->
      if
        f.active
        && (String.equal f.ind_array name || String.equal f.counter name)
      then f.active <- false)
    st.facts

(* returns the dense regions made by unconditional writes of this block
   (to be collapsed by the enclosing loop) *)
let rec walk st env (b : block) : region list =
  let made = ref [] in
  List.iter
    (fun (s : stmt) ->
      match s.kind with
      | Assign (lhs, rhs) -> (
        (match lhs with
        | Ref (_, subs) -> List.iter (check_reads_expr st env) subs
        | _ -> ());
        check_reads_expr st env rhs;
        match lhs with
        | Ref (a, subs) when String.equal a st.array ->
          let subs' =
            List.map (fun x -> Poly.of_expr (subst_apply st.subst x)) subs
          in
          st.exacts <- subs' :: st.exacts;
          let r = point_region subs' in
          add_def st env r;
          made := r :: !made
        | Ref (a, _) ->
          deactivate_on_write st a;
          st.subst <- subst_kill st.subst [ a ]
        | Var v ->
          deactivate_on_write st v;
          st.subst <- subst_kill st.subst [ v ];
          let rhs' = subst_apply st.subst rhs in
          if
            (not (Expr.mentions v rhs'))
            && not (Expr.exists (function Fun_call _ -> true | _ -> false) rhs')
          then st.subst <- (v, rhs') :: st.subst
        | _ -> ())
      | If (c, t, e) ->
        check_reads_expr st env c;
        let saved_defs = st.defs
        and saved_exacts = st.exacts
        and saved_subst = st.subst in
        ignore (walk st env t);
        st.defs <- saved_defs;
        st.exacts <- saved_exacts;
        st.subst <- saved_subst;
        ignore (walk st env e);
        st.defs <- saved_defs;
        st.exacts <- saved_exacts;
        st.subst <- subst_kill saved_subst (Stmt.assigned_names t @ Stmt.assigned_names e)
      | Do d ->
        check_reads_expr st env d.init;
        check_reads_expr st env d.limit;
        Option.iter (check_reads_expr st env) d.step;
        let saved_exacts = st.exacts and saved_subst = st.subst in
        let saved_defs = st.defs in
        st.subst <- subst_kill st.subst (d.index :: Stmt.assigned_names d.body);
        let denv = Range_prop.enter_loop env d in
        (* prospect pass: discover the body's dense writes so that
           written-so-far regions are available while walking it *)
        let fact_actives = List.map (fun f -> f.active) st.facts in
        let probe = { st with failure = st.failure } in
        (* the probe is best-effort: arithmetic and lookup failures on
           odd subscripts just mean "no dense regions discovered", but
           anything else (Stack_overflow, Out_of_memory, genuine bugs)
           must propagate to the pipeline's fault-containment guard *)
        let probe_made =
          try walk probe denv d.body
          with Division_by_zero | Invalid_argument _ | Not_found -> []
        in
        List.iter2 (fun f a -> f.active <- a) st.facts fact_actives;
        List.iter
          (fun r ->
            match so_far_region denv d r with
            | Some r' -> add_def st denv r'
            | None -> ())
          probe_made;
        let inner_made = walk st denv d.body in
        (* per-iteration knowledge does not survive the loop *)
        st.exacts <- saved_exacts;
        st.subst <- subst_kill saved_subst (d.index :: Stmt.assigned_names d.body);
        st.defs <- saved_defs;
        (* completed dense regions survive *)
        let step_ok =
          match d.step with None -> true | Some e -> Expr.int_val e = Some 1
        in
        if step_ok then
          List.iter
            (fun r ->
              match collapse_region denv d.index r with
              | Some r' ->
                add_def st env r';
                made := r' :: !made
              | None -> ())
            inner_made;
        (* activate monotonic index facts filled by this loop *)
        List.iter
          (fun f -> if f.fill_sid = s.sid then f.active <- true)
          st.facts
      | While (c, body) ->
        check_reads_expr st env c;
        let saved_defs = st.defs
        and saved_exacts = st.exacts
        and saved_subst = st.subst in
        ignore (walk st env body);
        st.defs <- saved_defs;
        st.exacts <- saved_exacts;
        st.subst <- subst_kill saved_subst (Stmt.assigned_names body)
      | Call (_, args) ->
        List.iter (check_reads_expr st env) args;
        if List.exists (Expr.mentions st.array) args then
          fail st "%s escapes through a CALL" st.array;
        st.subst <- [];
        List.iter (fun f -> f.active <- false) st.facts
      | Print args -> List.iter (check_reads_expr st env) args
      | Goto _ -> fail st "unstructured control flow (GOTO)"
      | Continue | Return | Stop -> ())
    b;
  !made

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

(** Is [array] privatizable for the loop [stmt_sid]/[d] of unit [u]?
    [outer_env] carries facts holding at the loop (range propagation).
    Returns [Ok ()] or [Error reason]. *)
let analyze ~(unit_ : Punit.t) ~(outer_env : Range.env) ~(loop_sid : int)
    ~(d : do_loop) ~(array : string) : (unit, string) result =
  (* privatization exists to break the anti/flow dependences of a
     temporary: an array never read in the loop has only output
     dependences, which privatization does not remove (merging colliding
     private copies back needs last-writer tracking Polaris did not do) *)
  let array_n = Symtab.norm array in
  let has_read = ref false in
  let count_reads e =
    Expr.iter
      (function
        | Ref (a, _) when String.equal a array_n -> has_read := true
        | _ -> ())
      e
  in
  Stmt.iter
    (fun (s : stmt) ->
      List.iter
        (fun ((role : Stmt.expr_role), e) ->
          match (role, e) with
          | Stmt.Elhs, Ref (_, subs) -> List.iter count_reads subs
          | Stmt.Elhs, _ -> ()
          | _, e -> count_reads e)
        (Stmt.exprs_of s))
    d.body;
  let env = Range_prop.enter_loop outer_env d in
  let ddefs = Demand.defs_at unit_ ~target:loop_sid in
  let st =
    { array; unit_; ddefs; defs = []; exacts = []; subst = [];
      facts = detect_facts unit_.pu_symtab env d.body; failure = None }
  in
  ignore (walk st env d.body);
  if not !has_read then
    Error "array is write-only in the loop: only output dependences, not removable by privatization"
  else match st.failure with None -> Ok () | Some m -> Error m

(** Would the loop also need a last-value copy-out for [array]?  True
    when the array is referenced anywhere in the unit outside the loop
    body (conservative liveness). *)
let needs_copy_out ~(unit_ : Punit.t) ~(d : do_loop) ~(array : string) : bool =
  let inside = Stmt.fold (fun acc s -> s.sid :: acc) [] d.body in
  Stmt.fold
    (fun acc (s : stmt) ->
      acc
      || (not (List.mem s.sid inside))
         && List.exists (fun (_, e) -> Expr.mentions array e) (Stmt.exprs_of s))
    false unit_.pu_body
