(** Demand-driven backward substitution for symbolic proofs (paper §3.4).

    Polaris proves relations like [MP >= M*P] (Fig. 4) by walking
    backwards from the use to the definitions in a gated-SSA form and
    substituting until the goal is discharged.  Here the reaching
    definitions visible at a program point are gathered with a
    kill-based forward walk (same discipline as {!Constprop}); a goal
    polynomial is then proved non-negative by alternating
    {!Symbolic.Compare} with substitution of one definition at a time,
    stopping as soon as the comparison succeeds — the demand-driven
    part: no substitution happens beyond what the proof needs. *)

open Fir
open Ast
open Symbolic

type defs = (string * expr) list

(* ------------------------------------------------------------------ *)
(* Reaching scalar definitions at a statement                          *)

let kill (env : defs) names =
  List.filter
    (fun (v, e) ->
      (not (List.mem v names))
      && not (List.exists (fun n -> Expr.mentions n e) names))
    env

exception Found of defs

let rec walk (symtab : Symtab.t) (env : defs) (b : block) ~target =
  ignore
    (List.fold_left
       (fun env (s : stmt) ->
         (* labeled statements may be backward-GOTO targets *)
         let env = if s.label = None then env else [] in
         if s.sid = target then raise (Found env);
         (match s.kind with
         | If (_, t, e) ->
           walk symtab env t ~target;
           walk symtab env e ~target
         | Do d ->
           let inside = kill env (d.index :: Stmt.assigned_names d.body) in
           walk symtab inside d.body ~target
         | While (_, body) ->
           walk symtab (kill env (Stmt.assigned_names body)) body ~target
         | _ -> ());
         match s.kind with
         | Assign (Var v, rhs) ->
           let env = kill env [ v ] in
           if
             Expr.mentions v rhs
             || List.exists (fun n -> Symtab.is_array symtab n) (Expr.all_names rhs)
             || Expr.exists (function Fun_call _ -> true | _ -> false) rhs
           then env
           else (v, rhs) :: env
         | Assign (Ref (_, _), _) -> env
         | Assign (_, _) -> env
         | If (_, t, e) -> kill env (Stmt.assigned_names t @ Stmt.assigned_names e)
         | Do d -> kill env (d.index :: Stmt.assigned_names d.body)
         | While (_, body) -> kill env (Stmt.assigned_names body)
         | Call (_, args) ->
           let commons =
             Symtab.fold
               (fun nm sym acc -> if sym.sym_common <> None then nm :: acc else acc)
               symtab []
           in
           kill env (List.concat_map Expr.all_names args @ commons)
         | Goto _ -> []
         | Continue | Return | Stop | Print _ -> env)
       env b)

let compute_defs_at (u : Punit.t) ~(target : int) : defs =
  let params = Punit.parameter_bindings u in
  match walk u.pu_symtab params u.pu_body ~target with
  | () -> params
  | exception Found env -> env

(** Scalar definitions visible (dominating, unkilled) at statement
    [target] of unit [u], with PARAMETER bindings included.  Each
    computation walks the whole unit, and the privatizer asks once per
    candidate array per loop — so this is a point-scoped
    {!Analysis.Manager} analysis, memoized per (unit, statement) until
    the unit is touched. *)
let defs_at : Punit.t -> target:int -> defs =
  Analysis.Manager.point_analysis ~name:"passes.demand" compute_defs_at

(* ------------------------------------------------------------------ *)
(* The prover                                                          *)

(** Prove [goal >= 0] under range environment [env], substituting
    reaching definitions backwards on demand (at most [fuel] of them). *)
let rec prove_nonneg ?(fuel = 8) (defs : defs) (env : Range.env)
    (goal : Poly.t) : bool =
  Compare.prove_ge env goal Poly.zero
  || (fuel > 0
     &&
     let vars =
       List.filter_map
         (function Atom.Avar v -> Some v | Atom.Aopaque _ -> None)
         (Poly.atoms goal)
     in
     List.exists
       (fun v ->
         match List.assoc_opt v defs with
         | Some rhs ->
           let goal' = Poly.subst (Atom.var v) (Poly.of_expr rhs) goal in
           (not (Poly.equal goal' goal))
           && prove_nonneg ~fuel:(fuel - 1) defs env goal'
         | None -> false)
       vars)

(** Prove [a >= b] with backward substitution on demand. *)
let prove_ge ?fuel defs env a b = prove_nonneg ?fuel defs env (Poly.sub a b)

(** Prove [a <= b] with backward substitution on demand. *)
let prove_le ?fuel defs env a b = prove_nonneg ?fuel defs env (Poly.sub b a)
