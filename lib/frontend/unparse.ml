(** Unparser: render the IR back to compilable Fortran source.

    Polaris is a source-to-source restructurer; its output is Fortran
    annotated with parallelization directives.  By default we emit the
    analysis results as [CPOLARIS$] comment directives ahead of each
    parallel loop, in the spirit of the SGI/Cray directives Polaris
    targeted; the default output re-parses with {!Parser} (round-trip
    tested) and is the fixed point the [f77] backend pins.

    A {!mode} parameterizes the three choices the other Fortran
    backends need ([Backend.F77_omp]): the per-loop directive text, a
    declare-everything discipline (native compilers have no implicit
    knowledge of our symbol table), and a display mapping over types
    (e.g. REAL shown as DOUBLE PRECISION so gfortran's arithmetic
    matches the interpreter's doubles).  {!default_mode} reproduces the
    historical output byte-for-byte. *)

open Fir
open Ast

let buf_add = Buffer.add_string

let label_field = function
  | Some l -> Fmt.str "%-5d " l
  | None -> "      "

let directive (d : do_loop) =
  let info = d.info in
  if not info.par then None
  else
    let privates =
      match info.privates with
      | [] -> ""
      | ps -> Fmt.str " PRIVATE(%s)" (String.concat "," ps)
    in
    let lastp =
      match info.lastprivates with
      | [] -> ""
      | ps -> Fmt.str " LASTPRIVATE(%s)" (String.concat "," ps)
    in
    let reds =
      match info.reductions with
      | [] -> ""
      | rs ->
        let one r =
          let op =
            match r.red_op with
            | Rsum -> "+" | Rprod -> "*" | Rmax -> "MAX" | Rmin -> "MIN"
          in
          let form =
            match r.red_form with
            | Blocked -> "/BLOCKED"
            | Private_copies -> "/PRIVATE"
            | Expanded -> "/EXPANDED"
          in
          Fmt.str "%s:%s%s" op r.red_var form
        in
        Fmt.str " REDUCTION(%s)" (String.concat "," (List.map one rs))
    in
    let spec = if info.speculative then " SPECULATIVE" else "" in
    Some (Fmt.str "CPOLARIS$ DOALL%s%s%s%s" privates lastp reds spec)

(** Emission mode: how loops are annotated and symbols declared. *)
type mode = {
  m_directive : Symtab.t -> do_loop -> string list;
      (** comment/directive lines emitted before a DO statement; the
          unit's symbol table is supplied so backends can distinguish
          array from scalar names when forming clauses *)
  m_declare_all : bool;
      (** declare every symbol explicitly (native-compiler discipline)
          instead of only those the implicit rules would mistype *)
  m_display_type : base_type -> base_type;
      (** display mapping applied to declarations and FUNCTION result
          types (identity in the default mode) *)
}

let default_mode =
  { m_directive =
      (fun _ d -> match directive d with Some s -> [ s ] | None -> []);
    m_declare_all = false;
    m_display_type = (fun t -> t) }

let rec emit_block mode symtab buf indent (b : block) =
  List.iter (emit_stmt mode symtab buf indent) b

and emit_stmt mode symtab buf indent (s : stmt) =
  let pad = String.make indent ' ' in
  let line ?(label = s.label) text =
    buf_add buf (label_field label);
    buf_add buf pad;
    buf_add buf text;
    buf_add buf "\n"
  in
  match s.kind with
  | Assign (l, r) -> line (Fmt.str "%a = %a" Expr.pp l Expr.pp r)
  | If (c, t, []) ->
    line (Fmt.str "IF (%a) THEN" Expr.pp c);
    emit_block mode symtab buf (indent + 2) t;
    line ~label:None "END IF"
  | If (c, t, e) ->
    line (Fmt.str "IF (%a) THEN" Expr.pp c);
    emit_block mode symtab buf (indent + 2) t;
    line ~label:None "ELSE";
    emit_block mode symtab buf (indent + 2) e;
    line ~label:None "END IF"
  | Do d ->
    List.iter (fun dir -> buf_add buf (dir ^ "\n")) (mode.m_directive symtab d);
    let step =
      match d.step with Some e -> Fmt.str ", %s" (Expr.to_string e) | None -> ""
    in
    line (Fmt.str "DO %s = %a, %a%s" d.index Expr.pp d.init Expr.pp d.limit step);
    emit_block mode symtab buf (indent + 2) d.body;
    line ~label:None "END DO"
  | While (c, b) ->
    line (Fmt.str "DO WHILE (%a)" Expr.pp c);
    emit_block mode symtab buf (indent + 2) b;
    line ~label:None "END DO"
  | Call (n, []) -> line (Fmt.str "CALL %s" n)
  | Call (n, args) ->
    line (Fmt.str "CALL %s(%a)" n Fmt.(list ~sep:(any ", ") Expr.pp) args)
  | Goto l -> line (Fmt.str "GOTO %d" l)
  | Continue -> line "CONTINUE"
  | Return -> line "RETURN"
  | Stop -> line "STOP"
  | Print args ->
    line (Fmt.str "PRINT *, %a" Fmt.(list ~sep:(any ", ") Expr.pp) args)

let emit_declarations mode buf (u : Punit.t) =
  let pad = "      " in
  let dim_to_string (lo, hi) =
    match lo with
    | Int_lit 1 -> Expr.to_string hi
    | _ -> Fmt.str "%s:%s" (Expr.to_string lo) (Expr.to_string hi)
  in
  let entity (s : symbol) =
    if s.sym_dims = [] then s.sym_name
    else
      Fmt.str "%s(%s)" s.sym_name
        (String.concat ", " (List.map dim_to_string s.sym_dims))
  in
  (* explicit type declarations, grouped by (displayed) type.  In
     declare-all mode the symbol table is unioned with the names the
     body actually uses: implicitly typed scalars are only materialized
     in the table on first lookup, and "declare everything" must cover
     them too. *)
  let syms = Symtab.symbols u.pu_symtab in
  let syms =
    if not mode.m_declare_all then syms
    else
      let known = List.map (fun (s : symbol) -> s.sym_name) syms in
      let extra =
        Punit.used_scalars u
        |> List.filter (fun v -> not (List.mem v known))
        |> List.map (fun v -> Symtab.mk_symbol v)
      in
      List.sort
        (fun (a : symbol) b -> String.compare a.sym_name b.sym_name)
        (syms @ extra)
  in
  let groups =
    [ Integer; Real; Double_precision; Complex; Logical; Character ]
  in
  List.iter
    (fun typ ->
      let here =
        List.filter (fun s -> mode.m_display_type s.sym_type = typ) syms
      in
      (* only emit symbols that need declaring: arrays, or type differing
         from the implicit rule, or parameters (declared below) — unless
         the mode declares everything *)
      let need =
        List.filter
          (fun s ->
            s.sym_param = None
            && (mode.m_declare_all || s.sym_dims <> []
               || Symtab.implicit_type s.sym_name <> s.sym_type)
            (* declare-all mode must not redeclare the function result:
               the FUNCTION statement already carries its type *)
            && not (mode.m_declare_all && s.sym_name = u.pu_name))
          here
      in
      if need <> [] then begin
        buf_add buf pad;
        buf_add buf (base_type_to_string typ);
        buf_add buf " ";
        buf_add buf (String.concat ", " (List.map entity need));
        buf_add buf "\n"
      end)
    groups;
  (* parameters *)
  List.iter
    (fun s ->
      match s.sym_param with
      | Some v ->
        if mode.m_declare_all || Symtab.implicit_type s.sym_name <> s.sym_type
        then begin
          buf_add buf pad;
          buf_add buf
            (Fmt.str "%s %s\n"
               (base_type_to_string (mode.m_display_type s.sym_type))
               s.sym_name)
        end;
        buf_add buf pad;
        buf_add buf (Fmt.str "PARAMETER (%s = %s)\n" s.sym_name (Expr.to_string v))
      | None -> ())
    syms;
  (* common blocks, preserving alphabetical member order within a block *)
  let commons = Hashtbl.create 4 in
  List.iter
    (fun s ->
      match s.sym_common with
      | Some blk ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt commons blk) in
        Hashtbl.replace commons blk (s.sym_name :: prev)
      | None -> ())
    syms;
  Hashtbl.iter
    (fun blk members ->
      buf_add buf pad;
      buf_add buf
        (Fmt.str "COMMON /%s/ %s\n" blk (String.concat ", " (List.rev members))))
    commons

let emit_unit ?(mode = default_mode) buf (u : Punit.t) =
  let pad = "      " in
  let args =
    if u.pu_args = [] then "" else Fmt.str "(%s)" (String.concat ", " u.pu_args)
  in
  (match u.pu_kind with
  | Main -> buf_add buf (Fmt.str "%sPROGRAM %s\n" pad u.pu_name)
  | Subroutine -> buf_add buf (Fmt.str "%sSUBROUTINE %s%s\n" pad u.pu_name args)
  | Function typ ->
    buf_add buf
      (Fmt.str "%s%s FUNCTION %s%s\n" pad
         (base_type_to_string (mode.m_display_type typ))
         u.pu_name args));
  emit_declarations mode buf u;
  emit_block mode u.pu_symtab buf 0 u.pu_body;
  buf_add buf (pad ^ "END\n")

(** Render a whole program as Fortran source text. *)
let program_to_string ?(mode = default_mode) (p : Program.t) =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun i u ->
      if i > 0 then buf_add buf "\n";
      emit_unit ~mode buf u)
    (Program.units p);
  Buffer.contents buf

let unit_to_string ?(mode = default_mode) (u : Punit.t) =
  let buf = Buffer.create 1024 in
  emit_unit ~mode buf u;
  Buffer.contents buf
