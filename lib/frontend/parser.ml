(** Recursive-descent parser for the Fortran 77 subset.

    Fortran has no reserved words, so a line is first tested for the
    assignment shape [ID [\(...\)] = ...] and only then dispatched on its
    leading keyword.  Array reference vs. function call is disambiguated
    with the symbol table (declarations precede executable statements).

    Restrictions vs. full Fortran 77 (documented in DESIGN.md): no
    arithmetic IF, no shared DO terminators, no EQUIVALENCE, no I/O
    beyond [PRINT *]/[WRITE(*,*)], no statement functions. *)

open Fir
open Token

exception Error of string

let fail lineno fmt =
  Fmt.kstr (fun s -> raise (Error (Fmt.str "line %d: %s" lineno s))) fmt

(* ------------------------------------------------------------------ *)
(* Expression parsing over a token cursor                              *)

type tcur = { mutable toks : t list; lineno : int }

let peek c = match c.toks with [] -> None | t :: _ -> Some t
let advance c = match c.toks with [] -> () | _ :: tl -> c.toks <- tl

let expect c t =
  match c.toks with
  | x :: tl when x = t -> c.toks <- tl
  | x :: _ -> fail c.lineno "expected %s, found %s" (to_string t) (to_string x)
  | [] -> fail c.lineno "expected %s, found end of line" (to_string t)

let eat_id c =
  match c.toks with
  | ID s :: tl -> c.toks <- tl; s
  | x :: _ -> fail c.lineno "expected identifier, found %s" (to_string x)
  | [] -> fail c.lineno "expected identifier, found end of line"

let rec parse_expr c = parse_or c

and parse_or c =
  let rec loop acc =
    match peek c with
    | Some OR -> advance c; loop (Ast.Binary (Or, acc, parse_and c))
    | _ -> acc
  in
  loop (parse_and c)

and parse_and c =
  let rec loop acc =
    match peek c with
    | Some AND -> advance c; loop (Ast.Binary (And, acc, parse_not c))
    | _ -> acc
  in
  loop (parse_not c)

and parse_not c =
  match peek c with
  | Some NOT -> advance c; Ast.Unary (Not, parse_not c)
  | _ -> parse_rel c

and parse_rel c =
  let lhs = parse_arith c in
  let op =
    match peek c with
    | Some LT -> Some Ast.Lt | Some LE -> Some Ast.Le
    | Some GT -> Some Ast.Gt | Some GE -> Some Ast.Ge
    | Some EQ -> Some Ast.Eq | Some NE -> Some Ast.Ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op -> advance c; Ast.Binary (op, lhs, parse_arith c)

and parse_arith c =
  let first =
    match peek c with
    | Some MINUS -> advance c; Ast.Unary (Neg, parse_term c)
    | Some PLUS -> advance c; parse_term c
    | _ -> parse_term c
  in
  let rec loop acc =
    match peek c with
    | Some PLUS -> advance c; loop (Ast.Binary (Add, acc, parse_term c))
    | Some MINUS -> advance c; loop (Ast.Binary (Sub, acc, parse_term c))
    | _ -> acc
  in
  loop first

and parse_term c =
  let rec loop acc =
    match peek c with
    | Some STAR -> advance c; loop (Ast.Binary (Mul, acc, parse_power c))
    | Some SLASH -> advance c; loop (Ast.Binary (Div, acc, parse_power c))
    | _ -> acc
  in
  loop (parse_power c)

and parse_power c =
  let base = parse_primary c in
  match peek c with
  | Some POW ->
    advance c;
    (* right-associative; a unary minus is allowed after ** in practice *)
    let exp =
      match peek c with
      | Some MINUS -> advance c; Ast.Unary (Neg, parse_power c)
      | _ -> parse_power c
    in
    Ast.Binary (Pow, base, exp)
  | _ -> base

and parse_primary c =
  match c.toks with
  | INT n :: tl -> c.toks <- tl; Ast.Int_lit n
  | FLOAT x :: tl -> c.toks <- tl; Ast.Real_lit x
  | STR s :: tl -> c.toks <- tl; Ast.Char_lit s
  | TRUE :: tl -> c.toks <- tl; Ast.Logical_lit true
  | FALSE :: tl -> c.toks <- tl; Ast.Logical_lit false
  | LPAR :: tl ->
    c.toks <- tl;
    let e = parse_expr c in
    expect c RPAR;
    e
  | ID v :: LPAR :: tl ->
    c.toks <- tl;
    let args = parse_args c in
    expect c RPAR;
    (* resolved to Ref or Fun_call by the caller via [resolve] below *)
    Ast.Fun_call (v, args)
  | ID v :: tl -> c.toks <- tl; Ast.Var v
  | t :: _ -> fail c.lineno "unexpected token %s in expression" (to_string t)
  | [] -> fail c.lineno "unexpected end of line in expression"

and parse_args c =
  match peek c with
  | Some RPAR -> []
  | _ ->
    let rec loop acc =
      let e = parse_expr c in
      match peek c with
      | Some COMMA -> advance c; loop (e :: acc)
      | _ -> List.rev (e :: acc)
    in
    loop []

(* ------------------------------------------------------------------ *)
(* Name resolution: array reference vs. function call                  *)

let resolve_refs symtab e =
  Expr.map
    (function
      | Ast.Fun_call (v, args) when Symtab.is_array symtab v -> Ast.Ref (v, args)
      | e -> e)
    e

(* ------------------------------------------------------------------ *)
(* Line-level parsing                                                  *)

type cursor = { mutable pos : int; lines : line array }

let peek_line c = if c.pos < Array.length c.lines then Some c.lines.(c.pos) else None

let next_line c =
  match peek_line c with
  | Some l -> c.pos <- c.pos + 1; l
  | None -> raise (Error "unexpected end of file")

let line_starts_with (l : line) kws =
  let rec go toks kws =
    match (toks, kws) with
    | _, [] -> true
    | ID s :: tl, k :: ks when String.equal s k -> go tl ks
    | _ -> false
  in
  go l.toks kws

(* assignment shape: ID [balanced-paren group] EQUALS ... *)
let is_assignment (l : line) =
  match l.toks with
  | ID _ :: EQUALS :: _ -> true
  | ID _ :: LPAR :: rest ->
    let rec skip depth = function
      | [] -> false
      | LPAR :: tl -> skip (depth + 1) tl
      | RPAR :: tl -> if depth = 1 then (match tl with EQUALS :: _ -> true | _ -> false)
                      else skip (depth - 1) tl
      | _ :: tl -> skip depth tl
    in
    skip 1 rest
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)

let base_type_of_kw = function
  | "INTEGER" -> Some Ast.Integer
  | "REAL" -> Some Ast.Real
  | "LOGICAL" -> Some Ast.Logical
  | "COMPLEX" -> Some Ast.Complex
  | "CHARACTER" -> Some Ast.Character
  | _ -> None

let parse_dims tc =
  (* after LPAR: dim [, dim]* RPAR with dim := expr | expr ':' expr | '*' *)
  let parse_dim () =
    match peek tc with
    | Some STAR -> advance tc; (Ast.Int_lit 1, Ast.Var "*")
    | _ ->
      let e1 = parse_expr tc in
      (match peek tc with
      | Some COLON ->
        advance tc;
        (match peek tc with
        | Some STAR -> advance tc; (e1, Ast.Var "*")
        | _ -> (e1, parse_expr tc))
      | _ -> (Ast.Int_lit 1, e1))
  in
  let rec loop acc =
    let d = parse_dim () in
    match peek tc with
    | Some COMMA -> advance tc; loop (d :: acc)
    | _ -> List.rev (d :: acc)
  in
  let dims = loop [] in
  expect tc RPAR;
  dims

let parse_decl_entities (u : Punit.t) typ tc =
  let rec loop () =
    let name = eat_id tc in
    let dims =
      match peek tc with
      | Some LPAR -> advance tc; parse_dims tc
      | _ -> []
    in
    let prev = Symtab.find_opt u.pu_symtab name in
    let dims =
      match (dims, prev) with [], Some p -> p.sym_dims | _ -> dims
    in
    let arg_pos = Util.Listx.index_of (String.equal name) u.pu_args in
    let common = match prev with Some p -> p.sym_common | None -> None in
    let param = match prev with Some p -> p.sym_param | None -> None in
    let typ' = match typ with Some t -> Some t | None -> Option.map (fun p -> p.Ast.sym_type) prev in
    Symtab.define u.pu_symtab
      (Symtab.mk_symbol ~dims ?param ?common ?arg_pos ?typ:typ' name);
    match peek tc with
    | Some COMMA -> advance tc; loop ()
    | _ -> ()
  in
  loop ()

(* Is this line a declaration?  Returns true if consumed. *)
let try_declaration (u : Punit.t) (l : line) : bool =
  let tc = { toks = l.toks; lineno = l.lineno } in
  match l.toks with
  | ID "IMPLICIT" :: _ | ID "EXTERNAL" :: _ | ID "INTRINSIC" :: _
  | ID "SAVE" :: _ | ID "DATA" :: _ -> true
  | ID "DOUBLE" :: ID "PRECISION" :: _ ->
    advance tc; advance tc;
    parse_decl_entities u (Some Ast.Double_precision) tc;
    true
  | ID "DIMENSION" :: _ ->
    advance tc;
    parse_decl_entities u None tc;
    true
  | ID "PARAMETER" :: LPAR :: _ ->
    advance tc; advance tc;
    let rec loop () =
      let name = eat_id tc in
      expect tc EQUALS;
      let value = parse_expr tc in
      let value = resolve_refs u.pu_symtab value in
      let prev = Symtab.find_opt u.pu_symtab name in
      let typ = Option.map (fun p -> p.Ast.sym_type) prev in
      Symtab.define u.pu_symtab (Symtab.mk_symbol ?typ ~param:value name);
      match peek tc with
      | Some COMMA -> advance tc; loop ()
      | _ -> ()
    in
    loop ();
    expect tc RPAR;
    true
  | ID "COMMON" :: SLASH :: _ ->
    advance tc;
    expect tc SLASH;
    let rec blocks () =
      let blk = eat_id tc in
      expect tc SLASH;
      let rec names () =
        let name = eat_id tc in
        let dims =
          match peek tc with
          | Some LPAR -> advance tc; parse_dims tc
          | _ -> []
        in
        let prev = Symtab.find_opt u.pu_symtab name in
        let dims = match (dims, prev) with [], Some p -> p.sym_dims | _ -> dims in
        let typ = Option.map (fun p -> p.Ast.sym_type) prev in
        Symtab.define u.pu_symtab
          (Symtab.mk_symbol ~dims ~common:blk ?typ name);
        match peek tc with
        | Some COMMA -> advance tc; names ()
        | _ -> ()
      in
      names ();
      match peek tc with
      | Some SLASH -> expect tc SLASH; blocks ()
      | _ -> ()
    in
    blocks ();
    true
  | ID kw :: rest -> (
    match base_type_of_kw kw with
    | Some typ when rest <> [] && not (is_assignment l) ->
      advance tc;
      (* CHARACTER*8 style length: skip the length part *)
      (match peek tc with
      | Some STAR -> advance tc; (match peek tc with Some (INT _) -> advance tc | _ -> ())
      | _ -> ());
      parse_decl_entities u (Some typ) tc;
      true
    | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let rec parse_stmt (u : Punit.t) (c : cursor) (l : line) : Ast.stmt =
  let tc = { toks = l.toks; lineno = l.lineno } in
  let label = l.label in
  let resolve e = resolve_refs u.pu_symtab e in
  if is_assignment l then begin
    let lhs = parse_primary tc in
    expect tc EQUALS;
    let rhs = parse_expr tc in
    let lhs =
      match resolve lhs with
      | Ast.Fun_call (v, args) -> Ast.Ref (v, args) (* array not declared: implicit *)
      | e -> e
    in
    Stmt.mk ?label (Assign (lhs, resolve rhs))
  end
  else
    match l.toks with
    | ID "DO" :: ID "WHILE" :: _ ->
      advance tc; advance tc;
      expect tc LPAR;
      let cond = parse_expr tc in
      expect tc RPAR;
      let body = parse_block u c ~stop:is_enddo in
      ignore (next_line c) (* the END DO *);
      Stmt.mk ?label (While (resolve cond, body))
    | ID "DO" :: INT lbl :: _ ->
      advance tc; advance tc;
      parse_do_header u tc ?label ~lbl_stop:(Some lbl) c
    | ID "DO" :: ID _ :: _ ->
      advance tc;
      parse_do_header u tc ?label ~lbl_stop:None c
    | ID "IF" :: LPAR :: _ ->
      advance tc;
      expect tc LPAR;
      let cond = parse_expr tc in
      expect tc RPAR;
      (match peek tc with
      | Some (ID "THEN") ->
        let then_, else_ = parse_if_branches u c in
        Stmt.mk ?label (If (resolve cond, then_, else_))
      | _ ->
        (* one-line IF: the remainder is a simple statement *)
        let inner =
          parse_stmt u c { lineno = l.lineno; label = None; toks = tc.toks }
        in
        Stmt.mk ?label (If (resolve cond, [ inner ], [])))
    | ID "GOTO" :: INT n :: _ -> Stmt.mk ?label (Goto n)
    | ID "GO" :: ID "TO" :: INT n :: _ -> Stmt.mk ?label (Goto n)
    | ID "CALL" :: _ ->
      advance tc;
      let name = eat_id tc in
      let args =
        match peek tc with
        | Some LPAR ->
          advance tc;
          let args = parse_args tc in
          expect tc RPAR;
          args
        | _ -> []
      in
      Stmt.mk ?label (Call (name, List.map resolve args))
    | ID "RETURN" :: _ -> Stmt.mk ?label Return
    | ID "STOP" :: _ -> Stmt.mk ?label Stop
    | ID "CONTINUE" :: _ -> Stmt.mk ?label Continue
    | ID "PRINT" :: STAR :: rest ->
      let rest = match rest with COMMA :: tl -> tl | tl -> tl in
      let tc = { toks = rest; lineno = l.lineno } in
      let args = if tc.toks = [] then [] else parse_print_list tc in
      Stmt.mk ?label (Print (List.map resolve args))
    | ID "WRITE" :: LPAR :: STAR :: COMMA :: STAR :: RPAR :: rest ->
      let tc = { toks = rest; lineno = l.lineno } in
      let args = if tc.toks = [] then [] else parse_print_list tc in
      Stmt.mk ?label (Print (List.map resolve args))
    | t :: _ -> fail l.lineno "cannot parse statement starting with %s" (to_string t)
    | [] -> fail l.lineno "empty statement"

and parse_print_list tc =
  let rec loop acc =
    let e = parse_expr tc in
    match peek tc with
    | Some COMMA -> advance tc; loop (e :: acc)
    | _ -> List.rev (e :: acc)
  in
  loop []

and parse_do_header u tc ?label ~lbl_stop c =
  let resolve e = resolve_refs u.pu_symtab e in
  let index = eat_id tc in
  expect tc EQUALS;
  let init = parse_expr tc in
  expect tc COMMA;
  let limit = parse_expr tc in
  let step =
    match peek tc with
    | Some COMMA -> advance tc; Some (resolve (parse_expr tc))
    | _ -> None
  in
  let body =
    match lbl_stop with
    | Some lbl ->
      (* body runs up to and including the line labeled [lbl] *)
      let rec collect acc =
        match peek_line c with
        | None -> fail tc.lineno "DO %d: terminator label %d not found" lbl lbl
        | Some l ->
          let s = parse_stmt u c (next_line c) in
          let acc = s :: acc in
          if l.label = Some lbl then List.rev acc else collect acc
      in
      collect []
    | None ->
      let body = parse_block u c ~stop:is_enddo in
      ignore (next_line c);
      body
  in
  Stmt.mk ?label
    (Do { index; init = resolve init; limit = resolve limit; step; body;
          info = Ast.fresh_loop_info () })

and is_enddo l =
  line_starts_with l [ "END"; "DO" ] || line_starts_with l [ "ENDDO" ]

and is_endif l =
  line_starts_with l [ "END"; "IF" ] || line_starts_with l [ "ENDIF" ]

and is_else l = line_starts_with l [ "ELSE" ] && not (line_starts_with l [ "ELSEIF" ])

and parse_if_branches u c =
  (* after IF (cond) THEN; parse then-block and else-part *)
  let then_ = parse_block u c ~stop:(fun l -> is_endif l || is_else l || is_elseif l) in
  match peek_line c with
  | Some l when is_elseif l ->
    let l = next_line c in
    let toks =
      match l.toks with
      | ID "ELSEIF" :: tl -> tl
      | ID "ELSE" :: ID "IF" :: tl -> tl
      | _ -> fail l.lineno "malformed ELSE IF"
    in
    let tc = { toks; lineno = l.lineno } in
    expect tc LPAR;
    let cond = parse_expr tc in
    expect tc RPAR;
    (match peek tc with
    | Some (ID "THEN") -> ()
    | _ -> fail l.lineno "ELSE IF without THEN");
    let t2, e2 = parse_if_branches u c in
    let nested = Stmt.mk (If (resolve_refs u.pu_symtab cond, t2, e2)) in
    (then_, [ nested ])
  | Some l when is_else l ->
    ignore (next_line c);
    let else_ = parse_block u c ~stop:is_endif in
    ignore (next_line c);
    (then_, else_)
  | Some l when is_endif l ->
    ignore (next_line c);
    (then_, [])
  | Some l -> fail l.lineno "expected ELSE or END IF"
  | None -> raise (Error "unexpected end of file in IF block")

and is_elseif l =
  line_starts_with l [ "ELSEIF" ] || line_starts_with l [ "ELSE"; "IF" ]

and parse_block u c ~stop : Ast.block =
  let rec loop acc =
    match peek_line c with
    | None -> List.rev acc
    | Some l when stop l -> List.rev acc
    | Some _ ->
      let s = parse_stmt u c (next_line c) in
      loop (s :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Program units                                                       *)

let is_end_unit (l : line) =
  match l.toks with [ ID "END" ] -> true | _ -> false

let parse_unit_header (l : line) : Punit.t =
  let tc = { toks = l.toks; lineno = l.lineno } in
  let parse_arglist () =
    match peek tc with
    | Some LPAR ->
      advance tc;
      let rec loop acc =
        match peek tc with
        | Some RPAR -> advance tc; List.rev acc
        | Some COMMA -> advance tc; loop acc
        | Some (ID a) -> advance tc; loop (a :: acc)
        | _ -> fail l.lineno "malformed argument list"
      in
      loop []
    | _ -> []
  in
  match l.toks with
  | ID "PROGRAM" :: _ ->
    advance tc;
    let name = eat_id tc in
    Punit.create ~kind:Main name
  | ID "SUBROUTINE" :: _ ->
    advance tc;
    let name = eat_id tc in
    let args = parse_arglist () in
    Punit.create ~kind:Subroutine ~args name
  | ID "FUNCTION" :: _ ->
    advance tc;
    let name = eat_id tc in
    let args = parse_arglist () in
    Punit.create ~kind:(Function (Symtab.implicit_type name)) ~args name
  | ID kw :: ID "FUNCTION" :: _ when base_type_of_kw kw <> None ->
    advance tc; advance tc;
    let name = eat_id tc in
    let args = parse_arglist () in
    let typ = Option.get (base_type_of_kw kw) in
    Punit.create ~kind:(Function typ) ~args name
  | ID "DOUBLE" :: ID "PRECISION" :: ID "FUNCTION" :: _ ->
    advance tc; advance tc; advance tc;
    let name = eat_id tc in
    let args = parse_arglist () in
    Punit.create ~kind:(Function Double_precision) ~args name
  | _ -> fail l.lineno "expected PROGRAM, SUBROUTINE or FUNCTION header"

let parse_unit (c : cursor) : Punit.t =
  let header = next_line c in
  let u = parse_unit_header header in
  (* declarations *)
  let rec decls () =
    match peek_line c with
    | Some l when not (is_end_unit l) && l.label = None && try_declaration u l ->
      ignore (next_line c);
      decls ()
    | _ -> ()
  in
  decls ();
  (* function units: declare the return variable *)
  (match u.pu_kind with
  | Function typ when not (Symtab.mem u.pu_symtab u.pu_name) ->
    Symtab.define u.pu_symtab (Symtab.mk_symbol ~typ u.pu_name)
  | _ -> ());
  let body = parse_block u c ~stop:is_end_unit in
  ignore (next_line c) (* END *);
  (* hash-cons the freshly parsed expressions (a no-op when caches are
     off): repeated subtrees share physical identity from the start, so
     downstream structural equality short-circuits on [==] and the
     expression-keyed memo tables hit across statements *)
  u.pu_body <- Stmt.map_block_exprs Expr.intern body;
  u

(** Parse a whole source file into a program.
    @raise Error on any syntax problem. *)
let parse_string (src : string) : Program.t =
  let lines = Array.of_list (Lexer.lines_of_string src) in
  let c = { pos = 0; lines } in
  let rec loop acc =
    match peek_line c with
    | None -> List.rev acc
    | Some _ -> loop (parse_unit c :: acc)
  in
  let prog = Program.create (loop []) in
  Consistency.check prog
